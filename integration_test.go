// Package repro's root integration tests drive the full system — every
// Table I dataset through every engine mode — and check as-if-serial
// semantics against the oracle, tree structural invariants, and the
// monotonicity properties the paper's evaluation relies on (QTrans
// reduces more on more-skewed data).
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/oracle"
	"repro/internal/palm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestAllDatasetsAllModes is the end-to-end differential matrix: 7
// datasets x 3 modes, several batches each, checked against the oracle
// per batch and at the end.
func TestAllDatasetsAllModes(t *testing.T) {
	const scale = 0.0005
	for _, spec := range workload.Specs(scale) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
				mode := mode
				t.Run(mode.String(), func(t *testing.T) {
					eng, err := core.NewEngine(core.EngineConfig{
						Mode:          mode,
						Palm:          palm.Config{Order: 32, Workers: 4, LoadBalance: true},
						CacheCapacity: 512,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer eng.Close()
					o := oracle.New()
					gen := spec.Build()
					r := rand.New(rand.NewSource(1))

					batchSize := spec.BatchSize
					if batchSize > 4000 {
						batchSize = 4000
					}
					for b := 0; b < 5; b++ {
						u := []float64{0, 0.25, 0.5, 0.75, 1}[b]
						batch := workload.Batch(gen, r, batchSize, u)
						want := keys.NewResultSet(len(batch))
						o.ApplyAll(batch, want)
						got := keys.NewResultSet(len(batch))
						eng.ProcessBatch(batch, got)
						for i := int32(0); i < int32(len(batch)); i++ {
							w, wok := want.Get(i)
							g, gok := got.Get(i)
							if wok != gok || w != g {
								t.Fatalf("%s/%s batch %d idx %d: got %+v (%v), want %+v (%v)",
									spec.Name, mode, b, i, g, gok, w, wok)
							}
						}
						if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
							t.Fatalf("%s/%s batch %d: %v", spec.Name, mode, b, err)
						}
					}
					eng.Flush()
					gk, gv := eng.Processor().Tree().Dump()
					wk, wv := o.Dump()
					if len(gk) != len(wk) {
						t.Fatalf("final sizes %d vs %d", len(gk), len(wk))
					}
					for i := range gk {
						if gk[i] != wk[i] || gv[i] != wv[i] {
							t.Fatalf("final mismatch at %d", i)
						}
					}
				})
			}
		})
	}
}

// TestReductionTracksSkew checks the paper's core premise (§III-C):
// more-skewed distributions expose more elimination opportunities, so
// the QTrans reduction ratio must rank zipfian/gaussian far above
// uniform on equal-sized batches.
func TestReductionTracksSkew(t *testing.T) {
	reduction := func(gen workload.Generator) float64 {
		eng, err := core.NewEngine(core.EngineConfig{
			Mode: core.Intra,
			Palm: palm.Config{Order: 32, Workers: 2, LoadBalance: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		r := rand.New(rand.NewSource(5))
		total := 0.0
		const rounds = 3
		for i := 0; i < rounds; i++ {
			batch := workload.Batch(gen, r, 20000, 0.5)
			rs := keys.NewResultSet(len(batch))
			eng.ProcessBatch(batch, rs)
			total += eng.Stats().ReductionRatio()
		}
		return total / rounds
	}

	uni := reduction(workload.NewUniform(1 << 22))
	zipf := reduction(workload.NewZipfian(1<<22, 0.99))
	gauss := reduction(workload.NewGaussian(1 << 22))
	if zipf <= uni {
		t.Fatalf("zipfian reduction %.3f not above uniform %.3f", zipf, uni)
	}
	if gauss <= uni {
		t.Fatalf("gaussian reduction %.3f not above uniform %.3f", gauss, uni)
	}
	if uni > 0.05 {
		t.Fatalf("uniform over a huge key space should barely reduce, got %.3f", uni)
	}
	if zipf < 0.3 {
		t.Fatalf("zipfian should reduce substantially, got %.3f", zipf)
	}
}

// TestSearchOnlyFastPathSkipsStages: with U-0 batches in QTrans mode,
// Stage 2/3 never run (the §VI-B "avoiding stage 2" optimization) —
// observable as zero evaluate/modify time and full leaf-op attribution
// to Stage 1.
func TestSearchOnlyFastPathSkipsStages(t *testing.T) {
	eng, err := core.NewEngine(core.EngineConfig{
		Mode: core.Intra,
		Palm: palm.Config{Order: 32, Workers: 2, LoadBalance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r := rand.New(rand.NewSource(9))
	gen := workload.NewUniform(1 << 16)

	seed := workload.Batch(gen, r, 10000, 1) // all updates to populate
	eng.ProcessBatch(seed, keys.NewResultSet(len(seed)))

	searches := workload.Batch(gen, r, 10000, 0) // U-0
	rs := keys.NewResultSet(len(searches))
	eng.ProcessBatch(searches, rs)

	st := eng.Stats()
	if st.Elapsed[stats.StageCache] != 0 {
		t.Error("cache stage ran in Intra mode")
	}
	if got := st.Elapsed[stats.StageEvaluate] + st.Elapsed[stats.StageModify]; got != 0 {
		t.Errorf("stage 2/3 ran on a search-only batch: %v", got)
	}
	if rs.Answered() != len(searches) {
		t.Fatalf("answered %d of %d", rs.Answered(), len(searches))
	}
}

// TestBulkLoadedTreeUnderEngine: a tree bulk-loaded offline and then
// driven by the engine behaves identically to one built by inserts.
func TestBulkLoadedTreeUnderEngine(t *testing.T) {
	const n = 20000
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i * 2)
		vs[i] = keys.Value(i)
	}
	tree, err := btree.BulkLoad(32, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	proc := palm.NewWithTree(palm.Config{Order: 32, Workers: 4, LoadBalance: true}, tree, nil)
	defer proc.Close()

	o := oracle.New()
	for i := range ks {
		o.Apply(keys.Insert(ks[i], vs[i]), nil)
	}
	r := rand.New(rand.NewSource(4))
	for b := 0; b < 3; b++ {
		batch := make([]keys.Query, 5000)
		for i := range batch {
			k := keys.Key(r.Intn(2 * n))
			switch r.Intn(3) {
			case 0:
				batch[i] = keys.Search(k)
			case 1:
				batch[i] = keys.Insert(k, keys.Value(r.Uint32()))
			default:
				batch[i] = keys.Delete(k)
			}
		}
		keys.Number(batch)
		want := keys.NewResultSet(len(batch))
		o.ApplyAll(batch, want)
		got := keys.NewResultSet(len(batch))
		proc.ProcessBatch(batch, got)
		for i := int32(0); i < int32(len(batch)); i++ {
			w, wok := want.Get(i)
			g, gok := got.Get(i)
			if wok != gok || w != g {
				t.Fatalf("batch %d idx %d mismatch", b, i)
			}
		}
		if err := proc.Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatal(err)
		}
	}
}
