package wal

import (
	"encoding/binary"
	"testing"

	"repro/internal/keys"
)

// TestWireOpMapping pins the on-disk op codes. Codes 0/1/2 predate
// scans and RMW; changing them would silently misread existing logs,
// so this is a format regression test, not a tautology.
func TestWireOpMapping(t *testing.T) {
	cases := []struct {
		q    keys.Query
		want byte
	}{
		{keys.Search(1), 0},
		{keys.Insert(1, 2), 1},
		{keys.Delete(1), 2},
		{keys.AddDelta(1, 2), 4},
		{keys.SetIfAbsent(1, 2), 5},
	}
	for _, c := range cases {
		if got := wireOp(&c.q); got != c.want {
			t.Errorf("wireOp(%v/%v) = %d, want %d", c.q.Op, c.q.RMW, got, c.want)
		}
	}
}

// TestWireOpPanicsOnScan: scans are pure reads and must never be
// logged; reaching wireOp with one is a programming error asserted by
// panic rather than silently writing a reserved code.
func TestWireOpPanicsOnScan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wireOp accepted a scan")
		}
	}()
	q := keys.Scan(1, 2, 0)
	wireOp(&q)
}

// TestEncodeFramePointOnlyBytes pins the exact record bytes of a
// point-only frame: logs written by the pre-RMW code must be
// byte-identical to ones written now (same codes, same 17-byte
// layout), so old logs replay and new logs open under old readers.
func TestEncodeFramePointOnlyBytes(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Insert(0x1122334455667788, 0x99),
		keys.Search(7),
		keys.Delete(8),
	})
	frame := encodeFrame(nil, kindBatch, 42, qs)
	plen := binary.LittleEndian.Uint32(frame[0:4])
	if int(plen) != 1+8+4+17*len(qs) {
		t.Fatalf("plen = %d", plen)
	}
	p := frame[8:]
	if p[0] != kindBatch || binary.LittleEndian.Uint64(p[1:9]) != 42 ||
		binary.LittleEndian.Uint32(p[9:13]) != 3 {
		t.Fatalf("header = % x", p[:13])
	}
	wantOps := []byte{1, 0, 2}
	o := 13
	for i, q := range qs {
		if p[o] != wantOps[i] {
			t.Fatalf("record %d op byte = %d, want %d", i, p[o], wantOps[i])
		}
		if binary.LittleEndian.Uint64(p[o+1:o+9]) != uint64(q.Key) ||
			binary.LittleEndian.Uint64(p[o+9:o+17]) != uint64(q.Value) {
			t.Fatalf("record %d bytes = % x", i, p[o:o+17])
		}
		o += 17
	}
}

// TestDecodeQueriesWireCodes checks the decode side: RMW codes map
// back to their kinds, and the reserved scan code 3 (plus anything
// past the known set) is rejected.
func TestDecodeQueriesWireCodes(t *testing.T) {
	enc := func(op byte, k, v uint64) []byte {
		rec := make([]byte, 17)
		rec[0] = op
		binary.LittleEndian.PutUint64(rec[1:9], k)
		binary.LittleEndian.PutUint64(rec[9:17], v)
		return rec
	}

	p := append(enc(4, 10, 3), enc(5, 11, 7)...)
	qs, ok := decodeQueries(p, 2)
	if !ok {
		t.Fatal("RMW records rejected")
	}
	if qs[0].Op != keys.OpRMW || qs[0].RMW != keys.RMWAdd || qs[0].Key != 10 || qs[0].Value != 3 {
		t.Fatalf("record 0 = %+v", qs[0])
	}
	if qs[1].Op != keys.OpRMW || qs[1].RMW != keys.RMWSetIfAbsent || qs[1].Key != 11 || qs[1].Value != 7 {
		t.Fatalf("record 1 = %+v", qs[1])
	}

	for _, bad := range []byte{3, 6, 99, 255} {
		if _, ok := decodeQueries(enc(bad, 1, 1), 1); ok {
			t.Errorf("wire op %d accepted", bad)
		}
	}
}
