package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"repro/internal/keys"
)

// Recovery is the result of scanning a durability directory: the latest
// snapshot (if any) and every committed batch logged after it, in
// commit order. Feed the snapshot and batches back into an engine, then
// call OpenLog to resume appending.
type Recovery struct {
	// SnapshotPayload is the snapshot's payload bytes (nil = none).
	SnapshotPayload []byte
	// SnapshotLSN is the LSN the snapshot covers (0 = none).
	SnapshotLSN uint64
	// Batches are the committed batches with LSN > SnapshotLSN, in
	// commit order. Queries carry op/key/value only; renumber with
	// keys.Number before applying.
	Batches [][]keys.Query

	fs   FS
	dir  string
	opts Options

	maxLSN   uint64            // highest LSN referenced by any valid record
	segMaxes map[uint64]uint64 // per-segment highest LSN (for truncation)
	lastSeq  uint64            // highest segment sequence scanned (0 = none)
	haveSegs bool
	tornSeq  uint64 // segment holding the first invalid frame
	tornOff  int64  // valid-prefix length of that segment
	torn     bool
	dropSegs []string // segments past the torn point (unreachable)
}

// Recover scans dir (created if missing): it reads the snapshot
// envelope, replays every segment in order reassembling committed
// batches, and stops at the first invalid frame (truncated-tail
// tolerance — everything after a torn write is treated as lost, which
// keeps the result a whole-batch prefix).
func Recover(dir string, opts Options) (*Recovery, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	r := &Recovery{fs: fs, dir: dir, opts: opts, segMaxes: make(map[uint64]uint64)}

	payload, lsn, ok, err := readSnapshot(fs, dir)
	if err != nil {
		return nil, err
	}
	if ok {
		r.SnapshotPayload = payload
		r.SnapshotLSN = lsn
		r.maxLSN = lsn
	}

	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	parts := make(map[uint64][]keys.Query)
	for _, name := range names {
		seq, isSeg := parseSegName(name)
		if !isSeg {
			continue
		}
		if r.torn {
			// Unreachable segments beyond a torn point: slated for
			// removal so future replays see a contiguous log.
			r.dropSegs = append(r.dropSegs, name)
			continue
		}
		r.haveSegs = true
		r.lastSeq = seq
		if err := r.scanSegment(name, seq, parts); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// scanSegment replays one segment file, accumulating committed batches
// into r.Batches. An invalid frame marks the log torn at that offset.
func (r *Recovery) scanSegment(name string, seq uint64, parts map[uint64][]keys.Query) error {
	r.segMaxes[seq] = 0 // known, even if empty
	f, err := r.fs.Open(filepath.Join(r.dir, name))
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("wal: read segment %s: %w", name, err)
	}

	markTorn := func(off int64) {
		r.torn = true
		r.tornSeq = seq
		r.tornOff = off
	}

	if len(data) < len(segMagic) || [4]byte(data[:4]) != segMagic {
		// A segment without even a magic header: created but cut before
		// the header write survived. Treat the whole file as torn.
		markTorn(0)
		return nil
	}
	off := int64(len(segMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return nil // clean segment end
		}
		if len(rest) < 8 {
			markTorn(off)
			return nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		want := binary.LittleEndian.Uint32(rest[4:8])
		if plen < 13 || plen > maxFrame || (plen-13)%17 != 0 {
			markTorn(off)
			return nil
		}
		if int64(len(rest)) < 8+int64(plen) {
			markTorn(off)
			return nil
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, crcTable) != want {
			markTorn(off)
			return nil
		}
		kind := payload[0]
		lsn := binary.LittleEndian.Uint64(payload[1:9])
		count := binary.LittleEndian.Uint32(payload[9:13])
		if uint32(len(payload)-13)/17 != count || kind < kindBatch || kind > kindCommit {
			markTorn(off)
			return nil
		}
		qs, ok := decodeQueries(payload[13:], int(count))
		if !ok {
			markTorn(off)
			return nil
		}
		if lsn > r.maxLSN {
			r.maxLSN = lsn
		}
		if lsn > r.segMaxes[seq] {
			r.segMaxes[seq] = lsn
		}
		switch kind {
		case kindBatch:
			if lsn > r.SnapshotLSN {
				r.Batches = append(r.Batches, qs)
			}
		case kindPart:
			parts[lsn] = append(parts[lsn], qs...)
		case kindCommit:
			if sub := parts[lsn]; lsn > r.SnapshotLSN && len(sub) > 0 {
				r.Batches = append(r.Batches, sub)
			}
			delete(parts, lsn)
		}
		off += 8 + int64(plen)
	}
}

// decodeQueries parses count records of {op, key, value}, mapping wire
// op codes back to queries (see the format comment in wal.go). ok is
// false on an invalid op byte — including the reserved scan code 3,
// since scans are never logged.
func decodeQueries(p []byte, count int) ([]keys.Query, bool) {
	if count == 0 {
		return nil, true
	}
	qs := make([]keys.Query, count)
	o := 0
	for i := 0; i < count; i++ {
		q := keys.Query{
			Key:   keys.Key(binary.LittleEndian.Uint64(p[o+1 : o+9])),
			Value: keys.Value(binary.LittleEndian.Uint64(p[o+9 : o+17])),
			Idx:   int32(i),
		}
		switch p[o] {
		case wireSearch:
			q.Op = keys.OpSearch
		case wireInsert:
			q.Op = keys.OpInsert
		case wireDelete:
			q.Op = keys.OpDelete
		case wireRMWAdd:
			q.Op, q.RMW = keys.OpRMW, keys.RMWAdd
		case wireRMWSetIfAbs:
			q.Op, q.RMW = keys.OpRMW, keys.RMWSetIfAbsent
		default:
			return nil, false
		}
		qs[i] = q
		o += 17
	}
	return qs, true
}

// OpenLog finalizes recovery and returns an append-ready Log: the torn
// tail (if any) is truncated, unreachable segments are removed, any
// stale snapshot temp file is deleted, and a fresh segment is opened
// with LSNs continuing after the highest recovered one.
func (r *Recovery) OpenLog() (*Log, error) {
	if r.torn {
		if r.tornOff <= int64(len(segMagic)) {
			// Nothing valid in the torn segment: drop it whole.
			if err := r.fs.Remove(filepath.Join(r.dir, segName(r.tornSeq))); err != nil {
				return nil, fmt.Errorf("wal: drop torn segment: %w", err)
			}
			delete(r.segMaxes, r.tornSeq)
		} else if err := r.fs.Truncate(filepath.Join(r.dir, segName(r.tornSeq)), r.tornOff); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		for _, name := range r.dropSegs {
			if err := r.fs.Remove(filepath.Join(r.dir, name)); err != nil {
				return nil, fmt.Errorf("wal: drop unreachable segment: %w", err)
			}
		}
	}
	// A snapshot temp file is, by construction, an unfinished
	// checkpoint; discard it.
	r.fs.Remove(filepath.Join(r.dir, snapTemp))

	nextSeq := uint64(1)
	if r.haveSegs {
		nextSeq = r.lastSeq + 1
	}
	l, err := newLog(r.fs, r.dir, r.opts, r.maxLSN+1, nextSeq)
	if err != nil {
		return nil, err
	}
	// Seed the truncation bookkeeping with the recovered segments'
	// LSN bounds so a later checkpoint can collect them.
	l.mu.Lock()
	for seq, max := range r.segMaxes {
		if seq != l.segSeq {
			l.segMax[seq] = max
		}
	}
	l.mu.Unlock()
	return l, nil
}
