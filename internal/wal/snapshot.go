package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// Snapshot envelope (little-endian):
//
//	magic   [4]byte "QSN1"
//	lsn     uint64   every batch with LSN <= lsn is reflected
//	plen    uint64   payload length
//	payload plen bytes (the engine's own checksummed tree snapshot)
//	crc     uint32   CRC32C over lsn|plen|payload
//
// Snapshots are written atomically: the whole envelope goes to a temp
// file which is fsynced and then renamed over the live snapshot, so a
// crash mid-checkpoint leaves the previous snapshot (and the full WAL
// that goes with it) intact.

var snapEnvMagic = [4]byte{'Q', 'S', 'N', '1'}

// WriteSnapshot atomically replaces dir's snapshot with one at snapLSN
// whose payload is produced by write (typically btree.Tree.Save).
func WriteSnapshot(fs FS, dir string, snapLSN uint64, write func(io.Writer) error) error {
	var payload bytes.Buffer
	if err := write(&payload); err != nil {
		return fmt.Errorf("wal: snapshot payload: %w", err)
	}

	var hdr [20]byte
	copy(hdr[0:4], snapEnvMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], snapLSN)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	sum := crc32.New(crcTable)
	sum.Write(hdr[4:20])
	sum.Write(payload.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())

	tmp := filepath.Join(dir, snapTemp)
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	for _, chunk := range [][]byte{hdr[:], payload.Bytes(), tail[:]} {
		if _, err := f.Write(chunk); err != nil {
			f.Close()
			return fmt.Errorf("wal: snapshot write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return nil
}

// readSnapshot loads and verifies dir's snapshot envelope. ok is false
// (with a nil error) when no snapshot exists; corruption is an error —
// a present-but-unreadable snapshot must not silently recover as empty.
func readSnapshot(fs FS, dir string) (payload []byte, lsn uint64, ok bool, err error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot list: %w", err)
	}
	present := false
	for _, n := range names {
		if n == snapName {
			present = true
			break
		}
	}
	if !present {
		return nil, 0, false, nil
	}
	f, err := fs.Open(filepath.Join(dir, snapName))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot open: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot read: %w", err)
	}
	if len(data) < 24 || [4]byte(data[0:4]) != snapEnvMagic {
		return nil, 0, false, fmt.Errorf("wal: snapshot envelope corrupt (bad magic or short file)")
	}
	lsn = binary.LittleEndian.Uint64(data[4:12])
	plen := binary.LittleEndian.Uint64(data[12:20])
	if plen != uint64(len(data)-24) {
		return nil, 0, false, fmt.Errorf("wal: snapshot payload length mismatch (header %d, file %d)", plen, len(data)-24)
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[4:len(data)-4], crcTable); got != stored {
		return nil, 0, false, fmt.Errorf("wal: snapshot checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	return data[20 : len(data)-4], lsn, true, nil
}
