package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the WAL and snapshot machinery uses. It
// exists so fault-injection tests (internal/faultfs) can interpose on
// every write, sync, and rename the durability layer performs; the
// default implementation is the real OS filesystem.
type FS interface {
	// Create truncates/creates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll ensures dir (and parents) exist.
	MkdirAll(dir string) error
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
}

// File is one open file. Write/Sync/Close on files opened with Create;
// Read on files opened with Open.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes previously written data durable.
	Sync() error
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Rename(o, n string) error {
	if err := os.Rename(o, n); err != nil {
		return err
	}
	// Make the rename itself durable: sync the containing directory.
	if d, err := os.Open(filepath.Dir(n)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, sz int64) error { return os.Truncate(name, sz) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
