package wal_test

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/keys"
	"repro/internal/wal"
)

func batch(ops ...keys.Query) []keys.Query { return ops }

func stripIdx(qs []keys.Query) []keys.Query {
	out := make([]keys.Query, len(qs))
	for i, q := range qs {
		q.Idx = int32(i)
		out[i] = q
	}
	return out
}

func openLog(t *testing.T, fs wal.FS, dir string, opts wal.Options) (*wal.Recovery, *wal.Log) {
	t.Helper()
	opts.FS = fs
	rec, err := wal.Recover(dir, opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	l, err := rec.OpenLog()
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return rec, l
}

func TestRoundTripBatches(t *testing.T) {
	fs := faultfs.New()
	batches := [][]keys.Query{
		batch(keys.Insert(1, 10), keys.Search(1)),
		batch(keys.Delete(1)),
		batch(keys.Insert(2, 20), keys.Insert(3, 30), keys.Search(9)),
	}
	_, l := openLog(t, fs, "d", wal.Options{})
	for _, b := range batches {
		if err := l.CommitBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, l2 := openLog(t, fs, "d", wal.Options{})
	defer l2.Close()
	if rec.SnapshotPayload != nil || rec.SnapshotLSN != 0 {
		t.Fatalf("unexpected snapshot: lsn=%d", rec.SnapshotLSN)
	}
	if len(rec.Batches) != len(batches) {
		t.Fatalf("recovered %d batches, want %d", len(rec.Batches), len(batches))
	}
	for i := range batches {
		if !reflect.DeepEqual(rec.Batches[i], stripIdx(batches[i])) {
			t.Fatalf("batch %d: got %v want %v", i, rec.Batches[i], batches[i])
		}
	}
	// LSNs continue after recovery.
	if got := l2.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after recovery = %d, want 3", got)
	}
}

func TestPartsRequireCommitMarker(t *testing.T) {
	fs := faultfs.New()
	_, l := openLog(t, fs, "d", wal.Options{})

	// Batch 1: two parts + commit marker.
	lsn1 := l.BeginBatch()
	if err := l.CommitPart(lsn1, batch(keys.Insert(1, 1))); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitPart(lsn1, batch(keys.Insert(100, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.EndBatch(lsn1); err != nil {
		t.Fatal(err)
	}
	// Batch 2: a part with no commit marker — must be discarded.
	lsn2 := l.BeginBatch()
	if err := l.CommitPart(lsn2, batch(keys.Insert(7, 7))); err != nil {
		t.Fatal(err)
	}
	l.Close()

	rec, l2 := openLog(t, fs, "d", wal.Options{})
	defer l2.Close()
	if len(rec.Batches) != 1 {
		t.Fatalf("recovered %d batches, want 1 (uncommitted parts dropped)", len(rec.Batches))
	}
	got := rec.Batches[0]
	if len(got) != 2 || got[0].Key != 1 || got[1].Key != 100 {
		t.Fatalf("reassembled batch = %v", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	for cut := int64(0); cut < 400; cut += 7 {
		fs := faultfs.New()
		_, l := openLog(t, fs, "d", wal.Options{Sync: wal.SyncOff})
		var wrote int
		for i := 0; i < 8; i++ {
			if err := l.CommitBatch(batch(keys.Insert(keys.Key(i), keys.Value(i)))); err != nil {
				break
			}
			wrote++
		}
		fs.SyncAll()
		// Simulate a torn tail: chop the segment at an arbitrary byte.
		name := "d/wal-0000000000000001.seg"
		content, ok := fs.Content(name)
		if !ok {
			t.Fatalf("cut %d: no segment", cut)
		}
		if cut >= int64(len(content)) {
			continue
		}
		if err := fs.Truncate(name, cut); err != nil {
			t.Fatal(err)
		}

		rec, l2 := openLog(t, fs, "d", wal.Options{})
		got := len(rec.Batches)
		if got > wrote {
			t.Fatalf("cut %d: recovered %d > wrote %d", cut, got, wrote)
		}
		// Whatever survived must be an exact prefix.
		for i, b := range rec.Batches {
			if len(b) != 1 || b[0].Key != keys.Key(i) {
				t.Fatalf("cut %d: batch %d = %v", cut, i, b)
			}
		}
		// The reopened log must accept appends and recover them.
		if err := l2.CommitBatch(batch(keys.Insert(999, 999))); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		rec2, l3 := openLog(t, fs, "d", wal.Options{})
		if len(rec2.Batches) != got+1 || rec2.Batches[got][0].Key != 999 {
			t.Fatalf("cut %d: after reopen got %d batches", cut, len(rec2.Batches))
		}
		l3.Close()
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	fs := faultfs.New()
	// Tiny segments force rotation nearly every batch.
	_, l := openLog(t, fs, "d", wal.Options{SegmentSize: 64})
	for i := 0; i < 20; i++ {
		if err := l.CommitBatch(batch(keys.Insert(keys.Key(i), 1))); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.List("d")
	if len(names) < 5 {
		t.Fatalf("expected many segments, got %v", names)
	}

	// Snapshot at the last LSN, then truncate: all old segments go.
	snapLSN := l.LastLSN()
	if err := wal.WriteSnapshot(fs, "d", snapLSN, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateObsolete(snapLSN); err != nil {
		t.Fatal(err)
	}
	names, _ = fs.List("d")
	segs := 0
	for _, n := range names {
		if len(n) > 4 && n[:4] == "wal-" {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("after truncate: %d segments (%v), want 1", segs, names)
	}

	// Continue appending; recovery sees snapshot + only the new batches.
	if err := l.CommitBatch(batch(keys.Insert(777, 7))); err != nil {
		t.Fatal(err)
	}
	l.Close()
	rec, l2 := openLog(t, fs, "d", wal.Options{})
	defer l2.Close()
	if string(rec.SnapshotPayload) != "payload" || rec.SnapshotLSN != snapLSN {
		t.Fatalf("snapshot payload %q lsn %d", rec.SnapshotPayload, rec.SnapshotLSN)
	}
	if len(rec.Batches) != 1 || rec.Batches[0][0].Key != 777 {
		t.Fatalf("post-snapshot batches = %v", rec.Batches)
	}
}

func TestSnapshotAtomicUnderPowerCut(t *testing.T) {
	// A cut at every byte offset during snapshot writing must leave
	// either the old snapshot or the new one — never a corrupt state.
	for cut := int64(0); cut < 120; cut++ {
		fs := faultfs.New()
		if err := wal.WriteSnapshot(fs, "d", 1, func(w io.Writer) error {
			_, err := w.Write([]byte("old-state"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		fs.CutAfter(cut)
		err := wal.WriteSnapshot(fs, "d", 2, func(w io.Writer) error {
			_, err := w.Write([]byte("new-state!"))
			return err
		})
		fs.Crash(int64(cut) * 31)
		rec, err2 := wal.Recover("d", wal.Options{FS: fs})
		if err2 != nil {
			t.Fatalf("cut %d: recover: %v", cut, err2)
		}
		switch string(rec.SnapshotPayload) {
		case "old-state":
			if err == nil {
				t.Fatalf("cut %d: write reported success but old snapshot survived", cut)
			}
			if rec.SnapshotLSN != 1 {
				t.Fatalf("cut %d: lsn %d", cut, rec.SnapshotLSN)
			}
		case "new-state!":
			if rec.SnapshotLSN != 2 {
				t.Fatalf("cut %d: lsn %d", cut, rec.SnapshotLSN)
			}
		default:
			t.Fatalf("cut %d: payload %q", cut, rec.SnapshotPayload)
		}
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	fs := faultfs.New()
	_, l := openLog(t, fs, "d", wal.Options{})
	for i := 0; i < 4; i++ {
		if err := l.CommitBatch(batch(keys.Insert(keys.Key(i), 1))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	name := "d/wal-0000000000000001.seg"
	content, _ := fs.Content(name)
	// Flip one byte inside the third record's payload area.
	mut := append([]byte(nil), content...)
	mut[len(mut)-10] ^= 0xFF
	f, _ := fs.Create(name)
	f.Write(mut)
	f.Sync()
	f.Close()

	rec, l2 := openLog(t, fs, "d", wal.Options{})
	defer l2.Close()
	if len(rec.Batches) >= 4 {
		t.Fatalf("corrupt record still replayed: %d batches", len(rec.Batches))
	}
	for i, b := range rec.Batches {
		if b[0].Key != keys.Key(i) {
			t.Fatalf("non-prefix recovery at %d", i)
		}
	}
}

func TestSyncPolicyDurability(t *testing.T) {
	// With SyncAlways every committed batch survives a crash that
	// drops all unsynced bytes; with SyncOff nothing need survive.
	for _, tc := range []struct {
		policy wal.SyncPolicy
		min    int
	}{{wal.SyncAlways, 5}, {wal.SyncOff, 0}} {
		fs := faultfs.New()
		_, l := openLog(t, fs, "d", wal.Options{Sync: tc.policy})
		for i := 0; i < 5; i++ {
			if err := l.CommitBatch(batch(keys.Insert(keys.Key(i), 1))); err != nil {
				t.Fatal(err)
			}
		}
		// Crash with seed 0 → rng keeps arbitrary volatile prefixes;
		// durable bytes always survive.
		fs.Crash(1)
		rec, err := wal.Recover("d", wal.Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Batches) < tc.min {
			t.Fatalf("policy %v: recovered %d batches, want >= %d", tc.policy, len(rec.Batches), tc.min)
		}
	}
}

func TestPoisonAfterWriteFailure(t *testing.T) {
	fs := faultfs.New()
	_, l := openLog(t, fs, "d", wal.Options{})
	if err := l.CommitBatch(batch(keys.Insert(1, 1))); err != nil {
		t.Fatal(err)
	}
	fs.CutAfter(3)
	if err := l.CommitBatch(batch(keys.Insert(2, 2))); err == nil {
		t.Fatal("append past the cut succeeded")
	}
	if err := l.Err(); err == nil {
		t.Fatal("log not poisoned after failed append")
	}
	fs.Crash(0)
	if err := l.CommitBatch(batch(keys.Insert(3, 3))); err == nil {
		t.Fatal("poisoned log accepted a batch")
	}
}

func TestEncodeDecodeFuzzSeedShapes(t *testing.T) {
	// Exercises frame validation directly: random garbage appended to a
	// valid log must never panic recovery.
	fs := faultfs.New()
	_, l := openLog(t, fs, "d", wal.Options{})
	l.CommitBatch(batch(keys.Insert(1, 1)))
	l.Close()
	name := "d/wal-0000000000000001.seg"
	content, _ := fs.Content(name)
	for _, tail := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, // absurd length
		{13, 0, 0, 0, 1, 2, 3, 4},            // plausible length, bad crc
		bytes.Repeat([]byte{0xAA}, 3),        // short garbage
		{0, 0, 0, 0, 0, 0, 0, 0},             // zero-length frame
	} {
		f, _ := fs.Create(name)
		f.Write(append(append([]byte(nil), content...), tail...))
		f.Sync()
		f.Close()
		rec, err := wal.Recover("d", wal.Options{FS: fs})
		if err != nil {
			t.Fatalf("tail %v: %v", tail, err)
		}
		if len(rec.Batches) != 1 {
			t.Fatalf("tail %v: %d batches", tail, len(rec.Batches))
		}
	}
}

func TestSegNames(t *testing.T) {
	for i := uint64(1); i < 100; i += 13 {
		name := fmt.Sprintf("wal-%016d.seg", i)
		_ = name
	}
}

// TestRMWRoundTripBatches: read-modify-write queries commit and replay
// with their kind intact (scans, by contrast, never reach the log —
// the engine's commit plan excludes them before CommitBatch).
func TestRMWRoundTripBatches(t *testing.T) {
	fs := faultfs.New()
	batches := [][]keys.Query{
		batch(keys.AddDelta(1, 10), keys.Insert(2, 20)),
		batch(keys.SetIfAbsent(3, 30), keys.Delete(2), keys.AddDelta(1, 1)),
	}
	_, l := openLog(t, fs, "d", wal.Options{})
	for _, b := range batches {
		if err := l.CommitBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, l2 := openLog(t, fs, "d", wal.Options{})
	defer l2.Close()
	if len(rec.Batches) != len(batches) {
		t.Fatalf("recovered %d batches, want %d", len(rec.Batches), len(batches))
	}
	for bi, want := range batches {
		got := rec.Batches[bi]
		if !reflect.DeepEqual(got, stripIdx(want)) {
			t.Fatalf("batch %d:\n got %+v\nwant %+v", bi, got, stripIdx(want))
		}
	}
}
