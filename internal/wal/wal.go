// Package wal implements the crash-safe durability layer of the engine
// (DESIGN.md §7): a length-framed, CRC32C-checksummed write-ahead log
// of committed batches, plus atomic snapshot files.
//
// The commit point is the batch — the atomic unit of evaluation in the
// PALM/QTrans design — and what is logged per batch is its post-QSAT
// surviving queries, appended *before* any of the batch's effects reach
// tree or cache (append-then-apply). A crash therefore loses at most a
// whole-batch suffix: replay recovers exactly the state after some
// whole-batch prefix of the committed stream.
//
// Segment format (little-endian):
//
//	magic  [4]byte "QWL1"
//	frames:
//	  length uint32   payload bytes
//	  crc    uint32   CRC32C of payload
//	  payload:
//	    kind   uint8    1=batch  2=part  3=commit
//	    lsn    uint64
//	    count  uint32   queries (0 for commit markers)
//	    count × { op uint8, key uint64, value uint64 }
//
// The record op byte is a wire code, not keys.Op: 0=search, 1=insert,
// 2=delete, 4=RMW(add), 5=RMW(set-if-absent), with the RMW operand in
// the value field. Range scans are pure reads and never reach the
// commit path (wire code 3 is reserved and rejected on replay), so
// point-only logs are byte-identical to those written before RMW
// existed.
//
// A `batch` record is one whole committed batch (the single-engine
// path). The sharded engine appends one `part` record per shard
// sub-batch followed by a `commit` marker once every shard's part is in
// the log; a batch without its commit marker is discarded on replay, so
// multi-shard batches stay atomic. Records are serialized through one
// Log, so commit-marker order equals batch arrival order.
//
// Replay tolerates a truncated tail: scanning stops at the first
// invalid frame (torn write, CRC mismatch, short segment) and everything
// from that point on — including later segments — is treated as lost,
// which keeps the recovered stream a prefix in batch order.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/keys"
	"repro/internal/metrics"
)

// SyncPolicy selects when the log fsyncs (the durability/throughput
// trade documented in EXPERIMENTS.md).
type SyncPolicy int

const (
	// SyncAlways fsyncs every committed batch before it is applied —
	// the zero value, and the only policy under which an acknowledged
	// batch is guaranteed to survive a power cut.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker every SyncInterval;
	// a crash loses at most the last interval's batches.
	SyncInterval
	// SyncOff never fsyncs (the OS decides); a crash may lose any
	// unflushed suffix. Replay still recovers a whole-batch prefix.
	SyncOff
)

// String names the policy as used by flags and benchmarks.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options tunes a Log.
type Options struct {
	// FS is the filesystem to operate on (nil = the real OS one).
	FS FS
	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes (0 = 4 MiB).
	SegmentSize int64
	// Sync is the fsync policy (zero value = SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period for SyncInterval
	// (0 = 50ms).
	SyncInterval time.Duration
	// Metrics, when non-nil, receives append/fsync latency histograms
	// (wal_append_ns, wal_fsync_ns). Nil adds no per-record overhead.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS()
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	return o
}

var (
	segMagic  = [4]byte{'Q', 'W', 'L', '1'}
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
	snapName  = "snapshot"
	snapTemp  = "snapshot.tmp"
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// maxFrame bounds one record's payload so a corrupt length field cannot
// force a huge allocation during replay.
const maxFrame = 64 << 20

const (
	kindBatch  = 1
	kindPart   = 2
	kindCommit = 3
)

func segName(seq uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (seq uint64, ok bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) {
		return 0, false
	}
	if name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	if _, err := fmt.Sscanf(name[len(segPrefix):len(segPrefix)+16], "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Log is the append side of the write-ahead log. All methods are safe
// for concurrent use (appends from parallel shards serialize on an
// internal mutex). A Log is obtained from Recovery.OpenLog.
type Log struct {
	mu   sync.Mutex
	fs   FS
	dir  string
	opts Options

	seg     File   // current segment (nil after Close)
	segSeq  uint64 // current segment's sequence number
	segSize int64
	// segMax records, per live segment sequence number, the highest LSN
	// any of its records references — the conservative bound
	// TruncateObsolete uses.
	segMax map[uint64]uint64

	next    uint64 // next LSN to assign (LSNs start at 1)
	dirty   bool   // unsynced appends pending (interval mode)
	err     error  // sticky failure; the log is poisoned once set
	closed  bool
	scratch []byte // frame build buffer; guarded by mu

	stop chan struct{}
	wg   sync.WaitGroup

	// Metric handles (nil when Options.Metrics is nil).
	metReg   *metrics.Registry
	appendNS *metrics.Histogram
	fsyncNS  *metrics.Histogram
}

// newLog opens a fresh segment for appending. next is the first LSN to
// assign; seq is the segment sequence number to create.
func newLog(fs FS, dir string, opts Options, next, seq uint64) (*Log, error) {
	l := &Log{
		fs:     fs,
		dir:    dir,
		opts:   opts,
		next:   next,
		segMax: make(map[uint64]uint64),
	}
	if opts.Metrics != nil {
		l.metReg = opts.Metrics
		l.appendNS = opts.Metrics.Histogram("wal_append_ns")
		l.fsyncNS = opts.Metrics.Histogram("wal_fsync_ns")
	}
	if err := l.rotateLocked(seq); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		}
	}
}

// syncLocked fsyncs the current segment if it has unsynced appends.
func (l *Log) syncLocked() {
	if l.err != nil || !l.dirty || l.seg == nil {
		return
	}
	var start time.Time
	if l.fsyncNS != nil {
		start = l.metReg.Now()
	}
	if err := l.seg.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return
	}
	if l.fsyncNS != nil {
		l.fsyncNS.Observe(l.metReg.Since(start))
	}
	l.dirty = false
}

// rotateLocked closes the current segment (fsyncing it first unless the
// policy is SyncOff) and opens segment seq.
func (l *Log) rotateLocked(seq uint64) error {
	if l.seg != nil {
		if l.opts.Sync != SyncOff {
			l.syncLocked()
		}
		if err := l.seg.Close(); err != nil && l.err == nil {
			l.err = fmt.Errorf("wal: close segment: %w", err)
		}
		l.seg = nil
		if l.err != nil {
			return l.err
		}
	}
	f, err := l.fs.Create(filepath.Join(l.dir, segName(seq)))
	if err != nil {
		l.err = fmt.Errorf("wal: create segment: %w", err)
		return l.err
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		l.err = fmt.Errorf("wal: segment magic: %w", err)
		return l.err
	}
	l.seg = f
	l.segSeq = seq
	l.segSize = int64(len(segMagic))
	l.segMax[seq] = 0
	l.dirty = true
	return nil
}

// Wire op codes for logged queries. 0-2 coincide with keys.Op; 3 is
// reserved (scans are never logged); RMW splits into one code per kind
// so the 17-byte record needs no extra field.
const (
	wireSearch      = 0
	wireInsert      = 1
	wireDelete      = 2
	wireRMWAdd      = 4
	wireRMWSetIfAbs = 5
)

// wireOp maps a query to its wire code. Scans must never reach the
// commit path — the engine evaluates them without logging — so hitting
// one here is a programming error, not an I/O condition.
func wireOp(q *keys.Query) byte {
	switch q.Op {
	case keys.OpSearch:
		return wireSearch
	case keys.OpInsert:
		return wireInsert
	case keys.OpDelete:
		return wireDelete
	case keys.OpRMW:
		if q.RMW == keys.RMWSetIfAbsent {
			return wireRMWSetIfAbs
		}
		return wireRMWAdd
	default:
		panic(fmt.Sprintf("wal: query op %d cannot be logged", q.Op))
	}
}

// encodeFrame appends one framed record to buf and returns it.
func encodeFrame(buf []byte, kind uint8, lsn uint64, qs []keys.Query) []byte {
	plen := 1 + 8 + 4 + 17*len(qs)
	start := len(buf)
	buf = append(buf, make([]byte, 8+plen)...)
	p := buf[start+8:]
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:9], lsn)
	binary.LittleEndian.PutUint32(p[9:13], uint32(len(qs)))
	o := 13
	for i := range qs {
		p[o] = wireOp(&qs[i])
		binary.LittleEndian.PutUint64(p[o+1:o+9], uint64(qs[i].Key))
		binary.LittleEndian.PutUint64(p[o+9:o+17], uint64(qs[i].Value))
		o += 17
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(p, crcTable))
	return buf
}

// appendLocked writes one record, rotating segments as needed, and
// applies the per-record fsync policy when sync is true.
func (l *Log) appendLocked(kind uint8, lsn uint64, qs []keys.Query, sync bool) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		l.err = fmt.Errorf("wal: append after Close")
		return l.err
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotateLocked(l.segSeq + 1); err != nil {
			return err
		}
	}
	l.scratch = encodeFrame(l.scratch[:0], kind, lsn, qs)
	frame := l.scratch
	var start time.Time
	if l.appendNS != nil {
		start = l.metReg.Now()
	}
	if _, err := l.seg.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	if l.appendNS != nil {
		l.appendNS.Observe(l.metReg.Since(start))
	}
	l.segSize += int64(len(frame))
	if lsn > l.segMax[l.segSeq] {
		l.segMax[l.segSeq] = lsn
	}
	l.dirty = true
	if sync && l.opts.Sync == SyncAlways {
		l.syncLocked()
		return l.err
	}
	return nil
}

// CommitBatch appends one whole batch's surviving queries as a single
// committed record, durable per the sync policy before it returns.
// This is the single-engine commit path (core.Committer).
func (l *Log) CommitBatch(qs []keys.Query) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.next
	l.next++
	return l.appendLocked(kindBatch, lsn, qs, true)
}

// BeginBatch reserves the LSN for a multi-part (sharded) batch.
func (l *Log) BeginBatch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.next
	l.next++
	return lsn
}

// CommitPart appends one shard's surviving sub-batch for the batch at
// lsn. Parts are not individually fsynced — the EndBatch marker's sync
// covers them (same file, sequential offsets; rotation syncs too).
func (l *Log) CommitPart(lsn uint64, qs []keys.Query) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(kindPart, lsn, qs, false)
}

// EndBatch appends the commit marker for the batch at lsn: the batch
// becomes replayable only once this record is in the log.
func (l *Log) EndBatch(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(kindCommit, lsn, nil, true)
}

// LastLSN returns the most recently assigned LSN (0 = none yet).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Err returns the sticky failure, if any: once an append or sync has
// failed the log is poisoned and every later operation returns the same
// error, so the engine stops acknowledging batches.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.syncLocked()
	return l.err
}

// TruncateObsolete removes closed segments made obsolete by a durable
// snapshot at snapLSN: the longest prefix of segments whose every
// record has lsn <= snapLSN. The current segment is rotated first so it
// can be collected too. Call only while no batch is in flight (the
// facade holds its snapshot gate).
func (l *Log) TruncateObsolete(snapLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.rotateLocked(l.segSeq + 1); err != nil {
		return err
	}
	names, err := l.fs.List(l.dir)
	if err != nil {
		return fmt.Errorf("wal: truncate list: %w", err)
	}
	for _, name := range names {
		seq, ok := parseSegName(name)
		if !ok || seq == l.segSeq {
			continue
		}
		max, known := l.segMax[seq]
		if !known || max > snapLSN {
			break // prefix only: keep everything from here on
		}
		if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
			return fmt.Errorf("wal: truncate remove %s: %w", name, err)
		}
		delete(l.segMax, seq)
	}
	return nil
}

// Close fsyncs (a clean shutdown is not a crash, regardless of policy)
// and closes the current segment. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.err
	}
	l.closed = true
	if l.stop != nil {
		close(l.stop)
	}
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg != nil {
		if l.err == nil && l.dirty {
			if err := l.seg.Sync(); err != nil {
				l.err = fmt.Errorf("wal: close sync: %w", err)
			}
		}
		if err := l.seg.Close(); err != nil && l.err == nil {
			l.err = fmt.Errorf("wal: close: %w", err)
		}
		l.seg = nil
	}
	return l.err
}
