package workload

import (
	"math/rand"

	"repro/internal/keys"
)

// Drifting is the moving-hotspot workload behind the autoshard
// experiment (DESIGN.md §13): a hot window of Width contiguous keys
// receives HotFraction of the traffic while its center walks the key
// space at Velocity keys per draw, wrapping around at Span. The
// remaining draws are uniform over the whole space. Unlike TimeVarying
// — whose window teleports between simulated hours — the drift here is
// continuous, which is exactly the case an autoshard controller must
// chase: any static partition is right only for a while.
type Drifting struct {
	// Span is the key space [0, Span).
	Span uint64
	// Width is the hot window's size in keys.
	Width uint64
	// Velocity is how far the window's center moves per draw, in
	// thousandths of a key (so slow drifts below one key per draw are
	// expressible): 1000 = one key per draw.
	VelocityMilli uint64
	// HotFraction is the fraction of draws landing in the window.
	HotFraction float64

	clock uint64
}

// NewDrifting returns a drifting hotspot over [0, span) with defaults:
// a span/64 window, 90% hot traffic, drifting one key per 4 draws.
func NewDrifting(span uint64) *Drifting {
	return &Drifting{
		Span:          span,
		Width:         span / 64,
		VelocityMilli: 250,
		HotFraction:   0.9,
	}
}

// center returns the window's current center key.
func (d *Drifting) center() uint64 {
	return d.clock * d.VelocityMilli / 1000 % d.Span
}

// Key implements Generator. Not safe for concurrent use (the drift
// clock advances per draw), matching the other generators.
func (d *Drifting) Key(r *rand.Rand) keys.Key {
	d.clock++
	if r.Float64() < d.HotFraction {
		off := uint64(r.Int63n(int64(d.Width)))
		// Window [center-Width/2, center+Width/2), wrapped.
		return keys.Key((d.center() + d.Span - d.Width/2 + off) % d.Span)
	}
	return keys.Key(r.Uint64() % d.Span)
}

// Name implements Generator.
func (d *Drifting) Name() string { return "drifting" }

// KeyRange implements Generator.
func (d *Drifting) KeyRange() uint64 { return d.Span }

// Clock returns the number of draws so far.
func (d *Drifting) Clock() uint64 { return d.clock }
