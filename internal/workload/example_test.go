package workload_test

import (
	"fmt"
	"math/rand"

	"repro/internal/keys"
	"repro/internal/workload"
)

// Building a skewed query batch from a Table I dataset spec.
func Example() {
	spec, err := workload.SpecByName("zipfian", 0.001)
	if err != nil {
		panic(err)
	}
	gen := spec.Build()
	r := rand.New(rand.NewSource(1))
	batch := workload.Batch(gen, r, 10000, 0.25) // 25% updates

	s, i, d := keys.CountOps(batch)
	fmt.Println("searches > updates:", s > i+d)
	frac, _ := workload.Coverage(gen, rand.New(rand.NewSource(1)), 50000, 100)
	fmt.Println("top-100 keys cover more than a third of draws:", frac > 0.33)
	// Output:
	// searches > updates: true
	// top-100 keys cover more than a third of draws: true
}

// The synthetic taxi generator reproduces the paper's Fig. 4(a) skew:
// the top 1000 of 4,194,304 grid cells draw about 68% of visits.
func ExampleNewTaxi() {
	gen := workload.NewTaxi()
	frac, _ := workload.Coverage(gen, rand.New(rand.NewSource(8)), 200000, 1000)
	fmt.Printf("cells: %d, top-1000 coverage ~0.68: %v\n",
		gen.KeyRange(), frac > 0.63 && frac < 0.74)
	// Output: cells: 4194304, top-1000 coverage ~0.68: true
}
