package workload

import (
	"math"
	"math/rand"

	"repro/internal/keys"
)

// TimeVarying models the *temporal* skew of §I's taxi motivation
// ("queries to the locations where taxi drivers stop are highly biased
// in both the time dimension (e.g., rush hours) and the space
// dimension"): the hot set of an inner generator drifts over simulated
// time, and an intensity wave modulates how concentrated traffic is.
//
// Concretely, each draw first picks between the inner generator's key
// (spatial skew) and a rotating window of "currently hot" keys whose
// position advances every Period draws; the probability of the hot
// window follows a raised sinusoid so that "rush hours" (wave peaks)
// send up to PeakHotFraction of traffic to the window and quiet hours
// almost none.
type TimeVarying struct {
	Inner Generator
	// WindowSize is the number of contiguous keys in the rotating hot
	// window.
	WindowSize uint64
	// Period is how many draws one full day (one sinusoid cycle) takes.
	Period uint64
	// PeakHotFraction is the fraction of traffic on the window at the
	// wave's peak.
	PeakHotFraction float64

	clock uint64
}

// NewTimeVarying wraps inner with drifting rush-hour hotspots using
// sensible defaults: a 1024-key window, a 1M-draw day, 70 % peak
// concentration.
func NewTimeVarying(inner Generator) *TimeVarying {
	return &TimeVarying{
		Inner:           inner,
		WindowSize:      1024,
		Period:          1 << 20,
		PeakHotFraction: 0.7,
	}
}

// Key implements Generator. Not safe for concurrent use (the simulated
// clock advances per draw), matching the other generators.
func (tv *TimeVarying) Key(r *rand.Rand) keys.Key {
	tv.clock++
	phase := 2 * math.Pi * float64(tv.clock%tv.Period) / float64(tv.Period)
	hotProb := tv.PeakHotFraction * (0.5 - 0.5*math.Cos(phase)) // 0 at day start, peak mid-day
	if r.Float64() < hotProb {
		// The window jumps to a new location every simulated hour (24
		// steps per day) and between days, staying fixed within an
		// hour so traffic concentrates on it.
		day := tv.clock / tv.Period
		hour := tv.clock % tv.Period * 24 / tv.Period
		start := ((day*7919 + hour*131) * tv.WindowSize) % tv.Inner.KeyRange()
		return keys.Key((start + uint64(r.Int63n(int64(tv.WindowSize)))) % tv.Inner.KeyRange())
	}
	return tv.Inner.Key(r)
}

// Name implements Generator.
func (tv *TimeVarying) Name() string { return tv.Inner.Name() + "+rush" }

// KeyRange implements Generator.
func (tv *TimeVarying) KeyRange() uint64 { return tv.Inner.KeyRange() }

// Clock returns the number of draws so far (simulated time).
func (tv *TimeVarying) Clock() uint64 { return tv.clock }
