package workload

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

func TestUniformRangeAndName(t *testing.T) {
	g := NewUniform(1000)
	if g.Name() != "uniform" || g.KeyRange() != 1000 {
		t.Fatalf("meta: %s %d", g.Name(), g.KeyRange())
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if k := g.Key(r); uint64(k) >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	g := NewUniform(10)
	r := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Key(r)]++
	}
	for k, c := range counts {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Fatalf("key %d count %d deviates >20%% from uniform", k, c)
		}
	}
}

func TestGaussianConcentration(t *testing.T) {
	g := NewGaussian(1_000_000)
	r := rand.New(rand.NewSource(3))
	within := 0
	const n = 20000
	for i := 0; i < n; i++ {
		k := float64(g.Key(r))
		if k >= g.Mu-3*g.Sigma && k <= g.Mu+3*g.Sigma {
			within++
		}
		if k < 0 || k >= 1_000_000 {
			t.Fatalf("key %f out of range", k)
		}
	}
	if frac := float64(within) / n; frac < 0.99 {
		t.Fatalf("only %f within 3 sigma", frac)
	}
}

func TestSelfSimilar8020(t *testing.T) {
	g := NewSelfSimilar(100000, 0.2)
	r := rand.New(rand.NewSource(4))
	const n = 50000
	inTop20 := 0
	for i := 0; i < n; i++ {
		if uint64(g.Key(r)) < 20000 {
			inTop20++
		}
	}
	frac := float64(inTop20) / n
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("80-20 rule violated: %f of accesses in first 20%%", frac)
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	g := NewZipfian(10000, 0.99)
	r := rand.New(rand.NewSource(5))
	counts := make(map[keys.Key]int)
	const n = 50000
	for i := 0; i < n; i++ {
		k := g.Key(r)
		if uint64(k) >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 must be the most frequent by a wide margin.
	if counts[0] < n/20 {
		t.Fatalf("rank-0 count %d too small for zipfian", counts[0])
	}
	// Degenerate theta handling.
	g1 := NewZipfian(100, 1.0)
	if g1.Theta >= 1 {
		t.Fatal("theta=1 must be adjusted below 1")
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	g := NewScrambledZipfian(10000, 0.99)
	if g.Name() != "ycsb-zipfian" {
		t.Fatal("name")
	}
	r := rand.New(rand.NewSource(6))
	counts := make(map[keys.Key]int)
	for i := 0; i < 50000; i++ {
		counts[g.Key(r)]++
	}
	// The hottest key must NOT be key 0 with overwhelming likelihood
	// (scrambling maps rank 0 elsewhere).
	max, hot := 0, keys.Key(0)
	for k, c := range counts {
		if c > max {
			max, hot = c, k
		}
	}
	if hot == 0 {
		t.Log("hottest key scrambled to 0 (possible but unlikely)")
	}
	if max < 50000/20 {
		t.Fatalf("hottest count %d too small", max)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	g := NewLatest(10000)
	r := rand.New(rand.NewSource(7))
	recent := 0
	const n = 20000
	for i := 0; i < n; i++ {
		k := uint64(g.Key(r))
		if k >= g.max {
			t.Fatalf("key %d beyond population %d", k, g.max)
		}
		if k >= g.max-1000 {
			recent++
		}
	}
	if frac := float64(recent) / n; frac < 0.3 {
		t.Fatalf("latest distribution not recency-skewed: %f", frac)
	}
	before := g.max
	g.Advance()
	if g.max != before+1 {
		t.Fatal("Advance did not grow population")
	}
}

func TestTaxiSkewCalibration(t *testing.T) {
	g := NewTaxi()
	if g.KeyRange() != 2048*2048 {
		t.Fatalf("key range %d, want 4194304 cells", g.KeyRange())
	}
	r := rand.New(rand.NewSource(8))
	frac, distinct := Coverage(g, r, 200000, 1000)
	// Paper: top 1000 cells cover 68.272%; calibration tolerance ±5pp.
	if frac < 0.63 || frac > 0.74 {
		t.Fatalf("top-1000 coverage %f, want ~0.68", frac)
	}
	if distinct < 1000 {
		t.Fatalf("only %d distinct cells", distinct)
	}
}

func TestBatchMixRatios(t *testing.T) {
	g := NewUniform(1000)
	r := rand.New(rand.NewSource(9))
	qs := Batch(g, r, 20000, 0.5)
	s, i, d := keys.CountOps(qs)
	if s < 9000 || s > 11000 {
		t.Fatalf("searches = %d, want ~10000", s)
	}
	if i+d < 9000 || i+d > 11000 {
		t.Fatalf("updates = %d, want ~10000", i+d)
	}
	// Inserts and deletes split roughly evenly.
	if i < (i+d)*4/10 || d < (i+d)*4/10 {
		t.Fatalf("insert/delete split %d/%d", i, d)
	}
	// Numbered 0..n-1.
	for j, q := range qs {
		if q.Idx != int32(j) {
			t.Fatal("batch not numbered")
		}
	}
}

func TestBatchUpdateRatioZero(t *testing.T) {
	g := NewUniform(100)
	r := rand.New(rand.NewSource(10))
	qs := Batch(g, r, 1000, 0)
	s, i, d := keys.CountOps(qs)
	if s != 1000 || i != 0 || d != 0 {
		t.Fatalf("U-0 mix: %d/%d/%d", s, i, d)
	}
}

func TestPrefillInsertsOnly(t *testing.T) {
	g := NewUniform(50)
	r := rand.New(rand.NewSource(11))
	qs := Prefill(g, r, 500)
	for _, q := range qs {
		if q.Op != keys.OpInsert {
			t.Fatal("prefill must be all inserts")
		}
		if q.Value != keys.Value(q.Key) {
			t.Fatal("prefill value convention broken")
		}
	}
}

func TestCoverageTopNExceedsDistinct(t *testing.T) {
	g := NewUniform(5)
	r := rand.New(rand.NewSource(12))
	frac, distinct := Coverage(g, r, 1000, 100)
	if frac != 1 {
		t.Fatalf("coverage with topN > distinct = %f, want 1", frac)
	}
	if distinct > 5 {
		t.Fatalf("distinct = %d", distinct)
	}
}

func TestTopCounts(t *testing.T) {
	got := topCounts([]int{5, 1, 9, 3, 7, 2}, 3)
	sort.Ints(got)
	want := []int{5, 7, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("topCounts = %v, want %v", got, want)
	}
}

func TestSpecsScale(t *testing.T) {
	full := Specs(1)
	if len(full) != 7 {
		t.Fatalf("%d specs, want 7 (Table I)", len(full))
	}
	if full[0].Queries != 100_000_000 || full[6].BatchSize != 2_081_427 {
		t.Fatal("paper-scale numbers drifted from Table I")
	}
	small := Specs(0.001)
	for i := range small {
		if small[i].Queries >= full[i].Queries {
			t.Fatal("scaling did not shrink")
		}
		if small[i].Queries < 1 {
			t.Fatal("scaled to zero")
		}
	}
	if s := Specs(-1); s[0].Queries != full[0].Queries {
		t.Fatal("invalid scale must default to 1")
	}
}

func TestSpecByName(t *testing.T) {
	sp, err := SpecByName("taxi", 0.01)
	if err != nil || sp.Name != "taxi" {
		t.Fatalf("SpecByName: %v %v", sp, err)
	}
	if _, err := SpecByName("nope", 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
	g := sp.Build()
	if g.Name() != "taxi" {
		t.Fatal("Build mismatch")
	}
}

func TestAllSpecsBuildAndGenerate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, sp := range Specs(0.0005) {
		g := sp.Build()
		for i := 0; i < 100; i++ {
			k := g.Key(r)
			if uint64(k) >= g.KeyRange() {
				t.Fatalf("%s: key %d out of range %d", sp.Name, k, g.KeyRange())
			}
		}
	}
}

func TestFnvHashDisperses(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[fnvHash(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("fnvHash collisions: %d distinct of 1000", len(seen))
	}
}

func BenchmarkZipfianKey(b *testing.B) {
	g := NewZipfian(1<<20, 0.99)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Key(r)
	}
}

func BenchmarkTaxiKey(b *testing.B) {
	g := NewTaxi()
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Key(r)
	}
}
