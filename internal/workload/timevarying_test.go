package workload

import (
	"math/rand"
	"testing"

	"repro/internal/keys"
)

func TestTimeVaryingMeta(t *testing.T) {
	tv := NewTimeVarying(NewUniform(1 << 16))
	if tv.Name() != "uniform+rush" {
		t.Fatalf("Name = %q", tv.Name())
	}
	if tv.KeyRange() != 1<<16 {
		t.Fatalf("KeyRange = %d", tv.KeyRange())
	}
}

func TestTimeVaryingKeysInRange(t *testing.T) {
	tv := NewTimeVarying(NewUniform(10000))
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		if k := tv.Key(r); uint64(k) >= 10000 {
			t.Fatalf("key %d out of range at draw %d", k, i)
		}
	}
	if tv.Clock() != 50000 {
		t.Fatalf("Clock = %d", tv.Clock())
	}
}

// TestTimeVaryingRushHourSkew: mid-day draws must be far more
// concentrated than day-boundary draws.
func TestTimeVaryingRushHourSkew(t *testing.T) {
	tv := NewTimeVarying(NewUniform(1 << 20))
	tv.Period = 100000
	tv.WindowSize = 256
	r := rand.New(rand.NewSource(2))

	distinctOver := func(draws int) int {
		seen := map[keys.Key]bool{}
		for i := 0; i < draws; i++ {
			seen[tv.Key(r)] = true
		}
		return len(seen)
	}

	// Day start (phase ~0): hot probability near 0 -> near-uniform.
	quiet := distinctOver(20000)
	// Advance to mid-day (phase pi): peak concentration.
	for tv.clock%tv.Period != tv.Period/2 {
		tv.clock++
	}
	rush := distinctOver(20000)

	if rush >= quiet {
		t.Fatalf("rush-hour draws not more concentrated: %d distinct vs %d quiet", rush, quiet)
	}
	if float64(rush) > 0.7*float64(quiet) {
		t.Fatalf("rush concentration too weak: %d vs %d", rush, quiet)
	}
}

// TestTimeVaryingWindowDrifts: the hot window must move between days,
// so hot keys from day 1 differ from day 2's.
func TestTimeVaryingWindowDrifts(t *testing.T) {
	tv := NewTimeVarying(NewUniform(1 << 22))
	tv.Period = 50000
	tv.PeakHotFraction = 1.0 // all traffic hot at peak, to isolate the window
	r := rand.New(rand.NewSource(3))

	hotKeysAround := func(clock uint64) map[keys.Key]bool {
		tv.clock = clock
		seen := map[keys.Key]bool{}
		for i := 0; i < 2000; i++ {
			seen[tv.Key(r)] = true
		}
		return seen
	}
	day1 := hotKeysAround(tv.Period / 2)
	day2 := hotKeysAround(tv.Period + tv.Period/2)
	overlap := 0
	for k := range day1 {
		if day2[k] {
			overlap++
		}
	}
	if overlap > len(day1)/2 {
		t.Fatalf("hot window did not drift: %d/%d overlap", overlap, len(day1))
	}
}

// TestTimeVaryingReductionBenefit: QTrans should reduce a rush-hour
// stream much more than the underlying uniform stream — the temporal
// dimension of the paper's motivation.
func TestTimeVaryingReductionBenefit(t *testing.T) {
	count := func(gen Generator) float64 {
		r := rand.New(rand.NewSource(4))
		seen := map[keys.Key]int{}
		const n = 30000
		for i := 0; i < n; i++ {
			seen[gen.Key(r)]++
		}
		return 1 - float64(len(seen))/float64(n) // duplicate fraction
	}
	base := NewUniform(1 << 22)
	tv := NewTimeVarying(NewUniform(1 << 22))
	tv.Period = 30000 // one full day over the sample
	dupBase := count(base)
	dupTV := count(tv)
	// The rush-hour stream must be an order of magnitude more
	// redundant than its uniform base (0.4% duplicate draws uniform vs
	// ~9% with hourly hot windows at these parameters).
	if dupTV < 10*dupBase || dupTV < 0.05 {
		t.Fatalf("rush-hour stream not measurably more redundant: %.3f vs %.3f", dupTV, dupBase)
	}
}
