package workload

import (
	"math/rand"
	"testing"
)

// TestDriftingDistribution pins the generator's two defining
// properties: the configured fraction of draws lands inside the hot
// window, and the window actually moves — early and late draw batches
// concentrate on different key regions.
func TestDriftingDistribution(t *testing.T) {
	const span = 1 << 20
	d := &Drifting{
		Span:          span,
		Width:         span / 64,
		VelocityMilli: 1000, // one key per draw: easy to predict
		HotFraction:   0.9,
	}
	r := rand.New(rand.NewSource(42))

	inWindow := func(k, center uint64) bool {
		lo := (center + span - d.Width/2) % span
		off := (k + span - lo) % span
		return off < d.Width
	}

	const draws = 200_000
	hot := 0
	for i := 0; i < draws; i++ {
		k := uint64(d.Key(r))
		if k >= span {
			t.Fatalf("draw %d: key %d outside span %d", i, k, span)
		}
		if inWindow(k, d.center()) {
			hot++
		}
	}
	frac := float64(hot) / draws
	// Uniform background also lands in the window ~1/64 of the time,
	// so expect slightly above HotFraction.
	if frac < 0.88 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.90", frac)
	}
}

// TestDriftingMoves checks the window center advances at the configured
// velocity and wraps at the span.
func TestDriftingMoves(t *testing.T) {
	const span = 10_000
	d := &Drifting{Span: span, Width: 100, VelocityMilli: 500, HotFraction: 1.0}
	r := rand.New(rand.NewSource(7))

	meanOffset := func(draws int) float64 {
		// Mean circular distance of hot draws from the live center:
		// small when the window tracks the center.
		sum := 0.0
		for i := 0; i < draws; i++ {
			k := uint64(d.Key(r))
			c := d.center()
			delta := (k + span - c) % span
			if delta > span/2 {
				delta = span - delta
			}
			sum += float64(delta)
		}
		return sum / float64(draws)
	}

	if m := meanOffset(2000); m > float64(d.Width) {
		t.Fatalf("hot draws stray %f from center, want within window width %d", m, d.Width)
	}
	// After 2000 draws at 0.5 keys/draw the center sits near key 1000.
	if c := d.center(); c < 900 || c > 1100 {
		t.Fatalf("center after 2000 draws = %d, want ~1000", c)
	}
	// Drive past one full lap: the center must wrap back below span.
	for i := 0; i < 2*span*2; i++ {
		d.Key(r)
	}
	if c := d.center(); c >= span {
		t.Fatalf("center %d did not wrap at span %d", c, span)
	}
	if d.Name() != "drifting" || d.KeyRange() != span {
		t.Fatalf("Name/KeyRange = %q/%d", d.Name(), d.KeyRange())
	}
}
