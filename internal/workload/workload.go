// Package workload generates the query streams of the paper's
// evaluation (§VI-A, Table I): four synthetic key distributions
// (gaussian, self-similar, zipfian, uniform), the two YCSB cloud
// distributions (scrambled zipfian with θ=0.99 and "latest"), and a
// synthetic stand-in for the NYC taxi dataset.
//
// The taxi substitution (the real trip records are not available
// offline) is a hotspot mixture over a 2048x2048 geo-grid — 4,194,304
// cells, the cell count reported in §III-B — calibrated so the top
// 1000 cells draw ~68% of visits, matching the skew statistic the
// paper reports for Fig. 4(a). See DESIGN.md §4.4.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/keys"
)

// Generator draws keys from a fixed distribution.
type Generator interface {
	// Key draws the next key using r.
	Key(r *rand.Rand) keys.Key
	// Name identifies the distribution (used in figure output).
	Name() string
	// KeyRange returns N, the exclusive upper bound of generated keys.
	KeyRange() uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N uint64 }

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64) *Uniform { return &Uniform{N: n} }

// Key implements Generator.
func (u *Uniform) Key(r *rand.Rand) keys.Key { return keys.Key(r.Uint64() % u.N) }

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// KeyRange implements Generator.
func (u *Uniform) KeyRange() uint64 { return u.N }

// Gaussian draws keys from a normal distribution with the paper's
// parameters: mu = N*0.5, sigma = mu*0.5% (Table I), clamped to [0, N).
type Gaussian struct {
	N     uint64
	Mu    float64
	Sigma float64
}

// NewGaussian returns the Table I gaussian generator over [0, n).
func NewGaussian(n uint64) *Gaussian {
	mu := float64(n) * 0.5
	return &Gaussian{N: n, Mu: mu, Sigma: mu * 0.005}
}

// Key implements Generator.
func (g *Gaussian) Key(r *rand.Rand) keys.Key {
	for {
		x := r.NormFloat64()*g.Sigma + g.Mu
		if x >= 0 && x < float64(g.N) {
			return keys.Key(x)
		}
	}
}

// Name implements Generator.
func (g *Gaussian) Name() string { return "gaussian" }

// KeyRange implements Generator.
func (g *Gaussian) KeyRange() uint64 { return g.N }

// SelfSimilar draws keys with the 80-20 self-similar rule of Gray et
// al.: a fraction h of accesses covers a fraction (1-h)... with h=0.2,
// 80% of accesses hit the first 20% of the key space, recursively.
type SelfSimilar struct {
	N uint64
	H float64 // skew parameter; 0.2 gives the 80-20 rule
	c float64 // exponent ln(h)/ln(1-h)
}

// NewSelfSimilar returns a self-similar generator; h = 0.2 reproduces
// Table I's "80-20 rule".
func NewSelfSimilar(n uint64, h float64) *SelfSimilar {
	return &SelfSimilar{N: n, H: h, c: math.Log(h) / math.Log(1-h)}
}

// Key implements Generator.
func (s *SelfSimilar) Key(r *rand.Rand) keys.Key {
	k := uint64(float64(s.N) * math.Pow(r.Float64(), s.c))
	if k >= s.N {
		k = s.N - 1
	}
	return keys.Key(k)
}

// Name implements Generator.
func (s *SelfSimilar) Name() string { return "self-similar" }

// KeyRange implements Generator.
func (s *SelfSimilar) KeyRange() uint64 { return s.N }

// Zipfian draws keys from the Zipfian distribution of Gray et al.
// (the algorithm YCSB uses), with rank 0 the most popular key.
type Zipfian struct {
	N     uint64
	Theta float64

	alpha, zetan, eta float64
	scramble          bool
}

// NewZipfian returns a zipfian generator over [0, n) with parameter
// theta (Table I uses θ=1 is numerically degenerate in the Gray
// formula, which divides by 1-θ; the artifact's θ=1.0 corresponds to
// θ→1 and is approximated here by θ=0.999).
func NewZipfian(n uint64, theta float64) *Zipfian {
	if theta >= 1 {
		theta = 0.999
	}
	z := &Zipfian{N: n, Theta: theta}
	z.init()
	return z
}

// NewScrambledZipfian returns the YCSB "scrambled zipfian" generator:
// zipfian ranks hashed over the key space so popular keys are spread
// out (ycsb-zipf, θ=0.99).
func NewScrambledZipfian(n uint64, theta float64) *Zipfian {
	z := NewZipfian(n, theta)
	z.scramble = true
	return z
}

func (z *Zipfian) init() {
	z.zetan = zeta(z.N, z.Theta)
	z.alpha = 1 / (1 - z.Theta)
	z.eta = (1 - math.Pow(2/float64(z.N), 1-z.Theta)) / (1 - zeta(2, z.Theta)/z.zetan)
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Key implements Generator.
func (z *Zipfian) Key(r *rand.Rand) keys.Key {
	u := r.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.Theta):
		rank = 1
	default:
		rank = uint64(float64(z.N) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.N {
			rank = z.N - 1
		}
	}
	if z.scramble {
		return keys.Key(fnvHash(rank) % z.N)
	}
	return keys.Key(rank)
}

// Name implements Generator.
func (z *Zipfian) Name() string {
	if z.scramble {
		return "ycsb-zipfian"
	}
	return "zipfian"
}

// KeyRange implements Generator.
func (z *Zipfian) KeyRange() uint64 { return z.N }

// fnvHash is the FNV-1a 64-bit hash of a uint64, used by the scrambled
// zipfian and taxi generators.
func fnvHash(x uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return h
}

// Latest is the YCSB "latest" distribution: recently inserted keys are
// most popular. The key counter advances via Advance (the mix builder
// calls it on every insert), and draws are max - zipfian(rank).
type Latest struct {
	z   *Zipfian
	max uint64
}

// NewLatest returns a latest generator whose population starts at n
// keys (0..n-1, key n-1 the hottest).
func NewLatest(n uint64) *Latest {
	return &Latest{z: NewZipfian(n, 0.99), max: n}
}

// Advance grows the key population (a new record was inserted).
func (l *Latest) Advance() { l.max++ }

// Key implements Generator.
func (l *Latest) Key(r *rand.Rand) keys.Key {
	rank := uint64(l.z.Key(r))
	if rank >= l.max {
		rank = l.max - 1
	}
	return keys.Key(l.max - 1 - rank)
}

// Name implements Generator.
func (l *Latest) Name() string { return "ycsb-latest" }

// KeyRange implements Generator.
func (l *Latest) KeyRange() uint64 { return l.max }

// Taxi is the synthetic stand-in for the NYC taxi geolocation stream:
// keys are cells of a 2048x2048 grid; a fraction HotFraction of visits
// goes to NumHot zipf-weighted hotspot cells, the rest to a
// gaussian-spread background around the grid center.
type Taxi struct {
	Grid        uint64 // side length; key range is Grid*Grid
	NumHot      int
	HotFraction float64

	hotCells []uint64
	hotZipf  *Zipfian
}

// NewTaxi returns the calibrated taxi generator: 2048x2048 grid, 1000
// hotspots receiving 68% of visits (the paper's Fig. 4(a) statistic:
// top 1000 of 4,194,304 cells cover 68.272%).
func NewTaxi() *Taxi { return NewTaxiWith(2048, 1000, 0.68) }

// NewTaxiWith returns a taxi generator with explicit parameters.
func NewTaxiWith(grid uint64, numHot int, hotFraction float64) *Taxi {
	t := &Taxi{Grid: grid, NumHot: numHot, HotFraction: hotFraction}
	t.hotCells = make([]uint64, numHot)
	n := grid * grid
	for i := range t.hotCells {
		// Deterministic pseudo-random hotspot placement.
		t.hotCells[i] = fnvHash(uint64(i)+0x9e3779b9) % n
	}
	t.hotZipf = NewZipfian(uint64(numHot), 0.9)
	return t
}

// Key implements Generator.
func (t *Taxi) Key(r *rand.Rand) keys.Key {
	if r.Float64() < t.HotFraction {
		return keys.Key(t.hotCells[t.hotZipf.Key(r)])
	}
	// Background: gaussian spatial spread around the grid center.
	g := float64(t.Grid)
	x := clampGrid(r.NormFloat64()*g/6+g/2, g)
	y := clampGrid(r.NormFloat64()*g/6+g/2, g)
	return keys.Key(uint64(y)*t.Grid + uint64(x))
}

func clampGrid(v, g float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= g {
		return g - 1
	}
	return v
}

// Name implements Generator.
func (t *Taxi) Name() string { return "taxi" }

// KeyRange implements Generator.
func (t *Taxi) KeyRange() uint64 { return t.Grid * t.Grid }

// Batch builds one query batch of the given size: updateRatio of the
// queries are updates (split evenly between inserts and deletes, as in
// §VI-B's update-ratio sweeps), the rest searches. Queries are
// numbered 0..size-1.
func Batch(gen Generator, r *rand.Rand, size int, updateRatio float64) []keys.Query {
	qs := make([]keys.Query, size)
	FillBatch(gen, r, qs, updateRatio)
	return qs
}

// FillBatch is Batch into a caller-provided slice (no allocation).
func FillBatch(gen Generator, r *rand.Rand, qs []keys.Query, updateRatio float64) {
	latest, isLatest := gen.(*Latest)
	for i := range qs {
		k := gen.Key(r)
		if r.Float64() < updateRatio {
			if r.Intn(2) == 0 {
				qs[i] = keys.Insert(k, keys.Value(r.Uint64()))
				if isLatest {
					latest.Advance()
				}
			} else {
				qs[i] = keys.Delete(k)
			}
		} else {
			qs[i] = keys.Search(k)
		}
	}
	keys.Number(qs)
}

// MixedConfig tunes FillBatchMixed's five-op blend.
type MixedConfig struct {
	// UpdateRatio is the fraction of point updates (split evenly
	// between inserts and deletes), as in FillBatch.
	UpdateRatio float64
	// ScanFrac is the fraction of range scans.
	ScanFrac float64
	// RMWFrac is the fraction of read-modify-writes (split evenly
	// between add-delta and set-if-absent).
	RMWFrac float64
	// ScanSpan is the key width of each scan's range (0 = 128).
	ScanSpan uint64
	// ScanLimit caps each scan's row count (0 = unlimited).
	ScanLimit uint64
}

// FillBatchMixed builds a batch mixing all five ops: ScanFrac range
// scans of width ScanSpan, RMWFrac read-modify-writes, UpdateRatio
// point updates, the rest searches. Fractions are drawn independently
// per slot (scan first, then RMW, then update), so they compose like
// nested FillBatch calls. Queries are numbered 0..len-1.
func FillBatchMixed(gen Generator, r *rand.Rand, qs []keys.Query, cfg MixedConfig) {
	span := cfg.ScanSpan
	if span == 0 {
		span = 128
	}
	latest, isLatest := gen.(*Latest)
	for i := range qs {
		k := gen.Key(r)
		switch u := r.Float64(); {
		case u < cfg.ScanFrac:
			lo := k
			hi := lo + keys.Key(span)
			if hi < lo { // key-space wrap: clamp to the top
				hi = ^keys.Key(0)
			}
			qs[i] = keys.Scan(lo, hi, keys.Value(cfg.ScanLimit))
		case u < cfg.ScanFrac+cfg.RMWFrac:
			if r.Intn(2) == 0 {
				qs[i] = keys.AddDelta(k, keys.Value(r.Intn(1000)+1))
			} else {
				qs[i] = keys.SetIfAbsent(k, keys.Value(r.Uint64()))
			}
		case u < cfg.ScanFrac+cfg.RMWFrac+cfg.UpdateRatio:
			if r.Intn(2) == 0 {
				qs[i] = keys.Insert(k, keys.Value(r.Uint64()))
				if isLatest {
					latest.Advance()
				}
			} else {
				qs[i] = keys.Delete(k)
			}
		default:
			qs[i] = keys.Search(k)
		}
	}
	keys.Number(qs)
}

// Prefill returns count insert queries drawn from gen (duplicates
// collapse on insertion), used to build the initial tree the way the
// paper builds trees "based on the unique keys" of each dataset.
func Prefill(gen Generator, r *rand.Rand, count int) []keys.Query {
	qs := make([]keys.Query, count)
	for i := range qs {
		k := gen.Key(r)
		qs[i] = keys.Insert(k, keys.Value(k))
	}
	return keys.Number(qs)
}

// Coverage draws samples keys and reports the fraction of draws covered
// by the topN most frequent keys — the Fig. 4 skew statistic — along
// with the number of distinct keys seen.
func Coverage(gen Generator, r *rand.Rand, samples, topN int) (fraction float64, distinct int) {
	counts := make(map[keys.Key]int, samples/4)
	for i := 0; i < samples; i++ {
		counts[gen.Key(r)]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Partial selection of the topN largest counts.
	top := topCounts(freqs, topN)
	covered := 0
	for _, c := range top {
		covered += c
	}
	return float64(covered) / float64(samples), len(counts)
}

// topCounts returns the n largest values of freqs (n may exceed
// len(freqs)).
func topCounts(freqs []int, n int) []int {
	if n >= len(freqs) {
		return freqs
	}
	// Quickselect-style partition would be fancier; a partial sort via
	// a bounded min-heap keeps it simple and O(len log n).
	heap := make([]int, 0, n)
	push := func(v int) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	popMin := func() {
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n && heap[l] < heap[small] {
				small = l
			}
			if r < n && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for _, v := range freqs {
		if len(heap) < n {
			push(v)
		} else if v > heap[0] {
			popMin()
			push(v)
		}
	}
	return heap
}

// Spec describes one Table I dataset at a given scale.
type Spec struct {
	// Name is the dataset identifier used across figures.
	Name string
	// Queries is the total number of queries in the paper's run.
	Queries int
	// UniqueKeys is the paper's distinct-key count (drives prefill).
	UniqueKeys int
	// BatchSize is the Table II batch size.
	BatchSize int
	// New constructs the generator for key range n.
	New func(n uint64) Generator
}

// Specs returns the Table I dataset roster. scale in (0, 1] shrinks
// query counts, unique keys, and batch sizes proportionally so the
// whole evaluation runs at laptop scale; scale = 1 reproduces the
// paper's sizes.
func Specs(scale float64) []Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	s := func(v int) int {
		out := int(float64(v) * scale)
		if out < 1 {
			out = 1
		}
		return out
	}
	return []Spec{
		{"gaussian", s(100_000_000), s(50_000_000), s(5_242_880), func(n uint64) Generator { return NewGaussian(n) }},
		{"self-similar", s(100_000_000), s(50_000_000), s(3_145_728), func(n uint64) Generator { return NewSelfSimilar(n, 0.2) }},
		{"zipfian", s(100_000_000), s(50_000_000), s(3_145_728), func(n uint64) Generator { return NewZipfian(n, 1.0) }},
		{"uniform", s(100_000_000), s(50_000_000), s(2_097_152), func(n uint64) Generator { return NewUniform(n) }},
		{"ycsb-latest", s(30_000_000), s(10_000_000), s(1_500_000), func(n uint64) Generator { return NewLatest(n) }},
		{"ycsb-zipfian", s(30_000_000), s(10_000_000), s(1_500_000), func(n uint64) Generator { return NewScrambledZipfian(n, 0.99) }},
		{"taxi", s(13_900_000), s(4_100_000), s(2_081_427), func(n uint64) Generator { return NewTaxi() }},
	}
}

// SpecByName finds a dataset spec by name at the given scale.
func SpecByName(name string, scale float64) (Spec, error) {
	for _, sp := range Specs(scale) {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Build constructs the generator for a spec. The key range follows the
// paper's setup: twice the unique-key target, so roughly half the
// searched keys exist in the tree.
func (sp Spec) Build() Generator {
	return sp.New(uint64(sp.UniqueKeys) * 2)
}
