package btree

// Gapped node layout (DESIGN.md §10, after BS-tree, arXiv:2505.01180).
//
// A gapped node stores its entries in a fixed-capacity flat key array
// with deliberate empty slots ("gaps") between them, instead of the
// densely packed variable-length slices of the classic layout:
//
//   - Every slot always holds a loadable key, so the intra-node search
//     kernels (SearchGE/SearchGT) scan the full fixed-width array with
//     unconditional loads — no per-probe bounds checks and an
//     iteration count that depends only on the tree order, never on
//     the node's current fill.
//   - A gap slot duplicates the key AND value of the nearest occupied
//     slot to its right (its "anchor"); slots right of the last entry
//     hold SentinelKey with a zero value. The array is therefore
//     always sorted, and a search that lands on a gap still reads the
//     correct pair without consulting any side structure.
//   - Inserting a new key claims the gap at its insertion point in
//     O(1) when one is there; otherwise entries shift only as far as
//     the nearest gap (a local redistribute) instead of moving the
//     whole tail. Deletes free a slot by rewriting its short duplicate
//     run. Both are tracked by the gap-claim/shift counters.
//   - Splits happen only when a node is genuinely full, and freshly
//     split/loaded nodes spread their gaps evenly, so a batch of
//     inserts is absorbed by slack instead of cascading splits —
//     directly shrinking PALM's Stage-3 restructuring.
//
// Which slots are occupied is tracked by a per-node presence bitmap
// (occ) plus a count. The bitmap is consulted only on mutation,
// iteration, and for the one ambiguous probe value (SentinelKey);
// the search hot path never touches it.
//
// Internal nodes use the same fixed-capacity key array, with the
// occupied separators as a dense prefix and a SentinelKey-filled tail;
// their child-pointer slice stays dense so Stage-3 child rebuilds and
// the descent loop are layout-independent. Separator churn is
// split-driven and therefore rare once leaf splits are, which is why
// inner nodes do not need mid-array gaps to benefit.

import (
	"math/bits"

	"repro/internal/keys"
)

// Layout selects the physical node representation of a Tree.
type Layout uint8

const (
	// LayoutGapped is the default: fixed-capacity slot arrays with
	// evenly spread gaps, presence bitmaps, and sentinel-filled tails.
	LayoutGapped Layout = iota
	// LayoutDense is the classic densely packed layout (the ablation
	// baseline): variable-length key/value slices with no gaps.
	LayoutDense
)

// String names the layout as used in benchmark output.
func (l Layout) String() string {
	if l == LayoutDense {
		return "dense"
	}
	return "gapped"
}

// SentinelKey fills the key slots right of a gapped node's last entry
// so searches can scan the full array unconditionally. It is the
// maximum key value; a real entry may legitimately store it, so probes
// for exactly SentinelKey disambiguate via the presence bitmap (the
// only probe value that ever needs it).
const SentinelKey = ^keys.Key(0)

// Gapped reports whether the node uses the gapped slot layout. The
// invariants exposed by the accessors differ per layout:
//
//	dense:  len(Keys) == Len() entries, all slots occupied.
//	gapped: len(Keys) == Cap() fixed slots; Len() of them are occupied
//	        (tracked by the presence bitmap); every free slot holds a
//	        copy of the nearest occupied entry to its right, or
//	        (SentinelKey, 0) when there is none, so Keys is always
//	        fully sorted and Keys[FirstSlot()] is the node's minimum.
func (n *Node) Gapped() bool { return n.occ != nil }

// Cap returns the node's slot capacity (== Len() for dense nodes).
func (n *Node) Cap() int { return len(n.Keys) }

// Occupied reports whether slot i holds a real entry (always true for
// a dense node's in-range slots).
func (n *Node) Occupied(i int) bool {
	if n.occ == nil {
		return i < len(n.Keys)
	}
	return n.occ[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// FirstSlot returns the slot of the node's smallest entry, or
// len(n.Keys) when the node is empty. Iterate entries with:
//
//	for i := n.FirstSlot(); i < len(n.Keys); i = n.NextSlot(i) { ... }
func (n *Node) FirstSlot() int {
	if n.occ == nil {
		return 0
	}
	return n.nextOcc(0)
}

// NextSlot returns the next occupied slot after i, or len(n.Keys).
func (n *Node) NextSlot(i int) int {
	if n.occ == nil {
		return i + 1
	}
	return n.nextOcc(i + 1)
}

// LastSlot returns the slot of the node's largest entry, or -1 when
// the node is empty.
func (n *Node) LastSlot() int {
	if n.occ == nil {
		return len(n.Keys) - 1
	}
	return n.prevOcc(len(n.Keys) - 1)
}

func (n *Node) setOcc(i int)   { n.occ[uint(i)>>6] |= 1 << (uint(i) & 63) }
func (n *Node) clearOcc(i int) { n.occ[uint(i)>>6] &^= 1 << (uint(i) & 63) }

// nextOcc returns the first occupied slot >= i, or len(n.Keys).
func (n *Node) nextOcc(i int) int {
	c := len(n.Keys)
	if i < 0 {
		i = 0
	}
	for i < c {
		if w := n.occ[uint(i)>>6] >> (uint(i) & 63); w != 0 {
			return i + bits.TrailingZeros64(w)
		}
		i = (i>>6 + 1) << 6
	}
	return c
}

// prevOcc returns the last occupied slot <= i, or -1.
func (n *Node) prevOcc(i int) int {
	if i >= len(n.Keys) {
		i = len(n.Keys) - 1
	}
	for i >= 0 {
		if w := n.occ[uint(i)>>6] << (63 - uint(i)&63); w != 0 {
			return i - bits.LeadingZeros64(w)
		}
		i = (i>>6)<<6 - 1
	}
	return -1
}

// nextFree returns the first free slot >= i, or len(n.Keys).
func (n *Node) nextFree(i int) int {
	c := len(n.Keys)
	if i < 0 {
		i = 0
	}
	for i < c {
		if w := ^n.occ[uint(i)>>6] >> (uint(i) & 63); w != 0 {
			if j := i + bits.TrailingZeros64(w); j < c {
				return j
			}
			return c
		}
		i = (i>>6 + 1) << 6
	}
	return c
}

// prevFree returns the last free slot <= i, or -1.
func (n *Node) prevFree(i int) int {
	if i >= len(n.Keys) {
		i = len(n.Keys) - 1
	}
	for i >= 0 {
		if w := ^n.occ[uint(i)>>6] << (63 - uint(i)&63); w != 0 {
			return i - bits.LeadingZeros64(w)
		}
		i = (i>>6)<<6 - 1
	}
	return -1
}

// occWords returns the bitmap word count for a capacity.
func occWords(capacity int) int { return (capacity + 63) / 64 }

// NewGappedLeaf returns an empty gapped leaf with the given slot
// capacity (every slot sentinel-filled and free).
func NewGappedLeaf(capacity int) *Node {
	n := &Node{
		Keys: make([]keys.Key, capacity),
		Vals: make([]keys.Value, capacity),
		occ:  make([]uint64, occWords(capacity)),
	}
	for i := range n.Keys {
		n.Keys[i] = SentinelKey
	}
	return n
}

// leafHasAt resolves the one ambiguous probe: slot i matched the probe
// key, and the match is a real hit unless the key is SentinelKey and
// slot i lies in the sentinel-filled tail (no occupied anchor storing
// SentinelKey to its right).
func (n *Node) leafHasAt(i int) bool {
	if n.Keys[i] != SentinelKey {
		return true
	}
	j := n.nextOcc(i)
	return j < len(n.Keys) && n.Keys[j] == SentinelKey
}

// GappedEdit reports the work a gapped leaf mutation performed, for
// the layout counters (stats.Batch GapClaims/ShiftedSlots).
type GappedEdit struct {
	// Added/Removed report whether the entry count changed.
	Added, Removed bool
	// Full reports an insert that found no free slot (the caller must
	// split and retry); no mutation happened.
	Full bool
	// GapClaim reports an O(1) insert into the gap at the insertion
	// point.
	GapClaim bool
	// Shifted counts slots moved (insert redistributes to the nearest
	// gap) or rewritten (delete refills its duplicate run).
	Shifted int
}

// InsertGapped stores (k, v) in the gapped leaf n: overwrite in place
// when k is present; otherwise claim the gap at the insertion point,
// or shift entries to the nearest gap, or report Full when none is
// free (the caller splits and retries).
func (n *Node) InsertGapped(k keys.Key, v keys.Value) GappedEdit {
	c := len(n.Keys)
	i := SearchGE(n.Keys, k)
	if i < c && n.Keys[i] == k && n.leafHasAt(i) {
		// Present: rewrite the duplicate run's values up to its anchor.
		for j := i; j < c && n.Keys[j] == k; j++ {
			n.Vals[j] = v
			if n.Occupied(j) {
				break
			}
		}
		return GappedEdit{}
	}
	if int(n.count) == c {
		return GappedEdit{Full: true}
	}
	if i < c && !n.Occupied(i) {
		// The insertion point is a gap (the leftmost duplicate of the
		// successor run, or the first sentinel slot): claim it.
		n.Keys[i], n.Vals[i] = k, v
		n.setOcc(i)
		n.count++
		return GappedEdit{Added: true, GapClaim: true}
	}
	// Slot i is occupied: open it by shifting entries toward the
	// nearest gap. Every slot strictly between the gap and i is
	// occupied, so the shifted region needs no bitmap fixup beyond
	// marking the consumed gap occupied.
	left, right := n.prevFree(i), n.nextFree(i)
	if right >= c || (left >= 0 && i-left <= right-i) {
		copy(n.Keys[left:i-1], n.Keys[left+1:i])
		copy(n.Vals[left:i-1], n.Vals[left+1:i])
		n.Keys[i-1], n.Vals[i-1] = k, v
		n.setOcc(left)
		n.count++
		return GappedEdit{Added: true, Shifted: i - 1 - left}
	}
	copy(n.Keys[i+1:right+1], n.Keys[i:right])
	copy(n.Vals[i+1:right+1], n.Vals[i:right])
	n.Keys[i], n.Vals[i] = k, v
	n.setOcc(right)
	n.count++
	return GappedEdit{Added: true, Shifted: right - i}
}

// DeleteGapped removes k from the gapped leaf n if present, freeing
// its slot by rewriting the entry's duplicate run with the successor
// entry (or the sentinel when k was the maximum).
func (n *Node) DeleteGapped(k keys.Key) GappedEdit {
	c := len(n.Keys)
	i := SearchGE(n.Keys, k)
	if i >= c || n.Keys[i] != k || !n.leafHasAt(i) {
		return GappedEdit{}
	}
	r := n.nextOcc(i) // the run's occupied anchor
	// Slot r+1 already holds exactly the fill pair: the successor
	// entry, a duplicate of it, or the sentinel tail.
	fk, fv := SentinelKey, keys.Value(0)
	if r+1 < c {
		fk, fv = n.Keys[r+1], n.Vals[r+1]
	}
	for j := i; j <= r; j++ {
		n.Keys[j], n.Vals[j] = fk, fv
	}
	n.clearOcc(r)
	n.count--
	return GappedEdit{Removed: true, Shifted: r - i + 1}
}

// PackLeafGapped rewrites the gapped leaf n to hold exactly the sorted
// entries ks/vs (len <= capacity) with its gaps spread evenly, the
// occupancy freshly split, bulk-loaded, and rebuilt leaves start from
// so nearby inserts find a gap in O(1).
func PackLeafGapped(n *Node, ks []keys.Key, vs []keys.Value) {
	c := len(n.Keys)
	m := len(ks)
	for i := range n.occ {
		n.occ[i] = 0
	}
	fk, fv := SentinelKey, keys.Value(0)
	j := m - 1
	for s := c - 1; s >= 0; s-- {
		if j >= 0 && s == j*c/m {
			fk, fv = ks[j], vs[j]
			n.setOcc(s)
			j--
		}
		n.Keys[s], n.Vals[s] = fk, fv
	}
	n.count = int32(m)
}

// AppendEntries collects n's entries in slot order onto ks/vs.
func (n *Node) AppendEntries(ks []keys.Key, vs []keys.Value) ([]keys.Key, []keys.Value) {
	for i := n.FirstSlot(); i < len(n.Keys); i = n.NextSlot(i) {
		ks = append(ks, n.Keys[i])
		vs = append(vs, n.Vals[i])
	}
	return ks, vs
}

// SetInternalGapped rewrites n as a gapped internal node over the
// dense child list and its separator keys (len(seps) == len(children)-1),
// sentinel-padding the key array to capacity. When the separator count
// exceeds capacity the array grows past it — a transient over-full
// state the caller resolves by splitting.
func SetInternalGapped(n *Node, capacity int, seps []keys.Key, children []*Node) {
	width := capacity
	if len(seps) > width {
		width = len(seps)
	}
	if cap(n.Keys) >= width {
		n.Keys = n.Keys[:width]
	} else {
		n.Keys = make([]keys.Key, width)
	}
	copy(n.Keys, seps)
	for i := len(seps); i < width; i++ {
		n.Keys[i] = SentinelKey
	}
	words := occWords(width)
	if cap(n.occ) >= words {
		n.occ = n.occ[:words]
	} else {
		n.occ = make([]uint64, words)
	}
	for i := range n.occ {
		n.occ[i] = 0
	}
	for i := range seps {
		n.setOcc(i)
	}
	n.count = int32(len(seps))
	n.Vals = nil
	if &n.Children[0] != &children[0] || len(n.Children) != len(children) {
		n.Children = append(n.Children[:0], children...)
	}
}

// internalInsertAt inserts separator sep at key index slot and child at
// child index slot+1 of a gapped internal node, growing the key array
// transiently when the dense separator prefix already fills it.
func (n *Node) internalInsertAt(slot int, sep keys.Key, child *Node) {
	cnt := int(n.count)
	if cnt == len(n.Keys) {
		n.Keys = append(n.Keys, SentinelKey)
		if occWords(len(n.Keys)) > len(n.occ) {
			n.occ = append(n.occ, 0)
		}
	}
	copy(n.Keys[slot+1:cnt+1], n.Keys[slot:cnt])
	n.Keys[slot] = sep
	n.setOcc(cnt)
	n.count++
	n.Children = append(n.Children, nil)
	copy(n.Children[slot+2:], n.Children[slot+1:])
	n.Children[slot+1] = child
}

// internalRemoveAt removes child slot and the separator to its left
// (slot >= 1), restoring the sentinel tail.
func (n *Node) internalRemoveAt(slot int) {
	cnt := int(n.count)
	copy(n.Keys[slot-1:cnt-1], n.Keys[slot:cnt])
	n.Keys[cnt-1] = SentinelKey
	n.clearOcc(cnt - 1)
	n.count--
	n.Children = append(n.Children[:slot], n.Children[slot+1:]...)
}

// sepCap is the fixed separator capacity of gapped internal nodes.
func (t *Tree) sepCap() int { return t.order - 1 }

// insertGapped is Tree.Insert for the gapped layout.
func (t *Tree) insertGapped(k keys.Key, v keys.Value) bool {
	var path Path
	leaf := t.FindLeaf(k, &path)
	ed := leaf.InsertGapped(k, v)
	if ed.Full {
		t.splitGappedLeaf(leaf, &path)
		// The split may have grown the tree; re-descend to the
		// now-half-full covering leaf and claim one of its fresh gaps.
		leaf = t.FindLeaf(k, &path)
		ed = leaf.InsertGapped(k, v)
	}
	if ed.Added {
		t.size++
	}
	return ed.Added
}

// splitGappedLeaf splits a full gapped leaf into two half-full leaves
// with evenly spread gaps and pushes the separator into the parent.
func (t *Tree) splitGappedLeaf(leaf *Node, path *Path) {
	ks, vs := leaf.AppendEntries(nil, nil)
	mid := (len(ks) + 1) / 2
	right := NewGappedLeaf(len(leaf.Keys))
	right.Next = leaf.Next
	PackLeafGapped(right, ks[mid:], vs[mid:])
	PackLeafGapped(leaf, ks[:mid], vs[:mid])
	leaf.Next = right
	t.insertIntoParentGapped(path, path.Len()-1, ks[mid], right)
}

// insertIntoParentGapped mirrors insertIntoParent for the gapped
// layout: lvl == -1 grows a new root.
func (t *Tree) insertIntoParentGapped(path *Path, lvl int, sep keys.Key, right *Node) {
	if lvl < 0 {
		old := t.root
		root := &Node{Children: append(make([]*Node, 0, t.order+1), old, right)}
		SetInternalGapped(root, t.sepCap(), []keys.Key{sep}, root.Children)
		t.root = root
		return
	}
	parent := path.Nodes[lvl]
	parent.internalInsertAt(path.Slots[lvl], sep, right)
	if len(parent.Children) > t.order {
		t.splitInternalGapped(parent, path, lvl)
	}
}

// splitInternalGapped splits an over-full gapped internal node in half,
// repacking both pieces at the fixed separator capacity and pushing the
// middle separator up.
func (t *Tree) splitInternalGapped(n *Node, path *Path, lvl int) {
	cnt := int(n.count)
	mid := cnt / 2
	sep := n.Keys[mid]
	right := &Node{Children: append(make([]*Node, 0, t.order+1), n.Children[mid+1:]...)}
	SetInternalGapped(right, t.sepCap(), n.Keys[mid+1:cnt], right.Children)
	leftSeps := append(make([]keys.Key, 0, mid), n.Keys[:mid]...)
	n.Children = n.Children[:mid+1]
	SetInternalGapped(n, t.sepCap(), leftSeps, n.Children)
	t.insertIntoParentGapped(path, lvl-1, sep, right)
}

// deleteGapped is Tree.Delete for the gapped layout.
func (t *Tree) deleteGapped(k keys.Key) bool {
	var path Path
	leaf := t.FindLeaf(k, &path)
	ed := leaf.DeleteGapped(k)
	if !ed.Removed {
		return false
	}
	t.size--
	t.rebalanceLeafGapped(leaf, &path)
	return true
}

// rebalanceLeafGapped restores the minimum-fill invariant after a
// gapped leaf deletion: borrow a boundary entry through the cheap
// gapped single-entry ops, or merge into a freshly packed sibling.
func (t *Tree) rebalanceLeafGapped(leaf *Node, path *Path) {
	if path.Len() == 0 || leaf.Len() >= t.minLeafEntries() {
		return
	}
	parent := path.Nodes[path.Len()-1]
	slot := path.Slots[path.Len()-1]

	if slot > 0 {
		left := parent.Children[slot-1]
		if left.Len() > t.minLeafEntries() {
			i := left.LastSlot()
			bk, bv := left.Keys[i], left.Vals[i]
			left.DeleteGapped(bk)
			leaf.InsertGapped(bk, bv)
			parent.Keys[slot-1] = bk
			return
		}
	}
	if slot < len(parent.Children)-1 {
		right := parent.Children[slot+1]
		if right.Len() > t.minLeafEntries() {
			i := right.FirstSlot()
			bk, bv := right.Keys[i], right.Vals[i]
			right.DeleteGapped(bk)
			leaf.InsertGapped(bk, bv)
			// A gapped node's slot 0 always duplicates its minimum.
			parent.Keys[slot] = right.Keys[0]
			return
		}
	}
	if slot > 0 {
		left := parent.Children[slot-1]
		ks, vs := left.AppendEntries(nil, nil)
		ks, vs = leaf.AppendEntries(ks, vs)
		PackLeafGapped(left, ks, vs)
		left.Next = leaf.Next
		t.removeChildGapped(parent, slot, path, path.Len()-1)
	} else if slot+1 < len(parent.Children) {
		right := parent.Children[slot+1]
		ks, vs := leaf.AppendEntries(nil, nil)
		ks, vs = right.AppendEntries(ks, vs)
		PackLeafGapped(leaf, ks, vs)
		leaf.Next = right.Next
		t.removeChildGapped(parent, slot+1, path, path.Len()-1)
	} else {
		// No sibling at all: a relaxed single-child parent
		// (relaxed.go).
		t.dropLonelyLeaf(leaf, path)
	}
}

// removeChildGapped removes parent.Children[slot] plus its left
// separator and rebalances the parent at path level lvl.
func (t *Tree) removeChildGapped(parent *Node, slot int, path *Path, lvl int) {
	parent.internalRemoveAt(slot)
	t.rebalanceInternalGapped(parent, path, lvl)
}

// rebalanceInternalGapped restores the minimum-fanout invariant for a
// gapped internal node at path level lvl.
func (t *Tree) rebalanceInternalGapped(n *Node, path *Path, lvl int) {
	if lvl == 0 {
		if len(n.Children) == 1 {
			t.root = n.Children[0]
		}
		return
	}
	if len(n.Children) >= t.minChildren() {
		return
	}
	parent := path.Nodes[lvl-1]
	slot := path.Slots[lvl-1]

	if slot > 0 {
		left := parent.Children[slot-1]
		if len(left.Children) > t.minChildren() {
			// Rotate rightwards through the parent separator.
			// An underfull node has cnt+1 <= minChildren-1 <= sepCap
			// separators after the rotation, so the fixed width fits.
			cnt := int(n.count)
			copy(n.Keys[1:cnt+1], n.Keys[:cnt])
			n.Keys[0] = parent.Keys[slot-1]
			n.setOcc(cnt)
			n.count++
			n.Children = append(n.Children, nil)
			copy(n.Children[1:], n.Children)
			lcnt := int(left.count)
			n.Children[0] = left.Children[len(left.Children)-1]
			parent.Keys[slot-1] = left.Keys[lcnt-1]
			left.Keys[lcnt-1] = SentinelKey
			left.clearOcc(lcnt - 1)
			left.count--
			left.Children = left.Children[:len(left.Children)-1]
			return
		}
	}
	if slot < len(parent.Children)-1 {
		right := parent.Children[slot+1]
		if len(right.Children) > t.minChildren() {
			// Rotate leftwards through the parent separator.
			cnt := int(n.count)
			n.Keys[cnt] = parent.Keys[slot]
			n.setOcc(cnt)
			n.count++
			n.Children = append(n.Children, right.Children[0])
			parent.Keys[slot] = right.Keys[0]
			rcnt := int(right.count)
			copy(right.Keys[:rcnt-1], right.Keys[1:rcnt])
			right.Keys[rcnt-1] = SentinelKey
			right.clearOcc(rcnt - 1)
			right.count--
			right.Children = append(right.Children[:0], right.Children[1:]...)
			return
		}
	}
	if slot > 0 {
		left := parent.Children[slot-1]
		seps := append(make([]keys.Key, 0, t.sepCap()), left.Keys[:left.count]...)
		seps = append(seps, parent.Keys[slot-1])
		seps = append(seps, n.Keys[:n.count]...)
		left.Children = append(left.Children, n.Children...)
		SetInternalGapped(left, t.sepCap(), seps, left.Children)
		parent.internalRemoveAt(slot)
		t.rebalanceInternalGapped(parent, path, lvl-1)
	} else if slot+1 < len(parent.Children) {
		right := parent.Children[slot+1]
		seps := append(make([]keys.Key, 0, t.sepCap()), n.Keys[:n.count]...)
		seps = append(seps, parent.Keys[slot])
		seps = append(seps, right.Keys[:right.count]...)
		n.Children = append(n.Children, right.Children...)
		SetInternalGapped(n, t.sepCap(), seps, n.Children)
		parent.internalRemoveAt(slot + 1)
		t.rebalanceInternalGapped(parent, path, lvl-1)
	}
	// else: no sibling under a relaxed single-child parent — the node
	// stays underfull, which RelaxedFill permits (relaxed.go).
}

// SetLayout converts the tree in place to the given layout, rebuilding
// every node; a no-op when the layout already matches. Contents are
// unchanged; the rebuilt tree has bulk-load fill (and, for the gapped
// layout, evenly spread gaps).
func (t *Tree) SetLayout(l Layout) error {
	if t.layout == l {
		return nil
	}
	ks, vs := t.Dump()
	fresh, err := BulkLoadLayout(t.order, l, ks, vs)
	if err != nil {
		return err
	}
	t.root = fresh.root
	t.layout = l
	return nil
}
