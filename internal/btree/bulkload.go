package btree

import (
	"fmt"
	"sort"

	"repro/internal/keys"
)

// BulkLoad builds a tree of the given order from key-value pairs in a
// single bottom-up pass, the standard way to construct a large B+ tree
// (the harness uses it to prefill paper-scale trees orders of magnitude
// faster than repeated insertion), using the default gapped layout.
// ks must be strictly ascending and len(vs) == len(ks); violations are
// reported as errors.
//
// Leaves are filled to a target of ~87% of capacity (like stx-btree's
// bulk loader) so immediately-following inserts do not cascade splits,
// while keeping the tree within strict fill invariants; gapped leaves
// additionally spread their free slots evenly so those inserts land on
// a gap in O(1).
func BulkLoad(order int, ks []keys.Key, vs []keys.Value) (*Tree, error) {
	return BulkLoadLayout(order, LayoutGapped, ks, vs)
}

// BulkLoadLayout is BulkLoad with an explicit node layout.
func BulkLoadLayout(order int, layout Layout, ks []keys.Key, vs []keys.Value) (*Tree, error) {
	t, err := NewLayout(order, layout)
	if err != nil {
		return nil, err
	}
	if len(ks) != len(vs) {
		return nil, fmt.Errorf("btree: bulk load with %d keys but %d values", len(ks), len(vs))
	}
	if len(ks) == 0 {
		return t, nil
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			return nil, fmt.Errorf("btree: bulk load keys not strictly ascending at %d", i)
		}
	}

	maxLeaf := t.maxLeafEntries()
	target := maxLeaf * 7 / 8
	if target < t.minLeafEntries() {
		target = maxLeaf
	}
	if target < 1 {
		target = 1
	}

	// Build the leaf level.
	leaves := chunkSizes(len(ks), target, t.minLeafEntries())
	level := make([]*Node, 0, len(leaves))
	pos := 0
	var prev *Node
	for _, sz := range leaves {
		var leaf *Node
		if layout == LayoutGapped {
			leaf = NewGappedLeaf(maxLeaf)
			PackLeafGapped(leaf, ks[pos:pos+sz], vs[pos:pos+sz])
		} else {
			leaf = &Node{
				Keys: append(make([]keys.Key, 0, maxLeaf+1), ks[pos:pos+sz]...),
				Vals: append(make([]keys.Value, 0, maxLeaf+1), vs[pos:pos+sz]...),
			}
		}
		if prev != nil {
			prev.Next = leaf
		}
		prev = leaf
		level = append(level, leaf)
		pos += sz
	}

	// Build internal levels until one root remains.
	maxCh := t.order
	targetCh := maxCh * 7 / 8
	if targetCh < t.minChildren() {
		targetCh = maxCh
	}
	if targetCh < 2 {
		targetCh = 2
	}
	for len(level) > 1 {
		groups := chunkSizes(len(level), targetCh, t.minChildren())
		next := make([]*Node, 0, len(groups))
		pos = 0
		for _, sz := range groups {
			n := &Node{Children: append(make([]*Node, 0, maxCh+1), level[pos:pos+sz]...)}
			if layout == LayoutGapped {
				PackInternalGapped(n, order)
			} else {
				n.Keys = make([]keys.Key, 0, maxCh)
				for i := 1; i < len(n.Children); i++ {
					n.Keys = append(n.Keys, subtreeMin(n.Children[i]))
				}
			}
			next = append(next, n)
			pos += sz
		}
		level = next
	}
	t.root = level[0]
	t.size = len(ks)
	return t, nil
}

// PackInternalGapped rewrites gapped internal node n's key array from
// its current (dense) child list: separator i becomes the minimum key
// under child i+1, stored as a dense prefix with a sentinel tail at the
// fixed order-1 width. The array grows past that width transiently when
// the node is over-full; the caller resolves it by splitting.
func PackInternalGapped(n *Node, order int) {
	nsep := len(n.Children) - 1
	width := order - 1
	if nsep > width {
		width = nsep
	}
	if cap(n.Keys) >= width {
		n.Keys = n.Keys[:width]
	} else {
		n.Keys = make([]keys.Key, width)
	}
	for i := 1; i < len(n.Children); i++ {
		n.Keys[i-1] = subtreeMin(n.Children[i])
	}
	for i := nsep; i < width; i++ {
		n.Keys[i] = SentinelKey
	}
	words := occWords(width)
	if cap(n.occ) >= words {
		n.occ = n.occ[:words]
	} else {
		n.occ = make([]uint64, words)
	}
	for i := range n.occ {
		n.occ[i] = 0
	}
	for i := 0; i < nsep; i++ {
		n.setOcc(i)
	}
	n.count = int32(nsep)
	n.Vals = nil
}

// chunkSizes splits n items into chunks of at most target items while
// guaranteeing every chunk has at least min items (the final two chunks
// are rebalanced when the remainder would fall short). n >= 1.
func chunkSizes(n, target, min int) []int {
	if target < 1 {
		target = 1
	}
	if n <= target {
		return []int{n}
	}
	count := (n + target - 1) / target
	sizes := make([]int, count)
	base, rem := n/count, n%count
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	// Balanced division can only undershoot min when n < count*min,
	// which the count choice prevents for any min <= target/2 + 1 (the
	// B+ tree minimums). Guard against degenerate configurations.
	if sizes[len(sizes)-1] < min && count > 1 {
		sizes[len(sizes)-2] += sizes[len(sizes)-1]
		sizes = sizes[:len(sizes)-1]
	}
	return sizes
}

// subtreeMin returns the smallest key under n.
func subtreeMin(n *Node) keys.Key {
	for !n.Leaf() {
		n = n.Children[0]
	}
	return n.Keys[0]
}

// BulkLoadPairs sorts and deduplicates (last write wins) arbitrary
// pairs, then bulk loads them. Convenience for workload prefill.
func BulkLoadPairs(order int, pairs []keys.Query) (*Tree, error) {
	sorted := append([]keys.Query(nil), pairs...)
	keys.Number(sorted)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	ks := make([]keys.Key, 0, len(sorted))
	vs := make([]keys.Value, 0, len(sorted))
	for i, q := range sorted {
		if q.Op != keys.OpInsert {
			return nil, fmt.Errorf("btree: bulk load pair %d is not an insert", i)
		}
		if len(ks) > 0 && ks[len(ks)-1] == q.Key {
			vs[len(vs)-1] = q.Value // last write wins
			continue
		}
		ks = append(ks, q.Key)
		vs = append(vs, q.Value)
	}
	return BulkLoad(order, ks, vs)
}
