package btree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

// refGE/refGT are the sort.Search reference semantics the branchless
// kernels must reproduce exactly.
func refGE(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

func refGT(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return k < ks[i] })
}

// TestSearchKernelsExhaustive checks every slice length up to 18, every
// gap/duplicate pattern over a small key alphabet, and every probe key
// (below, between, equal, above) against the reference.
func TestSearchKernelsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 0; n <= 18; n++ {
		for trial := 0; trial < 200; trial++ {
			ks := make([]keys.Key, n)
			v := keys.Key(r.Intn(3))
			for i := range ks {
				v += keys.Key(1 + r.Intn(3)) // strictly ascending with gaps
				ks[i] = v
			}
			for probe := keys.Key(0); probe <= v+2; probe++ {
				if got, want := SearchGE(ks, probe), refGE(ks, probe); got != want {
					t.Fatalf("SearchGE(%v, %d) = %d, want %d", ks, probe, got, want)
				}
				if got, want := SearchGT(ks, probe), refGT(ks, probe); got != want {
					t.Fatalf("SearchGT(%v, %d) = %d, want %d", ks, probe, got, want)
				}
				if got, want := SearchGEClosure(ks, probe), refGE(ks, probe); got != want {
					t.Fatalf("SearchGEClosure(%v, %d) = %d, want %d", ks, probe, got, want)
				}
				if got, want := SearchGTClosure(ks, probe), refGT(ks, probe); got != want {
					t.Fatalf("SearchGTClosure(%v, %d) = %d, want %d", ks, probe, got, want)
				}
			}
		}
	}
}

// TestSearchKernelsRandomWide probes wide nodes (up to the default
// order) with random 64-bit keys, including the extremes.
func TestSearchKernelsRandomWide(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(DefaultOrder + 1)
		ks := make([]keys.Key, 0, n)
		seen := map[keys.Key]bool{}
		for len(ks) < n {
			k := keys.Key(r.Uint64())
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		probes := []keys.Key{0, ^keys.Key(0)}
		for i := 0; i < 32; i++ {
			probes = append(probes, keys.Key(r.Uint64()))
		}
		for _, k := range ks {
			probes = append(probes, k, k+1, k-1)
		}
		for _, probe := range probes {
			if got, want := SearchGE(ks, probe), refGE(ks, probe); got != want {
				t.Fatalf("SearchGE(len %d, %d) = %d, want %d", n, probe, got, want)
			}
			if got, want := SearchGT(ks, probe), refGT(ks, probe); got != want {
				t.Fatalf("SearchGT(len %d, %d) = %d, want %d", n, probe, got, want)
			}
		}
	}
}

// BenchmarkSearchKernels pits the branchless probes against the
// closure-based sort.Search forms on a default-order node with random
// probe keys (the branch-hostile case).
func BenchmarkSearchKernels(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ks := make([]keys.Key, DefaultOrder-1)
	for i := range ks {
		ks[i] = keys.Key(i * 7)
	}
	probes := make([]keys.Key, 1024)
	for i := range probes {
		probes[i] = keys.Key(r.Intn(7 * len(ks)))
	}
	var sink int
	b.Run("branchless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += SearchGE(ks, probes[i&1023])
		}
	})
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += SearchGEClosure(ks, probes[i&1023])
		}
	})
	_ = sink
}

// TestLeafFind checks the leaf-probe kernel against the map truth on a
// random leaf, for both kernel forms.
func TestLeafFind(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	leaf := &Node{}
	truth := map[keys.Key]keys.Value{}
	for i := 0; i < 40; i++ {
		k := keys.Key(r.Intn(100))
		if _, dup := truth[k]; dup {
			continue
		}
		truth[k] = keys.Value(i)
	}
	for k := keys.Key(0); k < 100; k++ {
		if v, ok := truth[k]; ok {
			leaf.Keys = append(leaf.Keys, k)
			leaf.Vals = append(leaf.Vals, v)
		}
	}
	for k := keys.Key(0); k < 110; k++ {
		wantV, wantOK := truth[k]
		if v, ok := LeafFind(leaf, k); ok != wantOK || (ok && v != wantV) {
			t.Fatalf("LeafFind(%d) = %d,%v want %d,%v", k, v, ok, wantV, wantOK)
		}
		if v, ok := LeafFindClosure(leaf, k); ok != wantOK || (ok && v != wantV) {
			t.Fatalf("LeafFindClosure(%d) = %d,%v want %d,%v", k, v, ok, wantV, wantOK)
		}
	}
}
