package btree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/keys"
)

// Snapshot format (little-endian):
//
//	magic   [4]byte  "QBT1"
//	order   uint32
//	count   uint64
//	pairs   count × { key uint64, value uint64 }  (ascending keys)
//
// Only the key-value contents are stored; Load rebuilds node structure
// with the bulk loader, which produces an equivalent (validated) tree.

var snapshotMagic = [4]byte{'Q', 'B', 'T', '1'}

// Save writes a snapshot of the tree's contents.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("btree: save magic: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.order))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(t.size))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("btree: save header: %w", err)
	}
	var rec [16]byte
	var saveErr error
	t.Scan(func(k keys.Key, v keys.Value) bool {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(k))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(v))
		if _, err := bw.Write(rec[:]); err != nil {
			saveErr = fmt.Errorf("btree: save pair: %w", err)
			return false
		}
		return true
	})
	if saveErr != nil {
		return saveErr
	}
	return bw.Flush()
}

// Load reconstructs a tree from a snapshot written by Save. order <= 0
// keeps the snapshot's recorded order; otherwise the tree is rebuilt
// at the given order (snapshots are order-portable).
func Load(r io.Reader, order int) (*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("btree: load magic: %w", err)
	}
	if m != snapshotMagic {
		return nil, fmt.Errorf("btree: bad snapshot magic %q", m)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("btree: load header: %w", err)
	}
	savedOrder := int(binary.LittleEndian.Uint32(hdr[0:4]))
	count := binary.LittleEndian.Uint64(hdr[4:12])
	if order <= 0 {
		order = savedOrder
	}
	if order < MinOrder {
		return nil, fmt.Errorf("btree: snapshot order %d invalid", order)
	}

	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	ks := make([]keys.Key, 0, capHint)
	vs := make([]keys.Value, 0, capHint)
	var rec [16]byte
	var prev keys.Key
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("btree: load pair %d: %w", i, err)
		}
		k := keys.Key(binary.LittleEndian.Uint64(rec[0:8]))
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("btree: snapshot keys not ascending at pair %d", i)
		}
		prev = k
		ks = append(ks, k)
		vs = append(vs, keys.Value(binary.LittleEndian.Uint64(rec[8:16])))
	}
	return BulkLoad(order, ks, vs)
}
