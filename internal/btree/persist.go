package btree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/keys"
)

// Snapshot format v2 (little-endian):
//
//	magic   [4]byte  "QBT3"
//	order   uint32
//	layout  uint8    0 = gapped, 1 = dense
//	count   uint64
//	pairs   count × { key uint64, value uint64 }  (ascending keys)
//	crc     uint32   CRC32C over order..pairs (everything after magic)
//
// Only the key-value contents are stored — gaps are compacted on save —
// and Load rebuilds node structure with the bulk loader, which produces
// an equivalent (validated) tree; the layout byte records which node
// layout to rebuild with. Load also accepts the pre-gap v1 format
// ("QBT2" magic, no layout byte), rebuilding with the default gapped
// layout, so snapshots written before the layout change keep loading.
// The trailing checksum means a truncated or bit-flipped snapshot is
// reported as an error instead of silently loading a wrong tree
// (load_corruption_test.go corrupts every byte offset and demands so).

var (
	snapshotMagic   = [4]byte{'Q', 'B', 'T', '3'}
	snapshotMagicV1 = [4]byte{'Q', 'B', 'T', '2'}
)

// castagnoli is the CRC32C table shared by every persisted format in
// this repository (snapshots, traces, WAL records).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	sum hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum.Write(p[:n])
	return n, err
}

// Save writes a snapshot of the tree's contents.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("btree: save magic: %w", err)
	}
	cw := &crcWriter{w: bw, sum: crc32.New(castagnoli)}
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.order))
	hdr[4] = byte(t.layout)
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(t.size))
	if _, err := cw.Write(hdr[:]); err != nil {
		return fmt.Errorf("btree: save header: %w", err)
	}
	var rec [16]byte
	var saveErr error
	t.Scan(func(k keys.Key, v keys.Value) bool {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(k))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(v))
		if _, err := cw.Write(rec[:]); err != nil {
			saveErr = fmt.Errorf("btree: save pair: %w", err)
			return false
		}
		return true
	})
	if saveErr != nil {
		return saveErr
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.sum.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("btree: save checksum: %w", err)
	}
	return bw.Flush()
}

// Load reconstructs a tree from a snapshot written by Save. order <= 0
// keeps the snapshot's recorded order; otherwise the tree is rebuilt
// at the given order (snapshots are order-portable, and
// layout-portable: the recorded layout is a rebuild hint, not part of
// the contents). Load verifies the checksum trailer and fails on any
// truncation or corruption.
func Load(r io.Reader, order int) (*Tree, error) {
	return load(r, order, -1)
}

// LoadLayout is Load with the node layout forced to the given value,
// overriding whatever layout the snapshot recorded (v1 snapshots
// record none). Used when restoring into an engine whose layout is
// fixed by configuration.
func LoadLayout(r io.Reader, order int, layout Layout) (*Tree, error) {
	return load(r, order, int(layout))
}

func load(r io.Reader, order, forceLayout int) (*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("btree: load magic: %w", err)
	}
	v1 := m == snapshotMagicV1
	if !v1 && m != snapshotMagic {
		return nil, fmt.Errorf("btree: bad snapshot magic %q", m)
	}
	sum := crc32.New(castagnoli)
	hdrLen := 13
	if v1 {
		hdrLen = 12
	}
	var hdrBuf [13]byte
	hdr := hdrBuf[:hdrLen]
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("btree: load header: %w", err)
	}
	sum.Write(hdr)
	savedOrder := int(binary.LittleEndian.Uint32(hdr[0:4]))
	layout := LayoutGapped
	countOff := 4
	if !v1 {
		if hdr[4] > byte(LayoutDense) {
			return nil, fmt.Errorf("btree: snapshot layout %d invalid", hdr[4])
		}
		layout = Layout(hdr[4])
		countOff = 5
	}
	count := binary.LittleEndian.Uint64(hdr[countOff : countOff+8])
	if order <= 0 {
		order = savedOrder
	}
	if forceLayout >= 0 {
		layout = Layout(forceLayout)
	}
	if order < MinOrder {
		return nil, fmt.Errorf("btree: snapshot order %d invalid", order)
	}

	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	ks := make([]keys.Key, 0, capHint)
	vs := make([]keys.Value, 0, capHint)
	var rec [16]byte
	var prev keys.Key
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("btree: load pair %d: %w", i, err)
		}
		sum.Write(rec[:])
		k := keys.Key(binary.LittleEndian.Uint64(rec[0:8]))
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("btree: snapshot keys not ascending at pair %d", i)
		}
		prev = k
		ks = append(ks, k)
		vs = append(vs, keys.Value(binary.LittleEndian.Uint64(rec[8:16])))
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("btree: load checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum.Sum32() {
		return nil, fmt.Errorf("btree: snapshot checksum mismatch (stored %08x, computed %08x)", got, sum.Sum32())
	}
	return BulkLoadLayout(order, layout, ks, vs)
}
