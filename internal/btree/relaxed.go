package btree

// PALM's batched restructuring deletes under a relaxed fill invariant
// (validate.go: RelaxedFill): nodes may stay underfull, and an internal
// node can legally be left holding a single child. The serial delete
// path's rebalancing assumed strict fill — every underfull node has a
// sibling to borrow from or merge with — and indexed out of range the
// first time it walked into a relaxed single-child spine (the shard
// migration path, which drains trees with serial deletes, hit this).
// The helpers here cover the sibling-less cases: an underfull node with
// no sibling simply stays underfull, and a leaf that empties with no
// sibling is unlinked — emptied ancestors collapsing — so readers never
// meet an empty non-root leaf.

// dropLonelyLeaf handles a leaf that fell below minimum fill while its
// parent holds no other child. A non-empty leaf stays underfull; an
// empty one is removed, cascading the removal through ancestors that
// empty with it, and the leaf chain is repaired.
func (t *Tree) dropLonelyLeaf(leaf *Node, path *Path) {
	if leaf.Len() > 0 {
		return
	}
	lvl := path.Len() - 1
	n := path.Nodes[lvl]
	t.dropChild(n, path.Slots[lvl])
	for len(n.Children) == 0 {
		if lvl == 0 {
			// Every leaf hung off this spine: the tree is empty.
			t.root = NewLeafLayout(t.order, t.layout)
			return
		}
		lvl--
		n = path.Nodes[lvl]
		t.dropChild(n, path.Slots[lvl])
	}
	if t.layout == LayoutGapped {
		t.rebalanceInternalGapped(n, path, lvl)
	} else {
		t.rebalanceInternal(n, path, lvl)
	}
	// A strict tree collapses the root at most one level; relaxed
	// single-child spines can chain, so keep collapsing.
	for !t.root.Leaf() && len(t.root.Children) == 1 {
		t.root = t.root.Children[0]
	}
	t.relinkLeaves()
}

// dropChild removes n.Children[slot] together with one adjacent
// separator, tolerating slot 0 and separator-less relaxed nodes
// (unlike internalRemoveAt / removeChild, which the strict merge paths
// only ever call with slot >= 1).
func (t *Tree) dropChild(n *Node, slot int) {
	if t.layout == LayoutGapped {
		cnt := int(n.count)
		if cnt > 0 {
			ki := slot - 1
			if ki < 0 {
				ki = 0
			}
			copy(n.Keys[ki:cnt-1], n.Keys[ki+1:cnt])
			n.Keys[cnt-1] = SentinelKey
			n.clearOcc(cnt - 1)
			n.count--
		}
		n.Children = append(n.Children[:slot], n.Children[slot+1:]...)
		return
	}
	if len(n.Keys) > 0 {
		ki := slot - 1
		if ki < 0 {
			ki = 0
		}
		n.Keys = append(n.Keys[:ki], n.Keys[ki+1:]...)
	}
	n.Children = append(n.Children[:slot], n.Children[slot+1:]...)
}

// relinkLeaves rebuilds the leaf chain with one in-order walk. Only the
// rare lonely-leaf removal needs it serially (the batched restructure
// has its own sweep); the removal cannot reach the preceding leaf —
// which lives under a different subtree — through the singly-linked
// chain, so it re-derives the whole chain instead.
func (t *Tree) relinkLeaves() {
	var prev *Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			if prev != nil {
				prev.Next = n
			}
			prev = n
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	if prev != nil {
		prev.Next = nil
	}
}
