package btree

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/keys"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := MustNew(8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		tr.Insert(keys.Key(r.Intn(20000)), keys.Value(r.Uint64()))
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 8 {
		t.Fatalf("Order = %d, want snapshot's 8", got.Order())
	}
	if err := got.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
	gk, gv := got.Dump()
	wk, wv := tr.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("sizes %d vs %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	tr := MustNew(4)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 0)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v, len %d", err, got.Len())
	}
}

func TestLoadAtDifferentOrder(t *testing.T) {
	tr := MustNew(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 64) // order-portable
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 64 {
		t.Fatalf("Order = %d", got.Order())
	}
	if got.Height() >= tr.Height() {
		t.Fatalf("wider tree not shallower: %d vs %d", got.Height(), tr.Height())
	}
	if err := got.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	tr := MustNew(4)
	tr.Insert(1, 1)
	tr.Insert(2, 2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("XXXX")), 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:10]), 0); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)-3]), 0); err == nil {
		t.Fatal("truncated pairs accepted")
	}
	// Swap the two pairs so keys descend.
	bad := append([]byte(nil), raw...)
	copy(bad[16:32], raw[32:48])
	copy(bad[32:48], raw[16:32])
	if _, err := Load(bytes.NewReader(bad), 0); err == nil {
		t.Fatal("descending keys accepted")
	}
	// Hostile count with no data must fail fast, not allocate.
	hostile := append([]byte(nil), raw[:16]...)
	hostile[4] = 0xff // count low byte
	hostile[8] = 0xff
	if _, err := Load(bytes.NewReader(hostile), 0); err == nil {
		t.Fatal("hostile count accepted")
	}
}
