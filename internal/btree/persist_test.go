package btree

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/keys"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := MustNew(8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		tr.Insert(keys.Key(r.Intn(20000)), keys.Value(r.Uint64()))
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 8 {
		t.Fatalf("Order = %d, want snapshot's 8", got.Order())
	}
	if err := got.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
	gk, gv := got.Dump()
	wk, wv := tr.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("sizes %d vs %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	tr := MustNew(4)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 0)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v, len %d", err, got.Len())
	}
}

func TestLoadAtDifferentOrder(t *testing.T) {
	tr := MustNew(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 64) // order-portable
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 64 {
		t.Fatalf("Order = %d", got.Order())
	}
	if got.Height() >= tr.Height() {
		t.Fatalf("wider tree not shallower: %d vs %d", got.Height(), tr.Height())
	}
	if err := got.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	tr := MustNew(4)
	tr.Insert(1, 1)
	tr.Insert(2, 2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("XXXX")), 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:10]), 0); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)-3]), 0); err == nil {
		t.Fatal("truncated pairs accepted")
	}
	// Swap the two pairs so keys descend (v2 pairs start after the
	// 4-byte magic + 13-byte header).
	bad := append([]byte(nil), raw...)
	copy(bad[17:33], raw[33:49])
	copy(bad[33:49], raw[17:33])
	if _, err := Load(bytes.NewReader(bad), 0); err == nil {
		t.Fatal("descending keys accepted")
	}
	// Invalid layout byte (hdr[4] after magic).
	badLayout := append([]byte(nil), raw...)
	badLayout[8] = 0x7f
	if _, err := Load(bytes.NewReader(badLayout), 0); err == nil {
		t.Fatal("invalid layout byte accepted")
	}
	// Hostile count with no data must fail fast, not allocate.
	hostile := append([]byte(nil), raw[:17]...)
	hostile[9] = 0xff // count low byte
	hostile[13] = 0xff
	if _, err := Load(bytes.NewReader(hostile), 0); err == nil {
		t.Fatal("hostile count accepted")
	}
}

// TestSaveLoadDenseLayout checks the layout byte round-trips: a dense
// tree reloads dense, a gapped tree gapped, and LoadLayout overrides
// whatever the snapshot recorded.
func TestSaveLoadDenseLayout(t *testing.T) {
	for _, l := range []Layout{LayoutGapped, LayoutDense} {
		tr, err := NewLayout(8, l)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			tr.Insert(keys.Key(i*3), keys.Value(i))
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()

		got, err := Load(bytes.NewReader(raw), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Layout() != l {
			t.Fatalf("saved %v, loaded %v", l, got.Layout())
		}
		for _, force := range []Layout{LayoutGapped, LayoutDense} {
			forced, err := LoadLayout(bytes.NewReader(raw), 0, force)
			if err != nil {
				t.Fatal(err)
			}
			if forced.Layout() != force {
				t.Fatalf("LoadLayout(%v) built %v", force, forced.Layout())
			}
			if err := forced.Validate(StrictFill); err != nil {
				t.Fatal(err)
			}
			if forced.Len() != tr.Len() {
				t.Fatalf("LoadLayout(%v): %d entries, want %d", force, forced.Len(), tr.Len())
			}
		}
	}
}

// v1Snapshot hand-writes a pre-gap ("QBT2") snapshot: 12-byte header
// with no layout byte, same CRC trailer. Kept in the test only — the
// writer for this format no longer exists in the tree.
func v1Snapshot(order uint32, ks []keys.Key, vs []keys.Value) []byte {
	var buf bytes.Buffer
	buf.WriteString("QBT2")
	body := make([]byte, 12, 12+16*len(ks))
	binary.LittleEndian.PutUint32(body[0:4], order)
	binary.LittleEndian.PutUint64(body[4:12], uint64(len(ks)))
	for i := range ks {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(ks[i]))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(vs[i]))
		body = append(body, rec[:]...)
	}
	buf.Write(body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(body, castagnoli))
	buf.Write(tail[:])
	return buf.Bytes()
}

// TestLoadLegacyV1Snapshot locks backward compatibility: a snapshot in
// the pre-gap v1 format loads into a (default) gapped tree with the
// same contents, LoadLayout can force it dense, and the v1 bytes are
// still protected by their checksum.
func TestLoadLegacyV1Snapshot(t *testing.T) {
	n := 300
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i*5 + 1)
		vs[i] = keys.Value(i * 11)
	}
	snap := v1Snapshot(8, ks, vs)

	got, err := Load(bytes.NewReader(snap), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout() != LayoutGapped {
		t.Fatalf("v1 snapshot loaded as %v, want gapped default", got.Layout())
	}
	if got.Order() != 8 || got.Len() != n {
		t.Fatalf("order %d len %d", got.Order(), got.Len())
	}
	if err := got.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
	gk, gv := got.Dump()
	for i := range ks {
		if gk[i] != ks[i] || gv[i] != vs[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}

	dense, err := LoadLayout(bytes.NewReader(snap), 0, LayoutDense)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Layout() != LayoutDense || dense.Len() != n {
		t.Fatalf("forced dense: layout %v len %d", dense.Layout(), dense.Len())
	}

	// Every single-byte corruption of the v1 snapshot must be rejected
	// too (the legacy reader shares the checksum trailer).
	for off := 0; off < len(snap); off++ {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut), 0); err == nil {
			t.Fatalf("v1 snapshot with byte %d flipped accepted", off)
		}
	}
}
