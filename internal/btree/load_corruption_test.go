package btree

import (
	"bytes"
	"testing"

	"repro/internal/keys"
)

// TestLoadRejectsCorruption flips every single byte of a small snapshot
// (and tries every truncation length) and demands that Load reports an
// error rather than silently producing a wrong tree. This is the
// regression lock for the pre-checksum format, which validated only the
// magic bytes.
func TestLoadRejectsCorruption(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Insert(keys.Key(i*3+1), keys.Value(i*7))
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	if _, err := Load(bytes.NewReader(snap), 0); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	for off := 0; off < len(snap); off++ {
		for _, flip := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), snap...)
			mut[off] ^= flip
			if _, err := Load(bytes.NewReader(mut), 0); err == nil {
				t.Fatalf("snapshot with byte %d xor %#x accepted", off, flip)
			}
		}
	}

	for n := 0; n < len(snap); n++ {
		if _, err := Load(bytes.NewReader(snap[:n]), 0); err == nil {
			t.Fatalf("snapshot truncated to %d/%d bytes accepted", n, len(snap))
		}
	}
}
