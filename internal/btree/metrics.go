package btree

// Metrics summarizes a tree's structure and space utilization — useful
// for validating bulk-load targets and for observing how batched
// restructuring (with its relaxed delete policy) shapes the tree over
// time.
type Metrics struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int
	// LeafFill is the mean leaf occupancy relative to the per-leaf
	// maximum, in [0, 1]. 0 for an empty tree.
	LeafFill float64
	// InternalFill is the mean internal fanout relative to the order,
	// in [0, 1]. 0 when the tree has no internal nodes.
	InternalFill float64
	// MinLeafEntries / MaxLeafEntries are the extreme leaf sizes
	// (excluding a root leaf).
	MinLeafEntries, MaxLeafEntries int
}

// CollectMetrics walks the tree once and returns its metrics.
func (t *Tree) CollectMetrics() Metrics {
	m := Metrics{Height: t.Height(), MinLeafEntries: int(^uint(0) >> 1)}
	maxLeaf := t.maxLeafEntries()
	var leafSum, internalSum int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			m.LeafNodes++
			m.Entries += n.Len()
			leafSum += n.Len()
			if n != t.root {
				if n.Len() < m.MinLeafEntries {
					m.MinLeafEntries = n.Len()
				}
				if n.Len() > m.MaxLeafEntries {
					m.MaxLeafEntries = n.Len()
				}
			}
			return
		}
		m.InternalNodes++
		internalSum += len(n.Children)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	if m.LeafNodes > 0 && maxLeaf > 0 {
		m.LeafFill = float64(leafSum) / float64(m.LeafNodes*maxLeaf)
	}
	if m.InternalNodes > 0 {
		m.InternalFill = float64(internalSum) / float64(m.InternalNodes*t.order)
	}
	if m.MinLeafEntries == int(^uint(0)>>1) {
		m.MinLeafEntries = 0
	}
	return m
}

// VisitLeaves calls fn for every leaf in chain order with its entry
// count and slot capacity; the layout-metrics exporter feeds the
// node-occupancy histogram from it without exposing node internals.
func (t *Tree) VisitLeaves(fn func(entries, capacity int)) {
	n := t.root
	for !n.Leaf() {
		n = n.Children[0]
	}
	for ; n != nil; n = n.Next {
		c := t.maxLeafEntries()
		if n.occ != nil {
			c = len(n.Keys)
		}
		fn(n.Len(), c)
	}
}
