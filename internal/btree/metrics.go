package btree

// Metrics summarizes a tree's structure and space utilization — useful
// for validating bulk-load targets and for observing how batched
// restructuring (with its relaxed delete policy) shapes the tree over
// time.
type Metrics struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int
	// LeafFill is the mean leaf occupancy relative to the per-leaf
	// maximum, in [0, 1]. 0 for an empty tree.
	LeafFill float64
	// InternalFill is the mean internal fanout relative to the order,
	// in [0, 1]. 0 when the tree has no internal nodes.
	InternalFill float64
	// MinLeafEntries / MaxLeafEntries are the extreme leaf sizes
	// (excluding a root leaf).
	MinLeafEntries, MaxLeafEntries int
}

// CollectMetrics walks the tree once and returns its metrics.
func (t *Tree) CollectMetrics() Metrics {
	m := Metrics{Height: t.Height(), MinLeafEntries: int(^uint(0) >> 1)}
	maxLeaf := t.maxLeafEntries()
	var leafSum, internalSum int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			m.LeafNodes++
			m.Entries += len(n.Keys)
			leafSum += len(n.Keys)
			if n != t.root {
				if len(n.Keys) < m.MinLeafEntries {
					m.MinLeafEntries = len(n.Keys)
				}
				if len(n.Keys) > m.MaxLeafEntries {
					m.MaxLeafEntries = len(n.Keys)
				}
			}
			return
		}
		m.InternalNodes++
		internalSum += len(n.Children)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	if m.LeafNodes > 0 && maxLeaf > 0 {
		m.LeafFill = float64(leafSum) / float64(m.LeafNodes*maxLeaf)
	}
	if m.InternalNodes > 0 {
		m.InternalFill = float64(internalSum) / float64(m.InternalNodes*t.order)
	}
	if m.MinLeafEntries == int(^uint(0)>>1) {
		m.MinLeafEntries = 0
	}
	return m
}
