package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	if _, err := BulkLoad(8, []keys.Key{1, 2}, []keys.Value{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := BulkLoad(8, []keys.Key{2, 1}, []keys.Value{1, 2}); err == nil {
		t.Fatal("descending keys accepted")
	}
	if _, err := BulkLoad(8, []keys.Key{1, 1}, []keys.Value{1, 2}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := BulkLoad(1, []keys.Key{1}, []keys.Value{1}); err == nil {
		t.Fatal("invalid order accepted")
	}
}

func TestBulkLoadSizesAndContents(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 63, 64, 65, 1000, 12345} {
		for _, order := range []int{3, 4, 16, 64} {
			ks := make([]keys.Key, n)
			vs := make([]keys.Value, n)
			for i := range ks {
				ks[i] = keys.Key(i * 3)
				vs[i] = keys.Value(i)
			}
			tr, err := BulkLoad(order, ks, vs)
			if err != nil {
				t.Fatalf("n=%d order=%d: %v", n, order, err)
			}
			if tr.Len() != n {
				t.Fatalf("n=%d order=%d: Len = %d", n, order, tr.Len())
			}
			if err := tr.Validate(StrictFill); err != nil {
				t.Fatalf("n=%d order=%d: %v", n, order, err)
			}
			// Spot-check lookups.
			for i := 0; i < n; i += 1 + n/37 {
				v, ok := tr.Search(keys.Key(i * 3))
				if !ok || v != keys.Value(i) {
					t.Fatalf("n=%d order=%d: Search(%d) = %d,%v", n, order, i*3, v, ok)
				}
			}
			if _, ok := tr.Search(1); n > 1 && ok {
				t.Fatal("found a key that was never loaded")
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	n := 5000
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i * 2)
		vs[i] = keys.Value(i)
	}
	tr, err := BulkLoad(16, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	// Inserts into the gaps and deletes must keep the tree valid.
	for i := 1; i < 2*n; i += 40 {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	for i := 0; i < 2*n; i += 80 {
		tr.Delete(keys.Key(i))
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadMatchesSerialInserts(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		order := 3 + r.Intn(20)
		seen := map[keys.Key]keys.Value{}
		for _, x := range raw {
			seen[keys.Key(x)] = keys.Value(x) + 1
		}
		ks := make([]keys.Key, 0, len(seen))
		for k := range seen {
			ks = append(ks, k)
		}
		sortKeys(ks)
		vs := make([]keys.Value, len(ks))
		for i, k := range ks {
			vs[i] = seen[k]
		}
		bl, err := BulkLoad(order, ks, vs)
		if err != nil || bl.Validate(StrictFill) != nil {
			return false
		}
		ref := MustNew(order)
		for i, k := range ks {
			ref.Insert(k, vs[i])
		}
		bk, bv := bl.Dump()
		rk, rv := ref.Dump()
		if len(bk) != len(rk) {
			return false
		}
		for i := range bk {
			if bk[i] != rk[i] || bv[i] != rv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sortKeys(ks []keys.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func TestBulkLoadPairs(t *testing.T) {
	pairs := []keys.Query{
		keys.Insert(5, 50),
		keys.Insert(1, 10),
		keys.Insert(5, 51), // duplicate: last write wins
		keys.Insert(3, 30),
	}
	tr, err := BulkLoadPairs(8, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Search(5); !ok || v != 51 {
		t.Fatalf("Search(5) = %d,%v; want last write 51", v, ok)
	}
	if _, err := BulkLoadPairs(8, []keys.Query{keys.Delete(1)}); err == nil {
		t.Fatal("non-insert pair accepted")
	}
}

func TestChunkSizes(t *testing.T) {
	for _, c := range []struct{ n, target, min int }{
		{1, 8, 3}, {8, 8, 3}, {9, 8, 3}, {100, 8, 3}, {17, 16, 7}, {65, 56, 31},
	} {
		sizes := chunkSizes(c.n, c.target, c.min)
		sum := 0
		for i, s := range sizes {
			sum += s
			if s > c.target+c.min { // merged tail may exceed target but stays bounded
				t.Fatalf("chunkSizes(%v) chunk %d = %d too large: %v", c, i, s, sizes)
			}
			if len(sizes) > 1 && s < c.min {
				t.Fatalf("chunkSizes(%v) chunk %d = %d below min: %v", c, i, s, sizes)
			}
		}
		if sum != c.n {
			t.Fatalf("chunkSizes(%v) sums to %d: %v", c, sum, sizes)
		}
	}
}

func BenchmarkBulkLoad1M(b *testing.B) {
	const n = 1 << 20
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i)
		vs[i] = keys.Value(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(DefaultOrder, ks, vs); err != nil {
			b.Fatal(err)
		}
	}
}
