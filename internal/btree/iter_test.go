package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func evenTree(t *testing.T, n, order int) *Tree {
	t.Helper()
	tr := MustNew(order)
	for i := 0; i < n; i++ {
		tr.Insert(keys.Key(i*2), keys.Value(i)) // even keys 0,2,4,...
	}
	return tr
}

func TestIterFullWalk(t *testing.T) {
	tr := evenTree(t, 1000, 5)
	count := 0
	for it := tr.First(); it.Valid(); it.Next() {
		k, v := it.Pair()
		if k != keys.Key(count*2) || v != keys.Value(count) {
			t.Fatalf("pair %d = (%d,%d)", count, k, v)
		}
		count++
	}
	if count != 1000 {
		t.Fatalf("walked %d pairs", count)
	}
}

func TestIterEmptyTree(t *testing.T) {
	tr := MustNew(4)
	if it := tr.First(); it.Valid() {
		t.Fatal("empty tree iterator valid")
	}
	if it := tr.Seek(5); it.Valid() {
		t.Fatal("empty tree Seek valid")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("empty Min")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("empty Max")
	}
}

func TestSeekExactAndBetween(t *testing.T) {
	tr := evenTree(t, 100, 4)
	it := tr.Seek(50) // present
	if !it.Valid() || it.Key() != 50 {
		t.Fatalf("Seek(50) at %d", it.Key())
	}
	it = tr.Seek(51) // absent: next is 52
	if !it.Valid() || it.Key() != 52 {
		t.Fatalf("Seek(51) at %d", it.Key())
	}
	it = tr.Seek(0)
	if !it.Valid() || it.Key() != 0 {
		t.Fatalf("Seek(0) at %d", it.Key())
	}
	if it := tr.Seek(9999); it.Valid() {
		t.Fatal("Seek past end valid")
	}
}

func TestMinMax(t *testing.T) {
	tr := evenTree(t, 500, 7)
	if k, v, ok := tr.Min(); !ok || k != 0 || v != 0 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 998 || v != 499 {
		t.Fatalf("Max = %d,%d,%v", k, v, ok)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := evenTree(t, 100, 4)
	if k, _, ok := tr.Successor(50); !ok || k != 52 {
		t.Fatalf("Successor(50) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Successor(51); !ok || k != 52 {
		t.Fatalf("Successor(51) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Successor(198); ok {
		t.Fatal("Successor(max) exists")
	}
	if k, _, ok := tr.Predecessor(50); !ok || k != 48 {
		t.Fatalf("Predecessor(50) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Predecessor(51); !ok || k != 50 {
		t.Fatalf("Predecessor(51) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor(min) exists")
	}
	// Leaf-boundary predecessor: every even key's predecessor is k-2.
	for k := keys.Key(2); k < 200; k += 2 {
		pk, _, ok := tr.Predecessor(k)
		if !ok || pk != k-2 {
			t.Fatalf("Predecessor(%d) = %d,%v", k, pk, ok)
		}
	}
}

func TestIterNextOnInvalid(t *testing.T) {
	tr := MustNew(4)
	it := tr.First()
	if it.Next() {
		t.Fatal("Next on invalid iterator succeeded")
	}
}

// Property: Seek(k) on a random tree lands exactly where a sorted
// slice's lower-bound lands.
func TestSeekProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		tr := MustNew(6)
		set := map[keys.Key]bool{}
		for _, x := range raw {
			k := keys.Key(x % 500)
			tr.Insert(k, keys.Value(k))
			set[k] = true
		}
		sorted := make([]keys.Key, 0, len(set))
		for k := range set {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		k := keys.Key(probe % 600)
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
		it := tr.Seek(k)
		if idx == len(sorted) {
			return !it.Valid()
		}
		return it.Valid() && it.Key() == sorted[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Successor/Predecessor invert each other on random trees.
func TestSuccessorPredecessorProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := MustNew(5)
	present := map[keys.Key]bool{}
	for i := 0; i < 3000; i++ {
		k := keys.Key(r.Intn(10000))
		tr.Insert(k, keys.Value(k))
		present[k] = true
	}
	for probe := 0; probe < 500; probe++ {
		k := keys.Key(r.Intn(10000))
		if sk, _, ok := tr.Successor(k); ok {
			if sk <= k || !present[sk] {
				t.Fatalf("Successor(%d) = %d", k, sk)
			}
			if pk, _, ok2 := tr.Predecessor(sk); !ok2 || pk > k && pk != k && !present[pk] {
				t.Fatalf("Predecessor(Successor(%d)=%d) = %d,%v", k, sk, pk, ok2)
			}
		}
	}
}
