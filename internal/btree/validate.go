package btree

import (
	"fmt"

	"repro/internal/keys"
)

// FillPolicy selects which minimum-fill invariant Validate enforces.
type FillPolicy int

const (
	// StrictFill enforces the textbook minimums: non-root internal nodes
	// have >= ceil(order/2) children, non-root leaves >= floor((order-1)/2)
	// entries. The serial Tree maintains this.
	StrictFill FillPolicy = iota
	// RelaxedFill only requires nodes to be non-empty. PALM's batched
	// restructuring (like the paper's open-source baseline) may leave
	// under-full nodes after deletions but never empty ones.
	RelaxedFill
)

// Validate checks every structural invariant of the tree and returns the
// first violation found, or nil. Checked invariants:
//
//  1. Keys within every node strictly ascend.
//  2. Internal nodes have len(Children) == len(Keys)+1 and no Vals;
//     leaves have len(Vals) == len(Keys) and no Children.
//  3. Separator keys bound their subtrees: subtree i < Keys[i] <= subtree i+1,
//     and Keys[i] equals the smallest key of subtree i+1's leftmost leaf.
//  4. All leaves are at the same depth.
//  5. The leaf chain visits exactly the leaves, left to right.
//  6. Node sizes respect order and the fill policy.
//  7. Tree.Len() equals the total number of leaf entries.
func (t *Tree) Validate(policy FillPolicy) error {
	type frame struct {
		n     *Node
		depth int
		lo    keys.Key
		hasLo bool
		hi    keys.Key
		hasHi bool
	}
	leafDepth := -1
	var leaves []*Node
	entries := 0

	var walk func(f frame) error
	walk = func(f frame) error {
		n := f.n
		for i := 1; i < len(n.Keys); i++ {
			if n.Keys[i-1] >= n.Keys[i] {
				return fmt.Errorf("btree: keys not strictly ascending in node at depth %d: %v", f.depth, n.Keys)
			}
		}
		for i, k := range n.Keys {
			if f.hasLo && k < f.lo {
				return fmt.Errorf("btree: key %d below lower bound %d at depth %d", k, f.lo, f.depth)
			}
			if f.hasHi && k >= f.hi {
				return fmt.Errorf("btree: key %d not below upper bound %d at depth %d", k, f.hi, f.depth)
			}
			_ = i
		}
		if n.Leaf() {
			if n.Children != nil {
				return fmt.Errorf("btree: leaf with children at depth %d", f.depth)
			}
			if len(n.Vals) != len(n.Keys) {
				return fmt.Errorf("btree: leaf with %d keys but %d vals", len(n.Keys), len(n.Vals))
			}
			if leafDepth == -1 {
				leafDepth = f.depth
			} else if leafDepth != f.depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, f.depth)
			}
			if len(n.Keys) > t.maxLeafEntries() {
				return fmt.Errorf("btree: leaf overfull: %d > %d", len(n.Keys), t.maxLeafEntries())
			}
			if n != t.root {
				switch policy {
				case StrictFill:
					if len(n.Keys) < t.minLeafEntries() {
						return fmt.Errorf("btree: leaf underfull: %d < %d", len(n.Keys), t.minLeafEntries())
					}
				case RelaxedFill:
					if len(n.Keys) == 0 {
						return fmt.Errorf("btree: empty non-root leaf")
					}
				}
			}
			leaves = append(leaves, n)
			entries += len(n.Keys)
			return nil
		}
		if n.Vals != nil {
			return fmt.Errorf("btree: internal node with vals at depth %d", f.depth)
		}
		if len(n.Children) != len(n.Keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys but %d children", len(n.Keys), len(n.Children))
		}
		if len(n.Children) > t.order {
			return fmt.Errorf("btree: internal node overfull: %d > %d children", len(n.Children), t.order)
		}
		if n != t.root {
			switch policy {
			case StrictFill:
				if len(n.Children) < t.minChildren() {
					return fmt.Errorf("btree: internal node underfull: %d < %d children", len(n.Children), t.minChildren())
				}
			case RelaxedFill:
				if len(n.Children) < 1 {
					return fmt.Errorf("btree: internal node with no children")
				}
			}
		} else if len(n.Children) < 2 {
			return fmt.Errorf("btree: internal root with %d children", len(n.Children))
		}
		for i, c := range n.Children {
			cf := frame{n: c, depth: f.depth + 1, lo: f.lo, hasLo: f.hasLo, hi: f.hi, hasHi: f.hasHi}
			if i > 0 {
				cf.lo, cf.hasLo = n.Keys[i-1], true
			}
			if i < len(n.Keys) {
				cf.hi, cf.hasHi = n.Keys[i], true
			}
			if err := walk(cf); err != nil {
				return err
			}
		}
		// Separators are routing values: the recursive bound checks
		// above already guarantee subtree(i) < Keys[i] <= subtree(i+1),
		// which is the full separator invariant. Equality with the
		// right subtree's minimum holds at split time but legitimately
		// goes stale when that minimum is later deleted (textbook
		// behavior), so it is deliberately not checked.
		return nil
	}

	if t.root == nil {
		return fmt.Errorf("btree: nil root")
	}
	if err := walk(frame{n: t.root, depth: 0}); err != nil {
		return err
	}

	// Leaf chain must equal the in-order leaf list.
	n := t.root
	for !n.Leaf() {
		n = n.Children[0]
	}
	i := 0
	for ; n != nil; n = n.Next {
		if i >= len(leaves) || leaves[i] != n {
			return fmt.Errorf("btree: leaf chain diverges at position %d", i)
		}
		i++
	}
	if i != len(leaves) {
		return fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", i, len(leaves))
	}

	if entries != t.size {
		return fmt.Errorf("btree: size %d but %d leaf entries", t.size, entries)
	}
	return nil
}

// Dump returns the key-value pairs in ascending key order; used by the
// differential tests to compare against the oracle.
func (t *Tree) Dump() (ks []keys.Key, vs []keys.Value) {
	t.Scan(func(k keys.Key, v keys.Value) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

// CountNodes returns the number of internal nodes and leaves.
func (t *Tree) CountNodes() (internal, leaf int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			leaf++
			return
		}
		internal++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	return internal, leaf
}
