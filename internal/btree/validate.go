package btree

import (
	"fmt"
	"math/bits"

	"repro/internal/keys"
)

// FillPolicy selects which minimum-fill invariant Validate enforces.
type FillPolicy int

const (
	// StrictFill enforces the textbook minimums: non-root internal nodes
	// have >= ceil(order/2) children, non-root leaves >= floor((order-1)/2)
	// entries. The serial Tree maintains this.
	StrictFill FillPolicy = iota
	// RelaxedFill only requires nodes to be non-empty. PALM's batched
	// restructuring (like the paper's open-source baseline) may leave
	// under-full nodes after deletions but never empty ones.
	RelaxedFill
)

// Validate checks every structural invariant of the tree and returns the
// first violation found, or nil. Checked invariants:
//
//  1. Keys within every node strictly ascend.
//  2. Internal nodes have len(Children) == len(Keys)+1 and no Vals;
//     leaves have len(Vals) == len(Keys) and no Children.
//  3. Separator keys bound their subtrees: subtree i < Keys[i] <= subtree i+1,
//     and Keys[i] equals the smallest key of subtree i+1's leftmost leaf.
//  4. All leaves are at the same depth.
//  5. The leaf chain visits exactly the leaves, left to right.
//  6. Node sizes respect order and the fill policy.
//  7. Tree.Len() equals the total number of leaf entries.
//  8. Gapped nodes (checked per node, so PALM's staged rebuilds may mix
//     layouts) additionally satisfy the slot invariants: fixed array
//     width, count == bitmap popcount, occupied keys strictly ascend,
//     and every free slot duplicates the nearest occupied entry to its
//     right (or holds SentinelKey/0 past the last entry). Gapped
//     internal nodes keep their separators as a dense prefix.
func (t *Tree) Validate(policy FillPolicy) error {
	type frame struct {
		n     *Node
		depth int
		lo    keys.Key
		hasLo bool
		hi    keys.Key
		hasHi bool
	}
	leafDepth := -1
	var leaves []*Node
	entries := 0

	var walk func(f frame) error
	walk = func(f frame) error {
		n := f.n
		if n.Gapped() {
			if err := t.validateGappedSlots(n, f.depth); err != nil {
				return err
			}
		} else {
			for i := 1; i < len(n.Keys); i++ {
				if n.Keys[i-1] >= n.Keys[i] {
					return fmt.Errorf("btree: keys not strictly ascending in node at depth %d: %v", f.depth, n.Keys)
				}
			}
		}
		// Bounds apply to real entries only: a gapped node's sentinel
		// tail legitimately exceeds any upper bound.
		for i := n.FirstSlot(); i < len(n.Keys); i = n.NextSlot(i) {
			k := n.Keys[i]
			if f.hasLo && k < f.lo {
				return fmt.Errorf("btree: key %d below lower bound %d at depth %d", k, f.lo, f.depth)
			}
			if f.hasHi && k >= f.hi {
				return fmt.Errorf("btree: key %d not below upper bound %d at depth %d", k, f.hi, f.depth)
			}
		}
		if n.Leaf() {
			if n.Children != nil {
				return fmt.Errorf("btree: leaf with children at depth %d", f.depth)
			}
			if len(n.Vals) != len(n.Keys) {
				return fmt.Errorf("btree: leaf with %d key slots but %d val slots", len(n.Keys), len(n.Vals))
			}
			if n.Gapped() {
				if len(n.Keys) != t.maxLeafEntries() {
					return fmt.Errorf("btree: gapped leaf has %d slots, want %d", len(n.Keys), t.maxLeafEntries())
				}
				if err := n.validateGapFill(f.depth); err != nil {
					return err
				}
			}
			if leafDepth == -1 {
				leafDepth = f.depth
			} else if leafDepth != f.depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, f.depth)
			}
			if n.Len() > t.maxLeafEntries() {
				return fmt.Errorf("btree: leaf overfull: %d > %d", n.Len(), t.maxLeafEntries())
			}
			if n != t.root {
				switch policy {
				case StrictFill:
					if n.Len() < t.minLeafEntries() {
						return fmt.Errorf("btree: leaf underfull: %d < %d", n.Len(), t.minLeafEntries())
					}
				case RelaxedFill:
					if n.Len() == 0 {
						return fmt.Errorf("btree: empty non-root leaf")
					}
				}
			}
			leaves = append(leaves, n)
			entries += n.Len()
			return nil
		}
		if n.Vals != nil {
			return fmt.Errorf("btree: internal node with vals at depth %d", f.depth)
		}
		if len(n.Children) != n.Len()+1 {
			return fmt.Errorf("btree: internal node with %d keys but %d children", n.Len(), len(n.Children))
		}
		if n.Gapped() {
			if n.Len() <= t.sepCap() && len(n.Keys) != t.sepCap() {
				return fmt.Errorf("btree: gapped internal node has %d slots, want %d", len(n.Keys), t.sepCap())
			}
			// Separators are a dense prefix with a free sentinel tail.
			for i := 0; i < n.Len(); i++ {
				if !n.Occupied(i) {
					return fmt.Errorf("btree: gapped internal separator slot %d free at depth %d", i, f.depth)
				}
			}
			for i := n.Len(); i < len(n.Keys); i++ {
				if n.Occupied(i) || n.Keys[i] != SentinelKey {
					return fmt.Errorf("btree: gapped internal tail slot %d not sentinel at depth %d", i, f.depth)
				}
			}
		}
		if len(n.Children) > t.order {
			return fmt.Errorf("btree: internal node overfull: %d > %d children", len(n.Children), t.order)
		}
		if n != t.root {
			switch policy {
			case StrictFill:
				if len(n.Children) < t.minChildren() {
					return fmt.Errorf("btree: internal node underfull: %d < %d children", len(n.Children), t.minChildren())
				}
			case RelaxedFill:
				if len(n.Children) < 1 {
					return fmt.Errorf("btree: internal node with no children")
				}
			}
		} else if len(n.Children) < 2 {
			return fmt.Errorf("btree: internal root with %d children", len(n.Children))
		}
		for i, c := range n.Children {
			cf := frame{n: c, depth: f.depth + 1, lo: f.lo, hasLo: f.hasLo, hi: f.hi, hasHi: f.hasHi}
			if i > 0 {
				cf.lo, cf.hasLo = n.Keys[i-1], true
			}
			if i < n.Len() {
				cf.hi, cf.hasHi = n.Keys[i], true
			}
			if err := walk(cf); err != nil {
				return err
			}
		}
		// Separators are routing values: the recursive bound checks
		// above already guarantee subtree(i) < Keys[i] <= subtree(i+1),
		// which is the full separator invariant. Equality with the
		// right subtree's minimum holds at split time but legitimately
		// goes stale when that minimum is later deleted (textbook
		// behavior), so it is deliberately not checked.
		return nil
	}

	if t.root == nil {
		return fmt.Errorf("btree: nil root")
	}
	if err := walk(frame{n: t.root, depth: 0}); err != nil {
		return err
	}

	// Leaf chain must equal the in-order leaf list.
	n := t.root
	for !n.Leaf() {
		n = n.Children[0]
	}
	i := 0
	for ; n != nil; n = n.Next {
		if i >= len(leaves) || leaves[i] != n {
			return fmt.Errorf("btree: leaf chain diverges at position %d", i)
		}
		i++
	}
	if i != len(leaves) {
		return fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", i, len(leaves))
	}

	if entries != t.size {
		return fmt.Errorf("btree: size %d but %d leaf entries", t.size, entries)
	}
	return nil
}

// validateGappedSlots checks the layout invariants common to every
// gapped node: bitmap sizing, count == popcount, the full slot array
// non-decreasing, and occupied keys strictly ascending.
func (t *Tree) validateGappedSlots(n *Node, depth int) error {
	c := len(n.Keys)
	if len(n.occ) != occWords(c) {
		return fmt.Errorf("btree: gapped node bitmap has %d words for %d slots at depth %d", len(n.occ), c, depth)
	}
	pop := 0
	for w, word := range n.occ {
		pop += bits.OnesCount64(word)
		lo := w * 64
		if hi := lo + 64; hi > c && word>>(uint(c-lo)) != 0 {
			return fmt.Errorf("btree: gapped node bitmap has bits past slot %d at depth %d", c, depth)
		}
	}
	if pop != int(n.count) {
		return fmt.Errorf("btree: gapped node count %d but %d occupied slots at depth %d", n.count, pop, depth)
	}
	for i := 1; i < c; i++ {
		if n.Keys[i-1] > n.Keys[i] {
			return fmt.Errorf("btree: gapped node slots not sorted at depth %d: %v", depth, n.Keys)
		}
	}
	prev := -1
	for i := n.FirstSlot(); i < c; i = n.NextSlot(i) {
		if prev >= 0 && n.Keys[prev] >= n.Keys[i] {
			return fmt.Errorf("btree: gapped entries not strictly ascending at depth %d: %v", depth, n.Keys)
		}
		prev = i
	}
	return nil
}

// validateGapFill checks a gapped leaf's duplicate-fill rule: every
// free slot holds a copy of the nearest occupied entry to its right,
// or (SentinelKey, 0) when there is none.
func (n *Node) validateGapFill(depth int) error {
	c := len(n.Keys)
	for s := 0; s < c; s++ {
		if n.Occupied(s) {
			continue
		}
		if j := n.nextOcc(s); j < c {
			if n.Keys[s] != n.Keys[j] || n.Vals[s] != n.Vals[j] {
				return fmt.Errorf("btree: gap slot %d (%d,%d) does not duplicate anchor %d (%d,%d) at depth %d",
					s, n.Keys[s], n.Vals[s], j, n.Keys[j], n.Vals[j], depth)
			}
		} else if n.Keys[s] != SentinelKey || n.Vals[s] != 0 {
			return fmt.Errorf("btree: tail slot %d is (%d,%d), want sentinel at depth %d", s, n.Keys[s], n.Vals[s], depth)
		}
	}
	return nil
}

// Dump returns the key-value pairs in ascending key order; used by the
// differential tests to compare against the oracle.
func (t *Tree) Dump() (ks []keys.Key, vs []keys.Value) {
	t.Scan(func(k keys.Key, v keys.Value) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

// CountNodes returns the number of internal nodes and leaves.
func (t *Tree) CountNodes() (internal, leaf int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			leaf++
			return
		}
		internal++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	return internal, leaf
}
