package btree

import (
	"testing"

	"repro/internal/keys"
)

func TestCollectMetricsEmpty(t *testing.T) {
	m := MustNew(8).CollectMetrics()
	if m.Height != 1 || m.LeafNodes != 1 || m.InternalNodes != 0 || m.Entries != 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	if m.LeafFill != 0 || m.InternalFill != 0 {
		t.Fatalf("empty fills: %+v", m)
	}
}

func TestCollectMetricsPopulated(t *testing.T) {
	tr := MustNew(8)
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	m := tr.CollectMetrics()
	if m.Entries != n {
		t.Fatalf("Entries = %d", m.Entries)
	}
	if m.Height != tr.Height() {
		t.Fatalf("Height = %d vs %d", m.Height, tr.Height())
	}
	in, lf := tr.CountNodes()
	if m.InternalNodes != in || m.LeafNodes != lf {
		t.Fatalf("nodes %d/%d vs %d/%d", m.InternalNodes, m.LeafNodes, in, lf)
	}
	if m.LeafFill <= 0.3 || m.LeafFill > 1 {
		t.Fatalf("LeafFill = %f", m.LeafFill)
	}
	if m.InternalFill <= 0.3 || m.InternalFill > 1 {
		t.Fatalf("InternalFill = %f", m.InternalFill)
	}
	if m.MinLeafEntries < tr.minLeafEntries() {
		t.Fatalf("MinLeafEntries = %d below minimum %d", m.MinLeafEntries, tr.minLeafEntries())
	}
	if m.MaxLeafEntries > tr.maxLeafEntries() {
		t.Fatalf("MaxLeafEntries = %d above maximum", m.MaxLeafEntries)
	}
}

func TestCollectMetricsBulkLoadTargetsFill(t *testing.T) {
	const n = 100000
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i)
		vs[i] = keys.Value(i)
	}
	tr, err := BulkLoad(64, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.CollectMetrics()
	// The bulk loader targets ~7/8 occupancy.
	if m.LeafFill < 0.80 || m.LeafFill > 0.95 {
		t.Fatalf("bulk-loaded LeafFill = %f, want ~0.875", m.LeafFill)
	}
}
