package btree_test

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/keys"
)

// Basic serial tree usage: inserts, point lookups, ordered iteration.
func Example() {
	tr := btree.MustNew(8)
	for _, k := range []keys.Key{30, 10, 20} {
		tr.Insert(k, keys.Value(k)*10)
	}
	if v, ok := tr.Search(20); ok {
		fmt.Println("20 ->", v)
	}
	tr.Delete(10)
	tr.Scan(func(k keys.Key, v keys.Value) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 20 -> 200
	// 20 200
	// 30 300
}

// Seek positions an iterator at the first key >= the probe.
func ExampleTree_Seek() {
	tr := btree.MustNew(8)
	for i := 0; i < 10; i++ {
		tr.Insert(keys.Key(i*10), keys.Value(i))
	}
	for it := tr.Seek(25); it.Valid() && it.Key() < 60; it.Next() {
		fmt.Println(it.Key())
	}
	// Output:
	// 30
	// 40
	// 50
}

// BulkLoad builds a large tree in one bottom-up pass.
func ExampleBulkLoad() {
	ks := make([]keys.Key, 1000)
	vs := make([]keys.Value, 1000)
	for i := range ks {
		ks[i] = keys.Key(i)
		vs[i] = keys.Value(i * 2)
	}
	tr, err := btree.BulkLoad(64, ks, vs)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Len(), tr.Height())
	v, _ := tr.Search(500)
	fmt.Println(v)
	// Output:
	// 1000 2
	// 1000
}

// ScanRange visits a half-open key interval in order.
func ExampleTree_ScanRange() {
	tr := btree.MustNew(8)
	for i := 0; i < 100; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	sum := keys.Value(0)
	tr.ScanRange(10, 15, func(k keys.Key, v keys.Value) bool {
		sum += v
		return true
	})
	fmt.Println(sum)
	// Output: 60
}
