package btree

import (
	"testing"

	"repro/internal/keys"
)

// buildSingleChildSpine hand-assembles the relaxed shape PALM's batched
// deletes can leave behind: root -> [internal{full leaf} | internal
// whose ONLY child is a small leaf]. RelaxedFill permits it; the serial
// delete path crashed on it before relaxed.go.
func buildSingleChildSpine(t *testing.T, layout Layout) *Tree {
	t.Helper()
	order := 4
	mk := func(ks []keys.Key, vs []keys.Value) *Node {
		n := NewLeafLayout(order, layout)
		if layout == LayoutGapped {
			PackLeafGapped(n, ks, vs)
		} else {
			n.Keys = append(n.Keys, ks...)
			n.Vals = append(n.Vals, vs...)
		}
		return n
	}
	l1 := mk([]keys.Key{1, 2, 3}, []keys.Value{10, 20, 30})
	l2 := mk([]keys.Key{50}, []keys.Value{500})
	l1.Next = l2

	left := &Node{Children: []*Node{l1}}
	spine := &Node{Children: []*Node{l2}}
	root := &Node{Children: []*Node{left, spine}}
	if layout == LayoutGapped {
		SetInternalGapped(left, order-1, nil, left.Children)
		SetInternalGapped(spine, order-1, nil, spine.Children)
		SetInternalGapped(root, order-1, []keys.Key{50}, root.Children)
	} else {
		root.Keys = []keys.Key{50}
	}
	tr := &Tree{root: root, order: order, layout: layout, size: 4}
	if err := tr.Validate(RelaxedFill); err != nil {
		t.Fatalf("constructed relaxed shape invalid: %v", err)
	}
	return tr
}

// TestDeleteLonelyLeaf drains the leaf under a single-child spine: the
// delete must unlink the emptied leaf, collapse the emptied spine, and
// leave a fully consistent tree (chain, Max, subsequent inserts).
func TestDeleteLonelyLeaf(t *testing.T) {
	for _, layout := range []Layout{LayoutGapped, LayoutDense} {
		name := "gapped"
		if layout == LayoutDense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			tr := buildSingleChildSpine(t, layout)
			if !tr.Delete(50) {
				t.Fatal("key 50 not found")
			}
			if err := tr.Validate(RelaxedFill); err != nil {
				t.Fatalf("after lonely-leaf delete: %v", err)
			}
			if tr.Len() != 3 {
				t.Fatalf("Len = %d, want 3", tr.Len())
			}
			if k, _, ok := tr.Max(); !ok || k != 3 {
				t.Fatalf("Max = (%d,%v), want (3,true)", k, ok)
			}
			var got []keys.Key
			tr.Scan(func(k keys.Key, v keys.Value) bool {
				got = append(got, k)
				return true
			})
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Fatalf("Scan = %v, want [1 2 3]", got)
			}
			// The collapsed tree keeps working.
			tr.Insert(50, 501)
			if v, ok := tr.Search(50); !ok || v != 501 {
				t.Fatalf("reinsert lost pair: (%v,%v)", v, ok)
			}
		})
	}
}

// TestDeleteUnderfullNoSibling pins the leave-underfull case: when the
// lonely leaf does not empty, it legally stays below minimum fill and
// every query path still works.
func TestDeleteUnderfullNoSibling(t *testing.T) {
	for _, layout := range []Layout{LayoutGapped, LayoutDense} {
		name := "gapped"
		if layout == LayoutDense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			tr := buildSingleChildSpine(t, layout)
			tr.Insert(60, 600) // lonely leaf now {50, 60}
			if !tr.Delete(60) {
				t.Fatal("key 60 not found")
			}
			// The leaf is back to one entry — underfull, sibling-less,
			// and legal; nothing collapsed.
			if err := tr.Validate(RelaxedFill); err != nil {
				t.Fatalf("after underfull delete: %v", err)
			}
			if v, ok := tr.Search(50); !ok || v != 500 {
				t.Fatalf("Search(50) = (%v,%v), want (500,true)", v, ok)
			}
			if k, _, ok := tr.Max(); !ok || k != 50 {
				t.Fatalf("Max = (%d,%v), want (50,true)", k, ok)
			}
		})
	}
}
