package btree

import "repro/internal/keys"

// Iter is a forward iterator over the tree's pairs, positioned by Seek
// or First. The iterator walks the leaf chain directly, so iteration
// is O(1) amortized per step. Mutating the tree invalidates iterators.
type Iter struct {
	leaf *Node
	pos  int
}

// First returns an iterator at the smallest key (invalid if empty).
func (t *Tree) First() Iter {
	n := t.root
	for !n.Leaf() {
		n = n.Children[0]
	}
	it := Iter{leaf: n, pos: 0}
	it.skipEmpty()
	return it
}

// Seek returns an iterator at the smallest key >= k (invalid if none).
func (t *Tree) Seek(k keys.Key) Iter {
	leaf := t.FindLeaf(k, nil)
	it := Iter{leaf: leaf, pos: searchKeys(leaf.Keys, k)}
	it.skipEmpty()
	return it
}

// Min returns the smallest pair.
func (t *Tree) Min() (keys.Key, keys.Value, bool) {
	it := t.First()
	if !it.Valid() {
		return 0, 0, false
	}
	k, v := it.Pair()
	return k, v, true
}

// Max returns the largest pair.
func (t *Tree) Max() (keys.Key, keys.Value, bool) {
	n := t.root
	for !n.Leaf() {
		n = n.Children[len(n.Children)-1]
	}
	// The rightmost leaf may be empty only when the tree is empty
	// (relaxed trees remove empty leaves; the root leaf may be empty).
	i := n.LastSlot()
	if i < 0 {
		return 0, 0, false
	}
	return n.Keys[i], n.Vals[i], true
}

// Successor returns the smallest pair with key strictly greater than k.
func (t *Tree) Successor(k keys.Key) (keys.Key, keys.Value, bool) {
	it := t.Seek(k + 1)
	if !it.Valid() {
		return 0, 0, false
	}
	sk, sv := it.Pair()
	return sk, sv, true
}

// Predecessor returns the largest pair with key strictly less than k.
// It descends once and walks at most one leaf boundary... which the
// singly-linked leaf chain cannot do backwards, so it re-descends for
// the boundary case.
func (t *Tree) Predecessor(k keys.Key) (keys.Key, keys.Value, bool) {
	n := t.root
	// Descend tracking the rightmost subtree entirely below k.
	var candidate *Node
	for !n.Leaf() {
		i := childIndex(n, k)
		if i > 0 {
			candidate = n.Children[i-1]
		}
		n = n.Children[i]
	}
	i := searchKeys(n.Keys, k)
	if i > 0 {
		// Slot i-1 holds a key < k, so in a gapped leaf it cannot be a
		// gap (a gap's anchor to the right would carry the same key, yet
		// every slot from i on is >= k): it is always a real entry.
		return n.Keys[i-1], n.Vals[i-1], true
	}
	if candidate == nil {
		return 0, 0, false
	}
	for !candidate.Leaf() {
		candidate = candidate.Children[len(candidate.Children)-1]
	}
	j := candidate.LastSlot()
	if j < 0 {
		return 0, 0, false
	}
	return candidate.Keys[j], candidate.Vals[j], true
}

// Valid reports whether the iterator is positioned on a pair.
func (it *Iter) Valid() bool { return it.leaf != nil && it.pos < len(it.leaf.Keys) }

// Pair returns the current pair; call only when Valid.
func (it *Iter) Pair() (keys.Key, keys.Value) {
	return it.leaf.Keys[it.pos], it.leaf.Vals[it.pos]
}

// Key returns the current key; call only when Valid.
func (it *Iter) Key() keys.Key { return it.leaf.Keys[it.pos] }

// Value returns the current value; call only when Valid.
func (it *Iter) Value() keys.Value { return it.leaf.Vals[it.pos] }

// Next advances to the following pair, reporting whether the iterator
// is still valid.
func (it *Iter) Next() bool {
	if !it.Valid() {
		return false
	}
	it.pos++
	it.skipEmpty()
	return it.Valid()
}

// skipEmpty normalizes the position to the next occupied slot (gapped
// leaves may put a free slot at the current position), moving past
// exhausted or empty leaves.
func (it *Iter) skipEmpty() {
	for it.leaf != nil {
		if it.leaf.occ == nil {
			if it.pos < len(it.leaf.Keys) {
				return
			}
		} else if p := it.leaf.nextOcc(it.pos); p < len(it.leaf.Keys) {
			it.pos = p
			return
		}
		it.leaf = it.leaf.Next
		it.pos = 0
	}
}
