// Package btree implements the in-memory B+ tree substrate that both the
// PALM batch processor and the serial/lock-based baselines operate on.
//
// Layout follows Section II-A of the paper (Fig. 2): an N-ary index tree
// whose internal nodes hold only separator keys and child pointers, with
// all key-value pairs stored in the leaf level, which is additionally
// chained left-to-right for range scans. The maximum child count of an
// internal node is the tree's order b; internal nodes (except a root)
// hold at least ceil(b/2) children, leaves at least ceil(b/2)-1 entries —
// except in "relaxed" mode used by PALM's batched restructuring, where
// deletions may leave nodes under-full (empty nodes are always removed).
//
// The serial methods on Tree (Insert, Search, Delete) implement the full
// textbook algorithm including borrow/merge rebalancing; they are the
// ground truth against which the batched processors are differentially
// tested.
package btree

import (
	"fmt"

	"repro/internal/keys"
)

// DefaultOrder is the default maximum fanout. The paper's artifact uses
// wide nodes tuned to KNL cache lines; with the default gapped layout a
// node is a fixed 63-slot key array (504 B, ~8 cache lines — about one
// 4-line sector pair per half), small enough that the unconditional
// full-width scan stays L1-resident while leaving real gap slack
// between the ~⌈b/2⌉ minimum fill and capacity.
const DefaultOrder = 64

// MinOrder is the smallest supported order: a 3-order tree as in Fig. 2.
const MinOrder = 3

// Node is one B+ tree node. Exported (with read-only accessors) so the
// PALM processor in a sibling package can stage bottom-up modifications;
// user code should treat nodes as opaque.
type Node struct {
	// Keys holds the node's keys in ascending slot order. For a dense
	// node every slot is a real entry; for a gapped node (Gapped()) the
	// array has fixed width Cap() and free slots duplicate the entry to
	// their right (or hold SentinelKey), so Keys is sorted either way.
	// For a leaf, Keys[i] pairs with Vals[i]. For an internal node,
	// Keys[i] separates Children[i] (< Keys[i]) from Children[i+1]
	// (>= Keys[i]); gapped internal nodes keep their Len() separators as
	// a dense prefix with a sentinel tail.
	Keys []keys.Key
	// Vals holds leaf payloads, one per key slot; nil for internal nodes.
	Vals []keys.Value
	// Children holds child pointers; nil for leaves. Always dense
	// (len == Len()+1) in both layouts.
	Children []*Node
	// Next chains leaves left-to-right; nil for internal nodes and the
	// rightmost leaf.
	Next *Node

	// occ is the gapped layout's presence bitmap over key slots; nil for
	// dense nodes. count is the number of occupied slots. See Gapped.
	occ   []uint64
	count int32
}

// Leaf reports whether n is a leaf node.
func (n *Node) Leaf() bool { return n.Children == nil }

// Len returns the number of entries stored in the node (occupied slots
// for a gapped node; every slot for a dense one).
func (n *Node) Len() int {
	if n.occ != nil {
		return int(n.count)
	}
	return len(n.Keys)
}

// Tree is a B+ tree of a fixed order. The zero value is not usable; use
// New. Tree's serial methods are not safe for concurrent use; the PALM
// processor provides safe batched concurrency on top.
type Tree struct {
	root   *Node
	order  int // max children of an internal node; max leaf entries = order-1
	size   int // number of key-value pairs
	layout Layout
}

// New creates an empty tree of the given order with the default gapped
// layout. Orders below MinOrder are rejected; order <= 0 selects
// DefaultOrder.
func New(order int) (*Tree, error) {
	return NewLayout(order, LayoutGapped)
}

// NewLayout creates an empty tree of the given order and node layout.
func NewLayout(order int, layout Layout) (*Tree, error) {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < MinOrder {
		return nil, fmt.Errorf("btree: order %d below minimum %d", order, MinOrder)
	}
	return &Tree{
		root:   NewLeafLayout(order, layout),
		order:  order,
		layout: layout,
	}, nil
}

// NewLeafLayout returns an empty leaf node for a tree of the given
// order and layout (used by Stage-3 restructuring to reset a drained
// root).
func NewLeafLayout(order int, layout Layout) *Node {
	if layout == LayoutDense {
		return &Node{Keys: make([]keys.Key, 0, order)}
	}
	return NewGappedLeaf(order - 1)
}

// MustNew is New for known-good orders; it panics on error. Intended for
// tests and examples.
func MustNew(order int) *Tree {
	t, err := New(order)
	if err != nil {
		panic(err)
	}
	return t
}

// Order returns the tree's order (maximum internal fanout).
func (t *Tree) Order() int { return t.order }

// Layout returns the tree's node layout.
func (t *Tree) Layout() Layout { return t.layout }

// Len returns the number of key-value pairs stored.
func (t *Tree) Len() int { return t.size }

// Root exposes the root node for the batched processors and validators.
func (t *Tree) Root() *Node { return t.root }

// SetRoot replaces the root node. Intended for the PALM batch processor's
// Stage 3 (root growth/collapse); user code should not call it.
func (t *Tree) SetRoot(n *Node) { t.root = n }

// AddSize adjusts the recorded pair count by d. Intended for batched
// processors that mutate leaves directly.
func (t *Tree) AddSize(d int) { t.size += d }

// maxLeafEntries is the maximum number of key-value pairs a leaf holds.
func (t *Tree) maxLeafEntries() int { return t.order - 1 }

// minLeafEntries is the textbook minimum fill for a non-root leaf.
func (t *Tree) minLeafEntries() int { return (t.order - 1) / 2 }

// minChildren is the textbook minimum fanout for a non-root internal node.
func (t *Tree) minChildren() int { return (t.order + 1) / 2 }

// searchKeys returns the index of the first key in ks >= k.
func searchKeys(ks []keys.Key, k keys.Key) int {
	// Branchless binary search shared with the batch processors; the
	// stand-in for the artifact's AVX-512 intra-node SIMD search (see
	// DESIGN.md §4.1 and §8).
	return SearchGE(ks, k)
}

// childIndex returns which child of internal node n covers key k.
func childIndex(n *Node, k keys.Key) int {
	// Keys[i] separates children i and i+1 with children[i] < Keys[i].
	// A gapped node's sentinel tail can push the probe past the last
	// child when k == SentinelKey; clamping is a no-op for dense nodes.
	i := SearchGT(n.Keys, k)
	if i >= len(n.Children) {
		i = len(n.Children) - 1
	}
	return i
}

// FindLeaf descends from the root to the leaf that covers k, returning
// the leaf and the root-to-leaf path of internal nodes with the child
// indices taken. PALM's Stage 1 records this path so Stage 3 can push
// modifications bottom-up without parent pointers.
func (t *Tree) FindLeaf(k keys.Key, path *Path) *Node {
	n := t.root
	if path != nil {
		path.Reset()
	}
	for !n.Leaf() {
		i := childIndex(n, k)
		if path != nil {
			path.Push(n, i)
		}
		n = n.Children[i]
	}
	return n
}

// Path records the internal nodes visited on a root-to-leaf descent
// together with the child index taken at each. Path values are reusable
// to avoid per-query allocation.
type Path struct {
	Nodes []*Node
	Slots []int
}

// Reset empties the path for reuse.
func (p *Path) Reset() {
	p.Nodes = p.Nodes[:0]
	p.Slots = p.Slots[:0]
}

// Push appends one descent step.
func (p *Path) Push(n *Node, slot int) {
	p.Nodes = append(p.Nodes, n)
	p.Slots = append(p.Slots, slot)
}

// Len returns the number of internal levels recorded.
func (p *Path) Len() int { return len(p.Nodes) }

// Clone returns an independent copy of the path.
func (p *Path) Clone() Path {
	return Path{
		Nodes: append([]*Node(nil), p.Nodes...),
		Slots: append([]int(nil), p.Slots...),
	}
}

// Search returns the value stored for k.
func (t *Tree) Search(k keys.Key) (keys.Value, bool) {
	return LeafFind(t.FindLeaf(k, nil), k)
}

// Insert stores v under k, replacing any existing value (the I(key, v)
// semantics of §II-A). It reports whether a new entry was created.
func (t *Tree) Insert(k keys.Key, v keys.Value) bool {
	if t.layout == LayoutGapped {
		return t.insertGapped(k, v)
	}
	var path Path
	leaf := t.FindLeaf(k, &path)
	i := searchKeys(leaf.Keys, k)
	if i < len(leaf.Keys) && leaf.Keys[i] == k {
		leaf.Vals[i] = v
		return false
	}
	leaf.Keys = append(leaf.Keys, 0)
	leaf.Vals = append(leaf.Vals, 0)
	copy(leaf.Keys[i+1:], leaf.Keys[i:])
	copy(leaf.Vals[i+1:], leaf.Vals[i:])
	leaf.Keys[i] = k
	leaf.Vals[i] = v
	t.size++
	if len(leaf.Keys) > t.maxLeafEntries() {
		t.splitLeaf(leaf, &path)
	}
	return true
}

// splitLeaf splits an overfull leaf in half and inserts the separator
// into the parent, cascading splits upward as needed.
func (t *Tree) splitLeaf(leaf *Node, path *Path) {
	mid := len(leaf.Keys) / 2
	right := &Node{
		Keys: append(make([]keys.Key, 0, t.order), leaf.Keys[mid:]...),
		Vals: append(make([]keys.Value, 0, t.order), leaf.Vals[mid:]...),
		Next: leaf.Next,
	}
	leaf.Keys = leaf.Keys[:mid]
	leaf.Vals = leaf.Vals[:mid]
	leaf.Next = right
	t.insertIntoParent(path, path.Len()-1, right.Keys[0], right)
}

// insertIntoParent inserts separator sep and new right child into the
// parent at path level lvl, splitting ancestors as needed. lvl == -1
// means the split node was the root.
func (t *Tree) insertIntoParent(path *Path, lvl int, sep keys.Key, right *Node) {
	if lvl < 0 {
		// Grow a new root.
		old := t.root
		t.root = &Node{
			Keys:     append(make([]keys.Key, 0, t.order), sep),
			Children: append(make([]*Node, 0, t.order+1), old, right),
		}
		return
	}
	parent := path.Nodes[lvl]
	slot := path.Slots[lvl]
	// Insert sep at slot, right at slot+1.
	parent.Keys = append(parent.Keys, 0)
	copy(parent.Keys[slot+1:], parent.Keys[slot:])
	parent.Keys[slot] = sep
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[slot+2:], parent.Children[slot+1:])
	parent.Children[slot+1] = right
	if len(parent.Children) > t.order {
		t.splitInternal(parent, path, lvl)
	}
}

// splitInternal splits an overfull internal node, pushing the middle key
// to the parent.
func (t *Tree) splitInternal(n *Node, path *Path, lvl int) {
	midKey := len(n.Keys) / 2
	sep := n.Keys[midKey]
	right := &Node{
		Keys:     append(make([]keys.Key, 0, t.order), n.Keys[midKey+1:]...),
		Children: append(make([]*Node, 0, t.order+1), n.Children[midKey+1:]...),
	}
	n.Keys = n.Keys[:midKey]
	n.Children = n.Children[:midKey+1]
	t.insertIntoParent(path, lvl-1, sep, right)
}

// Delete removes k if present (the D(key) semantics), reporting whether
// an entry was removed. Full textbook rebalancing: under-full leaves
// borrow from or merge with a sibling under the same parent, cascading
// upward.
func (t *Tree) Delete(k keys.Key) bool {
	if t.layout == LayoutGapped {
		return t.deleteGapped(k)
	}
	var path Path
	leaf := t.FindLeaf(k, &path)
	i := searchKeys(leaf.Keys, k)
	if i >= len(leaf.Keys) || leaf.Keys[i] != k {
		return false
	}
	leaf.Keys = append(leaf.Keys[:i], leaf.Keys[i+1:]...)
	leaf.Vals = append(leaf.Vals[:i], leaf.Vals[i+1:]...)
	t.size--
	t.rebalanceLeaf(leaf, &path)
	return true
}

// rebalanceLeaf restores the minimum-fill invariant after a leaf deletion.
func (t *Tree) rebalanceLeaf(leaf *Node, path *Path) {
	if path.Len() == 0 {
		return // leaf is root; any fill is legal
	}
	if len(leaf.Keys) >= t.minLeafEntries() {
		return
	}
	parent := path.Nodes[path.Len()-1]
	slot := path.Slots[path.Len()-1]

	// Try borrowing from the left sibling.
	if slot > 0 {
		left := parent.Children[slot-1]
		if len(left.Keys) > t.minLeafEntries() {
			n := len(left.Keys)
			leaf.Keys = append(leaf.Keys, 0)
			leaf.Vals = append(leaf.Vals, 0)
			copy(leaf.Keys[1:], leaf.Keys)
			copy(leaf.Vals[1:], leaf.Vals)
			leaf.Keys[0] = left.Keys[n-1]
			leaf.Vals[0] = left.Vals[n-1]
			left.Keys = left.Keys[:n-1]
			left.Vals = left.Vals[:n-1]
			parent.Keys[slot-1] = leaf.Keys[0]
			return
		}
	}
	// Try borrowing from the right sibling.
	if slot < len(parent.Children)-1 {
		right := parent.Children[slot+1]
		if len(right.Keys) > t.minLeafEntries() {
			leaf.Keys = append(leaf.Keys, right.Keys[0])
			leaf.Vals = append(leaf.Vals, right.Vals[0])
			right.Keys = append(right.Keys[:0], right.Keys[1:]...)
			right.Vals = append(right.Vals[:0], right.Vals[1:]...)
			parent.Keys[slot] = right.Keys[0]
			return
		}
	}
	// Merge with a sibling.
	if slot > 0 {
		left := parent.Children[slot-1]
		left.Keys = append(left.Keys, leaf.Keys...)
		left.Vals = append(left.Vals, leaf.Vals...)
		left.Next = leaf.Next
		t.removeChild(parent, slot, path)
	} else if slot+1 < len(parent.Children) {
		right := parent.Children[slot+1]
		leaf.Keys = append(leaf.Keys, right.Keys...)
		leaf.Vals = append(leaf.Vals, right.Vals...)
		leaf.Next = right.Next
		t.removeChild(parent, slot+1, path)
	} else {
		// No sibling at all: a relaxed single-child parent
		// (relaxed.go).
		t.dropLonelyLeaf(leaf, path)
	}
}

// removeChild deletes parent.Children[slot] and the separator to its
// left, then rebalances the parent. path holds the descent ending at the
// parent's level (the parent is path.Nodes[path.Len()-1]).
func (t *Tree) removeChild(parent *Node, slot int, path *Path) {
	parent.Keys = append(parent.Keys[:slot-1], parent.Keys[slot:]...)
	parent.Children = append(parent.Children[:slot], parent.Children[slot+1:]...)
	t.rebalanceInternal(parent, path, path.Len()-1)
}

// rebalanceInternal restores the minimum-fanout invariant for an
// internal node at path level lvl.
func (t *Tree) rebalanceInternal(n *Node, path *Path, lvl int) {
	if lvl == 0 {
		// n is the root.
		if len(n.Children) == 1 {
			t.root = n.Children[0]
		}
		return
	}
	if len(n.Children) >= t.minChildren() {
		return
	}
	parent := path.Nodes[lvl-1]
	slot := path.Slots[lvl-1]

	if slot > 0 {
		left := parent.Children[slot-1]
		if len(left.Children) > t.minChildren() {
			// Rotate rightwards through the parent separator.
			n.Keys = append(n.Keys, 0)
			copy(n.Keys[1:], n.Keys)
			n.Keys[0] = parent.Keys[slot-1]
			n.Children = append(n.Children, nil)
			copy(n.Children[1:], n.Children)
			n.Children[0] = left.Children[len(left.Children)-1]
			parent.Keys[slot-1] = left.Keys[len(left.Keys)-1]
			left.Keys = left.Keys[:len(left.Keys)-1]
			left.Children = left.Children[:len(left.Children)-1]
			return
		}
	}
	if slot < len(parent.Children)-1 {
		right := parent.Children[slot+1]
		if len(right.Children) > t.minChildren() {
			// Rotate leftwards through the parent separator.
			n.Keys = append(n.Keys, parent.Keys[slot])
			n.Children = append(n.Children, right.Children[0])
			parent.Keys[slot] = right.Keys[0]
			right.Keys = append(right.Keys[:0], right.Keys[1:]...)
			right.Children = append(right.Children[:0], right.Children[1:]...)
			return
		}
	}
	if slot > 0 {
		left := parent.Children[slot-1]
		left.Keys = append(left.Keys, parent.Keys[slot-1])
		left.Keys = append(left.Keys, n.Keys...)
		left.Children = append(left.Children, n.Children...)
		t.removeChildAt(parent, slot, path, lvl-1)
	} else if slot+1 < len(parent.Children) {
		right := parent.Children[slot+1]
		n.Keys = append(n.Keys, parent.Keys[slot])
		n.Keys = append(n.Keys, right.Keys...)
		n.Children = append(n.Children, right.Children...)
		t.removeChildAt(parent, slot+1, path, lvl-1)
	}
	// else: no sibling under a relaxed single-child parent — the node
	// stays underfull, which RelaxedFill permits (relaxed.go).
}

// removeChildAt is removeChild for a known path level.
func (t *Tree) removeChildAt(parent *Node, slot int, path *Path, lvl int) {
	parent.Keys = append(parent.Keys[:slot-1], parent.Keys[slot:]...)
	parent.Children = append(parent.Children[:slot], parent.Children[slot+1:]...)
	t.rebalanceInternal(parent, path, lvl)
}

// Scan visits every key-value pair in ascending key order until fn
// returns false, using the leaf chain.
func (t *Tree) Scan(fn func(k keys.Key, v keys.Value) bool) {
	n := t.root
	for !n.Leaf() {
		n = n.Children[0]
	}
	for ; n != nil; n = n.Next {
		for i := n.FirstSlot(); i < len(n.Keys); i = n.NextSlot(i) {
			if !fn(n.Keys[i], n.Vals[i]) {
				return
			}
		}
	}
}

// ScanRange visits pairs with lo <= key < hi in ascending order.
func (t *Tree) ScanRange(lo, hi keys.Key, fn func(k keys.Key, v keys.Value) bool) {
	leaf := t.FindLeaf(lo, nil)
	for ; leaf != nil; leaf = leaf.Next {
		for i := leaf.FirstSlot(); i < len(leaf.Keys); i = leaf.NextSlot(i) {
			k := leaf.Keys[i]
			if k < lo {
				continue
			}
			if k >= hi {
				return
			}
			if !fn(k, leaf.Vals[i]) {
				return
			}
		}
	}
}

// Height returns the number of levels (1 for a lone root leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.Leaf(); n = n.Children[0] {
		h++
	}
	return h
}

// Apply evaluates a single query against the tree with the exact
// semantics of §II-A, recording search results into rs when non-nil.
// It is the serial reference evaluator used by baselines and tests.
func (t *Tree) Apply(q keys.Query, rs *keys.ResultSet) {
	switch q.Op {
	case keys.OpSearch:
		v, ok := t.Search(q.Key)
		if rs != nil {
			rs.Set(q.Idx, v, ok)
		}
	case keys.OpInsert:
		t.Insert(q.Key, q.Value)
	case keys.OpDelete:
		t.Delete(q.Key)
	}
}

// ApplyAll evaluates a query sequence serially, in order.
func (t *Tree) ApplyAll(qs []keys.Query, rs *keys.ResultSet) {
	for _, q := range qs {
		t.Apply(q, rs)
	}
}
