package btree

import (
	"sort"

	"repro/internal/keys"
)

// This file holds the shared intra-node search kernels (DESIGN.md §8).
// Every hot-path probe in the repository — the serial tree's descent,
// PALM's Stage-1 leaf location, Stage-2 leaf evaluation, and the QTrans
// find-and-answer fast path — routes through these two primitives, so a
// kernel improvement lands everywhere at once.
//
// SearchGE/SearchGT use a branch-free binary search: the probe load is
// unconditional and the narrowing step reduces to a conditional
// register select (CMOV-class codegen), with a fixed iteration count
// per node width. Against the closure-based sort.Search form this
// removes the per-probe function-call indirection and the data-
// dependent control flow that random probe keys inflict on a predicted
// binary search; how much that buys varies by microarchitecture (see
// BenchmarkSearchKernels), which is exactly what the NoBranchlessSearch
// ablation measures. It is the software stand-in for the paper
// artifact's AVX-512 intra-node SIMD search (DESIGN.md §4.1); BS-tree
// (arXiv:2505.01180) measures the same branchless layout effect on CPU
// B+ trees.
//
// The *Closure variants preserve the pre-kernel sort.Search form as the
// ablation baseline (palm.Config.NoBranchlessSearch) so the win stays
// benchmarkable.

// gappedWidth is the fixed key-array width of a gapped node at the
// default order (DefaultOrder - 1). Gapped nodes at that order — every
// node of every default-order gapped tree — hit the unrolled
// fixed-width kernels below, the BS-tree payoff of the sentinel-padded
// layout: the iteration count is a compile-time constant, the array
// conversion erases every per-load bounds check, and each narrowing
// step is an unconditional load plus a register select. Other widths
// (non-default orders, dense nodes) fall back to the generic loop.
const gappedWidth = DefaultOrder - 1

// SearchGE returns the index of the first key in ks >= k, or len(ks)
// when every key is smaller — the leaf-probe kernel.
func SearchGE(ks []keys.Key, k keys.Key) int {
	if len(ks) == gappedWidth {
		return searchGE63((*[gappedWidth]keys.Key)(ks), k)
	}
	// Invariant: the answer lies in [lo, lo+n]. The probe load is
	// unconditional and the narrowing step is a pure register select,
	// which the compiler lowers to CMOV — no data-dependent branch.
	lo, n := 0, len(ks)
	for n > 1 {
		half := n >> 1
		mid := lo + half
		v := ks[mid-1]
		n -= half
		if v < k {
			lo = mid
		}
	}
	if n == 1 && ks[lo] < k {
		lo++
	}
	return lo
}

// searchGE63 is SearchGE unrolled for the fixed gapped width: six
// branch-free narrowing steps (n: 63→32→16→8→4→2→1) plus the final
// element test, with all offsets known to be in bounds.
func searchGE63(ks *[gappedWidth]keys.Key, k keys.Key) int {
	lo := 0
	if ks[lo+30] < k { // half=31
		lo += 31
	}
	if ks[lo+15] < k { // half=16
		lo += 16
	}
	if ks[lo+7] < k { // half=8
		lo += 8
	}
	if ks[lo+3] < k { // half=4
		lo += 4
	}
	if ks[lo+1] < k { // half=2
		lo += 2
	}
	if ks[lo] < k { // half=1, then the n==1 tail merged in
		lo++
		if lo < gappedWidth && ks[lo] < k {
			lo++
		}
	}
	return lo
}

// SearchGT returns the index of the first key in ks > k, or len(ks)
// when every key is <= k — the inner-node child-step kernel: for an
// internal node, SearchGT(n.Keys, k) is the child slot covering k.
func SearchGT(ks []keys.Key, k keys.Key) int {
	if len(ks) == gappedWidth {
		return searchGT63((*[gappedWidth]keys.Key)(ks), k)
	}
	lo, n := 0, len(ks)
	for n > 1 {
		half := n >> 1
		mid := lo + half
		v := ks[mid-1]
		n -= half
		if v <= k {
			lo = mid
		}
	}
	if n == 1 && ks[lo] <= k {
		lo++
	}
	return lo
}

// searchGT63 is SearchGT unrolled for the fixed gapped width.
func searchGT63(ks *[gappedWidth]keys.Key, k keys.Key) int {
	lo := 0
	if ks[lo+30] <= k {
		lo += 31
	}
	if ks[lo+15] <= k {
		lo += 16
	}
	if ks[lo+7] <= k {
		lo += 8
	}
	if ks[lo+3] <= k {
		lo += 4
	}
	if ks[lo+1] <= k {
		lo += 2
	}
	if ks[lo] <= k {
		lo++
		if lo < gappedWidth && ks[lo] <= k {
			lo++
		}
	}
	return lo
}

// LeafFind looks key k up within a single leaf node. A gapped leaf's
// free slots duplicate the entry to their right, so a hit on a gap
// reads the correct pair; only a probe for SentinelKey itself needs
// the bitmap to tell a real maximal entry from the sentinel tail.
func LeafFind(leaf *Node, k keys.Key) (keys.Value, bool) {
	i := SearchGE(leaf.Keys, k)
	if i < len(leaf.Keys) && leaf.Keys[i] == k {
		if leaf.occ != nil && !leaf.leafHasAt(i) {
			return 0, false
		}
		return leaf.Vals[i], true
	}
	return 0, false
}

// SearchGEClosure is the closure-based sort.Search form of SearchGE,
// kept as the ablation baseline.
func SearchGEClosure(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

// SearchGTClosure is the closure-based sort.Search form of SearchGT.
func SearchGTClosure(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return k < ks[i] })
}

// LeafFindClosure is LeafFind over SearchGEClosure (ablation baseline).
func LeafFindClosure(leaf *Node, k keys.Key) (keys.Value, bool) {
	i := SearchGEClosure(leaf.Keys, k)
	if i < len(leaf.Keys) && leaf.Keys[i] == k {
		if leaf.occ != nil && !leaf.leafHasAt(i) {
			return 0, false
		}
		return leaf.Vals[i], true
	}
	return 0, false
}
