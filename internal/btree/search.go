package btree

import (
	"sort"

	"repro/internal/keys"
)

// This file holds the shared intra-node search kernels (DESIGN.md §8).
// Every hot-path probe in the repository — the serial tree's descent,
// PALM's Stage-1 leaf location, Stage-2 leaf evaluation, and the QTrans
// find-and-answer fast path — routes through these two primitives, so a
// kernel improvement lands everywhere at once.
//
// SearchGE/SearchGT use a branch-free binary search: the probe load is
// unconditional and the narrowing step reduces to a conditional
// register select (CMOV-class codegen), with a fixed iteration count
// per node width. Against the closure-based sort.Search form this
// removes the per-probe function-call indirection and the data-
// dependent control flow that random probe keys inflict on a predicted
// binary search; how much that buys varies by microarchitecture (see
// BenchmarkSearchKernels), which is exactly what the NoBranchlessSearch
// ablation measures. It is the software stand-in for the paper
// artifact's AVX-512 intra-node SIMD search (DESIGN.md §4.1); BS-tree
// (arXiv:2505.01180) measures the same branchless layout effect on CPU
// B+ trees.
//
// The *Closure variants preserve the pre-kernel sort.Search form as the
// ablation baseline (palm.Config.NoBranchlessSearch) so the win stays
// benchmarkable.

// SearchGE returns the index of the first key in ks >= k, or len(ks)
// when every key is smaller — the leaf-probe kernel.
func SearchGE(ks []keys.Key, k keys.Key) int {
	// Invariant: the answer lies in [lo, lo+n]. The probe load is
	// unconditional and the narrowing step is a pure register select,
	// which the compiler lowers to CMOV — no data-dependent branch.
	lo, n := 0, len(ks)
	for n > 1 {
		half := n >> 1
		mid := lo + half
		v := ks[mid-1]
		n -= half
		if v < k {
			lo = mid
		}
	}
	if n == 1 && ks[lo] < k {
		lo++
	}
	return lo
}

// SearchGT returns the index of the first key in ks > k, or len(ks)
// when every key is <= k — the inner-node child-step kernel: for an
// internal node, SearchGT(n.Keys, k) is the child slot covering k.
func SearchGT(ks []keys.Key, k keys.Key) int {
	lo, n := 0, len(ks)
	for n > 1 {
		half := n >> 1
		mid := lo + half
		v := ks[mid-1]
		n -= half
		if v <= k {
			lo = mid
		}
	}
	if n == 1 && ks[lo] <= k {
		lo++
	}
	return lo
}

// LeafFind looks key k up within a single leaf node.
func LeafFind(leaf *Node, k keys.Key) (keys.Value, bool) {
	i := SearchGE(leaf.Keys, k)
	if i < len(leaf.Keys) && leaf.Keys[i] == k {
		return leaf.Vals[i], true
	}
	return 0, false
}

// SearchGEClosure is the closure-based sort.Search form of SearchGE,
// kept as the ablation baseline.
func SearchGEClosure(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

// SearchGTClosure is the closure-based sort.Search form of SearchGT.
func SearchGTClosure(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return k < ks[i] })
}

// LeafFindClosure is LeafFind over SearchGEClosure (ablation baseline).
func LeafFindClosure(leaf *Node, k keys.Key) (keys.Value, bool) {
	i := SearchGEClosure(leaf.Keys, k)
	if i < len(leaf.Keys) && leaf.Keys[i] == k {
		return leaf.Vals[i], true
	}
	return 0, false
}
