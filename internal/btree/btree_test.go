package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
	"repro/internal/oracle"
)

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("order 2 must be rejected")
	}
	if _, err := New(1); err == nil {
		t.Error("order 1 must be rejected")
	}
	tr, err := New(0)
	if err != nil || tr.Order() != DefaultOrder {
		t.Errorf("New(0) = order %d, err %v; want default order", tr.Order(), err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1) must panic")
		}
	}()
	MustNew(1)
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(4)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Search(5); ok {
		t.Error("search on empty tree found a key")
	}
	if tr.Delete(5) {
		t.Error("delete on empty tree reported success")
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d, want 1", tr.Height())
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertSearchBasic(t *testing.T) {
	tr := MustNew(4)
	if !tr.Insert(10, 100) {
		t.Error("first insert must create")
	}
	if tr.Insert(10, 200) {
		t.Error("second insert must update, not create")
	}
	v, ok := tr.Search(10)
	if !ok || v != 200 {
		t.Errorf("Search(10) = %d,%v; want 200,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertAscendingSplits(t *testing.T) {
	tr := MustNew(4)
	const n = 200
	for i := 0; i < n; i++ {
		tr.Insert(keys.Key(i), keys.Value(i*2))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("Height = %d, want >= 3 after %d inserts at order 4", h, n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Search(keys.Key(i))
		if !ok || v != keys.Value(i*2) {
			t.Fatalf("Search(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestInsertDescending(t *testing.T) {
	tr := MustNew(3)
	for i := 100; i > 0; i-- {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	prev := keys.Key(0)
	count := 0
	tr.Scan(func(k keys.Key, v keys.Value) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan not ascending: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("scan visited %d, want 100", count)
	}
}

func TestDeleteWithRebalance(t *testing.T) {
	tr := MustNew(4)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	// Delete every other key, then the rest, validating throughout.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(keys.Key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatalf("after phase 1: %v", err)
	}
	for i := 1; i < n; i += 2 {
		if !tr.Delete(keys.Key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if i%50 == 1 {
			if err := tr.Validate(StrictFill); err != nil {
				t.Fatalf("after Delete(%d): %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatalf("after all deletes: %v", err)
	}
}

func TestDeleteMissingKey(t *testing.T) {
	tr := MustNew(4)
	tr.Insert(1, 1)
	if tr.Delete(2) {
		t.Error("deleting a missing key must report false")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestScanRange(t *testing.T) {
	tr := MustNew(5)
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	var got []keys.Key
	tr.ScanRange(11, 21, func(k keys.Key, v keys.Value) bool {
		got = append(got, k)
		return true
	})
	want := []keys.Key{12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanRangeEarlyStop(t *testing.T) {
	tr := MustNew(5)
	for i := 0; i < 50; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	n := 0
	tr.ScanRange(0, 50, func(k keys.Key, v keys.Value) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := MustNew(5)
	for i := 0; i < 50; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	n := 0
	tr.Scan(func(k keys.Key, v keys.Value) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("visited %d, want 1", n)
	}
}

func TestFindLeafRecordsPath(t *testing.T) {
	tr := MustNew(3)
	for i := 0; i < 100; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	var p Path
	leaf := tr.FindLeaf(57, &p)
	if !leaf.Leaf() {
		t.Fatal("FindLeaf returned non-leaf")
	}
	if p.Len() != tr.Height()-1 {
		t.Fatalf("path length %d, want %d", p.Len(), tr.Height()-1)
	}
	// Walking the recorded path must land on the same leaf.
	n := tr.Root()
	for i := 0; i < p.Len(); i++ {
		if p.Nodes[i] != n {
			t.Fatalf("path node %d mismatch", i)
		}
		n = n.Children[p.Slots[i]]
	}
	if n != leaf {
		t.Fatal("path does not lead to returned leaf")
	}
	// Clone must be independent.
	c := p.Clone()
	p.Reset()
	if c.Len() == 0 {
		t.Fatal("clone was reset along with original")
	}
}

func TestApplySemantics(t *testing.T) {
	tr := MustNew(8)
	qs := keys.Number([]keys.Query{
		keys.Insert(1, 10),
		keys.Search(1),
		keys.Delete(1),
		keys.Search(1),
		keys.Search(99),
	})
	rs := keys.NewResultSet(len(qs))
	tr.ApplyAll(qs, rs)
	if r, _ := rs.Get(1); !r.Found || r.Value != 10 {
		t.Errorf("search after insert = %+v", r)
	}
	if r, _ := rs.Get(3); r.Found {
		t.Errorf("search after delete = %+v, want not found", r)
	}
	if r, _ := rs.Get(4); r.Found {
		t.Errorf("search of never-inserted key = %+v", r)
	}
}

// Differential test: random operations against the oracle, with
// validation at checkpoints, across several orders.
func TestRandomOpsAgainstOracle(t *testing.T) {
	for _, order := range []int{3, 4, 7, 16, 64} {
		order := order
		t.Run(fmtOrder(order), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(order)))
			tr := MustNew(order)
			o := oracle.New()
			const ops = 20000
			const keyspace = 2000
			for i := 0; i < ops; i++ {
				k := keys.Key(r.Intn(keyspace))
				switch r.Intn(4) {
				case 0, 1:
					v := keys.Value(r.Uint64())
					tr.Insert(k, v)
					o.Apply(keys.Insert(k, v), nil)
				case 2:
					tr.Delete(k)
					o.Apply(keys.Delete(k), nil)
				case 3:
					gv, gok := tr.Search(k)
					wv, wok := o.Get(k)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("op %d: Search(%d) = %d,%v; oracle %d,%v", i, k, gv, gok, wv, wok)
					}
				}
				if i%2500 == 0 {
					if err := tr.Validate(StrictFill); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			if err := tr.Validate(StrictFill); err != nil {
				t.Fatal(err)
			}
			gk, gv := tr.Dump()
			wk, wv := o.Dump()
			if len(gk) != len(wk) {
				t.Fatalf("dump sizes %d vs %d", len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || gv[i] != wv[i] {
					t.Fatalf("dump mismatch at %d: (%d,%d) vs (%d,%d)", i, gk[i], gv[i], wk[i], wv[i])
				}
			}
			if tr.Len() != o.Len() {
				t.Fatalf("Len %d vs oracle %d", tr.Len(), o.Len())
			}
		})
	}
}

func fmtOrder(o int) string {
	return "order" + string(rune('0'+o/10)) + string(rune('0'+o%10))
}

// Property: inserting any set of keys then deleting them all leaves an
// empty, valid tree.
func TestInsertDeleteAllProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := MustNew(5)
		seen := make(map[keys.Key]bool)
		for _, rk := range raw {
			k := keys.Key(rk)
			tr.Insert(k, keys.Value(rk)+1)
			seen[k] = true
		}
		if tr.Len() != len(seen) {
			return false
		}
		if err := tr.Validate(StrictFill); err != nil {
			return false
		}
		for k := range seen {
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == 0 && tr.Validate(StrictFill) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountNodes(t *testing.T) {
	tr := MustNew(4)
	in, lf := tr.CountNodes()
	if in != 0 || lf != 1 {
		t.Fatalf("empty tree: internal=%d leaves=%d", in, lf)
	}
	for i := 0; i < 100; i++ {
		tr.Insert(keys.Key(i), 0)
	}
	in, lf = tr.CountNodes()
	if in == 0 || lf < 100/(4-1) {
		t.Fatalf("populated tree: internal=%d leaves=%d", in, lf)
	}
}

func BenchmarkSerialInsert(b *testing.B) {
	tr := MustNew(DefaultOrder)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys.Key(r.Uint64()), keys.Value(i))
	}
}

func BenchmarkSerialSearch(b *testing.B) {
	tr := MustNew(DefaultOrder)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(keys.Key(r.Intn(n)))
	}
}
