package btree

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/oracle"
)

// FuzzTreeOps drives the serial tree with an op stream decoded from
// fuzz bytes and cross-checks every observable against the oracle plus
// full structural validation. Run with `go test -fuzz=FuzzTreeOps`;
// the seeds below execute in every normal test run.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x42, 0x81, 0x01, 0x02}, uint8(4))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}, uint8(3))
	f.Add([]byte("insert-delete-search-churn-seed"), uint8(7))

	f.Fuzz(func(t *testing.T, ops []byte, orderRaw uint8) {
		order := 3 + int(orderRaw)%30
		// Both node layouts run the same op stream in lockstep: the
		// gapped (default) and dense trees must agree with the oracle
		// and with each other on every observable.
		tr := MustNew(order)
		dense, err := NewLayout(order, LayoutDense)
		if err != nil {
			t.Fatal(err)
		}
		o := oracle.New()
		for i := 0; i+1 < len(ops); i += 2 {
			op, kb := ops[i], ops[i+1]
			k := keys.Key(kb % 64) // small key space to force collisions
			switch op % 4 {
			case 0, 1:
				v := keys.Value(op) << 8
				tr.Insert(k, v)
				dense.Insert(k, v)
				o.Apply(keys.Insert(k, v), nil)
			case 2:
				want := func() bool { _, ok := o.Get(k); o.Apply(keys.Delete(k), nil); return ok }()
				if tr.Delete(k) != want {
					t.Fatalf("gapped Delete(%d) disagreed with oracle", k)
				}
				if dense.Delete(k) != want {
					t.Fatalf("dense Delete(%d) disagreed with oracle", k)
				}
			default:
				wv, wok := o.Get(k)
				for _, arm := range []*Tree{tr, dense} {
					gv, gok := arm.Search(k)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("%v Search(%d) = %d,%v; oracle %d,%v",
							arm.Layout(), k, gv, gok, wv, wok)
					}
				}
			}
		}
		for _, arm := range []*Tree{tr, dense} {
			if err := arm.Validate(StrictFill); err != nil {
				t.Fatalf("%v: %v", arm.Layout(), err)
			}
			if arm.Len() != o.Len() {
				t.Fatalf("%v Len %d, oracle %d", arm.Layout(), arm.Len(), o.Len())
			}
			gk, gv := arm.Dump()
			wk, wv := o.Dump()
			for i := range gk {
				if gk[i] != wk[i] || gv[i] != wv[i] {
					t.Fatalf("%v dump mismatch at %d", arm.Layout(), i)
				}
			}
		}
	})
}
