package btree

import (
	"math/rand"
	"testing"

	"repro/internal/keys"
)

const sentK = ^keys.Key(0)

func TestReviewSentinelSerial(t *testing.T) {
	for _, order := range []int{3, 4, 5, 8, 64} {
		tr := MustNew(order)
		oracle := map[keys.Key]keys.Value{}
		rng := rand.New(rand.NewSource(1))
		ins := func(k keys.Key, v keys.Value) { tr.Insert(k, v); oracle[k] = v }
		del := func(k keys.Key) { tr.Delete(k); delete(oracle, k) }
		check := func() {
			if err := tr.Validate(StrictFill); err != nil {
				t.Fatalf("order %d: %v", order, err)
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("order %d: size %d want %d", order, tr.Len(), len(oracle))
			}
			for k, v := range oracle {
				got, ok := tr.Search(k)
				if !ok || got != v {
					t.Fatalf("order %d: search %d = %d,%v want %d", order, k, got, ok, v)
				}
			}
		}
		for i := 0; i < 3000; i++ {
			switch rng.Intn(5) {
			case 0:
				ins(sentK, keys.Value(i))
			case 1:
				ins(sentK-keys.Key(rng.Intn(50)), keys.Value(i))
			case 2:
				del(sentK)
			case 3:
				del(sentK - keys.Key(rng.Intn(50)))
			default:
				ins(keys.Key(rng.Intn(2000)), keys.Value(i))
			}
			if i%97 == 0 {
				check()
			}
		}
		check()
		del(sentK)
		if _, ok := tr.Search(sentK); ok {
			t.Fatalf("order %d: found deleted sentinel", order)
		}
		ks, _ := tr.Dump()
		for _, k := range ks {
			del(k)
		}
		check()
	}
}

func TestReviewSentinelMaxPred(t *testing.T) {
	tr := MustNew(64)
	for i := 0; i < 5000; i++ {
		tr.Insert(keys.Key(i*3), keys.Value(i))
	}
	tr.Insert(sentK, 42)
	if k, v, ok := tr.Max(); !ok || k != sentK || v != 42 {
		t.Fatalf("max = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := tr.Predecessor(sentK); !ok || k != keys.Key(4999*3) {
		t.Fatalf("pred = %d,%v", k, ok)
	}
	if k, _, ok := tr.Successor(sentK - 1); !ok || k != sentK {
		t.Fatalf("succ = %d,%v", k, ok)
	}
	n := 0
	tr.Scan(func(k keys.Key, v keys.Value) bool { n++; return true })
	if n != 5001 {
		t.Fatalf("scan %d", n)
	}
	it := tr.Seek(sentK)
	if !it.Valid() || it.Key() != sentK {
		t.Fatalf("seek sentinel invalid")
	}
}
