package btree

import (
	"math/rand"
	"testing"

	"repro/internal/keys"
)

// TestGappedPropertyRandomOps is the gapped-layout property test: at
// the smallest and the default order, a long randomized insert/delete
// stream (with overwrites and misses) must keep every structural and
// slot invariant — Validate runs throughout, not just at the end — and
// the visible contents must match a map oracle exactly. The key space
// is sized to force plenty of leaf splits, gap exhaustion, and node
// merges at both orders.
func TestGappedPropertyRandomOps(t *testing.T) {
	for _, order := range []int{MinOrder, 8, DefaultOrder} {
		r := rand.New(rand.NewSource(int64(order)))
		tr, err := NewLayout(order, LayoutGapped)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Layout() != LayoutGapped {
			t.Fatalf("order %d: layout %v", order, tr.Layout())
		}
		oracle := map[keys.Key]keys.Value{}
		span := keys.Key(40 * order)
		ops := 6000
		if testing.Short() {
			ops = 1500
		}
		for i := 0; i < ops; i++ {
			k := keys.Key(r.Uint64()) % span
			if r.Intn(3) != 0 {
				v := keys.Value(i)
				tr.Insert(k, v)
				oracle[k] = v
			} else {
				got := tr.Delete(k)
				_, want := oracle[k]
				if got != want {
					t.Fatalf("order %d op %d: Delete(%d) = %v, want %v", order, i, k, got, want)
				}
				delete(oracle, k)
			}
			if i%500 == 0 {
				if err := tr.Validate(StrictFill); err != nil {
					t.Fatalf("order %d op %d: %v", order, i, err)
				}
			}
		}
		if err := tr.Validate(StrictFill); err != nil {
			t.Fatalf("order %d final: %v", order, err)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("order %d: Len %d, oracle %d", order, tr.Len(), len(oracle))
		}
		ks, vs := tr.Dump()
		for i, k := range ks {
			if v, ok := oracle[k]; !ok || v != vs[i] {
				t.Fatalf("order %d: dump[%d] = (%d,%d) not in oracle", order, i, k, vs[i])
			}
		}
		// Searches for every live key and a sweep of misses.
		for k, v := range oracle {
			gv, ok := tr.Search(k)
			if !ok || gv != v {
				t.Fatalf("order %d: Search(%d) = %d,%v want %d", order, k, gv, ok, v)
			}
		}
		for k := span; k < span+10; k++ {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("order %d: Search(%d) found phantom key", order, k)
			}
		}
	}
}

// TestSetLayoutRoundTrip converts a populated tree gapped → dense →
// gapped and demands identical contents and a valid structure at every
// step, plus no-op conversions staying cheap (same root).
func TestSetLayoutRoundTrip(t *testing.T) {
	tr := MustNew(8)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		tr.Insert(keys.Key(r.Intn(10000)), keys.Value(i))
	}
	wantK, wantV := tr.Dump()

	root := tr.Root()
	if err := tr.SetLayout(LayoutGapped); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != root {
		t.Fatal("no-op SetLayout rebuilt the tree")
	}

	for _, l := range []Layout{LayoutDense, LayoutGapped, LayoutDense} {
		if err := tr.SetLayout(l); err != nil {
			t.Fatal(err)
		}
		if tr.Layout() != l {
			t.Fatalf("layout %v after SetLayout(%v)", tr.Layout(), l)
		}
		if err := tr.Validate(StrictFill); err != nil {
			t.Fatalf("after SetLayout(%v): %v", l, err)
		}
		gk, gv := tr.Dump()
		if len(gk) != len(wantK) {
			t.Fatalf("after SetLayout(%v): %d entries, want %d", l, len(gk), len(wantK))
		}
		for i := range gk {
			if gk[i] != wantK[i] || gv[i] != wantV[i] {
				t.Fatalf("after SetLayout(%v): mismatch at %d", l, i)
			}
		}
	}
}

// TestGappedBulkLoadLeavesGaps checks the bulk loader's occupancy
// target: a gapped bulk-loaded tree must leave free slots in its leaves
// (that is the point of the layout) while a dense one packs them full.
func TestGappedBulkLoadLeavesGaps(t *testing.T) {
	n := 10000
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(2 * i)
		vs[i] = keys.Value(i)
	}
	tr, err := BulkLoadLayout(DefaultOrder, LayoutGapped, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
	var totalFree int
	tr.VisitLeaves(func(entries, capacity int) {
		if capacity != DefaultOrder-1 {
			t.Fatalf("gapped leaf capacity %d, want %d", capacity, DefaultOrder-1)
		}
		totalFree += capacity - entries
	})
	if totalFree == 0 {
		t.Fatal("gapped bulk load produced no gaps")
	}
	// And inserts into the gapped tree claim those gaps without
	// splitting: one odd key per ~leaf-sized span of even keys, so no
	// single leaf absorbs more inserts than it has gaps.
	before := countLeaves(tr)
	for i := 0; i < 50; i++ {
		tr.Insert(keys.Key(110*i+1), keys.Value(i))
	}
	if after := countLeaves(tr); after != before {
		t.Fatalf("gap-claiming inserts split leaves: %d -> %d", before, after)
	}
	if err := tr.Validate(StrictFill); err != nil {
		t.Fatal(err)
	}
}

func countLeaves(t *Tree) int {
	n := 0
	t.VisitLeaves(func(int, int) { n++ })
	return n
}
