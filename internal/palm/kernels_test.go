package palm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// kernelCombos enumerates all 2⁴ kernel/layout ablation settings.
func kernelCombos() []Config {
	var out []Config
	for bits := 0; bits < 16; bits++ {
		out = append(out, Config{
			NoPathReuse:        bits&1 != 0,
			NoBranchlessSearch: bits&2 != 0,
			NoMergeApply:       bits&4 != 0,
			NoGappedLayout:     bits&8 != 0,
		})
	}
	return out
}

func comboName(c Config) string {
	return fmt.Sprintf("pathreuse=%v/branchless=%v/mergeapply=%v/gapped=%v",
		!c.NoPathReuse, !c.NoBranchlessSearch, !c.NoMergeApply, !c.NoGappedLayout)
}

// TestFinderMatchesFreshDescent is the path-reuse property test: over
// random tree shapes (empty root-leaf, single-leaf, serially grown,
// bulk-loaded) and random probe sequences (ascending, as Stage 1 sees,
// and adversarially unordered), finder.find must return exactly the
// leaf — and record exactly the path — that a fresh root descent does.
func TestFinderMatchesFreshDescent(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		order := []int{3, 4, 5, 8, 64}[r.Intn(5)]
		n := []int{0, 1, 2, order - 1, 30, 500, 4000}[r.Intn(7)]
		span := keys.Key(3*n + 10)

		var tree *btree.Tree
		if r.Intn(2) == 0 {
			// Serially grown tree (strict fill invariants).
			tree = btree.MustNew(order)
			for i := 0; i < n; i++ {
				tree.Insert(keys.Key(r.Uint64())%span, keys.Value(i))
			}
		} else {
			// Bulk-loaded tree (distinct leaf fill pattern).
			ks := make([]keys.Key, 0, n)
			seen := map[keys.Key]bool{}
			for len(ks) < n {
				k := keys.Key(r.Uint64()) % span
				if !seen[k] {
					seen[k] = true
					ks = append(ks, k)
				}
			}
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			vs := make([]keys.Value, len(ks))
			var err error
			tree, err = btree.BulkLoad(order, ks, vs)
			if err != nil {
				t.Fatal(err)
			}
		}

		p := NewWithTree(Config{Order: order, Workers: 1}, tree, nil)
		var f finder
		f.reset(p)

		probes := make([]keys.Key, 300)
		for i := range probes {
			probes[i] = keys.Key(r.Uint64()) % (span + 4)
		}
		if r.Intn(2) == 0 {
			// The Stage-1 ascending regime.
			sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		}
		var fresh btree.Path
		for _, k := range probes {
			got := f.find(k)
			want := tree.FindLeaf(k, &fresh)
			if got != want {
				t.Fatalf("order=%d n=%d: find(%d) returned wrong leaf", order, n, k)
			}
			if f.path.Len() != fresh.Len() {
				t.Fatalf("order=%d n=%d: find(%d) path depth %d, want %d",
					order, n, k, f.path.Len(), fresh.Len())
			}
			for l := 0; l < fresh.Len(); l++ {
				if f.path.Nodes[l] != fresh.Nodes[l] || f.path.Slots[l] != fresh.Slots[l] {
					t.Fatalf("order=%d n=%d: find(%d) path diverges at level %d", order, n, k, l)
				}
			}
		}
		p.Close()
	}
}

// TestFinderResetAfterRestructure checks the Stage boundaries the
// finder's correctness argument rests on: after a batch restructures the
// tree, the next batch's descents (post-reset) are still exact.
func TestFinderResetAfterRestructure(t *testing.T) {
	p, _ := New(Config{Order: 3, Workers: 1}, nil)
	defer p.Close()
	r := rand.New(rand.NewSource(5))
	for b := 0; b < 20; b++ {
		batch := make([]keys.Query, 120)
		for i := range batch {
			k := keys.Key(r.Intn(400))
			if r.Intn(2) == 0 {
				batch[i] = keys.Insert(k, keys.Value(i))
			} else {
				batch[i] = keys.Delete(k)
			}
		}
		p.ProcessBatch(keys.Number(batch), keys.NewResultSet(len(batch)))

		f := &p.perW[0].finder
		f.reset(p)
		var fresh btree.Path
		for k := keys.Key(0); k < 410; k += 3 {
			if got, want := f.find(k), p.tree.FindLeaf(k, &fresh); got != want {
				t.Fatalf("batch %d: stale finder after restructure at key %d", b, k)
			}
		}
	}
}

// TestMergeApplyValidates drives merge-based leaf application across
// every order and several leaf fill modes (empty tree, serially grown,
// bulk-loaded full leaves) and checks btree.Validate plus oracle
// equivalence after every batch.
func TestMergeApplyValidates(t *testing.T) {
	for _, order := range []int{3, 4, 5, 8, 64} {
		for _, preload := range []int{0, 1, 700} {
			r := rand.New(rand.NewSource(int64(order*1000 + preload)))
			o := oracle.New()

			var tree *btree.Tree
			if preload > 0 && r.Intn(2) == 0 {
				ks := make([]keys.Key, preload)
				vs := make([]keys.Value, preload)
				seed := make([]keys.Query, preload)
				for i := range ks {
					ks[i] = keys.Key(i * 3)
					vs[i] = keys.Value(i)
					seed[i] = keys.Insert(ks[i], vs[i])
				}
				var err error
				tree, err = btree.BulkLoad(order, ks, vs)
				if err != nil {
					t.Fatal(err)
				}
				o.ApplyAll(keys.Number(seed), keys.NewResultSet(preload))
			} else {
				tree = btree.MustNew(order)
				seed := make([]keys.Query, preload)
				for i := 0; i < preload; i++ {
					tree.Insert(keys.Key(i*3), keys.Value(i))
					seed[i] = keys.Insert(keys.Key(i*3), keys.Value(i))
				}
				o.ApplyAll(keys.Number(seed), keys.NewResultSet(preload))
			}

			p := NewWithTree(Config{Order: order, Workers: 4, LoadBalance: true}, tree, nil)
			for b := 0; b < 4; b++ {
				batch := make([]keys.Query, 900)
				for i := range batch {
					k := keys.Key(r.Intn(3*preload + 200))
					switch r.Intn(3) {
					case 0:
						batch[i] = keys.Search(k)
					case 1:
						batch[i] = keys.Insert(k, keys.Value(r.Uint64()))
					default:
						batch[i] = keys.Delete(k)
					}
				}
				keys.Number(batch)
				want := keys.NewResultSet(len(batch))
				o.ApplyAll(batch, want)
				got := keys.NewResultSet(len(batch))
				p.ProcessBatch(batch, got)
				for i := int32(0); i < int32(len(batch)); i++ {
					w, wok := want.Get(i)
					g, gok := got.Get(i)
					if wok != gok || w != g {
						t.Fatalf("order=%d preload=%d batch %d query %d: %+v vs %+v", order, preload, b, i, g, w)
					}
				}
				if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
					t.Fatalf("order=%d preload=%d batch %d: %v", order, preload, b, err)
				}
			}
			gk, gv := p.Tree().Dump()
			wk, wv := o.Dump()
			if len(gk) != len(wk) {
				t.Fatalf("order=%d preload=%d: dump %d vs %d entries", order, preload, len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || gv[i] != wv[i] {
					t.Fatalf("order=%d preload=%d: dump mismatch at %d", order, preload, i)
				}
			}
			p.Close()
		}
	}
}

// TestKernelAblationMatrix runs the oracle differential over all 2³
// kernel flag combinations — results and final stores must be identical
// regardless of which kernels are enabled.
func TestKernelAblationMatrix(t *testing.T) {
	for _, combo := range kernelCombos() {
		combo := combo
		t.Run(comboName(combo), func(t *testing.T) {
			cfg := combo
			cfg.Order = 4
			cfg.Workers = 4
			cfg.LoadBalance = true
			r := rand.New(rand.NewSource(77))
			runDifferential(t, cfg, randomBatches(r, 3, 1500, 300, 0.5))
		})
	}
}

// TestKernelAblationTransformed exercises the QTrans-shaped entry points
// (ProcessTransformed, FindAndAnswerSearches) under every kernel combo.
func TestKernelAblationTransformed(t *testing.T) {
	for _, combo := range kernelCombos() {
		combo := combo
		t.Run(comboName(combo), func(t *testing.T) {
			cfg := combo
			cfg.Order = 4
			cfg.Workers = 4
			cfg.LoadBalance = true
			p, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			o := oracle.New()
			r := rand.New(rand.NewSource(13))

			for b := 0; b < 5; b++ {
				// A QTrans-reduced batch: per distinct key at most one
				// representative search, preceding the key's defining
				// queries; keys ascending (stable key-sorted by build).
				var batch []keys.Query
				for k := keys.Key(0); k < 400; k += keys.Key(1 + r.Intn(3)) {
					if r.Intn(3) == 0 {
						batch = append(batch, keys.Search(k))
					}
					for d := r.Intn(3); d > 0; d-- {
						if r.Intn(2) == 0 {
							batch = append(batch, keys.Insert(k, keys.Value(r.Uint64())))
						} else {
							batch = append(batch, keys.Delete(k))
						}
					}
				}
				keys.Number(batch)
				want := keys.NewResultSet(len(batch))
				o.ApplyAll(batch, want)
				got := keys.NewResultSet(len(batch))
				p.ProcessTransformed(batch, got)
				for i := int32(0); i < int32(len(batch)); i++ {
					w, wok := want.Get(i)
					g, gok := got.Get(i)
					if wok != gok || w != g {
						t.Fatalf("batch %d query %d: %+v (%v) vs %+v (%v)", b, i, g, gok, w, wok)
					}
				}
				if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
			}

			// Search-only fast path against the final store.
			qs := make([]keys.Query, 600)
			for i := range qs {
				qs[i] = keys.Search(keys.Key(r.Intn(420)))
			}
			keys.Number(qs)
			keys.SortByKey(qs)
			want := keys.NewResultSet(len(qs))
			o.ApplyAll(qs, want)
			got := keys.NewResultSet(len(qs))
			p.FindAndAnswerSearches(qs, got)
			for i := int32(0); i < int32(len(qs)); i++ {
				w, wok := want.Get(i)
				g, gok := got.Get(i)
				if wok != gok || w != g {
					t.Fatalf("fast path query %d: %+v (%v) vs %+v (%v)", i, g, gok, w, wok)
				}
			}

			gk, gv := p.Tree().Dump()
			wk, wv := o.Dump()
			if len(gk) != len(wk) {
				t.Fatalf("dump %d vs %d entries", len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || gv[i] != wv[i] {
					t.Fatalf("dump mismatch at %d", i)
				}
			}
		})
	}
}

// TestFenceHitsCounted checks the path-reuse stat: a dense pre-sorted
// batch against a deep tree must resolve mostly by fence checks, and
// disabling the kernel must zero the counter.
func TestFenceHitsCounted(t *testing.T) {
	build := func(cfg Config) *Processor {
		cfg.Order = 4
		cfg.Workers = 1
		p, _ := New(cfg, nil)
		n := 4000
		seed := make([]keys.Query, n)
		for i := range seed {
			seed[i] = keys.Insert(keys.Key(i), keys.Value(i))
		}
		p.ProcessBatch(keys.Number(seed), keys.NewResultSet(n))
		return p
	}

	p := build(Config{})
	defer p.Close()
	// Stride-1 searches guarantee consecutive queries share a leaf for
	// any leaf fill >= 2, independent of the layout's split target.
	batch := make([]keys.Query, 2000)
	for i := range batch {
		batch[i] = keys.Search(keys.Key(i))
	}
	keys.Number(batch)
	p.ProcessBatchSorted(batch, keys.NewResultSet(len(batch)))
	if p.Stats().FenceHits == 0 {
		t.Fatal("dense sorted batch recorded no fence hits")
	}

	off := build(Config{NoPathReuse: true})
	defer off.Close()
	for i := range batch {
		batch[i] = keys.Search(keys.Key(i))
	}
	keys.Number(batch)
	off.ProcessBatchSorted(batch, keys.NewResultSet(len(batch)))
	if off.Stats().FenceHits != 0 {
		t.Fatalf("NoPathReuse recorded %d fence hits", off.Stats().FenceHits)
	}
}
