package palm

import (
	"repro/internal/btree"
	"repro/internal/keys"
)

// parentRun is a contiguous range [lo, hi) of same-parent modification
// requests within one restructuring level.
type parentRun struct{ lo, hi int }

// restructure runs Stage 3: modification requests produced by Stage 2
// propagate bottom-up, one tree level per superstep. Requests for the
// same parent are contiguous in p.reqs (key order), get assigned to a
// single worker, and are applied by rebuilding the parent's child and
// separator arrays in one pass. Overflowing parents are multi-way split
// and emptied parents removed, producing the next level's requests.
func (p *Processor) restructure() {
	leafRemoved := false
	for _, r := range p.reqs {
		if r.repl == nil && r.parent != nil {
			leafRemoved = true
			break
		}
	}

	reqs := p.reqs
	for {
		// Separate root-level requests (parent == nil); they are
		// finalized sequentially after the parallel levels.
		var rootReq *modRequest
		n := 0
		for i := range reqs {
			if reqs[i].parent == nil {
				r := reqs[i]
				rootReq = &r
			} else {
				reqs[n] = reqs[i]
				n++
			}
		}
		reqs = reqs[:n]
		if len(reqs) == 0 {
			if rootReq != nil {
				p.finalizeRoot(rootReq)
			}
			break
		}
		if rootReq != nil {
			// Root requests can only appear once all deeper levels are
			// done, because levels strictly decrease.
			panic("palm: root request alongside deeper requests")
		}

		// Group contiguous requests by parent (runs scratch is reused
		// across levels and batches).
		runs := p.runs[:0]
		for lo := 0; lo < len(reqs); {
			hi := lo + 1
			for hi < len(reqs) && reqs[hi].parent == reqs[lo].parent {
				hi++
			}
			runs = append(runs, parentRun{lo, hi})
			lo = hi
		}
		p.runs = runs

		for i := range p.perW {
			p.perW[i].reqs = p.perW[i].reqs[:0]
		}
		nw := p.pool.N()
		p.pool.Run(func(tid int) {
			rlo, rhi := p.pool.Range(tid, len(runs))
			w := &p.perW[tid]
			for ri := rlo; ri < rhi; ri++ {
				run := runs[ri]
				p.applyToParent(reqs[run.lo:run.hi], w)
			}
			_ = nw
		})

		p.nextReq = p.nextReq[:0]
		for t := range p.perW {
			p.nextReq = append(p.nextReq, p.perW[t].reqs...)
		}
		reqs, p.nextReq = p.nextReq, reqs
	}

	// Root collapse: an internal root left with a single child shrinks
	// the tree (possibly repeatedly).
	root := p.tree.Root()
	for !root.Leaf() && len(root.Children) == 1 {
		root = root.Children[0]
	}
	p.tree.SetRoot(root)

	if leafRemoved {
		p.relinkLeaves()
	}
}

// applyToParent rebuilds one parent node from its (slot-ascending)
// requests and emits an upward request if the parent overflowed or
// emptied.
func (p *Processor) applyToParent(reqs []modRequest, w *workerScratch) {
	parent := reqs[0].parent
	// Build the new child list in the worker's scratch buffer (reused
	// across parents and batches), then copy it into the parent's own
	// array, growing the latter only when capacity is insufficient.
	buf := w.children[:0]
	ri := 0
	for s, c := range parent.Children {
		if ri < len(reqs) && reqs[ri].slot == s {
			buf = append(buf, reqs[ri].repl...)
			ri++
		} else {
			buf = append(buf, c)
		}
	}
	w.children = buf[:0]
	if ri != len(reqs) {
		panic("palm: unconsumed modification request (slot mismatch)")
	}

	level := reqs[0].level
	path := reqs[0].path
	up := modRequest{path: path, level: level - 1}
	if level > 0 {
		up.parent = path.Nodes[level-1]
		up.slot = path.Slots[level-1]
	}

	if len(buf) == 0 {
		// Parent emptied: remove it from its own parent.
		parent.Children = parent.Children[:0]
		parent.Keys = parent.Keys[:0]
		w.reqs = append(w.reqs, up)
		return
	}

	if cap(parent.Children) >= len(buf) {
		parent.Children = parent.Children[:len(buf)]
	} else {
		parent.Children = make([]*btree.Node, len(buf))
	}
	copy(parent.Children, buf)
	p.packSeps(parent)

	if len(parent.Children) > p.tree.Order() {
		if parent.Gapped() {
			up.repl = splitInternalMultiGapped(parent, p.tree.Order())
		} else {
			up.repl = splitInternalMulti(parent, p.tree.Order())
		}
		w.splits += int64(len(up.repl) - 1)
		w.reqs = append(w.reqs, up)
	}
}

// packSeps recomputes a node's separator array for its current child
// list, honoring the node's layout (per node, not per tree, so staged
// rebuilds that mix layouts stay correct).
func (p *Processor) packSeps(n *btree.Node) {
	if n.Gapped() {
		btree.PackInternalGapped(n, p.tree.Order())
	} else {
		n.Keys = rebuildSeps(n.Keys[:0], n.Children)
	}
}

// rebuildSeps recomputes the separator keys for a child list: separator
// i is the minimum key of child i+1's subtree, which is strictly greater
// than every key under child i because children are in key order.
func rebuildSeps(dst []keys.Key, ch []*btree.Node) []keys.Key {
	for i := 1; i < len(ch); i++ {
		dst = append(dst, minKey(ch[i]))
	}
	return dst
}

// minKey returns the smallest key stored in n's subtree.
func minKey(n *btree.Node) keys.Key {
	for !n.Leaf() {
		n = n.Children[0]
	}
	return n.Keys[0]
}

// splitInternalMulti splits an overfull internal node into balanced
// pieces of at most maxChildren children each, reusing the node as the
// leftmost piece.
func splitInternalMulti(n *btree.Node, maxChildren int) []*btree.Node {
	ct := len(n.Children)
	pieces := (ct + maxChildren - 1) / maxChildren
	base, rem := ct/pieces, ct%pieces
	out := make([]*btree.Node, 0, pieces)
	out = append(out, n)
	start := base
	if rem > 0 {
		start++
	}
	for i := 1; i < pieces; i++ {
		sz := base
		if i < rem {
			sz++
		}
		sib := &btree.Node{
			Children: append(make([]*btree.Node, 0, maxChildren+1), n.Children[start:start+sz]...),
		}
		sib.Keys = rebuildSeps(make([]keys.Key, 0, maxChildren), sib.Children)
		out = append(out, sib)
		start += sz
	}
	first := base
	if rem > 0 {
		first++
	}
	n.Children = n.Children[:first]
	n.Keys = n.Keys[:first-1]
	return out
}

// splitInternalMultiGapped is splitInternalMulti for gapped internal
// nodes: every piece is repacked at the fixed sentinel-padded width.
func splitInternalMultiGapped(n *btree.Node, maxChildren int) []*btree.Node {
	ct := len(n.Children)
	pieces := (ct + maxChildren - 1) / maxChildren
	base, rem := ct/pieces, ct%pieces
	out := make([]*btree.Node, 0, pieces)
	out = append(out, n)
	first := base
	if rem > 0 {
		first++
	}
	start := first
	for i := 1; i < pieces; i++ {
		sz := base
		if i < rem {
			sz++
		}
		sib := &btree.Node{
			Children: append(make([]*btree.Node, 0, maxChildren+1), n.Children[start:start+sz]...),
		}
		btree.PackInternalGapped(sib, maxChildren)
		out = append(out, sib)
		start += sz
	}
	n.Children = n.Children[:first]
	btree.PackInternalGapped(n, maxChildren)
	return out
}

// finalizeRoot applies a request whose target child was the root itself.
func (p *Processor) finalizeRoot(r *modRequest) {
	switch {
	case r.repl == nil:
		// The root emptied. If it was a leaf it legally stays empty; if
		// it was internal (all subtrees deleted), reset to a fresh
		// empty leaf of the tree's layout.
		root := p.tree.Root()
		if !root.Leaf() {
			p.tree.SetRoot(btree.NewLeafLayout(p.tree.Order(), p.tree.Layout()))
		}
	case len(r.repl) == 1:
		p.tree.SetRoot(r.repl[0])
	default:
		// The root split into multiple pieces; build new levels above
		// until a single root remains. The split itself was already
		// counted where the pieces were produced (Stage 2 or
		// applyToParent), so only the tree grows here.
		level := r.repl
		order := p.tree.Order()
		gapped := p.tree.Layout() == btree.LayoutGapped
		for len(level) > 1 {
			parents := make([]*btree.Node, 0, (len(level)+order-1)/order)
			for lo := 0; lo < len(level); lo += order {
				hi := lo + order
				if hi > len(level) {
					hi = len(level)
				}
				parent := &btree.Node{
					Children: append(make([]*btree.Node, 0, order+1), level[lo:hi]...),
				}
				if gapped {
					btree.PackInternalGapped(parent, order)
				} else {
					parent.Keys = rebuildSeps(make([]keys.Key, 0, order), parent.Children)
				}
				parents = append(parents, parent)
			}
			level = parents
		}
		p.tree.SetRoot(level[0])
	}
}

// relinkLeaves rebuilds the leaf chain after leaves were removed. The
// tree's structure is already correct; only Next pointers of leaves
// adjacent to removed ones are stale. A single in-order walk repairs
// them (see DESIGN.md: removals are rare — a batch must delete every
// key in a leaf — so the occasional O(#leaves) sweep is cheap next to
// batch evaluation).
func (p *Processor) relinkLeaves() {
	var prev *btree.Node
	var walk func(n *btree.Node)
	walk = func(n *btree.Node) {
		if n.Leaf() {
			if prev != nil {
				prev.Next = n
			}
			prev = n
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.tree.Root())
	if prev != nil {
		prev.Next = nil
	}
}
