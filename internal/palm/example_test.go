package palm_test

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/palm"
)

// One PALM batch: sort, find, evaluate, restructure — with semantics
// identical to executing the queries one at a time.
func Example() {
	proc, err := palm.New(palm.Config{Order: 8, Workers: 2, LoadBalance: true}, nil)
	if err != nil {
		panic(err)
	}
	defer proc.Close()

	batch := keys.Number([]keys.Query{
		keys.Insert(10, 1),
		keys.Insert(20, 2),
		keys.Search(10),
		keys.Delete(20),
		keys.Search(20),
	})
	results := keys.NewResultSet(len(batch))
	proc.ProcessBatch(batch, results)

	if r, ok := results.Get(2); ok {
		fmt.Println("S(10):", r.Value, r.Found)
	}
	if r, ok := results.Get(4); ok {
		fmt.Println("S(20):", r.Value, r.Found)
	}
	fmt.Println("stored pairs:", proc.Tree().Len())
	// Output:
	// S(10): 1 true
	// S(20): 0 false
	// stored pairs: 1
}
