// Package palm implements the latch-free, bulk-synchronous B+ tree batch
// query processor of Sewall et al. (PALM, VLDB'11) as described in
// Section II-B of the QTrans paper, the system QTrans integrates into.
//
// A batch is processed in the three stages of Fig. 3:
//
//	Stage 1: the (pre-sorted) batch is partitioned evenly across worker
//	         threads, which find the leaf covering each query's key in
//	         parallel, recording the root-to-leaf descent path.
//	Stage 2: queries are shuffled so that all queries to one leaf are
//	         handled by exactly one thread; threads evaluate their leaf
//	         groups in parallel (search answers, leaf inserts/deletes).
//	Stage 3: structural modifications propagate bottom-up: overflowing
//	         leaves are (multi-way) split and emptied leaves removed;
//	         the resulting child-replacement requests are shuffled by
//	         parent node, applied in parallel, and the process repeats
//	         per level until the root, which a single thread maintains.
//
// Because every node is written by at most one thread per superstep and
// supersteps are separated by barriers, no latches are needed.
//
// Deletions follow the relaxed policy of the paper's open-source
// baseline: nodes may become under-full, and only empty nodes are
// removed (see DESIGN.md §4.2). The tree therefore validates under
// btree.RelaxedFill.
package palm

import (
	"repro/internal/bsp"
	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/stats"
)

// Config controls a Processor.
type Config struct {
	// Order is the B+ tree order; <= 0 selects btree.DefaultOrder.
	Order int
	// Workers is the BSP thread count; <= 0 selects GOMAXPROCS.
	Workers int
	// LoadBalance enables the prefix-sum balanced assignment of leaf
	// groups to threads (§V-A). When false, groups are dealt evenly by
	// count regardless of how many queries each holds — the ablation of
	// Fig. 13.
	LoadBalance bool
	// PreSorted declares that batches arrive already stably key-sorted,
	// skipping the internal parallel sort (§IV-E pre-sorting).
	PreSorted bool
	// CompareSort selects the parallel comparison merge sort for the
	// pre-sorting step instead of the default parallel radix sort
	// (ablation; radix is several times faster on integer keys).
	CompareSort bool

	// Sorted-batch tree kernel ablations (DESIGN.md §8). The zero value
	// enables all three kernels; each flag disables one, restoring the
	// pre-kernel code path for benchmarking and differential testing.

	// NoPathReuse disables the path-reuse descent of Stage 1 and the
	// find-and-answer fast path: every query (or distinct key) then
	// re-descends from the root as the original design did.
	NoPathReuse bool
	// NoBranchlessSearch replaces the branchless intra-node search
	// kernels with the closure-based sort.Search probes.
	NoBranchlessSearch bool
	// NoMergeApply disables the merge-based leaf application of Stage
	// 2: each leaf group's queries are then applied one at a time with
	// a binary search plus memmove per insert/delete. On the gapped
	// layout the flag is moot: per-query gap claiming already is the
	// cheap one-at-a-time path, so one gapped applier serves both
	// states (DESIGN.md §10).
	NoMergeApply bool
	// NoGappedLayout restores the dense node layout (variable-length
	// packed key/value slices) instead of the default gapped BS-tree
	// layout (fixed-width sentinel-padded slot arrays with a presence
	// bitmap; DESIGN.md §10).
	NoGappedLayout bool
}

// layout returns the tree layout the configuration selects.
func (c Config) layout() btree.Layout {
	if c.NoGappedLayout {
		return btree.LayoutDense
	}
	return btree.LayoutGapped
}

// Processor evaluates query batches against a B+ tree using the PALM
// BSP scheme. A Processor owns its tree; concurrent calls to
// ProcessBatch are not allowed (batches are the unit of concurrency).
type Processor struct {
	tree *btree.Tree
	pool *bsp.Pool
	cfg  Config

	// ownPool records whether Close should close the pool.
	ownPool bool

	// Per-batch scratch, reused across batches.
	groups  []leafGroup
	perW    []workerScratch
	reqs    []modRequest
	nextReq []modRequest
	assign  [][2]int    // Stage-2 group assignment
	counts  []int       // group-size prefix sums for load balancing
	runs    []parentRun // Stage-3 same-parent request runs

	// Stats for the most recent batch; never nil.
	batchStats *stats.Batch
}

// workerScratch holds per-worker intermediate state for one batch.
type workerScratch struct {
	groups    []leafGroup
	reqs      []modRequest
	paths     pathArena     // recycled root-to-leaf path snapshots
	children  []*btree.Node // applyToParent child-list rebuild scratch
	finder    finder        // Stage-1 path-reuse descent state
	mergeKeys []keys.Key    // merge-based leaf application scratch
	mergeVals []keys.Value
	leafKeys  []keys.Key // gapped-leaf compaction scratch (overflow path)
	leafVals  []keys.Value
	sizeDelta int64
	leafOps   int64 // operations applied at the leaf level (Fig. 13)
	// Layout counters (stats.Batch Splits/GapClaims/ShiftedSlots).
	splits       int64
	gapClaims    int64
	shiftedSlots int64
	_            [4]int64 // pad to keep hot counters off shared cache lines
}

// pathArena recycles btree.Path snapshots across batches: each leaf
// group clones the descent path of its first query, and with fresh
// Clone calls those two slices per group dominated the allocation count
// of the whole batch. Arena entries keep their backing arrays, so after
// warm-up a snapshot costs two copies and zero allocations. A returned
// Path shares the arena entry's arrays, which stay valid until the next
// reset (the start of the next batch).
type pathArena struct {
	paths []btree.Path
	used  int
}

// reset recycles every entry for a new batch.
func (a *pathArena) reset() { a.used = 0 }

// clone snapshots p into the arena and returns it by value.
func (a *pathArena) clone(p *btree.Path) btree.Path {
	if a.used == len(a.paths) {
		a.paths = append(a.paths, btree.Path{})
	}
	dst := &a.paths[a.used]
	a.used++
	dst.Nodes = append(dst.Nodes[:0], p.Nodes...)
	dst.Slots = append(dst.Slots[:0], p.Slots...)
	return *dst
}

// leafGroup is a maximal run of same-leaf queries in the sorted batch.
type leafGroup struct {
	leaf *btree.Node
	path btree.Path // root-to-leaf internal path (shared per group)
	lo   int        // query range [lo, hi) in the sorted batch
	hi   int
}

// modRequest asks for parent.Children[slot] to be replaced by repl
// (empty repl = remove the child). level is the path level of parent
// (path.Nodes[level] == parent); level -1 denotes the root child
// replacement handled by the root step.
type modRequest struct {
	parent *btree.Node
	path   *btree.Path
	level  int
	slot   int
	repl   []*btree.Node
}

// New creates a Processor over a fresh empty tree. pool may be nil, in
// which case the Processor creates (and owns) one with cfg.Workers
// workers.
func New(cfg Config, pool *bsp.Pool) (*Processor, error) {
	tree, err := btree.NewLayout(cfg.Order, cfg.layout())
	if err != nil {
		return nil, err
	}
	return NewWithTree(cfg, tree, pool), nil
}

// NewWithTree creates a Processor over an existing tree (e.g. one
// pre-loaded serially or restored from a snapshot). The tree is
// converted in place when its layout differs from what the
// configuration selects (a no-op otherwise), so the NoGappedLayout
// ablation stays authoritative regardless of how the tree was built.
// See New for pool semantics.
func NewWithTree(cfg Config, tree *btree.Tree, pool *bsp.Pool) *Processor {
	// SetLayout rebuilds from the tree's own dump at its own order;
	// neither can fail for a tree that was constructible at all.
	_ = tree.SetLayout(cfg.layout())
	own := false
	if pool == nil {
		pool = bsp.NewPool(cfg.Workers)
		own = true
	}
	p := &Processor{
		tree:       tree,
		pool:       pool,
		cfg:        cfg,
		ownPool:    own,
		perW:       make([]workerScratch, pool.N()),
		batchStats: stats.NewBatch(pool.N()),
	}
	return p
}

// Close releases the Processor's pool if it owns one.
func (p *Processor) Close() {
	if p.ownPool {
		p.pool.Close()
	}
}

// Tree returns the underlying tree (e.g. for validation or scanning
// between batches).
func (p *Processor) Tree() *btree.Tree { return p.tree }

// Pool returns the BSP pool the processor runs on.
func (p *Processor) Pool() *bsp.Pool { return p.pool }

// Stats returns the timing/counter breakdown of the most recent batch.
func (p *Processor) Stats() *stats.Batch { return p.batchStats }

// ProcessBatch evaluates the batch with §II-A semantics equivalent to
// serial in-order evaluation, recording search results into rs (indexed
// by Query.Idx). qs is reordered in place (stable key sort) unless
// cfg.PreSorted.
func (p *Processor) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	p.processBatch(qs, rs, p.cfg.PreSorted)
}

// ProcessBatchSorted is ProcessBatch for a batch that is already stably
// key-sorted — e.g. one whose sort ran in the pipelined stage A while
// the previous batch's tree stages were still executing — so the
// internal pre-sort is skipped regardless of cfg.PreSorted.
func (p *Processor) ProcessBatchSorted(qs []keys.Query, rs *keys.ResultSet) {
	p.processBatch(qs, rs, true)
}

func (p *Processor) processBatch(qs []keys.Query, rs *keys.ResultSet, sorted bool) {
	st := p.batchStats
	st.Reset()
	st.BatchSize = len(qs)
	if len(qs) == 0 {
		return
	}

	if !sorted {
		sw := st.Timer(stats.StageSort)
		if p.cfg.CompareSort {
			p.pool.SortQueries(qs)
		} else {
			p.pool.RadixSortQueries(qs)
		}
		sw.Stop()
	}

	sw := st.Timer(stats.StageFind)
	p.findLeaves(qs)
	sw.Stop()

	sw = st.Timer(stats.StageEvaluate)
	p.evaluate(qs, rs, false)
	sw.Stop()

	sw = st.Timer(stats.StageModify)
	p.restructure()
	sw.Stop()

	st.RemainingQueries = len(qs)
	p.finishStats()
}

// finishStats folds per-worker counters into the batch stats.
func (p *Processor) finishStats() {
	var delta int64
	for i := range p.perW {
		delta += p.perW[i].sizeDelta
		p.batchStats.LeafOps[i] += p.perW[i].leafOps
		p.batchStats.FenceHits += int(p.perW[i].finder.fenceHits)
		p.batchStats.Splits += int(p.perW[i].splits)
		p.batchStats.GapClaims += int(p.perW[i].gapClaims)
		p.batchStats.ShiftedSlots += int(p.perW[i].shiftedSlots)
		p.perW[i].sizeDelta = 0
		p.perW[i].leafOps = 0
		p.perW[i].finder.fenceHits = 0
		p.perW[i].splits = 0
		p.perW[i].gapClaims = 0
		p.perW[i].shiftedSlots = 0
	}
	if delta != 0 {
		p.tree.AddSize(int(delta))
	}
}

// findLeaves runs Stage 1: parallel leaf location over an even partition
// of the sorted batch, producing the global key-ordered leaf-group list
// in p.groups.
func (p *Processor) findLeaves(qs []keys.Query) {
	n := len(qs)
	for i := range p.perW {
		p.perW[i].groups = p.perW[i].groups[:0]
		p.perW[i].paths.reset()
		p.perW[i].finder.reset(p)
	}
	p.pool.Run(func(tid int) {
		lo, hi := p.pool.Range(tid, n)
		w := &p.perW[tid]
		var cur *btree.Node
		for i := lo; i < hi; i++ {
			// The original design performs the leaf search for every
			// query in the batch (§V-A contrasts this with QTrans's
			// per-distinct-key FIND, which lives in findAndAnswer).
			// With path reuse the search usually collapses to a fence
			// check against the previous descent (kernels.go).
			leaf := w.finder.find(qs[i].Key)
			if leaf == cur && len(w.groups) > 0 {
				w.groups[len(w.groups)-1].hi = i + 1
				continue
			}
			cur = leaf
			w.groups = append(w.groups, leafGroup{leaf: leaf, path: w.paths.clone(&w.finder.path), lo: i, hi: i + 1})
		}
	})

	// Concatenate per-worker groups (already in global key order) and
	// merge boundary groups that landed on the same leaf.
	p.groups = p.groups[:0]
	for t := range p.perW {
		for _, g := range p.perW[t].groups {
			if len(p.groups) > 0 && p.groups[len(p.groups)-1].leaf == g.leaf {
				p.groups[len(p.groups)-1].hi = g.hi
			} else {
				p.groups = append(p.groups, g)
			}
		}
	}
}

// FindAndAnswerSearches is the QTrans fast path for batches whose
// remaining queries contain no defining ops after transformation: every
// query is a search, so Stage 1 both locates and evaluates, and Stages 2
// and 3 are skipped entirely (§VI-B: "QTrans handles all FIND queries in
// stage 1, avoiding the time consuming stage 2").
func (p *Processor) FindAndAnswerSearches(qs []keys.Query, rs *keys.ResultSet) {
	n := len(qs)
	for i := range p.perW {
		p.perW[i].finder.reset(p)
	}
	p.pool.Run(func(tid int) {
		lo, hi := p.pool.Range(tid, n)
		w := &p.perW[tid]
		var leaf *btree.Node
		for i := lo; i < hi; i++ {
			if i == lo || qs[i].Key != qs[i-1].Key || leaf == nil {
				leaf = w.finder.find(qs[i].Key)
			}
			v, ok := p.probeLeaf(leaf, qs[i].Key)
			rs.Set(qs[i].Idx, v, ok)
			w.leafOps++
		}
	})
	p.finishStats()
}

// evaluate runs Stage 2: leaf groups are assigned to workers (balanced
// by query count when cfg.LoadBalance) and evaluated in parallel.
// answerDuringFind indicates searches were already answered in Stage 1
// (QTrans mode), so only defining queries remain in the groups.
func (p *Processor) evaluate(qs []keys.Query, rs *keys.ResultSet, answerDuringFind bool) {
	assign := p.assignGroups()
	for i := range p.perW {
		p.perW[i].reqs = p.perW[i].reqs[:0]
	}
	p.pool.Run(func(tid int) {
		glo, ghi := assign[tid][0], assign[tid][1]
		w := &p.perW[tid]
		for gi := glo; gi < ghi; gi++ {
			g := &p.groups[gi]
			p.evalGroup(g, qs, rs, w, answerDuringFind)
		}
	})

	// Gather modification requests in global key order.
	p.reqs = p.reqs[:0]
	for t := range p.perW {
		p.reqs = append(p.reqs, p.perW[t].reqs...)
	}
}

// assignGroups maps workers to contiguous group ranges. With load
// balancing, boundaries are chosen so each worker receives roughly equal
// numbers of queries (parallel prefix sum over group sizes, §V-A);
// without, groups are split evenly by count.
func (p *Processor) assignGroups() [][2]int {
	nw := p.pool.N()
	if cap(p.assign) < nw {
		p.assign = make([][2]int, nw)
	}
	assign := p.assign[:nw]
	ng := len(p.groups)
	if !p.cfg.LoadBalance {
		for t := 0; t < nw; t++ {
			lo, hi := bsp.SplitRange(t, nw, ng)
			assign[t] = [2]int{lo, hi}
		}
		return assign
	}
	if cap(p.counts) < ng {
		p.counts = make([]int, ng)
	}
	counts := p.counts[:ng]
	for i, g := range p.groups {
		counts[i] = g.hi - g.lo
	}
	// After the scan, counts[i] is the number of queries before group i.
	total := p.pool.ParallelExclusiveScan(counts)
	// Worker t takes the contiguous group range whose query prefix ends
	// by (t+1)*total/nw, so per-worker query loads differ by at most one
	// group's size (§V-A: groups cannot be split across threads).
	gi := 0
	for t := 0; t < nw; t++ {
		target := (t + 1) * total / nw
		lo := gi
		for gi < ng && prefixEnd(counts, gi, total) <= target {
			gi++
		}
		if t == nw-1 {
			gi = ng
		}
		assign[t] = [2]int{lo, gi}
	}
	return assign
}

// prefixEnd returns the exclusive prefix sum just after group i given
// the scanned counts array (counts[i] = prefix before i).
func prefixEnd(counts []int, i, total int) int {
	if i+1 < len(counts) {
		return counts[i+1]
	}
	return total
}

// evalGroup applies one leaf group's queries to its leaf and emits a
// modification request if the leaf overflowed or emptied. The applier
// is chosen per leaf (not per tree) so staged rebuilds that mix node
// layouts stay correct.
func (p *Processor) evalGroup(g *leafGroup, qs []keys.Query, rs *keys.ResultSet, w *workerScratch, answerDuringFind bool) {
	leaf := g.leaf
	if leaf.Gapped() {
		p.evalGroupGapped(g, qs, rs, w, answerDuringFind)
		return
	}
	maxEntries := p.tree.Order() - 1
	if p.cfg.NoMergeApply {
		p.evalGroupSerial(g, qs, rs, w, answerDuringFind)
	} else {
		p.evalGroupMerge(g, qs, rs, w, answerDuringFind)
	}

	switch {
	case len(leaf.Keys) > maxEntries:
		repl := splitLeafMulti(leaf, maxEntries)
		w.splits += int64(len(repl) - 1)
		w.reqs = append(w.reqs, modRequest{
			parent: parentOf(&g.path), path: &g.path,
			level: g.path.Len() - 1, slot: slotOf(&g.path),
			repl: repl,
		})
	case len(leaf.Keys) == 0:
		w.reqs = append(w.reqs, modRequest{
			parent: parentOf(&g.path), path: &g.path,
			level: g.path.Len() - 1, slot: slotOf(&g.path),
			repl: nil,
		})
	}
}

// parentOf returns the deepest node of the path (the leaf's parent), or
// nil when the leaf is the root.
func parentOf(path *btree.Path) *btree.Node {
	if path.Len() == 0 {
		return nil
	}
	return path.Nodes[path.Len()-1]
}

// slotOf returns the child slot taken at the deepest path level.
func slotOf(path *btree.Path) int {
	if path.Len() == 0 {
		return 0
	}
	return path.Slots[path.Len()-1]
}

// splitLeafMulti splits an overfull leaf into as many balanced siblings
// as needed (PALM's "big split"), preserving the leaf chain locally:
// the original node keeps the leftmost piece so external Next pointers
// into it remain valid.
func splitLeafMulti(leaf *btree.Node, maxEntries int) []*btree.Node {
	n := len(leaf.Keys)
	pieces := (n + maxEntries - 1) / maxEntries
	out := make([]*btree.Node, 0, pieces)
	out = append(out, leaf)
	// Balanced piece sizes: base+1 for the first rem pieces, base after.
	base, rem := n/pieces, n%pieces
	pieceSize := func(i int) int {
		if i < rem {
			return base + 1
		}
		return base
	}
	next := leaf.Next
	start := pieceSize(0)
	prev := leaf
	for i := 1; i < pieces; i++ {
		sz := pieceSize(i)
		sib := &btree.Node{
			Keys: append(make([]keys.Key, 0, maxEntries+1), leaf.Keys[start:start+sz]...),
			Vals: append(make([]keys.Value, 0, maxEntries+1), leaf.Vals[start:start+sz]...),
		}
		prev.Next = sib
		prev = sib
		out = append(out, sib)
		start += sz
	}
	prev.Next = next
	leaf.Keys = leaf.Keys[:pieceSize(0)]
	leaf.Vals = leaf.Vals[:pieceSize(0)]
	return out
}
