package palm

import (
	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/stats"
)

// ProcessTransformed evaluates a QTrans-reduced batch (Fig. 8): qs must
// be stably key-sorted and contain, per key, at most one representative
// search (which, if present, precedes the key's defining queries in
// original order) plus defining queries.
//
// Because QTrans guarantees every remaining search precedes every
// remaining defining query on its key, searches can be answered
// directly during the Stage-1 leaf FIND — before any mutation — and
// only defining queries are shuffled into Stage 2 ("if the update ratio
// is low, it only redistributes the update-related queries", §VI-B).
// When the reduced batch contains no defining queries at all, Stages 2
// and 3 are skipped entirely.
func (p *Processor) ProcessTransformed(qs []keys.Query, rs *keys.ResultSet) {
	st := p.batchStats
	st.Reset()
	st.BatchSize = len(qs)
	st.RemainingQueries = len(qs)
	if len(qs) == 0 {
		return
	}

	sw := st.Timer(stats.StageFind)
	hasDefines := p.findAndAnswer(qs, rs)
	sw.Stop()

	if hasDefines {
		sw = st.Timer(stats.StageEvaluate)
		p.evaluate(qs, rs, true)
		sw.Stop()

		sw = st.Timer(stats.StageModify)
		p.restructure()
		sw.Stop()
	}
	p.finishStats()
}

// findAndAnswer is the QTrans Stage 1: one leaf FIND per distinct key,
// searches answered immediately, defining queries collected into leaf
// groups for Stage 2. Reports whether any defining queries exist.
//
// Searches tagged LeafAnswer are NOT answered here: a surviving RMW on
// the same key precedes them in batch order, so their answer depends
// on Stage-2 state. They are grouped alongside the defines and
// answered by the leaf appliers.
func (p *Processor) findAndAnswer(qs []keys.Query, rs *keys.ResultSet) bool {
	n := len(qs)
	for i := range p.perW {
		p.perW[i].groups = p.perW[i].groups[:0]
		p.perW[i].paths.reset()
		p.perW[i].finder.reset(p)
	}
	p.pool.Run(func(tid int) {
		lo, hi := p.pool.Range(tid, n)
		w := &p.perW[tid]
		var leaf *btree.Node
		for i := lo; i < hi; i++ {
			if i == lo || qs[i].Key != qs[i-1].Key {
				leaf = w.finder.find(qs[i].Key)
			}
			if qs[i].Op == keys.OpSearch && !qs[i].LeafAnswer {
				v, ok := p.probeLeaf(leaf, qs[i].Key)
				rs.Set(qs[i].Idx, v, ok)
				w.leafOps++
				continue
			}
			// Defining query (or a LeafAnswer search riding with one):
			// group it. Groups may span searches of neighboring keys;
			// evalGroup skips already-answered searches when
			// answerDuringFind.
			if len(w.groups) > 0 && w.groups[len(w.groups)-1].leaf == leaf {
				w.groups[len(w.groups)-1].hi = i + 1
			} else {
				w.groups = append(w.groups, leafGroup{leaf: leaf, path: w.paths.clone(&w.finder.path), lo: i, hi: i + 1})
			}
		}
	})

	p.groups = p.groups[:0]
	for t := range p.perW {
		for _, g := range p.perW[t].groups {
			if len(p.groups) > 0 && p.groups[len(p.groups)-1].leaf == g.leaf {
				p.groups[len(p.groups)-1].hi = g.hi
			} else {
				p.groups = append(p.groups, g)
			}
		}
	}
	return len(p.groups) > 0
}
