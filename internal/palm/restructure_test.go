package palm

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
)

func TestRebuildSeps(t *testing.T) {
	l1 := &btree.Node{Keys: []keys.Key{1, 2}, Vals: []keys.Value{1, 2}}
	l2 := &btree.Node{Keys: []keys.Key{5, 6}, Vals: []keys.Value{5, 6}}
	l3 := &btree.Node{Keys: []keys.Key{9}, Vals: []keys.Value{9}}
	seps := rebuildSeps(nil, []*btree.Node{l1, l2, l3})
	if len(seps) != 2 || seps[0] != 5 || seps[1] != 9 {
		t.Fatalf("seps = %v, want [5 9]", seps)
	}
}

func TestRebuildSepsDeepSubtree(t *testing.T) {
	leaf := &btree.Node{Keys: []keys.Key{42}, Vals: []keys.Value{42}}
	inner := &btree.Node{Keys: []keys.Key{50}, Children: []*btree.Node{leaf, {Keys: []keys.Key{60}, Vals: []keys.Value{60}}}}
	first := &btree.Node{Keys: []keys.Key{1}, Vals: []keys.Value{1}}
	seps := rebuildSeps(nil, []*btree.Node{first, inner})
	if len(seps) != 1 || seps[0] != 42 {
		t.Fatalf("seps = %v, want [42] (min of deep subtree)", seps)
	}
}

func TestMinKey(t *testing.T) {
	leaf := &btree.Node{Keys: []keys.Key{7, 9}, Vals: []keys.Value{7, 9}}
	if got := minKey(leaf); got != 7 {
		t.Fatalf("minKey(leaf) = %d", got)
	}
	root := &btree.Node{
		Keys: []keys.Key{100},
		Children: []*btree.Node{
			{Keys: []keys.Key{50}, Children: []*btree.Node{leaf, {Keys: []keys.Key{60}, Vals: []keys.Value{60}}}},
			{Keys: []keys.Key{200}, Vals: []keys.Value{200}},
		},
	}
	if got := minKey(root); got != 7 {
		t.Fatalf("minKey(root) = %d", got)
	}
}

func TestSplitInternalMulti(t *testing.T) {
	// A node with 10 children at maxChildren 4 must split into 3
	// balanced pieces reusing the original node as piece 0.
	children := make([]*btree.Node, 10)
	for i := range children {
		children[i] = &btree.Node{Keys: []keys.Key{keys.Key(i * 10)}, Vals: []keys.Value{0}}
	}
	n := &btree.Node{Children: append([]*btree.Node(nil), children...)}
	n.Keys = rebuildSeps(nil, n.Children)

	pieces := splitInternalMulti(n, 4)
	if len(pieces) != 3 {
		t.Fatalf("pieces = %d, want 3", len(pieces))
	}
	if pieces[0] != n {
		t.Fatal("piece 0 must reuse the node")
	}
	total := 0
	var all []*btree.Node
	for _, p := range pieces {
		if len(p.Children) > 4 || len(p.Children) == 0 {
			t.Fatalf("piece has %d children", len(p.Children))
		}
		if len(p.Keys) != len(p.Children)-1 {
			t.Fatalf("piece has %d keys for %d children", len(p.Keys), len(p.Children))
		}
		total += len(p.Children)
		all = append(all, p.Children...)
	}
	if total != 10 {
		t.Fatalf("children total %d", total)
	}
	for i, c := range all {
		if c != children[i] {
			t.Fatalf("child order broken at %d", i)
		}
	}
}

func TestFinalizeRootSingleReplacement(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 1}, nil)
	defer p.Close()
	leaf := &btree.Node{Keys: []keys.Key{1}, Vals: []keys.Value{1}}
	p.finalizeRoot(&modRequest{repl: []*btree.Node{leaf}})
	if p.Tree().Root() != leaf {
		t.Fatal("single replacement must become the root")
	}
}

func TestFinalizeRootMultiLevelGrowth(t *testing.T) {
	p, _ := New(Config{Order: 3, Workers: 1}, nil)
	defer p.Close()
	// 10 leaf pieces at order 3 require two new internal levels.
	pieces := make([]*btree.Node, 10)
	for i := range pieces {
		pieces[i] = &btree.Node{Keys: []keys.Key{keys.Key(i * 5)}, Vals: []keys.Value{keys.Value(i)}}
		if i > 0 {
			pieces[i-1].Next = pieces[i]
		}
	}
	p.finalizeRoot(&modRequest{repl: pieces})
	p.Tree().AddSize(10)
	if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatal(err)
	}
	// 10 leaves at fanout <= 3 need ceil(10/3)=4, then 2, then 1
	// internal nodes: three internal levels above the leaves.
	if h := p.Tree().Height(); h != 4 {
		t.Fatalf("height = %d, want 4", h)
	}
	for i := 0; i < 10; i++ {
		if v, ok := p.Tree().Search(keys.Key(i * 5)); !ok || v != keys.Value(i) {
			t.Fatalf("Search(%d) = %d,%v", i*5, v, ok)
		}
	}
}

func TestFinalizeRootEmptiedInternalRoot(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 1}, nil)
	defer p.Close()
	// Force an internal root, then simulate it emptying.
	batch := make([]keys.Query, 100)
	for i := range batch {
		batch[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	p.ProcessBatch(keys.Number(batch), keys.NewResultSet(len(batch)))
	if p.Tree().Root().Leaf() {
		t.Fatal("expected internal root after 100 inserts at order 4")
	}
	p.finalizeRoot(&modRequest{repl: nil})
	if !p.Tree().Root().Leaf() || p.Tree().Root().Len() != 0 {
		t.Fatal("emptied internal root must reset to an empty leaf")
	}
}

func TestRelinkLeavesRepairsChain(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 1}, nil)
	defer p.Close()
	batch := make([]keys.Query, 200)
	for i := range batch {
		batch[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	p.ProcessBatch(keys.Number(batch), keys.NewResultSet(len(batch)))

	// Sabotage the chain, then repair.
	root := p.Tree().Root()
	first := root
	for !first.Leaf() {
		first = first.Children[0]
	}
	first.Next = nil
	p.relinkLeaves()
	if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatalf("after relink: %v", err)
	}
}

func TestRestructurePanicsOnMismatchedSlot(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 1}, nil)
	defer p.Close()
	parent := &btree.Node{
		Keys:     []keys.Key{10},
		Children: []*btree.Node{{Keys: []keys.Key{1}, Vals: []keys.Value{1}}, {Keys: []keys.Key{10}, Vals: []keys.Value{10}}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slot must panic (internal invariant)")
		}
	}()
	w := &p.perW[0]
	p.applyToParent([]modRequest{{parent: parent, slot: 99, level: 0, path: &btree.Path{Nodes: []*btree.Node{parent}, Slots: []int{99}}}}, w)
}
