package palm

import (
	"math"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/stats"
)

func TestSingleKeyBatch(t *testing.T) {
	// Every query on one key: one group, one thread does all the work,
	// same-key order must hold exactly.
	p, _ := New(Config{Order: 4, Workers: 8, LoadBalance: true}, nil)
	defer p.Close()
	n := 999
	batch := make([]keys.Query, n)
	for i := range batch {
		switch i % 3 {
		case 0:
			batch[i] = keys.Insert(5, keys.Value(i))
		case 1:
			batch[i] = keys.Search(5)
		default:
			batch[i] = keys.Delete(5)
		}
	}
	keys.Number(batch)
	rs := keys.NewResultSet(n)
	p.ProcessBatch(batch, rs)
	for i := 1; i < n; i += 3 {
		r, ok := rs.Get(int32(i))
		if !ok {
			t.Fatalf("no result at %d", i)
		}
		// Search at i follows insert at i-1.
		if !r.Found || r.Value != keys.Value(i-1) {
			t.Fatalf("search %d = %+v, want value %d", i, r, i-1)
		}
	}
	// Sequence ends with ... I(n-3), S, D -> key absent.
	if _, ok := p.Tree().Search(5); ok {
		t.Fatal("key should have been deleted by the final delete")
	}
}

func TestMoreWorkersThanQueries(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 16, LoadBalance: true}, nil)
	defer p.Close()
	batch := keys.Number([]keys.Query{
		keys.Insert(1, 1), keys.Insert(2, 2), keys.Search(1),
	})
	rs := keys.NewResultSet(len(batch))
	p.ProcessBatch(batch, rs)
	if r, ok := rs.Get(2); !ok || !r.Found || r.Value != 1 {
		t.Fatalf("search = %+v, %v", r, ok)
	}
	if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeKeyValues(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 2, LoadBalance: true}, nil)
	defer p.Close()
	maxK := keys.Key(math.MaxUint64)
	batch := keys.Number([]keys.Query{
		keys.Insert(0, 10),
		keys.Insert(maxK, 20),
		keys.Insert(maxK-1, 30),
		keys.Search(0),
		keys.Search(maxK),
	})
	rs := keys.NewResultSet(len(batch))
	p.ProcessBatch(batch, rs)
	if r, _ := rs.Get(3); !r.Found || r.Value != 10 {
		t.Fatalf("Search(0) = %+v", r)
	}
	if r, _ := rs.Get(4); !r.Found || r.Value != 20 {
		t.Fatalf("Search(max) = %+v", r)
	}
	if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedBatchesGrowAndShrink(t *testing.T) {
	// Alternating grow/shrink cycles stress split+remove interplay and
	// scratch reuse across batches.
	p, _ := New(Config{Order: 3, Workers: 3, LoadBalance: true}, nil)
	defer p.Close()
	const n = 1500
	for cycle := 0; cycle < 4; cycle++ {
		grow := make([]keys.Query, n)
		for i := range grow {
			grow[i] = keys.Insert(keys.Key(i), keys.Value(cycle*10+i))
		}
		p.ProcessBatch(keys.Number(grow), keys.NewResultSet(n))
		if p.Tree().Len() != n {
			t.Fatalf("cycle %d: Len = %d after grow", cycle, p.Tree().Len())
		}
		shrink := make([]keys.Query, n/2)
		for i := range shrink {
			shrink[i] = keys.Delete(keys.Key(i * 2))
		}
		p.ProcessBatch(keys.Number(shrink), keys.NewResultSet(n/2))
		if p.Tree().Len() != n/2 {
			t.Fatalf("cycle %d: Len = %d after shrink", cycle, p.Tree().Len())
		}
		if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func TestProcessTransformedEmptyAndSearchOnly(t *testing.T) {
	p, _ := New(Config{Order: 8, Workers: 2, LoadBalance: true}, nil)
	defer p.Close()
	p.ProcessTransformed(nil, keys.NewResultSet(0))

	seed := keys.Number([]keys.Query{keys.Insert(1, 11)})
	p.ProcessBatch(seed, keys.NewResultSet(1))

	// Search-only transformed batch: stages 2/3 must not run.
	qs := keys.Number([]keys.Query{keys.Search(1), keys.Search(2)})
	keys.SortByKey(qs)
	rs := keys.NewResultSet(len(qs))
	p.ProcessTransformed(qs, rs)
	if r, _ := rs.Get(0); !r.Found || r.Value != 11 {
		t.Fatalf("transformed search = %+v", r)
	}
	if r, ok := rs.Get(1); !ok || r.Found {
		t.Fatalf("transformed miss = %+v, %v", r, ok)
	}
	st := p.Stats()
	if st.Elapsed[stats.StageEvaluate]+st.Elapsed[stats.StageModify] != 0 {
		t.Fatal("stage 2/3 ran for a search-only transformed batch")
	}
}

func TestCompareSortModeMatchesRadix(t *testing.T) {
	// Same batch through radix-sorting and comparison-sorting
	// processors must produce identical results and trees.
	mk := func(cmp bool) (*Processor, *keys.ResultSet, []keys.Query) {
		p, _ := New(Config{Order: 8, Workers: 3, LoadBalance: true, CompareSort: cmp}, nil)
		batch := make([]keys.Query, 5000)
		for i := range batch {
			k := keys.Key((i * 2654435761) % 700)
			switch i % 3 {
			case 0:
				batch[i] = keys.Insert(k, keys.Value(i))
			case 1:
				batch[i] = keys.Search(k)
			default:
				batch[i] = keys.Delete(k)
			}
		}
		keys.Number(batch)
		rs := keys.NewResultSet(len(batch))
		p.ProcessBatch(batch, rs)
		return p, rs, batch
	}
	p1, rs1, _ := mk(false)
	defer p1.Close()
	p2, rs2, _ := mk(true)
	defer p2.Close()
	for i := int32(0); i < int32(rs1.Len()); i++ {
		a, aok := rs1.Get(i)
		b, bok := rs2.Get(i)
		if aok != bok || a != b {
			t.Fatalf("result %d: radix %+v(%v) vs merge %+v(%v)", i, a, aok, b, bok)
		}
	}
	k1, v1 := p1.Tree().Dump()
	k2, v2 := p2.Tree().Dump()
	if len(k1) != len(k2) {
		t.Fatalf("tree sizes %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] || v1[i] != v2[i] {
			t.Fatalf("tree mismatch at %d", i)
		}
	}
}
