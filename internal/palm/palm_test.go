package palm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// runDifferential feeds the same query stream, split into batches, to a
// PALM processor and to the oracle, comparing search results after each
// batch and the full tree contents at the end.
func runDifferential(t *testing.T, cfg Config, batches [][]keys.Query) {
	t.Helper()
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	o := oracle.New()

	for bi, batch := range batches {
		keys.Number(batch)
		want := keys.NewResultSet(len(batch))
		o.ApplyAll(batch, want)

		got := keys.NewResultSet(len(batch))
		p.ProcessBatch(batch, got)

		for i := 0; i < len(batch); i++ {
			w, wok := want.Get(int32(i))
			g, gok := got.Get(int32(i))
			if wok != gok || w != g {
				t.Fatalf("batch %d query %d: got %+v (%v), want %+v (%v)", bi, i, g, gok, w, wok)
			}
		}
		if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}

	gk, gv := p.Tree().Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("final dump sizes: got %d, want %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("final dump mismatch at %d: (%d,%d) vs (%d,%d)", i, gk[i], gv[i], wk[i], wv[i])
		}
	}
	if p.Tree().Len() != o.Len() {
		t.Fatalf("Len %d, oracle %d", p.Tree().Len(), o.Len())
	}
}

func randomBatches(r *rand.Rand, nBatches, batchSize, keyspace int, updateRatio float64) [][]keys.Query {
	out := make([][]keys.Query, nBatches)
	for b := range out {
		batch := make([]keys.Query, batchSize)
		for i := range batch {
			k := keys.Key(r.Intn(keyspace))
			if r.Float64() < updateRatio {
				if r.Intn(2) == 0 {
					batch[i] = keys.Insert(k, keys.Value(r.Uint64()))
				} else {
					batch[i] = keys.Delete(k)
				}
			} else {
				batch[i] = keys.Search(k)
			}
		}
		out[b] = batch
	}
	return out
}

func TestProcessBatchEmpty(t *testing.T) {
	p, err := New(Config{Order: 8, Workers: 2, LoadBalance: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rs := keys.NewResultSet(0)
	p.ProcessBatch(nil, rs)
	if p.Tree().Len() != 0 {
		t.Fatal("empty batch changed tree")
	}
}

func TestProcessBatchSingleInsert(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 2, LoadBalance: true}, nil)
	defer p.Close()
	batch := keys.Number([]keys.Query{keys.Insert(42, 99)})
	p.ProcessBatch(batch, keys.NewResultSet(1))
	if v, ok := p.Tree().Search(42); !ok || v != 99 {
		t.Fatalf("Search(42) = %d,%v", v, ok)
	}
}

func TestProcessBatchMassInsertSplits(t *testing.T) {
	for _, order := range []int{3, 4, 16} {
		for _, workers := range []int{1, 2, 5} {
			p, _ := New(Config{Order: order, Workers: workers, LoadBalance: true}, nil)
			n := 5000
			batch := make([]keys.Query, n)
			for i := range batch {
				batch[i] = keys.Insert(keys.Key(i), keys.Value(i*3))
			}
			// Shuffle so the batch is unsorted on arrival.
			r := rand.New(rand.NewSource(int64(order*10 + workers)))
			r.Shuffle(n, func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
			keys.Number(batch)
			p.ProcessBatch(batch, keys.NewResultSet(n))
			if p.Tree().Len() != n {
				t.Fatalf("order=%d workers=%d: Len = %d, want %d", order, workers, p.Tree().Len(), n)
			}
			if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
				t.Fatalf("order=%d workers=%d: %v", order, workers, err)
			}
			for i := 0; i < n; i += 97 {
				if v, ok := p.Tree().Search(keys.Key(i)); !ok || v != keys.Value(i*3) {
					t.Fatalf("Search(%d) = %d,%v", i, v, ok)
				}
			}
			p.Close()
		}
	}
}

func TestProcessBatchMassDeleteEmptiesTree(t *testing.T) {
	p, _ := New(Config{Order: 4, Workers: 3, LoadBalance: true}, nil)
	defer p.Close()
	n := 3000
	ins := make([]keys.Query, n)
	for i := range ins {
		ins[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	p.ProcessBatch(keys.Number(ins), keys.NewResultSet(n))

	del := make([]keys.Query, n)
	for i := range del {
		del[i] = keys.Delete(keys.Key(i))
	}
	p.ProcessBatch(keys.Number(del), keys.NewResultSet(n))
	if p.Tree().Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Tree().Len())
	}
	if err := p.Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatal(err)
	}
	// Tree should be usable again afterwards.
	p.ProcessBatch(keys.Number([]keys.Query{keys.Insert(7, 7)}), keys.NewResultSet(1))
	if v, ok := p.Tree().Search(7); !ok || v != 7 {
		t.Fatalf("Search(7) = %d,%v", v, ok)
	}
}

func TestSameKeyOrderWithinBatch(t *testing.T) {
	// Mixed ops on one key: serial order must be preserved.
	p, _ := New(Config{Order: 4, Workers: 4, LoadBalance: true}, nil)
	defer p.Close()
	batch := keys.Number([]keys.Query{
		keys.Search(1),     // not found
		keys.Insert(1, 10), //
		keys.Search(1),     // 10
		keys.Insert(1, 20), //
		keys.Search(1),     // 20
		keys.Delete(1),     //
		keys.Search(1),     // not found
		keys.Insert(1, 30), //
		keys.Search(1),     // 30
	})
	rs := keys.NewResultSet(len(batch))
	p.ProcessBatch(batch, rs)
	checks := []struct {
		idx   int32
		found bool
		v     keys.Value
	}{{0, false, 0}, {2, true, 10}, {4, true, 20}, {6, false, 0}, {8, true, 30}}
	for _, c := range checks {
		r, ok := rs.Get(c.idx)
		if !ok {
			t.Fatalf("no result for %d", c.idx)
		}
		if r.Found != c.found || (c.found && r.Value != c.v) {
			t.Fatalf("idx %d: got %+v, want found=%v v=%d", c.idx, r, c.found, c.v)
		}
	}
}

func TestDifferentialRandomMixed(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		r := rand.New(rand.NewSource(int64(workers)))
		batches := randomBatches(r, 6, 4000, 800, 0.5)
		runDifferential(t, Config{Order: 8, Workers: workers, LoadBalance: true}, batches)
	}
}

func TestDifferentialSkewedKeys(t *testing.T) {
	// Heavy skew: most queries hit few keys, maximizing same-leaf and
	// same-key contention.
	r := rand.New(rand.NewSource(3))
	batches := make([][]keys.Query, 4)
	for b := range batches {
		batch := make([]keys.Query, 3000)
		for i := range batch {
			var k keys.Key
			if r.Intn(10) < 8 {
				k = keys.Key(r.Intn(5)) // 80% on 5 keys
			} else {
				k = keys.Key(r.Intn(1000))
			}
			switch r.Intn(3) {
			case 0:
				batch[i] = keys.Search(k)
			case 1:
				batch[i] = keys.Insert(k, keys.Value(r.Uint64()))
			default:
				batch[i] = keys.Delete(k)
			}
		}
		batches[b] = batch
	}
	runDifferential(t, Config{Order: 4, Workers: 4, LoadBalance: true}, batches)
}

func TestDifferentialDeleteHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var batches [][]keys.Query
	// Seed inserts, then delete-heavy batches to force empty leaves.
	seed := make([]keys.Query, 2000)
	for i := range seed {
		seed[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	batches = append(batches, seed)
	for b := 0; b < 3; b++ {
		batch := make([]keys.Query, 2000)
		for i := range batch {
			k := keys.Key(r.Intn(2000))
			if r.Intn(10) < 7 {
				batch[i] = keys.Delete(k)
			} else if r.Intn(2) == 0 {
				batch[i] = keys.Search(k)
			} else {
				batch[i] = keys.Insert(k, keys.Value(r.Uint64()))
			}
		}
		batches = append(batches, batch)
	}
	runDifferential(t, Config{Order: 4, Workers: 4, LoadBalance: true}, batches)
}

func TestDifferentialNoLoadBalance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	batches := randomBatches(r, 4, 2500, 400, 0.4)
	runDifferential(t, Config{Order: 8, Workers: 4, LoadBalance: false}, batches)
}

func TestDifferentialPreSorted(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	batches := randomBatches(r, 3, 2000, 500, 0.5)
	for _, b := range batches {
		keys.Number(b)
		keys.SortByKey(b)
	}
	// Oracle must see the same (sorted) order the processor does.
	runDifferential(t, Config{Order: 8, Workers: 4, LoadBalance: true, PreSorted: true}, batches)
}

func TestFindAndAnswerSearches(t *testing.T) {
	p, _ := New(Config{Order: 8, Workers: 4, LoadBalance: true}, nil)
	defer p.Close()
	n := 2000
	ins := make([]keys.Query, n)
	for i := range ins {
		ins[i] = keys.Insert(keys.Key(i*2), keys.Value(i))
	}
	p.ProcessBatch(keys.Number(ins), keys.NewResultSet(n))

	qs := make([]keys.Query, 500)
	for i := range qs {
		qs[i] = keys.Search(keys.Key(i * 7 % (2 * n)))
	}
	keys.Number(qs)
	keys.SortByKey(qs)
	rs := keys.NewResultSet(len(qs))
	p.FindAndAnswerSearches(qs, rs)
	for _, q := range qs {
		r, ok := rs.Get(q.Idx)
		if !ok {
			t.Fatalf("no result for %v", q)
		}
		wantFound := q.Key%2 == 0 && q.Key < keys.Key(2*n)
		if r.Found != wantFound {
			t.Fatalf("Search(%d): found=%v, want %v", q.Key, r.Found, wantFound)
		}
		if wantFound && r.Value != keys.Value(q.Key/2) {
			t.Fatalf("Search(%d) = %d, want %d", q.Key, r.Value, q.Key/2)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	p, _ := New(Config{Order: 8, Workers: 2, LoadBalance: true}, nil)
	defer p.Close()
	batch := randomBatches(rand.New(rand.NewSource(1)), 1, 3000, 500, 0.5)[0]
	keys.Number(batch)
	p.ProcessBatch(batch, keys.NewResultSet(len(batch)))
	st := p.Stats()
	if st.BatchSize != 3000 || st.RemainingQueries != 3000 {
		t.Fatalf("stats sizes: %+v", st)
	}
	var leafOps int64
	for _, v := range st.LeafOps {
		leafOps += v
	}
	if leafOps != 3000 {
		t.Fatalf("leaf ops = %d, want 3000", leafOps)
	}
	if st.Elapsed[0] == 0 && st.TotalElapsed() == 0 {
		t.Fatal("no stage timings recorded")
	}
}

// Property test: any random batch sequence leaves the tree equal to the
// oracle.
func TestDifferentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := New(Config{Order: 3 + r.Intn(8), Workers: 1 + r.Intn(6), LoadBalance: r.Intn(2) == 0}, nil)
		defer p.Close()
		o := oracle.New()
		for b := 0; b < 3; b++ {
			n := 200 + r.Intn(1500)
			batch := make([]keys.Query, n)
			for i := range batch {
				k := keys.Key(r.Intn(300))
				switch r.Intn(3) {
				case 0:
					batch[i] = keys.Search(k)
				case 1:
					batch[i] = keys.Insert(k, keys.Value(r.Uint64()))
				default:
					batch[i] = keys.Delete(k)
				}
			}
			keys.Number(batch)
			want := keys.NewResultSet(n)
			o.ApplyAll(batch, want)
			got := keys.NewResultSet(n)
			p.ProcessBatch(batch, got)
			for i := int32(0); i < int32(n); i++ {
				w, wok := want.Get(i)
				g, gok := got.Get(i)
				if wok != gok || w != g {
					return false
				}
			}
			if p.Tree().Validate(btree.RelaxedFill) != nil {
				return false
			}
		}
		gk, _ := p.Tree().Dump()
		wk, _ := o.Dump()
		if len(gk) != len(wk) {
			return false
		}
		for i := range gk {
			if gk[i] != wk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLeafMulti(t *testing.T) {
	leaf := &btree.Node{}
	for i := 0; i < 25; i++ {
		leaf.Keys = append(leaf.Keys, keys.Key(i))
		leaf.Vals = append(leaf.Vals, keys.Value(i))
	}
	tail := &btree.Node{Keys: []keys.Key{100}, Vals: []keys.Value{100}}
	leaf.Next = tail
	pieces := splitLeafMulti(leaf, 7)
	if len(pieces) != 4 { // ceil(25/7)
		t.Fatalf("pieces = %d, want 4", len(pieces))
	}
	if pieces[0] != leaf {
		t.Fatal("first piece must reuse the original node")
	}
	// Chain and contents.
	var got []keys.Key
	for n := pieces[0]; n != tail; n = n.Next {
		if len(n.Keys) > 7 || len(n.Keys) == 0 {
			t.Fatalf("piece size %d out of range", len(n.Keys))
		}
		got = append(got, n.Keys...)
	}
	if len(got) != 25 {
		t.Fatalf("total keys %d, want 25", len(got))
	}
	for i, k := range got {
		if k != keys.Key(i) {
			t.Fatalf("keys out of order: %v", got)
		}
	}
}

func TestAssignGroupsCoversAllGroups(t *testing.T) {
	p, _ := New(Config{Order: 8, Workers: 4, LoadBalance: true}, nil)
	defer p.Close()
	// Synthesize skewed groups: one giant, many tiny.
	p.groups = p.groups[:0]
	p.groups = append(p.groups, leafGroup{lo: 0, hi: 1000})
	for i := 0; i < 20; i++ {
		p.groups = append(p.groups, leafGroup{lo: 1000 + i, hi: 1001 + i})
	}
	assign := p.assignGroups()
	prev := 0
	for t2, a := range assign {
		if a[0] != prev {
			t.Fatalf("worker %d starts at %d, want %d", t2, a[0], prev)
		}
		prev = a[1]
	}
	if prev != len(p.groups) {
		t.Fatalf("assignment covers %d groups, want %d", prev, len(p.groups))
	}
}

func BenchmarkPalmMixedBatch(b *testing.B) {
	p, _ := New(Config{Order: btree.DefaultOrder, Workers: 0, LoadBalance: true}, nil)
	defer p.Close()
	r := rand.New(rand.NewSource(1))
	const n = 1 << 17
	seed := make([]keys.Query, n)
	for i := range seed {
		seed[i] = keys.Insert(keys.Key(r.Uint64()%(4*n)), keys.Value(i))
	}
	p.ProcessBatch(keys.Number(seed), keys.NewResultSet(n))
	batch := make([]keys.Query, n)
	rs := keys.NewResultSet(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range batch {
			k := keys.Key(r.Uint64() % (4 * n))
			switch r.Intn(4) {
			case 0:
				batch[j] = keys.Insert(k, keys.Value(j))
			case 1:
				batch[j] = keys.Delete(k)
			default:
				batch[j] = keys.Search(k)
			}
		}
		keys.Number(batch)
		rs.Reset(n)
		b.StartTimer()
		p.ProcessBatch(batch, rs)
	}
	b.SetBytes(n)
}
