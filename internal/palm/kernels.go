package palm

// Sorted-batch tree kernels (DESIGN.md §8). A key-sorted batch gives
// the tree stages structure that per-query code cannot see:
//
//   - Stage 1 visits leaves in strictly ascending key order against a
//     tree that is read-only until Stage 2, so the previous descent
//     path stays valid and most queries resolve with a fence check
//     instead of a root-to-leaf walk (finder, below).
//   - All node probes take the shared branchless kernels in
//     internal/btree instead of closure-based sort.Search.
//   - A leaf group is a sorted run of queries against a sorted leaf,
//     so Stage 2 can apply the whole group in one merge pass instead
//     of a binary search plus O(n) memmove per query (evalGroupMerge,
//     in palm.go).
//
// Each kernel has an ablation flag in Config (NoPathReuse,
// NoBranchlessSearch, NoMergeApply) that restores the pre-kernel code
// path, keeping the win benchmarkable and differentially testable.

import (
	"repro/internal/btree"
	"repro/internal/keys"
)

// probeGE returns the index of the first key in ks >= k, honoring the
// branchless-search ablation.
func (p *Processor) probeGE(ks []keys.Key, k keys.Key) int {
	if p.cfg.NoBranchlessSearch {
		return btree.SearchGEClosure(ks, k)
	}
	return btree.SearchGE(ks, k)
}

// probeChild returns the child slot of an internal node covering k,
// honoring the branchless-search ablation.
func (p *Processor) probeChild(ks []keys.Key, k keys.Key) int {
	if p.cfg.NoBranchlessSearch {
		return btree.SearchGTClosure(ks, k)
	}
	return btree.SearchGT(ks, k)
}

// probeLeaf looks k up within a leaf, honoring the branchless-search
// ablation.
func (p *Processor) probeLeaf(leaf *btree.Node, k keys.Key) (keys.Value, bool) {
	if p.cfg.NoBranchlessSearch {
		return btree.LeafFindClosure(leaf, k)
	}
	return btree.LeafFind(leaf, k)
}

// finder locates the leaf covering each key of an ascending probe
// sequence, reusing the previous root-to-leaf path (path-reuse descent,
// §IV-E/§V-A exploitation of pre-sorting): alongside the path it
// records, per level, the cumulative key range [low, high) of the
// subtree entered there — the "fences". If the next key still falls
// inside the current leaf's fences the descent is skipped entirely; if
// not, the finder climbs the recorded path to the lowest level whose
// fences still cover the key and re-descends only the changed suffix.
//
// Correctness rests on the tree being read-only while the finder is in
// use: Stage 1 (and the find-and-answer fast path) only read the tree,
// and all structural modification happens in the later, barrier-
// separated Stages 2-3, after which the finder is reset. The fences are
// exact (derived from the separators actually passed, intersected down
// the path), so reuse never returns a different leaf than a fresh root
// descent — the property differentially enforced by the kernel tests.
//
// A finder is per-worker scratch: arrays keep their capacity across
// batches, so steady-state descents allocate nothing.
type finder struct {
	proc *Processor
	path btree.Path  // root-to-leaf internal path of the current leaf
	leaf *btree.Node // current leaf; nil before the first descent
	// Cumulative fences of the subtree entered at each path level.
	// hasLow/hasHigh distinguish "unbounded" (edge of the tree) from a
	// real separator, so no key value is sacrificed as a sentinel.
	low, high       []keys.Key
	hasLow, hasHigh []bool
	fenceHits       int64 // descents skipped entirely (stats)
}

// reset invalidates the finder for a fresh batch (the tree may have
// been restructured since the last one). Backing arrays are kept.
func (f *finder) reset(p *Processor) {
	f.proc = p
	f.leaf = nil
	f.path.Reset()
	f.low = f.low[:0]
	f.high = f.high[:0]
	f.hasLow = f.hasLow[:0]
	f.hasHigh = f.hasHigh[:0]
}

// covers reports whether the subtree entered at path level lvl covers k.
func (f *finder) covers(lvl int, k keys.Key) bool {
	if f.hasLow[lvl] && k < f.low[lvl] {
		return false
	}
	if f.hasHigh[lvl] && k >= f.high[lvl] {
		return false
	}
	return true
}

// find returns the leaf covering k. After find returns, f.path holds
// the leaf's full root-to-leaf internal path (as btree.Tree.FindLeaf
// would record it).
func (f *finder) find(k keys.Key) *btree.Node {
	p := f.proc
	if p.cfg.NoPathReuse || f.leaf == nil {
		return f.descendFrom(p.tree.Root(), 0, k)
	}
	d := f.path.Len()
	// Fence ranges are nested (level l+1's range is contained in level
	// l's), so the levels still covering k form a prefix of the path:
	// climb from the bottom to the deepest covering level.
	lvl := d - 1
	for lvl >= 0 && !f.covers(lvl, k) {
		lvl--
	}
	if lvl == d-1 {
		// The current leaf's fences still cover k — no descent at all.
		// (d == 0 means the root is a leaf, which covers every key.)
		f.fenceHits++
		return f.leaf
	}
	if lvl < 0 {
		return f.descendFrom(p.tree.Root(), 0, k)
	}
	// The child entered at level lvl covers k; redo only the suffix.
	return f.descendFrom(f.path.Nodes[lvl].Children[f.path.Slots[lvl]], lvl+1, k)
}

// evalGroupSerial applies a leaf group's queries one at a time, each
// with an intra-leaf binary search and (for inserts/deletes) an O(n)
// memmove — the pre-kernel Stage-2 code path, kept as the merge-apply
// ablation baseline.
func (p *Processor) evalGroupSerial(g *leafGroup, qs []keys.Query, rs *keys.ResultSet, w *workerScratch, answerDuringFind bool) {
	leaf := g.leaf
	for i := g.lo; i < g.hi; i++ {
		q := qs[i]
		switch q.Op {
		case keys.OpSearch:
			if !answerDuringFind || q.LeafAnswer {
				v, ok := p.probeLeaf(leaf, q.Key)
				rs.Set(q.Idx, v, ok)
			}
		case keys.OpInsert:
			j := p.probeGE(leaf.Keys, q.Key)
			if j < len(leaf.Keys) && leaf.Keys[j] == q.Key {
				leaf.Vals[j] = q.Value
			} else {
				w.shiftedSlots += int64(len(leaf.Keys) - j)
				leaf.Keys = append(leaf.Keys, 0)
				leaf.Vals = append(leaf.Vals, 0)
				copy(leaf.Keys[j+1:], leaf.Keys[j:])
				copy(leaf.Vals[j+1:], leaf.Vals[j:])
				leaf.Keys[j] = q.Key
				leaf.Vals[j] = q.Value
				w.sizeDelta++
			}
		case keys.OpDelete:
			j := p.probeGE(leaf.Keys, q.Key)
			if j < len(leaf.Keys) && leaf.Keys[j] == q.Key {
				w.shiftedSlots += int64(len(leaf.Keys) - j - 1)
				leaf.Keys = append(leaf.Keys[:j], leaf.Keys[j+1:]...)
				leaf.Vals = append(leaf.Vals[:j], leaf.Vals[j+1:]...)
				w.sizeDelta--
			}
		case keys.OpRMW:
			j := p.probeGE(leaf.Keys, q.Key)
			if j < len(leaf.Keys) && leaf.Keys[j] == q.Key {
				old := leaf.Vals[j]
				rs.Set(q.Idx, old, true)
				if q.RMW == keys.RMWAdd {
					leaf.Vals[j] = old + q.Value
				}
			} else {
				// Absent: both kinds insert q.Value (old+delta with
				// old == 0, or the set-if-absent operand).
				rs.Set(q.Idx, 0, false)
				w.shiftedSlots += int64(len(leaf.Keys) - j)
				leaf.Keys = append(leaf.Keys, 0)
				leaf.Vals = append(leaf.Vals, 0)
				copy(leaf.Keys[j+1:], leaf.Keys[j:])
				copy(leaf.Vals[j+1:], leaf.Vals[j:])
				leaf.Keys[j] = q.Key
				leaf.Vals[j] = q.Value
				w.sizeDelta++
			}
		}
		w.leafOps++
	}
}

// evalGroupMerge applies a whole leaf group in a single merge pass: the
// group's queries and the leaf's entries are both sorted by key, so one
// forward sweep rebuilds the leaf's key/value arrays in per-worker
// scratch and copies them back — no per-query binary search and no
// per-insert/delete memmove. Serial in-batch semantics are preserved by
// consulting the rebuilt tail for same-key query runs: a search after
// an insert of the same key sees the new value, after a delete sees an
// absent key, exactly as the one-at-a-time path would.
func (p *Processor) evalGroupMerge(g *leafGroup, qs []keys.Query, rs *keys.ResultSet, w *workerScratch, answerDuringFind bool) {
	leaf := g.leaf
	lk, lv := leaf.Keys, leaf.Vals
	mk, mv := w.mergeKeys[:0], w.mergeVals[:0]
	li := 0
	for i := g.lo; i < g.hi; i++ {
		q := qs[i]
		k := q.Key
		for li < len(lk) && lk[li] < k {
			mk = append(mk, lk[li])
			mv = append(mv, lv[li])
			li++
		}
		// If the previous query in this group had the same key, its
		// outcome is the tail of the rebuilt run — in-batch visibility.
		tailIsK := len(mk) > 0 && mk[len(mk)-1] == k
		switch q.Op {
		case keys.OpSearch:
			if !answerDuringFind || q.LeafAnswer {
				switch {
				case tailIsK:
					rs.Set(q.Idx, mv[len(mv)-1], true)
				case li < len(lk) && lk[li] == k:
					rs.Set(q.Idx, lv[li], true)
				default:
					rs.Set(q.Idx, 0, false)
				}
			}
		case keys.OpInsert:
			switch {
			case tailIsK: // overwrite the value this batch just wrote
				mv[len(mv)-1] = q.Value
			case li < len(lk) && lk[li] == k: // replace existing entry
				mk = append(mk, k)
				mv = append(mv, q.Value)
				li++
			default: // genuinely new key
				mk = append(mk, k)
				mv = append(mv, q.Value)
				w.sizeDelta++
			}
		case keys.OpDelete:
			switch {
			case tailIsK: // remove the entry this batch just wrote
				mk = mk[:len(mk)-1]
				mv = mv[:len(mv)-1]
				w.sizeDelta--
			case li < len(lk) && lk[li] == k: // skip the existing entry
				li++
				w.sizeDelta--
			}
		case keys.OpRMW:
			switch {
			case tailIsK: // read the value this batch just wrote
				old := mv[len(mv)-1]
				rs.Set(q.Idx, old, true)
				if q.RMW == keys.RMWAdd {
					mv[len(mv)-1] = old + q.Value
				}
			case li < len(lk) && lk[li] == k: // transform existing entry
				old := lv[li]
				rs.Set(q.Idx, old, true)
				nv := old
				if q.RMW == keys.RMWAdd {
					nv = old + q.Value
				}
				mk = append(mk, k)
				mv = append(mv, nv)
				li++
			default: // absent: both kinds materialize q.Value
				rs.Set(q.Idx, 0, false)
				mk = append(mk, k)
				mv = append(mv, q.Value)
				w.sizeDelta++
			}
		}
		w.leafOps++
	}
	mk = append(mk, lk[li:]...)
	mv = append(mv, lv[li:]...)
	leaf.Keys = append(lk[:0], mk...)
	leaf.Vals = append(lv[:0], mv...)
	// The whole leaf was rewritten to absorb the group's mutations.
	w.shiftedSlots += int64(len(mk))
	w.mergeKeys, w.mergeVals = mk, mv
}

// evalGroupGapped applies one leaf group to a gapped leaf (DESIGN.md
// §10). Searches honor the branchless-search ablation via probeLeaf;
// inserts and deletes go through the O(1)-ish gapped single-entry ops
// (claim the gap at the insertion point, else shift to the nearest
// gap). Mutation-dense groups are the dense merge kernel's regime —
// one linear pass beats per-query probing once a sizable fraction of
// the leaf turns over — so those hand off to the merge-and-repack path
// up front (unless NoMergeApply, which pins this layout to per-query
// application; the merge then runs only to resolve an overflow).
func (p *Processor) evalGroupGapped(g *leafGroup, qs []keys.Query, rs *keys.ResultSet, w *workerScratch, answerDuringFind bool) {
	leaf := g.leaf
	if !p.cfg.NoMergeApply && g.hi-g.lo >= 8 {
		muts := 0
		for i := g.lo; i < g.hi; i++ {
			if qs[i].Op != keys.OpSearch {
				muts++
			}
		}
		if muts >= 8 && muts*4 >= leaf.Len() {
			p.evalGroupGappedOverflow(g, qs, rs, w, g.lo, answerDuringFind)
			return
		}
	}
	for i := g.lo; i < g.hi; i++ {
		q := qs[i]
		switch q.Op {
		case keys.OpSearch:
			if !answerDuringFind || q.LeafAnswer {
				v, ok := p.probeLeaf(leaf, q.Key)
				rs.Set(q.Idx, v, ok)
			}
		case keys.OpInsert:
			ed := leaf.InsertGapped(q.Key, q.Value)
			if ed.Full {
				p.evalGroupGappedOverflow(g, qs, rs, w, i, answerDuringFind)
				return
			}
			if ed.Added {
				w.sizeDelta++
			}
			if ed.GapClaim {
				w.gapClaims++
			}
			w.shiftedSlots += int64(ed.Shifted)
		case keys.OpDelete:
			ed := leaf.DeleteGapped(q.Key)
			if ed.Removed {
				w.sizeDelta--
			}
			w.shiftedSlots += int64(ed.Shifted)
		case keys.OpRMW:
			old, found := p.probeLeaf(leaf, q.Key)
			rs.Set(q.Idx, old, found)
			if found && q.RMW == keys.RMWSetIfAbsent {
				break // present: set-if-absent is a no-op
			}
			nv := q.Value
			if found {
				nv = old + q.Value // RMWAdd over the present value
			}
			ed := leaf.InsertGapped(q.Key, nv)
			if ed.Full {
				// Re-running query i in the overflow merge repeats the
				// probe against unchanged state, so the re-recorded
				// result is identical.
				p.evalGroupGappedOverflow(g, qs, rs, w, i, answerDuringFind)
				return
			}
			if ed.Added {
				w.sizeDelta++
			}
			if ed.GapClaim {
				w.gapClaims++
			}
			w.shiftedSlots += int64(ed.Shifted)
		}
		w.leafOps++
	}
	if leaf.Len() == 0 {
		w.reqs = append(w.reqs, modRequest{
			parent: parentOf(&g.path), path: &g.path,
			level: g.path.Len() - 1, slot: slotOf(&g.path),
			repl: nil,
		})
	}
}

// evalGroupGappedOverflow finishes a gapped leaf group from query
// index start (whose insert found the leaf full): the leaf's live
// entries are compacted into worker scratch, the remaining queries are
// merged over them with the same in-batch visibility rules as
// evalGroupMerge, and the result is repacked — into the leaf itself
// with fresh evenly spread gaps when it fits, or into multiple
// ~7/8-full pieces (the PALM "big split", original node leftmost so
// external Next pointers stay valid) when it does not.
func (p *Processor) evalGroupGappedOverflow(g *leafGroup, qs []keys.Query, rs *keys.ResultSet, w *workerScratch, start int, answerDuringFind bool) {
	leaf := g.leaf
	lk, lv := leaf.AppendEntries(w.leafKeys[:0], w.leafVals[:0])
	w.leafKeys, w.leafVals = lk, lv
	mk, mv := w.mergeKeys[:0], w.mergeVals[:0]
	li := 0
	for i := start; i < g.hi; i++ {
		q := qs[i]
		k := q.Key
		for li < len(lk) && lk[li] < k {
			mk = append(mk, lk[li])
			mv = append(mv, lv[li])
			li++
		}
		tailIsK := len(mk) > 0 && mk[len(mk)-1] == k
		switch q.Op {
		case keys.OpSearch:
			if !answerDuringFind || q.LeafAnswer {
				switch {
				case tailIsK:
					rs.Set(q.Idx, mv[len(mv)-1], true)
				case li < len(lk) && lk[li] == k:
					rs.Set(q.Idx, lv[li], true)
				default:
					rs.Set(q.Idx, 0, false)
				}
			}
		case keys.OpInsert:
			switch {
			case tailIsK:
				mv[len(mv)-1] = q.Value
			case li < len(lk) && lk[li] == k:
				mk = append(mk, k)
				mv = append(mv, q.Value)
				li++
			default:
				mk = append(mk, k)
				mv = append(mv, q.Value)
				w.sizeDelta++
			}
		case keys.OpDelete:
			switch {
			case tailIsK:
				mk = mk[:len(mk)-1]
				mv = mv[:len(mv)-1]
				w.sizeDelta--
			case li < len(lk) && lk[li] == k:
				li++
				w.sizeDelta--
			}
		case keys.OpRMW:
			switch {
			case tailIsK:
				old := mv[len(mv)-1]
				rs.Set(q.Idx, old, true)
				if q.RMW == keys.RMWAdd {
					mv[len(mv)-1] = old + q.Value
				}
			case li < len(lk) && lk[li] == k:
				old := lv[li]
				rs.Set(q.Idx, old, true)
				nv := old
				if q.RMW == keys.RMWAdd {
					nv = old + q.Value
				}
				mk = append(mk, k)
				mv = append(mv, nv)
				li++
			default:
				rs.Set(q.Idx, 0, false)
				mk = append(mk, k)
				mv = append(mv, q.Value)
				w.sizeDelta++
			}
		}
		w.leafOps++
	}
	mk = append(mk, lk[li:]...)
	mv = append(mv, lv[li:]...)
	w.mergeKeys, w.mergeVals = mk, mv
	w.shiftedSlots += int64(len(mk))

	m := len(mk)
	req := modRequest{
		parent: parentOf(&g.path), path: &g.path,
		level: g.path.Len() - 1, slot: slotOf(&g.path),
	}
	if m == 0 {
		w.reqs = append(w.reqs, req) // nil repl: remove the emptied leaf
		return
	}
	c := leaf.Cap()
	if m <= c {
		// Deletes made room again: repack in place, no split.
		btree.PackLeafGapped(leaf, mk, mv)
		return
	}
	// Genuinely full: big-split into balanced pieces at ~7/8 fill.
	target := c * 7 / 8
	if target < 1 {
		target = 1
	}
	pieces := (m + target - 1) / target
	base, rem := m/pieces, m%pieces
	pieceSize := func(i int) int {
		if i < rem {
			return base + 1
		}
		return base
	}
	out := make([]*btree.Node, 0, pieces)
	out = append(out, leaf)
	next := leaf.Next
	prev := leaf
	pos := pieceSize(0)
	for i := 1; i < pieces; i++ {
		sz := pieceSize(i)
		sib := btree.NewGappedLeaf(c)
		btree.PackLeafGapped(sib, mk[pos:pos+sz], mv[pos:pos+sz])
		prev.Next = sib
		prev = sib
		out = append(out, sib)
		pos += sz
	}
	prev.Next = next
	btree.PackLeafGapped(leaf, mk[:pieceSize(0)], mv[:pieceSize(0)])
	w.splits += int64(pieces - 1)
	req.repl = out
	w.reqs = append(w.reqs, req)
}

// descendFrom truncates the recorded path to depth levels and descends
// from n (the node at that depth) to the leaf covering k, recording
// path and fences.
func (f *finder) descendFrom(n *btree.Node, depth int, k keys.Key) *btree.Node {
	p := f.proc
	f.path.Nodes = f.path.Nodes[:depth]
	f.path.Slots = f.path.Slots[:depth]
	f.low = f.low[:depth]
	f.high = f.high[:depth]
	f.hasLow = f.hasLow[:depth]
	f.hasHigh = f.hasHigh[:depth]
	for !n.Leaf() {
		s := p.probeChild(n.Keys, k)
		// A gapped node's sentinel tail can push the probe past the last
		// child when k == SentinelKey (no-op for dense nodes).
		if s >= len(n.Children) {
			s = len(n.Children) - 1
		}
		// The new level's fences: local separators where present,
		// inherited from the level above at the node's edges (a child's
		// keys are already bounded by every ancestor separator). The
		// separator tests use n.Len(), not len(n.Keys): a gapped node's
		// sentinel tail is not a separator, and treating it as one would
		// overwrite the tighter inherited ancestor fence with the
		// sentinel — widening the fence and letting path reuse return a
		// stale leaf for keys at and beyond the real ancestor bound.
		var lo, hi keys.Key
		var hasLo, hasHi bool
		if d := f.path.Len(); d > 0 {
			lo, hi = f.low[d-1], f.high[d-1]
			hasLo, hasHi = f.hasLow[d-1], f.hasHigh[d-1]
		}
		if s > 0 {
			lo, hasLo = n.Keys[s-1], true
		}
		if s < n.Len() {
			hi, hasHi = n.Keys[s], true
		}
		f.path.Push(n, s)
		f.low = append(f.low, lo)
		f.high = append(f.high, hi)
		f.hasLow = append(f.hasLow, hasLo)
		f.hasHigh = append(f.hasHigh, hasHi)
		n = n.Children[s]
	}
	f.leaf = n
	return n
}
