package palm

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
)

// BenchmarkKernels measures the sorted-batch tree kernels (DESIGN.md §8)
// in isolation and end to end, single-threaded so the kernel effect is
// not hidden behind BSP parallelism:
//
//	descend    Stage 1 only (findLeaves) — path-reuse + branchless search
//	leafapply  Stage 2 only (evalGroup)  — merge apply vs per-query
//	endtoend   ProcessBatch, all kernels on vs all off
//
// The leafapply batch overwrites existing keys, so leaf shapes are
// identical on every iteration and both arms measure steady state.
func BenchmarkKernels(b *testing.B) {
	const treeKeys = 1 << 16
	const batchLen = 1 << 14

	build := func(b *testing.B, cfg Config) *Processor {
		b.Helper()
		cfg.Order = btree.DefaultOrder
		cfg.Workers = 1
		cfg.LoadBalance = true
		p, err := New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		seed := make([]keys.Query, treeKeys)
		for i := range seed {
			seed[i] = keys.Insert(keys.Key(i*2), keys.Value(i))
		}
		p.ProcessBatch(keys.Number(seed), keys.NewResultSet(len(seed)))
		return p
	}

	b.Run("descend", func(b *testing.B) {
		for _, arm := range []struct {
			name string
			cfg  Config
		}{
			{"kernels=on", Config{}},
			{"no-pathreuse", Config{NoPathReuse: true}},
			{"no-branchless", Config{NoBranchlessSearch: true}},
			{"kernels=off", Config{NoPathReuse: true, NoBranchlessSearch: true}},
		} {
			b.Run(arm.name, func(b *testing.B) {
				p := build(b, arm.cfg)
				defer p.Close()
				r := rand.New(rand.NewSource(9))
				batch := make([]keys.Query, batchLen)
				for i := range batch {
					batch[i] = keys.Search(keys.Key(r.Intn(2 * treeKeys)))
				}
				keys.Number(batch)
				keys.SortByKey(batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.findLeaves(batch)
				}
				b.SetBytes(batchLen)
			})
		}
	})

	b.Run("leafapply", func(b *testing.B) {
		for _, arm := range []struct {
			name string
			cfg  Config
		}{
			{"merge", Config{}},
			{"serial", Config{NoMergeApply: true}},
		} {
			b.Run(arm.name, func(b *testing.B) {
				p := build(b, arm.cfg)
				defer p.Close()
				r := rand.New(rand.NewSource(9))
				batch := make([]keys.Query, batchLen)
				for i := range batch {
					// Overwrite an existing key: leaf sizes never change.
					batch[i] = keys.Insert(keys.Key(2*r.Intn(treeKeys)), keys.Value(i))
				}
				keys.Number(batch)
				keys.SortByKey(batch)
				p.findLeaves(batch)
				rs := keys.NewResultSet(batchLen)
				w := &p.perW[0]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for gi := range p.groups {
						p.evalGroup(&p.groups[gi], batch, rs, w, false)
					}
				}
				b.SetBytes(batchLen)
			})
		}
	})

	b.Run("endtoend", func(b *testing.B) {
		for _, arm := range []struct {
			name string
			cfg  Config
		}{
			{"kernels=on", Config{}},
			{"kernels=off", Config{NoPathReuse: true, NoBranchlessSearch: true, NoMergeApply: true}},
		} {
			b.Run(arm.name, func(b *testing.B) {
				p := build(b, arm.cfg)
				defer p.Close()
				r := rand.New(rand.NewSource(9))
				batch := make([]keys.Query, batchLen)
				rs := keys.NewResultSet(batchLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for j := range batch {
						k := keys.Key(r.Intn(4 * treeKeys))
						switch r.Intn(4) {
						case 0:
							batch[j] = keys.Insert(k, keys.Value(j))
						case 1:
							batch[j] = keys.Delete(k)
						default:
							batch[j] = keys.Search(k)
						}
					}
					keys.Number(batch)
					rs.Reset(batchLen)
					b.StartTimer()
					p.ProcessBatch(batch, rs)
				}
				b.SetBytes(batchLen)
			})
		}
	})
}

// BenchmarkLayout compares the gapped and dense node layouts
// single-threaded (DESIGN.md §10): a search-only regime (where the
// gapped fixed-width branchless probe should win) and two mutation
// regimes — sparse scattered inserts (gap claiming vs memmove) and a
// churn mix with splits active.
func BenchmarkLayout(b *testing.B) {
	const treeKeys = 1 << 16
	const batchLen = 1 << 14

	arms := []struct {
		name string
		cfg  Config
	}{
		{"gapped", Config{}},
		{"dense", Config{NoGappedLayout: true}},
	}
	build := func(b *testing.B, cfg Config) *Processor {
		b.Helper()
		cfg.Order = btree.DefaultOrder
		cfg.Workers = 1
		cfg.LoadBalance = true
		p, err := New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		seed := make([]keys.Query, treeKeys)
		for i := range seed {
			seed[i] = keys.Insert(keys.Key(i*4), keys.Value(i))
		}
		p.ProcessBatch(keys.Number(seed), keys.NewResultSet(len(seed)))
		return p
	}

	b.Run("search", func(b *testing.B) {
		for _, arm := range arms {
			b.Run(arm.name, func(b *testing.B) {
				p := build(b, arm.cfg)
				defer p.Close()
				r := rand.New(rand.NewSource(3))
				batch := make([]keys.Query, batchLen)
				for i := range batch {
					batch[i] = keys.Search(keys.Key(r.Intn(4 * treeKeys)))
				}
				keys.Number(batch)
				rs := keys.NewResultSet(batchLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs.Reset(batchLen)
					p.ProcessBatch(batch, rs)
				}
				b.SetBytes(batchLen)
			})
		}
	})

	b.Run("churn", func(b *testing.B) {
		for _, arm := range arms {
			b.Run(arm.name, func(b *testing.B) {
				p := build(b, arm.cfg)
				defer p.Close()
				r := rand.New(rand.NewSource(3))
				batch := make([]keys.Query, batchLen)
				rs := keys.NewResultSet(batchLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for j := range batch {
						k := keys.Key(r.Intn(8 * treeKeys))
						switch r.Intn(4) {
						case 0, 1:
							batch[j] = keys.Insert(k, keys.Value(j))
						case 2:
							batch[j] = keys.Delete(k)
						default:
							batch[j] = keys.Search(k)
						}
					}
					keys.Number(batch)
					rs.Reset(batchLen)
					b.StartTimer()
					p.ProcessBatch(batch, rs)
				}
				b.SetBytes(batchLen)
			})
		}
	})
}
