package palm

import (
	"sort"

	"repro/internal/keys"
	"repro/internal/stats"
)

// EvalScans evaluates a group of range scans against the tree in one
// batched Stage-1-style pass: the scans are sorted by lower bound and
// partitioned across workers, each worker locates its first scan's
// leaf with the path-reuse finder (ascending lower bounds keep the
// descent cheap, exactly like the sorted-run point FIND) and then
// walks the leaf chain collecting rows. Gapped-layout leaves are
// iterated via the occupancy accessors, so gap and sentinel slots
// never appear in scan output; dense leaves iterate every slot.
//
// All scans in a group must observe the same tree state: the engine
// calls EvalScans between point epochs, with the tree quiescent. The
// caller must have sized rs for the batch; EvalScans calls EnsureScans
// itself (single-goroutine, before the parallel phase).
//
// Scans with hi <= lo produce empty row sets. scans is re-ordered in
// place (by lower bound); Idx routing keeps results attributable.
func (p *Processor) EvalScans(scans []keys.Query, rs *keys.ResultSet) {
	st := p.batchStats
	st.Reset()
	st.BatchSize = len(scans)
	st.RemainingQueries = len(scans)
	if len(scans) == 0 {
		return
	}
	rs.EnsureScans()
	sort.Slice(scans, func(i, j int) bool { return scans[i].Key < scans[j].Key })

	sw := st.Timer(stats.StageFind)
	n := len(scans)
	for i := range p.perW {
		p.perW[i].finder.reset(p)
	}
	p.pool.Run(func(tid int) {
		lo, hi := p.pool.Range(tid, n)
		w := &p.perW[tid]
		for i := lo; i < hi; i++ {
			q := scans[i]
			rs.SetScan(q.Idx, p.scanRange(w, q.Key, q.Key2, q.Value))
		}
	})
	sw.Stop()
	p.finishStats()
}

// scanRange collects the present (key, value) pairs in [lo, hi), in
// ascending key order, up to limit rows (0 = unlimited), by walking
// the leaf chain from the leaf covering lo.
func (p *Processor) scanRange(w *workerScratch, lo, hi keys.Key, limit keys.Value) []keys.KV {
	if hi <= lo {
		return nil
	}
	var rows []keys.KV
	for leaf := w.finder.find(lo); leaf != nil; leaf = leaf.Next {
		w.leafOps++
		for s := leaf.FirstSlot(); s < len(leaf.Keys); s = leaf.NextSlot(s) {
			k := leaf.Keys[s]
			if k < lo {
				continue
			}
			if k >= hi {
				return rows
			}
			rows = append(rows, keys.KV{Key: k, Value: leaf.Vals[s]})
			if limit > 0 && keys.Value(len(rows)) >= limit {
				return rows
			}
		}
	}
	return rows
}
