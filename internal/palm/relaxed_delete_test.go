package palm

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/btree"
	"repro/internal/keys"
)

// TestSerialDeleteOnRelaxedTree pins the interaction between PALM's
// relaxed batched deletes and the serial delete path. A batch that
// deletes all but one leaf's keys leaves the tree with single-child
// internal spines (legal under RelaxedFill); serially draining the
// surviving keys — exactly what shard migration does — must then cope
// with underfull nodes that have no sibling to borrow from or merge
// with. This crashed with an index-out-of-range before relaxed.go.
func TestSerialDeleteOnRelaxedTree(t *testing.T) {
	for _, dense := range []bool{false, true} {
		name := "gapped"
		if dense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			for _, order := range []int{3, 4, 5, 8} {
				t.Run(fmt.Sprintf("order%d", order), func(t *testing.T) {
					p, err := New(Config{Order: order, Workers: 1, NoGappedLayout: dense}, bsp.NewPool(1))
					if err != nil {
						t.Fatal(err)
					}
					defer p.Close()

					const n = 512
					ins := make([]keys.Query, 0, n)
					for k := 0; k < n; k++ {
						ins = append(ins, keys.Insert(keys.Key(k), keys.Value(k)))
					}
					keys.Number(ins)
					p.ProcessBatch(ins, keys.NewResultSet(len(ins)))

					// One batch deletes everything above the lowest few
					// keys: the batched restructure removes emptied
					// leaves under the relaxed invariant and can leave
					// single-child internal nodes on the right spine.
					del := make([]keys.Query, 0, n)
					for k := 3; k < n; k++ {
						del = append(del, keys.Delete(keys.Key(k)))
					}
					keys.Number(del)
					p.ProcessBatch(del, keys.NewResultSet(len(del)))

					tr := p.Tree()
					if err := tr.Validate(btree.RelaxedFill); err != nil {
						t.Fatalf("relaxed tree invalid before serial drain: %v", err)
					}
					// Serially drain the survivors, low to high, the way
					// a shard migration empties a donor tree.
					for k := 0; k < 3; k++ {
						if !tr.Delete(keys.Key(k)) {
							t.Fatalf("key %d missing before drain finished", k)
						}
						if err := tr.Validate(btree.RelaxedFill); err != nil {
							t.Fatalf("after deleting %d: %v", k, err)
						}
					}
					if tr.Len() != 0 {
						t.Fatalf("%d keys left after full drain", tr.Len())
					}
					if _, _, ok := tr.Max(); ok {
						t.Fatal("Max found a pair in a drained tree")
					}
					// The drained tree must still be fully usable.
					tr.Insert(42, 99)
					if v, ok := tr.Search(42); !ok || v != 99 {
						t.Fatalf("insert after drain lost the pair: (%v,%v)", v, ok)
					}
				})
			}
		})
	}
}
