package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// fuzzSpan is the fuzz key space. Keys land in [0, fuzzSpan); the
// sharded engines split that range, so shard boundaries fall on keys
// the fuzzer actually generates (including exact-boundary hits).
const fuzzSpan = 64

// decodeFuzzBatches turns fuzz bytes into a sequence of batches over
// the small key space: two bytes per query (op selector, key), with a
// 0xFF op byte ending the current batch so the fuzzer can explore
// inter-batch state (cache flushes, rebalances) too. All five
// operations are generated; scan widths regularly straddle shard
// boundaries (the key space splits 2/3/8 ways), exercising the
// split-and-merge path.
func decodeFuzzBatches(data []byte) [][]keys.Query {
	var batches [][]keys.Query
	var cur []keys.Query
	for i := 0; i+1 < len(data); i += 2 {
		if data[i] == 0xFF {
			batches = append(batches, keys.Number(cur))
			cur = nil
			continue
		}
		k := keys.Key(data[i+1] % fuzzSpan)
		switch data[i] % 6 {
		case 0:
			cur = append(cur, keys.Search(k))
		case 1:
			cur = append(cur, keys.Insert(k, keys.Value(data[i])<<8|keys.Value(i)))
		case 2:
			cur = append(cur, keys.Delete(k))
		case 3:
			hi := k + keys.Key(data[i]%fuzzSpan)
			cur = append(cur, keys.Scan(k, hi, keys.Value(data[i]>>6))) // limit 0..3
		case 4:
			cur = append(cur, keys.AddDelta(k, keys.Value(data[i])))
		default:
			cur = append(cur, keys.SetIfAbsent(k, keys.Value(data[i])<<8|keys.Value(i)))
		}
	}
	if len(cur) > 0 {
		batches = append(batches, keys.Number(cur))
	}
	return batches
}

// FuzzShardEquivalence is the differential property at the heart of
// this package: for ANY batch sequence, the sharded engine (N in
// {1, 2, 3, 8}, serial and pipelined) returns byte-identical results
// and final stores to the oracle and the unsharded engine. Batches
// where every query hits one shard (the fast path) and keys exactly on
// shard boundaries arise naturally from the small key space; dedicated
// seeds pin them.
func FuzzShardEquivalence(f *testing.F) {
	// All-ops mix across several batches.
	f.Add([]byte{1, 10, 0, 10, 2, 10, 0xFF, 0, 0, 1, 63, 0, 63, 2, 63, 0, 63})
	// Exact boundary keys for N=2 (32), N=3 (22, 44) and N=8 (8k).
	f.Add([]byte{1, 32, 0, 32, 1, 22, 0, 44, 1, 8, 0, 16, 1, 24, 0, 48, 1, 56, 0, 56})
	// Single-shard batch: every key below the lowest boundary.
	f.Add([]byte{1, 1, 0, 1, 2, 2, 0, 2, 1, 3, 0, 3, 0xFF, 1, 5, 0, 5})
	// Duplicate keys, delete-heavy.
	f.Add([]byte{2, 7, 2, 7, 2, 7, 1, 7, 0, 7, 2, 7, 0, 7})
	// Empty-batch separators back to back.
	f.Add([]byte{0xFF, 0, 0xFF, 0, 1, 9, 0xFF, 0, 0, 9})
	// Straddling scans: op byte 63 -> scan of width 63 from key 0,
	// crossing every boundary of the 2/3/8-way splits, with an RMW
	// (op 4) fencing between two of them.
	f.Add([]byte{1, 10, 1, 30, 1, 50, 63, 0, 4, 40, 63, 0})
	// Limited straddling scan (op 195 -> width 3, limit 3) across the
	// N=2 boundary at 32, plus set-if-absent (op 5) on the boundary.
	f.Add([]byte{1, 31, 1, 32, 1, 33, 195, 31, 5, 32, 0, 32})

	f.Fuzz(func(t *testing.T, data []byte) {
		batches := decodeFuzzBatches(data)
		if len(batches) == 0 {
			return
		}

		type arm struct {
			name string
			eng  *Engine
		}
		var arms []arm
		for _, n := range []int{1, 2, 3, 8} {
			for _, pipelined := range []bool{false, true} {
				e, err := New(Config{
					Shards: n,
					Engine: testEngineConfig(core.IntraInter, pipelined),
					KeyMax: fuzzSpan - 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				arms = append(arms, arm{name: armName(n, pipelined), eng: e})
			}
		}
		// Kernels-off arm: disabling every sorted-batch tree kernel AND
		// the gapped node layout (palm.Config ablations) must not change
		// a byte of results or stores relative to the kernels-on arms
		// above. A dense-only arm keeps the layout ablation covered in
		// isolation too.
		offCfg := testEngineConfig(core.IntraInter, false)
		offCfg.Palm.NoPathReuse = true
		offCfg.Palm.NoBranchlessSearch = true
		offCfg.Palm.NoMergeApply = true
		offCfg.Palm.NoGappedLayout = true
		eOff, err := New(Config{Shards: 2, Engine: offCfg, KeyMax: fuzzSpan - 1})
		if err != nil {
			t.Fatal(err)
		}
		defer eOff.Close()
		arms = append(arms, arm{name: "shards=2+kernels-off", eng: eOff})

		denseCfg := testEngineConfig(core.IntraInter, false)
		denseCfg.Palm.NoGappedLayout = true
		eDense, err := New(Config{Shards: 3, Engine: denseCfg, KeyMax: fuzzSpan - 1})
		if err != nil {
			t.Fatal(err)
		}
		defer eDense.Close()
		arms = append(arms, arm{name: "shards=3+dense", eng: eDense})

		plain, err := core.NewEngine(testEngineConfig(core.IntraInter, false))
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()

		orc := oracle.New()
		for bi, qs := range batches {
			want := keys.NewResultSet(len(qs))
			orc.ApplyAll(append([]keys.Query(nil), qs...), want)

			plainRS := keys.NewResultSet(len(qs))
			plain.ProcessBatch(append([]keys.Query(nil), qs...), plainRS)
			diffResults(t, "unsharded", bi, want, plainRS, len(qs))

			for _, a := range arms {
				rs := keys.NewResultSet(len(qs))
				a.eng.ProcessBatch(append([]keys.Query(nil), qs...), rs)
				diffResults(t, a.name, bi, want, rs, len(qs))
			}
		}

		oks, ovs := orc.Dump()
		for _, a := range arms {
			ks, vs := a.eng.Dump()
			if len(ks) != len(oks) {
				t.Fatalf("%s: final store %d keys, want %d", a.name, len(ks), len(oks))
			}
			for i := range oks {
				if ks[i] != oks[i] || vs[i] != ovs[i] {
					t.Fatalf("%s: store[%d] = (%d,%d), want (%d,%d)",
						a.name, i, ks[i], vs[i], oks[i], ovs[i])
				}
			}
		}
	})
}

func armName(n int, pipelined bool) string {
	name := "shards=" + string(rune('0'+n))
	if pipelined {
		return name + "+pipe"
	}
	return name
}

func diffResults(t *testing.T, tag string, batch int, want, got *keys.ResultSet, n int) {
	t.Helper()
	for i := int32(0); i < int32(n); i++ {
		w, wok := want.Get(i)
		g, gok := got.Get(i)
		if wok != gok || w != g {
			t.Fatalf("%s: batch %d idx %d: got %+v (%v), want %+v (%v)", tag, batch, i, g, gok, w, wok)
		}
		// Scan rows too: a missing row set and an empty one are
		// equivalent (non-scan indices have neither).
		wr, _ := want.ScanRows(i)
		gr, _ := got.ScanRows(i)
		if len(wr) != len(gr) {
			t.Fatalf("%s: batch %d idx %d: %d scan rows, want %d\n got %v\nwant %v",
				tag, batch, i, len(gr), len(wr), gr, wr)
		}
		for j := range wr {
			if wr[j] != gr[j] {
				t.Fatalf("%s: batch %d idx %d row %d: %+v, want %+v", tag, batch, i, j, gr[j], wr[j])
			}
		}
	}
}

// FuzzShardRebalance replays random batches with a Rebalance between
// every pair of batches, asserting rebalancing never perturbs results
// or the final store.
func FuzzShardRebalance(f *testing.F) {
	f.Add([]byte{1, 10, 1, 20, 1, 30, 0xFF, 0, 10, 2, 20, 0, 30, 0xFF, 0, 10, 0, 20})
	f.Add([]byte{1, 32, 0xFF, 0, 32, 2, 32, 0xFF, 0, 32})

	f.Fuzz(func(t *testing.T, data []byte) {
		batches := decodeFuzzBatches(data)
		if len(batches) == 0 {
			return
		}
		e, err := New(Config{
			Shards: 3,
			Engine: testEngineConfig(core.IntraInter, false),
			KeyMax: fuzzSpan - 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		orc := oracle.New()
		for bi, qs := range batches {
			want := keys.NewResultSet(len(qs))
			orc.ApplyAll(append([]keys.Query(nil), qs...), want)
			rs := keys.NewResultSet(len(qs))
			e.ProcessBatch(append([]keys.Query(nil), qs...), rs)
			diffResults(t, "rebalanced", bi, want, rs, len(qs))
			if _, err := e.Rebalance(); err != nil {
				t.Fatal(err)
			}
		}
		oks, ovs := orc.Dump()
		ks, vs := e.Dump()
		if len(ks) != len(oks) {
			t.Fatalf("final store %d keys, want %d", len(ks), len(oks))
		}
		for i := range oks {
			if ks[i] != oks[i] || vs[i] != ovs[i] {
				t.Fatalf("store[%d] = (%d,%d), want (%d,%d)", i, ks[i], vs[i], oks[i], ovs[i])
			}
		}
	})
}
