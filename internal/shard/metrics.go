package shard

import (
	"time"

	"repro/internal/metrics"
)

// shardMetrics caches the shard-layer metric handles: routing fan-out
// plus the split/merge overhead the sharded engine adds around the
// per-shard core engines (whose own metrics record into the same
// registry). Nil when metrics are off.
type shardMetrics struct {
	reg     *metrics.Registry
	splitNS *metrics.Histogram
	mergeNS *metrics.Histogram
	routed  *metrics.Counter // AddAt(shard, n): per-shard slots, folded on read
	batches *metrics.Counter
}

func newShardMetrics(reg *metrics.Registry) *shardMetrics {
	if reg == nil {
		return nil
	}
	return &shardMetrics{
		reg:     reg,
		splitNS: reg.Histogram("shard_split_ns"),
		mergeNS: reg.Histogram("shard_merge_ns"),
		routed:  reg.Counter("shard_routed_total"),
		batches: reg.Counter("shard_batches_total"),
	}
}

// The recording helpers are nil-safe so call sites stay single-line;
// with metrics off they reduce to one branch and never read the clock.

func (m *shardMetrics) now() (t time.Time, ok bool) {
	if m == nil {
		return time.Time{}, false
	}
	return m.reg.Now(), true
}

func (m *shardMetrics) observeSplit(start time.Time) {
	if m != nil {
		m.splitNS.Observe(m.reg.Since(start))
	}
}

func (m *shardMetrics) observeMerge(start time.Time) {
	if m != nil {
		m.mergeNS.Observe(m.reg.Since(start))
	}
}

func (m *shardMetrics) recordRouted(shard int, n int) {
	if m != nil {
		m.routed.AddAt(shard, int64(n))
	}
}

func (m *shardMetrics) recordBatch() {
	if m != nil {
		m.batches.Add(1)
	}
}
