package shard

import (
	"sort"

	"repro/internal/keys"
)

// shardOf returns the shard index serving key k under the given
// ascending (non-decreasing) boundary list: shard i serves the range
// [bounds[i-1], bounds[i]), shard 0 everything below bounds[0], and the
// last shard everything from bounds[len-1] up. A key equal to a
// boundary belongs to the shard above it.
func shardOf(bounds []keys.Key, k keys.Key) int {
	// Small boundary lists dominate; linear scan beats sort.Search up
	// to a few dozen shards and keeps the hot routing loop branch-
	// predictable.
	if len(bounds) <= 16 {
		for i, b := range bounds {
			if k < b {
				return i
			}
		}
		return len(bounds)
	}
	return sort.Search(len(bounds), func(i int) bool { return k < bounds[i] })
}

// splitter partitions one batch across shards by key range, remembering
// for every routed query its original batch index so the merger can
// reassemble results in original query order. Splitting is a stable
// partition: queries routed to the same shard keep their relative
// order, which — together with every key belonging to exactly one
// shard — is what makes sharded execution equivalent to serial
// execution (DESIGN.md §6).
//
// A splitter's buffers are reused across batches; each concurrent
// split (e.g. per pipeline slot) needs its own splitter.
type splitter struct {
	bounds []keys.Key
	// subs[s] is shard s's sub-batch with Idx renumbered to the
	// sub-batch position; orig[s][i] is the original batch index of
	// subs[s][i].
	subs [][]keys.Query
	orig [][]int32
	// sole is the only shard that received queries, or -1 when the
	// batch spread over several shards (or was empty).
	sole int
}

func newSplitter(bounds []keys.Key) *splitter {
	n := len(bounds) + 1
	return &splitter{
		bounds: bounds,
		subs:   make([][]keys.Query, n),
		orig:   make([][]int32, n),
		sole:   -1,
	}
}

// split partitions qs. The input is not modified; sub-batches hold
// copies with batch-local Idx values. Results are valid until the next
// split call.
func (sp *splitter) split(qs []keys.Query) {
	for s := range sp.subs {
		sp.subs[s] = sp.subs[s][:0]
		sp.orig[s] = sp.orig[s][:0]
	}
	for _, q := range qs {
		s := shardOf(sp.bounds, q.Key)
		local := int32(len(sp.subs[s]))
		sp.orig[s] = append(sp.orig[s], q.Idx)
		q.Idx = local
		sp.subs[s] = append(sp.subs[s], q)
	}
	sp.sole = -1
	for s := range sp.subs {
		if len(sp.subs[s]) == 0 {
			continue
		}
		if sp.sole >= 0 {
			sp.sole = -1
			break
		}
		sp.sole = s
	}
	if sp.sole >= 0 && len(sp.subs[sp.sole]) != len(qs) {
		// Cannot happen (every query routes somewhere), but never let a
		// bookkeeping bug silently drop the fast path's precondition.
		sp.sole = -1
	}
}

// merge copies every recorded sub-batch result back to its original
// batch index in rs. subRS[s] must be the ResultSet shard s evaluated
// subs[s] into; rs must be Reset to the original batch length.
func (sp *splitter) merge(subRS []*keys.ResultSet, rs *keys.ResultSet) {
	for s := range sp.subs {
		orig := sp.orig[s]
		if len(orig) == 0 {
			continue
		}
		sub := subRS[s]
		for i, oi := range orig {
			if r, ok := sub.Get(int32(i)); ok {
				rs.Set(oi, r.Value, r.Found)
			}
		}
	}
}
