package shard

import (
	"sort"

	"repro/internal/keys"
)

// shardOf returns the shard index serving key k under the given
// ascending (non-decreasing) boundary list: shard i serves the range
// [bounds[i-1], bounds[i]), shard 0 everything below bounds[0], and the
// last shard everything from bounds[len-1] up. A key equal to a
// boundary belongs to the shard above it.
func shardOf(bounds []keys.Key, k keys.Key) int {
	// Small boundary lists dominate; linear scan beats sort.Search up
	// to a few dozen shards and keeps the hot routing loop branch-
	// predictable.
	if len(bounds) <= 16 {
		for i, b := range bounds {
			if k < b {
				return i
			}
		}
		return len(bounds)
	}
	return sort.Search(len(bounds), func(i int) bool { return k < bounds[i] })
}

// splitter partitions one batch across shards by key range, remembering
// for every routed query its original batch index so the merger can
// reassemble results in original query order. Splitting is a stable
// partition: queries routed to the same shard keep their relative
// order, which — together with every key belonging to exactly one
// shard — is what makes sharded execution equivalent to serial
// execution (DESIGN.md §6).
//
// A splitter's buffers are reused across batches; each concurrent
// split (e.g. per pipeline slot) needs its own splitter. The boundary
// list is passed per split call, not captured at construction: the
// autoshard controller replaces the engine's bounds between batches
// (under the scheduling gate), and every split must route by the
// current ones.
type splitter struct {
	// subs[s] is shard s's sub-batch with Idx renumbered to the
	// sub-batch position; orig[s][i] is the original batch index of
	// subs[s][i].
	subs [][]keys.Query
	orig [][]int32
	// sole is the only shard that received queries, or -1 when the
	// batch spread over several shards (or was empty).
	sole int
	// scanIdx/scanLimit record, per scan in the batch, its original
	// batch index and row limit, so the merger can assemble straddling
	// scans (split into per-shard sub-ranges) back into one row set and
	// apply the limit globally.
	scanIdx   []int32
	scanLimit []keys.Value
}

func newSplitter(n int) *splitter {
	return &splitter{
		subs: make([][]keys.Query, n),
		orig: make([][]int32, n),
		sole: -1,
	}
}

// split partitions qs by the given boundaries (len(subs)-1 of them,
// matching the splitter's shard count), recording each routed key into
// heat (nil when autoshard is off). The input is not modified;
// sub-batches hold copies with batch-local Idx values. Results are
// valid until the next split call.
func (sp *splitter) split(qs []keys.Query, bounds []keys.Key, heat *heatMap) {
	for s := range sp.subs {
		sp.subs[s] = sp.subs[s][:0]
		sp.orig[s] = sp.orig[s][:0]
	}
	sp.scanIdx = sp.scanIdx[:0]
	sp.scanLimit = sp.scanLimit[:0]
	for _, q := range qs {
		heat.record(q.Key)
		if q.Op == keys.OpScan {
			sp.splitScan(q, bounds)
			continue
		}
		s := shardOf(bounds, q.Key)
		local := int32(len(sp.subs[s]))
		sp.orig[s] = append(sp.orig[s], q.Idx)
		q.Idx = local
		sp.subs[s] = append(sp.subs[s], q)
	}
	sp.sole = -1
	for s := range sp.subs {
		if len(sp.subs[s]) == 0 {
			continue
		}
		if sp.sole >= 0 {
			sp.sole = -1
			break
		}
		sp.sole = s
	}
	if sp.sole >= 0 && len(sp.subs[sp.sole]) != len(qs) {
		// A straddling scan lands in several shards (defeating the fast
		// path via multiple non-empty subs) — this guard additionally
		// keeps a bookkeeping bug from silently faking the fast path's
		// precondition.
		sp.sole = -1
	}
}

// splitScan routes one range scan. A scan whose range lies inside one
// shard routes whole; a straddling scan is clipped into per-shard
// sub-scans [max(lo, shardLo), min(hi, shardHi)), each keeping the
// original row limit (the merger applies the limit globally after
// concatenation — a per-shard share cannot be known in advance).
func (sp *splitter) splitScan(q keys.Query, bounds []keys.Key) {
	s1 := shardOf(bounds, q.Key)
	s2 := s1
	if q.Key2 > q.Key {
		s2 = shardOf(bounds, q.Key2-1)
	}
	sp.scanIdx = append(sp.scanIdx, q.Idx)
	sp.scanLimit = append(sp.scanLimit, q.Value)
	orig := q.Idx
	for s := s1; s <= s2; s++ {
		sub := q
		if s > s1 {
			sub.Key = bounds[s-1]
		}
		if s < s2 {
			sub.Key2 = bounds[s]
		}
		local := int32(len(sp.subs[s]))
		sp.orig[s] = append(sp.orig[s], orig)
		sub.Idx = local
		sp.subs[s] = append(sp.subs[s], sub)
	}
}

// merge copies every recorded sub-batch result back to its original
// batch index in rs. subRS[s] must be the ResultSet shard s evaluated
// subs[s] into; rs must be Reset to the original batch length.
//
// Scan rows are appended per shard in ascending shard order — shard
// ranges are disjoint and ascending, so concatenation preserves global
// key order — then sealed with the scan's global row limit.
func (sp *splitter) merge(subRS []*keys.ResultSet, rs *keys.ResultSet) {
	if len(sp.scanIdx) > 0 {
		rs.EnsureScans()
	}
	for s := range sp.subs {
		orig := sp.orig[s]
		if len(orig) == 0 {
			continue
		}
		sub := subRS[s]
		qs := sp.subs[s]
		for i, oi := range orig {
			if qs[i].Op == keys.OpScan {
				if rows, ok := sub.ScanRows(int32(i)); ok {
					rs.AppendScan(oi, rows)
				}
				continue
			}
			if r, ok := sub.Get(int32(i)); ok {
				rs.Set(oi, r.Value, r.Found)
			}
		}
	}
	for i, oi := range sp.scanIdx {
		rs.FinishScan(oi, sp.scanLimit[i])
	}
}
