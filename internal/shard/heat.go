package shard

import (
	"repro/internal/keys"
	"repro/internal/metrics"
)

// heatMap is the online per-key-range traffic histogram behind the
// autoshard controller (DESIGN.md §13): a fixed number of equal-width
// key-range buckets over [0, keyMax], each one slot of a standalone
// metrics.Counter — the cache-line-padded sharded-counter machinery
// from DESIGN.md §9 reused with the slots carrying positional meaning.
// The splitter's routing pass records one hit per query (record), and
// once per batch the routing goroutine applies an exponential decay
// (decay), so bucket values approximate an EWMA of recent traffic: a
// bucket receiving r queries/batch converges to r·2^decayShift.
//
// record is called from at most one goroutine at a time (the engine is
// single-caller; streamed batches route on the single dispatcher
// goroutine), and decay likewise; the controller reads buckets from its
// own goroutine, which is why the slots are atomics.
//
// A nil *heatMap is valid and records nothing — the autoshard-off hot
// path pays one nil check per query and allocates nothing, mirroring
// the metrics-off contract.
type heatMap struct {
	c *metrics.Counter
	// shift maps keys to buckets: bucket = key >> shift, clamped to the
	// last bucket (keys above keyMax land there).
	shift      uint
	buckets    int
	decayShift uint
}

// newHeatMap sizes a heat map of the given bucket count over
// [0, keyMax] (keyMax 0 = the full uint64 key space).
func newHeatMap(buckets int, keyMax keys.Key, decayShift uint) *heatMap {
	span := uint64(keyMax)
	if span == 0 {
		span = ^uint64(0)
	}
	var shift uint
	for shift < 64 && span>>shift >= uint64(buckets) {
		shift++
	}
	return &heatMap{
		c:          metrics.NewCounter("autoshard_heat_buckets", buckets),
		shift:      shift,
		buckets:    buckets,
		decayShift: decayShift,
	}
}

// bucketOf maps a key to its bucket index.
func (h *heatMap) bucketOf(k keys.Key) int {
	b := int(uint64(k) >> h.shift)
	if b >= h.buckets {
		b = h.buckets - 1
	}
	return b
}

// lowOf returns the inclusive lower key bound of bucket b.
func (h *heatMap) lowOf(b int) keys.Key {
	return keys.Key(uint64(b) << h.shift)
}

// width returns the key span of one bucket.
func (h *heatMap) width() uint64 { return uint64(1) << h.shift }

// record counts one routed query. Nil-safe; allocation-free.
func (h *heatMap) record(k keys.Key) {
	if h != nil {
		h.c.AddAt(h.bucketOf(k), 1)
	}
}

// decay applies one batch's EWMA step: every bucket loses
// value >> decayShift, with a floor of 1 so stale buckets drain all the
// way to zero instead of parking at a sub-shift residue. Nil-safe.
func (h *heatMap) decay() {
	if h == nil {
		return
	}
	for i := 0; i < h.buckets; i++ {
		v := h.c.ValueAt(i)
		d := v >> h.decayShift
		if d == 0 && v > 0 {
			d = 1
		}
		if d > 0 {
			h.c.AddAt(i, -d)
		}
	}
}

// load copies the bucket values into out (len buckets) and returns the
// total. The copy is per-bucket atomic, not a consistent snapshot —
// fine for the controller's thresholds.
func (h *heatMap) load(out []int64) (total int64) {
	for i := 0; i < h.buckets; i++ {
		v := h.c.ValueAt(i)
		out[i] = v
		total += v
	}
	return total
}

// Heat is the exported facade over the autoshard heat histogram, for
// consumers outside the shard controller: the tier demotion policy
// (DESIGN.md §14) tracks per-range traffic with the same equal-width
// EWMA buckets and picks victims from the coldest ones. Same calling
// contract as heatMap: Record and Decay from one goroutine at a time,
// reads from anywhere.
type Heat struct {
	h *heatMap
}

// NewHeat sizes a heat histogram of the given bucket count over
// [0, keyMax] (keyMax 0 = the full uint64 key space) with the given
// EWMA decay shift.
func NewHeat(buckets int, keyMax keys.Key, decayShift uint) *Heat {
	if buckets < 1 {
		buckets = 1
	}
	return &Heat{h: newHeatMap(buckets, keyMax, decayShift)}
}

// Record counts one access to key k.
func (h *Heat) Record(k keys.Key) { h.h.record(k) }

// Decay applies one EWMA decay step across all buckets.
func (h *Heat) Decay() { h.h.decay() }

// Buckets returns the bucket count.
func (h *Heat) Buckets() int { return h.h.buckets }

// Value returns bucket b's current heat.
func (h *Heat) Value(b int) int64 { return h.h.c.ValueAt(b) }

// Range returns bucket b's inclusive key bounds. The last bucket
// absorbs the rest of the key space.
func (h *Heat) Range(b int) (lo, hi keys.Key) {
	lo = h.h.lowOf(b)
	if b >= h.h.buckets-1 {
		return lo, keys.Key(^uint64(0))
	}
	return lo, h.h.lowOf(b+1) - 1
}
