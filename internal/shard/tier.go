package shard

import "repro/internal/keys"

// Range primitives for the tier store (DESIGN.md §14), the sharded
// counterparts of the core.Engine methods of the same names. Like
// Dump, they take no locks: the tier engine calls them at a batch
// boundary while holding the scheduling gate exclusively, which also
// excludes the autoshard controller's migrations.

// StoredLen returns the total pair count stored across all shard
// trees (unflushed dirty cache entries are not counted).
func (e *Engine) StoredLen() int {
	n := 0
	for _, s := range e.shards {
		n += s.StoredLen()
	}
	return n
}

// DrainCacheRange flushes and drops every cached entry with
// lo <= key < hi on every shard, leaving the trees authoritative for
// that key range.
func (e *Engine) DrainCacheRange(lo, hi keys.Key) {
	for _, s := range e.shards {
		s.DrainCacheRange(lo, hi)
	}
}

// RangeDump returns the stored pairs with lo <= key <= hi in ascending
// order, at most max of them (max <= 0 means unlimited). more reports
// that the range holds further pairs. Shards partition the key space
// in order, so per-shard dumps concatenate sorted.
func (e *Engine) RangeDump(lo, hi keys.Key, max int) (ks []keys.Key, vs []keys.Value, more bool) {
	for _, s := range e.shards {
		rem := 0
		if max > 0 {
			rem = max - len(ks) + 1 // one extra to detect "more"
		}
		sk, sv, smore := s.RangeDump(lo, hi, rem)
		ks = append(ks, sk...)
		vs = append(vs, sv...)
		if smore || (max > 0 && len(ks) > max) {
			return ks[:max], vs[:max], true
		}
	}
	return ks, vs, false
}

// DeleteRange removes every stored pair with lo <= key <= hi across
// all shards, returning how many were removed.
func (e *Engine) DeleteRange(lo, hi keys.Key) int {
	n := 0
	for _, s := range e.shards {
		n += s.DeleteRange(lo, hi)
	}
	return n
}

// InsertPairs stores the given ascending pairs directly into the
// owning shards' trees (the promotion path), bypassing the caches.
func (e *Engine) InsertPairs(ks []keys.Key, vs []keys.Value) {
	for i := 0; i < len(ks); {
		s := shardOf(e.bounds, ks[i])
		j := i + 1
		for j < len(ks) && shardOf(e.bounds, ks[j]) == s {
			j++
		}
		e.shards[s].InsertPairs(ks[i:j], vs[i:j])
		i = j
	}
}
