package shard

import (
	"testing"

	"repro/internal/keys"
)

func TestShardOf(t *testing.T) {
	bounds := []keys.Key{10, 20, 30}
	cases := []struct {
		k    keys.Key
		want int
	}{
		{0, 0}, {9, 0},
		{10, 1}, // boundary key belongs to the shard above
		{15, 1}, {19, 1},
		{20, 2}, {29, 2},
		{30, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		if got := shardOf(bounds, c.k); got != c.want {
			t.Errorf("shardOf(%v, %d) = %d, want %d", bounds, c.k, got, c.want)
		}
	}
	if got := shardOf(nil, 12345); got != 0 {
		t.Errorf("shardOf(nil, k) = %d, want 0", got)
	}

	// Duplicate (non-strict) boundaries leave the middle shard empty
	// but still route deterministically.
	dup := []keys.Key{10, 10, 20}
	if got := shardOf(dup, 10); got != 2 {
		t.Errorf("shardOf(dup, 10) = %d, want 2", got)
	}
	if got := shardOf(dup, 9); got != 0 {
		t.Errorf("shardOf(dup, 9) = %d, want 0", got)
	}

	// The binary-search path (> 16 bounds) must agree with the linear
	// path.
	var wide []keys.Key
	for i := 1; i <= 32; i++ {
		wide = append(wide, keys.Key(i*100))
	}
	for _, k := range []keys.Key{0, 99, 100, 1650, 3200, 9999} {
		lin := 0
		for lin < len(wide) && k >= wide[lin] {
			lin++
		}
		if got := shardOf(wide, k); got != lin {
			t.Errorf("shardOf(wide, %d) = %d, want %d", k, got, lin)
		}
	}
}

// TestSplitterTable drives the splitter/merger over the tricky shapes
// named in the issue: empty shards, duplicate keys inside one batch,
// update/delete-only batches, and batches that hit one shard only.
func TestSplitterTable(t *testing.T) {
	bounds := []keys.Key{100, 200} // 3 shards: [0,100) [100,200) [200,∞)
	cases := []struct {
		name     string
		qs       []keys.Query
		wantSub  [][]keys.Query // expected sub-batches (with renumbered Idx)
		wantSole int
	}{
		{
			name:     "empty batch",
			qs:       nil,
			wantSub:  [][]keys.Query{{}, {}, {}},
			wantSole: -1,
		},
		{
			name: "spread over all shards",
			qs: []keys.Query{
				{Key: 50, Op: keys.OpSearch, Idx: 0},
				{Key: 150, Op: keys.OpInsert, Value: 1, Idx: 1},
				{Key: 250, Op: keys.OpDelete, Idx: 2},
				{Key: 60, Op: keys.OpSearch, Idx: 3},
			},
			wantSub: [][]keys.Query{
				{{Key: 50, Op: keys.OpSearch, Idx: 0}, {Key: 60, Op: keys.OpSearch, Idx: 1}},
				{{Key: 150, Op: keys.OpInsert, Value: 1, Idx: 0}},
				{{Key: 250, Op: keys.OpDelete, Idx: 0}},
			},
			wantSole: -1,
		},
		{
			name: "middle shard empty",
			qs: []keys.Query{
				{Key: 10, Op: keys.OpInsert, Value: 7, Idx: 0},
				{Key: 300, Op: keys.OpSearch, Idx: 1},
			},
			wantSub: [][]keys.Query{
				{{Key: 10, Op: keys.OpInsert, Value: 7, Idx: 0}},
				{},
				{{Key: 300, Op: keys.OpSearch, Idx: 0}},
			},
			wantSole: -1,
		},
		{
			name: "duplicate keys keep stable order in one shard",
			qs: []keys.Query{
				{Key: 150, Op: keys.OpInsert, Value: 1, Idx: 0},
				{Key: 150, Op: keys.OpSearch, Idx: 1},
				{Key: 150, Op: keys.OpDelete, Idx: 2},
				{Key: 150, Op: keys.OpSearch, Idx: 3},
			},
			wantSub: [][]keys.Query{
				{},
				{
					{Key: 150, Op: keys.OpInsert, Value: 1, Idx: 0},
					{Key: 150, Op: keys.OpSearch, Idx: 1},
					{Key: 150, Op: keys.OpDelete, Idx: 2},
					{Key: 150, Op: keys.OpSearch, Idx: 3},
				},
				{},
			},
			wantSole: 1,
		},
		{
			name: "update/delete-only batch across shards",
			qs: []keys.Query{
				{Key: 99, Op: keys.OpDelete, Idx: 0},
				{Key: 100, Op: keys.OpInsert, Value: 5, Idx: 1},
				{Key: 200, Op: keys.OpDelete, Idx: 2},
				{Key: 199, Op: keys.OpInsert, Value: 6, Idx: 3},
			},
			wantSub: [][]keys.Query{
				{{Key: 99, Op: keys.OpDelete, Idx: 0}},
				{{Key: 100, Op: keys.OpInsert, Value: 5, Idx: 0}, {Key: 199, Op: keys.OpInsert, Value: 6, Idx: 1}},
				{{Key: 200, Op: keys.OpDelete, Idx: 0}},
			},
			wantSole: -1,
		},
		{
			name: "single-shard partial batch (fast path)",
			qs: []keys.Query{
				{Key: 250, Op: keys.OpSearch, Idx: 0},
				{Key: 201, Op: keys.OpInsert, Value: 9, Idx: 1},
				{Key: 250, Op: keys.OpSearch, Idx: 2},
			},
			wantSub: [][]keys.Query{
				{},
				{},
				{
					{Key: 250, Op: keys.OpSearch, Idx: 0},
					{Key: 201, Op: keys.OpInsert, Value: 9, Idx: 1},
					{Key: 250, Op: keys.OpSearch, Idx: 2},
				},
			},
			wantSole: 2,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := newSplitter(len(bounds) + 1)
			sp.split(c.qs, bounds, nil)
			if sp.sole != c.wantSole {
				t.Fatalf("sole = %d, want %d", sp.sole, c.wantSole)
			}
			for s := range c.wantSub {
				got := sp.subs[s]
				want := c.wantSub[s]
				if len(got) != len(want) {
					t.Fatalf("shard %d: %d queries, want %d", s, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shard %d query %d = %+v, want %+v", s, i, got[i], want[i])
					}
				}
			}
			// Round-trip: orig mapping must reproduce the original index
			// for every routed query.
			seen := make(map[int32]bool)
			for s := range sp.subs {
				for i := range sp.subs[s] {
					oi := sp.orig[s][i]
					if seen[oi] {
						t.Fatalf("original index %d routed twice", oi)
					}
					seen[oi] = true
					if c.qs[oi].Key != sp.subs[s][i].Key {
						t.Fatalf("orig[%d][%d] = %d points at key %d, want %d",
							s, i, oi, c.qs[oi].Key, sp.subs[s][i].Key)
					}
				}
			}
			if len(seen) != len(c.qs) {
				t.Fatalf("routed %d of %d queries", len(seen), len(c.qs))
			}
		})
	}
}

// TestMergeResultIndexStability checks the merger restores results to
// the exact original positions, including when some shards answered
// nothing.
func TestMergeResultIndexStability(t *testing.T) {
	bounds := []keys.Key{100, 200}
	qs := []keys.Query{
		{Key: 250, Op: keys.OpSearch, Idx: 0}, // shard 2
		{Key: 50, Op: keys.OpSearch, Idx: 1},  // shard 0
		{Key: 150, Op: keys.OpInsert, Idx: 2}, // shard 1 — no result
		{Key: 51, Op: keys.OpSearch, Idx: 3},  // shard 0
	}
	sp := newSplitter(len(bounds) + 1)
	sp.split(qs, bounds, nil)

	subRS := make([]*keys.ResultSet, 3)
	for s := range subRS {
		subRS[s] = keys.NewResultSet(len(sp.subs[s]))
	}
	// Simulate shard answers: value = 1000+key for every search.
	for s := range sp.subs {
		for i, q := range sp.subs[s] {
			if q.Op == keys.OpSearch {
				subRS[s].Set(int32(i), 1000+keys.Value(q.Key), true)
			}
		}
	}

	rs := keys.NewResultSet(len(qs))
	sp.merge(subRS, rs)

	wantVals := map[int32]keys.Value{0: 1250, 1: 1050, 3: 1051}
	for idx := int32(0); idx < int32(len(qs)); idx++ {
		r, ok := rs.Get(idx)
		want, isSearch := wantVals[idx]
		if isSearch != ok {
			t.Fatalf("idx %d: recorded=%v, want %v", idx, ok, isSearch)
		}
		if ok && (r.Value != want || !r.Found) {
			t.Fatalf("idx %d: %+v, want value %d", idx, r, want)
		}
	}
	if rs.Answered() != 3 {
		t.Fatalf("Answered = %d, want 3", rs.Answered())
	}
}

// TestSplitScanStraddling pins the scan split-and-merge rule: a scan
// straddling shard boundaries is clipped into per-shard sub-ranges
// that keep the original limit, its rows are concatenated in shard
// (= key) order, and the limit is applied globally at the end.
func TestSplitScanStraddling(t *testing.T) {
	bounds := []keys.Key{100, 200} // shards: [0,100) [100,200) [200,..)
	qs := keys.Number([]keys.Query{
		keys.Scan(50, 250, 0),  // 0: straddles all three shards
		keys.Scan(120, 180, 0), // 1: inside shard 1
		keys.Scan(90, 110, 3),  // 2: straddles one boundary, limit 3
		keys.Search(150),       // 3: point query rides along
	})
	sp := newSplitter(len(bounds) + 1)
	sp.split(qs, bounds, nil)

	if sp.sole >= 0 {
		t.Fatalf("sole = %d, want -1 (straddlers defeat the fast path)", sp.sole)
	}
	// Clip checks: shard 0 gets [50,100) and [90,100); shard 1 gets
	// [100,200), [120,180), [100,110); shard 2 gets [200,250).
	type rng struct{ lo, hi keys.Key }
	wantRanges := [][]rng{
		{{50, 100}, {90, 100}},
		{{100, 200}, {120, 180}, {100, 110}},
		{{200, 250}},
	}
	for s, want := range wantRanges {
		var got []rng
		for _, q := range sp.subs[s] {
			if q.Op == keys.OpScan {
				got = append(got, rng{q.Key, q.Key2})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d: scan ranges %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shard %d scan %d: %v, want %v", s, i, got[i], want[i])
			}
		}
	}
	// Every sub-scan keeps the original limit (the merger applies it).
	for s := range sp.subs {
		for _, q := range sp.subs[s] {
			if q.Op != keys.OpScan {
				continue
			}
			orig := qs[sp.orig[s][q.Idx]]
			if q.Value != orig.Value {
				t.Fatalf("shard %d: sub-scan limit %d, want %d", s, q.Value, orig.Value)
			}
		}
	}

	// Simulate shard answers: each shard returns one row per 10-wide
	// step of its clipped range (keys at multiples of 10).
	subRS := make([]*keys.ResultSet, 3)
	for s := range subRS {
		subRS[s] = keys.NewResultSet(len(sp.subs[s]))
		subRS[s].EnsureScans()
		for i, q := range sp.subs[s] {
			if q.Op != keys.OpScan {
				subRS[s].Set(int32(i), 7, true)
				continue
			}
			var rows []keys.KV
			for k := (q.Key + 9) / 10 * 10; k < q.Key2; k += 10 {
				rows = append(rows, keys.KV{Key: k, Value: keys.Value(k)})
			}
			subRS[s].SetScan(int32(i), rows)
		}
	}
	rs := keys.NewResultSet(len(qs))
	sp.merge(subRS, rs)

	check := func(idx int32, want []keys.Key) {
		t.Helper()
		rows, ok := rs.ScanRows(idx)
		if !ok {
			t.Fatalf("scan %d: no merged rows", idx)
		}
		if len(rows) != len(want) {
			t.Fatalf("scan %d: rows %v, want keys %v", idx, rows, want)
		}
		for i, k := range want {
			if rows[i].Key != k {
				t.Fatalf("scan %d row %d: key %d, want %d", idx, i, rows[i].Key, k)
			}
			if i > 0 && rows[i].Key <= rows[i-1].Key {
				t.Fatalf("scan %d: rows out of order: %v", idx, rows)
			}
		}
		r, _ := rs.Get(idx)
		if int(r.Value) != len(want) {
			t.Fatalf("scan %d point result = %+v, want count %d", idx, r, len(want))
		}
	}
	check(0, []keys.Key{50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240})
	check(1, []keys.Key{120, 130, 140, 150, 160, 170})
	check(2, []keys.Key{90, 100}) // hi 110 exclusive; 2 rows, under the limit
	if r, ok := rs.Get(3); !ok || r.Value != 7 {
		t.Fatalf("point query result = %+v (%v)", r, ok)
	}
}

// TestSplitScanLimitAppliedGlobally: a limited straddling scan whose
// per-shard row counts each exceed nothing individually must still be
// truncated to the limit after concatenation.
func TestSplitScanLimitAppliedGlobally(t *testing.T) {
	bounds := []keys.Key{100}
	qs := keys.Number([]keys.Query{keys.Scan(0, 200, 4)})
	sp := newSplitter(len(bounds) + 1)
	sp.split(qs, bounds, nil)

	subRS := []*keys.ResultSet{keys.NewResultSet(1), keys.NewResultSet(1)}
	for s, rows := range [][]keys.KV{
		{{Key: 10, Value: 1}, {Key: 20, Value: 2}, {Key: 30, Value: 3}},
		{{Key: 110, Value: 4}, {Key: 120, Value: 5}, {Key: 130, Value: 6}},
	} {
		subRS[s].EnsureScans()
		subRS[s].SetScan(0, rows)
	}
	rs := keys.NewResultSet(1)
	sp.merge(subRS, rs)
	rows, ok := rs.ScanRows(0)
	if !ok || len(rows) != 4 {
		t.Fatalf("rows = %v (%v), want 4 rows", rows, ok)
	}
	if rows[3].Key != 110 {
		t.Fatalf("rows = %v, want truncation to keys 10..110", rows)
	}
	if r, _ := rs.Get(0); r.Value != 4 || !r.Found {
		t.Fatalf("point result = %+v, want count 4", r)
	}
}
