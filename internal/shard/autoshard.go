package shard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// Traffic-aware autosharding (DESIGN.md §13): a background controller
// watches the heat histogram the splitter feeds (heat.go), recomputes
// traffic-weighted shard boundaries, splits persistently hot shards and
// merges persistently cold ones, and migrates keys between shards in
// small bounded slices — each slice moved while the controller holds
// the scheduling gate exclusively, i.e. exactly at a batch boundary, so
// serving never pauses longer than one inter-batch gap (the old
// stop-the-world Dump+BulkLoad rebalance is gone; Rebalance in
// rebalance.go is now a thin loop over the same bounded moves).
//
// Migration operates strictly below the durability layer: moved pairs
// are written with tree-level Insert/Delete, never through the commit
// hook. Logging migration traffic would be wrong twice over — a replay
// would re-apply "deletes" of keys that merely changed shards, and the
// WAL's per-shard parts would desynchronize from routed batches. The
// WAL records queries, which are shard-agnostic; recovery replays them
// through the then-current routing, so boundary placement is free to
// differ across restarts.
//
// Cache invariant: a key's cache entry lives only in the shard that
// currently owns the key. Every bounded move drains the moved range
// from the donor's cache (flushing dirty state into the donor tree
// before it is scanned) and, defensively, from the receiver's. Without
// the drain a clean resident entry in the old owner could serve a stale
// value if the key range ever moved back.

// AutoshardConfig configures the controller. The zero value disables it
// entirely — no heat map, no controller goroutine, routing hot path
// byte- and alloc-identical to autoshard-less builds.
type AutoshardConfig struct {
	// Enabled turns the controller on (requires Shards > 1).
	Enabled bool
	// Buckets is the heat histogram resolution (default 256). More
	// buckets localize traffic more precisely at 64 B/bucket.
	Buckets int
	// DecayShift sets the per-batch EWMA decay: every bucket loses
	// value>>DecayShift each batch (default 3, i.e. 1/8 — a bucket
	// receiving r queries/batch converges to 8r).
	DecayShift uint
	// Interval is the background controller period. 0 means the default
	// (50ms); negative disables the background goroutine so the
	// controller only acts on explicit AutoshardStep calls.
	Interval time.Duration
	// SplitAbove triggers a split when the hottest shard's heat exceeds
	// this multiple of the mean for Hysteresis consecutive steps
	// (default 1.6).
	SplitAbove float64
	// MergeBelow triggers a merge when the coldest shard's heat falls
	// below this multiple of the mean for Hysteresis consecutive steps
	// (default 0.25).
	MergeBelow float64
	// Hysteresis is the number of consecutive over/under-threshold
	// controller steps required before a structural change (default 3);
	// it is what keeps the controller from flapping on noise.
	Hysteresis int
	// MaxStep bounds the pairs migrated per controller step (default
	// 4096) — the unit of non-stop-the-world migration.
	MaxStep int
	// MaxShards caps splits (default 16); MinShards floors merges
	// (default and minimum 2).
	MaxShards int
	MinShards int
	// MinHeat is the total histogram heat below which the controller
	// idles (default 256): no boundary chasing on traffic too thin to
	// measure.
	MinHeat int64
}

// withDefaults fills unset fields; Enabled passes through.
func (c AutoshardConfig) withDefaults() AutoshardConfig {
	if c.Buckets <= 0 {
		c.Buckets = 256
	}
	if c.DecayShift == 0 {
		c.DecayShift = 3
	}
	if c.Interval == 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.SplitAbove <= 1 {
		c.SplitAbove = 1.6
	}
	if c.MergeBelow <= 0 || c.MergeBelow >= 1 {
		c.MergeBelow = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 4096
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	if c.MinShards < 2 {
		c.MinShards = 2
	}
	if c.MinHeat <= 0 {
		c.MinHeat = 256
	}
	return c
}

// moveImbalanceFloor is the imbalance (max shard heat / mean) below
// which boundary moves are not worth their migration traffic.
const moveImbalanceFloor = 1.05

// autoController holds the controller's policy state. All mutable
// fields are touched only from step(), which runs under the scheduling
// gate's exclusive lock (or, gate-less, under the engine's
// single-caller contract).
type autoController struct {
	e   *Engine
	cfg AutoshardConfig
	met *autoMetrics // nil when metrics are off

	// hysteresis streaks: consecutive steps the split/merge condition
	// held.
	hotStreak  int
	coldStreak int
	// drain, when >= 0, is the shard currently being emptied into a
	// neighbor (a cold-merge in progress, one bounded move per step).
	drain int

	// scratch reused across steps.
	buckets []int64
	share   []float64

	// background loop lifecycle.
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

func newAutoController(e *Engine, cfg AutoshardConfig) *autoController {
	return &autoController{
		e:       e,
		cfg:     cfg,
		met:     newAutoMetrics(e.cfg.Engine.Metrics),
		drain:   -1,
		buckets: make([]int64, cfg.Buckets),
	}
}

// AutoshardReport summarizes one controller step.
type AutoshardReport struct {
	// Shards is the shard count after the step.
	Shards int
	// Imbalance is the observed max-shard-heat/mean ratio (0 while a
	// drain is in progress or the controller idled).
	Imbalance float64
	// Moved is the number of pairs migrated by this step.
	Moved int
	// Split/Merge report a structural change made by this step (Merge
	// reports the completed shard removal, not the drain's start).
	Split bool
	Merge bool
	// Idle is true when total heat was below MinHeat and nothing was
	// examined.
	Idle bool
}

// AutoshardStep runs one controller step at a batch boundary: it takes
// the scheduling gate exclusively (waiting out every in-flight batch),
// applies at most one bounded action — a boundary move of at most
// MaxStep pairs, a split, or one drain slice of a merge — and releases
// the gate. No-op when autoshard is off. Without a gate installed the
// caller must not run it concurrently with batch processing.
func (e *Engine) AutoshardStep() AutoshardReport {
	if e.auto == nil {
		return AutoshardReport{Shards: len(e.shards)}
	}
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	return e.auto.step()
}

// StartAutoshard launches the background controller loop (one
// AutoshardStep per cfg.Interval). No-op when autoshard is off, the
// interval is negative (manual stepping), or the loop already runs.
func (e *Engine) StartAutoshard() {
	if e.auto == nil || e.auto.cfg.Interval <= 0 {
		return
	}
	e.auto.start()
}

// StopAutoshard stops the background loop and waits for it to exit.
// Safe to call multiple times and when never started.
func (e *Engine) StopAutoshard() {
	if e.auto != nil {
		e.auto.stopBackground()
	}
}

func (a *autoController) start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop(a.stop, a.done)
}

func (a *autoController) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.e.AutoshardStep()
		}
	}
}

func (a *autoController) stopBackground() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// step runs one controller decision. Priority: finish an in-progress
// drain, then rebalance boundaries by traffic weight, then structural
// split/merge — structural changes fire only once boundary moves have
// converged (deadband) yet the imbalance persists through Hysteresis
// steps.
func (a *autoController) step() AutoshardReport {
	e := a.e
	a.met.stepped()
	rep := AutoshardReport{Shards: len(e.shards)}

	if a.drain >= 0 {
		a.drainStep(&rep)
		rep.Shards = len(e.shards)
		a.met.publish(len(e.shards), 0, nil)
		return rep
	}

	total := e.heat.load(a.buckets)
	if total < a.cfg.MinHeat {
		rep.Idle = true
		a.met.publish(len(e.shards), 0, nil)
		return rep
	}

	share := a.shardHeat()
	mean := float64(total) / float64(len(share))
	maxS, minS := 0, 0
	for s, v := range share {
		if v > share[maxS] {
			maxS = s
		}
		if v < share[minS] {
			minS = s
		}
	}
	imb := share[maxS] / mean
	rep.Imbalance = imb

	// Hysteresis streaks accumulate whenever the condition holds, even
	// on steps spent moving boundaries: a hot spike that boundary moves
	// absorb resets the streak before it matters.
	if share[maxS] >= a.cfg.SplitAbove*mean && len(e.shards) < a.cfg.MaxShards {
		a.hotStreak++
	} else {
		a.hotStreak = 0
	}
	if share[minS] <= a.cfg.MergeBelow*mean && len(e.shards) > a.cfg.MinShards {
		a.coldStreak++
	} else {
		a.coldStreak = 0
	}

	// Traffic-weighted boundary move: chase the split point whose
	// cumulative-heat error is largest, one bounded slice per step.
	if imb > moveImbalanceFloor {
		if i, target, ok := a.worstBoundary(total); ok {
			rep.Moved = e.moveBoundary(i, target, a.cfg.MaxStep, true)
			a.met.moved(rep.Moved)
			a.met.publish(len(e.shards), imb, share)
			return rep
		}
	}

	// Structural changes are deferred while a stream is active: the
	// per-shard stream channels are fixed for the stream's lifetime.
	// Boundary moves (above) and drain slices remain allowed.
	if a.hotStreak >= a.cfg.Hysteresis && !e.streaming {
		if err := e.splitShard(maxS); err == nil {
			rep.Split = true
			a.hotStreak, a.coldStreak = 0, 0
			a.met.splitDone()
		}
	} else if a.coldStreak >= a.cfg.Hysteresis {
		a.drain = minS
		a.hotStreak, a.coldStreak = 0, 0
		a.drainStep(&rep)
	}
	rep.Shards = len(e.shards)
	a.met.publish(len(e.shards), imb, share)
	return rep
}

// shardHeat attributes the histogram to shards, splitting a bucket that
// straddles a boundary by linear overlap fraction, and returns the
// per-shard totals (scratch, valid until the next step).
func (a *autoController) shardHeat() []float64 {
	e := a.e
	h := e.heat
	n := len(e.shards)
	if cap(a.share) < n {
		a.share = make([]float64, n)
	}
	share := a.share[:n]
	for i := range share {
		share[i] = 0
	}
	for b, v := range a.buckets {
		if v <= 0 {
			continue
		}
		bl := uint64(h.lowOf(b))
		bh := bl + h.width()
		if b == h.buckets-1 || bh < bl {
			// Last bucket also absorbs keys above keyMax; treat it as
			// reaching the top of the key space.
			bh = math.MaxUint64
		}
		s1 := shardOf(e.bounds, keys.Key(bl))
		s2 := shardOf(e.bounds, keys.Key(bh-1))
		if s1 == s2 {
			share[s1] += float64(v)
			continue
		}
		denom := float64(bh - bl)
		for s := s1; s <= s2; s++ {
			lo := bl
			if s > s1 {
				lo = uint64(e.bounds[s-1])
			}
			hi := bh
			if s < s2 {
				hi = uint64(e.bounds[s])
			}
			share[s] += float64(v) * float64(hi-lo) / denom
		}
	}
	return share
}

// cumAt returns the histogram heat accumulated strictly below key k
// (linear interpolation inside k's bucket).
func (a *autoController) cumAt(k keys.Key) float64 {
	h := a.e.heat
	b := h.bucketOf(k)
	cum := 0.0
	for j := 0; j < b; j++ {
		if v := a.buckets[j]; v > 0 {
			cum += float64(v)
		}
	}
	if v := a.buckets[b]; v > 0 {
		cum += float64(v) * float64(uint64(k)-uint64(h.lowOf(b))) / float64(h.width())
	}
	return cum
}

// keyAtCum returns the key at which cumulative heat reaches goal
// (linear interpolation inside the crossing bucket).
func (a *autoController) keyAtCum(goal float64) keys.Key {
	h := a.e.heat
	cum := 0.0
	for b, v := range a.buckets {
		if v <= 0 {
			continue
		}
		if cum+float64(v) >= goal {
			frac := (goal - cum) / float64(v)
			off := uint64(frac * float64(h.width()))
			if off >= h.width() {
				off = h.width() - 1
			}
			return h.lowOf(b) + keys.Key(off)
		}
		cum += float64(v)
	}
	return keys.Key(math.MaxUint64)
}

// worstBoundary picks the split point farthest (in heat terms) from its
// traffic-weighted target — the key where cumulative heat would be
// exactly (i+1)/n of the total — and returns its index and target.
// Boundaries within one bucket width of their target are in the
// deadband and left alone, as are layouts whose worst heat error is
// under 5% of a fair share; ok is false when every boundary is settled.
func (a *autoController) worstBoundary(total int64) (idx int, target keys.Key, ok bool) {
	e := a.e
	n := len(e.shards)
	width := e.heat.width()
	bestErr := 0.0
	idx = -1
	for i := 0; i < n-1; i++ {
		goal := float64(total) * float64(i+1) / float64(n)
		t := a.keyAtCum(goal)
		cur := e.bounds[i]
		var d uint64
		if t > cur {
			d = uint64(t - cur)
		} else {
			d = uint64(cur - t)
		}
		if d < width {
			continue
		}
		if err := math.Abs(a.cumAt(cur) - goal); err > bestErr {
			idx, target, bestErr = i, t, err
		}
	}
	if idx < 0 || bestErr < 0.05*float64(total)/float64(n) {
		return 0, 0, false
	}
	return idx, target, true
}

// moveBoundary shifts bounds[i] — the split point between shards i and
// i+1 — toward target, migrating at most budget pairs between the two
// trees, and returns the pairs migrated. The bound only ever moves past
// keys that were actually migrated, so routing stays exact mid-journey;
// when the range holds more than budget pairs the bound lands on the
// first key left behind and later calls continue from there. When warm
// is set the moved pairs are re-admitted into the receiver's cache as
// clean entries: traffic-weighted moves shift the hottest range in the
// system, and dropping it from both caches would serve misses until
// the next write to each key. Cold paths (merge drains, count-based
// rebalance) pass warm=false so cold keys never evict hot cache
// entries. The caller must hold the gate exclusively (or otherwise
// exclude batch processing). Also used by Rebalance (rebalance.go).
func (e *Engine) moveBoundary(i int, target keys.Key, budget int, warm bool) int {
	b := e.bounds[i]
	if budget <= 0 || target == b {
		return 0
	}
	// Clamp to the neighboring split points so bounds stay
	// non-decreasing and only shards i and i+1 exchange keys.
	if i > 0 && target < e.bounds[i-1] {
		target = e.bounds[i-1]
	}
	if i < len(e.bounds)-1 && target > e.bounds[i+1] {
		target = e.bounds[i+1]
	}
	if target == b {
		return 0
	}
	var moved int
	var newBound keys.Key
	if target > b {
		moved, newBound = e.migrateUp(i, b, target, budget, warm)
	} else {
		moved, newBound = e.migrateDown(i, target, b, budget, warm)
	}
	if newBound != b {
		// Copy-on-write keeps any bounds slice handed out (Bounds) or
		// captured by a past split immutable.
		nb := append([]keys.Key(nil), e.bounds...)
		nb[i] = newBound
		e.bounds = nb
	}
	if moved > 0 {
		e.shst.RecordMove(moved)
	}
	return moved
}

// migrateUp raises bounds[i]: shard i grows, taking [lo, hi) from shard
// i+1, lowest keys first. Returns pairs moved and the new bound (hi
// when the whole range fit in budget, else the first key not moved).
func (e *Engine) migrateUp(i int, lo, hi keys.Key, budget int, warm bool) (int, keys.Key) {
	donor, recv := e.shards[i+1], e.shards[i]
	donor.DrainCacheRange(lo, hi)
	recv.DrainCacheRange(lo, hi)
	dt := donor.Processor().Tree()
	ks := make([]keys.Key, 0, budget+1)
	vs := make([]keys.Value, 0, budget+1)
	dt.ScanRange(lo, hi, func(k keys.Key, v keys.Value) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return len(ks) <= budget
	})
	newBound := hi
	if len(ks) > budget {
		newBound = ks[budget]
		ks, vs = ks[:budget], vs[:budget]
	}
	rt := recv.Processor().Tree()
	for j := range ks {
		rt.Insert(ks[j], vs[j])
		dt.Delete(ks[j])
	}
	if warm {
		recv.WarmPairs(ks, vs)
	}
	return len(ks), newBound
}

// migrateDown lowers bounds[i]: shard i shrinks, giving [lo, hi) to
// shard i+1, highest keys first — the bound must cover every key that
// moved, so when the range exceeds budget only its top budget keys move
// and the bound lands on the smallest of them (tracked with a ring
// buffer over the scan; the tree cannot iterate backwards).
func (e *Engine) migrateDown(i int, lo, hi keys.Key, budget int, warm bool) (int, keys.Key) {
	donor, recv := e.shards[i], e.shards[i+1]
	donor.DrainCacheRange(lo, hi)
	recv.DrainCacheRange(lo, hi)
	dt := donor.Processor().Tree()
	rk := make([]keys.Key, budget)
	rv := make([]keys.Value, budget)
	count := 0
	dt.ScanRange(lo, hi, func(k keys.Key, v keys.Value) bool {
		rk[count%budget] = k
		rv[count%budget] = v
		count++
		return true
	})
	if count == 0 {
		return 0, lo
	}
	var ks []keys.Key
	var vs []keys.Value
	newBound := lo
	if count <= budget {
		ks, vs = rk[:count], rv[:count]
	} else {
		start := count % budget // ring position of the smallest retained key
		ks = make([]keys.Key, 0, budget)
		vs = make([]keys.Value, 0, budget)
		ks = append(append(ks, rk[start:]...), rk[:start]...)
		vs = append(append(vs, rv[start:]...), rv[:start]...)
		newBound = ks[0]
	}
	rt := recv.Processor().Tree()
	for j := range ks {
		rt.Insert(ks[j], vs[j])
		dt.Delete(ks[j])
	}
	if warm {
		recv.WarmPairs(ks, vs)
	}
	return len(ks), newBound
}

// splitShard inserts an empty shard adjacent to hot shard s by
// duplicating one of its boundaries — an O(1) structural change; the
// traffic-weighted boundary moves of subsequent steps then shift keys
// into the newcomer incrementally. The empty shard goes above s (the
// duplicate of s's upper bound), or below when s is the last shard,
// whose upper bound is +∞ and cannot be duplicated.
func (e *Engine) splitShard(s int) error {
	at, boundAt := s+1, s
	bound := keys.Key(0)
	if s == len(e.shards)-1 {
		at, boundAt = s, s-1
		bound = e.bounds[s-1]
	} else {
		bound = e.bounds[s]
	}
	return e.insertShard(at, boundAt, bound)
}

// insertShard splices a fresh empty shard in at index at with the given
// boundary value spliced in at boundAt. Caller must hold the gate
// exclusively and must not be streaming.
func (e *Engine) insertShard(at, boundAt int, bound keys.Key) error {
	sh, err := core.NewEngine(e.cfg.Engine)
	if err != nil {
		return fmt.Errorf("autoshard split: %w", err)
	}

	shards := make([]*core.Engine, 0, len(e.shards)+1)
	shards = append(shards, e.shards[:at]...)
	shards = append(shards, sh)
	shards = append(shards, e.shards[at:]...)
	e.shards = shards

	nb := make([]keys.Key, 0, len(e.bounds)+1)
	nb = append(nb, e.bounds[:boundAt]...)
	nb = append(nb, bound)
	nb = append(nb, e.bounds[boundAt:]...)
	e.bounds = nb

	subRS := make([]*keys.ResultSet, 0, len(e.shards))
	subRS = append(subRS, e.subRS[:at]...)
	subRS = append(subRS, keys.NewResultSet(0))
	subRS = append(subRS, e.subRS[at:]...)
	e.subRS = subRS

	if e.committer != nil {
		pc := &partCommitter{eng: e, gc: e.committer}
		sh.SetCommitter(pc)
		partCs := make([]*partCommitter, 0, len(e.shards))
		partCs = append(partCs, e.partCs[:at]...)
		partCs = append(partCs, pc)
		partCs = append(partCs, e.partCs[at:]...)
		e.partCs = partCs
	}

	e.sp = newSplitter(len(e.shards))
	e.shst.InsertSlot(at)
	return nil
}

// removeShard splices out shard at (whose key range and tree must be
// empty) and the boundary that delimited it. Caller must hold the gate
// exclusively and must not be streaming.
func (e *Engine) removeShard(at int) {
	e.shards[at].Close()
	e.shards = append(e.shards[:at:at], e.shards[at+1:]...)

	bi := at - 1
	if bi < 0 {
		bi = 0
	}
	e.bounds = append(e.bounds[:bi:bi], e.bounds[bi+1:]...)
	e.subRS = append(e.subRS[:at:at], e.subRS[at+1:]...)
	if e.partCs != nil {
		e.partCs = append(e.partCs[:at:at], e.partCs[at+1:]...)
	}
	e.sp = newSplitter(len(e.shards))
	e.shst.RemoveSlot(at)
}

// drainStep advances a cold-merge: one bounded move of the draining
// shard's keys into a neighbor, and — once the shard is empty — its
// removal. Removal is structural and so waits for any active stream to
// finish; the drain stays parked until then.
func (a *autoController) drainStep(rep *AutoshardReport) {
	e := a.e
	c := a.drain
	n := len(e.shards)
	if n <= a.cfg.MinShards || c >= n {
		a.drain = -1
		return
	}
	if c == 0 {
		// Shard 0 serves [0, bounds[0]); lower that bound to 0 to hand
		// everything to shard 1.
		rep.Moved = e.moveBoundary(0, 0, a.cfg.MaxStep, false)
		a.met.moved(rep.Moved)
		if e.bounds[0] != 0 {
			return // more slices to go
		}
	} else {
		// Raise the bound below c past c's upper end, handing its keys
		// to shard c-1. The last shard's upper end is +∞.
		target := keys.Key(math.MaxUint64)
		if c < n-1 {
			target = e.bounds[c]
		}
		rep.Moved = e.moveBoundary(c-1, target, a.cfg.MaxStep, false)
		a.met.moved(rep.Moved)
		if e.bounds[c-1] != target {
			return
		}
		if t := e.shards[c].Processor().Tree(); t.Len() > 0 {
			if c == n-1 {
				// [MaxUint64, ∞) can still hold the single maximal key,
				// which no exclusive-upper-bound move can express; hand
				// it over directly.
				e.shards[c].Flush()
				rt := e.shards[c-1].Processor().Tree()
				t.Scan(func(k keys.Key, v keys.Value) bool {
					rt.Insert(k, v)
					return true
				})
				for t.Len() > 0 {
					var k0 keys.Key
					t.Scan(func(k keys.Key, v keys.Value) bool {
						k0 = k
						return false
					})
					t.Delete(k0)
				}
			} else {
				return // keys arrived mid-drain; keep moving
			}
		}
	}
	if t := e.shards[c].Processor().Tree(); t.Len() > 0 {
		return
	}
	if e.streaming {
		return // park: channel plumbing is fixed until the stream ends
	}
	e.removeShard(c)
	a.drain = -1
	a.hotStreak, a.coldStreak = 0, 0
	rep.Merge = true
	a.met.mergeDone()
}

// autoMetrics is the nil-safe metrics handle bundle for the controller
// (mirrors shardMetrics): counters for structural activity and
// migration volume, gauges for the live shard count, imbalance, and
// per-shard heat. Per-shard heat gauges are created on demand as the
// shard count grows; slots beyond the current count are zeroed so a
// merge does not leave a stale reading behind.
type autoMetrics struct {
	reg      *metrics.Registry
	shards   *metrics.Gauge
	imb      *metrics.Gauge
	splits   *metrics.Counter
	merges   *metrics.Counter
	moves    *metrics.Counter
	migrated *metrics.Counter
	steps    *metrics.Counter
	heat     []*metrics.Gauge
}

func newAutoMetrics(reg *metrics.Registry) *autoMetrics {
	if reg == nil {
		return nil
	}
	return &autoMetrics{
		reg:      reg,
		shards:   reg.Gauge("autoshard_shards"),
		imb:      reg.Gauge("autoshard_imbalance_permille"),
		splits:   reg.Counter("autoshard_splits_total"),
		merges:   reg.Counter("autoshard_merges_total"),
		moves:    reg.Counter("autoshard_moves_total"),
		migrated: reg.Counter("autoshard_migrated_total"),
		steps:    reg.Counter("autoshard_steps_total"),
	}
}

func (m *autoMetrics) stepped() {
	if m != nil {
		m.steps.Add(1)
	}
}

func (m *autoMetrics) splitDone() {
	if m != nil {
		m.splits.Add(1)
	}
}

func (m *autoMetrics) mergeDone() {
	if m != nil {
		m.merges.Add(1)
	}
}

func (m *autoMetrics) moved(pairs int) {
	if m == nil {
		return
	}
	m.moves.Add(1)
	if pairs > 0 {
		m.migrated.Add(int64(pairs))
	}
}

func (m *autoMetrics) publish(shards int, imb float64, share []float64) {
	if m == nil {
		return
	}
	m.shards.Set(int64(shards))
	m.imb.Set(int64(imb * 1000))
	for len(m.heat) < len(share) {
		m.heat = append(m.heat, m.reg.Gauge(fmt.Sprintf("autoshard_heat_shard_%d", len(m.heat))))
	}
	for i, g := range m.heat {
		if i < len(share) {
			g.Set(int64(share[i]))
		} else {
			g.Set(0)
		}
	}
}
