package shard

import (
	"sync"

	"repro/internal/core"
	"repro/internal/keys"
)

// GroupCommitter is the sharded durability hook (DESIGN.md §7). A batch
// that splits across shards commits as a group: the engine reserves one
// LSN (BeginBatch), each participating shard appends its own surviving
// sub-batch under that LSN (CommitPart, from the shard's goroutine,
// before the shard applies anything), and once every shard's part is
// logged the engine appends the commit marker (EndBatch). Replay
// discards parts without a marker, so multi-shard batches stay atomic
// across crashes. wal.Log implements this interface.
type GroupCommitter interface {
	BeginBatch() uint64
	CommitPart(lsn uint64, qs []keys.Query) error
	EndBatch(lsn uint64) error
	CommitBatch(qs []keys.Query) error
}

// partCommitter adapts one shard's core.Committer hook onto the group
// log: the dispatcher pushes the batch's reserved LSN before handing the
// shard its sub-batch, and the shard's commit (which runs sub-batches
// strictly in dispatch order) pops it. push and pop run on different
// goroutines, hence the mutex. A group poison (a failed marker or a
// sibling shard's part failure) surfaces here as a commit error, so
// every shard stops applying — no shard's state runs ahead of the group.
type partCommitter struct {
	mu   sync.Mutex
	eng  *Engine
	gc   GroupCommitter
	lsns []uint64
}

func (p *partCommitter) push(lsn uint64) {
	p.mu.Lock()
	p.lsns = append(p.lsns, lsn)
	p.mu.Unlock()
}

// CommitBatch implements core.Committer for the shard's engine.
func (p *partCommitter) CommitBatch(qs []keys.Query) error {
	p.mu.Lock()
	lsn := p.lsns[0]
	p.lsns = p.lsns[1:]
	p.mu.Unlock()
	if err := p.eng.groupErr(); err != nil {
		return err
	}
	return p.gc.CommitPart(lsn, qs)
}

// groupErr reads the sticky group failure (safe from any goroutine).
func (e *Engine) groupErr() error {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	return e.commitErr
}

// poison records the group failure (first error wins).
func (e *Engine) poison(err error) {
	e.cmu.Lock()
	if e.commitErr == nil {
		e.commitErr = err
	}
	e.cmu.Unlock()
}

// SetCommitter installs (or, with nil, removes) the durability hook.
// Must not be called while batches are in flight. With a single shard
// the hook is delegated whole-batch to the shard's engine (one record
// per batch, no part/marker overhead).
func (e *Engine) SetCommitter(gc GroupCommitter) {
	if len(e.shards) == 1 {
		if gc == nil {
			e.shards[0].SetCommitter(nil)
		} else {
			e.shards[0].SetCommitter(core.CommitterFunc(gc.CommitBatch))
		}
		return
	}
	e.committer = gc
	if gc == nil {
		e.partCs = nil
		for _, sh := range e.shards {
			sh.SetCommitter(nil)
		}
		return
	}
	e.partCs = make([]*partCommitter, len(e.shards))
	for s, sh := range e.shards {
		e.partCs[s] = &partCommitter{eng: e, gc: gc}
		sh.SetCommitter(e.partCs[s])
	}
}

// SetGate installs the scheduling gate: every batch holds gate.RLock
// from dispatch until its merge completes, so a writer (snapshot)
// acquiring gate.Lock observes all shards exactly at a batch boundary.
// Must not be called while batches are in flight.
func (e *Engine) SetGate(gate *sync.RWMutex) {
	if len(e.shards) == 1 {
		e.shards[0].SetGate(gate)
		return
	}
	e.gate = gate
}

// CommitErr reports the sticky commit failure, if any — the engine's
// own (a failed commit marker or a shard part failure it observed) or
// any shard's. Once set, batches are dropped unapplied.
func (e *Engine) CommitErr() error {
	if err := e.groupErr(); err != nil {
		return err
	}
	for _, sh := range e.shards {
		if err := sh.CommitErr(); err != nil {
			return err
		}
	}
	return nil
}

// beginCommit reserves the batch's LSN and queues it at every
// participating shard's part committer. Returns 0 when durability is
// off, the engine is poisoned, or the batch is empty (LSNs start at 1).
func (e *Engine) beginCommit(sp *splitter) uint64 {
	if e.committer == nil || e.groupErr() != nil {
		return 0
	}
	lsn := e.committer.BeginBatch()
	for s := range sp.subs {
		if len(sp.subs[s]) > 0 {
			e.partCs[s].push(lsn)
		}
	}
	return lsn
}

// endCommit seals the batch at lsn: if every participating shard logged
// its part cleanly, the commit marker is appended; any failure poisons
// the engine instead (no marker — the batch is discarded on replay, and
// the poison stops every shard's next commit before it applies).
func (e *Engine) endCommit(lsn uint64, sp *splitter) {
	if lsn == 0 || e.groupErr() != nil {
		return
	}
	for s := range sp.subs {
		if len(sp.subs[s]) == 0 {
			continue
		}
		if err := e.shards[s].CommitErr(); err != nil {
			e.poison(err)
			return
		}
	}
	if err := e.committer.EndBatch(lsn); err != nil {
		e.poison(err)
	}
}
