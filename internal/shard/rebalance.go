package shard

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/keys"
)

// Rebalance recomputes the shard boundaries from the keys currently
// stored (the exact key histogram) so that every shard holds an equal
// count, and migrates keys between shards via dump + bulk reinsert.
// Call it between batches — it must not run concurrently with
// ProcessBatch or ProcessStream. Caches are flushed first, so the
// operation is semantically a no-op: the stored pairs and all future
// results are unchanged, only the partition moves.
//
// Returns the number of keys that changed shard.
func (e *Engine) Rebalance() (migrated int, err error) {
	n := len(e.shards)
	if n == 1 {
		e.shst.RecordRebalance(0)
		return 0, nil
	}

	// Flush caches so the trees are authoritative, then collect the
	// global sorted pair list (shard ranges are disjoint and ascending,
	// so concatenating per-shard dumps is already globally sorted).
	perShard := make([]int, n)
	var ks []keys.Key
	var vs []keys.Value
	for s, sh := range e.shards {
		sh.Flush()
		sks, svs := sh.Processor().Tree().Dump()
		perShard[s] = len(sks)
		ks = append(ks, sks...)
		vs = append(vs, svs...)
	}
	total := len(ks)
	if total == 0 {
		e.shst.RecordRebalance(0)
		return 0, nil
	}

	// Equal-count boundaries: shard i gets keys [total*i/n, total*(i+1)/n).
	bounds := make([]keys.Key, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, ks[total*i/n])
	}

	// Count migrations: walk the dump remembering which shard each key
	// came from and where it lands under the new boundaries.
	idx := 0
	for s, cnt := range perShard {
		for j := 0; j < cnt; j++ {
			if shardOf(bounds, ks[idx]) != s {
				migrated++
			}
			idx++
		}
	}

	// Rebuild every shard over its new slice. Bulk loading a fresh tree
	// per shard is O(total) and keeps fill invariants tight; the old
	// engines (pools, caches) are closed and replaced.
	order := e.Order()
	cfg := e.cfg.Engine
	cfg.Palm.Order = order
	fresh := make([]*core.Engine, n)
	lo := 0
	for s := 0; s < n; s++ {
		hi := total
		if s < n-1 {
			hi = lowerBound(ks, bounds[s], lo)
		}
		tree, terr := btree.BulkLoadLayout(order, engineLayout(cfg), ks[lo:hi], vs[lo:hi])
		if terr == nil {
			fresh[s], terr = core.NewEngineWithTree(cfg, tree)
		}
		if terr != nil {
			for _, f := range fresh {
				if f != nil {
					f.Close()
				}
			}
			return 0, fmt.Errorf("shard: rebalance shard %d: %w", s, terr)
		}
		lo = hi
	}
	for s, old := range e.shards {
		old.Close()
		e.shards[s] = fresh[s]
	}
	e.bounds = bounds
	e.sp = newSplitter(bounds)

	e.shst.RecordRebalance(migrated)
	return migrated, nil
}
