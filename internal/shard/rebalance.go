package shard

import (
	"math"

	"repro/internal/keys"
)

// rebalanceChunk bounds the pairs migrated per boundary move during a
// manual Rebalance — the transient working set (one key/value slice)
// instead of the old whole-store concatenation.
const rebalanceChunk = 65536

// Rebalance moves the shard boundaries so that every shard holds an
// equal count of the keys currently stored, using the same bounded
// boundary moves as the autoshard controller (autoshard.go): target
// keys are found by rank inside the owning shard's tree (O(1) extra
// memory), then each boundary walks to its target one bounded slice at
// a time. The old implementation dumped every shard into one global
// key/value pair list and bulk-rebuilt every engine — a transient
// memory spike proportional to the whole store, and a full
// stop-the-world; this one's working set is rebalanceChunk pairs.
//
// Takes the scheduling gate exclusively when one is installed (so it
// self-serializes against batches); gate-less callers must keep the
// engine's single-caller contract. Caches are flushed first, so the
// operation is semantically a no-op: the stored pairs and all future
// results are unchanged, only the partition moves.
//
// Returns the number of pair moves performed; a key crossing several
// shards counts once per hop.
func (e *Engine) Rebalance() (migrated int, err error) {
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	n := len(e.shards)
	if n == 1 {
		e.shst.RecordRebalance()
		return 0, nil
	}

	// Flush caches so the trees are authoritative for counts and ranks.
	for _, sh := range e.shards {
		sh.Flush()
	}
	counts := make([]int, n)
	total := 0
	for s, sh := range e.shards {
		counts[s] = sh.Processor().Tree().Len()
		total += counts[s]
	}
	if total == 0 {
		e.shst.RecordRebalance()
		return 0, nil
	}

	// Equal-count targets: boundary i lands on the key of global rank
	// total*(i+1)/n, so shard i ends up with ranks [total*i/n,
	// total*(i+1)/n). Ranks are resolved before any key moves.
	targets := make([]keys.Key, n-1)
	for i := range targets {
		targets[i] = e.keyAtRank(counts, total*(i+1)/n)
	}

	// Walk every boundary to its target in bounded chunks. moveBoundary
	// clamps to the neighboring bounds, so a boundary whose target lies
	// beyond a not-yet-moved neighbor parks there and finishes on a
	// later pass; each pass settles at least one boundary, so n+1
	// passes always suffice (the guard just caps the loop).
	for pass := 0; pass < n+1; pass++ {
		progress := false
		for i := 0; i < n-1; i++ {
			for e.bounds[i] != targets[i] {
				prev := e.bounds[i]
				migrated += e.moveBoundary(i, targets[i], rebalanceChunk, false)
				if e.bounds[i] == prev {
					break // clamped by a neighbor; next pass
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	e.shst.RecordRebalance()
	return migrated, nil
}

// keyAtRank returns the key of global rank r (0-based over the sorted
// union of all shards): it locates the shard owning the rank from the
// per-shard counts and scans only that shard's tree up to the local
// rank.
func (e *Engine) keyAtRank(counts []int, r int) keys.Key {
	cum := 0
	for s, c := range counts {
		if r < cum+c {
			local := r - cum
			out := keys.Key(math.MaxUint64)
			j := 0
			e.shards[s].Processor().Tree().Scan(func(k keys.Key, _ keys.Value) bool {
				if j == local {
					out = k
					return false
				}
				j++
				return true
			})
			return out
		}
		cum += c
	}
	return keys.Key(math.MaxUint64)
}
