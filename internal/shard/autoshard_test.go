package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// seedPairs inserts keys 0, step, 2·step, … < span through one batch
// and mirrors them into the oracle.
func seedPairs(t *testing.T, e *Engine, orc *oracle.Oracle, span, step int) {
	t.Helper()
	var qs []keys.Query
	for k := 0; k < span; k += step {
		qs = append(qs, keys.Insert(keys.Key(k), keys.Value(k)+3))
	}
	keys.Number(qs)
	orc.ApplyAll(append([]keys.Query(nil), qs...), nil)
	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)
}

// injectHeat records key n times into the engine's heat map, bypassing
// batches (which would also decay), so policy tests control the
// histogram exactly.
func injectHeat(e *Engine, k keys.Key, n int) {
	for i := 0; i < n; i++ {
		e.heat.record(k)
	}
}

// coolHeat decays the heat map to zero, clearing residue left by
// seeding batches so injectHeat controls the histogram exactly.
func coolHeat(e *Engine) {
	for i := 0; i < 256; i++ {
		e.heat.decay()
	}
}

// checkStore asserts the engine's contents equal the oracle's.
func checkStore(t *testing.T, tag string, e *Engine, orc *oracle.Oracle) {
	t.Helper()
	oks, ovs := orc.Dump()
	ks, vs := e.Dump()
	if len(ks) != len(oks) {
		t.Fatalf("%s: store holds %d keys, want %d", tag, len(ks), len(oks))
	}
	for i := range oks {
		if ks[i] != oks[i] || vs[i] != ovs[i] {
			t.Fatalf("%s: store[%d] = (%d,%d), want (%d,%d)", tag, i, ks[i], vs[i], oks[i], ovs[i])
		}
	}
}

// TestAutoshardSplitsHotShard pins the split policy: heat concentrated
// inside one bucket — too narrow for boundary moves to re-split
// (deadband) — must split the hot shard after exactly Hysteresis
// controller steps, and must not split again at MaxShards.
func TestAutoshardSplitsHotShard(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Engine:     testEngineConfig(core.IntraInter, false),
		KeyMax:     1<<16 - 1,
		Boundaries: []keys.Key{16000},
		Autoshard: AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 4, SplitAbove: 1.5, MergeBelow: 0.01,
			Hysteresis: 2, MaxStep: 64, MaxShards: 3, MinShards: 3, MinHeat: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	orc := oracle.New()
	seedPairs(t, e, orc, 1<<16, 64)
	coolHeat(e)

	// Bucket width is 16384; all heat in bucket 0, bound at 16000 →
	// shard 0 carries ~98% of interpolated heat, and the equal-heat
	// target (8192) is within one bucket of the bound, so moves stay
	// dead-banded and the imbalance persists.
	injectHeat(e, 1000, 1000)

	r1 := e.AutoshardStep()
	if r1.Split || r1.Merge || e.Shards() != 2 {
		t.Fatalf("step 1 acted before hysteresis: %+v, shards=%d", r1, e.Shards())
	}
	r2 := e.AutoshardStep()
	if !r2.Split || e.Shards() != 3 {
		t.Fatalf("step 2: %+v, shards=%d, want split to 3", r2, e.Shards())
	}
	// The empty newcomer duplicates the hot shard's upper bound.
	if b := e.Bounds(); len(b) != 2 || b[0] != 16000 || b[1] != 16000 {
		t.Fatalf("bounds after split = %v, want [16000 16000]", b)
	}
	// At MaxShards (and MinShards=3 blocking a merge-back of the empty
	// newcomer) further steps must hold steady.
	for i := 0; i < 4; i++ {
		if r := e.AutoshardStep(); r.Split || r.Merge {
			t.Fatalf("post-cap step %d acted: %+v", i, r)
		}
	}
	if st := e.ShardStats(); st.AutoSplits != 1 || st.AutoMerges != 0 {
		t.Fatalf("split/merge counters = %d/%d, want 1/0", st.AutoSplits, st.AutoMerges)
	}
	checkStore(t, "post-split", e, orc)
}

// TestAutoshardHysteresisResets pins the anti-flap contract: a streak
// broken before Hysteresis steps must not split.
func TestAutoshardHysteresisResets(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Engine:     testEngineConfig(core.IntraInter, false),
		KeyMax:     1<<16 - 1,
		Boundaries: []keys.Key{16000},
		Autoshard: AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 4, SplitAbove: 1.5, MergeBelow: 0.01,
			Hysteresis: 3, MaxStep: 64, MaxShards: 4, MinShards: 2, MinHeat: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	injectHeat(e, 1000, 1000) // hot bucket 0, as in the split test
	e.AutoshardStep()
	e.AutoshardStep() // streak at 2 of 3
	// One balanced step resets the streak: matching heat on shard 1's
	// side evens the shares (imbalance ~1.02, under the move floor and
	// far under SplitAbove).
	injectHeat(e, 40000, 1000)
	if r := e.AutoshardStep(); r.Split || r.Idle || r.Moved != 0 {
		t.Fatalf("balanced step acted: %+v", r)
	}
	// A fully cooled histogram idles (below MinHeat) without touching
	// the streak.
	coolHeat(e)
	if r := e.AutoshardStep(); !r.Idle {
		t.Fatalf("cooled step not idle: %+v", r)
	}
	// Re-heat: the streak must start over, so two more steps stay put
	// and only the third splits.
	injectHeat(e, 1000, 1000)
	e.AutoshardStep()
	if r := e.AutoshardStep(); r.Split || e.Shards() != 2 {
		t.Fatalf("split after broken streak: %+v, shards=%d", r, e.Shards())
	}
	if r := e.AutoshardStep(); !r.Split || e.Shards() != 3 {
		t.Fatalf("step at full streak: %+v, shards=%d, want split", r, e.Shards())
	}
}

// TestAutoshardMovesTowardTraffic pins the boundary-move policy: heat
// concentrated on the low quarter of the key space pulls the 2-shard
// boundary down to the traffic-weighted position in bounded MaxStep
// slices, leaving the stored pairs untouched.
func TestAutoshardMovesTowardTraffic(t *testing.T) {
	e, err := New(Config{
		Shards: 2,
		Engine: testEngineConfig(core.IntraInter, false),
		KeyMax: 1<<16 - 1,
		Autoshard: AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 16, SplitAbove: 100, MergeBelow: 0.001,
			Hysteresis: 100, MaxStep: 100, MaxShards: 2, MinShards: 2, MinHeat: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	orc := oracle.New()
	seedPairs(t, e, orc, 1<<16, 64) // 1024 pairs
	coolHeat(e)

	// Heat spread over buckets 0–3 (keys < 16384); the equal-heat
	// target is ~8191, far below the initial bound at 32768.
	for b := 0; b < 4; b++ {
		injectHeat(e, keys.Key(b*4096+100), 250)
	}

	before := e.Bounds()[0]
	var steps, migrated int
	for i := 0; i < 20; i++ {
		r := e.AutoshardStep()
		if r.Split || r.Merge {
			t.Fatalf("step %d structural: %+v", i, r)
		}
		migrated += r.Moved
		steps++
		if r.Moved == 0 && i > 0 {
			break
		}
	}
	after := e.Bounds()[0]
	if after >= 16384 {
		t.Fatalf("bound did not reach the hot region: %d -> %d", before, after)
	}
	// 384 stored pairs sit in [8192, 32768); at 100 pairs/step the move
	// must have taken several bounded slices, not one big one.
	if migrated < 380 || steps < 4 {
		t.Fatalf("migrated %d pairs in %d steps, want ≥380 in ≥4", migrated, steps)
	}
	if st := e.ShardStats(); st.Moves < 4 || st.Migrated != int64(migrated) {
		t.Fatalf("move counters = %d/%d, want ≥4/%d", st.Moves, st.Migrated, migrated)
	}
	checkStore(t, "post-moves", e, orc)

	// Semantics stay intact across the moved boundary, scans included.
	qs := keys.Number([]keys.Query{
		keys.Search(after - 64),
		keys.Search(after),
		keys.Scan(after-200, after+200, 0),
	})
	want := keys.NewResultSet(len(qs))
	orc.ApplyAll(append([]keys.Query(nil), qs...), want)
	got := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, got)
	diffResults(t, "post-move-batch", 0, want, got, len(qs))
}

// TestAutoshardMergeDrainsColdShard pins the merge policy: a sliver
// shard whose heat share stays under MergeBelow — while every boundary
// is dead-banded against moves — is drained into its neighbor in
// bounded slices and removed.
func TestAutoshardMergeDrainsColdShard(t *testing.T) {
	e, err := New(Config{
		Shards: 3,
		Engine: testEngineConfig(core.IntraInter, false),
		KeyMax: 1<<16 - 1,
		// Shard 1 is a low-traffic sliver: [17930, 20000).
		Boundaries: []keys.Key{17930, 20000},
		Autoshard: AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 4, SplitAbove: 100, MergeBelow: 0.25,
			Hysteresis: 2, MaxStep: 16, MaxShards: 3, MinShards: 2, MinHeat: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	orc := oracle.New()
	seedPairs(t, e, orc, 1<<16, 64)
	coolHeat(e)

	// Buckets of width 16384. Heat 300/350/350 in buckets 0–2 puts the
	// traffic-weighted targets at ~17930 and ~33554: boundary 0 sits on
	// its target, boundary 1 is within one bucket of its own, so moves
	// are dead-banded while shard 1's share (~44 of a 333 mean) stays
	// cold.
	injectHeat(e, 1000, 300)
	injectHeat(e, 17000, 350)
	injectHeat(e, 33000, 350)

	merged := false
	var migrated int
	for i := 0; i < 20 && !merged; i++ {
		r := e.AutoshardStep()
		if r.Split {
			t.Fatalf("step %d split: %+v", i, r)
		}
		migrated += r.Moved
		merged = r.Merge
	}
	if !merged || e.Shards() != 2 {
		t.Fatalf("no merge (shards=%d)", e.Shards())
	}
	if b := e.Bounds(); len(b) != 1 || b[0] != 20000 {
		t.Fatalf("bounds after merge = %v, want [20000]", b)
	}
	// The sliver held (20000-17930)/64 ≈ 32 pairs; at 16 pairs/step the
	// drain took multiple slices.
	if migrated < 30 {
		t.Fatalf("drain migrated %d pairs, want ≥30", migrated)
	}
	if st := e.ShardStats(); st.AutoMerges != 1 {
		t.Fatalf("AutoMerges = %d, want 1", st.AutoMerges)
	}
	checkStore(t, "post-merge", e, orc)
}

// TestAutoshardOffAllocIdentical is the alloc half of the zero-cost-off
// contract (mirroring the metrics-off guard): per-batch allocations
// with Autoshard disabled must equal those with the heat path live —
// heat recording and decay are allocation-free, and the off state adds
// only a nil check.
func TestAutoshardOffAllocIdentical(t *testing.T) {
	mk := func(auto AutoshardConfig) *Engine {
		e, err := New(Config{
			Shards:    4,
			Engine:    testEngineConfig(core.IntraInter, false),
			KeyMax:    1<<16 - 1,
			Autoshard: auto,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	off := mk(AutoshardConfig{})
	defer off.Close()
	// MinHeat keeps the controller idle; Interval < 0 keeps it manual.
	// The per-batch heat record/decay path still runs in full.
	on := mk(AutoshardConfig{Enabled: true, Interval: -1, MinHeat: 1 << 62})
	defer on.Close()

	var qs []keys.Query
	for k := 0; k < 1<<16; k += 256 {
		qs = append(qs, keys.Insert(keys.Key(k), keys.Value(k)))
		qs = append(qs, keys.Search(keys.Key(k)))
	}
	keys.Number(qs)
	rs := keys.NewResultSet(len(qs))

	measure := func(e *Engine) float64 {
		for i := 0; i < 3; i++ { // warm lazily-grown buffers
			rs.Reset(len(qs))
			e.ProcessBatch(qs, rs)
		}
		return testing.AllocsPerRun(20, func() {
			rs.Reset(len(qs))
			e.ProcessBatch(qs, rs)
		})
	}
	aOff, aOn := measure(off), measure(on)
	if aOn > aOff {
		t.Errorf("autoshard heat path allocates %.1f/batch vs %.1f off — want no extra", aOn, aOff)
	}
}

// FuzzAutoshard is the differential property for the whole controller:
// ANY batch sequence interleaved with controller steps — with
// thresholds aggressive enough that splits, merges, and boundary moves
// all fire constantly — stays byte-identical to the oracle, scans
// straddling freshly moved boundaries included, across shard counts
// and pipelined execution.
func FuzzAutoshard(f *testing.F) {
	// Mixed ops with batch breaks (steps run between batches).
	f.Add([]byte{1, 10, 1, 30, 1, 50, 0xFF, 0, 0, 10, 0, 30, 2, 50, 0xFF, 0, 0, 10, 0})
	// Hot hammering of one key range to provoke splits.
	f.Add([]byte{1, 5, 0, 5, 0, 6, 0, 5, 0, 6, 0, 5, 0xFF, 0, 0, 5, 0, 6, 0, 5, 0, 6})
	// Straddling scans after moves.
	f.Add([]byte{1, 10, 1, 30, 1, 50, 63, 0, 0xFF, 0, 63, 0, 4, 40, 63, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		batches := decodeFuzzBatches(data)
		if len(batches) == 0 {
			return
		}
		auto := AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 8, DecayShift: 2,
			SplitAbove: 1.01, MergeBelow: 0.9, Hysteresis: 1,
			MaxStep: 5, MaxShards: 5, MinShards: 2, MinHeat: 1,
		}
		type arm struct {
			name string
			eng  *Engine
		}
		var arms []arm
		for _, n := range []int{1, 2, 3, 8} {
			for _, pipelined := range []bool{false, true} {
				e, err := New(Config{
					Shards:    n,
					Engine:    testEngineConfig(core.IntraInter, pipelined),
					KeyMax:    fuzzSpan - 1,
					Autoshard: auto,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				arms = append(arms, arm{name: "auto+" + armName(n, pipelined), eng: e})
			}
		}

		orc := oracle.New()
		for bi, qs := range batches {
			want := keys.NewResultSet(len(qs))
			orc.ApplyAll(append([]keys.Query(nil), qs...), want)
			for _, a := range arms {
				rs := keys.NewResultSet(len(qs))
				a.eng.ProcessBatch(append([]keys.Query(nil), qs...), rs)
				diffResults(t, a.name, bi, want, rs, len(qs))
				// Two controller steps per batch: structural changes
				// need consecutive over-threshold steps even at
				// Hysteresis 1, and back-to-back steps exercise drain
				// continuations.
				a.eng.AutoshardStep()
				a.eng.AutoshardStep()
				if b := a.eng.Bounds(); len(b) != a.eng.Shards()-1 {
					t.Fatalf("%s: %d bounds for %d shards", a.name, len(b), a.eng.Shards())
				}
			}
		}
		oks, ovs := orc.Dump()
		for _, a := range arms {
			ks, vs := a.eng.Dump()
			if len(ks) != len(oks) {
				t.Fatalf("%s: final store %d keys, want %d (shards=%d bounds=%v)",
					a.name, len(ks), len(oks), a.eng.Shards(), a.eng.Bounds())
			}
			for i := range oks {
				if ks[i] != oks[i] || vs[i] != ovs[i] {
					t.Fatalf("%s: store[%d] = (%d,%d), want (%d,%d)",
						a.name, i, ks[i], vs[i], oks[i], ovs[i])
				}
			}
		}
	})
}

// TestAutoshardMoveWarmsReceiverCache pins the cache hand-off half of
// the migration contract: a traffic-weighted boundary move re-admits
// the moved pairs into the receiver's cache as clean entries. Read
// misses never admit, and the move drains the range from both caches,
// so a cache hit on a just-moved key is only possible if the migration
// itself warmed the receiver.
func TestAutoshardMoveWarmsReceiverCache(t *testing.T) {
	e, err := New(Config{
		Shards: 2,
		Engine: testEngineConfig(core.IntraInter, false),
		KeyMax: 1<<16 - 1,
		Autoshard: AutoshardConfig{
			Enabled: true, Interval: -1,
			Buckets: 16, SplitAbove: 100, MergeBelow: 0.001,
			Hysteresis: 100, MaxStep: 100, MaxShards: 2, MinShards: 2, MinHeat: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	orc := oracle.New()
	seedPairs(t, e, orc, 1<<16, 64) // 1024 pairs
	coolHeat(e)
	for b := 0; b < 4; b++ {
		injectHeat(e, keys.Key(b*4096+100), 250)
	}

	// One bounded move: the bound drops from 32768 by MaxStep pairs, so
	// keys [newBound, 32768) now live in shard 1, whose cache was just
	// warmed with the tail of the moved slice.
	r := e.AutoshardStep()
	if r.Moved == 0 || r.Split || r.Merge {
		t.Fatalf("expected a pure boundary move, got %+v", r)
	}
	bound := e.Bounds()[0]
	if bound >= 32768 {
		t.Fatalf("bound did not move down: %d", bound)
	}

	// Search the four highest moved keys (cache capacity is 16, so the
	// warmed tail certainly still covers them).
	want := []keys.Key{32704, 32640, 32576, 32512}
	qs := keys.Number([]keys.Query{
		keys.Search(want[0]), keys.Search(want[1]),
		keys.Search(want[2]), keys.Search(want[3]),
	})
	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)
	for i, k := range want {
		got, ok := rs.Get(int32(i))
		if !ok || !got.Found || got.Value != keys.Value(k)+3 {
			t.Fatalf("search %d = (%+v,%v), want (%d,true)", i, got, ok, keys.Value(k)+3)
		}
	}
	if hits := e.Stats().CacheHits; hits < 4 {
		t.Fatalf("moved keys served %d cache hits, want 4 — migration did not warm the receiver", hits)
	}
	checkStore(t, "post-warm", e, orc)
}
