// Package shard lifts the paper's single-tree PALM+QTrans engine to a
// range-partitioned multi-engine: N independent core.Engines (each with
// its own B+ tree, BSP pool, top-K cache, and optional two-stage
// pipeline) serve N disjoint key ranges. Each incoming batch is split
// by key range, the sub-batches execute in parallel, and the results
// are merged back into a single ResultSet in original query order —
// so observable semantics stay byte-identical to the unsharded engine
// (and therefore to serial evaluation).
//
// Why equivalence holds: queries on different keys commute, and a key's
// entire history — tree state and cache entry alike — lives in exactly
// one shard, whose engine evaluates that shard's sub-sequence with
// as-if-serial semantics in original relative order (the split is a
// stable partition). Every answer a search can observe depends only on
// same-key prefix state, which is untouched by the re-interleaving
// across shards. The differential fuzz test (fuzz_test.go) checks this
// byte-for-byte against the oracle and the unsharded engine.
package shard

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/stats"
)

// Config configures a sharded engine.
type Config struct {
	// Shards is the number of partitions (<= 1 means a single shard,
	// which behaves exactly like the wrapped core.Engine).
	Shards int
	// Engine configures every shard's core engine. Each shard gets its
	// own pool, tree, and cache from this template, so Palm.Workers is
	// a per-shard thread count.
	Engine core.EngineConfig
	// Boundaries optionally fixes the initial split points: ascending,
	// len Shards-1, shard i serving [Boundaries[i-1], Boundaries[i]).
	Boundaries []keys.Key
	// KeyMax is the largest key the workload is expected to produce;
	// used to derive equal-width initial boundaries when Boundaries is
	// nil (0 = the full uint64 key space). Rebalance corrects a poor
	// initial choice from the observed keys, and the Autoshard
	// controller tracks it continuously.
	KeyMax keys.Key
	// Autoshard configures traffic-aware automatic resharding (online
	// heat tracking, hot-split/cold-merge, incremental migration; see
	// autoshard.go and DESIGN.md §13). The zero value keeps it off with
	// the routing hot path byte- and alloc-identical to previous
	// releases. Requires Shards > 1.
	Autoshard AutoshardConfig
}

// Engine is a range-partitioned sharded engine. It presents the same
// batch interface as core.Engine (ProcessBatch, ProcessStream, Flush,
// Train, Stats, Close) and may be used anywhere a core.Engine is.
//
// Like core.Engine, an Engine is single-caller: ProcessBatch,
// ProcessStream, and Rebalance must not run concurrently with each
// other or themselves.
type Engine struct {
	cfg    Config
	shards []*core.Engine
	bounds []keys.Key

	sp    *splitter
	subRS []*keys.ResultSet

	st   *stats.Batch
	shst *stats.Shard
	met  *shardMetrics // nil when metrics are off

	// Autoshard state (autoshard.go): the heat histogram fed by the
	// routing pass and the controller. Both nil when autoshard is off.
	heat *heatMap
	auto *autoController

	// stream state (stream.go)
	lendRS *keys.ResultSet
	// streaming is true while a multi-shard ProcessStream is active.
	// Set and cleared under gate.RLock, read by the controller under
	// gate.Lock (so access is mutually exclusive); it blocks structural
	// shard-count changes, whose channel plumbing is fixed per stream.
	streaming bool

	// Durability hooks (nil/zero when durability is off; see commit.go).
	committer GroupCommitter
	partCs    []*partCommitter
	cmu       sync.Mutex // guards commitErr (merge loop vs. shard commits)
	commitErr error
	gate      *sync.RWMutex
}

// engineLayout derives the node layout a shard's trees should be bulk
// loaded with, so per-shard trees match the layout the engines would
// pick themselves and NewEngineWithTree does not rebuild them.
func engineLayout(cfg core.EngineConfig) btree.Layout {
	if cfg.Palm.NoGappedLayout {
		return btree.LayoutDense
	}
	return btree.LayoutGapped
}

// New builds a sharded engine of cfg.Shards partitions.
func New(cfg Config) (*Engine, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	bounds, err := initialBounds(n, cfg.Boundaries, cfg.KeyMax)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		bounds: bounds,
		shst:   stats.NewShard(n),
	}
	for i := 0; i < n; i++ {
		sh, err := core.NewEngine(cfg.Engine)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.shards = append(e.shards, sh)
	}
	e.finishInit()
	return e, nil
}

// NewFromTree builds a sharded engine whose initial contents are the
// pairs of tree, split across the shards by the engine's boundaries
// (used to restore a snapshot into a sharded deployment). The tree is
// consumed conceptually: the shards bulk-load disjoint copies.
func NewFromTree(cfg Config, tree *btree.Tree) (*Engine, error) {
	if tree == nil {
		return nil, fmt.Errorf("shard: NewFromTree with nil tree")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	bounds, err := initialBounds(n, cfg.Boundaries, cfg.KeyMax)
	if err != nil {
		return nil, err
	}
	ks, vs := tree.Dump()
	order := tree.Order()
	cfg.Engine.Palm.Order = order
	e := &Engine{
		cfg:    cfg,
		bounds: bounds,
		shst:   stats.NewShard(n),
	}
	lo := 0
	for i := 0; i < n; i++ {
		hi := len(ks)
		if i < n-1 {
			hi = lowerBound(ks, bounds[i], lo)
		}
		sub, err := btree.BulkLoadLayout(order, engineLayout(cfg.Engine), ks[lo:hi], vs[lo:hi])
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sh, err := core.NewEngineWithTree(cfg.Engine, sub)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.shards = append(e.shards, sh)
		lo = hi
	}
	e.finishInit()
	return e, nil
}

func (e *Engine) finishInit() {
	e.met = newShardMetrics(e.cfg.Engine.Metrics)
	e.sp = newSplitter(len(e.shards))
	e.subRS = make([]*keys.ResultSet, len(e.shards))
	for i := range e.subRS {
		e.subRS[i] = keys.NewResultSet(0)
	}
	e.st = stats.NewBatch(e.shards[0].Pool().N())
	if e.cfg.Autoshard.Enabled && len(e.shards) > 1 {
		cfg := e.cfg.Autoshard.withDefaults()
		e.heat = newHeatMap(cfg.Buckets, e.cfg.KeyMax, cfg.DecayShift)
		e.auto = newAutoController(e, cfg)
	}
}

// initialBounds validates explicit boundaries or derives equal-width
// ones over [0, keyMax].
func initialBounds(n int, explicit []keys.Key, keyMax keys.Key) ([]keys.Key, error) {
	if explicit != nil {
		if len(explicit) != n-1 {
			return nil, fmt.Errorf("shard: %d boundaries for %d shards (want %d)", len(explicit), n, n-1)
		}
		for i := 1; i < len(explicit); i++ {
			if explicit[i] < explicit[i-1] {
				return nil, fmt.Errorf("shard: boundaries not ascending at %d", i)
			}
		}
		return append([]keys.Key(nil), explicit...), nil
	}
	if n == 1 {
		return nil, nil
	}
	span := uint64(keyMax)
	if span == 0 {
		span = math.MaxUint64
	}
	bounds := make([]keys.Key, n-1)
	step := span/uint64(n) + 1
	for i := range bounds {
		bounds[i] = keys.Key(uint64(i+1) * step)
	}
	return bounds, nil
}

// lowerBound returns the first index >= from with ks[i] >= bound.
func lowerBound(ks []keys.Key, bound keys.Key, from int) int {
	lo, hi := from, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shards returns the number of partitions. With autoshard on the count
// changes over time; the gate makes the read consistent.
func (e *Engine) Shards() int {
	if e.gate != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	return len(e.shards)
}

// Bounds returns a copy of the current split points (ascending, len
// Shards-1) — a copy because the autoshard controller replaces the
// engine's own slice between batches.
func (e *Engine) Bounds() []keys.Key {
	if e.gate != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	return append([]keys.Key(nil), e.bounds...)
}

// Shard exposes shard s's core engine (tests and diagnostics).
func (e *Engine) Shard(s int) *core.Engine { return e.shards[s] }

// Stats returns the aggregated per-stage statistics of the most
// recently completed ProcessBatch (summed across the shards that
// participated). During ProcessStream the per-shard blocks mutate
// concurrently, so Stats is meaningful only between stream runs.
func (e *Engine) Stats() *stats.Batch { return e.st }

// ShardStats returns the routing/rebalance counters.
func (e *Engine) ShardStats() *stats.Shard { return e.shst }

// Close stops the autoshard controller (if running) and releases every
// shard's resources.
func (e *Engine) Close() {
	e.StopAutoshard()
	for _, sh := range e.shards {
		sh.Close()
	}
}

// ProcessBatch evaluates one batch with semantics identical to the
// unsharded engine: split by key range, evaluate sub-batches in
// parallel, merge results back in original query order. qs must carry
// batch-position Idx values (keys.Number) and rs must be Reset to
// len(qs). When every query routes to one shard the batch is passed
// through unsplit (and, like the unsharded engine, reordered in
// place); otherwise qs is left untouched.
func (e *Engine) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	// The gate spans the whole batch application — split, every shard's
	// sub-batch, merge — so a snapshot never observes a half-applied
	// batch (see commit.go), and the autoshard controller (which holds
	// the gate exclusively while it mutates bounds, shards, and the
	// splitter) never overlaps one. It must be taken before anything
	// below reads those fields.
	if e.gate != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	if len(e.shards) == 1 {
		e.shards[0].ProcessBatch(qs, rs)
		e.shst.RecordRouted(0, len(qs))
		e.shst.RecordBatch()
		e.met.recordRouted(0, len(qs))
		e.met.recordBatch()
		e.st.Reset()
		e.shards[0].Stats().AddTo(e.st)
		return
	}

	if e.committer != nil && e.groupErr() != nil {
		return // poisoned: drop unapplied
	}

	splitStart, _ := e.met.now()
	e.sp.split(qs, e.bounds, e.heat)
	e.met.observeSplit(splitStart)
	e.recordRouting(e.sp)
	lsn := e.beginCommit(e.sp)

	if s := e.sp.sole; s >= 0 {
		// Partial batch: one shard owns every query, so its engine can
		// consume the original batch with the caller's ResultSet — Idx
		// values are already batch positions. No copy, no merge.
		e.shards[s].ProcessBatch(qs, rs)
		e.st.Reset()
		e.shards[s].Stats().AddTo(e.st)
		e.endCommit(lsn, e.sp)
		return
	}

	var wg sync.WaitGroup
	for s := range e.shards {
		sub := e.sp.subs[s]
		if len(sub) == 0 {
			continue
		}
		e.subRS[s].Reset(len(sub))
		wg.Add(1)
		go func(s int, sub []keys.Query) {
			defer wg.Done()
			e.shards[s].ProcessBatch(sub, e.subRS[s])
		}(s, sub)
	}
	wg.Wait()
	mergeStart, _ := e.met.now()
	e.sp.merge(e.subRS, rs)
	e.met.observeMerge(mergeStart)

	e.st.Reset()
	for s := range e.shards {
		if len(e.sp.subs[s]) > 0 {
			e.shards[s].Stats().AddTo(e.st)
		}
	}
	e.endCommit(lsn, e.sp)
}

// recordRouting folds one split's routing into the shard counters and
// advances the heat map's EWMA clock by one batch. It runs on the
// routing goroutine (ProcessBatch's caller, or the stream dispatcher),
// which is the heat map's single writer.
func (e *Engine) recordRouting(sp *splitter) {
	e.heat.decay()
	for s := range sp.subs {
		if n := len(sp.subs[s]); n > 0 {
			e.shst.RecordRouted(s, n)
			e.met.recordRouted(s, n)
		}
	}
	e.shst.RecordBatch()
	e.met.recordBatch()
}

// Flush writes every shard's dirty cache entries back to its tree.
func (e *Engine) Flush() {
	for _, sh := range e.shards {
		sh.Flush()
	}
}

// Train pre-populates each shard's top-K cache with the hot keys that
// route to it (§V-B training, per partition).
func (e *Engine) Train(hot []keys.Key) {
	// Training writes cache state, so it takes the gate exclusively —
	// it runs at a batch boundary, never beside in-flight batches.
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	if len(e.shards) == 1 {
		e.shards[0].Train(hot)
		return
	}
	per := make([][]keys.Key, len(e.shards))
	for _, k := range hot {
		s := shardOf(e.bounds, k)
		per[s] = append(per[s], k)
	}
	for s, ks := range per {
		if len(ks) > 0 {
			e.shards[s].Train(ks)
		}
	}
}

// Len returns the total number of stored pairs (caches flushed first
// so the count is exact).
func (e *Engine) Len() int {
	// The flush writes dirty cache entries into the trees, so this
	// takes the gate exclusively (a batch boundary), not shared.
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	e.Flush()
	n := 0
	for _, sh := range e.shards {
		n += sh.Processor().Tree().Len()
	}
	return n
}

// Scan visits all pairs in ascending key order across shards (caches
// flushed first) until fn returns false. Shard ranges are disjoint and
// ascending, so visiting shards in order yields global key order.
func (e *Engine) Scan(fn func(k keys.Key, v keys.Value) bool) {
	// Flushes (writes) before reading, so the gate is taken
	// exclusively, like Len.
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	e.Flush()
	for _, sh := range e.shards {
		stop := false
		sh.Processor().Tree().Scan(func(k keys.Key, v keys.Value) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Dump returns every stored pair in ascending key order (caches
// flushed first), matching btree.Tree.Dump for differential tests and
// snapshots. Dump deliberately does not take the scheduling gate: the
// snapshot path calls it while already holding the gate exclusively.
func (e *Engine) Dump() (ks []keys.Key, vs []keys.Value) {
	e.Flush()
	for _, sh := range e.shards {
		sks, svs := sh.Processor().Tree().Dump()
		ks = append(ks, sks...)
		vs = append(vs, svs...)
	}
	return ks, vs
}

// Order returns the shards' B+ tree order.
func (e *Engine) Order() int { return e.shards[0].Processor().Tree().Order() }
