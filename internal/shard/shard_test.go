package shard

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/oracle"
	"repro/internal/palm"
)

// testEngineConfig is the per-shard core config the differential tests
// use: small tree order and cache so boundary machinery is exercised.
func testEngineConfig(mode core.Mode, pipeline bool) core.EngineConfig {
	return core.EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		CacheCapacity: 16,
		CachePolicy:   cache.LRU,
		Pipeline:      pipeline,
	}
}

// randomBatch draws n queries over [0, span).
func randomBatch(r *rand.Rand, n int, span int) []keys.Query {
	qs := make([]keys.Query, n)
	for i := range qs {
		k := keys.Key(r.Intn(span))
		switch r.Intn(3) {
		case 0:
			qs[i] = keys.Search(k)
		case 1:
			qs[i] = keys.Insert(k, keys.Value(r.Intn(10000)))
		default:
			qs[i] = keys.Delete(k)
		}
	}
	return keys.Number(qs)
}

// checkAgainst verifies rs matches want (both Reset to the same batch
// length) slot for slot.
func checkAgainst(t *testing.T, tag string, batch int, want, got *keys.ResultSet) {
	t.Helper()
	for i := int32(0); i < int32(want.Len()); i++ {
		w, wok := want.Get(i)
		g, gok := got.Get(i)
		if wok != gok || w != g {
			t.Fatalf("%s: batch %d idx %d: got %+v (%v), want %+v (%v)", tag, batch, i, g, gok, w, wok)
		}
	}
}

// TestShardedMatchesUnsharded runs identical batch sequences through
// the oracle, an unsharded engine, and sharded engines with N in
// {1, 2, 3, 8}, across all four engine modes, and demands byte-
// identical results and final stores.
func TestShardedMatchesUnsharded(t *testing.T) {
	const span = 256
	for _, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter, core.SimIntra} {
		for _, n := range []int{1, 2, 3, 8} {
			orc := oracle.New()
			plain, err := core.NewEngine(testEngineConfig(mode, false))
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := New(Config{
				Shards: n,
				Engine: testEngineConfig(mode, false),
				KeyMax: span - 1,
			})
			if err != nil {
				t.Fatal(err)
			}

			r := rand.New(rand.NewSource(int64(mode)*10 + int64(n)))
			for b := 0; b < 10; b++ {
				qs := randomBatch(r, 150, span)
				oq := append([]keys.Query(nil), qs...)
				pq := append([]keys.Query(nil), qs...)

				wantRS := keys.NewResultSet(len(qs))
				orc.ApplyAll(oq, wantRS)

				plainRS := keys.NewResultSet(len(qs))
				plain.ProcessBatch(pq, plainRS)
				checkAgainst(t, "unsharded-vs-oracle", b, wantRS, plainRS)

				shardRS := keys.NewResultSet(len(qs))
				sharded.ProcessBatch(qs, shardRS)
				checkAgainst(t, "sharded-vs-oracle", b, wantRS, shardRS)
			}

			oks, ovs := orc.Dump()
			sks, svs := sharded.Dump()
			if len(oks) != len(sks) {
				t.Fatalf("mode=%v n=%d: final store %d keys, want %d", mode, n, len(sks), len(oks))
			}
			for i := range oks {
				if oks[i] != sks[i] || ovs[i] != svs[i] {
					t.Fatalf("mode=%v n=%d: store[%d] = (%d,%d), want (%d,%d)",
						mode, n, i, sks[i], svs[i], oks[i], ovs[i])
				}
			}
			if got := sharded.Len(); got != orc.Len() {
				t.Fatalf("mode=%v n=%d: Len = %d, want %d", mode, n, got, orc.Len())
			}

			plain.Close()
			sharded.Close()
		}
	}
}

// TestShardedBoundaryKeys pins the exact-boundary behavior: keys equal
// to a split point are served correctly (by the shard above).
func TestShardedBoundaryKeys(t *testing.T) {
	bounds := []keys.Key{100, 200}
	e, err := New(Config{
		Shards:     3,
		Engine:     testEngineConfig(core.IntraInter, false),
		Boundaries: bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	orc := oracle.New()
	// Every query hits a boundary key or its neighbors.
	var qs []keys.Query
	for _, k := range []keys.Key{99, 100, 101, 199, 200, 201} {
		qs = append(qs, keys.Insert(k, keys.Value(k)*2), keys.Search(k))
	}
	for _, k := range []keys.Key{100, 200} {
		qs = append(qs, keys.Delete(k), keys.Search(k))
	}
	keys.Number(qs)

	want := keys.NewResultSet(len(qs))
	orc.ApplyAll(append([]keys.Query(nil), qs...), want)
	got := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, got)
	checkAgainst(t, "boundary", 0, want, got)

	// Boundary keys must live in the shard above the split point.
	e.Flush()
	if _, found := e.Shard(1).Processor().Tree().Search(101); !found {
		t.Fatal("key 101 not in shard 1")
	}
	if _, found := e.Shard(2).Processor().Tree().Search(201); !found {
		t.Fatal("key 201 not in shard 2")
	}
}

// TestShardedPartialBatch is the regression test for the fast path: a
// batch whose queries all route to one shard must produce results at
// the original indices, with the caller's ResultSet untouched for
// non-search slots, whether or not other shards exist.
func TestShardedPartialBatch(t *testing.T) {
	e, err := New(Config{
		Shards:     4,
		Engine:     testEngineConfig(core.IntraInter, false),
		Boundaries: []keys.Key{100, 200, 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	orc := oracle.New()
	// All keys in [200, 300) → shard 2 only.
	qs := []keys.Query{
		keys.Insert(250, 1),
		keys.Search(250),
		keys.Insert(251, 2),
		keys.Delete(250),
		keys.Search(250),
		keys.Search(251),
	}
	keys.Number(qs)

	want := keys.NewResultSet(len(qs))
	orc.ApplyAll(append([]keys.Query(nil), qs...), want)

	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)
	checkAgainst(t, "partial", 0, want, rs)

	if rs.Answered() != 3 {
		t.Fatalf("Answered = %d, want 3", rs.Answered())
	}
	// Only shard 2 should have been routed to.
	st := e.ShardStats()
	if st.Routed[2] != int64(len(qs)) {
		t.Fatalf("Routed[2] = %d, want %d", st.Routed[2], len(qs))
	}
	for _, s := range []int{0, 1, 3} {
		if st.Routed[s] != 0 {
			t.Fatalf("Routed[%d] = %d, want 0", s, st.Routed[s])
		}
	}

	// A following spread batch must still merge correctly (the fast
	// path must not have corrupted splitter state).
	qs2 := []keys.Query{keys.Search(251), keys.Search(50), keys.Insert(150, 9), keys.Search(150)}
	keys.Number(qs2)
	want2 := keys.NewResultSet(len(qs2))
	orc.ApplyAll(append([]keys.Query(nil), qs2...), want2)
	rs2 := keys.NewResultSet(len(qs2))
	e.ProcessBatch(qs2, rs2)
	checkAgainst(t, "partial-then-spread", 1, want2, rs2)
}

// TestShardedStream checks ProcessStream (serial and pipelined shards)
// against batch-at-a-time oracle replay, including the lent-ResultSet
// path (Job.RS == nil).
func TestShardedStream(t *testing.T) {
	const span = 200
	for _, pipelined := range []bool{false, true} {
		for _, n := range []int{1, 3} {
			orc := oracle.New()
			e, err := New(Config{
				Shards: n,
				Engine: testEngineConfig(core.IntraInter, pipelined),
				KeyMax: span - 1,
			})
			if err != nil {
				t.Fatal(err)
			}

			r := rand.New(rand.NewSource(int64(n)*7 + 1))
			const nBatches = 15
			batches := make([][]keys.Query, nBatches)
			for i := range batches {
				batches[i] = randomBatch(r, 120, span)
			}

			in := make(chan *core.Job)
			go func() {
				for _, qs := range batches {
					in <- &core.Job{Qs: qs}
				}
				close(in)
			}()
			bi := 0
			e.ProcessStream(in, func(j *core.Job) {
				want := keys.NewResultSet(len(j.Qs))
				orc.ApplyAll(append([]keys.Query(nil), batches[bi]...), want)
				checkAgainst(t, "stream", bi, want, j.RS)
				bi++
			})
			if bi != nBatches {
				t.Fatalf("pipelined=%v n=%d: emitted %d of %d", pipelined, n, bi, nBatches)
			}

			oks, _ := orc.Dump()
			sks, _ := e.Dump()
			if len(oks) != len(sks) {
				t.Fatalf("pipelined=%v n=%d: final store %d keys, want %d", pipelined, n, len(sks), len(oks))
			}
			e.Close()
		}
	}
}

// TestRebalance verifies that Rebalance evens out a skewed partition,
// counts migrations, and leaves semantics untouched.
func TestRebalance(t *testing.T) {
	// KeyMax far above the real key range: everything initially lands
	// in shard 0.
	e, err := New(Config{
		Shards: 4,
		Engine: testEngineConfig(core.IntraInter, false),
		KeyMax: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	orc := oracle.New()
	var qs []keys.Query
	for k := 0; k < 400; k++ {
		qs = append(qs, keys.Insert(keys.Key(k), keys.Value(k)+7))
	}
	keys.Number(qs)
	orc.ApplyAll(append([]keys.Query(nil), qs...), nil)
	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)

	e.Flush() // the top-K cache may hold dirty entries
	if got := e.Shard(0).Processor().Tree().Len(); got != 400 {
		t.Fatalf("pre-rebalance shard 0 holds %d keys, want 400", got)
	}

	migrated, err := e.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	// 3/4 of the keys must move off shard 0, one adjacent-shard hop at
	// a time: 100 keys hop once (to shard 1), 100 twice, 100 three
	// times = 600 pair moves.
	if migrated != 600 {
		t.Fatalf("migrated = %d, want 600", migrated)
	}
	for s := 0; s < 4; s++ {
		if got := e.Shard(s).Processor().Tree().Len(); got != 100 {
			t.Fatalf("post-rebalance shard %d holds %d keys, want 100", s, got)
		}
	}
	if st := e.ShardStats(); st.Rebalances != 1 || st.Migrated != 600 {
		t.Fatalf("shard stats after rebalance: %v", st)
	}

	// Semantics unchanged: spot-check every key, then run a mixed batch
	// differentially.
	qs2 := make([]keys.Query, 0, 400)
	for k := 0; k < 400; k++ {
		qs2 = append(qs2, keys.Search(keys.Key(k)))
	}
	keys.Number(qs2)
	want := keys.NewResultSet(len(qs2))
	orc.ApplyAll(append([]keys.Query(nil), qs2...), want)
	got := keys.NewResultSet(len(qs2))
	e.ProcessBatch(qs2, got)
	checkAgainst(t, "post-rebalance", 0, want, got)

	r := rand.New(rand.NewSource(99))
	for b := 0; b < 5; b++ {
		qs := randomBatch(r, 100, 500)
		wantRS := keys.NewResultSet(len(qs))
		orc.ApplyAll(append([]keys.Query(nil), qs...), wantRS)
		gotRS := keys.NewResultSet(len(qs))
		e.ProcessBatch(qs, gotRS)
		checkAgainst(t, "post-rebalance-mixed", b, wantRS, gotRS)
	}

	// An empty engine rebalances to zero migrations without error.
	empty, err := New(Config{Shards: 3, Engine: testEngineConfig(core.Intra, false)})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if m, err := empty.Rebalance(); err != nil || m != 0 {
		t.Fatalf("empty Rebalance = %d, %v", m, err)
	}
}

// TestTrainRoutesPerShard verifies Warm/Train routes hot keys to the
// owning shard's cache.
func TestTrainRoutesPerShard(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Engine:     testEngineConfig(core.IntraInter, false),
		Boundaries: []keys.Key{100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	qs := []keys.Query{keys.Insert(10, 1), keys.Insert(110, 2)}
	keys.Number(qs)
	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)
	e.Flush()

	e.Train([]keys.Key{10, 110})

	// Searches on trained keys must be answered from cache (inferred
	// or hit) with correct values.
	qs2 := []keys.Query{keys.Search(10), keys.Search(110)}
	keys.Number(qs2)
	rs2 := keys.NewResultSet(len(qs2))
	e.ProcessBatch(qs2, rs2)
	if r, ok := rs2.Get(0); !ok || !r.Found || r.Value != 1 {
		t.Fatalf("Search(10) = %+v (%v)", r, ok)
	}
	if r, ok := rs2.Get(1); !ok || !r.Found || r.Value != 2 {
		t.Fatalf("Search(110) = %+v (%v)", r, ok)
	}
	if hits := e.Stats().CacheHits; hits != 2 {
		t.Fatalf("CacheHits = %d, want 2 (both keys trained)", hits)
	}
}

// TestNewFromTree restores a snapshot tree into a sharded engine and
// checks contents and scan order.
func TestNewFromTree(t *testing.T) {
	tree, err := btree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 300; k += 3 {
		tree.Insert(keys.Key(k), keys.Value(k*10))
	}
	e, err := NewFromTree(Config{
		Shards: 3,
		Engine: testEngineConfig(core.IntraInter, false),
		KeyMax: 299,
	}, tree)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if got := e.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	var prev keys.Key
	count := 0
	e.Scan(func(k keys.Key, v keys.Value) bool {
		if count > 0 && k <= prev {
			t.Fatalf("Scan out of order: %d after %d", k, prev)
		}
		if v != keys.Value(k)*10 {
			t.Fatalf("Scan value for %d = %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("Scan visited %d, want 100", count)
	}

	// Early-terminating scan stops mid-way.
	count = 0
	e.Scan(func(k keys.Key, v keys.Value) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early Scan visited %d, want 7", count)
	}
}

// TestShardStatsAggregation checks Stats() sums the participating
// shards' batch stats.
func TestShardStatsAggregation(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Engine:     testEngineConfig(core.Intra, false),
		Boundaries: []keys.Key{100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	qs := []keys.Query{
		keys.Insert(10, 1), keys.Search(10),
		keys.Insert(110, 2), keys.Search(110),
	}
	keys.Number(qs)
	rs := keys.NewResultSet(len(qs))
	e.ProcessBatch(qs, rs)

	st := e.Stats()
	if st.BatchSize != 4 {
		t.Fatalf("aggregated BatchSize = %d, want 4", st.BatchSize)
	}
	// Intra mode infers both searches (I;S per key collapses).
	if st.InferredReturns != 2 {
		t.Fatalf("aggregated InferredReturns = %d, want 2", st.InferredReturns)
	}
	sh := e.ShardStats()
	if sh.Routed[0] != 2 || sh.Routed[1] != 2 || sh.Batches != 1 {
		t.Fatalf("shard stats = %v", sh)
	}
	if sh.Imbalance() != 1 {
		t.Fatalf("Imbalance = %f, want 1", sh.Imbalance())
	}
}
