package shard

import (
	"sync"

	"repro/internal/core"
	"repro/internal/keys"
)

// Streamed sharded execution: every shard runs its own core
// ProcessStream (two-stage pipelined when the engine config asks for
// it), a splitter goroutine feeds each incoming job's sub-batches to
// the shard streams, and the emit loop merges each job's sub-results —
// strictly in arrival order — back into the job's ResultSet.
//
// Order and equivalence: the splitter pushes sub-jobs to every shard in
// arrival order and each shard stream completes its sub-jobs in that
// order, so a job's sub-results are uniquely identified by its
// streamJob and jobs re-merge in arrival order. Within a shard the
// sub-sequence order equals original batch order (stable split), which
// is the same argument as ProcessBatch — semantics stay byte-identical
// to serial unsharded execution, pipelined or not.

// streamDepth bounds how many jobs may be in flight across the shard
// streams: one merging, one splitting, one queued. Each shard adds its
// own two pipeline slots on top.
const streamDepth = 3

// streamJob is the in-flight workspace of one job: its own splitter
// (splits for job N+1 overlap the merge of job N) and per-shard
// sub-jobs and ResultSets. wg counts outstanding sub-jobs.
type streamJob struct {
	job   *core.Job
	sp    *splitter
	subs  []core.Job
	subRS []*keys.ResultSet
	wg    sync.WaitGroup
	// lsn is the batch's reserved commit LSN (0 = durability off or
	// empty batch); the merge loop seals it with the commit marker.
	lsn uint64
}

func (e *Engine) newStreamJob() *streamJob {
	n := len(e.shards)
	sj := &streamJob{
		sp:    newSplitter(n),
		subs:  make([]core.Job, n),
		subRS: make([]*keys.ResultSet, n),
	}
	for i := range sj.subRS {
		sj.subRS[i] = keys.NewResultSet(0)
	}
	return sj
}

// ProcessStream consumes jobs from in until it is closed, processing
// each with semantics identical to calling ProcessBatch in arrival
// order, and hands every finished job to emit in that order. Jobs with
// a nil RS borrow a recycled ResultSet valid only until emit returns
// (the core.Job contract). Must not be called concurrently with itself,
// ProcessBatch, or Rebalance.
func (e *Engine) ProcessStream(in <-chan *core.Job, emit func(*core.Job)) {
	// Stream setup fixes the shard fan-out (one channel and one
	// ProcessStream per shard) for the stream's whole lifetime, so it
	// reads e.shards under the gate and raises e.streaming — which the
	// autoshard controller checks under the gate's exclusive lock —
	// to defer structural shard-count changes until the stream ends.
	// Boundary moves stay allowed between jobs.
	if e.gate != nil {
		e.gate.RLock()
	}
	if len(e.shards) == 1 {
		if e.gate != nil {
			e.gate.RUnlock()
		}
		e.shards[0].ProcessStream(in, func(j *core.Job) {
			e.shst.RecordRouted(0, len(j.Qs))
			e.shst.RecordBatch()
			e.met.recordRouted(0, len(j.Qs))
			e.met.recordBatch()
			emit(j)
		})
		return
	}
	e.streaming = true

	n := len(e.shards)
	subIn := make([]chan *core.Job, n)
	var shardWG sync.WaitGroup
	for s := 0; s < n; s++ {
		subIn[s] = make(chan *core.Job, 1)
		shardWG.Add(1)
		go func(s int) {
			defer shardWG.Done()
			e.shards[s].ProcessStream(subIn[s], func(j *core.Job) {
				j.Tag.(*streamJob).wg.Done()
			})
		}(s)
	}

	free := make(chan *streamJob, streamDepth)
	for i := 0; i < streamDepth; i++ {
		free <- e.newStreamJob()
	}
	ordered := make(chan *streamJob, streamDepth)
	if e.gate != nil {
		e.gate.RUnlock()
	}

	go func() {
		for job := range in {
			sj := <-free
			sj.job = job
			// Gate held per job from dispatch until its merge completes
			// (RLock here, RUnlock in the merge loop — legal for a
			// counted RWMutex): a snapshot writer waits for every
			// in-flight job and blocks new dispatches.
			if e.gate != nil {
				e.gate.RLock()
			}
			splitStart, _ := e.met.now()
			// e.bounds is read under this job's RLock, so a boundary
			// flip by the controller (under the exclusive lock) is
			// either fully visible or not at all.
			sj.sp.split(job.Qs, e.bounds, e.heat)
			e.met.observeSplit(splitStart)
			e.recordRouting(sj.sp)
			sj.lsn = e.beginCommit(sj.sp)
			if e.committer != nil && sj.lsn == 0 && len(job.Qs) > 0 {
				// Poisoned group: no LSN was reserved (and nothing
				// queued at the shards), so the batch must be dropped
				// unapplied — dispatching would desynchronize the
				// per-shard LSN queues. The job still flows through the
				// merge loop for ordering; its results are unspecified,
				// matching the ProcessBatch drop path.
				ordered <- sj
				continue
			}
			for s := 0; s < n; s++ {
				sub := sj.sp.subs[s]
				if len(sub) == 0 {
					continue
				}
				sj.subRS[s].Reset(len(sub))
				sj.subs[s] = core.Job{Qs: sub, RS: sj.subRS[s], Tag: sj}
				sj.wg.Add(1)
				subIn[s] <- &sj.subs[s]
			}
			ordered <- sj
		}
		for s := range subIn {
			close(subIn[s])
		}
		close(ordered)
	}()

	if e.lendRS == nil {
		e.lendRS = keys.NewResultSet(0)
	}
	for sj := range ordered {
		sj.wg.Wait()
		// All parts are logged (each shard commits before it applies);
		// the merge loop runs in arrival order, so markers are sealed in
		// arrival order too.
		e.endCommit(sj.lsn, sj.sp)
		job := sj.job
		sj.job = nil
		if job.RS == nil {
			job.RS = e.lendRS
		}
		job.RS.Reset(len(job.Qs))
		mergeStart, _ := e.met.now()
		sj.sp.merge(sj.subRS, job.RS)
		e.met.observeMerge(mergeStart)
		emit(job)
		// Ownership returns to the caller at emit; no accesses past it.
		free <- sj
		if e.gate != nil {
			e.gate.RUnlock()
		}
	}
	shardWG.Wait()
	if e.gate != nil {
		e.gate.RLock()
	}
	e.streaming = false
	if e.gate != nil {
		e.gate.RUnlock()
	}
}
