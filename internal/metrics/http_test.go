package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpointJSON asserts /metrics serves JSON that decodes
// back into the Snapshot struct with the recorded values intact.
func TestMetricsEndpointJSON(t *testing.T) {
	reg := New()
	reg.Counter("req_total").Add(42)
	reg.Gauge("depth").Set(3)
	reg.Histogram("lat_ns").Record(1500)

	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["req_total"] != 42 || snap.Gauges["depth"] != 3 {
		t.Fatalf("decoded snapshot mismatch: %+v", snap)
	}
	h := snap.Histograms["lat_ns"]
	if h.Count != 1 || h.Min != 1500 || h.Max != 1500 {
		t.Fatalf("decoded histogram mismatch: %+v", h)
	}
}

// TestMetricsEndpointText asserts the ?format=text table view.
func TestMetricsEndpointText(t *testing.T) {
	reg := New()
	reg.Counter("req_total").Add(7)
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "counter req_total") || !strings.Contains(string(body), "7") {
		t.Fatalf("text body missing counter row:\n%s", body)
	}
}

// TestHealthz asserts /healthz flips from 200 to 503 when the health
// func starts returning the sticky error.
func TestHealthz(t *testing.T) {
	var sticky error
	srv := httptest.NewServer(Handler(New(), func() error { return sticky }))
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}
	sticky = errors.New("wal: append: disk gone")
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "disk gone") {
		t.Fatalf("poisoned: %d %q", code, body)
	}
}

// TestHealthzNilHealth asserts a nil health func reads as always
// healthy.
func TestHealthzNilHealth(t *testing.T) {
	srv := httptest.NewServer(Handler(New(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestPprofRoutesRegistered asserts the /debug/pprof/* surface is wired
// (index plus a cheap sub-profile).
func TestPprofRoutesRegistered(t *testing.T) {
	srv := httptest.NewServer(Handler(New(), nil))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestServe binds an ephemeral port, serves a request, and shuts down.
func TestServe(t *testing.T) {
	reg := New()
	reg.Counter("served_total").Add(1)
	addr, stop, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["served_total"] != 1 {
		t.Fatalf("snapshot over the wire: %+v", snap)
	}
}
