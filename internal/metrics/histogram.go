package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket scheme (HdrHistogram-style): values below subCount
// get exact unit buckets; above that, every power-of-two octave is
// divided into subCount linear sub-buckets, so a bucket's width is at
// most 1/subCount (12.5%) of its lower bound. The scheme covers the
// full non-negative int64 range (nanoseconds: 1ns up to ~292 years)
// with numBuckets fixed slots — no resizing, no allocation on Record.
const (
	subBits    = 3
	subCount   = 1 << subBits                     // 8 sub-buckets per octave
	numBuckets = subCount + subCount*(63-subBits) // 488
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // >= subBits
	return subCount + (exp-subBits)*subCount + int((uint64(v)>>uint(exp-subBits))&(subCount-1))
}

// bucketBounds returns bucket idx's half-open value range [lo, hi).
func bucketBounds(idx int) (lo, hi int64) {
	if idx < subCount {
		return int64(idx), int64(idx) + 1
	}
	rel := idx - subCount
	exp := rel/subCount + subBits
	sub := rel % subCount
	width := int64(1) << uint(exp-subBits)
	lo = (int64(subCount) + int64(sub)) * width
	hi = lo + width
	if hi < lo { // top octave: lo+width exceeds MaxInt64
		hi = math.MaxInt64
	}
	return lo, hi
}

// BucketWidth returns the width of the bucket that value v falls into —
// the quantile error bound at v (Quantile is exact to within one bucket
// width, clamped by the exact min/max).
func BucketWidth(v int64) int64 {
	lo, hi := bucketBounds(bucketIndex(v))
	return hi - lo
}

// Histogram is a concurrent log-bucketed histogram of non-negative
// int64 values (by convention nanoseconds for latency metrics, but any
// unit works — e.g. batch sizes or per-mille ratios). Record is
// lock-free and allocation-free; Snapshot may run concurrently with
// recording.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first Record
	max     atomic.Int64 // -1 until the first Record
	buckets [numBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	h.max.Store(-1)
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Record adds one value. Negative values are clamped to 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures a point-in-time copy of the histogram. It is safe
// concurrently with Record; the copy is internally consistent enough
// for monitoring (counts are read bucket by bucket).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	if max := h.max.Load(); max >= 0 {
		s.Max = max
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	s.fillQuantiles()
	return s
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi).
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram summary. Buckets holds
// only non-empty buckets, ascending by Lo.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// P50..P999 are the quantiles the serving layer watches; each is
	// exact to within one bucket width (see Quantile).
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	// Buckets is the sparse bucket list backing the quantiles.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the recorded values (exact: sum
// and count are tracked outside the buckets).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded values:
// the midpoint of the bucket holding the rank-⌈q·count⌉ value, clamped
// to the exact [Min, Max]. The result is within one bucket width of the
// true quantile. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			mid := b.Lo + (b.Hi-b.Lo)/2
			if mid < s.Min {
				mid = s.Min
			}
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// fillQuantiles populates the fixed quantile fields from Buckets.
func (s *HistogramSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// Merge combines two snapshots into one, as if all values had been
// recorded into a single histogram. Merge is commutative and
// associative (the bucket scheme is global, so equal bounds align).
func Merge(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
	}
	switch {
	case a.Count == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min, out.Max = a.Min, a.Max
		if b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
	}
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Lo < b.Buckets[j].Lo):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Lo < a.Buckets[i].Lo:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default: // same bucket
			m := a.Buckets[i]
			m.Count += b.Buckets[j].Count
			out.Buckets = append(out.Buckets, m)
			i, j = i+1, j+1
		}
	}
	out.fillQuantiles()
	return out
}
