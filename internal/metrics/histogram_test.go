package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestBucketIndexMonotonic checks the bucket mapping is monotonic,
// total, and consistent with bucketBounds over a dense + random sweep.
func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 4096; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d)=%d below previous %d", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		v := int64(r.Uint64() >> 1) // non-negative
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d)=%d out of range", v, idx)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
		if w := hi - lo; w > lo/subCount+1 {
			t.Fatalf("bucket [%d,%d): width %d above relative bound", lo, hi, w)
		}
	}
	if idx := bucketIndex(math.MaxInt64); idx >= numBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range", idx)
	}
}

// TestHistogramBucketCounts records a fixed-seed stream and asserts the
// per-bucket counts match an exact recount through the same mapping,
// and count/sum/min/max are exact.
func TestHistogramBucketCounts(t *testing.T) {
	h := newHistogram("test")
	r := rand.New(rand.NewSource(42))
	want := make(map[int]int64)
	var sum, min, max int64
	min = math.MaxInt64
	const n = 10_000
	for i := 0; i < n; i++ {
		v := int64(r.ExpFloat64() * 1e6) // latency-like spread
		h.Record(v)
		want[bucketIndex(v)]++
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	s := h.Snapshot()
	if s.Count != n || s.Sum != sum || s.Min != min || s.Max != max {
		t.Fatalf("summary mismatch: got count=%d sum=%d min=%d max=%d want %d/%d/%d/%d",
			s.Count, s.Sum, s.Min, s.Max, n, sum, min, max)
	}
	var total int64
	for _, b := range s.Buckets {
		idx := bucketIndex(b.Lo)
		if want[idx] != b.Count {
			t.Fatalf("bucket [%d,%d): got %d want %d", b.Lo, b.Hi, b.Count, want[idx])
		}
		total += b.Count
	}
	if total != n {
		t.Fatalf("bucket counts sum to %d, want %d", total, n)
	}
}

// TestHistogramQuantileErrorBound asserts every reported quantile is
// within one bucket width of the exact order statistic, across several
// fixed-seed distributions.
func TestHistogramQuantileErrorBound(t *testing.T) {
	dists := map[string]func(r *rand.Rand) int64{
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 5e5) },
		"uniform":     func(r *rand.Rand) int64 { return r.Int63n(1 << 30) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 1_000_000 + r.Int63n(1000)
			}
			return 100 + r.Int63n(50)
		},
		"constant": func(r *rand.Rand) int64 { return 12345 },
	}
	qs := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range dists {
		h := newHistogram(name)
		r := rand.New(rand.NewSource(7))
		const n = 20_000
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = gen(r)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range qs {
			got := s.Quantile(q)
			rank := int(math.Ceil(q * n))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			bound := BucketWidth(exact)
			if diff := got - exact; diff < -bound || diff > bound {
				t.Errorf("%s q=%v: got %d, exact %d, |err| %d > bucket width %d",
					name, q, got, exact, got-exact, bound)
			}
		}
		// The fixed quantile fields match Quantile.
		if s.P50 != s.Quantile(0.5) || s.P90 != s.Quantile(0.9) ||
			s.P99 != s.Quantile(0.99) || s.P999 != s.Quantile(0.999) {
			t.Errorf("%s: fixed quantile fields diverge from Quantile()", name)
		}
	}
}

// TestHistogramMergeCommutativeAssociative checks Merge(a,b)==Merge(b,a)
// and Merge(Merge(a,b),c)==Merge(a,Merge(b,c)) on fixed-seed snapshots,
// and that the merge equals recording every value into one histogram.
func TestHistogramMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	mk := func(n int, scale float64) (*Histogram, []int64) {
		h := newHistogram("m")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.ExpFloat64() * scale)
			h.Record(vals[i])
		}
		return h, vals
	}
	ha, va := mk(1000, 1e5)
	hb, vb := mk(500, 1e7)
	hc, vc := mk(2000, 1e3)
	a, b, c := ha.Snapshot(), hb.Snapshot(), hc.Snapshot()

	if ab, ba := Merge(a, b), Merge(b, a); !reflect.DeepEqual(ab, ba) {
		t.Fatalf("Merge not commutative:\n%+v\n%+v", ab, ba)
	}
	abc1 := Merge(Merge(a, b), c)
	abc2 := Merge(a, Merge(b, c))
	if !reflect.DeepEqual(abc1, abc2) {
		t.Fatalf("Merge not associative:\n%+v\n%+v", abc1, abc2)
	}

	all := newHistogram("all")
	for _, vs := range [][]int64{va, vb, vc} {
		for _, v := range vs {
			all.Record(v)
		}
	}
	if want := all.Snapshot(); !reflect.DeepEqual(abc1, want) {
		t.Fatalf("merge diverges from single histogram:\n%+v\n%+v", abc1, want)
	}
}

// TestHistogramEmpty checks the empty-histogram edge cases: zero
// summary, zero quantiles, and merges with empty snapshots.
func TestHistogramEmpty(t *testing.T) {
	h := newHistogram("empty")
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v", s.Mean())
	}

	h2 := newHistogram("one")
	h2.Record(500)
	one := h2.Snapshot()
	if got := Merge(s, one); !reflect.DeepEqual(got, one) {
		t.Fatalf("empty+one != one:\n%+v\n%+v", got, one)
	}
	if got := Merge(one, s); !reflect.DeepEqual(got, one) {
		t.Fatalf("one+empty != one:\n%+v\n%+v", got, one)
	}
	if got := Merge(s, s); !reflect.DeepEqual(got, s) {
		t.Fatalf("empty+empty != empty: %+v", got)
	}
}

// TestHistogramNegativeClamped checks negative values clamp to 0
// instead of corrupting the bucket array.
func TestHistogramNegativeClamped(t *testing.T) {
	h := newHistogram("neg")
	h.Observe(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative not clamped: %+v", s)
	}
}

// TestManualClockDeterministicTiming drives a timing loop off a Manual
// clock and asserts the histogram contents exactly — no sleeps, no
// tolerance.
func TestManualClockDeterministicTiming(t *testing.T) {
	clock := NewManual(time.Unix(0, 0))
	reg := NewWithClock(clock)
	h := reg.Histogram("op_ns")
	steps := []time.Duration{time.Millisecond, 3 * time.Millisecond, time.Millisecond, 10 * time.Microsecond}
	for _, d := range steps {
		start := reg.Now()
		clock.Advance(d)
		h.Observe(reg.Since(start))
	}
	s := h.Snapshot()
	if s.Count != int64(len(steps)) {
		t.Fatalf("count %d", s.Count)
	}
	if s.Min != int64(10*time.Microsecond) || s.Max != int64(3*time.Millisecond) {
		t.Fatalf("min/max %d/%d", s.Min, s.Max)
	}
	var sum time.Duration
	for _, d := range steps {
		sum += d
	}
	if s.Sum != int64(sum) {
		t.Fatalf("sum %d want %d", s.Sum, int64(sum))
	}
	// p50 must land in 1ms's bucket: within one bucket width.
	if diff := s.P50 - int64(time.Millisecond); diff < -BucketWidth(int64(time.Millisecond)) || diff > BucketWidth(int64(time.Millisecond)) {
		t.Fatalf("p50 %d not within a bucket of 1ms", s.P50)
	}
}
