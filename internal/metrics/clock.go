// Package metrics is the zero-dependency observability layer of the
// engine (DESIGN.md §9): lock-cheap counters and gauges (per-worker
// sharded, folded on read), log-bucketed latency histograms with
// quantile summaries and exact min/max, a Registry snapshot API, and an
// optional HTTP exporter (http.go).
//
// Design rules:
//
//   - Hot paths never take a lock: counters and histogram buckets are
//     atomics; Registry's mutex guards only metric registration and
//     snapshot iteration, which the instrumented paths never touch
//     after construction (handles are cached).
//   - Recording never allocates, so an instrumented path's allocation
//     profile is identical with metrics on or off.
//   - Time is read through an injectable Clock, so every timing test is
//     deterministic (no sleeps): tests drive a Manual clock forward.
//   - Snapshots may be taken from any goroutine while traffic is live;
//     they are race-free but only batch-consistent (a snapshot may
//     observe a counter from mid-batch).
package metrics

import (
	"sync"
	"time"
)

// Clock supplies the current time to timed instrumentation. The engine
// reads it through Registry.Now/Since; tests inject a Manual clock so
// histogram contents are deterministic.
type Clock interface {
	Now() time.Time
}

// wallClock is the real time.Now clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall returns the real wall clock (the default for New).
func Wall() Clock { return wallClock{} }

// Manual is a test clock that only moves when told to. Safe for
// concurrent use.
type Manual struct {
	mu sync.Mutex
	t  time.Time
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual { return &Manual{t: start} }

// Now returns the clock's current instant.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = m.t.Add(d)
}
