package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardedFold(t *testing.T) {
	reg := New()
	c := reg.Counter("ops_total")
	c.Add(5)
	for w := 0; w < 100; w++ { // wraps modulo the shard count
		c.AddAt(w, 2)
	}
	if got := c.Value(); got != 205 {
		t.Fatalf("Value = %d, want 205", got)
	}
	if reg.Counter("ops_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	reg := New()
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	clock := NewManual(time.Unix(100, 0))
	reg := NewWithClock(clock)
	reg.Counter("a_total").Add(3)
	reg.Gauge("b").Set(-1)
	reg.Histogram("c_ns").Record(1000)

	s := reg.Snapshot()
	if s.Counters["a_total"] != 3 || s.Gauges["b"] != -1 || s.Histograms["c_ns"].Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}

	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"counter a_total", "gauge   b", "hist    c_ns", "count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text table missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentRecordAndSnapshot hammers counters, gauges, and
// histograms from many goroutines while snapshots are taken — the
// package-level race gate (run under -race in make ci).
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	reg := New()
	c := reg.Counter("hammer_total")
	g := reg.Gauge("hammer_depth")
	h := reg.Histogram("hammer_ns")

	const workers, iters = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.AddAt(w, 1)
				g.Set(int64(i))
				h.Record(int64(i % 1000))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := reg.Snapshot()
			if s.Counters["hammer_total"] < 0 {
				t.Error("negative counter")
				return
			}
			s.Histograms["hammer_ns"].Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*iters {
		t.Fatalf("final counter %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("final histogram count %d, want %d", got, workers*iters)
	}
}

// TestRecordDoesNotAllocate pins the no-allocation guarantee of the hot
// recording paths.
func TestRecordDoesNotAllocate(t *testing.T) {
	reg := New()
	c := reg.Counter("alloc_total")
	g := reg.Gauge("alloc_g")
	h := reg.Histogram("alloc_ns")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.AddAt(3, 1)
		g.Set(9)
		h.Record(12345)
	}); n != 0 {
		t.Fatalf("recording allocates %v allocs/op, want 0", n)
	}
}
