package metrics

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counterSlot is one cache-line-padded counter shard, so per-worker
// increments from different threads never contend on one line.
type counterSlot struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter, sharded across
// cache-line-padded slots. Single-goroutine paths use Add (slot 0);
// parallel workers use AddAt with their worker id so increments stay on
// private cache lines. Value folds all slots on read.
type Counter struct {
	name  string
	slots []counterSlot
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n (slot 0).
func (c *Counter) Add(n int64) { c.slots[0].v.Add(n) }

// AddAt increments via worker w's shard (w is reduced modulo the shard
// count, so any non-negative worker id is valid).
func (c *Counter) AddAt(w int, n int64) { c.slots[w%len(c.slots)].v.Add(n) }

// Value folds every shard and returns the total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].v.Load()
	}
	return sum
}

// NewCounter returns a standalone counter with exactly slots padded
// slots, unattached to any Registry. Registry counters size their slots
// to the worker count; a standalone counter instead fixes the slot
// count so the slots themselves can carry positional meaning — AddAt(i,
// n) touches slot i and ValueAt(i) reads it back, turning the counter
// into a fixed-size histogram with the same contention-free padded
// write path (the autoshard heat map uses one slot per key-range
// bucket). Unlike registry counters, slots of a standalone counter may
// also be decremented (EWMA decay).
func NewCounter(name string, slots int) *Counter {
	if slots < 1 {
		slots = 1
	}
	return &Counter{name: name, slots: make([]counterSlot, slots)}
}

// Slots returns the number of padded slots.
func (c *Counter) Slots() int { return len(c.slots) }

// ValueAt returns slot i's value alone (i is reduced modulo the slot
// count, mirroring AddAt).
func (c *Counter) ValueAt(i int) int64 { return c.slots[i%len(c.slots)].v.Load() }

// Gauge is an instantaneous value (queue depth, cap, last LSN).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry owns a namespace of metrics and the clock that times them.
// Metric handles are created once (get-or-create under a mutex, usually
// at engine construction) and then used lock-free; Snapshot may be
// called from any goroutine at any time.
type Registry struct {
	clock  Clock
	shards int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns a Registry on the real wall clock.
func New() *Registry { return NewWithClock(Wall()) }

// NewWithClock returns a Registry reading time from clock (tests pass a
// Manual clock for deterministic timings).
func NewWithClock(clock Clock) *Registry {
	if clock == nil {
		clock = Wall()
	}
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	if shards > 64 {
		shards = 64
	}
	return &Registry{
		clock:    clock,
		shards:   shards,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Now reads the registry's clock.
func (r *Registry) Now() time.Time { return r.clock.Now() }

// Since returns the elapsed time from start per the registry's clock.
func (r *Registry) Since(start time.Time) time.Duration {
	return r.clock.Now().Sub(start)
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, slots: make([]counterSlot, r.shards)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, the
// shape served as JSON by the /metrics endpoint.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Safe concurrently with
// live recording (values are read atomically, metric by metric).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText renders the snapshot as an aligned plain-text table (the
// /metrics?format=text view): counters and gauges as name/value pairs,
// histograms with count, mean, quantiles, and exact min/max.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %-32s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-32s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w,
			"hist    %-32s count=%d mean=%.0f min=%d p50=%d p90=%d p99=%d p999=%d max=%d\n",
			n, h.Count, h.Mean(), h.Min, h.P50, h.P90, h.P99, h.P999, h.Max); err != nil {
			return err
		}
	}
	return nil
}
