package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// HealthFunc reports the serving process's sticky error state; nil
// error means healthy. qtrans.DB.Err satisfies it.
type HealthFunc func() error

// Handler returns the exporter's HTTP handler:
//
//	/metrics          registry snapshot as JSON (expvar-style); add
//	                  ?format=text for an aligned plain-text table
//	/healthz          200 "ok" while health() is nil, 503 + the error
//	                  text once the process is poisoned (health may be
//	                  nil: always healthy)
//	/debug/pprof/*    the standard net/http/pprof profiling surface
//
// The handler holds no locks across requests; /metrics takes a
// Registry snapshot per request.
func Handler(r *Registry, health HealthFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the exporter on addr (e.g. ":9100" or "127.0.0.1:0") in
// a background goroutine. It returns the bound address (useful with
// port 0) and a function that shuts the listener down.
func Serve(addr string, r *Registry, health HealthFunc) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r, health)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
