package harness

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/palm"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tier"
	"repro/internal/workload"
)

// Experiment regenerates one figure or table, writing rows to w.
type Experiment struct {
	// ID is the figure/table identifier, e.g. "fig9a", "table2".
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run executes the experiment.
	Run func(rn *Runner, w io.Writer) error
}

// Experiments returns the full roster, in paper order.
func Experiments() []Experiment {
	exps := []Experiment{
		{"fig4", "key distribution skew: top-N coverage (taxi, ycsb-latest, ycsb-zipfian)", Fig4},
	}
	for i, ds := range []string{"gaussian", "self-similar", "zipfian", "uniform"} {
		ds := ds
		sub := string(rune('a' + i))
		exps = append(exps,
			Experiment{"fig9" + sub, "throughput org vs opt, " + ds, func(rn *Runner, w io.Writer) error {
				return ThroughputFigure(rn, w, ds)
			}},
			Experiment{"fig10" + sub, "scalability, " + ds, func(rn *Runner, w io.Writer) error {
				return ScalabilityFigure(rn, w, ds)
			}},
		)
	}
	exps = append(exps,
		Experiment{"fig11a", "throughput org vs opt, ycsb-latest", func(rn *Runner, w io.Writer) error {
			return ThroughputFigure(rn, w, "ycsb-latest")
		}},
		Experiment{"fig11b", "throughput org vs opt, ycsb-zipfian", func(rn *Runner, w io.Writer) error {
			return ThroughputFigure(rn, w, "ycsb-zipfian")
		}},
		Experiment{"fig11c", "scalability, ycsb-latest", func(rn *Runner, w io.Writer) error {
			return ScalabilityFigure(rn, w, "ycsb-latest")
		}},
		Experiment{"fig11d", "scalability, ycsb-zipfian", func(rn *Runner, w io.Writer) error {
			return ScalabilityFigure(rn, w, "ycsb-zipfian")
		}},
		Experiment{"fig12a", "throughput org vs opt, taxi", func(rn *Runner, w io.Writer) error {
			return ThroughputFigure(rn, w, "taxi")
		}},
		Experiment{"fig12b", "scalability, taxi", func(rn *Runner, w io.Writer) error {
			return ScalabilityFigure(rn, w, "taxi")
		}},
		Experiment{"fig13", "per-thread leaf operations (load balance), self-similar U-0.25", Fig13},
		Experiment{"fig14a", "throughput breakdown org/intra/inter, self-similar", Fig14a},
		Experiment{"fig14b", "query reduction ratio, self-similar", Fig14b},
		Experiment{"fig14c", "stage time breakdown, self-similar", Fig14c},
		Experiment{"fig15", "batch size impact, self-similar U-0.25", Fig15},
		Experiment{"abl1", "transform strategy ablation: org vs intra vs inter vs sim (zipfian)", Ablation1},
		Experiment{"pipe", "pipelined vs serial stream execution, self-similar U-0.25", PipelineExp},
		Experiment{"shard", "range-partitioned sharding sweep: throughput and imbalance per shard count", ShardExp},
		Experiment{"abl2", "tree utilization under churn: relaxed batched deletes vs strict serial", Ablation2},
		Experiment{"kernels", "sorted-batch tree kernel ablation: path-reuse / branchless search / merge apply", KernelsExp},
		Experiment{"layout", "gapped vs dense node layout: search cost and restructuring by ablation", LayoutExp},
		Experiment{"scan", "range scans vs repeated point gets, RMW vs get-then-insert pairs", ScanExp},
		Experiment{"metrics", "per-stage time breakdown from the metrics registry (org and inter)", MetricsExp},
		Experiment{"serve", "network front end under concurrent connections: steady, overload (shedding), graceful drain", ServeExp},
		Experiment{"autoshard", "traffic-aware autosharding vs static partitioning under a drifting hotspot", AutoshardExp},
		Experiment{"tiered", "cold-range tiering vs all-in-memory: bounded resident keys under a drifting hotspot", TieredExp},
		Experiment{"table1", "dataset configurations", Table1},
		Experiment{"table2", "latency per dataset (opt vs org, U-0 and U-0.75)", Table2},
	)
	return exps
}

// ExperimentByID looks an experiment up.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Fig4 reports the skew statistics behind Fig. 4: fraction of queries
// covered by the hottest keys for the realistic datasets.
func Fig4(rn *Runner, w io.Writer) error {
	samples := int(float64(2_000_000) * rn.Opts.Scale * 50)
	if samples < 50_000 {
		samples = 50_000
	}
	row(w, "dataset", "samples", "distinct", "top1000_coverage", "top1pct_coverage")
	for _, name := range []string{"taxi", "ycsb-latest", "ycsb-zipfian"} {
		spec, err := workload.SpecByName(name, rn.Opts.Scale)
		if err != nil {
			return err
		}
		gen := spec.Build()
		r := rand.New(rand.NewSource(rn.Opts.Seed))
		frac1000, distinct := workload.Coverage(gen, r, samples, 1000)
		r = rand.New(rand.NewSource(rn.Opts.Seed))
		onePct := distinct / 100
		if onePct < 1 {
			onePct = 1
		}
		fracPct, _ := workload.Coverage(gen, r, samples, onePct)
		row(w, name, samples, distinct, frac1000, fracPct)
	}
	return nil
}

// ThroughputFigure emits the org-vs-opt throughput rows of Figs. 9,
// 11(a-b), and 12(a): one row per update ratio.
func ThroughputFigure(rn *Runner, w io.Writer, dataset string) error {
	spec, err := workload.SpecByName(dataset, rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "update_ratio", "org_qps", "opt_qps", "speedup", "reduction")
	for _, u := range UpdateRatios {
		org, err := rn.RunOne(spec, core.Original, u, 0, 0)
		if err != nil {
			return err
		}
		opt, err := rn.RunOne(spec, core.IntraInter, u, 0, 0)
		if err != nil {
			return err
		}
		row(w, u, org.Throughput, opt.Throughput, opt.Throughput/org.Throughput, opt.ReductionRatio())
	}
	return nil
}

// ScalabilityFigure emits the thread-sweep rows of Figs. 10, 11(c-d),
// and 12(b): opt throughput per (threads, update ratio).
func ScalabilityFigure(rn *Runner, w io.Writer, dataset string) error {
	spec, err := workload.SpecByName(dataset, rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "threads", "update_ratio", "opt_qps")
	for _, th := range ThreadCounts(rn.Opts.Workers) {
		for _, u := range UpdateRatios {
			opt, err := rn.RunOne(spec, core.IntraInter, u, th, 0)
			if err != nil {
				return err
			}
			row(w, th, u, opt.Throughput)
		}
	}
	return nil
}

// Fig13 reports per-thread leaf-operation counts for self-similar
// U-0.25, with and without the prefix-sum load balancing (§V-A).
func Fig13(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "balancing", "thread", "leaf_ops")
	for _, lb := range []bool{true, false} {
		res, err := rn.runWithBalance(spec, 0.25, lb)
		if err != nil {
			return err
		}
		label := "prefix-sum"
		if !lb {
			label = "naive"
		}
		for tid, ops := range res.Totals.LeafOps {
			row(w, label, tid, ops)
		}
		row(w, label, "imbalance(max/mean)", res.Totals.LeafOpImbalance())
	}
	return nil
}

// runWithBalance is RunOne with an explicit LoadBalance setting.
func (rn *Runner) runWithBalance(spec workload.Spec, u float64, lb bool) (*Result, error) {
	return rn.runCustom(spec, core.IntraInter, u, rn.Opts.Workers, spec.BatchSize, lb)
}

// Fig14a: throughput of org / intra / inter per update ratio.
func Fig14a(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "update_ratio", "org_qps", "intra_qps", "inter_qps")
	for _, u := range UpdateRatios {
		var qps [3]float64
		for i, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
			res, err := rn.RunOne(spec, mode, u, 0, 0)
			if err != nil {
				return err
			}
			qps[i] = res.Throughput
		}
		row(w, u, qps[0], qps[1], qps[2])
	}
	return nil
}

// Fig14b: query reduction ratio of intra and inter per update ratio.
func Fig14b(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "update_ratio", "intra_reduction", "inter_reduction")
	for _, u := range UpdateRatios {
		intra, err := rn.RunOne(spec, core.Intra, u, 0, 0)
		if err != nil {
			return err
		}
		inter, err := rn.RunOne(spec, core.IntraInter, u, 0, 0)
		if err != nil {
			return err
		}
		row(w, u, intra.ReductionRatio(), inter.ReductionRatio())
	}
	return nil
}

// Fig14c: per-stage execution time for each mode and update ratio.
func Fig14c(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	header := []interface{}{"update_ratio", "mode"}
	for _, s := range stats.Stages() {
		header = append(header, s.String()+"_ms")
	}
	row(w, header...)
	for _, u := range UpdateRatios {
		for _, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
			res, err := rn.RunOne(spec, mode, u, 0, 0)
			if err != nil {
				return err
			}
			cols := []interface{}{u, mode.String()}
			for _, s := range stats.Stages() {
				cols = append(cols, float64(res.Totals.Elapsed[s])/float64(time.Millisecond))
			}
			row(w, cols...)
		}
	}
	return nil
}

// Fig15: throughput vs batch size (0.5M / 3M / 6M at paper scale) for
// self-similar U-0.25 across the three modes.
func Fig15(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	sizes := []int{
		scaleInt(500_000, rn.Opts.Scale),
		scaleInt(3_000_000, rn.Opts.Scale),
		scaleInt(6_000_000, rn.Opts.Scale),
	}
	row(w, "batch_size", "org_qps", "intra_qps", "inter_qps")
	for _, bs := range sizes {
		var qps [3]float64
		for i, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
			res, err := rn.RunOne(spec, mode, 0.25, 0, bs)
			if err != nil {
				return err
			}
			qps[i] = res.Throughput
		}
		row(w, bs, qps[0], qps[1], qps[2])
	}
	return nil
}

func scaleInt(v int, scale float64) int {
	out := int(float64(v) * scale)
	if out < 1 {
		out = 1
	}
	return out
}

// Ablation1 compares all four engine modes — including the §IV-E
// "alternative solution" (simulation-based elimination, mode "sim") —
// on the zipfian dataset across update ratios. Not a paper figure; it
// quantifies the discussion at the end of §IV-E.
func Ablation1(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("zipfian", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "update_ratio", "org_qps", "intra_qps", "inter_qps", "sim_qps")
	for _, u := range UpdateRatios {
		var qps [4]float64
		for i, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter, core.SimIntra} {
			res, err := rn.RunOne(spec, mode, u, 0, 0)
			if err != nil {
				return err
			}
			qps[i] = res.Throughput
		}
		row(w, u, qps[0], qps[1], qps[2], qps[3])
	}
	return nil
}

// PipelineExp compares serial and two-stage pipelined stream execution
// (EngineConfig.Pipeline; not a paper figure — the paper's stages run
// back-to-back) on self-similar U-0.25, for the org and inter modes at
// two batch sizes. Rows report end-to-end throughput and the per-batch
// allocation rates of both arms. Overlap speedup requires spare cores:
// with the transform and tree stages time-sliced on one core the
// speedup is ~1x (see EXPERIMENTS.md).
func PipelineExp(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	sizes := []int{spec.BatchSize, 4 * spec.BatchSize}
	row(w, "batch_size", "mode", "serial_qps", "pipe_qps", "speedup", "serial_allocs/batch", "pipe_allocs/batch")
	for _, bs := range sizes {
		for _, mode := range []core.Mode{core.Original, core.IntraInter} {
			ser, err := rn.RunStreamOne(spec, mode, 0.25, false, bs)
			if err != nil {
				return err
			}
			pipe, err := rn.RunStreamOne(spec, mode, 0.25, true, bs)
			if err != nil {
				return err
			}
			serAllocs, _ := ser.Mem.PerBatch(ser.Batches)
			pipeAllocs, _ := pipe.Mem.PerBatch(pipe.Batches)
			row(w, bs, mode.String(), ser.Throughput, pipe.Throughput,
				pipe.Throughput/ser.Throughput, serAllocs, pipeAllocs)
		}
	}
	return nil
}

// ShardExp sweeps the shard count of the range-partitioned engine on a
// uniform and a skewed dataset (U-0.25), dividing a fixed worker budget
// across the shards. Rows report end-to-end throughput, speedup over
// the single-shard arm, and the routing imbalance (max/mean queries per
// shard) with and without periodic rebalancing — the skewed dataset is
// where static equal-width boundaries go wrong and Rebalance earns its
// keep. Not a paper figure; it extends the paper's scalability story
// (§VI) to partitioned trees.
func ShardExp(rn *Runner, w io.Writer) error {
	row(w, "dataset", "shards", "rebalance", "qps", "speedup", "imbalance", "rebalances", "migrated")
	for _, ds := range []string{"uniform", "zipfian"} {
		spec, err := workload.SpecByName(ds, rn.Opts.Scale)
		if err != nil {
			return err
		}
		var base float64
		for _, shards := range []int{1, 2, 4, 8} {
			for _, rebalanceEvery := range []int{0, 8} {
				if shards == 1 && rebalanceEvery > 0 {
					continue // single shard: nothing to re-split
				}
				res, err := rn.RunShardOne(spec, core.IntraInter, 0.25, shards, 0, rebalanceEvery)
				if err != nil {
					return err
				}
				if shards == 1 {
					base = res.Throughput
				}
				mode := "off"
				if rebalanceEvery > 0 {
					mode = fmt.Sprintf("every%d", rebalanceEvery)
				}
				row(w, ds, shards, mode, res.Throughput, res.Throughput/base,
					res.ShardStats.Imbalance(), res.ShardStats.Rebalances, res.ShardStats.Migrated)
			}
		}
	}
	return nil
}

// Ablation2 quantifies the DESIGN.md §4.2 substitution: PALM's relaxed
// delete policy (under-full nodes tolerated, only empty nodes removed)
// degrades leaf fill under insert/delete churn compared to the serial
// tree's textbook borrow/merge rebalancing. Both trees process the
// same churn cycles; rows report mean leaf fill after each cycle.
func Ablation2(rn *Runner, w io.Writer) error {
	o := rn.Opts
	n := scaleInt(2_000_000, o.Scale)
	if n < 1000 {
		n = 1000
	}

	proc, err := palm.New(palm.Config{Order: o.Order, Workers: o.Workers, LoadBalance: true}, nil)
	if err != nil {
		return err
	}
	defer proc.Close()
	serial, err := btree.New(o.Order)
	if err != nil {
		return err
	}

	r := rand.New(rand.NewSource(o.Seed))
	row(w, "cycle", "palm_leaf_fill", "serial_leaf_fill", "palm_leaves", "serial_leaves")
	rs := keys.NewResultSet(n)
	for cycle := 0; cycle < 6; cycle++ {
		batch := make([]keys.Query, n)
		for i := range batch {
			k := keys.Key(r.Intn(2 * n))
			if cycle%2 == 0 || r.Intn(3) == 0 {
				batch[i] = keys.Insert(k, keys.Value(i))
			} else {
				batch[i] = keys.Delete(k)
			}
		}
		keys.Number(batch)
		serialBatch := append([]keys.Query(nil), batch...)
		rs.Reset(n)
		proc.ProcessBatch(batch, rs)
		serial.ApplyAll(serialBatch, nil)

		pm := proc.Tree().CollectMetrics()
		sm := serial.CollectMetrics()
		row(w, cycle, pm.LeafFill, sm.LeafFill, pm.LeafNodes, sm.LeafNodes)
	}
	return nil
}

// KernelsExp measures the sorted-batch tree kernels (DESIGN.md §8) by
// ablation: all kernels on, each disabled individually, and all off (the
// pre-kernel engine), on self-similar at U-0 (search-only Stage 1+2) and
// U-0.25 (restructuring active), in org and inter modes. Rows report
// throughput, speedup over the all-off arm, and the fence-hit rate (the
// fraction of Stage-1 leaf locations resolved without any descent).
// Results are byte-identical across arms; only the clock moves.
func KernelsExp(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	combos := []struct {
		name             string
		noPR, noBL, noMA bool
	}{
		{"all-off", true, true, true},
		{"no-pathreuse", true, false, false},
		{"no-branchless", false, true, false},
		{"no-mergeapply", false, false, true},
		{"all-on", false, false, false},
	}
	row(w, "mode", "update_ratio", "kernels", "qps", "speedup_vs_off", "fence_hit_rate")
	for _, mode := range []core.Mode{core.Original, core.IntraInter} {
		for _, u := range []float64{0, 0.25} {
			var base float64
			for _, c := range combos {
				arm := *rn
				arm.Opts.NoPathReuse = c.noPR
				arm.Opts.NoBranchlessSearch = c.noBL
				arm.Opts.NoMergeApply = c.noMA
				res, err := arm.RunOne(spec, mode, u, 0, 0)
				if err != nil {
					return err
				}
				if c.name == "all-off" {
					base = res.Throughput
				}
				fenceRate := 0.0
				if res.Queries > 0 {
					fenceRate = float64(res.Totals.FenceHits) / float64(res.Queries)
				}
				row(w, mode.String(), u, c.name, res.Throughput, res.Throughput/base, fenceRate)
			}
		}
	}
	return nil
}

// LayoutExp measures the gapped (BS-tree style) node layout by
// ablation against the classic dense layout (DESIGN.md §10): org and
// inter modes, at U-0 (search-only, so the branchless fixed-width probe
// dominates) and U-0.5 (insert-heavy, so gap claiming vs memmove and
// split counts dominate). Rows report throughput, mean per-query time,
// leaf splits and shifted slots per batch, and the end-to-end speedup
// of each arm over dense. Results are byte-identical across arms; only
// the clock and the restructuring counters move.
func LayoutExp(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "mode", "update_ratio", "layout", "qps", "ns_per_query",
		"splits_per_batch", "shifted_slots_per_batch", "speedup_vs_dense")
	for _, mode := range []core.Mode{core.Original, core.IntraInter} {
		for _, u := range []float64{0, 0.5} {
			var base float64
			for _, arm := range []struct {
				name  string
				dense bool
			}{
				{"dense", true},
				{"gapped", false},
			} {
				run := *rn
				run.Opts.NoGappedLayout = arm.dense
				res, err := run.RunOne(spec, mode, u, 0, 0)
				if err != nil {
					return err
				}
				if arm.dense {
					base = res.Throughput
				}
				nsq := 0.0
				if res.Throughput > 0 {
					nsq = 1e9 / res.Throughput
				}
				batches := res.Batches
				if batches == 0 {
					batches = 1
				}
				row(w, mode.String(), u, arm.name, res.Throughput, nsq,
					float64(res.Totals.Splits)/float64(batches),
					float64(res.Totals.ShiftedSlots)/float64(batches),
					res.Throughput/base)
			}
		}
	}
	return nil
}

// ScanExp measures the range-scan and read-modify-write paths
// (DESIGN.md §11) against their point-query equivalents on a prefilled
// uniform tree. The scan arms compare batched scans of span W against
// W repeated point gets over the same ranges; both arms resolve the
// same key range, so the fair metric is keys covered per second. The
// RMW arm compares AddDelta batches against the two-round
// search-then-insert sequence a client without server-side RMW would
// issue (read the batch, compute, write the batch back). Not a paper
// figure; the paper's query model is point-only.
func ScanExp(rn *Runner, w io.Writer) error {
	o := rn.Opts
	spec, err := workload.SpecByName("uniform", o.Scale)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          o.palmConfig(o.Workers, true),
		CacheCapacity: o.CacheCapacity,
		Metrics:       o.Metrics,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	gen := spec.Build()
	r := rand.New(rand.NewSource(o.Seed))
	prefill := workload.Prefill(gen, r, spec.UniqueKeys)
	rs := keys.NewResultSet(spec.BatchSize)
	for lo := 0; lo < len(prefill); lo += spec.BatchSize {
		hi := lo + spec.BatchSize
		if hi > len(prefill) {
			hi = len(prefill)
		}
		chunk := keys.Number(prefill[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	rounds := 4
	if o.Batches > 0 && o.Batches < rounds {
		rounds = o.Batches
	}
	keyMax := gen.KeyRange()

	row(w, "workload", "arm", "queries_per_batch", "keys_per_batch", "qps", "keys_per_sec", "speedup_vs_point")

	for _, span := range []uint64{16, 128, 1024} {
		if span >= keyMax {
			continue
		}
		nScans := spec.BatchSize / int(span)
		if nScans < 1 {
			nScans = 1
		}
		coverage := nScans * int(span)
		// Both arms draw the same range starts from the same seed, so
		// they inspect identical key ranges.
		drawLo := func(rr *rand.Rand) keys.Key {
			lo := uint64(gen.Key(rr))
			if lo+span > keyMax {
				lo = keyMax - span
			}
			return keys.Key(lo)
		}

		var pointElapsed time.Duration
		{
			rr := rand.New(rand.NewSource(o.Seed + int64(span)))
			batch := make([]keys.Query, coverage)
			prs := keys.NewResultSet(coverage)
			for b := 0; b < rounds; b++ {
				qi := 0
				for s := 0; s < nScans; s++ {
					lo := drawLo(rr)
					for j := uint64(0); j < span; j++ {
						batch[qi] = keys.Search(lo + keys.Key(j))
						qi++
					}
				}
				keys.Number(batch)
				prs.Reset(coverage)
				start := time.Now()
				eng.ProcessBatch(batch, prs)
				pointElapsed += time.Since(start)
			}
		}

		var scanElapsed time.Duration
		{
			rr := rand.New(rand.NewSource(o.Seed + int64(span)))
			batch := make([]keys.Query, nScans)
			srs := keys.NewResultSet(nScans)
			for b := 0; b < rounds; b++ {
				for s := 0; s < nScans; s++ {
					lo := drawLo(rr)
					batch[s] = keys.Scan(lo, lo+keys.Key(span), 0)
				}
				keys.Number(batch)
				srs.Reset(nScans)
				start := time.Now()
				eng.ProcessBatch(batch, srs)
				scanElapsed += time.Since(start)
			}
		}

		name := fmt.Sprintf("scan_span%d", span)
		pointKps := stats.Throughput(rounds*coverage, pointElapsed)
		scanKps := stats.Throughput(rounds*coverage, scanElapsed)
		row(w, name, "point_gets", coverage, coverage,
			stats.Throughput(rounds*coverage, pointElapsed), pointKps, 1.0)
		row(w, name, "batched_scan", nScans, coverage,
			stats.Throughput(rounds*nScans, scanElapsed), scanKps, scanKps/pointKps)
	}

	// RMW vs the client-side equivalent: one search batch, then one
	// insert batch writing old+1 back (two engine rounds per logical
	// update batch, plus the value plumbing between them).
	n := spec.BatchSize
	ks := make([]keys.Key, n)
	var pairElapsed time.Duration
	{
		rr := rand.New(rand.NewSource(o.Seed + 7))
		b1 := make([]keys.Query, n)
		b2 := make([]keys.Query, n)
		rrs := keys.NewResultSet(n)
		for b := 0; b < rounds; b++ {
			for i := range ks {
				ks[i] = gen.Key(rr)
				b1[i] = keys.Search(ks[i])
			}
			keys.Number(b1)
			rrs.Reset(n)
			start := time.Now()
			eng.ProcessBatch(b1, rrs)
			pairElapsed += time.Since(start)
			for i := range ks {
				var old keys.Value
				if res, ok := rrs.Get(int32(i)); ok && res.Found {
					old = res.Value
				}
				b2[i] = keys.Insert(ks[i], old+1)
			}
			keys.Number(b2)
			rrs.Reset(n)
			start = time.Now()
			eng.ProcessBatch(b2, rrs)
			pairElapsed += time.Since(start)
		}
	}
	var rmwElapsed time.Duration
	{
		rr := rand.New(rand.NewSource(o.Seed + 7))
		batch := make([]keys.Query, n)
		rrs := keys.NewResultSet(n)
		for b := 0; b < rounds; b++ {
			for i := range ks {
				batch[i] = keys.AddDelta(gen.Key(rr), 1)
			}
			keys.Number(batch)
			rrs.Reset(n)
			start := time.Now()
			eng.ProcessBatch(batch, rrs)
			rmwElapsed += time.Since(start)
		}
	}
	pairUps := stats.Throughput(rounds*n, pairElapsed)
	rmwUps := stats.Throughput(rounds*n, rmwElapsed)
	row(w, "rmw_add", "search_then_insert", 2*n, n,
		stats.Throughput(rounds*2*n, pairElapsed), pairUps, 1.0)
	row(w, "rmw_add", "rmw", n, n,
		stats.Throughput(rounds*n, rmwElapsed), rmwUps, rmwUps/pairUps)
	return nil
}

// MetricsExp runs org and inter arms with a live metrics registry
// (internal/metrics) attached and prints the per-stage time breakdown
// the registry collected: per stage, total time, share of the summed
// batch wall, and the p50/p99 of the per-batch stage latency. The
// coverage row reports sum-of-stages / batch-wall — how much of the
// measured wall the stage timers account for (transform, cache, and
// tree stages; the small remainder is commit/broadcast/merge glue).
func MetricsExp(rn *Runner, w io.Writer) error {
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		return err
	}
	row(w, "mode", "stage", "total_ms", "share_of_wall", "p50_us", "p99_us")
	for _, mode := range []core.Mode{core.Original, core.IntraInter} {
		reg := metrics.New()
		arm := *rn
		arm.Opts.Metrics = reg
		if _, err := arm.RunOne(spec, mode, 0.25, 0, 0); err != nil {
			return err
		}
		snap := reg.Snapshot()
		wall := snap.Histograms["batch_wall_ns"]
		var stageSum int64
		for _, s := range stats.Stages() {
			h, ok := snap.Histograms["stage_"+s.String()+"_ns"]
			if !ok || h.Count == 0 {
				continue
			}
			stageSum += h.Sum
			share := 0.0
			if wall.Sum > 0 {
				share = float64(h.Sum) / float64(wall.Sum)
			}
			row(w, mode.String(), s.String(),
				float64(h.Sum)/float64(time.Millisecond), share,
				float64(h.P50)/float64(time.Microsecond),
				float64(h.P99)/float64(time.Microsecond))
		}
		coverage := 0.0
		if wall.Sum > 0 {
			coverage = float64(stageSum) / float64(wall.Sum)
		}
		row(w, mode.String(), "batch_wall",
			float64(wall.Sum)/float64(time.Millisecond), 1.0,
			float64(wall.P50)/float64(time.Microsecond),
			float64(wall.P99)/float64(time.Microsecond))
		row(w, mode.String(), "coverage(sum/wall)", float64(stageSum)/float64(time.Millisecond), coverage, "-", "-")
	}
	return nil
}

// Table1 prints the dataset roster (Table I) at the current scale and
// at paper scale.
func Table1(rn *Runner, w io.Writer) error {
	row(w, "dataset", "queries(paper)", "uniq_keys(paper)", "batch(paper)", "queries(run)", "uniq_keys(run)", "batch(run)")
	paper := workload.Specs(1)
	scaled := workload.Specs(rn.Opts.Scale)
	for i := range paper {
		row(w, paper[i].Name, paper[i].Queries, paper[i].UniqueKeys, paper[i].BatchSize,
			scaled[i].Queries, scaled[i].UniqueKeys, scaled[i].BatchSize)
	}
	return nil
}

// Table2 prints per-dataset batch latency: opt and org at U-0 and
// U-0.75 with the Table II batch sizes.
func Table2(rn *Runner, w io.Writer) error {
	row(w, "dataset", "batch_size", "opt_U0_ms", "opt_U75_ms", "org_U0_ms", "org_U75_ms")
	for _, sp := range workload.Specs(rn.Opts.Scale) {
		lat := func(mode core.Mode, u float64) (float64, error) {
			res, err := rn.RunOne(sp, mode, u, 0, 0)
			if err != nil {
				return 0, err
			}
			return float64(res.Latency.Mean()) / float64(time.Millisecond), nil
		}
		optU0, err := lat(core.IntraInter, 0)
		if err != nil {
			return err
		}
		optU75, err := lat(core.IntraInter, 0.75)
		if err != nil {
			return err
		}
		orgU0, err := lat(core.Original, 0)
		if err != nil {
			return err
		}
		orgU75, err := lat(core.Original, 0.75)
		if err != nil {
			return err
		}
		row(w, sp.Name, sp.BatchSize, optU0, optU75, orgU0, orgU75)
	}
	return nil
}

// AutoshardExp measures traffic-aware autosharding (DESIGN.md §13)
// against static partitioning under a drifting hotspot: 90% of queries
// hit a window of contiguous keys whose center walks the key space, so
// any fixed boundary layout is right only for a while. Per-shard caches
// are sized to a third of the window — smaller than the hot set, so the
// static arm's one hot shard thrashes, while the controller's boundary
// moves spread the window across shards whose aggregate cache covers
// it. The autoshard arm starts at two shards and is capped at the
// static arm's four, so both arms end with identical resources; splits,
// merges, and boundary moves all run live during the measured loop.
// Rows report end-to-end throughput, speedup over the static arm, the
// cumulative routing imbalance, structural/migration activity, batch
// wall percentiles, and the longest single controller pause — the
// non-stop-the-world claim is that the pause stays within one batch
// wall time.
func AutoshardExp(rn *Runner, w io.Writer) error {
	o := rn.Opts
	// The measured loops are sub-second on small machines; a GC cycle
	// landing inside one arm's window (but not the other's) would
	// swamp the comparison. Relax the GC for the duration — both arms
	// run under the identical setting.
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	span := scaleInt(4_000_000, o.Scale)
	if span < 4096 {
		span = 4096
	}
	width := span / 16
	cacheCap := width / 3
	batchSize := scaleInt(40_960, o.Scale)
	if batchSize < 64 {
		batchSize = 64
	}
	nBatches := 150
	if o.Batches > 0 && nBatches > o.Batches {
		nBatches = o.Batches
	}
	perShard := o.Workers / 4
	if perShard < 1 {
		perShard = 1
	}

	type armResult struct {
		shards   int
		qps      float64
		st       *stats.Shard
		hitRate  float64
		p50, max time.Duration
		maxPause time.Duration
		pauseP99 time.Duration
	}
	runArm := func(shards int, auto shard.AutoshardConfig) (*armResult, error) {
		gen := &workload.Drifting{
			Span:          uint64(span),
			Width:         uint64(width),
			VelocityMilli: 15,
			HotFraction:   0.98,
		}
		eng, err := shard.New(shard.Config{
			Shards: shards,
			Engine: core.EngineConfig{
				Mode: core.IntraInter,
				// Order 8 keeps the trees deep at harness scales, so a
				// cache miss costs a realistic multi-level descent;
				// both arms use the identical engine config.
				Palm:          palm.Config{Order: 4, Workers: perShard, LoadBalance: perShard > 1},
				CacheCapacity: cacheCap,
				Metrics:       o.Metrics,
			},
			KeyMax:    keys.Key(span - 1),
			Autoshard: auto,
		})
		if err != nil {
			return nil, err
		}
		defer eng.Close()

		// Uniform-density prefill (every other key), so equal-width
		// boundaries start equal-count too: the static arm is the best
		// fixed layout for everything but the hotspot.
		rs := keys.NewResultSet(batchSize)
		chunk := make([]keys.Query, 0, batchSize)
		for k := 0; k < span; k += 2 {
			chunk = append(chunk, keys.Insert(keys.Key(k), keys.Value(k)))
			if len(chunk) == batchSize || k+2 >= span {
				keys.Number(chunk)
				rs.Reset(len(chunk))
				eng.ProcessBatch(chunk, rs)
				chunk = chunk[:0]
			}
		}

		r := rand.New(rand.NewSource(o.Seed))
		batch := make([]keys.Query, batchSize)

		// Warmup (untimed): both arms process the same draws; the
		// autoshard arm's controller converges its boundaries onto the
		// hotspot here, so the measured loop below compares steady
		// states, not the one-off cost of leaving the cold layout.
		for b := 0; b < nBatches/3; b++ {
			workload.FillBatch(gen, r, batch, 0.5)
			rs.Reset(len(batch))
			eng.ProcessBatch(batch, rs)
			// Step until the controller has no pending migration (the
			// initial convergence away from equal-width boundaries is
			// many MaxStep slices); bounded so a flapping layout cannot
			// spin forever.
			for s := 0; auto.Enabled && s < 64; s++ {
				r := eng.AutoshardStep()
				if r.Moved == 0 && !r.Split && !r.Merge {
					break
				}
			}
		}

		// A clean heap before each arm's measured loop: the arms run
		// sequentially in one process, and letting the first arm's
		// garbage bill land in the second arm's window would skew the
		// comparison on small machines.
		runtime.GC()
		totals := stats.NewBatch(perShard)
		var lat, pauses stats.LatencyRecorder
		var maxPause time.Duration
		// Three repetitions of the measured window; the reported
		// throughput is the best one. Scheduler and GC interference on
		// small machines only ever slows a window down, so the fastest
		// repetition is the closest estimate of each arm's intrinsic
		// rate — and both arms are scored the same way.
		const reps = 3
		bestQps := 0.0
		for rep := 0; rep < reps; rep++ {
			var elapsed time.Duration
			queries := 0
			for b := 0; b < nBatches; b++ {
				workload.FillBatch(gen, r, batch, 0.5)
				rs.Reset(len(batch))
				start := time.Now()
				eng.ProcessBatch(batch, rs)
				d := time.Since(start)
				elapsed += d
				lat.Record(d)
				eng.Stats().AddTo(totals)
				queries += len(batch)
				if auto.Enabled {
					// Two controller steps per batch, each a bounded
					// pause at a batch boundary.
					for s := 0; s < 2; s++ {
						ps := time.Now()
						eng.AutoshardStep()
						p := time.Since(ps)
						pauses.Record(p)
						if p > maxPause {
							maxPause = p
						}
					}
				}
			}
			if q := stats.Throughput(queries, elapsed); q > bestQps {
				bestQps = q
			}
		}
		hitRate := 0.0
		if looked := totals.CacheHits + totals.CacheMisses; looked > 0 {
			hitRate = float64(totals.CacheHits) / float64(looked)
		}
		return &armResult{
			shards:   eng.Shards(),
			qps:      bestQps,
			st:       eng.ShardStats(),
			hitRate:  hitRate,
			p50:      lat.Percentile(0.50),
			max:      lat.Max(),
			maxPause: maxPause,
			pauseP99: pauses.Percentile(0.99),
		}, nil
	}

	static, err := runArm(4, shard.AutoshardConfig{})
	if err != nil {
		return err
	}
	autoCfg := shard.AutoshardConfig{
		Enabled:    true,
		Interval:   -1, // stepped manually so every pause is timed
		Buckets:    256,
		DecayShift: 3,
		SplitAbove: 1.6,
		MergeBelow: 0.15,
		Hysteresis: 3,
		MaxStep:    256,
		MaxShards:  4,
		MinShards:  2,
		MinHeat:    16,
	}
	auto, err := runArm(4, autoCfg)
	if err != nil {
		return err
	}

	row(w, "arm", "shards", "qps", "speedup", "hit_rate", "imbalance", "splits", "merges", "moves", "migrated", "p50_batch_ms", "max_batch_ms", "pause_p99_ms", "max_pause_ms")
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	row(w, "static", static.shards, static.qps, 1.0, static.hitRate, static.st.Imbalance(),
		0, 0, 0, 0, ms(static.p50), ms(static.max), 0.0, 0.0)
	row(w, "autoshard", auto.shards, auto.qps, auto.qps/static.qps, auto.hitRate, auto.st.Imbalance(),
		auto.st.AutoSplits, auto.st.AutoMerges, auto.st.Moves, auto.st.Migrated,
		ms(auto.p50), ms(auto.max), ms(auto.pauseP99), ms(auto.maxPause))
	// The non-stop-the-world claim, asserted rather than eyeballed: the
	// controller's batch-boundary pause must stay within one batch wall
	// time. p99 is the asserted statistic — the absolute max of a
	// sub-millisecond timer is owned by whichever GC or scheduler
	// preemption lands inside it, which the max_pause_ms column reports
	// for transparency without gating on it. The bound is only
	// meaningful when a batch is at least one migration slice of work:
	// at micro scales a MaxStep-key move legitimately outweighs a
	// smaller batch, so the assertion is skipped there.
	if batchSize >= autoCfg.MaxStep && auto.pauseP99 > auto.p50 {
		return fmt.Errorf("autoshard: p99 migration pause %v exceeds one batch wall %v", auto.pauseP99, auto.p50)
	}
	return nil
}

// TieredExp measures cold-range tiering (DESIGN.md §14) against the
// all-in-memory baseline on a key space four times the tiered arm's
// resident budget: both arms load the full span through the engine,
// then serve a working-set workload — a hot window of reads and
// updates whose position walks half the span over the run, plus a 2%
// trickle of uniform point reads over the whole space. The load
// overflows the tiered arm's budget immediately, so demotions run
// throughout; the drifting window then writes into demoted territory,
// faulting ranges back in as it moves, while the uniform reads land in
// cold ranges and are answered from runs on disk without promoting —
// the full fault/promote/demote cycle is live during the measured
// loop. (Uniform traffic is deliberately read-only: promotion is
// per-range, so scattered cold writes fault in far more keys than they
// touch, and no demotion bandwidth can bound residency under them —
// the classic tiering thrash regime, measurable by editing the fill
// loop, but not this experiment's operating point.)
// Rows report end-to-end throughput, the tier gauges (resident/cold
// keys, run count, disk bytes) and counters (faults, promotions,
// demotions), and the post-GC live heap. The bounded-RSS claim is
// asserted, not eyeballed: the tiered arm's final resident keys must
// stay within the budget plus the transient slack one batch can add
// (in-flight promotions, not-yet-demoted inserts, dirty cache); the
// plain arm, by construction, holds the whole span.
func TieredExp(rn *Runner, w io.Writer) error {
	o := rn.Opts
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	span := scaleInt(2_000_000, o.Scale)
	if span < 8192 {
		span = 8192
	}
	budget := span / 4
	runKeys := budget / 8
	batchSize := scaleInt(40_960, o.Scale)
	if batchSize < 512 {
		batchSize = 512
	}
	nBatches := 120
	if o.Batches > 0 && nBatches > o.Batches {
		nBatches = o.Batches
	}
	// Demotion moves at most one heat-bucket-wide range per action, so
	// per-batch demotion bandwidth is actions x span/buckets keys; with
	// 64 buckets and eight actions that is span/8 per batch — an order
	// above the load inflow (one batch of fresh inserts) and the
	// promotion inflow (the window's walk rate, span/(2 x batches)).
	const actionsPerBatch = 8
	const heatBuckets = 64
	// The write-back cache holds dirty pairs outside the tree, where the
	// resident budget cannot see them; size it well below the budget so
	// cached slack stays a small fraction of the bound (both arms use
	// the same cache, so the comparison stays fair).
	cacheCap := budget / 8
	if cacheCap < 64 {
		cacheCap = 64
	}

	type armResult struct {
		qps    float64
		heapMB float64
		st     tier.Stats
	}
	runArm := func(tiered bool) (*armResult, error) {
		inner, err := core.NewEngine(core.EngineConfig{
			Mode:          core.IntraInter,
			Palm:          o.palmConfig(o.Workers, o.Workers > 1),
			CacheCapacity: cacheCap,
			Metrics:       o.Metrics,
		})
		if err != nil {
			return nil, err
		}
		var eng interface {
			ProcessBatch(qs []keys.Query, rs *keys.ResultSet)
			Close()
		} = inner
		var te *tier.Engine
		if tiered {
			dir, err := os.MkdirTemp("", "qtrans-tiered-exp-")
			if err != nil {
				inner.Close()
				return nil, err
			}
			defer os.RemoveAll(dir)
			st, err := tier.Open(tier.Config{
				Dir:         filepath.Join(dir, "tier"),
				MaxResident: budget,
				RunKeys:     runKeys,
				Buckets:     heatBuckets,
				KeyMax:      keys.Key(span - 1),
				Metrics:     o.Metrics,
			}, true)
			if err != nil {
				inner.Close()
				return nil, err
			}
			te = tier.NewEngine(inner, st, actionsPerBatch)
			eng = te
		}
		defer eng.Close()

		// Load the whole span (value = key). The tiered arm's budget
		// overflows a quarter of the way in, so the load itself runs
		// under continuous demotion pressure.
		rs := keys.NewResultSet(batchSize)
		chunk := make([]keys.Query, 0, batchSize)
		for k := 0; k < span; k++ {
			chunk = append(chunk, keys.Insert(keys.Key(k), keys.Value(k)))
			if len(chunk) == batchSize || k+1 == span {
				keys.Number(chunk)
				rs.Reset(len(chunk))
				eng.ProcessBatch(chunk, rs)
				chunk = chunk[:0]
			}
		}

		r := rand.New(rand.NewSource(o.Seed))
		width := span / 16
		batch := make([]keys.Query, batchSize)
		var elapsed time.Duration
		queries := 0
		for b := 0; b < nBatches; b++ {
			// The window's low edge walks half the span over the run.
			winLo := b * span / (2 * nBatches)
			for i := range batch {
				if r.Float64() < 0.98 {
					k := keys.Key(winLo + r.Intn(width))
					if r.Float64() < 0.3 {
						batch[i] = keys.Insert(k, keys.Value(k))
					} else {
						batch[i] = keys.Search(k)
					}
				} else {
					batch[i] = keys.Search(keys.Key(r.Intn(span)))
				}
			}
			keys.Number(batch)
			rs.Reset(len(batch))
			start := time.Now()
			eng.ProcessBatch(batch, rs)
			elapsed += time.Since(start)
			queries += len(batch)
		}

		res := &armResult{qps: stats.Throughput(queries, elapsed)}
		if te != nil {
			if err := te.Err(); err != nil {
				return nil, fmt.Errorf("tiered arm poisoned: %w", err)
			}
			// The workload never deletes, so hot + cold must still hold
			// exactly the loaded span — a logical-integrity check on the
			// whole demote/promote churn above.
			if got := te.Len(); got != span {
				return nil, fmt.Errorf("tiered arm lost keys: Len %d, loaded %d", got, span)
			}
			res.st = te.Store().Stats()
		} else {
			res.st.ResidentKeys = int64(inner.StoredLen())
		}
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		res.heapMB = float64(m.HeapAlloc) / 1e6
		return res, nil
	}

	plain, err := runArm(false)
	if err != nil {
		return err
	}
	tieredRes, err := runArm(true)
	if err != nil {
		return err
	}

	row(w, "arm", "qps", "speedup", "resident_keys", "cold_keys", "cold_ranges", "disk_mb", "faults", "promotions", "demotions", "heap_mb")
	row(w, "plain", plain.qps, 1.0, plain.st.ResidentKeys, 0, 0, 0.0, 0, 0, 0, plain.heapMB)
	ts := tieredRes.st
	row(w, "tiered", tieredRes.qps, tieredRes.qps/plain.qps, ts.ResidentKeys, ts.ColdKeys,
		ts.ColdRanges, float64(ts.DiskBytes)/1e6, ts.Faults, ts.Promotions, ts.Demotions, tieredRes.heapMB)

	if ts.Demotions == 0 || ts.ColdKeys == 0 {
		return fmt.Errorf("tiered: no demotions on a span (%d) four times the budget (%d)", span, budget)
	}
	// The transient slack: one batch can promote up to actionsPerBatch
	// runs before the following boundaries demote the overflow back out,
	// a batch of fresh inserts lands resident first, and dirty cached
	// pairs sit outside the tree the budget check reads.
	bound := int64(budget + actionsPerBatch*runKeys + batchSize + cacheCap)
	if ts.ResidentKeys > bound {
		return fmt.Errorf("tiered: resident keys %d exceed budget %d + slack (bound %d)", ts.ResidentKeys, budget, bound)
	}
	return nil
}
