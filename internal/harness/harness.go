// Package harness drives the paper's evaluation (§VI): it builds trees
// from Table I dataset specs, streams query batches through the
// original PALM pipeline and the QTrans-optimized pipelines, and emits
// the rows behind every figure and table. Each experiment function
// corresponds to one figure/table; see DESIGN.md §3 for the index.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/palm"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tier"
	"repro/internal/workload"
)

// Options configures a harness run.
type Options struct {
	// Scale shrinks Table I dataset sizes (1 = paper scale). The
	// default used by the CLI and benches is laptop-scale.
	Scale float64
	// Workers is the BSP thread count; <= 0 selects GOMAXPROCS.
	Workers int
	// Order is the B+ tree order; <= 0 selects the default.
	Order int
	// Seed makes workloads reproducible.
	Seed int64
	// CacheCapacity is the top-K cache size for IntraInter runs.
	CacheCapacity int
	// Batches caps the number of batches per run (0 = all queries).
	Batches int

	// NoPathReuse, NoBranchlessSearch, NoMergeApply and NoGappedLayout
	// disable the sorted-batch tree kernels and the gapped node layout
	// (DESIGN.md §8 and §10, palm.Config ablations); the zero value
	// keeps all four on.
	NoPathReuse        bool
	NoBranchlessSearch bool
	NoMergeApply       bool
	NoGappedLayout     bool

	// Metrics, when non-nil, instruments every engine the harness builds
	// into the given registry (nil keeps runs uninstrumented, identical
	// to before).
	Metrics *metrics.Registry

	// Autoshard, when Enabled, turns on the traffic-aware resharding
	// controller for sharded runs (RunShardOne with shards > 1). The
	// harness always steps the controller manually at batch boundaries
	// — the background loop is forced off — so the measured loop stays
	// deterministic.
	Autoshard shard.AutoshardConfig

	// TieredDir, when set, wraps single-engine runs (RunOne and the
	// probe paths built on it) with the cold-range tier store
	// (DESIGN.md §14) rooted at this directory; the directory is wiped
	// on open. Sharded and streamed runs do not support tiering.
	TieredDir string
	// TieredBudget is the tiered runs' resident key budget
	// (0 = a quarter of the keys stored after prefill).
	TieredBudget int

	// Conns is the number of concurrent client connections the serve
	// experiment drives (<= 0 derives a laptop-scale count from Scale).
	Conns int
	// ServerBin, when set, points the serve experiment at a built
	// cmd/qtransserver binary: each phase spawns its own server process
	// (so client and server draw on separate file-descriptor budgets)
	// and parses its stdout counter lines. Empty runs the server
	// in-process, which caps Conns at inprocConnCap because every
	// connection then costs two descriptors in one process.
	ServerBin string
}

// palmConfig builds the tree-processor config for one measurement arm.
func (o Options) palmConfig(workers int, loadBalance bool) palm.Config {
	return palm.Config{
		Order:              o.Order,
		Workers:            workers,
		LoadBalance:        loadBalance,
		NoPathReuse:        o.NoPathReuse,
		NoBranchlessSearch: o.NoBranchlessSearch,
		NoMergeApply:       o.NoMergeApply,
		NoGappedLayout:     o.NoGappedLayout,
	}
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.002
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 1 << 16
	}
	return o
}

// Result is the outcome of one (dataset, mode, update ratio, threads)
// measurement.
type Result struct {
	Dataset     string
	Mode        core.Mode
	UpdateRatio float64
	Threads     int
	BatchSize   int
	Queries     int
	Elapsed     time.Duration
	// Throughput in queries/second over the whole run.
	Throughput float64
	// Latency summarizes per-batch wall time (Table II).
	Latency stats.LatencyRecorder
	// Totals accumulates per-batch stats (reduction ratio, stage
	// times, leaf ops).
	Totals *stats.Batch
	// Batches is the number of measured batches.
	Batches int
	// Mem is the allocation/GC growth over the measured loop (the
	// allocation-sweep metrics; divide by Batches for per-batch rates).
	Mem stats.MemDelta
	// ShardStats carries routing/imbalance counters for sharded runs
	// (nil otherwise).
	ShardStats *stats.Shard
	// Tier carries the cold-store gauges and counters for tiered runs
	// (nil otherwise).
	Tier *tier.Stats
}

// ReductionRatio of the whole run.
func (r *Result) ReductionRatio() float64 { return r.Totals.ReductionRatio() }

// Runner executes measurements.
type Runner struct {
	Opts Options
}

// NewRunner returns a Runner with normalized options.
func NewRunner(opts Options) *Runner { return &Runner{Opts: opts.normalized()} }

// RunOne measures one configuration. threads <= 0 uses Opts.Workers;
// batchSize <= 0 uses the spec's (scaled) batch size.
func (rn *Runner) RunOne(spec workload.Spec, mode core.Mode, updateRatio float64, threads, batchSize int) (*Result, error) {
	return rn.runCustom(spec, mode, updateRatio, threads, batchSize, true)
}

// runCustom is RunOne with an explicit load-balancing setting (the
// Fig. 13 ablation disables it).
func (rn *Runner) runCustom(spec workload.Spec, mode core.Mode, updateRatio float64, threads, batchSize int, loadBalance bool) (*Result, error) {
	o := rn.Opts
	if threads <= 0 {
		threads = o.Workers
	}
	if batchSize <= 0 {
		batchSize = spec.BatchSize
	}
	if batchSize < 1 {
		batchSize = 1
	}

	inner, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          o.palmConfig(threads, loadBalance),
		CacheCapacity: o.CacheCapacity,
		Metrics:       o.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	gen := spec.Build()
	var eng interface {
		ProcessBatch(qs []keys.Query, rs *keys.ResultSet)
		Stats() *stats.Batch
		Close()
	} = inner

	r := rand.New(rand.NewSource(o.Seed))

	// Prefill: build the tree from the dataset's unique keys, via the
	// engine itself in batch-sized chunks (fast and latch-free). The
	// tier wrapper attaches after the prefill, so its default budget
	// can be sized against the keys actually stored (skewed datasets
	// collapse many draws onto few distinct keys).
	prefill := workload.Prefill(gen, r, spec.UniqueKeys)
	rs := keys.NewResultSet(batchSize)
	for lo := 0; lo < len(prefill); lo += batchSize {
		hi := lo + batchSize
		if hi > len(prefill) {
			hi = len(prefill)
		}
		chunk := keys.Number(prefill[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	var te *tier.Engine
	if o.TieredDir != "" {
		budget := o.TieredBudget
		if budget <= 0 {
			budget = inner.StoredLen() / 4
			if budget < 1 {
				budget = 1
			}
		}
		st, err := tier.Open(tier.Config{
			Dir:         o.TieredDir,
			MaxResident: budget,
			KeyMax:      keys.Key(gen.KeyRange()),
			Metrics:     o.Metrics,
		}, true)
		if err != nil {
			inner.Close()
			return nil, fmt.Errorf("harness: %w", err)
		}
		// Eight maintenance actions per batch so residency converges
		// toward the budget within a short probe run.
		te = tier.NewEngine(inner, st, 8)
		eng = te
	}
	defer eng.Close()

	res := &Result{
		Dataset:     spec.Name,
		Mode:        mode,
		UpdateRatio: updateRatio,
		Threads:     threads,
		BatchSize:   batchSize,
		Totals:      stats.NewBatch(threads),
	}

	nBatches := (spec.Queries + batchSize - 1) / batchSize
	if o.Batches > 0 && nBatches > o.Batches {
		nBatches = o.Batches
	}
	batch := make([]keys.Query, batchSize)
	var elapsed time.Duration
	m0 := stats.CaptureMem()
	for b := 0; b < nBatches; b++ {
		workload.FillBatch(gen, r, batch, updateRatio)
		rs.Reset(len(batch))
		start := time.Now()
		eng.ProcessBatch(batch, rs)
		d := time.Since(start)
		elapsed += d
		res.Latency.Record(d)
		eng.Stats().AddTo(res.Totals)
		res.Queries += len(batch)
	}
	res.Mem = stats.CaptureMem().Sub(m0)
	res.Batches = nBatches
	res.Elapsed = elapsed
	res.Throughput = stats.Throughput(res.Queries, elapsed)
	if te != nil {
		if err := te.Err(); err != nil {
			return nil, fmt.Errorf("harness: tiered run: %w", err)
		}
		ts := te.Store().Stats()
		res.Tier = &ts
	}
	return res, nil
}

// RunStreamOne measures one configuration driven through the engine's
// streaming interface (ProcessStream), serially or two-stage pipelined.
// All batches are pre-generated so both arms stream identical inputs
// and generation cost stays outside the measured region; throughput is
// end-to-end wall clock over the whole stream, which is what pipelining
// improves (per-batch latency does not shrink — batches overlap).
func (rn *Runner) RunStreamOne(spec workload.Spec, mode core.Mode, updateRatio float64, pipelined bool, batchSize int) (*Result, error) {
	o := rn.Opts
	threads := o.Workers
	if batchSize <= 0 {
		batchSize = spec.BatchSize
	}
	if batchSize < 1 {
		batchSize = 1
	}

	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          o.palmConfig(threads, true),
		CacheCapacity: o.CacheCapacity,
		Pipeline:      pipelined,
		Metrics:       o.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer eng.Close()

	gen := spec.Build()
	r := rand.New(rand.NewSource(o.Seed))
	prefill := workload.Prefill(gen, r, spec.UniqueKeys)
	rs := keys.NewResultSet(batchSize)
	for lo := 0; lo < len(prefill); lo += batchSize {
		hi := lo + batchSize
		if hi > len(prefill) {
			hi = len(prefill)
		}
		chunk := keys.Number(prefill[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	nBatches := (spec.Queries + batchSize - 1) / batchSize
	if o.Batches > 0 && nBatches > o.Batches {
		nBatches = o.Batches
	}
	jobs := make([]*core.Job, nBatches)
	for b := range jobs {
		qs := make([]keys.Query, batchSize)
		workload.FillBatch(gen, r, qs, updateRatio)
		jobs[b] = &core.Job{Qs: qs}
	}

	res := &Result{
		Dataset:     spec.Name,
		Mode:        mode,
		UpdateRatio: updateRatio,
		Threads:     threads,
		BatchSize:   batchSize,
		Totals:      stats.NewBatch(threads),
	}

	in := make(chan *core.Job, 1)
	m0 := stats.CaptureMem()
	start := time.Now()
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
	}()
	eng.ProcessStream(in, func(j *core.Job) {
		eng.Stats().AddTo(res.Totals)
		res.Queries += len(j.Qs)
	})
	res.Elapsed = time.Since(start)
	res.Mem = stats.CaptureMem().Sub(m0)
	res.Batches = nBatches
	res.Throughput = stats.Throughput(res.Queries, res.Elapsed)
	return res, nil
}

// RunShardOne measures one configuration on a range-partitioned
// sharded engine (shards <= 1 degenerates to a single engine inside
// shard.Engine). The worker budget is divided across shards —
// max(1, Workers/shards) BSP threads each — so the sweep compares
// partitionings of a fixed thread budget, not growing hardware. Initial
// boundaries are equal-width over the generator's key range; when
// rebalanceEvery > 0 the engine re-splits from the observed keys every
// that many batches. ShardStats on the returned result carries the
// routing/imbalance counters.
func (rn *Runner) RunShardOne(spec workload.Spec, mode core.Mode, updateRatio float64, shards, batchSize, rebalanceEvery int) (*Result, error) {
	o := rn.Opts
	if shards < 1 {
		shards = 1
	}
	if batchSize <= 0 {
		batchSize = spec.BatchSize
	}
	if batchSize < 1 {
		batchSize = 1
	}
	perShard := o.Workers / shards
	if perShard < 1 {
		perShard = 1
	}

	gen := spec.Build()
	auto := o.Autoshard
	auto.Interval = -1 // stepped manually at batch boundaries below
	eng, err := shard.New(shard.Config{
		Shards: shards,
		Engine: core.EngineConfig{
			Mode:          mode,
			Palm:          o.palmConfig(perShard, true),
			CacheCapacity: o.CacheCapacity,
			Metrics:       o.Metrics,
		},
		KeyMax:    keys.Key(gen.KeyRange()),
		Autoshard: auto,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer eng.Close()

	r := rand.New(rand.NewSource(o.Seed))
	prefill := workload.Prefill(gen, r, spec.UniqueKeys)
	rs := keys.NewResultSet(batchSize)
	for lo := 0; lo < len(prefill); lo += batchSize {
		hi := lo + batchSize
		if hi > len(prefill) {
			hi = len(prefill)
		}
		chunk := keys.Number(prefill[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}
	if rebalanceEvery > 0 {
		// Start from boundaries fitted to the prefilled store.
		if _, err := eng.Rebalance(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Dataset:     spec.Name,
		Mode:        mode,
		UpdateRatio: updateRatio,
		Threads:     perShard * shards,
		BatchSize:   batchSize,
		Totals:      stats.NewBatch(perShard),
		ShardStats:  eng.ShardStats(),
	}

	nBatches := (spec.Queries + batchSize - 1) / batchSize
	if o.Batches > 0 && nBatches > o.Batches {
		nBatches = o.Batches
	}
	batch := make([]keys.Query, batchSize)
	var elapsed time.Duration
	for b := 0; b < nBatches; b++ {
		workload.FillBatch(gen, r, batch, updateRatio)
		rs.Reset(len(batch))
		start := time.Now()
		eng.ProcessBatch(batch, rs)
		if rebalanceEvery > 0 && (b+1)%rebalanceEvery == 0 {
			if _, err := eng.Rebalance(); err != nil {
				return nil, err
			}
		}
		if auto.Enabled {
			eng.AutoshardStep()
		}
		elapsed += time.Since(start)
		res.Latency.Record(time.Since(start))
		eng.Stats().AddTo(res.Totals)
		res.Queries += len(batch)
	}
	res.Batches = nBatches
	res.Elapsed = elapsed
	res.Throughput = stats.Throughput(res.Queries, elapsed)
	return res, nil
}

// UpdateRatios are the x-axis points of Figs. 9-12 and 14.
var UpdateRatios = []float64{0, 0.25, 0.5, 0.75}

// ThreadCounts returns the scalability sweep points of Figs. 10-12:
// powers of two from 1 up to max (the paper sweeps 1..64).
func ThreadCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// row prints an aligned table row.
func row(w io.Writer, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(w, "%.4g", v)
		default:
			fmt.Fprintf(w, "%v", v)
		}
	}
	fmt.Fprintln(w)
}
