package harness

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/stats"
)

// inprocConnCap bounds the in-process serve backend: each connection
// costs two descriptors (client and server end) in one process, so
// driving tens of thousands of connections requires ServerBin.
const inprocConnCap = 4000

// pipelineWindow is how many requests each connection keeps in flight
// before flushing and waiting (per-connection pipelining depth).
const pipelineWindow = 32

// latencySample records one in every latencySample op latencies.
const latencySample = 16

// serveBackend abstracts where the qtransserver under test runs: in
// this process (golden-test scale) or as a spawned binary (bench
// scale, its own fd budget).
type serveBackend interface {
	addr() string
	// stop drains the server gracefully and returns its final request
	// accounting (the accepted == responses invariant is checked by
	// the caller).
	stop() (accepted, responses, shed, drained int64, err error)
}

// servePhaseConfig is the per-row server tuning.
type servePhaseConfig struct {
	maxBatch  int
	highWater int
}

type inprocBackend struct {
	eng      *core.Engine
	b        *batcher.Batcher
	srv      *server.Server
	ln       net.Listener
	serveErr chan error
}

func (rn *Runner) newInprocBackend(pc servePhaseConfig) (*inprocBackend, error) {
	o := rn.Opts
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          o.palmConfig(o.Workers, true),
		CacheCapacity: o.CacheCapacity,
		Metrics:       o.Metrics,
	})
	if err != nil {
		return nil, err
	}
	b := batcher.New(eng, batcher.Config{
		MaxBatch: pc.maxBatch,
		MaxDelay: time.Millisecond,
		Metrics:  o.Metrics,
	})
	srv, err := server.New(server.Config{Batcher: b, HighWater: pc.highWater, Metrics: o.Metrics})
	if err != nil {
		b.Close()
		eng.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Close()
		eng.Close()
		return nil, err
	}
	be := &inprocBackend{eng: eng, b: b, srv: srv, ln: ln, serveErr: make(chan error, 1)}
	go func() { be.serveErr <- srv.Serve(ln) }()
	return be, nil
}

func (be *inprocBackend) addr() string { return be.ln.Addr().String() }

func (be *inprocBackend) stop() (accepted, responses, shed, drained int64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err = be.srv.Shutdown(ctx)
	if serr := <-be.serveErr; err == nil {
		err = serr
	}
	st := be.srv.Stats()
	be.b.Close()
	be.eng.Close()
	return st.Accepted, st.Responses, st.Shed, st.Drained, err
}

type extBackend struct {
	cmd      *exec.Cmd
	bound    string
	lines    chan string
	scanDone chan error
}

func (rn *Runner) newExtBackend(pc servePhaseConfig) (*extBackend, error) {
	o := rn.Opts
	cmd := exec.Command(o.ServerBin,
		"-addr", "127.0.0.1:0",
		"-workers", fmt.Sprint(o.Workers),
		"-maxdelay", "1ms",
		"-maxbatch", fmt.Sprint(pc.maxBatch),
		"-highwater", fmt.Sprint(pc.highWater),
		"-drain-grace", "120s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	be := &extBackend{cmd: cmd, lines: make(chan string, 16), scanDone: make(chan error, 1)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			be.lines <- sc.Text()
		}
		close(be.lines)
		be.scanDone <- sc.Err()
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-be.lines:
			if !ok {
				cmd.Wait()
				return nil, fmt.Errorf("harness: %s exited before advertising its port", o.ServerBin)
			}
			if _, err := fmt.Sscanf(line, "listening on %s", &be.bound); err == nil {
				return be, nil
			}
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("harness: %s never advertised its port", o.ServerBin)
		}
	}
}

func (be *extBackend) addr() string { return be.bound }

func (be *extBackend) stop() (accepted, responses, shed, drained int64, err error) {
	if err := be.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return 0, 0, 0, 0, err
	}
	found := false
	for line := range be.lines {
		if _, err := fmt.Sscanf(line, "drained accepted=%d responses=%d shed=%d drainrefused=%d",
			&accepted, &responses, &shed, &drained); err == nil {
			found = true
		}
	}
	if err := be.cmd.Wait(); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("harness: qtransserver: %w", err)
	}
	if !found {
		return 0, 0, 0, 0, fmt.Errorf("harness: qtransserver printed no drained counters line")
	}
	return accepted, responses, shed, drained, nil
}

func (rn *Runner) newServeBackend(pc servePhaseConfig) (serveBackend, error) {
	if rn.Opts.ServerBin != "" {
		return rn.newExtBackend(pc)
	}
	return rn.newInprocBackend(pc)
}

// phaseTotals aggregates what the client fleet observed in one phase.
type phaseTotals struct {
	ok, shed, drained, errs atomic.Int64
}

// serveClient drives one connection for one phase: pipelined windows
// of mixed point ops, statuses tallied, a sample of per-op round-trip
// latencies recorded. It stops after maxOps responses or on the first
// connection/drain event.
func serveClient(c *client.Client, id, maxOps int, tot *phaseTotals, lats *[]time.Duration) {
	defer c.Close()
	type slot struct {
		fut   *client.Future
		start time.Time
	}
	window := make([]slot, 0, pipelineWindow)
	drainWindow := func() bool {
		if len(window) == 0 {
			return true
		}
		if c.Flush() != nil {
			tot.errs.Add(int64(len(window)))
			window = window[:0]
			return false
		}
		alive := true
		for _, s := range window {
			resp, err := s.fut.Wait()
			if err != nil {
				tot.errs.Add(1)
				alive = false
				continue
			}
			if s.start != (time.Time{}) {
				*lats = append(*lats, time.Since(s.start))
			}
			switch resp.Status {
			case server.StatusOK:
				tot.ok.Add(1)
			case server.StatusShed:
				tot.shed.Add(1)
			case server.StatusDraining:
				tot.drained.Add(1)
				alive = false
			default:
				tot.errs.Add(1)
				alive = false
			}
		}
		window = window[:0]
		return alive
	}
	base := keys.Key(id) * 1_000_003
	for i := 0; i < maxOps; i++ {
		var q keys.Query
		switch i % 4 {
		case 0, 1:
			q = keys.Insert(base+keys.Key(i), keys.Value(i))
		case 2:
			q = keys.Search(base + keys.Key(i-1))
		default:
			q = keys.AddDelta(base, 1)
		}
		f, err := c.Do(q)
		if err != nil {
			tot.errs.Add(1)
			return
		}
		s := slot{fut: f}
		if i%latencySample == 0 {
			s.start = time.Now()
		}
		window = append(window, s)
		if len(window) == pipelineWindow {
			if !drainWindow() {
				return
			}
		}
	}
	drainWindow()
}

// dialRetry dials with exponential backoff: under a many-thousand
// connection ramp the listen backlog (somaxconn) overflows transiently.
func dialRetry(addr string) (*client.Client, error) {
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		var c *client.Client
		if c, err = client.Dial(addr); err == nil {
			return c, nil
		}
		time.Sleep(time.Duration(1<<attempt) * 2 * time.Millisecond)
	}
	return nil, err
}

// runServePhase stands up one server, drives the fleet against it,
// optionally triggers the drain mid-load, and emits one row.
func (rn *Runner) runServePhase(w io.Writer, name string, pc servePhaseConfig, conns, opsPerConn int, drainMid bool) error {
	be, err := rn.newServeBackend(pc)
	if err != nil {
		return err
	}
	var tot phaseTotals
	perConnLats := make([][]time.Duration, conns)
	// Ramp the fleet through a dial semaphore so the SYN backlog and
	// dial retries stay bounded, then let every connection run.
	sem := make(chan struct{}, 256)
	var wg sync.WaitGroup
	var dialErr atomic.Value
	var connected atomic.Int64
	allDialed := make(chan struct{})
	startGate := make(chan struct{})
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{} // bounds concurrent dial attempts only
			c, err := dialRetry(be.addr())
			<-sem
			if err != nil {
				dialErr.Store(err)
				if connected.Add(1) == int64(conns) {
					close(allDialed)
				}
				return
			}
			if connected.Add(1) == int64(conns) {
				close(allDialed)
			}
			// Hold the idle connection until the whole fleet is
			// assembled, so the phase's op traffic runs over genuinely
			// simultaneous connections rather than a rolling window of
			// short-lived ones.
			<-startGate
			serveClient(c, i, opsPerConn, &tot, &perConnLats[i])
		}(i)
	}
	// Release the fleet once fully assembled (the timeout covers a
	// fleet that lost members to dial errors — those surface below).
	select {
	case <-allDialed:
	case <-time.After(60 * time.Second):
	}
	close(startGate)
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()

	var stopErr error
	var accepted, responses, shed, drained int64
	if drainMid {
		// Shut down while the assembled fleet is mid-flight; remaining
		// clients see draining responses or EOFs and wind down.
		select {
		case <-clientsDone:
		case <-time.After(100 * time.Millisecond):
		}
		accepted, responses, shed, drained, stopErr = be.stop()
		<-clientsDone
	} else {
		<-clientsDone
		accepted, responses, shed, drained, stopErr = be.stop()
	}
	elapsed := time.Since(start)
	if stopErr != nil {
		return stopErr
	}
	if err, ok := dialErr.Load().(error); ok && err != nil {
		return fmt.Errorf("harness: serve client: %w", err)
	}
	if accepted != responses {
		return fmt.Errorf("harness: serve %s dropped requests: accepted %d, responses %d", name, accepted, responses)
	}

	var lat stats.LatencyRecorder
	var all []time.Duration
	for _, ls := range perConnLats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, d := range all {
		lat.Record(d)
	}
	p50, p99 := time.Duration(0), time.Duration(0)
	if lat.Count() > 0 {
		p50, p99 = lat.Percentile(0.50), lat.Percentile(0.99)
	}
	// shed/drained come from the server's authoritative counters (a
	// client whose connection died early may miss some responses); ok
	// and errors are what the fleet observed.
	ok := tot.ok.Load()
	row(w, name, conns, accepted, ok, shed, drained, tot.errs.Load(),
		float64(elapsed.Seconds()), float64(ok)/elapsed.Seconds(),
		float64(p50.Microseconds()), float64(p99.Microseconds()))
	return nil
}

// ServeExp drives a fleet of concurrent TCP connections against the
// network front end (cmd/qtransserver) through three phases: steady
// load with admission control idle, deliberate overload that forces
// shedding (MaxBatch 1 floods the dispatch backlog past HighWater 1),
// and a graceful drain triggered mid-load. Every phase checks the
// server-side invariant accepted == responses: no accepted request is
// ever dropped without an answer. With Opts.ServerBin set the server
// runs as a separate process, giving client and server their own
// file-descriptor budgets (how `make bench-serve` reaches >= 10k
// concurrent connections under a 20k fd rlimit).
func ServeExp(rn *Runner, w io.Writer) error {
	o := rn.Opts
	conns := o.Conns
	if conns <= 0 {
		conns = scaleInt(50_000, o.Scale)
		if conns < 4 {
			conns = 4
		}
	}
	if o.ServerBin == "" && conns > inprocConnCap {
		return fmt.Errorf("harness: serve with %d conns needs -serverbin (in-process cap %d: two fds per conn)", conns, inprocConnCap)
	}
	opsPerConn := scaleInt(4_000_000, o.Scale) / conns
	if opsPerConn < 16 {
		opsPerConn = 16
	}
	row(w, "phase", "conns", "accepted", "ok", "shed", "drained", "errors", "elapsed_s", "qps", "p50_us", "p99_us")
	if err := rn.runServePhase(w, "steady", servePhaseConfig{maxBatch: 4096, highWater: 1 << 20}, conns, opsPerConn, false); err != nil {
		return err
	}
	if err := rn.runServePhase(w, "overload", servePhaseConfig{maxBatch: 1, highWater: 1}, conns, opsPerConn, false); err != nil {
		return err
	}
	return rn.runServePhase(w, "drain", servePhaseConfig{maxBatch: 4096, highWater: 1 << 20}, conns, opsPerConn*8, true)
}
