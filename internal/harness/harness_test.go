package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// tinyOpts keeps harness tests fast: minuscule datasets, few batches.
func tinyOpts() Options {
	return Options{Scale: 0.0002, Workers: 2, Order: 16, Seed: 7, CacheCapacity: 256, Batches: 2}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale <= 0 || o.Workers < 1 || o.Seed == 0 || o.CacheCapacity == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o2 := (Options{Scale: 5}).normalized(); o2.Scale > 1 {
		t.Fatal("out-of-range scale not clamped")
	}
}

func TestRunOneProducesThroughput(t *testing.T) {
	rn := NewRunner(tinyOpts())
	spec, err := workload.SpecByName("self-similar", rn.Opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
		res, err := rn.RunOne(spec, mode, 0.25, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 || res.Queries <= 0 || res.Elapsed <= 0 {
			t.Fatalf("mode %v: empty result %+v", mode, res)
		}
		if res.Latency.Count() == 0 {
			t.Fatalf("mode %v: no latency samples", mode)
		}
	}
}

func TestRunOneReductionOnSkewedData(t *testing.T) {
	rn := NewRunner(tinyOpts())
	spec, err := workload.SpecByName("zipfian", rn.Opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rn.RunOne(spec, core.Intra, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReductionRatio() <= 0 {
		t.Fatalf("no reduction on zipfian data: %f", res.ReductionRatio())
	}
	org, err := rn.RunOne(spec, core.Original, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if org.ReductionRatio() != 0 {
		t.Fatalf("original mode must not reduce: %f", org.ReductionRatio())
	}
}

func TestThreadCounts(t *testing.T) {
	got := ThreadCounts(6)
	want := []int{1, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("ThreadCounts(6) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ThreadCounts(6) = %v, want %v", got, want)
		}
	}
	if got := ThreadCounts(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ThreadCounts(0) = %v", got)
	}
	if got := ThreadCounts(8); got[len(got)-1] != 8 {
		t.Fatalf("ThreadCounts(8) = %v", got)
	}
}

func TestExperimentRoster(t *testing.T) {
	exps := Experiments()
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every figure/table from DESIGN.md §3 must be present.
	for _, id := range []string{
		"fig4", "fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"fig11a", "fig11b", "fig11c", "fig11d",
		"fig12a", "fig12b", "fig13", "fig14a", "fig14b", "fig14c",
		"fig15", "table1", "table2",
	} {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ExperimentByID("fig9a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1Output(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := Table1(rn, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gaussian", "taxi", "100000000", "2081427"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 8 { // header + 7 datasets
		t.Errorf("table1 has %d lines, want 8", lines)
	}
}

func TestFig4Output(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := Fig4(rn, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"taxi", "ycsb-latest", "ycsb-zipfian", "top1000_coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputFigureOutput(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := ThroughputFigure(rn, &buf, "zipfian"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(UpdateRatios) {
		t.Fatalf("fig9 rows = %d, want %d:\n%s", len(lines), 1+len(UpdateRatios), buf.String())
	}
	if !strings.Contains(lines[0], "speedup") {
		t.Fatalf("header: %s", lines[0])
	}
}

func TestThroughputFigureUnknownDataset(t *testing.T) {
	rn := NewRunner(tinyOpts())
	if err := ThroughputFigure(rn, &bytes.Buffer{}, "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScalabilityFigureOutput(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := ScalabilityFigure(rn, &buf, "uniform"); err != nil {
		t.Fatal(err)
	}
	want := 1 + len(ThreadCounts(rn.Opts.Workers))*len(UpdateRatios)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != want {
		t.Fatalf("fig10 rows = %d, want %d", len(lines), want)
	}
}

func TestFig13Output(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := Fig13(rn, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "prefix-sum") || !strings.Contains(out, "naive") {
		t.Fatalf("fig13 missing balancing variants:\n%s", out)
	}
	if !strings.Contains(out, "imbalance(max/mean)") {
		t.Fatalf("fig13 missing imbalance summary:\n%s", out)
	}
}

func TestFig14Outputs(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var a, b, c bytes.Buffer
	if err := Fig14a(rn, &a); err != nil {
		t.Fatal(err)
	}
	if err := Fig14b(rn, &b); err != nil {
		t.Fatal(err)
	}
	if err := Fig14c(rn, &c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "inter_qps") {
		t.Fatalf("fig14a:\n%s", a.String())
	}
	if !strings.Contains(b.String(), "intra_reduction") {
		t.Fatalf("fig14b:\n%s", b.String())
	}
	for _, stage := range []string{"sort_ms", "find_ms", "evaluate_ms", "modify_ms"} {
		if !strings.Contains(c.String(), stage) {
			t.Fatalf("fig14c missing %s:\n%s", stage, c.String())
		}
	}
}

func TestFig15Output(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := Fig15(rn, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 batch sizes
		t.Fatalf("fig15 rows:\n%s", buf.String())
	}
}

func TestAblation1Output(t *testing.T) {
	rn := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := Ablation1(rn, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"org_qps", "intra_qps", "inter_qps", "sim_qps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("abl1 missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(UpdateRatios) {
		t.Fatalf("abl1 rows = %d", len(lines))
	}
}

func TestAblation2Output(t *testing.T) {
	rn := NewRunner(Options{Scale: 0.0005, Workers: 2, Order: 16, Seed: 3, CacheCapacity: 64})
	var buf bytes.Buffer
	if err := Ablation2(rn, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 cycles
		t.Fatalf("abl2 rows = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "palm_leaf_fill") {
		t.Fatalf("header: %s", lines[0])
	}
	// Every cycle row must carry five columns with parseable fills.
	for _, line := range lines[1:] {
		cols := strings.Split(line, "\t")
		if len(cols) != 5 {
			t.Fatalf("row %q", line)
		}
	}
}

func TestTable2Output(t *testing.T) {
	rn := NewRunner(Options{Scale: 0.0001, Workers: 2, Order: 16, Seed: 7, CacheCapacity: 64, Batches: 1})
	var buf bytes.Buffer
	if err := Table2(rn, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 datasets
		t.Fatalf("table2 rows = %d:\n%s", len(lines), buf.String())
	}
}

func TestRunShardOne(t *testing.T) {
	rn := NewRunner(tinyOpts())
	spec, err := workload.SpecByName("uniform", rn.Opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		res, err := rn.RunShardOne(spec, core.IntraInter, 0.25, shards, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 || res.Queries <= 0 {
			t.Fatalf("shards=%d: empty result %+v", shards, res)
		}
		if res.ShardStats == nil || res.ShardStats.RoutedTotal() == 0 {
			t.Fatalf("shards=%d: no routing stats", shards)
		}
		if shards > 1 && res.ShardStats.Rebalances == 0 {
			t.Fatalf("shards=%d: rebalanceEvery=1 recorded no rebalances", shards)
		}
	}
}

func TestShardExpOutput(t *testing.T) {
	rn := NewRunner(Options{Scale: 0.0001, Workers: 2, Order: 16, Seed: 5, CacheCapacity: 64, Batches: 1})
	var buf bytes.Buffer
	if err := ShardExp(rn, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"imbalance", "uniform", "zipfian", "every8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shard exp missing %q:\n%s", want, out)
		}
	}
	// header + per dataset: shards 1 (no-rebalance only) + 3×2 arms.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if want := 1 + 2*7; len(lines) != want {
		t.Fatalf("shard exp rows = %d, want %d:\n%s", len(lines), want, out)
	}
}

func TestScaleInt(t *testing.T) {
	if scaleInt(1000, 0.5) != 500 || scaleInt(1, 0.0001) != 1 {
		t.Fatal("scaleInt")
	}
}

// TestEveryExperimentRunsAtMicroScale executes the whole roster end to
// end at a minuscule scale: each experiment must produce a non-empty,
// header-led output without error. This is the smoke test behind
// `qtransbench -experiment all`.
func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-scale full roster takes ~20s")
	}
	rn := NewRunner(Options{Scale: 0.0001, Workers: 2, Order: 16, Seed: 5, CacheCapacity: 64, Batches: 1})
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(rn, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := strings.TrimSpace(buf.String())
			if out == "" {
				t.Fatalf("%s produced no output", e.ID)
			}
			if lines := strings.Split(out, "\n"); len(lines) < 2 {
				t.Fatalf("%s produced only %q", e.ID, out)
			}
		})
	}
}
