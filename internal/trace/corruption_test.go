package trace

import (
	"bytes"
	"testing"

	"repro/internal/keys"
)

// TestReadRejectsCorruption flips every byte of a small trace (and
// tries every truncation) and demands an error — the pre-checksum
// format accepted bit-flipped payloads silently.
func TestReadRejectsCorruption(t *testing.T) {
	qs := []keys.Query{
		keys.Insert(10, 1),
		keys.Search(10),
		keys.Delete(3),
		keys.Insert(999, 42),
	}
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}

	for off := 0; off < len(raw); off++ {
		for _, flip := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), raw...)
			mut[off] ^= flip
			if _, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("trace with byte %d xor %#x accepted", off, flip)
			}
		}
	}

	for n := 0; n < len(raw); n++ {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("trace truncated to %d/%d bytes accepted", n, len(raw))
		}
	}
}
