package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestRoundTrip(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Insert(1, 100),
		keys.Search(2),
		keys.Delete(3),
	})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("len %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], qs[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		qs := make([]keys.Query, int(size)%2000)
		for i := range qs {
			qs[i] = keys.Query{
				Op:    keys.Op(r.Intn(3)),
				Key:   keys.Key(r.Uint64()),
				Value: keys.Value(r.Uint64()),
			}
		}
		keys.Number(qs)
		var buf bytes.Buffer
		if err := Write(&buf, qs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(qs) {
			return false
		}
		for i := range qs {
			if got[i] != qs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Insert(1, 1), keys.Insert(2, 2)})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestReadRejectsInvalidOp(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Insert(1, 1)})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[12] = 99 // op byte of the first record (4 magic + 8 count)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestReadRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := Read(&buf); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestGeoGridCell(t *testing.T) {
	g := NYCGrid()
	// Center of the box.
	k, ok := g.Cell(-73.95, 40.72)
	if !ok {
		t.Fatal("center point rejected")
	}
	if uint64(k) >= g.Side*g.Side {
		t.Fatalf("cell %d out of range", k)
	}
	// Out of the box.
	if _, ok := g.Cell(0, 0); ok {
		t.Fatal("point outside box accepted")
	}
	// Max edge clamps.
	if _, ok := g.Cell(g.MaxLon, g.MaxLat); ok {
		t.Fatal("exclusive max edge accepted")
	}
	k2, ok := g.Cell(g.MinLon, g.MinLat)
	if !ok || k2 != 0 {
		t.Fatalf("min corner = %d, %v; want cell 0", k2, ok)
	}
}

func TestGeoGridAdjacency(t *testing.T) {
	g := GeoGrid{Side: 4, MinLon: 0, MaxLon: 4, MinLat: 0, MaxLat: 4}
	k1, _ := g.Cell(0.5, 0.5)
	k2, _ := g.Cell(1.5, 0.5)
	k3, _ := g.Cell(0.5, 1.5)
	if k2 != k1+1 || k3 != k1+4 {
		t.Fatalf("cells %d %d %d not row-major adjacent", k1, k2, k3)
	}
}

func TestImportCSV(t *testing.T) {
	csv := strings.Join([]string{
		"pickup_longitude,pickup_latitude", // header (skipped: parse fails)
		"-73.95,40.72",                     // valid
		"-73.96,40.73",                     // valid
		"0.0,0.0",                          // outside box
		"not,numbers",                      // invalid
		"-73.97",                           // short row
		"-73.99, 40.70",                    // valid with space
	}, "\n")
	qs, skipped, err := ImportCSV(strings.NewReader(csv), NYCGrid(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("imported %d queries, want 3", len(qs))
	}
	if skipped != 4 {
		t.Fatalf("skipped %d, want 4", skipped)
	}
	for i, q := range qs {
		if q.Op != keys.OpSearch || q.Idx != int32(i) {
			t.Fatalf("query %d = %v", i, q)
		}
	}
}

func TestImportCSVEmpty(t *testing.T) {
	qs, skipped, err := ImportCSV(strings.NewReader(""), NYCGrid(), 0, 1)
	if err != nil || len(qs) != 0 || skipped != 0 {
		t.Fatalf("empty import: %v %d %v", qs, skipped, err)
	}
}
