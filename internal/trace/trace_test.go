package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestRoundTrip(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Insert(1, 100),
		keys.Search(2),
		keys.Delete(3),
		keys.Scan(10, 20, 5),
		keys.AddDelta(4, 7),
		keys.SetIfAbsent(5, 8),
	})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("len %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], qs[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		qs := make([]keys.Query, int(size)%2000)
		for i := range qs {
			op := keys.ValidOps[r.Intn(len(keys.ValidOps))]
			qs[i] = keys.Query{
				Op:    op,
				Key:   keys.Key(r.Uint64()),
				Value: keys.Value(r.Uint64()),
			}
			switch op {
			case keys.OpScan:
				qs[i].Key2 = keys.Key(r.Uint64())
			case keys.OpRMW:
				qs[i].RMW = keys.RMWKind(r.Intn(2))
			}
		}
		keys.Number(qs)
		var buf bytes.Buffer
		if err := Write(&buf, qs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(qs) {
			return false
		}
		for i := range qs {
			if got[i] != qs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// writeV2 hand-builds a legacy QTR2 byte stream (17-byte point-only
// records), exactly as the pre-scan Write emitted it.
func writeV2(qs []keys.Query) []byte {
	var buf bytes.Buffer
	buf.Write(magicV2[:])
	body := make([]byte, 8, 8+len(qs)*recSizeV2+4)
	binary.LittleEndian.PutUint64(body[:8], uint64(len(qs)))
	for _, q := range qs {
		var rec [recSizeV2]byte
		rec[0] = byte(q.Op)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(q.Key))
		binary.LittleEndian.PutUint64(rec[9:17], uint64(q.Value))
		body = append(body, rec[:]...)
	}
	buf.Write(body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(body, castagnoli))
	buf.Write(tail[:])
	return buf.Bytes()
}

// TestReadLegacyQTR2 is the backward-compatibility regression: byte
// streams written in the pre-scan QTR2 format must keep loading, with
// the extended fields zero.
func TestReadLegacyQTR2(t *testing.T) {
	want := keys.Number([]keys.Query{
		keys.Insert(1, 100),
		keys.Search(2),
		keys.Delete(3),
		keys.Insert(1<<40, 1<<50),
	})
	got, err := Read(bytes.NewReader(writeV2(want)))
	if err != nil {
		t.Fatalf("legacy QTR2 rejected: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
		if got[i].Key2 != 0 || got[i].RMW != 0 {
			t.Fatalf("record %d: extended fields nonzero: %+v", i, got[i])
		}
	}
}

func TestReadLegacyQTR2Empty(t *testing.T) {
	got, err := Read(bytes.NewReader(writeV2(nil)))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty legacy trace: %v, %v", got, err)
	}
}

// TestReadLegacyQTR2RejectsInvalidOp: op validation is shared between
// both formats (table-driven off keys.ValidOps), so a corrupt op byte
// in a legacy stream fails the same way.
func TestReadLegacyQTR2RejectsInvalidOp(t *testing.T) {
	raw := writeV2(keys.Number([]keys.Query{keys.Insert(1, 1)}))
	raw[12] = 250 // op byte of the first record (4 magic + 8 count)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid legacy op accepted")
	}
}

// TestReadRejectsCorruptOpByteOverValidChecksum re-seals the checksum
// after corrupting the op byte, proving rejection comes from the op
// table itself, not the CRC.
func TestReadRejectsCorruptOpByteOverValidChecksum(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Insert(1, 1)})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[12] = byte(len(keys.ValidOps)) // first op past the valid set
	body := raw[4 : len(raw)-4]
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.Checksum(body, castagnoli))
	_, err := Read(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("corrupt op byte accepted")
	}
	if !strings.Contains(err.Error(), "invalid op") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Insert(1, 1), keys.Insert(2, 2)})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestReadRejectsInvalidOp(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Insert(1, 1)})
	var buf bytes.Buffer
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[12] = 99 // op byte of the first record (4 magic + 8 count)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestReadRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := Read(&buf); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestGeoGridCell(t *testing.T) {
	g := NYCGrid()
	// Center of the box.
	k, ok := g.Cell(-73.95, 40.72)
	if !ok {
		t.Fatal("center point rejected")
	}
	if uint64(k) >= g.Side*g.Side {
		t.Fatalf("cell %d out of range", k)
	}
	// Out of the box.
	if _, ok := g.Cell(0, 0); ok {
		t.Fatal("point outside box accepted")
	}
	// Max edge clamps.
	if _, ok := g.Cell(g.MaxLon, g.MaxLat); ok {
		t.Fatal("exclusive max edge accepted")
	}
	k2, ok := g.Cell(g.MinLon, g.MinLat)
	if !ok || k2 != 0 {
		t.Fatalf("min corner = %d, %v; want cell 0", k2, ok)
	}
}

func TestGeoGridAdjacency(t *testing.T) {
	g := GeoGrid{Side: 4, MinLon: 0, MaxLon: 4, MinLat: 0, MaxLat: 4}
	k1, _ := g.Cell(0.5, 0.5)
	k2, _ := g.Cell(1.5, 0.5)
	k3, _ := g.Cell(0.5, 1.5)
	if k2 != k1+1 || k3 != k1+4 {
		t.Fatalf("cells %d %d %d not row-major adjacent", k1, k2, k3)
	}
}

func TestImportCSV(t *testing.T) {
	csv := strings.Join([]string{
		"pickup_longitude,pickup_latitude", // header (skipped: parse fails)
		"-73.95,40.72",                     // valid
		"-73.96,40.73",                     // valid
		"0.0,0.0",                          // outside box
		"not,numbers",                      // invalid
		"-73.97",                           // short row
		"-73.99, 40.70",                    // valid with space
	}, "\n")
	qs, skipped, err := ImportCSV(strings.NewReader(csv), NYCGrid(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("imported %d queries, want 3", len(qs))
	}
	if skipped != 4 {
		t.Fatalf("skipped %d, want 4", skipped)
	}
	for i, q := range qs {
		if q.Op != keys.OpSearch || q.Idx != int32(i) {
			t.Fatalf("query %d = %v", i, q)
		}
	}
}

func TestImportCSVEmpty(t *testing.T) {
	qs, skipped, err := ImportCSV(strings.NewReader(""), NYCGrid(), 0, 1)
	if err != nil || len(qs) != 0 || skipped != 0 {
		t.Fatalf("empty import: %v %d %v", qs, skipped, err)
	}
}
