// Package trace persists query streams: a compact binary format for
// saving generated workloads (so figure runs are reproducible without
// regenerating), and a CSV importer for taxi-style point data
// (longitude/latitude records mapped onto the workload geo-grid).
//
// Binary format (little-endian):
//
//	magic   [4]byte  "QTR3"
//	count   uint64
//	records count × { op uint8, key uint64, value uint64, key2 uint64, aux uint8 }
//	crc     uint32   CRC32C over count..records (everything after magic)
//
// key2 is the scan upper bound (exclusive) and aux the RMW kind; both
// are zero for point queries. Read also accepts the legacy "QTR2"
// format (17-byte point-only records), so traces written before range
// scans and RMW existed keep loading unchanged. Write always emits
// QTR3.
//
// Query indices are not stored; Load renumbers 0..n-1. The trailing
// checksum makes truncated or bit-flipped traces an error instead of a
// silently wrong workload. Op bytes are validated against
// keys.ValidOps (the single source of truth for the op set), so a
// corrupt op byte is an error, not a misparsed query.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"repro/internal/keys"
)

var (
	magic   = [4]byte{'Q', 'T', 'R', '3'}
	magicV2 = [4]byte{'Q', 'T', 'R', '2'}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	recSize   = 26 // QTR3: op + key + value + key2 + aux
	recSizeV2 = 17 // QTR2: op + key + value
)

// Write serializes a query sequence (always in the current QTR3
// format).
func Write(w io.Writer, qs []keys.Query) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	sum := crc32.New(castagnoli)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(qs)))
	sum.Write(hdr[:])
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	var rec [recSize]byte
	for i := range qs {
		rec[0] = byte(qs[i].Op)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(qs[i].Key))
		binary.LittleEndian.PutUint64(rec[9:17], uint64(qs[i].Value))
		binary.LittleEndian.PutUint64(rec[17:25], uint64(qs[i].Key2))
		rec[25] = byte(qs[i].RMW)
		sum.Write(rec[:])
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("trace: write checksum: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a query sequence written by Write — current QTR3
// or legacy QTR2, selected by magic — renumbering indices 0..n-1.
func Read(r io.Reader) ([]keys.Query, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	size := recSize
	switch m {
	case magic:
	case magicV2:
		size = recSizeV2
	default:
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	sum := crc32.New(castagnoli)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	sum.Write(hdr[:])
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxCount = 1 << 31
	if count > maxCount {
		return nil, fmt.Errorf("trace: count %d exceeds limit", count)
	}
	// Pre-size conservatively: a hostile or corrupt header must not be
	// able to force a huge allocation before any record bytes exist
	// (the decode fails at the first missing record instead).
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	qs := make([]keys.Query, 0, capHint)
	var rec [recSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:size]); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		sum.Write(rec[:size])
		op := keys.Op(rec[0])
		if !op.Valid() {
			return nil, fmt.Errorf("trace: record %d has invalid op %d", i, rec[0])
		}
		q := keys.Query{
			Op:    op,
			Key:   keys.Key(binary.LittleEndian.Uint64(rec[1:9])),
			Value: keys.Value(binary.LittleEndian.Uint64(rec[9:17])),
			Idx:   int32(i),
		}
		if size == recSize {
			q.Key2 = keys.Key(binary.LittleEndian.Uint64(rec[17:25]))
			q.RMW = keys.RMWKind(rec[25])
		}
		qs = append(qs, q)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("trace: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum.Sum32() {
		return nil, fmt.Errorf("trace: checksum mismatch (stored %08x, computed %08x)", got, sum.Sum32())
	}
	return qs, nil
}

// GeoGrid maps (longitude, latitude) points onto a side×side cell grid
// over a bounding box, producing the cell-id keys the taxi workload
// uses.
type GeoGrid struct {
	Side           uint64
	MinLon, MaxLon float64
	MinLat, MaxLat float64
}

// NYCGrid is the 2048x2048 grid over the NYC bounding box used by the
// taxi workload substitution.
func NYCGrid() GeoGrid {
	return GeoGrid{
		Side:   2048,
		MinLon: -74.30, MaxLon: -73.60,
		MinLat: 40.45, MaxLat: 41.00,
	}
}

// Cell maps a point to its cell key; ok is false outside the box.
func (g GeoGrid) Cell(lon, lat float64) (keys.Key, bool) {
	if lon < g.MinLon || lon >= g.MaxLon || lat < g.MinLat || lat >= g.MaxLat {
		return 0, false
	}
	x := uint64(float64(g.Side) * (lon - g.MinLon) / (g.MaxLon - g.MinLon))
	y := uint64(float64(g.Side) * (lat - g.MinLat) / (g.MaxLat - g.MinLat))
	if x >= g.Side {
		x = g.Side - 1
	}
	if y >= g.Side {
		y = g.Side - 1
	}
	return keys.Key(y*g.Side + x), true
}

// ImportCSV reads taxi-style CSV rows and converts pickup points to
// search queries over the grid. lonCol/latCol are zero-based column
// indices; rows with a missing/invalid point or a point outside the
// box are skipped. The first row is treated as a header when its
// coordinate columns do not parse. Returns the queries (numbered) and
// the number of skipped rows.
func ImportCSV(r io.Reader, grid GeoGrid, lonCol, latCol int) ([]keys.Query, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var qs []keys.Query
	skipped := 0
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if lonCol >= len(fields) || latCol >= len(fields) {
			skipped++
			continue
		}
		lon, err1 := strconv.ParseFloat(strings.TrimSpace(fields[lonCol]), 64)
		lat, err2 := strconv.ParseFloat(strings.TrimSpace(fields[latCol]), 64)
		if err1 != nil || err2 != nil {
			skipped++
			continue
		}
		cell, ok := grid.Cell(lon, lat)
		if !ok {
			skipped++
			continue
		}
		qs = append(qs, keys.Search(cell))
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: scan line %d: %w", line, err)
	}
	return keys.Number(qs), skipped, nil
}
