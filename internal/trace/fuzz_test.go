package trace

import (
	"bytes"
	"testing"

	"repro/internal/keys"
)

// FuzzRead feeds arbitrary bytes to the trace decoder: it must either
// decode cleanly or return an error — never panic or over-allocate.
func FuzzRead(f *testing.F) {
	// Valid empty trace.
	var empty bytes.Buffer
	if err := Write(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	// Valid one-record trace.
	var buf bytes.Buffer
	if err := Write(&buf, []keys.Query{keys.Insert(7, 9)}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Pre-checksum format (must now be rejected, not mis-read).
	f.Add([]byte("QTR1\x00\x00\x00\x00\x00\x00\x00\x00"))
	// Garbage.
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		qs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded traces must round-trip identically.
		var out bytes.Buffer
		if err := Write(&out, qs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		qs2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(qs2) != len(qs) {
			t.Fatalf("round trip changed length: %d vs %d", len(qs2), len(qs))
		}
		for i := range qs {
			if qs[i] != qs2[i] {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
