// Package stats collects the measurements the paper's evaluation
// reports: per-stage wall-clock breakdowns (Fig. 14c), query-reduction
// ratios (Fig. 14b), per-thread leaf-operation counts (Fig. 13), cache
// hit counters, and latency/throughput summaries (Table II, Figs. 9-12).
package stats

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of batch processing for timing breakdowns.
type Stage int

// Stages of the original PALM pipeline (Fig. 3) and the QTrans-extended
// pipeline (Fig. 8).
const (
	StageSort     Stage = iota // pre-sorting the batch by key
	StageQSAT1                 // QTrans Phase-I: per-mini-batch QSAT
	StageQSAT2                 // QTrans Phase-II: shuffle + per-key QSAT
	StageCache                 // inter-batch top-K cache pass
	StageFind                  // Stage 1: leaf search
	StageEvaluate              // Stage 2: query evaluation at leaves
	StageModify                // Stage 3: bottom-up restructuring
	numStages
)

// String names the stage as used in figure output.
func (s Stage) String() string {
	switch s {
	case StageSort:
		return "sort"
	case StageQSAT1:
		return "qsat-phase1"
	case StageQSAT2:
		return "qsat-phase2"
	case StageCache:
		return "cache"
	case StageFind:
		return "find"
	case StageEvaluate:
		return "evaluate"
	case StageModify:
		return "modify"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Stages lists all stages in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Batch accumulates the measurements of one processed batch.
type Batch struct {
	// BatchSize is the number of queries submitted.
	BatchSize int
	// RemainingQueries is how many queries were actually evaluated
	// against the tree after QTrans (equals BatchSize when QTrans is
	// off). The paper's "query reduction ratio" is 1 - Remaining/Size.
	RemainingQueries int
	// InferredReturns counts search answers produced by inference
	// rather than tree evaluation.
	InferredReturns int
	// CacheHits / CacheMisses / CacheFlushes / CacheEvictions count
	// top-K cache operations (inter-batch optimization). Evictions can
	// exceed flushes: evicting a clean entry owes no write-back.
	CacheHits, CacheMisses, CacheFlushes, CacheEvictions int
	// FenceHits counts Stage-1 descents skipped entirely because the
	// previous descent's leaf fences covered the key (path-reuse kernel,
	// DESIGN.md §8).
	FenceHits int
	// Splits counts node splits (leaf, internal, and root) performed by
	// the batch's restructuring — the Stage-3 cost the gapped layout
	// (DESIGN.md §10) exists to shrink.
	Splits int
	// GapClaims counts inserts absorbed by the gap at their insertion
	// point in O(1) (gapped layout only).
	GapClaims int
	// ShiftedSlots counts key/value slots physically moved or rewritten
	// to keep nodes sorted: memmove lengths on the dense layout,
	// shift-to-nearest-gap and delete-run rewrites on the gapped one.
	ShiftedSlots int
	// ScanQueries counts range scans submitted in the batch.
	ScanQueries int
	// ScanRows counts rows returned across all of the batch's scans
	// (covered scans count their derived rows).
	ScanRows int
	// ScanKills counts scans answered by clipping a covering scan's
	// rows instead of walking the tree (the covering-scan kill).
	ScanKills int
	// LeafOps[t] counts leaf-level operations performed by worker t
	// (Fig. 13's load-balance metric).
	LeafOps []int64
	// Elapsed[s] is wall-clock time spent in stage s.
	Elapsed [numStages]time.Duration
}

// NewBatch returns a Batch sized for the given worker count.
func NewBatch(workers int) *Batch {
	return &Batch{LeafOps: make([]int64, workers)}
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	lo := b.LeafOps
	for i := range lo {
		lo[i] = 0
	}
	*b = Batch{LeafOps: lo}
}

// Timer starts timing a stage; call Stop on the returned Stopwatch.
func (b *Batch) Timer(s Stage) Stopwatch {
	return Stopwatch{batch: b, stage: s, start: time.Now()}
}

// Stopwatch measures one stage interval.
type Stopwatch struct {
	batch *Batch
	stage Stage
	start time.Time
}

// Stop records the elapsed time onto the batch.
func (sw Stopwatch) Stop() {
	sw.batch.Elapsed[sw.stage] += time.Since(sw.start)
}

// ReductionRatio returns the fraction of queries eliminated by QTrans,
// in [0, 1].
func (b *Batch) ReductionRatio() float64 {
	if b.BatchSize == 0 {
		return 0
	}
	return 1 - float64(b.RemainingQueries)/float64(b.BatchSize)
}

// TotalElapsed sums all stage times.
func (b *Batch) TotalElapsed() time.Duration {
	var t time.Duration
	for _, d := range b.Elapsed {
		t += d
	}
	return t
}

// AddTo accumulates b's counters and timings into dst (used to total
// per-batch stats over a whole run).
func (b *Batch) AddTo(dst *Batch) {
	dst.BatchSize += b.BatchSize
	dst.RemainingQueries += b.RemainingQueries
	dst.InferredReturns += b.InferredReturns
	dst.CacheHits += b.CacheHits
	dst.CacheMisses += b.CacheMisses
	dst.CacheFlushes += b.CacheFlushes
	dst.CacheEvictions += b.CacheEvictions
	dst.FenceHits += b.FenceHits
	dst.Splits += b.Splits
	dst.GapClaims += b.GapClaims
	dst.ShiftedSlots += b.ShiftedSlots
	dst.ScanQueries += b.ScanQueries
	dst.ScanRows += b.ScanRows
	dst.ScanKills += b.ScanKills
	for i := range b.Elapsed {
		dst.Elapsed[i] += b.Elapsed[i]
	}
	for i, v := range b.LeafOps {
		if i < len(dst.LeafOps) {
			dst.LeafOps[i] += v
		}
	}
}

// LeafOpImbalance returns max/mean of per-thread leaf operations — 1.0
// is perfect balance. Threads with zero work are included in the mean.
func (b *Batch) LeafOpImbalance() float64 {
	if len(b.LeafOps) == 0 {
		return 1
	}
	var sum, maxv int64
	for _, v := range b.LeafOps {
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(b.LeafOps))
	return float64(maxv) / mean
}

// String renders a compact human-readable summary.
func (b *Batch) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch=%d remaining=%d (reduction %.1f%%)",
		b.BatchSize, b.RemainingQueries, 100*b.ReductionRatio())
	for _, s := range Stages() {
		if b.Elapsed[s] > 0 {
			fmt.Fprintf(&sb, " %s=%s", s, b.Elapsed[s].Round(time.Microsecond))
		}
	}
	return sb.String()
}

// LatencyRecorder collects per-batch latencies and reports the summary
// statistics of Table II.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record adds one batch latency.
func (l *LatencyRecorder) Record(d time.Duration) { l.samples = append(l.samples, d) }

// Count returns the number of recorded samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the average latency, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile latency (0 <= p <= 100).
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest recorded latency.
func (l *LatencyRecorder) Max() time.Duration {
	var m time.Duration
	for _, d := range l.samples {
		if d > m {
			m = d
		}
	}
	return m
}

// Throughput converts a query count and elapsed time into queries/sec.
func Throughput(queries int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(queries) / elapsed.Seconds()
}

// MemSnapshot captures the runtime allocation and GC counters relevant
// to steady-state batch processing (the allocation-sweep metrics: a
// batch pipeline that allocates per batch shows up directly as
// Mallocs/TotalAlloc growth and, eventually, GC pauses).
type MemSnapshot struct {
	Mallocs      uint64
	TotalAlloc   uint64
	PauseTotalNs uint64
	NumGC        uint32
}

// CaptureMem reads the current memory counters. It stops the world
// briefly; call it around a measured region, not inside one.
func CaptureMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		Mallocs:      ms.Mallocs,
		TotalAlloc:   ms.TotalAlloc,
		PauseTotalNs: ms.PauseTotalNs,
		NumGC:        ms.NumGC,
	}
}

// MemDelta is the growth between two snapshots.
type MemDelta struct {
	// Allocs is the number of heap objects allocated.
	Allocs uint64
	// Bytes is the cumulative bytes allocated.
	Bytes uint64
	// PauseNs is the total GC stop-the-world pause time.
	PauseNs uint64
	// GCs is the number of completed GC cycles.
	GCs uint32
}

// Sub returns the delta accumulated since prev.
func (s MemSnapshot) Sub(prev MemSnapshot) MemDelta {
	return MemDelta{
		Allocs:  s.Mallocs - prev.Mallocs,
		Bytes:   s.TotalAlloc - prev.TotalAlloc,
		PauseNs: s.PauseTotalNs - prev.PauseTotalNs,
		GCs:     s.NumGC - prev.NumGC,
	}
}

// PerBatch scales the delta to per-batch figures (allocs/batch,
// bytes/batch). n <= 0 returns zeros.
func (d MemDelta) PerBatch(n int) (allocs, bytes float64) {
	if n <= 0 {
		return 0, 0
	}
	return float64(d.Allocs) / float64(n), float64(d.Bytes) / float64(n)
}

// Shard accumulates the routing and rebalancing counters of a
// range-partitioned sharded engine (internal/shard): how many queries
// each shard received, how evenly the splitter spread the load, and how
// much key migration the boundary rebalances caused. Counter updates
// use atomics so the stream splitter goroutine can record routing while
// other goroutines read snapshots; mu guards the Routed slice header
// itself, which the autoshard controller replaces when it adds or
// removes a shard.
type Shard struct {
	mu sync.RWMutex
	// Routed[s] counts queries routed to shard s since creation (since
	// the slot was inserted, for shards the autoshard controller added).
	Routed []int64
	// Batches counts batches split across the shards.
	Batches int64
	// Migrated counts keys that changed shard across all rebalances and
	// autoshard boundary moves.
	Migrated int64
	// Rebalances counts boundary recomputations (manual Rebalance calls).
	Rebalances int64
	// Moves counts autoshard incremental boundary moves.
	Moves int64
	// AutoSplits and AutoMerges count autoshard structural changes.
	AutoSplits, AutoMerges int64
}

// NewShard returns a Shard stats block for n shards.
func NewShard(n int) *Shard {
	return &Shard{Routed: make([]int64, n)}
}

// RecordRouted adds n routed queries to shard s.
func (s *Shard) RecordRouted(shard, n int) {
	s.mu.RLock()
	atomic.AddInt64(&s.Routed[shard], int64(n))
	s.mu.RUnlock()
}

// RecordBatch counts one split batch.
func (s *Shard) RecordBatch() { atomic.AddInt64(&s.Batches, 1) }

// RecordRebalance counts one completed rebalance. The pair moves it
// performed were already folded into Moves/Migrated by RecordMove —
// the rebalance path runs on the same bounded boundary moves as the
// autoshard controller.
func (s *Shard) RecordRebalance() {
	atomic.AddInt64(&s.Rebalances, 1)
}

// RecordMove counts one autoshard boundary move that migrated n keys.
func (s *Shard) RecordMove(migrated int) {
	atomic.AddInt64(&s.Moves, 1)
	atomic.AddInt64(&s.Migrated, int64(migrated))
}

// InsertSlot grows the per-shard counters with a zeroed slot at
// position at (an autoshard hot-split) and counts the split.
func (s *Shard) InsertSlot(at int) {
	s.mu.Lock()
	routed := make([]int64, 0, len(s.Routed)+1)
	routed = append(routed, s.Routed[:at]...)
	routed = append(routed, 0)
	routed = append(routed, s.Routed[at:]...)
	s.Routed = routed
	s.mu.Unlock()
	atomic.AddInt64(&s.AutoSplits, 1)
}

// RemoveSlot drops shard at's counter slot (an autoshard cold-merge)
// and counts the merge. The removed slot's history folds into the
// neighbor that absorbed its range, keeping RoutedTotal monotone.
func (s *Shard) RemoveSlot(at int) {
	s.mu.Lock()
	into := at - 1
	if into < 0 {
		into = at + 1
	}
	atomic.AddInt64(&s.Routed[into], atomic.LoadInt64(&s.Routed[at]))
	routed := make([]int64, 0, len(s.Routed)-1)
	routed = append(routed, s.Routed[:at]...)
	routed = append(routed, s.Routed[at+1:]...)
	s.Routed = routed
	s.mu.Unlock()
	atomic.AddInt64(&s.AutoMerges, 1)
}

// RoutedTotal returns the total number of routed queries.
func (s *Shard) RoutedTotal() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum int64
	for i := range s.Routed {
		sum += atomic.LoadInt64(&s.Routed[i])
	}
	return sum
}

// Imbalance returns max/mean of the per-shard routed-query counts — 1.0
// is a perfectly even spread, n means one shard took all the load.
// Returns 1 when nothing has been routed.
func (s *Shard) Imbalance() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.Routed) == 0 {
		return 1
	}
	var sum, maxv int64
	for i := range s.Routed {
		v := atomic.LoadInt64(&s.Routed[i])
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(maxv) / (float64(sum) / float64(len(s.Routed)))
}

// String renders a compact summary, e.g.
// "shards=4 routed=[10 20 30 40] imbalance=1.60 rebalances=1 migrated=12".
func (s *Shard) String() string {
	s.mu.RLock()
	routed := make([]int64, len(s.Routed))
	for i := range routed {
		routed[i] = atomic.LoadInt64(&s.Routed[i])
	}
	s.mu.RUnlock()
	return fmt.Sprintf("shards=%d routed=%v imbalance=%.2f rebalances=%d migrated=%d moves=%d splits=%d merges=%d",
		len(s.Routed), routed, s.Imbalance(),
		atomic.LoadInt64(&s.Rebalances), atomic.LoadInt64(&s.Migrated),
		atomic.LoadInt64(&s.Moves), atomic.LoadInt64(&s.AutoSplits), atomic.LoadInt64(&s.AutoMerges))
}
