package stats

import (
	"strings"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageSort: "sort", StageQSAT1: "qsat-phase1", StageQSAT2: "qsat-phase2",
		StageCache: "cache", StageFind: "find", StageEvaluate: "evaluate",
		StageModify: "modify",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Stage(99).String() != "stage(99)" {
		t.Error("unknown stage formatting")
	}
	if len(Stages()) != int(numStages) {
		t.Error("Stages() incomplete")
	}
}

func TestBatchTimerAccumulates(t *testing.T) {
	b := NewBatch(2)
	sw := b.Timer(StageFind)
	time.Sleep(time.Millisecond)
	sw.Stop()
	if b.Elapsed[StageFind] <= 0 {
		t.Fatal("timer recorded nothing")
	}
	if b.TotalElapsed() != b.Elapsed[StageFind] {
		t.Fatal("TotalElapsed mismatch")
	}
}

func TestReductionRatio(t *testing.T) {
	b := NewBatch(1)
	if b.ReductionRatio() != 0 {
		t.Fatal("empty batch ratio")
	}
	b.BatchSize = 100
	b.RemainingQueries = 25
	if got := b.ReductionRatio(); got != 0.75 {
		t.Fatalf("ratio = %f, want 0.75", got)
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch(3)
	b.BatchSize = 5
	b.LeafOps[1] = 7
	b.Elapsed[StageSort] = time.Second
	b.Reset()
	if b.BatchSize != 0 || b.LeafOps[1] != 0 || b.Elapsed[StageSort] != 0 {
		t.Fatalf("Reset left state: %+v", b)
	}
	if len(b.LeafOps) != 3 {
		t.Fatal("Reset lost LeafOps capacity")
	}
}

func TestAddTo(t *testing.T) {
	a := NewBatch(2)
	a.BatchSize, a.RemainingQueries, a.InferredReturns = 10, 4, 3
	a.CacheHits, a.CacheMisses, a.CacheFlushes = 1, 2, 3
	a.LeafOps[0], a.LeafOps[1] = 5, 6
	a.Elapsed[StageFind] = time.Second
	dst := NewBatch(2)
	a.AddTo(dst)
	a.AddTo(dst)
	if dst.BatchSize != 20 || dst.LeafOps[1] != 12 || dst.Elapsed[StageFind] != 2*time.Second {
		t.Fatalf("AddTo result: %+v", dst)
	}
	if dst.CacheHits != 2 || dst.CacheFlushes != 6 {
		t.Fatalf("cache counters: %+v", dst)
	}
}

func TestLeafOpImbalance(t *testing.T) {
	b := NewBatch(4)
	if b.LeafOpImbalance() != 1 {
		t.Fatal("zero-work imbalance must be 1")
	}
	b.LeafOps = []int64{10, 10, 10, 10}
	if got := b.LeafOpImbalance(); got != 1 {
		t.Fatalf("perfect balance = %f", got)
	}
	b.LeafOps = []int64{40, 0, 0, 0}
	if got := b.LeafOpImbalance(); got != 4 {
		t.Fatalf("imbalance = %f, want 4", got)
	}
	var empty Batch
	if empty.LeafOpImbalance() != 1 {
		t.Fatal("empty LeafOps")
	}
}

func TestBatchString(t *testing.T) {
	b := NewBatch(1)
	b.BatchSize, b.RemainingQueries = 100, 30
	b.Elapsed[StageFind] = 5 * time.Millisecond
	s := b.String()
	for _, want := range []string{"batch=100", "remaining=30", "70.0%", "find=5ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Max() != 0 {
		t.Fatal("empty recorder must return zeros")
	}
	for _, d := range []time.Duration{4, 1, 3, 2, 5} {
		l.Record(d * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if l.Max() != 5*time.Millisecond {
		t.Fatalf("Max = %v", l.Max())
	}
	if p := l.Percentile(0); p != 1*time.Millisecond {
		t.Fatalf("P0 = %v", p)
	}
	if p := l.Percentile(100); p != 5*time.Millisecond {
		t.Fatalf("P100 = %v", p)
	}
	if p := l.Percentile(50); p != 3*time.Millisecond {
		t.Fatalf("P50 = %v", p)
	}
}

func TestThroughput(t *testing.T) {
	if Throughput(100, 0) != 0 {
		t.Fatal("zero elapsed")
	}
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(500, 500*time.Millisecond); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
}

func TestShardCounters(t *testing.T) {
	s := NewShard(4)
	if s.Imbalance() != 1 {
		t.Fatalf("empty Imbalance = %f, want 1", s.Imbalance())
	}
	s.RecordRouted(0, 10)
	s.RecordRouted(1, 20)
	s.RecordRouted(2, 30)
	s.RecordRouted(3, 40)
	s.RecordBatch()
	if got := s.RoutedTotal(); got != 100 {
		t.Fatalf("RoutedTotal = %d, want 100", got)
	}
	// max/mean = 40 / 25.
	if got := s.Imbalance(); got != 1.6 {
		t.Fatalf("Imbalance = %f, want 1.6", got)
	}
	s.RecordRebalance()
	s.RecordMove(12)
	if s.Rebalances != 1 || s.Moves != 1 || s.Migrated != 12 {
		t.Fatalf("rebalance counters = %d/%d/%d", s.Rebalances, s.Moves, s.Migrated)
	}
	str := s.String()
	for _, want := range []string{"shards=4", "imbalance=1.60", "migrated=12"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestShardImbalanceOneHot(t *testing.T) {
	s := NewShard(8)
	s.RecordRouted(5, 1000)
	if got := s.Imbalance(); got != 8 {
		t.Fatalf("one-hot Imbalance = %f, want 8", got)
	}
}
