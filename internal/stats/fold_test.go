package stats

import (
	"reflect"
	"testing"
	"time"
)

// fillDistinct sets every field of b to a distinct non-zero value via
// reflection, so a field AddTo forgets to fold shows up as a mismatch.
// It fails the test if Batch ever grows a field kind it doesn't know
// how to fill — the forcing function for keeping AddTo complete.
func fillDistinct(t *testing.T, b *Batch, base int64) {
	t.Helper()
	v := reflect.ValueOf(b).Elem()
	next := base
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(next)
			next++
		case reflect.Slice: // LeafOps
			if f.Type().Elem().Kind() != reflect.Int64 {
				t.Fatalf("unknown slice field %s: update fillDistinct and AddTo", name)
			}
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(next)
				next++
			}
		case reflect.Array: // Elapsed
			if f.Type().Elem() != reflect.TypeOf(time.Duration(0)) {
				t.Fatalf("unknown array field %s: update fillDistinct and AddTo", name)
			}
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(next)
				next++
			}
		default:
			t.Fatalf("Batch grew field %s of kind %s: update fillDistinct and AddTo", name, f.Kind())
		}
	}
}

// TestAddToFoldsEveryField fills a source batch with distinct values
// and checks AddTo reproduces it exactly in an empty destination and
// doubles it on a second fold — any counter or timing missing from
// AddTo fails both comparisons.
func TestAddToFoldsEveryField(t *testing.T) {
	const workers = 3
	src := NewBatch(workers)
	fillDistinct(t, src, 100)

	dst := NewBatch(workers)
	src.AddTo(dst)
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("AddTo into empty batch diverges:\nsrc %+v\ndst %+v", src, dst)
	}

	src.AddTo(dst)
	want := NewBatch(workers)
	fillDistinct(t, want, 100)
	wv := reflect.ValueOf(want).Elem()
	for i := 0; i < wv.NumField(); i++ {
		f := wv.Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(2 * f.Int())
		case reflect.Slice, reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(2 * f.Index(j).Int())
			}
		}
	}
	if !reflect.DeepEqual(want, dst) {
		t.Fatalf("double AddTo diverges:\nwant %+v\ngot  %+v", want, dst)
	}
}

// TestAddToShorterDst checks the documented LeafOps truncation rule:
// folding into a destination with fewer workers keeps the overlapping
// prefix and drops the rest (no panic, no silent growth).
func TestAddToShorterDst(t *testing.T) {
	src := NewBatch(4)
	for i := range src.LeafOps {
		src.LeafOps[i] = int64(10 + i)
	}
	dst := NewBatch(2)
	src.AddTo(dst)
	if len(dst.LeafOps) != 2 || dst.LeafOps[0] != 10 || dst.LeafOps[1] != 11 {
		t.Fatalf("LeafOps fold into shorter dst: %v", dst.LeafOps)
	}
}
