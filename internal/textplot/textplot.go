// Package textplot renders small bar charts and grouped series as
// ASCII, so qtransbench can show each figure's shape directly in the
// terminal alongside the raw rows.
package textplot

import (
	"fmt"
	"io"
	"strings"
)

// Series is one named sequence of y-values over shared x-labels.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a grouped bar chart: for each x-label, one bar per series.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// XLabels name the groups (e.g. update ratios).
	XLabels []string
	// Series hold one value per x-label.
	Series []Series
	// Width is the maximum bar length in characters (0 = 50).
	Width int
	// Unit is appended to rendered values (e.g. "q/s").
	Unit string
}

// glyphs distinguish series within a group.
var glyphs = []byte{'#', '=', '*', '+', '~', 'o'}

// Render writes the chart to w. Bars are scaled to the chart's maximum
// value; every bar shows its numeric value. Returns any write error.
func (c *Chart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	nameWidth := 0
	for _, s := range c.Series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	for xi, xl := range c.XLabels {
		if _, err := fmt.Fprintf(w, "%s\n", xl); err != nil {
			return err
		}
		for si, s := range c.Series {
			v := 0.0
			if xi < len(s.Values) {
				v = s.Values[xi]
			}
			bar := 0
			if max > 0 {
				bar = int(v / max * float64(width))
			}
			if v > 0 && bar == 0 {
				bar = 1
			}
			g := glyphs[si%len(glyphs)]
			if _, err := fmt.Fprintf(w, "  %-*s |%s %s\n",
				nameWidth, s.Name, strings.Repeat(string(g), bar), formatValue(v, c.Unit)); err != nil {
				return err
			}
		}
	}
	// Legend only needed when glyphs repeat meaning across charts; the
	// inline names make bars self-describing, so none is printed.
	return nil
}

// formatValue renders v compactly with SI-style suffixes.
func formatValue(v float64, unit string) string {
	s := ""
	switch {
	case v >= 1e9:
		s = fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		s = fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		s = fmt.Sprintf("%.2fk", v/1e3)
	case v == float64(int64(v)):
		s = fmt.Sprintf("%.0f", v)
	default:
		s = fmt.Sprintf("%.3g", v)
	}
	if unit != "" {
		s += " " + unit
	}
	return s
}

// Table renders rows of tab-separated columns with aligned columns —
// a prettier view of the harness's raw rows.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			pad := widths[i]
			if i == len(row)-1 {
				if _, err := fmt.Fprintf(w, "%s", cell); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, "%-*s  ", pad, cell); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
