package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := &Chart{
		Title:   "throughput",
		XLabels: []string{"U-0", "U-0.25"},
		Series: []Series{
			{Name: "org", Values: []float64{1e6, 2e6}},
			{Name: "opt", Values: []float64{4e6, 3e6}},
		},
		Width: 20,
		Unit:  "q/s",
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"throughput", "U-0", "U-0.25", "org", "opt", "4.00M q/s", "1.00M q/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The max bar must be exactly Width glyphs long.
	if !strings.Contains(out, "|"+strings.Repeat("=", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// Proportionality: org's 1M bar is 1/4 of opt's 4M bar.
	if !strings.Contains(out, "|"+strings.Repeat("#", 5)+" 1.00M") {
		t.Errorf("quarter bar wrong:\n%s", out)
	}
}

func TestRenderZeroAndTinyValues(t *testing.T) {
	c := &Chart{
		XLabels: []string{"x"},
		Series: []Series{
			{Name: "zero", Values: []float64{0}},
			{Name: "tiny", Values: []float64{0.001}},
			{Name: "big", Values: []float64{100}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Zero gets no bar; tiny positive values get at least one glyph.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "zero") && strings.Contains(line, "#") {
			t.Errorf("zero value drew a bar: %q", line)
		}
		if strings.Contains(line, "tiny") && !strings.Contains(line, "=") {
			t.Errorf("tiny value drew no bar: %q", line)
		}
	}
}

func TestRenderMissingValues(t *testing.T) {
	c := &Chart{
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "s", Values: []float64{5}}}, // one value short
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b") {
		t.Error("missing-value group dropped")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.5e9, "", "2.50G"},
		{3.1e6, "q/s", "3.10M q/s"},
		{4200, "", "4.20k"},
		{42, "", "42"},
		{0.5, "", "0.5"},
	}
	for _, c := range cases {
		if got := formatValue(c.v, c.unit); got != c.want {
			t.Errorf("formatValue(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestTableAligns(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, [][]string{
		{"dataset", "qps"},
		{"zipfian", "3200000"},
		{"uniform-long-name", "11"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The second column must start at the same offset on every line.
	col := strings.Index(lines[1], "3200000")
	if col == -1 || strings.Index(lines[2], "11") != col {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableEmpty(t *testing.T) {
	if err := Table(&bytes.Buffer{}, nil); err != nil {
		t.Fatal(err)
	}
}
