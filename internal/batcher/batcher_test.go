package batcher

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          palm.Config{Order: 16, Workers: 2, LoadBalance: true},
		CacheCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestSubmitAndGet(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 100, MaxDelay: 5 * time.Millisecond})
	defer b.Close()

	if _, err := b.Submit(keys.Insert(1, 11)); err != nil {
		t.Fatal(err)
	}
	f, err := b.Submit(keys.Search(1))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := f.Get() // deadline flush delivers within ~5ms
	if !ok || !res.Found || res.Value != 11 {
		t.Fatalf("Get = %+v, %v; want 11", res, ok)
	}
}

func TestSizeTriggeredFlush(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 4, MaxDelay: time.Hour})
	defer b.Close()

	var futs []*Future
	for i := 0; i < 4; i++ { // exactly MaxBatch: flush without deadline
		f, err := b.Submit(keys.Insert(keys.Key(i), keys.Value(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("future %d not resolved by size-triggered flush", i)
		}
	}
	batches, queries := b.Stats()
	if batches != 1 || queries != 4 {
		t.Fatalf("stats = %d batches, %d queries", batches, queries)
	}
}

func TestDeadlineTriggeredFlush(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 1 << 20, MaxDelay: 5 * time.Millisecond})
	defer b.Close()

	start := time.Now()
	f, err := b.Submit(keys.Search(42))
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := f.Get(); !ok || res.Found {
		t.Fatalf("Get = %+v, %v; want recorded not-found", res, ok)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline flush took %v", waited)
	}
}

func TestMutationFutureHasNoResult(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 1, MaxDelay: time.Hour})
	defer b.Close()
	f, err := b.Submit(keys.Insert(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Get(); ok {
		t.Fatal("insert future carried a result")
	}
}

func TestExplicitFlush(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 1 << 20, MaxDelay: time.Hour})
	defer b.Close()
	f, err := b.Submit(keys.Insert(5, 50))
	if err != nil {
		t.Fatal(err)
	}
	b.Flush()
	select {
	case <-f.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("explicit Flush did not resolve the future")
	}
	b.Flush() // empty flush is a no-op
}

func TestCloseFlushesAndRejects(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 1 << 20, MaxDelay: time.Hour})
	f, err := b.Submit(keys.Insert(5, 50))
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case <-f.Done():
	default:
		t.Fatal("Close must flush pending queries")
	}
	if _, err := b.Submit(keys.Search(5)); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBatchSemanticsAcrossSubmitters(t *testing.T) {
	// Many goroutines submit interleaved ops on disjoint keys; every
	// search must observe its own goroutine's prior writes (futures
	// resolve in submission order per key because batches preserve
	// serial semantics).
	b := New(newEngine(t), Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	defer b.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := keys.Key(w * 1000)
			for i := 0; i < 50; i++ {
				k := base + keys.Key(i)
				if _, err := b.Submit(keys.Insert(k, keys.Value(i))); err != nil {
					errs <- err.Error()
					return
				}
				f, err := b.Submit(keys.Search(k))
				if err != nil {
					errs <- err.Error()
					return
				}
				res, ok := f.Get()
				if !ok || !res.Found || res.Value != keys.Value(i) {
					errs <- "stale read"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(newEngine(t), Config{})
	defer b.Close()
	if b.cfg.MaxBatch != 4096 || b.cfg.MaxDelay != 10*time.Millisecond {
		t.Fatalf("defaults = %+v", b.cfg)
	}
}
