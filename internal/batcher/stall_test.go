package batcher

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/metrics"
)

// gatedProc is a Processor that blocks inside ProcessBatch until
// released, recording the batches it was handed. It simulates a slow or
// wedged engine so tests can observe the batcher's behavior while the
// dispatcher is stalled mid-batch.
type gatedProc struct {
	gate    chan struct{} // each receive releases one ProcessBatch call
	mu      sync.Mutex
	batches [][]keys.Query
}

func newGatedProc() *gatedProc { return &gatedProc{gate: make(chan struct{})} }

func (p *gatedProc) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	<-p.gate
	p.mu.Lock()
	p.batches = append(p.batches, append([]keys.Query(nil), qs...))
	p.mu.Unlock()
	for i := range qs {
		if qs[i].Op == keys.OpSearch {
			rs.Set(qs[i].Idx, keys.Value(qs[i].Key), true) // echo the key as the value
		}
	}
}

// release lets n in-flight or future ProcessBatch calls finish.
func (p *gatedProc) release(n int) {
	for i := 0; i < n; i++ {
		p.gate <- struct{}{}
	}
}

// TestSubmitNotBlockedByStalledDispatcher is the regression test for
// the lock-held dispatch stall: flushLocked used to send on a bounded
// channel (capacity 4) while holding b.mu, so once the processor fell 4
// batches behind, the next flush parked with the mutex held and every
// Submit, Flush, and Close froze with it. With the unbounded hand-off
// the submit path must stay live no matter how far behind the
// processor is.
func TestSubmitNotBlockedByStalledDispatcher(t *testing.T) {
	proc := newGatedProc()
	b := New(proc, Config{MaxBatch: 1, MaxDelay: time.Hour})

	// Far more flushed batches than the old channel capacity (4), all
	// while the processor is stuck inside its first ProcessBatch call.
	const batches = 64
	done := make(chan []*Future, 1)
	go func() {
		futs := make([]*Future, 0, batches)
		for i := 0; i < batches; i++ {
			f, err := b.Submit(keys.Search(keys.Key(i)))
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				break
			}
			futs = append(futs, f)
		}
		done <- futs
	}()

	var futs []*Future
	select {
	case futs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Submit blocked behind the stalled dispatcher (lock-held dispatch stall)")
	}

	// Flush on an empty queue must also return immediately.
	flushed := make(chan struct{})
	go func() { b.Flush(); close(flushed) }()
	select {
	case <-flushed:
	case <-time.After(10 * time.Second):
		t.Fatal("Flush blocked behind the stalled dispatcher")
	}

	if pending, backlog := b.Load(); pending != 0 || backlog != batches {
		t.Fatalf("Load = (%d pending, %d backlog), want (0, %d)", pending, backlog, batches)
	}

	proc.release(batches)
	for i, f := range futs {
		res, ok := f.Get()
		if !ok || !res.Found || res.Value != keys.Value(i) {
			t.Fatalf("future %d = %+v, %v", i, res, ok)
		}
	}
	b.Close()
}

// TestGaugesLiveDuringProcessorStall pins the observability half of the
// regression: while the processor is wedged, the queue-depth gauge must
// keep tracking new submissions and the dispatch-backlog gauge must
// report how far behind the processor is — these are exactly the
// signals admission control sheds on, and the old lock-held send froze
// both.
func TestGaugesLiveDuringProcessorStall(t *testing.T) {
	reg := metrics.New()
	proc := newGatedProc()
	b := New(proc, Config{MaxBatch: 4, MaxDelay: time.Hour, Metrics: reg})
	defer b.Close()

	// Fill and flush 3 whole batches; the processor accepts none of them.
	for i := 0; i < 12; i++ {
		if _, err := b.Submit(keys.Insert(keys.Key(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Now trickle 3 more queries in — under the stall the gauge must
	// still move with each Submit.
	for i := 0; i < 3; i++ {
		if _, err := b.Submit(keys.Insert(keys.Key(100+i), 1)); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		if got := snap.Gauges["batcher_queue_depth"]; got != int64(i+1) {
			t.Fatalf("queue_depth after %d stalled submits = %d, want %d", i+1, got, i+1)
		}
		if got := snap.Gauges["batcher_dispatch_backlog"]; got != 3 {
			t.Fatalf("dispatch_backlog during stall = %d, want 3", got)
		}
	}

	b.Flush()       // dispatch the trickled partial batch too
	proc.release(4) // 3 full batches + the flushed partial
}

// TestDispatchOrderPreservedUnderStall verifies the hand-off queue
// preserves flush order even when many batches pile up behind a stalled
// processor — batches must reach the processor in exactly the order
// flushLocked emitted them, or as-if-serial semantics break.
func TestDispatchOrderPreservedUnderStall(t *testing.T) {
	proc := newGatedProc()
	b := New(proc, Config{MaxBatch: 2, MaxDelay: time.Hour})
	defer b.Close()

	const batches = 32
	for i := 0; i < batches; i++ {
		for j := 0; j < 2; j++ {
			if _, err := b.Submit(keys.Insert(keys.Key(2*i+j), keys.Value(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	proc.release(batches)
	b.Flush()

	deadline := time.After(10 * time.Second)
	for {
		proc.mu.Lock()
		n := len(proc.batches)
		proc.mu.Unlock()
		if n == batches {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d batches processed", n, batches)
		case <-time.After(time.Millisecond):
		}
	}
	proc.mu.Lock()
	defer proc.mu.Unlock()
	next := keys.Key(0)
	for bi, qs := range proc.batches {
		for _, q := range qs {
			if q.Key != next {
				t.Fatalf("batch %d out of order: key %d, want %d", bi, q.Key, next)
			}
			next++
		}
	}
}

// TestScanFutureRows exercises the Future scan side channel: a
// submitted range scan resolves with its rows, point futures report
// ok == false from Rows, and the returned slice is a caller-owned copy
// (it survives the batch storage being reset for the next batch).
func TestScanFutureRows(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		b := New(newEngine(t), Config{MaxBatch: 8, MaxDelay: time.Millisecond, Pipeline: pipeline})

		for i := 0; i < 5; i++ {
			if _, err := b.Submit(keys.Insert(keys.Key(10+i), keys.Value(100+i))); err != nil {
				t.Fatal(err)
			}
		}
		scanF, err := b.Submit(keys.Scan(10, 13, 0))
		if err != nil {
			t.Fatal(err)
		}
		pointF, err := b.Submit(keys.Search(11))
		if err != nil {
			t.Fatal(err)
		}
		limitF, err := b.Submit(keys.Scan(10, 15, 2))
		if err != nil {
			t.Fatal(err)
		}
		emptyF, err := b.Submit(keys.Scan(1000, 2000, 0))
		if err != nil {
			t.Fatal(err)
		}

		rows, ok := scanF.Rows()
		if !ok || len(rows) != 3 {
			t.Fatalf("pipeline=%v: scan rows = %v, %v; want 3 rows", pipeline, rows, ok)
		}
		for i, kv := range rows {
			if kv.Key != keys.Key(10+i) || kv.Value != keys.Value(100+i) {
				t.Fatalf("pipeline=%v: row %d = %+v", pipeline, i, kv)
			}
		}
		if res, ok := scanF.Get(); !ok || res.Value != 3 {
			t.Fatalf("pipeline=%v: scan point result = %+v, %v; want rowcount 3", pipeline, res, ok)
		}
		if _, ok := pointF.Rows(); ok {
			t.Fatalf("pipeline=%v: point future reported scan rows", pipeline)
		}
		if rows, ok := limitF.Rows(); !ok || len(rows) != 2 {
			t.Fatalf("pipeline=%v: limited scan rows = %v, %v; want 2 rows", pipeline, rows, ok)
		}
		if rows, ok := emptyF.Rows(); !ok || len(rows) != 0 {
			t.Fatalf("pipeline=%v: empty scan = %v, %v; want ok with no rows", pipeline, rows, ok)
		}

		// Push more batches through to recycle the batch result storage,
		// then re-check the copied rows are untouched.
		for i := 0; i < 64; i++ {
			if _, err := b.Submit(keys.Insert(keys.Key(5000+i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		b.Flush()
		b.Close()
		rows, _ = scanF.Rows()
		for i, kv := range rows {
			if kv.Key != keys.Key(10+i) || kv.Value != keys.Value(100+i) {
				t.Fatalf("pipeline=%v: row %d corrupted after storage reuse: %+v", pipeline, i, kv)
			}
		}
	}
}

// TestRMWFutureResult checks RMW submissions resolve with the
// pre-update value through the ordinary point-result path.
func TestRMWFutureResult(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 1 << 20, MaxDelay: time.Hour})
	defer b.Close()

	f1, err := b.Submit(keys.AddDelta(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := b.Submit(keys.AddDelta(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	f3, err := b.Submit(keys.SetIfAbsent(7, 99))
	if err != nil {
		t.Fatal(err)
	}
	b.Flush()
	if res, ok := f1.Get(); !ok || res.Found || res.Value != 0 {
		t.Fatalf("first AddDelta = %+v, %v; want absent pre-state", res, ok)
	}
	if res, ok := f2.Get(); !ok || !res.Found || res.Value != 5 {
		t.Fatalf("second AddDelta = %+v, %v; want pre-value 5", res, ok)
	}
	if res, ok := f3.Get(); !ok || !res.Found || res.Value != 10 {
		t.Fatalf("SetIfAbsent = %+v, %v; want existing value 10", res, ok)
	}
}

// TestConcurrentSubmitFlushCloseUnderStall is the -race hammer for the
// fixed hand-off: many submitters, a flusher, and a closer race against
// a deliberately slow processor. Every future must resolve exactly once
// and the batcher must shut down cleanly.
func TestConcurrentSubmitFlushCloseUnderStall(t *testing.T) {
	proc := newGatedProc()
	b := New(proc, Config{MaxBatch: 8, MaxDelay: time.Millisecond})

	// Drip-feed the processor from the side so batches drain slowly but
	// steadily while the hammer runs.
	stop := make(chan struct{})
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		for {
			select {
			case <-stop:
				// Unconditionally drain whatever is still gated.
				for {
					select {
					case proc.gate <- struct{}{}:
					default:
						return
					}
				}
			case proc.gate <- struct{}{}:
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	var resolved atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f, err := b.Submit(keys.Insert(keys.Key(w*1000+i), keys.Value(i)))
				if err != nil {
					return // closed under us: fine
				}
				go func() {
					<-f.Done()
					resolved.Add(1)
				}()
				if i%17 == 0 {
					b.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	close(stop)
	feeder.Wait()
	// After Close returns every accepted future must already be
	// resolved; give the counting goroutines a moment to observe it.
	deadline := time.After(5 * time.Second)
	_, queries := b.Stats()
	for resolved.Load() < queries {
		select {
		case <-deadline:
			t.Fatalf("resolved %d of %d accepted futures", resolved.Load(), queries)
		case <-time.After(time.Millisecond):
		}
	}
}
