package batcher

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/keys"
)

// TestCloseLeaksNoGoroutines opens and closes many batchers — with
// armed deadline timers and in-flight batches — and checks the process
// goroutine count returns to baseline (dispatcher and timer callbacks
// all released).
func TestCloseLeaksNoGoroutines(t *testing.T) {
	eng := newEngine(t)
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		b := New(eng, Config{MaxBatch: 1000, MaxDelay: time.Hour})
		// Arm the deadline timer (batch far below cap) and leave work
		// in flight at Close.
		f, err := b.Submit(keys.Insert(keys.Key(i), 1))
		if err != nil {
			t.Fatal(err)
		}
		b.Close()
		if _, ok := <-f.Done(); ok {
			t.Fatal("future channel yielded a value")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d -> %d", base, runtime.NumGoroutine())
}

// TestCloseWhileSubmitting hammers Submit from many goroutines racing a
// Close: every future that Submit returned must complete (its batch was
// dispatched, not dropped), and Submits that lose the race must fail
// with ErrClosed — never hang, never panic on the closed dispatch
// channel.
func TestCloseWhileSubmitting(t *testing.T) {
	for round := 0; round < 20; round++ {
		b := New(newEngine(t), Config{MaxBatch: 4, MaxDelay: time.Microsecond})
		const workers = 8
		var wg sync.WaitGroup
		// Per-worker slices, merged after the race: Submit no longer
		// blocks behind the dispatcher, so the number of futures won in
		// the race window is unbounded — a fixed-capacity channel here
		// would throttle the submitters and mask the behavior under test.
		perWorker := make([][]*Future, workers)
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					f, err := b.Submit(keys.Insert(keys.Key(w*1000+i), keys.Value(i)))
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Submit: %v", err)
						}
						return
					}
					perWorker[w] = append(perWorker[w], f)
				}
			}(w)
		}
		close(start)
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		b.Close()
		wg.Wait()
		done := make(chan struct{})
		go func() {
			for _, futs := range perWorker {
				for _, f := range futs {
					f.Get()
				}
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("a returned future never completed after Close")
		}
	}
}

// TestConcurrentClose verifies double and concurrent Close are safe and
// all of them return only after the dispatcher has drained.
func TestConcurrentClose(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 8, MaxDelay: time.Hour})
	var futs []*Future
	for i := 0; i < 20; i++ {
		f, err := b.Submit(keys.Insert(keys.Key(i), keys.Value(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
	}
	wg.Wait()
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("future %d incomplete after Close returned", i)
		}
	}
	if _, err := b.Submit(keys.Search(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	b.Close() // idempotent
}

// TestStaleDeadlineDoesNotDisturbNewTimer pins the timer-generation
// fix: a deadline callback that fired for an already-flushed batch must
// not clear the live timer of the next batch (which would orphan it and
// strand its queries until some later Submit flushes incidentally).
func TestStaleDeadlineDoesNotDisturbNewTimer(t *testing.T) {
	b := New(newEngine(t), Config{MaxBatch: 2, MaxDelay: 20 * time.Millisecond})
	defer b.Close()
	// Batch 1 flushes by size the moment the deadline is about to fire,
	// racing the callback against flushLocked.
	b.Submit(keys.Insert(1, 1))
	time.Sleep(19 * time.Millisecond)
	b.Submit(keys.Insert(2, 2))
	// Batch 2: a single query that only the (new) deadline can flush.
	f, err := b.Submit(keys.Insert(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-f.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("query stranded: its deadline timer was cleared by a stale callback")
	}
}
