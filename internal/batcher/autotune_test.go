package batcher

import (
	"testing"
	"time"

	"repro/internal/keys"
)

// sleepProc simulates a processor whose batch time is proportional to
// batch size: perQuery cost fixed, so the ideal batch for a target
// latency is target/perQuery.
type sleepProc struct {
	perQuery time.Duration
}

func (p *sleepProc) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	time.Sleep(time.Duration(len(qs)) * p.perQuery)
}

func TestAutoTuneConvergesDown(t *testing.T) {
	// 10µs per query, target 1ms -> ideal cap 100. Start way high.
	proc := &sleepProc{perQuery: 10 * time.Microsecond}
	b := New(proc, Config{
		MaxBatch:      8192,
		MaxDelay:      time.Millisecond,
		TargetLatency: time.Millisecond,
		MinBatch:      10,
	})
	defer b.Close()

	for round := 0; round < 8; round++ {
		var futs []*Future
		for i := 0; i < 400; i++ {
			f, err := b.Submit(keys.Search(keys.Key(i)))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		b.Flush()
		for _, f := range futs {
			f.Get()
		}
	}
	cap := b.BatchCap()
	if cap > 400 {
		t.Fatalf("cap did not converge down: %d (ideal ~100)", cap)
	}
	if cap < 10 {
		t.Fatalf("cap fell below MinBatch: %d", cap)
	}
}

func TestAutoTuneConvergesUp(t *testing.T) {
	// 1µs per query, target 10ms -> ideal cap ~10000. Start tiny.
	proc := &sleepProc{perQuery: time.Microsecond}
	b := New(proc, Config{
		MaxBatch:      64,
		MaxDelay:      500 * time.Microsecond,
		TargetLatency: 10 * time.Millisecond,
		MaxBatchLimit: 1 << 16,
	})
	defer b.Close()

	for round := 0; round < 10; round++ {
		var futs []*Future
		for i := 0; i < 300; i++ {
			f, err := b.Submit(keys.Insert(keys.Key(i), 1))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		b.Flush()
		for _, f := range futs {
			f.Get()
		}
	}
	if cap := b.BatchCap(); cap <= 64 {
		t.Fatalf("cap did not grow: %d", cap)
	}
}

func TestAutoTuneRespectsBounds(t *testing.T) {
	proc := &sleepProc{perQuery: 100 * time.Microsecond}
	b := New(proc, Config{
		MaxBatch:      1000,
		MaxDelay:      time.Millisecond,
		TargetLatency: time.Microsecond, // absurd target -> ideal < 1
		MinBatch:      50,
	})
	defer b.Close()
	for round := 0; round < 6; round++ {
		f, err := b.Submit(keys.Search(1))
		if err != nil {
			t.Fatal(err)
		}
		b.Flush()
		f.Get()
	}
	if cap := b.BatchCap(); cap < 50 {
		t.Fatalf("cap %d violated MinBatch", cap)
	}
}

func TestAutoTuneDisabledKeepsCap(t *testing.T) {
	proc := &sleepProc{perQuery: time.Microsecond}
	b := New(proc, Config{MaxBatch: 777, MaxDelay: time.Millisecond})
	defer b.Close()
	f, _ := b.Submit(keys.Search(1))
	b.Flush()
	f.Get()
	if b.BatchCap() != 777 {
		t.Fatalf("cap changed without TargetLatency: %d", b.BatchCap())
	}
}

func TestNewClampsBatchBounds(t *testing.T) {
	// Bounds only apply when tuning is enabled.
	b := New(&sleepProc{}, Config{MaxBatch: 5, MinBatch: 100, MaxBatchLimit: 200, TargetLatency: time.Second})
	defer b.Close()
	if b.BatchCap() != 100 {
		t.Fatalf("cap = %d, want clamped to MinBatch", b.BatchCap())
	}
	b2 := New(&sleepProc{}, Config{MaxBatch: 5000, MaxBatchLimit: 300, TargetLatency: time.Second})
	defer b2.Close()
	if b2.BatchCap() != 300 {
		t.Fatalf("cap = %d, want clamped to MaxBatchLimit", b2.BatchCap())
	}
	// Without tuning, a tiny fixed cap is honored verbatim.
	b3 := New(&sleepProc{}, Config{MaxBatch: 1})
	defer b3.Close()
	if b3.BatchCap() != 1 {
		t.Fatalf("cap = %d, want 1", b3.BatchCap())
	}
}
