// Package batcher turns the batch-oriented engine into an online query
// service: callers submit individual queries and receive futures; the
// batcher accumulates queries and dispatches a batch when either the
// size cap or the latency deadline is reached.
//
// This implements the online-processing regime of §VI-D: "we can
// always trade our high throughput for faster response time by using a
// smaller batch size" — MaxBatch bounds throughput-oriented batching
// while MaxDelay bounds the time any query waits before evaluation
// begins, so worst-case response time is MaxDelay plus one batch's
// processing time.
//
// The submit path never waits on the dispatcher: flushed batches are
// handed off through an unbounded FIFO under the submit mutex and the
// dispatcher drains it at its own pace, so a slow or backlogged
// processor cannot stall Submit, Flush, Close, or the queue-depth
// gauge. Backpressure is a policy decision for the caller: Load exposes
// the congestion signals (pending queries, dispatched-but-unprocessed
// batches) that admission control (internal/server) sheds on.
package batcher

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// Processor evaluates one batch; core.Engine and palm.Processor both
// satisfy it.
type Processor interface {
	ProcessBatch(qs []keys.Query, rs *keys.ResultSet)
}

// StreamProcessor additionally evaluates a stream of batches with
// pipelined execution; core.Engine satisfies it.
type StreamProcessor interface {
	Processor
	ProcessStream(in <-chan *core.Job, emit func(*core.Job))
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("batcher: closed")

// Future delivers one query's outcome once its batch has executed.
type Future struct {
	done chan struct{}
	res  keys.Result
	rows []keys.KV // scan rows (copied out of batch storage; scans only)
	ok   bool      // a result was recorded (searches, scans, RMWs)
	scan bool      // the submitted query was a range scan
}

// Get blocks until the query's batch has executed, returning the point
// result. ok is false for insert/delete futures (which carry no
// result) — Get still blocks until the mutation is applied. For scans
// the result holds the row count; for RMWs the pre-update value.
func (f *Future) Get() (res keys.Result, ok bool) {
	<-f.done
	return f.res, f.ok
}

// Rows blocks until the query's batch has executed and returns the
// range-scan rows in ascending key order. ok is false when the
// submitted query was not a scan; an empty scan yields ok == true with
// no rows. The slice is owned by the caller (rows are copied out of the
// batch's reusable storage before the future resolves).
func (f *Future) Rows() (rows []keys.KV, ok bool) {
	<-f.done
	return f.rows, f.scan
}

// Done returns a channel closed when the batch has executed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Config tunes a Batcher.
type Config struct {
	// MaxBatch flushes when this many queries are pending (<= 0: 4096).
	// With TargetLatency set, this is only the starting point.
	MaxBatch int
	// MaxDelay flushes this long after the oldest pending query
	// arrived (<= 0: 10ms).
	MaxDelay time.Duration
	// TargetLatency, when positive, enables auto-tuning of the batch
	// size: after each dispatched batch the size cap is nudged so that
	// batch processing time approaches the target — the §VI-D
	// throughput/latency trade as a controller ("we can always trade
	// our high throughput for faster response time by using a smaller
	// batch size"). The cap stays within [MinBatch, MaxBatchLimit].
	TargetLatency time.Duration
	// MinBatch bounds auto-tuning from below (<= 0: 64).
	MinBatch int
	// MaxBatchLimit bounds auto-tuning from above (<= 0: 1<<20).
	MaxBatchLimit int
	// Pipeline feeds dispatched batches through the processor's
	// ProcessStream so the transform of one batch overlaps the tree
	// stages of the previous one. Requires a StreamProcessor; ignored
	// (serial dispatch) otherwise. TargetLatency auto-tuning is
	// unavailable in pipelined mode: batches overlap, so a single
	// batch's processing time cannot be attributed — Pipeline takes
	// precedence and the cap stays at MaxBatch.
	Pipeline bool
	// Metrics, when non-nil, receives queue-depth (batcher_queue_depth
	// gauge), dispatch backlog (batcher_dispatch_backlog gauge:
	// dispatched-but-unprocessed batches), dispatched batch sizes
	// (batcher_batch_size histogram) and batch-fill ratio in per-mille
	// of the current cap (batcher_fill_permille histogram). Nil adds no
	// overhead.
	Metrics *metrics.Registry
}

// Batcher accumulates queries into batches for a Processor. Safe for
// concurrent Submit from many goroutines; batches are dispatched by a
// single background goroutine, so the Processor needs no internal
// locking.
type Batcher struct {
	proc Processor
	cfg  Config

	// batchCap is the current flush threshold; atomic because the
	// dispatcher goroutine retunes it while submitters read it.
	batchCap atomic.Int64

	mu      sync.Mutex
	pending []keys.Query
	futures []*Future
	timer   *time.Timer
	// timerGen guards deadline callbacks against staleness: a fired
	// callback that lost the race with a flush (or with Close) parks on
	// mu and would otherwise clear a *newer* timer's handle, causing
	// spurious early flushes and duplicate armed timers. Every flush and
	// Close bumps the generation; a callback acts only if its generation
	// is still current.
	timerGen uint64
	closed   bool

	// sendq is the dispatch hand-off: flushLocked appends under mu (so
	// batches leave in flush order) and the dispatcher pops from the
	// front via next. It is unbounded on purpose — the submit path must
	// never wait on the dispatcher (a bounded channel here once stalled
	// every Submit/Flush/Close behind a slow processor, with b.mu held
	// across the blocking send). wake (capacity 1) nudges a parked
	// dispatcher; a buffered token is never lost, so no wakeup is
	// missed. qdone tells the dispatcher to exit once sendq is empty.
	sendq []dispatchReq
	qdone bool
	wake  chan struct{}
	wg    sync.WaitGroup

	// inflight counts batches handed to the dispatcher and not yet
	// fully processed — the congestion signal admission control sheds
	// on (see Load).
	inflight atomic.Int64

	// stats
	batches int64
	queries int64

	// Metric handles (nil when Config.Metrics is nil).
	queueDepth   *metrics.Gauge
	backlog      *metrics.Gauge
	batchSize    *metrics.Histogram
	fillPermille *metrics.Histogram
}

type dispatchReq struct {
	qs   []keys.Query
	futs []*Future
}

// New creates a Batcher over proc.
func New(proc Processor, cfg Config) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 64
	}
	if cfg.MaxBatchLimit <= 0 {
		cfg.MaxBatchLimit = 1 << 20
	}
	// The tuning bounds only constrain the cap when tuning is on; a
	// fixed MaxBatch (even 1) is honored verbatim otherwise.
	if cfg.TargetLatency > 0 {
		if cfg.MaxBatch < cfg.MinBatch {
			cfg.MaxBatch = cfg.MinBatch
		}
		if cfg.MaxBatch > cfg.MaxBatchLimit {
			cfg.MaxBatch = cfg.MaxBatchLimit
		}
	}
	b := &Batcher{
		proc: proc,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
	}
	if cfg.Metrics != nil {
		b.queueDepth = cfg.Metrics.Gauge("batcher_queue_depth")
		b.backlog = cfg.Metrics.Gauge("batcher_dispatch_backlog")
		b.batchSize = cfg.Metrics.Histogram("batcher_batch_size")
		b.fillPermille = cfg.Metrics.Histogram("batcher_fill_permille")
	}
	b.batchCap.Store(int64(cfg.MaxBatch))
	b.wg.Add(1)
	if sp, ok := proc.(StreamProcessor); ok && cfg.Pipeline {
		go b.runStream(sp)
	} else {
		go b.run()
	}
	return b
}

// next blocks until a dispatched batch is available and pops it, or
// returns ok == false once the batcher is closed and the hand-off queue
// fully drained. Only the dispatcher goroutine calls it; it holds b.mu
// just long enough to pop, never while the processor runs.
func (b *Batcher) next() (req dispatchReq, ok bool) {
	for {
		b.mu.Lock()
		if len(b.sendq) > 0 {
			req = b.sendq[0]
			b.sendq[0] = dispatchReq{} // drop references for GC
			b.sendq = b.sendq[1:]
			if len(b.sendq) == 0 {
				b.sendq = nil // release the drained backing array
			}
			b.mu.Unlock()
			return req, true
		}
		done := b.qdone
		b.mu.Unlock()
		if done {
			return dispatchReq{}, false
		}
		<-b.wake
	}
}

// complete resolves one batch's futures from its result set, copying
// scan rows out of the reusable batch storage, and retires the batch
// from the backlog count.
func (b *Batcher) complete(futs []*Future, rs *keys.ResultSet) {
	for i, f := range futs {
		f.res, f.ok = rs.Get(int32(i))
		if f.scan {
			if rows, ok := rs.ScanRows(int32(i)); ok && len(rows) > 0 {
				f.rows = append(make([]keys.KV, 0, len(rows)), rows...)
			}
		}
		close(f.done)
	}
	n := b.inflight.Add(-1)
	if b.backlog != nil {
		b.backlog.Set(n)
	}
}

// runStream is the pipelined dispatcher: batches flow through the
// processor's ProcessStream, with the futures carried on the job's Tag.
// Completion order equals dispatch order (ProcessStream guarantees it).
func (b *Batcher) runStream(sp StreamProcessor) {
	defer b.wg.Done()
	jobs := make(chan *core.Job)
	go func() {
		for {
			req, ok := b.next()
			if !ok {
				break
			}
			jobs <- &core.Job{Qs: req.qs, Tag: req.futs}
		}
		close(jobs)
	}()
	sp.ProcessStream(jobs, func(j *core.Job) {
		b.complete(j.Tag.([]*Future), j.RS)
	})
}

// run executes dispatched batches sequentially, feeding batch
// processing times back into the size controller when auto-tuning.
func (b *Batcher) run() {
	defer b.wg.Done()
	rs := keys.NewResultSet(0)
	for {
		req, ok := b.next()
		if !ok {
			return
		}
		rs.Reset(len(req.qs))
		start := time.Now()
		b.proc.ProcessBatch(req.qs, rs)
		if b.cfg.TargetLatency > 0 {
			b.retune(len(req.qs), time.Since(start))
		}
		b.complete(req.futs, rs)
	}
}

// retune adjusts the batch-size cap toward the latency target using
// the measured per-query cost of the batch just processed, smoothed so
// one noisy batch cannot halve or quadruple the cap.
func (b *Batcher) retune(batchLen int, took time.Duration) {
	if batchLen == 0 || took <= 0 {
		return
	}
	perQuery := float64(took) / float64(batchLen)
	ideal := float64(b.cfg.TargetLatency) / perQuery

	cur := float64(b.batchCap.Load())
	// Exponential smoothing toward the ideal; clamp step to [1/2, 2]x.
	next := cur + (ideal-cur)*0.5
	if next > 2*cur {
		next = 2 * cur
	}
	if next < cur/2 {
		next = cur / 2
	}
	if next < float64(b.cfg.MinBatch) {
		next = float64(b.cfg.MinBatch)
	}
	if next > float64(b.cfg.MaxBatchLimit) {
		next = float64(b.cfg.MaxBatchLimit)
	}
	b.batchCap.Store(int64(next))
}

// BatchCap returns the current batch-size cap (changes over time when
// auto-tuning).
func (b *Batcher) BatchCap() int {
	return int(b.batchCap.Load())
}

// Load reports the batcher's congestion signals: pending is the number
// of submitted queries not yet flushed into a batch, backlog the number
// of dispatched batches the processor has not finished. Both stay live
// while the processor is stalled — Submit never blocks behind the
// dispatcher — so admission control (internal/server) can shed on them.
func (b *Batcher) Load() (pending, backlog int) {
	b.mu.Lock()
	pending = len(b.pending)
	b.mu.Unlock()
	return pending, int(b.inflight.Load())
}

// Submit enqueues one query and returns its future. The query's Idx is
// assigned by the batcher; any caller-set Idx is ignored.
func (b *Batcher) Submit(q keys.Query) (*Future, error) {
	f := &Future{done: make(chan struct{}), scan: q.Op == keys.OpScan}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	q.Idx = int32(len(b.pending))
	b.pending = append(b.pending, q)
	b.futures = append(b.futures, f)
	b.queries++
	if b.queueDepth != nil {
		b.queueDepth.Set(int64(len(b.pending)))
	}
	if len(b.pending) >= int(b.batchCap.Load()) {
		b.flushLocked()
	} else if b.timer == nil {
		b.timerGen++
		gen := b.timerGen
		b.timer = time.AfterFunc(b.cfg.MaxDelay, func() { b.deadline(gen) })
	}
	b.mu.Unlock()
	return f, nil
}

// deadline fires when the oldest pending query has waited MaxDelay.
// gen identifies the timer that scheduled it; a stale callback (its
// batch already flushed, or the batcher closed) is a no-op.
func (b *Batcher) deadline(gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || gen != b.timerGen {
		return
	}
	b.timer = nil
	if len(b.pending) > 0 {
		b.flushLocked()
	}
}

// Flush dispatches any pending queries immediately.
func (b *Batcher) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed && len(b.pending) > 0 {
		b.flushLocked()
	}
}

// flushLocked hands the pending batch to the dispatcher: the batch is
// appended to the unbounded hand-off queue and the dispatcher nudged,
// all O(1) — never a blocking send with b.mu held, so Submit, Flush,
// Close, and the gauges stay live however far behind the processor is.
// Called with b.mu held.
func (b *Batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.timerGen++ // invalidate any fired-but-not-yet-run deadline
	req := dispatchReq{qs: b.pending, futs: b.futures}
	b.pending = nil
	b.futures = nil
	b.batches++
	if b.batchSize != nil {
		n := int64(len(req.qs))
		b.batchSize.Record(n)
		if c := b.batchCap.Load(); c > 0 {
			b.fillPermille.Record(n * 1000 / c)
		}
		b.queueDepth.Set(0)
	}
	b.sendq = append(b.sendq, req)
	n := b.inflight.Add(1)
	if b.backlog != nil {
		b.backlog.Set(n)
	}
	select {
	case b.wake <- struct{}{}:
	default: // dispatcher already has a pending wakeup token
	}
}

// Close flushes pending queries, waits for all dispatched batches to
// finish, and releases the dispatcher. Submit after Close fails with
// ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	if len(b.pending) > 0 {
		b.flushLocked()
	}
	// Defensively stop any armed timer so no callback outlives Close
	// (flushLocked normally did it, but keep Close self-sufficient).
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.timerGen++
	b.closed = true
	b.qdone = true
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	b.wg.Wait()
}

// Stats reports how many batches and queries have been dispatched.
func (b *Batcher) Stats() (batches, queries int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.queries
}
