package tier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/stats"
)

// Inner is the engine surface the tier wrapper drives: the batch
// interface shared by core.Engine and shard.Engine plus the range
// primitives (core/range.go, shard/tier.go). The range methods are
// called only at batch boundaries under the scheduling gate.
type Inner interface {
	ProcessBatch(qs []keys.Query, rs *keys.ResultSet)
	ProcessStream(in <-chan *core.Job, emit func(*core.Job))
	Flush()
	Train(hot []keys.Key)
	Stats() *stats.Batch
	Close()

	StoredLen() int
	DrainCacheRange(lo, hi keys.Key)
	RangeDump(lo, hi keys.Key, max int) ([]keys.Key, []keys.Value, bool)
	DeleteRange(lo, hi keys.Key) int
	InsertPairs(ks []keys.Key, vs []keys.Value)
}

// BatchLogger is the durability hook for promotions: a promoted run's
// pairs are logged as one insert batch and synced before the manifest
// flips the range hot, so a crash at any later point replays them
// (wal.Log satisfies this).
type BatchLogger interface {
	CommitBatch(qs []keys.Query) error
	Sync() error
}

// Engine wraps an Inner engine with the tier store (DESIGN.md §14):
// it classifies each batch against the residency map, faults cold
// ranges back in when writes, RMWs, or scans touch them, answers cold
// point searches straight from their runs, and performs at most
// MaxActions bounded demotions per batch boundary while the resident
// tree exceeds the budget — all through the scheduling gate, so
// serving never pauses for longer than one bounded action.
//
// Like the engines it wraps, Engine is single-caller: ProcessBatch and
// ProcessStream must not run concurrently with each other or
// themselves. Queries must be numbered (Query.Idx = batch position,
// keys.Number) before ProcessBatch, which the qtrans layer does.
type Engine struct {
	inner Inner
	store *Store
	gate  *sync.RWMutex
	log   BatchLogger
	// MaxActions bounds the demotions applied at one batch boundary.
	maxActions int

	// err is the sticky tier failure, mirroring the committer poison
	// contract: once a promotion, demotion, or run read fails, the
	// failing batch and every later one are dropped unapplied.
	err atomic.Value

	// Per-batch scratch, reused across batches.
	cold       []Range
	promote    []string
	coldSearch []int
	coldKeys   []keys.Key
}

// NewEngine wraps inner with the tier store. maxActions <= 0 defaults
// to one action per batch boundary.
func NewEngine(inner Inner, store *Store, maxActions int) *Engine {
	if maxActions <= 0 {
		maxActions = 1
	}
	return &Engine{inner: inner, store: store, maxActions: maxActions}
}

// SetGate installs the scheduling gate shared with the inner engine
// and the snapshot/autoshard paths. Tier maintenance, promotion, and
// the merged scan hold it exclusively; the inner engine holds it
// shared per batch. Must not be called while batches are in flight.
func (e *Engine) SetGate(g *sync.RWMutex) { e.gate = g }

// SetLogger installs the durability hook for promotions (nil when
// durability is off). Must not be called while batches are in flight.
func (e *Engine) SetLogger(l BatchLogger) { e.log = l }

// Store returns the tier store.
func (e *Engine) Store() *Store { return e.store }

// Err reports the sticky tier failure, if any.
func (e *Engine) Err() error {
	if err, ok := e.err.Load().(error); ok {
		return err
	}
	return nil
}

func (e *Engine) fail(err error) {
	if e.Err() == nil {
		e.err.Store(err)
	}
}

func (e *Engine) lock() {
	if e.gate != nil {
		e.gate.Lock()
	}
}

func (e *Engine) unlock() {
	if e.gate != nil {
		e.gate.Unlock()
	}
}

// addPromote records a run for promotion, deduplicating.
func (e *Engine) addPromote(run string) {
	for _, r := range e.promote {
		if r == run {
			return
		}
	}
	e.promote = append(e.promote, run)
}

// ProcessBatch evaluates one batch with tier faulting: cold ranges
// touched by writes, RMWs, or scans are promoted before the batch
// executes; cold point searches are answered from their runs without
// promotion (unless Config.PromoteReads); everything else runs on the
// inner engine unchanged. After the batch, one bounded maintenance
// step may demote.
func (e *Engine) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	if e.Err() != nil {
		return
	}

	// Classify: which cold ranges must fault in, which searches can be
	// served from disk. Every access also feeds the heat histogram the
	// demotion policy reads.
	e.promote = e.promote[:0]
	e.coldSearch = e.coldSearch[:0]
	promoteReads := e.store.PromoteReads()
	for i := range qs {
		q := &qs[i]
		e.store.RecordAccess(q.Key)
		switch q.Op {
		case keys.OpSearch:
			if r := e.store.At(q.Key); r.State == Cold {
				if promoteReads {
					e.addPromote(r.Run)
				} else {
					e.coldSearch = append(e.coldSearch, i)
				}
			}
		case keys.OpInsert, keys.OpDelete, keys.OpRMW:
			if r := e.store.At(q.Key); r.State == Cold {
				e.addPromote(r.Run)
			}
		case keys.OpScan:
			if q.Key2 > q.Key { // non-empty scan; Key2 is exclusive
				e.cold = e.store.ColdOverlapping(e.cold[:0], q.Key, q.Key2-1)
				for _, cr := range e.cold {
					e.addPromote(cr.Run)
				}
			}
		}
	}

	if len(e.promote) > 0 {
		e.lock()
		err := e.promoteAll()
		e.unlock()
		if err != nil {
			e.fail(err)
			return
		}
	}

	if len(e.coldSearch) == 0 {
		e.inner.ProcessBatch(qs, rs)
	} else if err := e.processWithColdSearches(qs, rs); err != nil {
		e.fail(err)
		return
	}

	e.store.DecayHeat()
	e.lock()
	err := e.maintain()
	e.store.SetResident(int64(e.inner.StoredLen()))
	e.unlock()
	if err != nil {
		e.fail(err)
	}
}

// processWithColdSearches answers the batch's cold point searches from
// their runs and runs everything else on the inner engine. The QSAT
// router chains results by batch position, so the batch must stay
// dense: instead of dropping the cold searches, each is rewritten in
// place to a search for the top key — always hot by the residency
// invariant — which executes as an ordinary query whose true answer is
// simply overwritten below from the run lookup. The rewrite is sound
// because a still-cold search's key cannot be written by this batch (a
// write, RMW, or overlapping scan would have promoted its range before
// execution), so the run's value is the key's value for the whole
// batch; and a search whose range WAS promoted this batch is hot again
// and is left to the inner engine untouched.
func (e *Engine) processWithColdSearches(qs []keys.Query, rs *keys.ResultSet) error {
	served := e.coldSearch[:0]
	e.coldKeys = e.coldKeys[:0]
	for _, i := range e.coldSearch {
		if e.store.At(qs[i].Key).State != Cold {
			continue
		}
		served = append(served, i)
		e.coldKeys = append(e.coldKeys, qs[i].Key)
		qs[i].Key = maxKey
	}
	e.coldSearch = served
	e.inner.ProcessBatch(qs, rs)
	// qs may have been reordered in place by the transform; the
	// original batch position (== Idx, queries are numbered on entry)
	// addresses the caller's result slot.
	for j, i := range served {
		v, found, err := e.store.Lookup(e.coldKeys[j])
		if err != nil {
			return err
		}
		rs.Set(int32(i), v, found)
	}
	return nil
}

// promoteAll faults in every range queued in e.promote. Caller holds
// the gate. Per run: read and verify the pairs, log+sync them (so the
// effect survives a crash after the manifest flip), commit the
// manifest hot, then insert into the tree. A crash between log and
// manifest leaves the range cold and the logged batch replays into it
// — recovery's purge of cold ranges makes that consistent (the run
// still holds the same values; DESIGN.md §14).
func (e *Engine) promoteAll() error {
	for _, name := range e.promote {
		ks, vs, err := e.store.RunPairs(name)
		if err != nil {
			return err
		}
		if e.log != nil && len(ks) > 0 {
			lq := make([]keys.Query, len(ks))
			for i := range ks {
				lq[i] = keys.Insert(ks[i], vs[i])
			}
			if err := e.log.CommitBatch(lq); err != nil {
				return fmt.Errorf("tier: promote log: %w", err)
			}
			if err := e.log.Sync(); err != nil {
				return fmt.Errorf("tier: promote sync: %w", err)
			}
		}
		if err := e.store.CommitPromote(name); err != nil {
			return err
		}
		e.inner.InsertPairs(ks, vs)
	}
	return nil
}

// maintain demotes while the resident tree exceeds the budget, at most
// maxActions ranges per batch boundary. Caller holds the gate.
func (e *Engine) maintain() error {
	budget := e.store.MaxResident()
	if budget <= 0 {
		return nil
	}
	for a := 0; a < e.maxActions && e.inner.StoredLen() > budget; a++ {
		acted, err := e.demoteOne()
		if err != nil {
			return err
		}
		if !acted {
			return nil
		}
	}
	return nil
}

// demoteOne spills the coldest non-empty victim range: drain the
// caches for it, dump its pairs (clipping to the run cap), sync the
// log so every batch whose effects the dump holds is durable, write
// the run + manifest, then delete the range from the tree. A failure
// before the manifest commit is a clean abort (the range stays hot).
func (e *Engine) demoteOne() (bool, error) {
	for _, c := range e.store.Victims(0) {
		e.inner.DrainCacheRange(c.Lo, c.Hi+1) // c.Hi < maxKey by construction
		ks, vs, more := e.inner.RangeDump(c.Lo, c.Hi, e.store.RunKeys())
		if len(ks) == 0 {
			continue // empty victim: nothing to spill, try the next
		}
		lo, hi := c.Lo, c.Hi
		if more {
			// The run cap truncated the dump: shrink the cold range to
			// what the run actually holds.
			hi = ks[len(ks)-1]
		}
		if e.log != nil {
			if err := e.log.Sync(); err != nil {
				return false, fmt.Errorf("tier: demote sync: %w", err)
			}
		}
		if err := e.store.Demote(lo, hi, ks, vs); err != nil {
			return false, err
		}
		e.inner.DeleteRange(lo, hi)
		return true, nil
	}
	return false, nil
}

// ProcessStream serializes the stream through ProcessBatch: tier
// classification and maintenance need exclusive batch boundaries, so
// the tiered path trades the two-stage pipeline overlap away.
func (e *Engine) ProcessStream(in <-chan *core.Job, emit func(*core.Job)) {
	rs := keys.NewResultSet(0)
	for j := range in {
		if j.RS == nil {
			j.RS = rs
		}
		j.RS.Reset(len(j.Qs))
		e.ProcessBatch(j.Qs, j.RS)
		emit(j)
	}
}

// PurgeCold removes every cold range's keys from the inner engine —
// the recovery reconciliation step (DESIGN.md §14): replaying the full
// log re-creates keys that were later demoted, so after replay the
// manifest's cold ranges are drained from cache and tree and their
// runs stay authoritative. While a range is cold no batch writes to it
// (a write would have promoted it first, logging the run's pairs), so
// the purged tree state and the run agree.
func (e *Engine) PurgeCold() {
	e.lock()
	defer e.unlock()
	for _, r := range e.store.Residency().Ranges() {
		if r.State != Cold {
			continue
		}
		// Cold ranges never reach the top key (residency.go rejects
		// them), so Hi+1 cannot overflow.
		e.inner.DrainCacheRange(r.Lo, r.Hi+1)
		e.inner.DeleteRange(r.Lo, r.Hi)
	}
}

// Flush delegates to the inner engine.
func (e *Engine) Flush() { e.inner.Flush() }

// Train forwards hot keys to the inner engine's cache, filtering out
// keys in cold ranges: training a cold key would admit a clean
// "absent" cache entry for a key the run actually stores.
func (e *Engine) Train(hot []keys.Key) {
	filtered := make([]keys.Key, 0, len(hot))
	for _, k := range hot {
		if e.store.At(k).State == Hot {
			filtered = append(filtered, k)
		}
	}
	e.inner.Train(filtered)
}

// Stats returns the inner engine's last-batch statistics.
func (e *Engine) Stats() *stats.Batch { return e.inner.Stats() }

// Close shuts down the inner engine.
func (e *Engine) Close() { e.inner.Close() }

// Len returns the logical store size: resident pairs plus cold pairs.
func (e *Engine) Len() int {
	e.lock()
	defer e.unlock()
	e.inner.Flush()
	n := e.inner.StoredLen()
	for _, r := range e.store.runs {
		n += r.Count
	}
	return n
}

// Scan visits every logical pair in ascending key order — hot ranges
// from the tree, cold ranges from their runs — until fn returns false.
// A run read failure poisons the engine (see Err) and is returned.
func (e *Engine) Scan(fn func(k keys.Key, v keys.Value) bool) error {
	e.lock()
	defer e.unlock()
	if err := e.scanLocked(fn); err != nil {
		e.fail(err)
		return err
	}
	return nil
}

// scanLocked is Scan's body; the caller holds the gate exclusively.
func (e *Engine) scanLocked(fn func(k keys.Key, v keys.Value) bool) error {
	e.inner.Flush()
	const chunk = 4096
	for _, rr := range e.store.Residency().Ranges() {
		if rr.State == Cold {
			ks, vs, err := e.store.RunPairs(rr.Run)
			if err != nil {
				return err
			}
			for i := range ks {
				if !fn(ks[i], vs[i]) {
					return nil
				}
			}
			continue
		}
		lo := rr.Lo
		for {
			ks, vs, more := e.inner.RangeDump(lo, rr.Hi, chunk)
			for i := range ks {
				if !fn(ks[i], vs[i]) {
					return nil
				}
			}
			if !more {
				break
			}
			lo = ks[len(ks)-1] + 1
		}
	}
	return nil
}

// DumpLocked returns every logical pair in ascending key order,
// materializing cold runs (the portable-save path). The caller must
// hold the scheduling gate exclusively — qtrans.Save does.
func (e *Engine) DumpLocked() (ks []keys.Key, vs []keys.Value, err error) {
	err = e.scanLocked(func(k keys.Key, v keys.Value) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	if err != nil {
		e.fail(err)
	}
	return ks, vs, err
}
