package tier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/keys"
)

// State is a residency range's tier.
type State uint8

const (
	// Hot ranges are served by the in-memory tree.
	Hot State = iota
	// Cold ranges are served by exactly one on-disk run.
	Cold
)

// Range is one residency interval: the inclusive key range [Lo, Hi]
// and, for cold ranges, the run file that owns it.
type Range struct {
	Lo, Hi keys.Key
	State  State
	// Run is the backing run's file name (cold ranges only).
	Run string
}

// Residency partitions the full uint64 key space into hot and cold
// ranges: sorted, non-overlapping, gap-free intervals whose union is
// exactly [0, MaxUint64]. Adjacent hot ranges are always coalesced, so
// every hot range is maximal; cold ranges are never coalesced (each is
// one run). residency_test.go fuzzes interleavings of demote/promote
// against a brute-force per-key oracle and demands the partition
// invariant after every step.
type Residency struct {
	rs []Range
}

// maxKey is the top of the key space (inclusive bounds avoid the
// overflow a half-open representation would hit here).
const maxKey = keys.Key(^uint64(0))

// NewResidency returns an all-hot map.
func NewResidency() *Residency {
	return &Residency{rs: []Range{{Lo: 0, Hi: maxKey, State: Hot}}}
}

// Clone returns an independent copy (the store mutates a clone and
// swaps it in only after the manifest write commits the change).
func (m *Residency) Clone() *Residency {
	return &Residency{rs: append([]Range(nil), m.rs...)}
}

// Ranges returns the partition in ascending key order. The slice is
// the map's own storage; treat it as read-only.
func (m *Residency) Ranges() []Range { return m.rs }

// find returns the index of the range containing k.
func (m *Residency) find(k keys.Key) int {
	// First range with Hi >= k; the partition invariant guarantees it
	// exists and contains k.
	return sort.Search(len(m.rs), func(i int) bool { return m.rs[i].Hi >= k })
}

// At returns the range containing k.
func (m *Residency) At(k keys.Key) Range { return m.rs[m.find(k)] }

// ColdOverlapping appends to out every cold range intersecting the
// inclusive range [lo, hi] and returns the extended slice.
func (m *Residency) ColdOverlapping(out []Range, lo, hi keys.Key) []Range {
	for i := m.find(lo); i < len(m.rs) && m.rs[i].Lo <= hi; i++ {
		if m.rs[i].State == Cold {
			out = append(out, m.rs[i])
		}
	}
	return out
}

// Demote carves [lo, hi] out of the hot space as a cold range backed
// by run. The target must lie entirely inside a single hot range
// (victim selection clips to one, so a violation is a logic bug). The
// top key of the space is never demoted, so Hi+1 on a cold range can
// never overflow in the engine's exclusive-bound drain calls.
func (m *Residency) Demote(lo, hi keys.Key, run string) error {
	if lo > hi {
		return fmt.Errorf("tier: demote range [%d, %d] inverted", lo, hi)
	}
	if hi == maxKey {
		return fmt.Errorf("tier: demote range reaches the top of the key space")
	}
	i := m.find(lo)
	r := m.rs[i]
	if r.State != Hot || r.Hi < hi {
		return fmt.Errorf("tier: demote [%d, %d] not inside one hot range [%d, %d]", lo, hi, r.Lo, r.Hi)
	}
	repl := make([]Range, 0, 3)
	if r.Lo < lo {
		repl = append(repl, Range{Lo: r.Lo, Hi: lo - 1, State: Hot})
	}
	repl = append(repl, Range{Lo: lo, Hi: hi, State: Cold, Run: run})
	if r.Hi > hi {
		repl = append(repl, Range{Lo: hi + 1, Hi: r.Hi, State: Hot})
	}
	m.rs = append(m.rs[:i], append(repl, m.rs[i+1:]...)...)
	return nil
}

// Promote turns the cold range backed by run hot again, coalescing it
// with adjacent hot neighbors so hot ranges stay maximal.
func (m *Residency) Promote(run string) error {
	i := -1
	for j, r := range m.rs {
		if r.State == Cold && r.Run == run {
			i = j
			break
		}
	}
	if i < 0 {
		return fmt.Errorf("tier: promote: no cold range backed by %s", run)
	}
	lo, hi := m.rs[i].Lo, m.rs[i].Hi
	s, e := i, i+1
	if s > 0 && m.rs[s-1].State == Hot {
		lo = m.rs[s-1].Lo
		s--
	}
	if e < len(m.rs) && m.rs[e].State == Hot {
		hi = m.rs[e].Hi
		e++
	}
	merged := Range{Lo: lo, Hi: hi, State: Hot}
	m.rs = append(m.rs[:s], append([]Range{merged}, m.rs[e:]...)...)
	return nil
}

// ColdRuns returns the run names of every cold range, in key order.
func (m *Residency) ColdRuns() []string {
	var out []string
	for _, r := range m.rs {
		if r.State == Cold {
			out = append(out, r.Run)
		}
	}
	return out
}

// validate checks the partition invariant: sorted, gap-free,
// non-overlapping cover of [0, MaxUint64], hot ranges maximal, cold
// ranges uniquely named.
func (m *Residency) validate() error {
	if len(m.rs) == 0 {
		return fmt.Errorf("tier: residency empty")
	}
	if m.rs[0].Lo != 0 || m.rs[len(m.rs)-1].Hi != maxKey {
		return fmt.Errorf("tier: residency does not span the key space")
	}
	seen := make(map[string]bool)
	for i, r := range m.rs {
		if r.Lo > r.Hi {
			return fmt.Errorf("tier: residency range %d inverted", i)
		}
		if i > 0 {
			prev := m.rs[i-1]
			if r.Lo != prev.Hi+1 {
				return fmt.Errorf("tier: residency gap/overlap between ranges %d and %d", i-1, i)
			}
			if prev.State == Hot && r.State == Hot {
				return fmt.Errorf("tier: adjacent hot ranges %d and %d not coalesced", i-1, i)
			}
		}
		switch r.State {
		case Hot:
			if r.Run != "" {
				return fmt.Errorf("tier: hot range %d names a run", i)
			}
		case Cold:
			if r.Run == "" || seen[r.Run] {
				return fmt.Errorf("tier: cold range %d run %q missing or duplicated", i, r.Run)
			}
			if r.Hi == maxKey {
				return fmt.Errorf("tier: cold range %d reaches the top of the key space", i)
			}
			seen[r.Run] = true
		default:
			return fmt.Errorf("tier: residency range %d state %d invalid", i, r.State)
		}
	}
	return nil
}

// Residency/manifest encoding (little-endian):
//
//	magic   [4]byte "QTM1"
//	count   u32
//	ranges  count × { lo u64, hi u64, state u8, runlen u16, run bytes }
//	crc     u32 CRC32C over count..ranges
//
// The same bytes serve as the tier directory's MANIFEST payload and as
// the residency section of a tiered snapshot, so both are written with
// the identical atomic temp+rename discipline.

var manifestMagic = [4]byte{'Q', 'T', 'M', '1'}

// encode serializes the map.
func (m *Residency) encode() []byte {
	size := 8
	for _, r := range m.rs {
		size += 19 + len(r.Run)
	}
	out := make([]byte, 4, size+4)
	copy(out, manifestMagic[:])
	var b [19]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(m.rs)))
	out = append(out, b[0:4]...)
	for _, r := range m.rs {
		binary.LittleEndian.PutUint64(b[0:8], uint64(r.Lo))
		binary.LittleEndian.PutUint64(b[8:16], uint64(r.Hi))
		b[16] = byte(r.State)
		binary.LittleEndian.PutUint16(b[17:19], uint16(len(r.Run)))
		out = append(out, b[:19]...)
		out = append(out, r.Run...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(out[4:], crcTable))
	return append(out, crc[:]...)
}

// decodeResidency parses and validates an encoded map.
func decodeResidency(data []byte) (*Residency, error) {
	if len(data) < 12 || [4]byte(data[0:4]) != manifestMagic {
		return nil, fmt.Errorf("tier: residency bad magic or short payload")
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[4:len(data)-4], crcTable); got != stored {
		return nil, fmt.Errorf("tier: residency checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	body := data[8 : len(data)-4]
	count := int(binary.LittleEndian.Uint32(data[4:8]))
	m := &Residency{rs: make([]Range, 0, count)}
	off := 0
	for i := 0; i < count; i++ {
		if off+19 > len(body) {
			return nil, fmt.Errorf("tier: residency truncated at range %d", i)
		}
		r := Range{
			Lo:    keys.Key(binary.LittleEndian.Uint64(body[off : off+8])),
			Hi:    keys.Key(binary.LittleEndian.Uint64(body[off+8 : off+16])),
			State: State(body[off+16]),
		}
		rl := int(binary.LittleEndian.Uint16(body[off+17 : off+19]))
		off += 19
		if off+rl > len(body) {
			return nil, fmt.Errorf("tier: residency truncated at range %d name", i)
		}
		r.Run = string(body[off : off+rl])
		off += rl
		m.rs = append(m.rs, r)
	}
	if off != len(body) {
		return nil, fmt.Errorf("tier: residency has %d trailing bytes", len(body)-off)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}
