package tier

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/wal"
)

const (
	// tmpSuffix marks in-flight files; Open discards them (a crash
	// mid-write leaves a temp that never became visible).
	tmpSuffix = ".tmp"
	// manifestName is the residency map's file, the recovery authority
	// for which ranges are cold (DESIGN.md §14).
	manifestName = "MANIFEST"
	// runSuffix is the run file extension.
	runSuffix = ".run"
)

// Config sizes a tier store.
type Config struct {
	// Dir is the tier directory (runs + MANIFEST live here).
	Dir string
	// FS is the filesystem; nil means the real OS filesystem. Tests
	// inject faultfs here.
	FS wal.FS
	// MaxResident is the resident key budget: while the in-memory tree
	// stores more keys than this, batch boundaries demote. Zero
	// disables demotion (the store still serves existing cold ranges).
	MaxResident int
	// RunKeys caps the pairs per demoted run (default 4096).
	RunKeys int
	// Buckets is the heat histogram's bucket count (default 64).
	Buckets int
	// KeyMax bounds the demotable key space: only [0, KeyMax] is ever
	// demoted, and the heat histogram spans it. Zero means the full
	// key space.
	KeyMax keys.Key
	// PromoteReads promotes a cold range on any access; by default
	// point searches are served from the run without promotion and
	// only writes, RMWs, and scans force the range hot.
	PromoteReads bool
	// Metrics receives the tier_* series; nil uses a private registry.
	Metrics *metrics.Registry
}

// Stats is a point-in-time tier summary.
type Stats struct {
	ResidentKeys int64 // keys stored in the in-memory tree
	ColdKeys     int64 // keys stored in runs
	ColdRanges   int   // cold residency ranges (== run files)
	DiskBytes    int64 // total run file bytes
	Promotions   int64 // cold ranges faulted back in
	Demotions    int64 // ranges spilled to disk
	Faults       int64 // disk reads (point lookups + promotions)
}

// Store owns the tier directory: the residency map, the open run
// handles, and the heat histogram driving victim selection. All
// mutating calls come from the single engine caller (the wrapper
// serializes batches); reads of the metrics gauges are safe from
// anywhere.
type Store struct {
	fs  wal.FS
	dir string
	cfg Config

	res  *Residency
	runs map[string]*Run
	seq  uint64
	heat *shard.Heat
	// recovered reports that Open found an existing manifest (vs.
	// creating a fresh all-hot one) — qtrans recovery uses it to
	// detect a tier directory that was lost while its snapshot still
	// references cold ranges.
	recovered bool
	// demoteMax is the highest demotable key: min(KeyMax, maxKey-1),
	// so a cold range's Hi+1 never overflows in the engine's
	// exclusive-bound drain calls.
	demoteMax keys.Key

	mResident, mCold, mRuns, mDisk   *metrics.Gauge
	cPromotions, cDemotions, cFaults *metrics.Counter
}

// heatDecayShift is the EWMA decay applied per batch (1/8 per step,
// matching the autoshard controller's responsiveness).
const heatDecayShift = 3

// Open opens (or creates) the tier directory. With wipe set, any
// existing state is discarded first — the non-durable path, where cold
// runs could not be reconciled with a log anyway. Without wipe, the
// MANIFEST is the recovery authority: every run it references must
// open and verify (a missing or corrupt referenced run is acked data
// lost, a fatal error), while temp files and unreferenced runs are
// leftovers of an interrupted action whose effects the log still
// holds, and are discarded.
func Open(cfg Config, wipe bool) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("tier: no directory configured")
	}
	if cfg.FS == nil {
		cfg.FS = wal.OS()
	}
	if cfg.RunKeys <= 0 {
		cfg.RunKeys = 4096
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	s := &Store{
		fs:        cfg.FS,
		dir:       cfg.Dir,
		cfg:       cfg,
		runs:      make(map[string]*Run),
		heat:      shard.NewHeat(cfg.Buckets, cfg.KeyMax, heatDecayShift),
		demoteMax: maxKey - 1,

		mResident:   cfg.Metrics.Gauge("tier_resident_keys"),
		mCold:       cfg.Metrics.Gauge("tier_cold_keys"),
		mRuns:       cfg.Metrics.Gauge("tier_cold_ranges"),
		mDisk:       cfg.Metrics.Gauge("tier_disk_bytes"),
		cPromotions: cfg.Metrics.Counter("tier_promotions"),
		cDemotions:  cfg.Metrics.Counter("tier_demotions"),
		cFaults:     cfg.Metrics.Counter("tier_faults"),
	}
	if cfg.KeyMax != 0 && cfg.KeyMax < s.demoteMax {
		s.demoteMax = cfg.KeyMax
	}
	if err := s.fs.MkdirAll(s.dir); err != nil {
		return nil, fmt.Errorf("tier: mkdir: %w", err)
	}
	names, err := s.fs.List(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tier: list: %w", err)
	}
	if wipe {
		for _, n := range names {
			if err := s.fs.Remove(filepath.Join(s.dir, n)); err != nil {
				return nil, fmt.Errorf("tier: wipe: %w", err)
			}
		}
		names = nil
	}

	// Drop in-flight temp files and recover the run-name sequence from
	// everything present, referenced or not, so a new run never reuses
	// the name of a leftover about to be discarded.
	var manifest []byte
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			if err := s.fs.Remove(filepath.Join(s.dir, n)); err != nil {
				return nil, fmt.Errorf("tier: discard temp: %w", err)
			}
			continue
		}
		if q, ok := parseRunSeq(n); ok && q >= s.seq {
			s.seq = q + 1
		}
		if n == manifestName {
			manifest, err = s.readFile(n)
			if err != nil {
				return nil, fmt.Errorf("tier: manifest: %w", err)
			}
		}
	}

	if manifest == nil {
		// Fresh directory: all-hot residency, persisted immediately so
		// a durable tier directory always carries its authority file.
		s.res = NewResidency()
		if err := s.writeManifest(s.res); err != nil {
			return nil, err
		}
	} else {
		s.recovered = true
		s.res, err = decodeResidency(manifest)
		if err != nil {
			return nil, err
		}
		for _, name := range s.res.ColdRuns() {
			r, err := OpenRun(s.fs, s.dir, name)
			if err != nil {
				return nil, fmt.Errorf("tier: manifest references unusable run: %w", err)
			}
			s.runs[name] = r
		}
		// Cross-check run bounds against the residency ranges they
		// back before trusting lookups to them.
		for _, rr := range s.res.Ranges() {
			if rr.State != Cold {
				continue
			}
			r := s.runs[rr.Run]
			if r.Lo != rr.Lo || r.Hi != rr.Hi {
				return nil, fmt.Errorf("tier: run %s bounds [%d, %d] disagree with residency [%d, %d]",
					rr.Run, r.Lo, r.Hi, rr.Lo, rr.Hi)
			}
		}
		// Unreferenced runs are interrupted actions; discard them.
		for _, n := range names {
			if strings.HasSuffix(n, runSuffix) && s.runs[n] == nil {
				if err := s.fs.Remove(filepath.Join(s.dir, n)); err != nil {
					return nil, fmt.Errorf("tier: discard orphan run: %w", err)
				}
			}
		}
	}
	s.refreshGauges()
	return s, nil
}

// parseRunSeq extracts the sequence number from a run file name.
func parseRunSeq(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, runSuffix)
	if !ok {
		return 0, false
	}
	q, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return q, true
}

// readFile slurps one file through the forward-only FS surface.
func (s *Store) readFile(name string) ([]byte, error) {
	f, err := s.fs.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// writeManifest persists a residency map with the snapshot discipline:
// temp, fsync, rename. Only after it returns may the in-memory map be
// swapped to the one written.
func (s *Store) writeManifest(m *Residency) error {
	tmp := filepath.Join(s.dir, manifestName+tmpSuffix)
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("tier: manifest create: %w", err)
	}
	if _, err := f.Write(m.encode()); err != nil {
		f.Close()
		return fmt.Errorf("tier: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("tier: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tier: manifest close: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("tier: manifest rename: %w", err)
	}
	return nil
}

// refreshGauges recomputes the derived cold-side gauges.
func (s *Store) refreshGauges() {
	var ck, db int64
	for _, r := range s.runs {
		ck += int64(r.Count)
		db += r.Bytes
	}
	s.mCold.Set(ck)
	s.mRuns.Set(int64(len(s.runs)))
	s.mDisk.Set(db)
}

// SetResident publishes the in-memory tree's stored key count.
func (s *Store) SetResident(n int64) { s.mResident.Set(n) }

// Residency returns the live map (read-only to callers).
func (s *Store) Residency() *Residency { return s.res }

// Recovered reports whether Open found an existing manifest.
func (s *Store) Recovered() bool { return s.recovered }

// DecodeResidency parses a serialized residency map (the snapshot's
// embedded copy), validating structure and checksum.
func DecodeResidency(data []byte) (*Residency, error) { return decodeResidency(data) }

// EncodedResidency returns the map's serialized form for embedding in
// a tiered snapshot.
func (s *Store) EncodedResidency() []byte { return s.res.encode() }

// At returns the residency range containing k.
func (s *Store) At(k keys.Key) Range { return s.res.At(k) }

// ColdOverlapping appends the cold ranges intersecting [lo, hi].
func (s *Store) ColdOverlapping(out []Range, lo, hi keys.Key) []Range {
	return s.res.ColdOverlapping(out, lo, hi)
}

// RecordAccess feeds one key access into the heat histogram.
func (s *Store) RecordAccess(k keys.Key) { s.heat.Record(k) }

// DecayHeat applies one per-batch EWMA decay step.
func (s *Store) DecayHeat() { s.heat.Decay() }

// PromoteReads reports whether point reads force promotion.
func (s *Store) PromoteReads() bool { return s.cfg.PromoteReads }

// MaxResident returns the resident key budget (0 = unlimited).
func (s *Store) MaxResident() int { return s.cfg.MaxResident }

// RunKeys returns the per-run pair cap.
func (s *Store) RunKeys() int { return s.cfg.RunKeys }

// Stats summarizes the tier.
func (s *Store) Stats() Stats {
	return Stats{
		ResidentKeys: s.mResident.Value(),
		ColdKeys:     s.mCold.Value(),
		ColdRanges:   len(s.runs),
		DiskBytes:    s.mDisk.Value(),
		Promotions:   s.cPromotions.Value(),
		Demotions:    s.cDemotions.Value(),
		Faults:       s.cFaults.Value(),
	}
}

// Lookup answers a point search for a key inside a cold range straight
// from its run.
func (s *Store) Lookup(k keys.Key) (keys.Value, bool, error) {
	rr := s.res.At(k)
	if rr.State != Cold {
		return 0, false, fmt.Errorf("tier: lookup of hot key %d", k)
	}
	s.cFaults.Add(1)
	return s.runs[rr.Run].Get(s.fs, s.dir, k)
}

// Victims returns up to max candidate demotion ranges (max <= 0 means
// no cap — every bucket's intersections): intersections of the coldest
// heat buckets with the current hot ranges, coldest first, clipped to
// the demotable key space. Candidates may hold zero stored keys — the
// engine skips those, which is why the demotion path scans uncapped: a
// cap's worth of coldest buckets can all be empty key space (untouched
// buckets have zero heat and no stored keys), and stopping there would
// stall demotion while genuinely demotable buckets wait right behind.
func (s *Store) Victims(max int) []Range {
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	type bh struct {
		b int
		v int64
	}
	order := make([]bh, s.heat.Buckets())
	for i := range order {
		order[i] = bh{b: i, v: s.heat.Value(i)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].v != order[j].v {
			return order[i].v < order[j].v
		}
		return order[i].b < order[j].b
	})
	var out []Range
	for _, e := range order {
		blo, bhi := s.heat.Range(e.b)
		if bhi > s.demoteMax {
			bhi = s.demoteMax
		}
		if blo > bhi {
			continue
		}
		for i := s.res.find(blo); i < len(s.res.rs) && s.res.rs[i].Lo <= bhi; i++ {
			r := s.res.rs[i]
			if r.State != Hot {
				continue
			}
			c := Range{Lo: r.Lo, Hi: r.Hi, State: Hot}
			if c.Lo < blo {
				c.Lo = blo
			}
			if c.Hi > bhi {
				c.Hi = bhi
			}
			out = append(out, c)
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}

// Demote writes [lo, hi]'s pairs as a new run and commits the range
// cold: run file first (temp+rename), then manifest, then the
// in-memory swap — so a crash at any point either leaves the range hot
// (plus a discardable orphan) or cold with a complete run. The caller
// must have drained caches, dumped the pairs, and synced the log
// before calling, and must delete the range from the tree only after
// this returns.
func (s *Store) Demote(lo, hi keys.Key, ks []keys.Key, vs []keys.Value) error {
	name := fmt.Sprintf("%08d%s", s.seq, runSuffix)
	r, err := WriteRun(s.fs, s.dir, name, lo, hi, ks, vs)
	if err != nil {
		return err
	}
	next := s.res.Clone()
	if err := next.Demote(lo, hi, name); err != nil {
		s.fs.Remove(filepath.Join(s.dir, name))
		return err
	}
	if err := s.writeManifest(next); err != nil {
		s.fs.Remove(filepath.Join(s.dir, name))
		return err
	}
	s.seq++
	s.res = next
	s.runs[name] = r
	s.cDemotions.Add(1)
	s.refreshGauges()
	return nil
}

// RunPairs reads every pair of the named run (the promotion read).
func (s *Store) RunPairs(name string) ([]keys.Key, []keys.Value, error) {
	r := s.runs[name]
	if r == nil {
		return nil, nil, fmt.Errorf("tier: no open run %s", name)
	}
	s.cFaults.Add(1)
	return r.Pairs(s.fs, s.dir)
}

// CommitPromote marks the named run's range hot again and deletes the
// run file. The caller must have logged and synced the run's pairs
// first (so a crash after the manifest flip replays them), and must
// insert them into the tree only after this returns.
func (s *Store) CommitPromote(name string) error {
	if s.runs[name] == nil {
		return fmt.Errorf("tier: no open run %s", name)
	}
	next := s.res.Clone()
	if err := next.Promote(name); err != nil {
		return err
	}
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.res = next
	delete(s.runs, name)
	// Best-effort: an undeleted run is now unreferenced and the next
	// Open discards it.
	s.fs.Remove(filepath.Join(s.dir, name))
	s.cPromotions.Add(1)
	s.refreshGauges()
	return nil
}
