// Package tier spills cold key ranges out of the in-memory PALM tree
// into immutable sorted runs on disk (DESIGN.md §14): a residency map
// partitions the key space into hot ranges (served by the tree) and
// cold ranges (each backed by exactly one run file), the engine
// wrapper faults cold ranges back in when batches touch them, and a
// heat histogram — the autoshard machinery of DESIGN.md §13 reused —
// picks demotion victims from the coldest buckets. All file I/O goes
// through wal.FS with the PR 3 temp+fsync+rename discipline, so the
// crash-recovery proof layer (internal/faultfs) covers every tiering
// path.
package tier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"repro/internal/keys"
	"repro/internal/wal"
)

// Run file format (little-endian):
//
//	magic   [4]byte "QRN1"
//	header  frame{ lo u64, hi u64, count u64, nblocks u32, blockPairs u32 }
//	index   frame{ nblocks × { firstKey u64, off u64, plen u32 } }
//	blocks  nblocks × frame{ pairs × { key u64, value u64 } }
//
// where frame{payload} = u32 plen, u32 crc32c(payload), payload. Keys
// are strictly ascending across the whole file and all lie inside
// [lo, hi] (the run's inclusive residency range, which may be wider
// than the first..last stored key — absent keys in the range answer
// "not found" from the run alone). Block offsets in the index are
// relative to the end of the index frame, so a point lookup reads the
// small prefix (header + index), skips to one block, and CRC-verifies
// only that block. Every byte of the file is covered by a checksum or
// by a structural cross-check (counts, bounds, ascending keys), so a
// torn or bit-flipped run is reported as an error, never silently
// served (run_test.go corrupts every byte offset and demands so).
//
// Runs are immutable: written once to a ".tmp" name, fsynced, and
// renamed into place. A crash mid-write leaves only a temp file or an
// unreferenced run, both of which Open discards.

var runMagic = [4]byte{'Q', 'R', 'N', '1'}

// runBlockPairs is the number of key/value pairs per CRC-framed block.
const runBlockPairs = 256

// crcTable is the CRC32C table shared by every persisted format in
// this repository.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fence is one sparse-index entry: the first key of a block and where
// its frame starts relative to the end of the index frame.
type fence struct {
	first keys.Key
	off   int64
	plen  uint32
}

// Run is one immutable sorted run: the in-memory handle carries the
// bounds, the sparse fence index, and the file geometry needed to
// reach a block without random access (wal.FS files only read
// forward, so lookups skip to the block's offset sequentially).
type Run struct {
	// Name is the file's base name inside the tier directory.
	Name string
	// Lo and Hi are the inclusive bounds of the residency range the
	// run covers (every key in [Lo, Hi] is answered by this run alone
	// while the range is cold).
	Lo, Hi keys.Key
	// Count is the number of stored pairs.
	Count int
	// Bytes is the file size.
	Bytes int64

	fence      []fence
	blockPairs int
	dataOff    int64 // file offset of the first block frame
}

// frameTo appends frame{payload} to w, returning bytes written.
func frameTo(w io.Writer, payload []byte) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 8 + int64(len(payload)), nil
}

// readFrame reads one frame with an expected maximum payload size,
// verifying the checksum.
func readFrame(r io.Reader, maxLen uint32) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if plen > maxLen {
		return nil, fmt.Errorf("frame length %d exceeds limit %d", plen, maxLen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("frame checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, nil
}

// WriteRun atomically writes a new run covering [lo, hi] with the
// given ascending pairs: everything goes to name+".tmp", is fsynced,
// and renamed to name, so a power cut leaves either no run or a
// complete one. Returns the opened handle.
func WriteRun(fs wal.FS, dir, name string, lo, hi keys.Key, ks []keys.Key, vs []keys.Value) (*Run, error) {
	if len(ks) != len(vs) {
		return nil, fmt.Errorf("tier: run %s: %d keys for %d values", name, len(ks), len(vs))
	}
	if len(ks) == 0 {
		// An empty run can only come from a caller bug: the engine
		// skips empty victim dumps before demoting.
		return nil, fmt.Errorf("tier: run %s: no pairs", name)
	}
	for i, k := range ks {
		if k < lo || k > hi {
			return nil, fmt.Errorf("tier: run %s: key %d outside range [%d, %d]", name, k, lo, hi)
		}
		if i > 0 && k <= ks[i-1] {
			return nil, fmt.Errorf("tier: run %s: keys not ascending at %d", name, i)
		}
	}
	nblocks := (len(ks) + runBlockPairs - 1) / runBlockPairs

	r := &Run{
		Name:       name,
		Lo:         lo,
		Hi:         hi,
		Count:      len(ks),
		blockPairs: runBlockPairs,
	}

	// Assemble the block payloads first: the index needs their sizes.
	blocks := make([][]byte, nblocks)
	off := int64(0)
	r.fence = make([]fence, nblocks)
	for b := 0; b < nblocks; b++ {
		s, e := b*runBlockPairs, (b+1)*runBlockPairs
		if e > len(ks) {
			e = len(ks)
		}
		p := make([]byte, 16*(e-s))
		for i := s; i < e; i++ {
			binary.LittleEndian.PutUint64(p[16*(i-s):], uint64(ks[i]))
			binary.LittleEndian.PutUint64(p[16*(i-s)+8:], uint64(vs[i]))
		}
		blocks[b] = p
		r.fence[b] = fence{first: ks[s], off: off, plen: uint32(len(p))}
		off += 8 + int64(len(p))
	}

	hdr := make([]byte, 32)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(lo))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(hi))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(ks)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(nblocks))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(runBlockPairs))

	idx := make([]byte, 20*nblocks)
	for b, fe := range r.fence {
		binary.LittleEndian.PutUint64(idx[20*b:], uint64(fe.first))
		binary.LittleEndian.PutUint64(idx[20*b+8:], uint64(fe.off))
		binary.LittleEndian.PutUint32(idx[20*b+16:], fe.plen)
	}

	tmp := filepath.Join(dir, name+tmpSuffix)
	f, err := fs.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("tier: run create: %w", err)
	}
	size := int64(0)
	write := func(chunks ...[]byte) error {
		for _, c := range chunks {
			n, err := frameTo(f, c)
			if err != nil {
				return err
			}
			size += n
		}
		return nil
	}
	if _, err := f.Write(runMagic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: run write: %w", err)
	}
	size += int64(len(runMagic))
	if err := write(hdr, idx); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: run write: %w", err)
	}
	r.dataOff = size
	if err := write(blocks...); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: run write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: run sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("tier: run close: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return nil, fmt.Errorf("tier: run rename: %w", err)
	}
	r.Bytes = size
	return r, nil
}

// OpenRun reads and verifies a run's header and fence index, returning
// the handle used for point lookups and full reads. It reads only the
// file's small prefix; block contents are verified lazily on access.
func OpenRun(fs wal.FS, dir, name string) (*Run, error) {
	f, err := fs.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("tier: run open %s: %w", name, err)
	}
	defer f.Close()
	fail := func(err error) (*Run, error) {
		return nil, fmt.Errorf("tier: run %s corrupt: %w", name, err)
	}

	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return fail(err)
	}
	if magic != runMagic {
		return fail(fmt.Errorf("bad magic %q", magic))
	}
	hdr, err := readFrame(f, 32)
	if err != nil {
		return fail(err)
	}
	if len(hdr) != 32 {
		return fail(fmt.Errorf("header length %d", len(hdr)))
	}
	r := &Run{
		Name:       name,
		Lo:         keys.Key(binary.LittleEndian.Uint64(hdr[0:8])),
		Hi:         keys.Key(binary.LittleEndian.Uint64(hdr[8:16])),
		Count:      int(binary.LittleEndian.Uint64(hdr[16:24])),
		blockPairs: int(binary.LittleEndian.Uint32(hdr[28:32])),
	}
	nblocks := int(binary.LittleEndian.Uint32(hdr[24:28]))
	if r.Lo > r.Hi || r.Count < 0 || r.blockPairs < 1 || nblocks < 0 ||
		nblocks != (r.Count+r.blockPairs-1)/r.blockPairs {
		return fail(fmt.Errorf("inconsistent header (lo %d hi %d count %d blocks %d×%d)",
			r.Lo, r.Hi, r.Count, nblocks, r.blockPairs))
	}
	idx, err := readFrame(f, uint32(20*nblocks))
	if err != nil {
		return fail(err)
	}
	if len(idx) != 20*nblocks {
		return fail(fmt.Errorf("index length %d for %d blocks", len(idx), nblocks))
	}
	r.dataOff = int64(len(runMagic)) + 8 + int64(len(hdr)) + 8 + int64(len(idx))
	r.fence = make([]fence, nblocks)
	expectOff := int64(0)
	for b := range r.fence {
		fe := fence{
			first: keys.Key(binary.LittleEndian.Uint64(idx[20*b:])),
			off:   int64(binary.LittleEndian.Uint64(idx[20*b+8:])),
			plen:  binary.LittleEndian.Uint32(idx[20*b+16:]),
		}
		want := r.blockPairs
		if b == nblocks-1 {
			want = r.Count - b*r.blockPairs
		}
		if fe.off != expectOff || int(fe.plen) != 16*want ||
			fe.first < r.Lo || fe.first > r.Hi ||
			(b > 0 && fe.first <= r.fence[b-1].first) {
			return fail(fmt.Errorf("inconsistent fence entry %d", b))
		}
		expectOff += 8 + int64(fe.plen)
		r.fence[b] = fe
	}
	r.Bytes = r.dataOff + expectOff
	return r, nil
}

// decodeBlock parses and validates one block's pairs.
func (r *Run) decodeBlock(b int, payload []byte) ([]keys.Key, []keys.Value, error) {
	fe := r.fence[b]
	if len(payload) != int(fe.plen) {
		return nil, nil, fmt.Errorf("tier: run %s block %d length %d", r.Name, b, len(payload))
	}
	n := len(payload) / 16
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	hi := r.Hi
	if b+1 < len(r.fence) {
		hi = r.fence[b+1].first - 1
	}
	for i := 0; i < n; i++ {
		ks[i] = keys.Key(binary.LittleEndian.Uint64(payload[16*i:]))
		vs[i] = keys.Value(binary.LittleEndian.Uint64(payload[16*i+8:]))
		if ks[i] > hi || (i == 0 && ks[i] != fe.first) || (i > 0 && ks[i] <= ks[i-1]) {
			return nil, nil, fmt.Errorf("tier: run %s block %d keys out of order or range", r.Name, b)
		}
	}
	return ks, vs, nil
}

// skipTo discards n bytes from a forward-only reader.
func skipTo(f io.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, f, n)
	return err
}

// Get answers a point lookup from the run: found is false when k lies
// in the run's range but is not stored. Only the target block is read
// and verified.
func (r *Run) Get(fs wal.FS, dir string, k keys.Key) (keys.Value, bool, error) {
	if k < r.Lo || k > r.Hi {
		return 0, false, fmt.Errorf("tier: run %s: key %d outside [%d, %d]", r.Name, k, r.Lo, r.Hi)
	}
	// Last fence entry with first <= k (none: the key precedes every
	// stored key and is absent).
	b := -1
	lo, hi := 0, len(r.fence)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if r.fence[mid].first <= k {
			b = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if b < 0 {
		return 0, false, nil
	}
	f, err := fs.Open(filepath.Join(dir, r.Name))
	if err != nil {
		return 0, false, fmt.Errorf("tier: run open %s: %w", r.Name, err)
	}
	defer f.Close()
	if err := skipTo(f, r.dataOff+r.fence[b].off); err != nil {
		return 0, false, fmt.Errorf("tier: run %s seek: %w", r.Name, err)
	}
	payload, err := readFrame(f, r.fence[b].plen)
	if err != nil {
		return 0, false, fmt.Errorf("tier: run %s block %d: %w", r.Name, b, err)
	}
	ks, vs, err := r.decodeBlock(b, payload)
	if err != nil {
		return 0, false, err
	}
	for i, bk := range ks {
		if bk == k {
			return vs[i], true, nil
		}
		if bk > k {
			break
		}
	}
	return 0, false, nil
}

// Pairs reads and verifies the whole run, returning every stored pair
// in ascending key order (the promotion and scan path).
func (r *Run) Pairs(fs wal.FS, dir string) ([]keys.Key, []keys.Value, error) {
	f, err := fs.Open(filepath.Join(dir, r.Name))
	if err != nil {
		return nil, nil, fmt.Errorf("tier: run open %s: %w", r.Name, err)
	}
	defer f.Close()
	if err := skipTo(f, r.dataOff); err != nil {
		return nil, nil, fmt.Errorf("tier: run %s seek: %w", r.Name, err)
	}
	ks := make([]keys.Key, 0, r.Count)
	vs := make([]keys.Value, 0, r.Count)
	for b := range r.fence {
		payload, err := readFrame(f, r.fence[b].plen)
		if err != nil {
			return nil, nil, fmt.Errorf("tier: run %s block %d: %w", r.Name, b, err)
		}
		bks, bvs, err := r.decodeBlock(b, payload)
		if err != nil {
			return nil, nil, err
		}
		ks = append(ks, bks...)
		vs = append(vs, bvs...)
	}
	if len(ks) != r.Count {
		return nil, nil, fmt.Errorf("tier: run %s: %d pairs for count %d", r.Name, len(ks), r.Count)
	}
	return ks, vs, nil
}
