package tier

import (
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/keys"
)

func testConfig(fs *faultfs.FS) Config {
	return Config{Dir: "tier", FS: fs, MaxResident: 16, RunKeys: 8, Buckets: 8, KeyMax: 64}
}

// demoteSome spills [lo, lo+n-1] with values k*10 and returns the run
// name the store assigned.
func demoteSome(t *testing.T, s *Store, lo keys.Key, n int) string {
	t.Helper()
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = lo + keys.Key(i)
		vs[i] = keys.Value(ks[i] * 10)
	}
	if err := s.Demote(lo, lo+keys.Key(n-1), ks, vs); err != nil {
		t.Fatal(err)
	}
	r := s.At(lo)
	if r.State != Cold {
		t.Fatalf("range at %d not cold after demote", lo)
	}
	return r.Run
}

// TestStoreRecoverDiscardsLeftovers locks Open's reconciliation rules:
// the manifest is the authority, temp files and unreferenced runs are
// interrupted actions to discard, and the run-name sequence never
// reuses a discarded name.
func TestStoreRecoverDiscardsLeftovers(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recovered() {
		t.Fatal("fresh directory claims recovery")
	}
	run := demoteSome(t, s, 10, 5)

	// Plant the leftovers of a crashed demotion: an in-flight temp and
	// a completed-but-unreferenced run (manifest never flipped).
	for _, name := range []string{"junk.tmp", "00000007.run"} {
		f, err := fs.Create(filepath.Join("tier", name))
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("torn"))
		f.Close()
	}

	s2, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Recovered() {
		t.Fatal("existing manifest not reported as recovered")
	}
	for _, name := range []string{"junk.tmp", "00000007.run"} {
		if _, ok := fs.Content(filepath.Join("tier", name)); ok {
			t.Fatalf("leftover %s survived recovery", name)
		}
	}
	if r := s2.At(12); r.State != Cold || r.Run != run {
		t.Fatalf("cold range lost across reopen: %+v", r)
	}
	v, found, err := s2.Lookup(12)
	if err != nil || !found || v != 120 {
		t.Fatalf("Lookup(12) = (%d, %v, %v), want (120, true, nil)", v, found, err)
	}
	if _, found, err := s2.Lookup(11); err != nil || !found {
		t.Fatalf("Lookup(11) lost: found=%v err=%v", found, err)
	}
	// The discarded 00000007.run must still advance the sequence: a new
	// run may never reuse a name the log-replay era might resurrect.
	next := demoteSome(t, s2, 30, 3)
	if next <= "00000007.run" {
		t.Fatalf("new run %s does not postdate the discarded leftover", next)
	}
}

// TestStoreWipe locks the non-durable path: wipe discards every run and
// the manifest, leaving a fresh all-hot store.
func TestStoreWipe(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	run := demoteSome(t, s, 10, 5)
	s2, err := Open(testConfig(fs), true)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Recovered() {
		t.Fatal("wiped directory claims recovery")
	}
	if r := s2.At(12); r.State != Hot {
		t.Fatalf("wiped store still cold at 12: %+v", r)
	}
	if _, ok := fs.Content(filepath.Join("tier", run)); ok {
		t.Fatalf("run %s survived wipe", run)
	}
}

// TestStoreRecoverRejectsLostRun locks the fatal path: a manifest that
// references a missing or corrupt run is acked data lost, never a
// silent degrade.
func TestStoreRecoverRejectsLostRun(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	run := demoteSome(t, s, 10, 5)
	if err := fs.Remove(filepath.Join("tier", run)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testConfig(fs), false); err == nil {
		t.Fatal("recovery with a missing referenced run succeeded")
	}
}

// TestStoreRecoverRejectsBoundsMismatch locks the cross-check between a
// run's header bounds and the residency range it backs.
func TestStoreRecoverRejectsBoundsMismatch(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	run := demoteSome(t, s, 10, 5)
	// Overwrite the run with one whose bounds disagree with the
	// manifest (valid format, wrong coverage).
	if err := fs.Remove(filepath.Join("tier", run)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRun(fs, "tier", run, 10, 20, []keys.Key{10, 20}, []keys.Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testConfig(fs), false); err == nil {
		t.Fatal("recovery with mismatched run bounds succeeded")
	}
}

// TestStoreVictims locks victim selection: candidates come from the
// coldest heat buckets first, never contain hot traffic, are clipped to
// the demotable space, and exclude cold ranges.
func TestStoreVictims(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	// Keys 0..7 are hot traffic; the rest of [0, 64] is untouched.
	for i := 0; i < 1000; i++ {
		s.RecordAccess(keys.Key(i % 8))
	}
	vics := s.Victims(4)
	if len(vics) == 0 {
		t.Fatal("no victims over an all-hot map")
	}
	for _, v := range vics {
		if v.Lo <= 7 {
			t.Fatalf("victim [%d, %d] overlaps the hottest traffic", v.Lo, v.Hi)
		}
		if v.Hi > 64 {
			t.Fatalf("victim [%d, %d] beyond KeyMax", v.Lo, v.Hi)
		}
	}
	// Demote the first victim; it must not be offered again (asking for
	// more candidates than there are cold buckets may eventually reach
	// the hot-traffic bucket, but never an already-cold range).
	run := demoteSome(t, s, vics[0].Lo, int(vics[0].Hi-vics[0].Lo+1))
	for _, v := range s.Victims(8) {
		if v.Hi > 64 {
			t.Fatalf("victim [%d, %d] beyond KeyMax after demote", v.Lo, v.Hi)
		}
		if v.Lo >= vics[0].Lo && v.Lo <= vics[0].Hi {
			t.Fatalf("victim [%d, %d] overlaps cold run %s", v.Lo, v.Hi, run)
		}
	}
}

// TestStorePromoteRoundtrip locks the demote→promote cycle at the store
// level: pairs come back identical, the range coalesces hot again, and
// the run file is gone afterwards.
func TestStorePromoteRoundtrip(t *testing.T) {
	fs := faultfs.New()
	s, err := Open(testConfig(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	run := demoteSome(t, s, 10, 5)
	ks, vs, err := s.RunPairs(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 5 || ks[0] != 10 || vs[0] != 100 {
		t.Fatalf("RunPairs = (%v, %v)", ks, vs)
	}
	if err := s.CommitPromote(run); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Residency().Ranges()); got != 1 {
		t.Fatalf("residency has %d ranges after promote, want 1 (coalesced)", got)
	}
	if _, ok := fs.Content(filepath.Join("tier", run)); ok {
		t.Fatalf("run %s survived promotion", run)
	}
	if st := s.Stats(); st.Promotions != 1 || st.Demotions != 1 || st.ColdRanges != 0 {
		t.Fatalf("stats after cycle: %+v", st)
	}
}
