package tier

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/keys"
)

// buildRun writes a multi-block run (count > 2×runBlockPairs so the
// fence index and block framing are all exercised) and returns its
// pairs and raw file bytes.
func buildRun(t *testing.T, fs *faultfs.FS, dir, name string) ([]keys.Key, []keys.Value, []byte) {
	t.Helper()
	const n = 600
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i*3 + 1) // gaps: absent-key lookups hit real holes
		vs[i] = keys.Value(i*7 + 1)
	}
	if _, err := WriteRun(fs, dir, name, ks[0], ks[n-1], ks, vs); err != nil {
		t.Fatal(err)
	}
	raw, ok := fs.Content(filepath.Join(dir, name))
	if !ok {
		t.Fatalf("run file %s missing after WriteRun", name)
	}
	return ks, vs, raw
}

// TestRunRoundtrip locks the read side against the write side: every
// written pair is returned by Pairs in order, Get finds every present
// key, and Get misses every absent key inside and outside the bounds.
func TestRunRoundtrip(t *testing.T) {
	fs := faultfs.New()
	ks, vs, _ := buildRun(t, fs, "t", "00000000.run")
	r, err := OpenRun(fs, "t", "00000000.run")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != len(ks) || r.Lo != ks[0] || r.Hi != ks[len(ks)-1] {
		t.Fatalf("run header (%d, [%d, %d]) disagrees with written (%d, [%d, %d])",
			r.Count, r.Lo, r.Hi, len(ks), ks[0], ks[len(ks)-1])
	}
	gk, gv, err := r.Pairs(fs, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(gk) != len(ks) {
		t.Fatalf("Pairs returned %d pairs, wrote %d", len(gk), len(ks))
	}
	for i := range ks {
		if gk[i] != ks[i] || gv[i] != vs[i] {
			t.Fatalf("pair %d = (%d, %d), want (%d, %d)", i, gk[i], gv[i], ks[i], vs[i])
		}
	}
	for i, k := range ks {
		v, found, err := r.Get(fs, "t", k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vs[i] {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, found, vs[i])
		}
	}
	// Absent keys inside the bounds are clean misses; keys outside the
	// bounds are caller bugs (the engine only looks up keys the
	// residency map assigned to this run) and must error loudly.
	for _, k := range []keys.Key{2, 3, 30, ks[len(ks)-1] - 1} {
		if _, found, err := r.Get(fs, "t", k); err != nil || found {
			t.Fatalf("Get(absent %d) = (found=%v, err=%v)", k, found, err)
		}
	}
	for _, k := range []keys.Key{0, ks[len(ks)-1] + 1, ^keys.Key(0)} {
		if _, _, err := r.Get(fs, "t", k); err == nil {
			t.Fatalf("Get(out-of-bounds %d) did not error", k)
		}
	}
}

// TestRunWriteRejectsBadInput locks the write-side guards: unsorted or
// duplicate keys, pairs outside the declared bounds, and empty runs.
func TestRunWriteRejectsBadInput(t *testing.T) {
	fs := faultfs.New()
	cases := []struct {
		name   string
		lo, hi keys.Key
		ks     []keys.Key
		vs     []keys.Value
	}{
		{"empty", 1, 10, nil, nil},
		{"unsorted", 1, 10, []keys.Key{5, 3}, []keys.Value{1, 2}},
		{"duplicate", 1, 10, []keys.Key{5, 5}, []keys.Value{1, 2}},
		{"below-lo", 5, 10, []keys.Key{3, 7}, []keys.Value{1, 2}},
		{"above-hi", 1, 6, []keys.Key{3, 7}, []keys.Value{1, 2}},
		{"mismatched", 1, 10, []keys.Key{3, 7}, []keys.Value{1}},
	}
	for _, c := range cases {
		if _, err := WriteRun(fs, "t", c.name+".run", c.lo, c.hi, c.ks, c.vs); err == nil {
			t.Fatalf("WriteRun accepted %s input", c.name)
		}
	}
}

// TestRunRejectsCorruption flips every byte of a run file (and tries
// every truncation) and demands that OpenRun or a full read detects it:
// every byte of the format is either structural (magic, frame lengths —
// cross-checked against the fence index) or covered by a frame CRC, so
// a torn or bit-rotted run must never silently serve wrong data. This
// is the cold-store analogue of btree's snapshot corruption lock.
func TestRunRejectsCorruption(t *testing.T) {
	fs := faultfs.New()
	ks, vs, raw := buildRun(t, fs, "t", "00000000.run")

	// readAll drives every code path that touches file bytes: open,
	// full scan, and one point lookup per block region.
	readAll := func(fs2 *faultfs.FS) error {
		r, err := OpenRun(fs2, "t", "00000000.run")
		if err != nil {
			return err
		}
		gk, gv, err := r.Pairs(fs2, "t")
		if err != nil {
			return err
		}
		// A "successful" read must also be the right data — corruption
		// that survives the checks but changes pairs is the worst case.
		if len(gk) != len(ks) {
			return errDetected
		}
		for i := range gk {
			if gk[i] != ks[i] || gv[i] != vs[i] {
				return errDetected
			}
		}
		return nil
	}

	plant := func(data []byte) *faultfs.FS {
		fs2 := faultfs.New()
		if err := fs2.MkdirAll("t"); err != nil {
			t.Fatal(err)
		}
		f, err := fs2.Create(filepath.Join("t", "00000000.run"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return fs2
	}

	if err := readAll(plant(raw)); err != nil {
		t.Fatalf("pristine run rejected: %v", err)
	}
	for off := 0; off < len(raw); off++ {
		for _, flip := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), raw...)
			mut[off] ^= flip
			if err := readAll(plant(mut)); err == nil {
				t.Fatalf("run with byte %d xor %#x served clean", off, flip)
			}
		}
	}
	for n := 0; n < len(raw); n++ {
		if err := readAll(plant(raw[:n])); err == nil {
			t.Fatalf("run truncated to %d/%d bytes served clean", n, len(raw))
		}
	}
}

// errDetected marks corruption that altered data without tripping a
// format check — readAll converts it to a failure via the err == nil
// path, so "wrong data served cleanly" fails like any missed check.
var errDetected = errors.New("corruption changed served data")
