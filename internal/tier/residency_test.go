package tier

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/keys"
)

// TestResidencyPartitionProperty drives random interleavings of demote
// and promote (the only mutations — demotions split hot ranges, promotions
// merge them back) against a brute-force per-key oracle over a small key
// domain and demands, after every step, that (a) each sampled key's
// state and backing run agree with the oracle, (b) the map still forms
// an exact partition of the full key space (no gap, no overlap, hot
// ranges maximal), and (c) ColdOverlapping returns exactly the oracle's
// overlap set. Illegal operations (demoting an already-cold key,
// promoting an unknown run) must fail without mutating anything.
func TestResidencyPartitionProperty(t *testing.T) {
	// Demotions start in [0, demoteLo) and extend at most spanMax-1
	// keys, so every touched key is < dom and the oracle array covers
	// the whole mutable region; everything at and above dom stays hot.
	const (
		dom      = 512
		demoteLo = 256
		spanMax  = 16
	)
	type cell struct {
		cold bool
		run  string
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewResidency()
		oracle := make([]cell, dom)
		var runs []string // live cold runs, oracle side
		next := 0

		check := func(step int) {
			if err := m.validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Partition: explicit gap/overlap sweep independent of
			// validate's own bookkeeping.
			rs := m.Ranges()
			if rs[0].Lo != 0 || rs[len(rs)-1].Hi != maxKey {
				t.Fatalf("seed %d step %d: span broken", seed, step)
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Lo != rs[i-1].Hi+1 {
					t.Fatalf("seed %d step %d: gap/overlap at range %d", seed, step, i)
				}
			}
			// Per-key agreement with the oracle.
			for k := 0; k < dom; k++ {
				r := m.At(keys.Key(k))
				if (r.State == Cold) != oracle[k].cold || r.Run != oracle[k].run {
					t.Fatalf("seed %d step %d: key %d is (%v, %q), oracle (%v, %q)",
						seed, step, k, r.State == Cold, r.Run, oracle[k].cold, oracle[k].run)
				}
			}
			if m.At(keys.Key(dom)).State != Hot || m.At(maxKey).State != Hot {
				t.Fatalf("seed %d step %d: keys outside the mutable domain not hot", seed, step)
			}
			// ColdOverlapping vs a brute-force per-key sweep.
			lo := keys.Key(rng.Intn(dom))
			hi := lo + keys.Key(rng.Intn(2*spanMax))
			want := map[string]bool{}
			for k := lo; k <= hi && k < dom; k++ {
				if oracle[k].cold {
					want[oracle[k].run] = true
				}
			}
			got := map[string]bool{}
			for _, r := range m.ColdOverlapping(nil, lo, hi) {
				got[r.Run] = true
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d step %d: ColdOverlapping [%d, %d] = %v, oracle %v",
					seed, step, lo, hi, got, want)
			}
		}

		for step := 0; step < 400; step++ {
			if rng.Intn(2) == 0 {
				lo := keys.Key(rng.Intn(demoteLo))
				hi := lo + keys.Key(rng.Intn(spanMax))
				name := fmt.Sprintf("r%04d.run", next)
				legal := true
				for k := lo; k <= hi; k++ {
					if oracle[k].cold {
						legal = false
						break
					}
				}
				err := m.Demote(lo, hi, name)
				if legal && err != nil {
					t.Fatalf("seed %d step %d: legal demote [%d, %d] rejected: %v", seed, step, lo, hi, err)
				}
				if !legal && err == nil {
					t.Fatalf("seed %d step %d: demote [%d, %d] over a cold key accepted", seed, step, lo, hi)
				}
				if err == nil {
					for k := lo; k <= hi; k++ {
						oracle[k] = cell{cold: true, run: name}
					}
					runs = append(runs, name)
					next++
				}
			} else {
				// Promote a live run, or (1 in 8) a bogus name that must
				// be rejected without mutating the map.
				if len(runs) == 0 || rng.Intn(8) == 0 {
					if err := m.Promote("nope.run"); err == nil {
						t.Fatalf("seed %d step %d: promoting an unknown run accepted", seed, step)
					}
				} else {
					i := rng.Intn(len(runs))
					name := runs[i]
					if err := m.Promote(name); err != nil {
						t.Fatalf("seed %d step %d: promote %s failed: %v", seed, step, name, err)
					}
					for k := range oracle {
						if oracle[k].run == name {
							oracle[k] = cell{}
						}
					}
					runs = append(runs[:i], runs[i+1:]...)
				}
			}
			check(step)
		}

		// The serialized form must round-trip the exact partition.
		dec, err := decodeResidency(m.encode())
		if err != nil {
			t.Fatalf("seed %d: roundtrip: %v", seed, err)
		}
		if !reflect.DeepEqual(m.rs, dec.rs) {
			t.Fatalf("seed %d: roundtrip changed the partition", seed)
		}
	}
}

// TestResidencyDemoteRejects locks the explicit demote guards: inverted
// ranges, the top of the key space (Hi+1 overflow), and targets not
// contained in a single hot range.
func TestResidencyDemoteRejects(t *testing.T) {
	m := NewResidency()
	if err := m.Demote(10, 5, "a.run"); err == nil {
		t.Fatal("inverted demote accepted")
	}
	if err := m.Demote(0, maxKey, "a.run"); err == nil {
		t.Fatal("demote reaching the top key accepted")
	}
	if err := m.Demote(10, 20, "a.run"); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote(15, 30, "b.run"); err == nil {
		t.Fatal("demote straddling a cold range accepted")
	}
	if err := m.Demote(15, 18, "b.run"); err == nil {
		t.Fatal("demote inside a cold range accepted")
	}
}

// TestResidencyDecodeRejectsCorruption flips every byte of an encoded
// map (and tries every truncation) and demands decode failure: the
// manifest is the recovery authority, so a torn or bit-rotted one must
// never silently yield a different partition.
func TestResidencyDecodeRejectsCorruption(t *testing.T) {
	m := NewResidency()
	if err := m.Demote(100, 200, "00000000.run"); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote(300, 400, "00000001.run"); err != nil {
		t.Fatal(err)
	}
	enc := m.encode()
	if _, err := decodeResidency(enc); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}
	for off := 0; off < len(enc); off++ {
		for _, flip := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), enc...)
			mut[off] ^= flip
			if _, err := decodeResidency(mut); err == nil {
				t.Fatalf("encoding with byte %d xor %#x accepted", off, flip)
			}
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := decodeResidency(enc[:n]); err == nil {
			t.Fatalf("encoding truncated to %d/%d bytes accepted", n, len(enc))
		}
	}
}
