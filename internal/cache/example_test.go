package cache_test

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/keys"
)

// The write-back protocol: defining queries dirty the cache; evictions
// surface as flush queries the engine sends to the tree.
func Example() {
	c := cache.New(2, cache.LRU)

	c.WriteInsert(1, 100) // dirty
	c.WriteDelete(2)      // dirty tombstone

	if e, ok := c.Lookup(1); ok {
		fmt.Println("hit:", e.Value, "dirty:", e.Dirty)
	}

	// Admitting a third key at capacity 2 evicts the LRU entry, whose
	// dirty state must be flushed to the tree.
	flush, evicted := c.WriteInsert(3, 300)
	fmt.Println("evicted:", evicted, "flush:", flush.Op, flush.Key)

	// Draining the cache yields the remaining dirty state (unordered;
	// sorted here for deterministic output).
	fl := c.FlushAll()
	sort.Slice(fl, func(i, j int) bool { return fl[i].Key < fl[j].Key })
	for _, q := range fl {
		fmt.Println("flush-all:", q.Op, q.Key)
	}
	// Output:
	// hit: 100 dirty: true
	// evicted: true flush: D 2
	// flush-all: I 1
	// flush-all: I 3
}

var _ = keys.Key(0) // anchor the keys import the flush queries refer to
