package cache

import "repro/internal/keys"

// This file implements the flat storage behind TopK: an open-addressing
// hash table (linear probing, backward-shift deletion) over a slice of
// slots, with the recency list threaded through slot indices instead of
// pointers. §V-B motivates exactly this: "as the number of entries is
// fixed, the hash function can be designed in an efficient way" — the
// fixed capacity lets the table be sized once, keeps probes short, and
// avoids per-entry allocation and pointer chasing entirely.

// slot is one table slot. occupied distinguishes empty slots; prev and
// next are recency-list links (slot indices, -1 terminated).
type slot struct {
	key       keys.Key
	value     keys.Value
	occupied  bool
	tombstone bool
	dirty     bool
	ref       bool
	prev      int32
	next      int32
}

// table is the open-addressed slot store plus the recency list.
type table struct {
	slots []slot
	mask  uint64
	used  int
	head  int32 // most recently used / inserted
	tail  int32 // least recently used / first inserted
	hand  int32 // CLOCK hand (slot index)
}

// newTable sizes the table for capacity entries at <= 50% load.
func newTable(capacity int) *table {
	size := 8
	for size < capacity*2 {
		size <<= 1
	}
	t := &table{slots: make([]slot, size), mask: uint64(size - 1), head: -1, tail: -1, hand: -1}
	return t
}

// hash mixes the key (SplitMix64 finalizer) onto the table.
func (t *table) hash(k keys.Key) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & t.mask
}

// find returns the slot index of k, or -1.
func (t *table) find(k keys.Key) int32 {
	for i := t.hash(k); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.occupied {
			return -1
		}
		if s.key == k {
			return int32(i)
		}
	}
}

// insert places k into the table (which must have free space and not
// already contain k) and returns its slot index. The new slot's list
// links are initialized but not attached.
func (t *table) insert(k keys.Key) int32 {
	for i := t.hash(k); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.occupied {
			*s = slot{key: k, occupied: true, prev: -1, next: -1}
			t.used++
			return int32(i)
		}
	}
}

// remove deletes slot idx using backward-shift so probe chains stay
// intact without tombstone slots. Shifted slots' list links move with
// them, so neighbors are re-pointed.
func (t *table) remove(idx int32) {
	t.unlink(idx)
	if t.hand == idx {
		t.hand = t.slots[idx].prev
	}
	i := uint64(idx)
	t.slots[i] = slot{}
	t.used--
	// Backward-shift: re-place any displaced successors.
	for j := (i + 1) & t.mask; t.slots[j].occupied; j = (j + 1) & t.mask {
		home := t.hash(t.slots[j].key)
		// If slot j's home position lies within (i, j] (cyclically), it
		// cannot move back to i; otherwise shift it into the hole.
		if inCyclicRange(home, i, j) {
			continue
		}
		t.moveSlot(int32(j), int32(i))
		i = j
	}
}

// inCyclicRange reports whether home lies in the cyclic half-open
// range (hole, j] — i.e. the slot cannot be moved back to the hole.
func inCyclicRange(home, hole, j uint64) bool {
	if hole < j {
		return home > hole && home <= j
	}
	return home > hole || home <= j
}

// moveSlot relocates an occupied slot to an empty index, fixing the
// recency list links of its neighbors (and head/tail/hand).
func (t *table) moveSlot(from, to int32) {
	s := t.slots[from]
	t.slots[to] = s
	t.slots[from] = slot{}
	if s.prev >= 0 {
		t.slots[s.prev].next = to
	} else if t.head == from {
		t.head = to
	}
	if s.next >= 0 {
		t.slots[s.next].prev = to
	} else if t.tail == from {
		t.tail = to
	}
	if t.hand == from {
		t.hand = to
	}
}

// pushHead attaches slot idx at the head of the recency list.
func (t *table) pushHead(idx int32) {
	s := &t.slots[idx]
	s.prev = -1
	s.next = t.head
	if t.head >= 0 {
		t.slots[t.head].prev = idx
	}
	t.head = idx
	if t.tail < 0 {
		t.tail = idx
	}
}

// unlink detaches slot idx from the recency list.
func (t *table) unlink(idx int32) {
	s := &t.slots[idx]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else if t.head == idx {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else if t.tail == idx {
		t.tail = s.prev
	}
	s.prev, s.next = -1, -1
}
