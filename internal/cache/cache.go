// Package cache implements the top-K cache of §V-B: a small,
// fixed-capacity software cache carrying the hot key-value state across
// batches so that queries on cache-resident keys never reach the B+
// tree (the inter-batch optimization).
//
// The paper leaves the write policy implicit; this implementation is a
// write-back cache (see DESIGN.md §4.3): defining queries on resident
// keys mark the entry dirty — inserts store the value, deletes store a
// tombstone — and the entry's state is flushed to the tree as an
// ordinary insert/delete query when it is evicted (or when FlushAll is
// called). The tree plus the cache's dirty entries therefore always
// jointly equal the serial-semantics store, which the differential
// tests verify.
//
// Storage is a fixed-size open-addressing hash table with the recency
// list threaded through slot indices (see table.go), exploiting the
// fixed capacity exactly as §V-B suggests ("the hash function can be
// designed in an efficient way so that hashing conflicts can be
// minimized"): no per-entry allocation, no pointer chasing.
//
// Replacement policies: LRU (default, as the paper suggests), FIFO, and
// CLOCK, selectable for the ablation benchmarks.
package cache

import (
	"fmt"

	"repro/internal/keys"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	CLOCK
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case CLOCK:
		return "clock"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Entry is a snapshot of one cached key's state.
type Entry struct {
	Key keys.Key
	// Value is the cached value; meaningless when Tombstone.
	Value keys.Value
	// Tombstone records a cached deletion: the key is known absent.
	Tombstone bool
	// Dirty reports whether the entry diverges from the tree and must
	// be flushed on eviction.
	Dirty bool
}

// TopK is the fixed-capacity cache. Not safe for concurrent use: the
// Engine runs the cache pass as a single sequential superstep, which is
// cheap because after QTrans at most two queries per distinct key
// remain (§V-B: "cache operations will be reduced to a minimum").
type TopK struct {
	capacity int
	policy   Policy
	t        *table

	// OnEvict, when non-nil, observes every eviction (clean or dirty)
	// with the victim's key. Dirty evictions additionally surface as
	// flush queries from the write/admit methods.
	OnEvict func(keys.Key)

	hits, misses, evictions int64
}

// New creates a cache holding at most capacity entries. capacity <= 0
// disables the cache (every lookup misses, admits are dropped).
func New(capacity int, policy Policy) *TopK {
	c := &TopK{capacity: capacity, policy: policy}
	if capacity > 0 {
		c.t = newTable(capacity)
	}
	return c
}

// Capacity returns the configured capacity (K).
func (c *TopK) Capacity() int { return c.capacity }

// Len returns the number of resident entries.
func (c *TopK) Len() int {
	if c.t == nil {
		return 0
	}
	return c.t.used
}

// Stats returns hit, miss, and eviction counts since creation.
func (c *TopK) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Lookup returns a snapshot of k's entry if resident, updating recency.
func (c *TopK) Lookup(k keys.Key) (Entry, bool) {
	if c.t == nil {
		c.misses++
		return Entry{}, false
	}
	idx := c.t.find(k)
	if idx < 0 {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.touch(idx)
	s := &c.t.slots[idx]
	return Entry{Key: s.key, Value: s.value, Tombstone: s.tombstone, Dirty: s.dirty}, true
}

// Contains reports residency without recency update or stats counting.
func (c *TopK) Contains(k keys.Key) bool {
	return c.t != nil && c.t.find(k) >= 0
}

// WriteInsert records I(k, v) into the cache. If k is not resident it
// is admitted, possibly evicting another entry, which is returned as a
// flush query (evicted=true). The admitted/updated entry becomes dirty.
func (c *TopK) WriteInsert(k keys.Key, v keys.Value) (flush keys.Query, evicted bool) {
	return c.write(k, v, false)
}

// WriteDelete records D(k) into the cache as a tombstone; like
// WriteInsert it may evict.
func (c *TopK) WriteDelete(k keys.Key) (flush keys.Query, evicted bool) {
	return c.write(k, 0, true)
}

func (c *TopK) write(k keys.Key, v keys.Value, tomb bool) (keys.Query, bool) {
	if c.t == nil {
		return keys.Query{}, false
	}
	if idx := c.t.find(k); idx >= 0 {
		s := &c.t.slots[idx]
		s.value, s.tombstone, s.dirty = v, tomb, true
		c.touch(idx)
		return keys.Query{}, false
	}
	var flush keys.Query
	evicted := false
	if c.t.used >= c.capacity {
		flush, evicted = c.evict(c.selectVictim())
	}
	idx := c.t.insert(k)
	s := &c.t.slots[idx]
	s.value, s.tombstone, s.dirty, s.ref = v, tomb, true, true
	c.t.pushHead(idx)
	return flush, evicted
}

// Admit inserts a clean entry (pre-population / training, §V-B),
// evicting as needed; any eviction flush is returned.
func (c *TopK) Admit(k keys.Key, v keys.Value) (flush keys.Query, evicted bool) {
	return c.admit(k, v, false)
}

// AdmitAbsent inserts a clean tombstone: the key is known absent from
// the tree (training a hot key that has no record yet). Evicts as
// needed.
func (c *TopK) AdmitAbsent(k keys.Key) (flush keys.Query, evicted bool) {
	return c.admit(k, 0, true)
}

func (c *TopK) admit(k keys.Key, v keys.Value, tomb bool) (keys.Query, bool) {
	if c.t == nil {
		return keys.Query{}, false
	}
	if idx := c.t.find(k); idx >= 0 {
		s := &c.t.slots[idx]
		if !tomb {
			// Refresh a resident entry with authoritative tree state;
			// the dirty bit is preserved (the entry may carry newer
			// writes than the tree).
			s.value, s.tombstone = v, false
		}
		// For tombstone admission of a resident entry the existing
		// state is at least as fresh; only recency updates.
		c.touch(idx)
		return keys.Query{}, false
	}
	var flush keys.Query
	evicted := false
	if c.t.used >= c.capacity {
		flush, evicted = c.evict(c.selectVictim())
	}
	idx := c.t.insert(k)
	s := &c.t.slots[idx]
	s.value, s.tombstone, s.ref = v, tomb, true
	c.t.pushHead(idx)
	return flush, evicted
}

// evict removes slot idx, returning the flush query for a dirty entry.
func (c *TopK) evict(idx int32) (keys.Query, bool) {
	s := c.t.slots[idx]
	c.t.remove(idx)
	c.evictions++
	if c.OnEvict != nil {
		c.OnEvict(s.key)
	}
	if !s.dirty {
		return keys.Query{}, false
	}
	if s.tombstone {
		return keys.Query{Op: keys.OpDelete, Key: s.key, Idx: -1}, true
	}
	return keys.Query{Op: keys.OpInsert, Key: s.key, Value: s.value, Idx: -1}, true
}

// FlushAll drains every dirty entry as flush queries (order is
// unspecified; callers sort as needed) and marks entries clean.
// Entries stay resident.
func (c *TopK) FlushAll() []keys.Query {
	if c.t == nil {
		return nil
	}
	var out []keys.Query
	for i := range c.t.slots {
		s := &c.t.slots[i]
		if !s.occupied || !s.dirty {
			continue
		}
		if s.tombstone {
			out = append(out, keys.Query{Op: keys.OpDelete, Key: s.key, Idx: -1})
		} else {
			out = append(out, keys.Query{Op: keys.OpInsert, Key: s.key, Value: s.value, Idx: -1})
		}
		s.dirty = false
	}
	return out
}

// Drain empties the cache entirely: every dirty entry is returned as
// a flush query (order is unspecified; callers sort as needed) and
// every entry — clean or dirty — is dropped. The engine drains before
// batches that bypass the cache pass (scan/RMW batches): clean
// residents would otherwise serve stale values once the tree mutates
// underneath them. Drops are not counted as evictions and do not
// invoke OnEvict.
func (c *TopK) Drain() []keys.Query {
	out := c.FlushAll()
	if c.t != nil && c.t.used > 0 {
		c.t = newTable(c.capacity)
	}
	return out
}

// DrainRange is Drain restricted to keys in [lo, hi): in-range dirty
// entries are returned as flush queries (order unspecified) and every
// in-range entry — clean or dirty — is dropped; out-of-range entries
// are untouched. The shard migration path uses this to hand a key
// range's cached state over with its tree slice while the rest of the
// donor's working set stays warm. Like Drain, drops are not counted as
// evictions and do not invoke OnEvict.
func (c *TopK) DrainRange(lo, hi keys.Key) []keys.Query {
	if c.t == nil || lo >= hi {
		return nil
	}
	// Collect first, remove second: table removal back-shifts slots, so
	// removing while walking the slot array could skip entries.
	var victims []keys.Key
	var out []keys.Query
	for i := range c.t.slots {
		s := &c.t.slots[i]
		if !s.occupied || s.key < lo || s.key >= hi {
			continue
		}
		victims = append(victims, s.key)
		if !s.dirty {
			continue
		}
		if s.tombstone {
			out = append(out, keys.Query{Op: keys.OpDelete, Key: s.key, Idx: -1})
		} else {
			out = append(out, keys.Query{Op: keys.OpInsert, Key: s.key, Value: s.value, Idx: -1})
		}
	}
	for _, k := range victims {
		if idx := c.t.find(k); idx >= 0 {
			c.t.remove(idx)
		}
	}
	return out
}

// selectVictim picks the slot to evict per the policy.
func (c *TopK) selectVictim() int32 {
	switch c.policy {
	case CLOCK:
		// Sweep from the hand towards the head (wrapping to the
		// tail), clearing reference bits until an unreferenced entry
		// is found.
		for {
			if c.t.hand < 0 {
				c.t.hand = c.t.tail
			}
			idx := c.t.hand
			c.t.hand = c.t.slots[idx].prev
			if !c.t.slots[idx].ref {
				return idx
			}
			c.t.slots[idx].ref = false
		}
	default: // LRU and FIFO both evict the tail.
		return c.t.tail
	}
}

// touch updates recency on access.
func (c *TopK) touch(idx int32) {
	c.t.slots[idx].ref = true
	if c.policy == LRU && c.t.head != idx {
		c.t.unlink(idx)
		c.t.pushHead(idx)
	}
}

// Keys returns the resident keys in recency order (most recent first).
// Intended for tests.
func (c *TopK) Keys() []keys.Key {
	if c.t == nil {
		return nil
	}
	out := make([]keys.Key, 0, c.t.used)
	for i := c.t.head; i >= 0; i = c.t.slots[i].next {
		out = append(out, c.t.slots[i].key)
	}
	return out
}
