package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || CLOCK.String() != "clock" {
		t.Fatal("policy names changed")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy formatting")
	}
}

func TestLookupMissAndHit(t *testing.T) {
	c := New(2, LRU)
	if _, ok := c.Lookup(1); ok {
		t.Fatal("empty cache hit")
	}
	c.WriteInsert(1, 10)
	e, ok := c.Lookup(1)
	if !ok || e.Value != 10 || e.Tombstone || !e.Dirty {
		t.Fatalf("entry = %+v, ok=%v", e, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestWriteUpdatesInPlace(t *testing.T) {
	c := New(2, LRU)
	c.WriteInsert(1, 10)
	if fl, ev := c.WriteInsert(1, 20); ev {
		t.Fatalf("update evicted %v", fl)
	}
	e, _ := c.Lookup(1)
	if e.Value != 20 {
		t.Fatalf("value = %d, want 20", e.Value)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestTombstone(t *testing.T) {
	c := New(2, LRU)
	c.WriteDelete(5)
	e, ok := c.Lookup(5)
	if !ok || !e.Tombstone || !e.Dirty {
		t.Fatalf("tombstone entry = %+v, ok=%v", e, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, LRU)
	c.WriteInsert(1, 1)
	c.WriteInsert(2, 2)
	c.Lookup(1) // 1 becomes MRU; 2 is LRU
	fl, ev := c.WriteInsert(3, 3)
	if !ev {
		t.Fatal("no eviction at capacity")
	}
	if fl.Op != keys.OpInsert || fl.Key != 2 || fl.Value != 2 || fl.Idx != -1 {
		t.Fatalf("flush = %v, want I(2,2)@-1", fl)
	}
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatalf("residency after eviction: %v", c.Keys())
	}
}

func TestFIFOEvictionIgnoresAccess(t *testing.T) {
	c := New(2, FIFO)
	c.WriteInsert(1, 1)
	c.WriteInsert(2, 2)
	c.Lookup(1) // FIFO ignores the touch
	fl, ev := c.WriteInsert(3, 3)
	if !ev || fl.Key != 1 {
		t.Fatalf("FIFO must evict first-in key 1, got %v (evicted=%v)", fl, ev)
	}
}

func TestCLOCKSecondChance(t *testing.T) {
	c := New(2, CLOCK)
	c.WriteInsert(1, 1)
	c.WriteInsert(2, 2)
	// Both have ref bits set; CLOCK clears them and evicts the first
	// unreferenced entry it re-reaches.
	_, ev := c.WriteInsert(3, 3)
	if !ev || c.Len() != 2 {
		t.Fatalf("CLOCK eviction failed: len=%d", c.Len())
	}
	if !c.Contains(3) {
		t.Fatal("new key not admitted")
	}
}

func TestEvictCleanEntryNoFlush(t *testing.T) {
	c := New(1, LRU)
	c.Admit(1, 10) // clean
	fl, ev := c.WriteInsert(2, 20)
	if ev {
		t.Fatalf("clean eviction produced flush %v", fl)
	}
	if c.Contains(1) || !c.Contains(2) {
		t.Fatal("admission after clean eviction failed")
	}
}

func TestTombstoneFlushIsDelete(t *testing.T) {
	c := New(1, LRU)
	c.WriteDelete(1)
	fl, ev := c.WriteInsert(2, 2)
	if !ev || fl.Op != keys.OpDelete || fl.Key != 1 {
		t.Fatalf("flush = %v (evicted=%v), want D(1)", fl, ev)
	}
}

func TestAdmitUpdatesExisting(t *testing.T) {
	c := New(2, LRU)
	c.WriteDelete(1)
	c.Admit(1, 5)
	e, _ := c.Lookup(1)
	if e.Tombstone || e.Value != 5 {
		t.Fatalf("entry = %+v", e)
	}
	// Admit keeps the dirty bit decision simple: entry was dirty and
	// stays resident; FlushAll must still emit it as an insert now.
	fl := c.FlushAll()
	if len(fl) != 1 || fl[0].Op != keys.OpInsert || fl[0].Value != 5 {
		t.Fatalf("FlushAll = %v", fl)
	}
}

func TestFlushAllMarksClean(t *testing.T) {
	c := New(4, LRU)
	c.WriteInsert(1, 1)
	c.WriteInsert(2, 2)
	c.WriteDelete(3)
	fl := c.FlushAll()
	if len(fl) != 3 {
		t.Fatalf("FlushAll = %v", fl)
	}
	if fl2 := c.FlushAll(); len(fl2) != 0 {
		t.Fatalf("second FlushAll = %v, want empty", fl2)
	}
	if c.Len() != 3 {
		t.Fatal("FlushAll must keep entries resident")
	}
}

func TestAdmitAbsentTombstone(t *testing.T) {
	c := New(2, LRU)
	if c.Capacity() != 2 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	if fl, ev := c.AdmitAbsent(5); ev {
		t.Fatalf("AdmitAbsent evicted %v on empty cache", fl)
	}
	e, ok := c.Lookup(5)
	if !ok || !e.Tombstone || e.Dirty {
		t.Fatalf("trained-absent entry = %+v, ok=%v; want clean tombstone", e, ok)
	}
	// A clean tombstone evicts silently (nothing owed to the tree).
	c.AdmitAbsent(6)
	if fl, ev := c.AdmitAbsent(7); ev {
		t.Fatalf("clean tombstone eviction produced flush %v", fl)
	}
	// Re-admitting a resident key is a recency-only no-op.
	c.WriteInsert(7, 77)
	c.AdmitAbsent(7)
	if e, _ := c.Lookup(7); e.Tombstone || e.Value != 77 {
		t.Fatalf("AdmitAbsent clobbered resident entry: %+v", e)
	}
	// Disabled cache ignores admission.
	d := New(0, LRU)
	if _, ev := d.AdmitAbsent(1); ev || d.Len() != 0 {
		t.Fatal("disabled cache admitted")
	}
	if _, ev := d.Admit(1, 1); ev || d.Len() != 0 {
		t.Fatal("disabled cache admitted via Admit")
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	c := New(0, LRU)
	if fl, ev := c.WriteInsert(1, 1); ev {
		t.Fatalf("disabled cache evicted %v", fl)
	}
	if _, ok := c.Lookup(1); ok {
		t.Fatal("disabled cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestKeysRecencyOrder(t *testing.T) {
	c := New(3, LRU)
	c.WriteInsert(1, 1)
	c.WriteInsert(2, 2)
	c.WriteInsert(3, 3)
	c.Lookup(1)
	ks := c.Keys()
	if len(ks) != 3 || ks[0] != 1 {
		t.Fatalf("Keys = %v, want key 1 most recent", ks)
	}
}

// Property: a cache backed by a model map behaves identically for
// lookups, and capacity is never exceeded, under random operations for
// every policy.
func TestCacheModelProperty(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, CLOCK} {
		pol := pol
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			capacity := 1 + r.Intn(8)
			c := New(capacity, pol)
			model := map[keys.Key]Entry{} // resident contents
			for op := 0; op < 500; op++ {
				k := keys.Key(r.Intn(16))
				switch r.Intn(3) {
				case 0:
					e, ok := c.Lookup(k)
					m, mok := model[k]
					if ok != mok {
						return false
					}
					if ok && (e.Value != m.Value || e.Tombstone != m.Tombstone) {
						return false
					}
				case 1:
					fl, ev := c.WriteInsert(k, keys.Value(op))
					if ev {
						me, ok := model[fl.Key]
						if !ok || !me.Dirty {
							return false // evicted flush must match a dirty resident
						}
						delete(model, fl.Key)
					}
					model[k] = Entry{Key: k, Value: keys.Value(op), Dirty: true}
				default:
					fl, ev := c.WriteDelete(k)
					if ev {
						if _, ok := model[fl.Key]; !ok {
							return false
						}
						delete(model, fl.Key)
					}
					model[k] = Entry{Key: k, Tombstone: true, Dirty: true}
				}
				if c.Len() > capacity || c.Len() != len(model) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}
