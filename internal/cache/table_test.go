package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

// TestTableBackwardShiftChains hammers a tiny table with colliding
// keys through insert/remove cycles, checking that probe chains and
// recency links survive backward-shift deletion.
func TestTableBackwardShiftChains(t *testing.T) {
	c := New(4, LRU)
	// Insert 4, evict/remove by churn, and verify every resident key
	// stays findable with correct value.
	model := map[keys.Key]keys.Value{}
	r := rand.New(rand.NewSource(2))
	for op := 0; op < 20000; op++ {
		k := keys.Key(r.Intn(12))
		v := keys.Value(op)
		fl, ev := c.WriteInsert(k, v)
		if ev {
			if _, ok := model[fl.Key]; !ok {
				t.Fatalf("op %d: evicted non-resident key %d", op, fl.Key)
			}
			delete(model, fl.Key)
		}
		model[k] = v
		if len(model) != c.Len() {
			t.Fatalf("op %d: len %d vs model %d", op, c.Len(), len(model))
		}
		// Every model key must be resident with its exact value.
		for mk, mv := range model {
			e, ok := c.Lookup(mk)
			if !ok || e.Value != mv {
				t.Fatalf("op %d: Lookup(%d) = %+v, %v; want %d", op, mk, e, ok, mv)
			}
		}
	}
}

// TestTableRecencyAfterShifts verifies the LRU order stays exact while
// backward shifts relocate slots.
func TestTableRecencyAfterShifts(t *testing.T) {
	c := New(3, LRU)
	c.WriteInsert(10, 1)
	c.WriteInsert(20, 2)
	c.WriteInsert(30, 3)
	c.Lookup(10) // order: 10, 30, 20
	fl, ev := c.WriteInsert(40, 4)
	if !ev || fl.Key != 20 {
		t.Fatalf("evicted %v (%v), want key 20", fl, ev)
	}
	got := c.Keys() // 40, 10, 30
	want := []keys.Key{40, 10, 30}
	if len(got) != 3 {
		t.Fatalf("Keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestInCyclicRange(t *testing.T) {
	cases := []struct {
		home, hole, j uint64
		want          bool
	}{
		{home: 5, hole: 4, j: 6, want: true},   // within (4,6]
		{home: 4, hole: 4, j: 6, want: false},  // at the hole
		{home: 7, hole: 4, j: 6, want: false},  // beyond j
		{home: 15, hole: 14, j: 1, want: true}, // wrapped: (14,1]
		{home: 0, hole: 14, j: 1, want: true},
		{home: 5, hole: 14, j: 1, want: false},
	}
	for _, cse := range cases {
		if got := inCyclicRange(cse.home, cse.hole, cse.j); got != cse.want {
			t.Errorf("inCyclicRange(%d,%d,%d) = %v, want %v", cse.home, cse.hole, cse.j, got, cse.want)
		}
	}
}

// Property: random op sequences against a model map never diverge, for
// every policy, including FlushAll interleavings.
func TestTableModelProperty(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, CLOCK} {
		pol := pol
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			capacity := 1 + r.Intn(16)
			c := New(capacity, pol)
			model := map[keys.Key]Entry{}
			// OnEvict keeps the model exact even for clean evictions,
			// which return no flush query.
			bad := false
			c.OnEvict = func(k keys.Key) {
				if _, ok := model[k]; !ok {
					bad = true
				}
				delete(model, k)
			}
			for op := 0; op < 600; op++ {
				k := keys.Key(r.Intn(40))
				switch r.Intn(5) {
				case 0:
					e, ok := c.Lookup(k)
					m, mok := model[k]
					if ok != mok {
						return false
					}
					if ok && (e.Value != m.Value || e.Tombstone != m.Tombstone || e.Dirty != m.Dirty) {
						return false
					}
				case 1:
					fl, ev := c.WriteInsert(k, keys.Value(op))
					if ev && fl.Op != keys.OpInsert && fl.Op != keys.OpDelete {
						return false
					}
					model[k] = Entry{Key: k, Value: keys.Value(op), Dirty: true}
				case 2:
					c.WriteDelete(k)
					model[k] = Entry{Key: k, Tombstone: true, Dirty: true}
				case 3:
					fl := c.FlushAll()
					dirty := 0
					for _, m := range model {
						if m.Dirty {
							dirty++
						}
					}
					if len(fl) != dirty {
						return false
					}
					for mk, m := range model {
						m.Dirty = false
						model[mk] = m
					}
				default:
					if c.Contains(k) != func() bool { _, ok := model[k]; return ok }() {
						return false
					}
				}
				if bad || c.Len() > capacity || c.Len() != len(model) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := New(1<<16, LRU)
	for i := 0; i < 1<<16; i++ {
		c.WriteInsert(keys.Key(i), keys.Value(i))
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys.Key(r.Intn(1 << 16)))
	}
}

func BenchmarkCacheWriteChurn(b *testing.B) {
	c := New(1<<12, LRU)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.WriteInsert(keys.Key(r.Intn(1<<16)), keys.Value(i))
	}
}
