package bsp

import (
	"testing"

	"repro/internal/keys"
)

// FuzzRadixSortRun checks the sequential radix sort against the
// reference stable sort for arbitrary key streams (including keys wide
// enough to need all four digit passes).
func FuzzRadixSortRun(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte("radix-digit-boundaries"))

	var scratch RadixScratch
	f.Fuzz(func(t *testing.T, data []byte) {
		qs := make([]keys.Query, 0, len(data))
		// 1-byte keys stretched across the 64-bit range so different
		// inputs exercise different pass counts.
		for i, b := range data {
			shift := uint(i%8) * 8
			qs = append(qs, keys.Query{Key: keys.Key(uint64(b) << shift)})
		}
		keys.Number(qs)
		ref := append([]keys.Query(nil), qs...)
		keys.SortByKey(ref)
		scratch.RadixSortRun(qs)
		for i := range qs {
			if qs[i] != ref[i] {
				t.Fatalf("mismatch at %d: %v vs %v", i, qs[i], ref[i])
			}
		}
	})
}
