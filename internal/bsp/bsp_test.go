package bsp

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/keys"
)

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.N() < 1 {
		t.Fatalf("N = %d, want >= 1", p.N())
	}
}

func TestPoolRunVisitsEveryWorkerOnce(t *testing.T) {
	p := NewPool(7)
	defer p.Close()
	var visited [7]int32
	p.Run(func(tid int) { atomic.AddInt32(&visited[tid], 1) })
	for tid, c := range visited {
		if c != 1 {
			t.Errorf("worker %d ran %d times, want 1", tid, c)
		}
	}
}

func TestPoolRunBarriers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var counter int64
	for step := 0; step < 10; step++ {
		p.Run(func(tid int) { atomic.AddInt64(&counter, 1) })
		if got := atomic.LoadInt64(&counter); got != int64((step+1)*4) {
			t.Fatalf("after superstep %d counter = %d, want %d", step, got, (step+1)*4)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestSplitRangeCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 17, 1000} {
			prev := 0
			for tid := 0; tid < workers; tid++ {
				lo, hi := SplitRange(tid, workers, n)
				if lo != prev {
					t.Fatalf("workers=%d n=%d tid=%d: lo=%d, want %d", workers, n, tid, lo, prev)
				}
				if hi < lo {
					t.Fatalf("workers=%d n=%d tid=%d: hi=%d < lo=%d", workers, n, tid, hi, lo)
				}
				if hi-lo > n/workers+1 {
					t.Fatalf("workers=%d n=%d tid=%d: share %d too large", workers, n, tid, hi-lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("workers=%d n=%d: covered %d, want %d", workers, n, prev, n)
			}
		}
	}
}

func TestSplitRangeBalanced(t *testing.T) {
	// Shares differ by at most one.
	for tid := 0; tid < 5; tid++ {
		lo, hi := SplitRange(tid, 5, 12)
		if s := hi - lo; s != 2 && s != 3 {
			t.Errorf("tid %d share = %d, want 2 or 3", tid, s)
		}
	}
}

func TestSplitRangePanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitRange with 0 workers must panic")
		}
	}()
	SplitRange(0, 0, 10)
}

func TestPoolFor(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 1000
	out := make([]int32, n)
	p.For(n, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&out[i], 1)
		}
	})
	for i, c := range out {
		if c != 1 {
			t.Fatalf("index %d touched %d times", i, c)
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	counts := []int{3, 0, 2, 5}
	total := ExclusiveScan(counts)
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	want := []int{0, 3, 3, 5}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestExclusiveScanEmpty(t *testing.T) {
	if total := ExclusiveScan(nil); total != 0 {
		t.Fatalf("total = %d, want 0", total)
	}
}

func TestParallelExclusiveScanMatchesSequential(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 4096, 10000} {
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(5)
			b[i] = a[i]
		}
		ta := ExclusiveScan(a)
		tb := p.ParallelExclusiveScan(b)
		if ta != tb {
			t.Fatalf("n=%d: totals %d vs %d", n, ta, tb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d: %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestSortQueriesSmall(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	qs := keys.Number([]keys.Query{
		keys.Insert(9, 1), keys.Search(2), keys.Insert(9, 2), keys.Delete(2),
	})
	p.SortQueries(qs)
	if !keys.IsSortedByKey(qs) {
		t.Fatalf("not sorted: %v", qs)
	}
}

func TestSortQueriesLargeStable(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	r := rand.New(rand.NewSource(7))
	n := 50000
	qs := make([]keys.Query, n)
	for i := range qs {
		// Few distinct keys → lots of equal-key runs to test stability.
		qs[i] = keys.Query{Key: keys.Key(r.Intn(50)), Op: keys.Op(r.Intn(3)), Value: keys.Value(i)}
	}
	keys.Number(qs)
	p.SortQueries(qs)
	if !keys.IsSortedByKey(qs) {
		t.Fatal("large sort not stable-sorted")
	}
	// Permutation: Idx values must be exactly 0..n-1.
	seen := make([]bool, n)
	for _, q := range qs {
		if seen[q.Idx] {
			t.Fatalf("duplicate Idx %d", q.Idx)
		}
		seen[q.Idx] = true
	}
}

func TestSortQueriesProperty(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size)%9000 + 4100 // exercise the parallel path
		qs := make([]keys.Query, n)
		for i := range qs {
			qs[i] = keys.Query{Key: keys.Key(r.Intn(100)), Value: keys.Value(r.Uint64())}
		}
		keys.Number(qs)
		ref := make([]keys.Query, n)
		copy(ref, qs)
		keys.SortByKey(ref)
		p.SortQueries(qs)
		for i := range qs {
			if qs[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSortQueriesOddRunCounts is a regression test: merge-round bound
// collapsing used to duplicate the carried-over odd run's boundary,
// looping forever whenever the run count reached exactly 3 (worker
// counts 3, 6, 12, ...).
func TestSortQueriesOddRunCounts(t *testing.T) {
	for _, workers := range []int{3, 5, 6, 7, 12} {
		p := NewPool(workers)
		r := rand.New(rand.NewSource(int64(workers)))
		n := 5000 + workers // force the parallel path
		qs := make([]keys.Query, n)
		for i := range qs {
			qs[i] = keys.Query{Key: keys.Key(r.Intn(997))}
		}
		keys.Number(qs)
		done := make(chan struct{})
		go func() {
			p.SortQueries(qs)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: SortQueries did not terminate", workers)
		}
		if !keys.IsSortedByKey(qs) {
			t.Fatalf("workers=%d: not sorted", workers)
		}
		p.Close()
	}
}

func TestMergeRuns(t *testing.T) {
	a := []keys.Query{{Key: 1, Idx: 0}, {Key: 3, Idx: 1}}
	b := []keys.Query{{Key: 2, Idx: 2}, {Key: 3, Idx: 3}}
	out := make([]keys.Query, 4)
	mergeRuns(out, a, b)
	wantKeys := []keys.Key{1, 2, 3, 3}
	wantIdx := []int32{0, 2, 1, 3}
	for i := range out {
		if out[i].Key != wantKeys[i] || out[i].Idx != wantIdx[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func BenchmarkPoolBarrier(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(tid int) {})
	}
}

func BenchmarkParallelSort1M(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	r := rand.New(rand.NewSource(1))
	base := make([]keys.Query, 1<<20)
	for i := range base {
		base[i] = keys.Query{Key: keys.Key(r.Uint64() % (1 << 22)), Idx: int32(i)}
	}
	qs := make([]keys.Query, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(qs, base)
		p.SortQueries(qs)
	}
}
