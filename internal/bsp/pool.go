// Package bsp provides the bulk-synchronous-parallel runtime substrate
// underneath the PALM batch processor and the parallel QTrans optimizer:
// a reusable fixed-size worker pool with barrier semantics, data-parallel
// loops, parallel prefix sums, and a parallel stable sort for query
// batches.
//
// The paper's artifact builds these from Pthreads and boost; here they are
// built from goroutines and channels. A Pool amortizes goroutine startup
// across the many supersteps of a batch: workers are spawned once and fed
// one closure per superstep, with the Run call acting as the barrier.
package bsp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/keys"
)

// Pool is a fixed set of worker goroutines executing supersteps. Each call
// to Run dispatches one function to all workers and returns when every
// worker has finished — the implicit BSP barrier.
//
// A Pool must be created with NewPool and released with Close. It is not
// safe to call Run concurrently from multiple goroutines.
type Pool struct {
	n     int
	work  []chan func(tid int)
	done  chan struct{}
	close sync.Once
	wg    sync.WaitGroup

	// Sort scratch reused across SortQueries / RadixSortQueries calls.
	// Because Run (and therefore sorting) has a single caller per pool,
	// one scratch set per pool suffices; holding it here makes
	// steady-state batch sorting allocation-free.
	sortBuf    []keys.Query
	sortBounds []int
	radixCnt   [][]int
}

// NewPool creates a pool of n workers. n <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		n:    n,
		work: make([]chan func(tid int), n),
		done: make(chan struct{}),
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.work[i] = make(chan func(tid int))
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(tid int) {
	defer p.wg.Done()
	for fn := range p.work[tid] {
		fn(tid)
		p.done <- struct{}{}
	}
}

// N returns the number of workers.
func (p *Pool) N() int { return p.n }

// Run executes fn(tid) on every worker, tid in [0, N), and blocks until
// all have completed (the BSP barrier).
func (p *Pool) Run(fn func(tid int)) {
	for i := 0; i < p.n; i++ {
		p.work[i] <- fn
	}
	for i := 0; i < p.n; i++ {
		<-p.done
	}
}

// Close shuts the pool down. The pool must not be used afterwards.
func (p *Pool) Close() {
	p.close.Do(func() {
		for i := 0; i < p.n; i++ {
			close(p.work[i])
		}
		p.wg.Wait()
	})
}

// Range computes the half-open slice range [lo, hi) owned by worker tid
// when n items are divided as evenly as possible among p.N() workers.
// The first n%N workers receive one extra item, so any two workers'
// shares differ by at most one.
func (p *Pool) Range(tid, n int) (lo, hi int) {
	return SplitRange(tid, p.n, n)
}

// SplitRange divides n items among workers workers and returns worker
// tid's half-open range. Shares differ by at most one item.
func SplitRange(tid, workers, n int) (lo, hi int) {
	if workers <= 0 {
		panic(fmt.Sprintf("bsp: SplitRange with %d workers", workers))
	}
	q, r := n/workers, n%workers
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

// For runs body(tid, lo, hi) on every worker with the even partition of
// [0, n) produced by Range, then barriers.
func (p *Pool) For(n int, body func(tid, lo, hi int)) {
	p.Run(func(tid int) {
		lo, hi := p.Range(tid, n)
		body(tid, lo, hi)
	})
}

// ExclusiveScan computes, in place, the exclusive prefix sum of counts
// and returns the grand total. counts[i] becomes the sum of the original
// counts[0:i]. This is the prefix-sum primitive behind QTrans's
// lightweight load balancing (§V-A) and the BSP shuffles.
//
// The scan is sequential: it runs in O(len(counts)) with len(counts)
// proportional to the worker count or key count, which profiling shows is
// never a bottleneck next to tree traversal; a work-efficient parallel
// scan is provided by ParallelExclusiveScan for the large-array case.
func ExclusiveScan(counts []int) int {
	total := 0
	for i, c := range counts {
		counts[i] = total
		total += c
	}
	return total
}

// ParallelExclusiveScan computes the exclusive prefix sum of counts in
// place using the pool, returning the total. It uses the classic
// two-pass (local scan, offset fix-up) work-efficient scheme.
func (p *Pool) ParallelExclusiveScan(counts []int) int {
	n := len(counts)
	if n < 4096 || p.n == 1 {
		return ExclusiveScan(counts)
	}
	sums := make([]int, p.n)
	p.Run(func(tid int) {
		lo, hi := p.Range(tid, n)
		local := 0
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = local
			local += c
		}
		sums[tid] = local
	})
	total := ExclusiveScan(sums)
	p.Run(func(tid int) {
		lo, hi := p.Range(tid, n)
		off := sums[tid]
		if off == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			counts[i] += off
		}
	})
	return total
}
