package bsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func randomQueries(r *rand.Rand, n int, keyBits uint) []keys.Query {
	qs := make([]keys.Query, n)
	maskK := uint64(1)<<keyBits - 1
	for i := range qs {
		qs[i] = keys.Query{Key: keys.Key(r.Uint64() & maskK), Value: keys.Value(r.Uint64())}
	}
	return keys.Number(qs)
}

func assertSortedPermutation(t *testing.T, got, orig []keys.Query) {
	t.Helper()
	if !keys.IsSortedByKey(got) {
		t.Fatal("not stably key-sorted")
	}
	seen := make(map[int32]keys.Query, len(orig))
	for _, q := range got {
		if _, dup := seen[q.Idx]; dup {
			t.Fatalf("duplicate Idx %d", q.Idx)
		}
		seen[q.Idx] = q
	}
	for _, q := range orig {
		if g, ok := seen[q.Idx]; !ok || g != q {
			t.Fatalf("query %v lost or mutated", q)
		}
	}
}

func TestRadixSortQueriesAcrossKeyWidths(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, bits := range []uint{4, 15, 16, 17, 32, 48, 63} {
		r := rand.New(rand.NewSource(int64(bits)))
		qs := randomQueries(r, 20000, bits)
		orig := append([]keys.Query(nil), qs...)
		p.RadixSortQueries(qs)
		assertSortedPermutation(t, qs, orig)
	}
}

func TestRadixSortQueriesSmallFallsBack(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	qs := keys.Number([]keys.Query{keys.Insert(9, 1), keys.Search(2), keys.Insert(9, 2)})
	p.RadixSortQueries(qs)
	if !keys.IsSortedByKey(qs) {
		t.Fatalf("not sorted: %v", qs)
	}
}

func TestRadixSortQueriesAllEqualKeys(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	qs := make([]keys.Query, 10000)
	for i := range qs {
		qs[i] = keys.Query{Key: 7, Value: keys.Value(i)}
	}
	keys.Number(qs)
	p.RadixSortQueries(qs)
	for i := range qs {
		if qs[i].Idx != int32(i) {
			t.Fatalf("stability broken at %d: Idx %d", i, qs[i].Idx)
		}
	}
}

func TestRadixSortQueriesMatchesMergeSort(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	f := func(seed int64, sizeRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2048 + int(sizeRaw)%20000
		qs := randomQueries(r, n, 20) // narrow keys: many duplicates
		ref := append([]keys.Query(nil), qs...)
		keys.SortByKey(ref)
		p.RadixSortQueries(qs)
		for i := range qs {
			if qs[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSortRunSequential(t *testing.T) {
	var s RadixScratch
	for _, n := range []int{0, 1, 100, 4095, 4096, 30000} {
		r := rand.New(rand.NewSource(int64(n)))
		qs := randomQueries(r, n, 22)
		orig := append([]keys.Query(nil), qs...)
		s.RadixSortRun(qs)
		assertSortedPermutation(t, qs, orig)
	}
}

func TestRadixSortRunScratchReuse(t *testing.T) {
	var s RadixScratch
	r := rand.New(rand.NewSource(1))
	qs := randomQueries(r, 10000, 30)
	s.RadixSortRun(qs)
	c1, b1 := cap(s.counts), cap(s.buf)
	qs2 := randomQueries(r, 9000, 30)
	s.RadixSortRun(qs2)
	if cap(s.counts) != c1 || cap(s.buf) != b1 {
		t.Fatal("scratch reallocated on smaller input")
	}
	if !keys.IsSortedByKey(qs2) {
		t.Fatal("reused scratch produced bad sort")
	}
}

func BenchmarkRadixSort1M(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	r := rand.New(rand.NewSource(1))
	base := randomQueries(r, 1<<20, 22)
	qs := make([]keys.Query, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(qs, base)
		p.RadixSortQueries(qs)
	}
}

func BenchmarkMergeSortVsRadix(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	base := randomQueries(r, 1<<17, 22)
	qs := make([]keys.Query, len(base))
	b.Run("merge", func(b *testing.B) {
		p := NewPool(1)
		defer p.Close()
		for i := 0; i < b.N; i++ {
			copy(qs, base)
			p.SortQueries(qs)
		}
	})
	b.Run("radix", func(b *testing.B) {
		var s RadixScratch
		for i := 0; i < b.N; i++ {
			copy(qs, base)
			s.RadixSortRun(qs)
		}
	})
}
