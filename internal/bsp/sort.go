package bsp

import (
	"sort"

	"repro/internal/keys"
)

// SortQueries stably sorts a query batch by key using the pool: each
// worker sorts its even share, then pairs of sorted runs are merged in
// parallel rounds. Stability (original order preserved among equal keys)
// is required by one-pass QSAT, so the per-chunk sort is stable and the
// merge breaks key ties by original index.
//
// This replaces the boost parallel sort used by the paper's artifact for
// the pre-sorting step of §IV-E.
func (p *Pool) SortQueries(qs []keys.Query) {
	n := len(qs)
	if n < 4096 || p.n == 1 {
		// Same comparator as the parallel path: (Key, Idx) with an
		// unstable sort is equivalent to a stable key sort because
		// original indices are unique, and it avoids SliceStable's
		// insertion-merge overhead.
		sortRun(qs)
		return
	}

	// Chunk boundaries: bounds[t] .. bounds[t+1] is worker t's run.
	// The merge rounds collapse bounds in place but never grow past
	// p.n+1 entries, so the pool-held scratch is reused verbatim.
	if cap(p.sortBounds) < p.n+1 {
		p.sortBounds = make([]int, p.n+1)
	}
	bounds := p.sortBounds[:p.n+1]
	for t := 0; t <= p.n; t++ {
		lo, _ := p.Range(t%p.n, n)
		if t == p.n {
			lo = n
		}
		bounds[t] = lo
	}

	p.Run(func(tid int) {
		lo, hi := p.Range(tid, n)
		sortRun(qs[lo:hi])
	})

	// Merge rounds: runs double in width each round.
	if cap(p.sortBuf) < n {
		p.sortBuf = make([]keys.Query, n)
	}
	buf := p.sortBuf[:n]
	src, dst := qs, buf
	runs := p.n
	for runs > 1 {
		pairs := runs / 2
		p.Run(func(tid int) {
			for pair := tid; pair < pairs; pair += p.n {
				lo := bounds[2*pair]
				mid := bounds[2*pair+1]
				hi := bounds[2*pair+2]
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
			}
			// Odd run out: copy through.
			if runs%2 == 1 && tid == 0 {
				lo, hi := bounds[runs-1], bounds[runs]
				copy(dst[lo:hi], src[lo:hi])
			}
		})
		// Collapse bounds: each new run starts where pair 2i started;
		// when runs is odd the final i (== runs-1) is the carried-over
		// odd run's start, so no extra entry is needed.
		nb := bounds[:0:cap(bounds)]
		for i := 0; i < runs; i += 2 {
			nb = append(nb, bounds[i])
		}
		nb = append(nb, n)
		bounds = nb
		runs = len(bounds) - 1
		src, dst = dst, src
	}
	if &src[0] != &qs[0] {
		copy(qs, src)
	}
}

// sortRun stably sorts one run by (key, original index). Because Idx is
// unique per batch, sorting by the (Key, Idx) pair with an unstable sort
// yields the same permutation as a stable sort by Key alone, and
// sort.Slice avoids sort.SliceStable's extra allocations.
func sortRun(qs []keys.Query) {
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].Key != qs[j].Key {
			return qs[i].Key < qs[j].Key
		}
		return qs[i].Idx < qs[j].Idx
	})
}

// mergeRuns merges sorted runs a and b into out (len(out) == len(a)+len(b)),
// breaking key ties by original index so stability is preserved.
func mergeRuns(out, a, b []keys.Query) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key < b[j].Key || (a[i].Key == b[j].Key && a[i].Idx <= b[j].Idx) {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}
