package bsp

import "repro/internal/keys"

// RadixSortQueries stably sorts a query batch by key using a parallel
// least-significant-digit radix sort with 16-bit digits: up to four
// passes of (parallel count → exclusive scan → parallel stable
// scatter). Passes above the batch's maximum key are skipped, so small
// key spaces sort in one or two passes.
//
// Radix sorting is how high-throughput batch systems sort integer keys
// in practice; compared to the comparison-based SortQueries it is
// O(n · passes) instead of O(n log n) and is the default batch sort
// (the ablation benchmarks compare both).
//
// LSD radix with counting passes is inherently stable, preserving the
// original order among equal keys as one-pass QSAT requires.
func (p *Pool) RadixSortQueries(qs []keys.Query) {
	n := len(qs)
	if n < 2048 {
		sortRun(qs)
		return
	}

	var maxKey keys.Key
	for i := range qs {
		if qs[i].Key > maxKey {
			maxKey = qs[i].Key
		}
	}

	const (
		digitBits = 16
		buckets   = 1 << digitBits
		mask      = buckets - 1
	)
	passes := 0
	for m := uint64(maxKey); ; m >>= digitBits {
		passes++
		if m>>digitBits == 0 {
			break
		}
	}

	if cap(p.sortBuf) < n {
		p.sortBuf = make([]keys.Query, n)
	}
	buf := p.sortBuf[:n]
	src, dst := qs, buf

	nw := p.n
	// counts[t] is worker t's per-bucket tally for the current pass;
	// the tally arrays live on the pool so steady-state sorting does not
	// re-allocate them (nw × 64K ints is the largest per-batch
	// allocation in the whole pipeline otherwise).
	if p.radixCnt == nil {
		p.radixCnt = make([][]int, nw)
		for t := range p.radixCnt {
			p.radixCnt[t] = make([]int, buckets)
		}
	}
	counts := p.radixCnt

	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * digitBits)

		p.Run(func(tid int) {
			c := counts[tid]
			for i := range c {
				c[i] = 0
			}
			lo, hi := SplitRange(tid, nw, n)
			for i := lo; i < hi; i++ {
				c[(uint64(src[i].Key)>>shift)&mask]++
			}
		})

		// Global exclusive scan in (bucket, worker) order: for each
		// bucket, workers scatter in tid order, preserving stability.
		total := 0
		for b := 0; b < buckets; b++ {
			for t := 0; t < nw; t++ {
				c := counts[t][b]
				counts[t][b] = total
				total += c
			}
		}

		p.Run(func(tid int) {
			c := counts[tid]
			lo, hi := SplitRange(tid, nw, n)
			for i := lo; i < hi; i++ {
				b := (uint64(src[i].Key) >> shift) & mask
				dst[c[b]] = src[i]
				c[b]++
			}
		})

		src, dst = dst, src
	}

	if &src[0] != &qs[0] {
		copy(qs, src)
	}
}

// RadixScratch holds reusable buffers for sequential radix sorts, so
// per-mini-batch sorting inside QTrans Phase I allocates nothing after
// warm-up.
type RadixScratch struct {
	counts []int
	buf    []keys.Query
}

// RadixSortRun stably sorts one run by key with a sequential LSD radix
// sort (16-bit digits, skipping passes above the maximum key). Small
// runs fall back to comparison sorting, where the per-pass counter
// reset would dominate.
func (s *RadixScratch) RadixSortRun(qs []keys.Query) {
	n := len(qs)
	if n < 4096 {
		sortRun(qs)
		return
	}
	const (
		digitBits = 16
		buckets   = 1 << digitBits
		mask      = buckets - 1
	)
	if cap(s.counts) < buckets {
		s.counts = make([]int, buckets)
	}
	if cap(s.buf) < n {
		s.buf = make([]keys.Query, n)
	}
	counts := s.counts[:buckets]
	buf := s.buf[:n]

	var maxKey keys.Key
	for i := range qs {
		if qs[i].Key > maxKey {
			maxKey = qs[i].Key
		}
	}
	passes := 0
	for m := uint64(maxKey); ; m >>= digitBits {
		passes++
		if m>>digitBits == 0 {
			break
		}
	}

	src, dst := qs, buf
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * digitBits)
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[(uint64(src[i].Key)>>shift)&mask]++
		}
		total := 0
		for b := 0; b < buckets; b++ {
			c := counts[b]
			counts[b] = total
			total += c
		}
		for i := 0; i < n; i++ {
			b := (uint64(src[i].Key) >> shift) & mask
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &qs[0] {
		copy(qs, src)
	}
}
