package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batcher"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// Config tunes a Server. Batcher is the only required field.
type Config struct {
	// Batcher receives every admitted query. The server does not own
	// it: Shutdown drains the server's connections but leaves the
	// batcher open (callers typically Close it right after Shutdown
	// returns).
	Batcher *batcher.Batcher
	// HighWater is the admission-control threshold: a request arriving
	// while the batcher's dispatch backlog (dispatched-but-unprocessed
	// batches, batcher.Load's second value) exceeds HighWater is
	// answered StatusShed without executing (<= 0: 256).
	HighWater int
	// MaxScanRows clamps the row limit of every admitted scan so one
	// response frame stays far below MaxFrameLen; a scan with no limit
	// or a larger one gets this limit instead (<= 0: 65536).
	MaxScanRows int
	// QueueDepth bounds each connection's pipeline of submitted-but-
	// unanswered requests; a reader that gets this far ahead of its
	// writer blocks, pushing backpressure into the socket (<= 0: 512).
	QueueDepth int
	// Metrics, when non-nil, receives the server_* counters and the
	// server_connections gauge alongside the Stats() atomics.
	Metrics *metrics.Registry
}

// Stats is a point-in-time copy of the server's request accounting.
// Accepted counts request frames that decoded successfully; every
// accepted request produces exactly one response, so after a clean
// Shutdown Responses == Accepted (Shed and Drained count the subsets
// answered StatusShed/StatusDraining without executing).
type Stats struct {
	// Accepted is the number of successfully decoded request frames.
	Accepted int64
	// Responses is the number of response frames written back.
	Responses int64
	// Shed is the number of requests refused by admission control.
	Shed int64
	// Drained is the number of requests refused because of shutdown.
	Drained int64
	// Conns is the number of currently open connections.
	Conns int64
}

// Server multiplexes TCP connections into a Batcher: one reader and
// one writer goroutine per connection, requests pipelined in order
// through a bounded per-connection queue. See the package comment for
// the admission-control and drain behavior.
type Server struct {
	cfg       Config
	highWater int
	maxScan   keys.Value
	queueCap  int

	accepted  atomic.Int64
	responses atomic.Int64
	shed      atomic.Int64
	drained   atomic.Int64
	nconns    atomic.Int64

	mAccepted  *metrics.Counter
	mResponses *metrics.Counter
	mShed      *metrics.Counter
	mDrained   *metrics.Counter
	mConns     *metrics.Gauge

	draining atomic.Bool
	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// New builds a Server over cfg.Batcher. It does not listen; call
// Serve with a net.Listener.
func New(cfg Config) (*Server, error) {
	if cfg.Batcher == nil {
		return nil, errors.New("server: Config.Batcher is required")
	}
	s := &Server{
		cfg:       cfg,
		highWater: cfg.HighWater,
		maxScan:   keys.Value(cfg.MaxScanRows),
		queueCap:  cfg.QueueDepth,
		conns:     make(map[net.Conn]struct{}),
	}
	if s.highWater <= 0 {
		s.highWater = 256
	}
	if s.maxScan <= 0 {
		s.maxScan = 65536
	}
	if s.queueCap <= 0 {
		s.queueCap = 512
	}
	if cfg.Metrics != nil {
		s.mAccepted = cfg.Metrics.Counter("server_accepted_total")
		s.mResponses = cfg.Metrics.Counter("server_responses_total")
		s.mShed = cfg.Metrics.Counter("server_shed_total")
		s.mDrained = cfg.Metrics.Counter("server_drained_total")
		s.mConns = cfg.Metrics.Gauge("server_connections")
	}
	return s, nil
}

// Stats returns a snapshot of the request accounting.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:  s.accepted.Load(),
		Responses: s.responses.Load(),
		Shed:      s.shed.Load(),
		Drained:   s.drained.Load(),
		Conns:     s.nconns.Load(),
	}
}

// Serve accepts connections on ln until Shutdown closes it. It
// returns nil after a Shutdown-initiated stop, or the first
// non-recoverable accept error otherwise. Transient accept errors
// (e.g. fd exhaustion under a connection flood) are retried with a
// short backoff instead of killing the server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	// A Shutdown that ran before ln was registered closed nothing;
	// mutex ordering makes its draining flag visible here, so finish
	// its job. Either way Accept below fails fast with net.ErrClosed.
	if s.draining.Load() {
		ln.Close()
	}
	var consecutive int
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if consecutive++; consecutive >= 200 {
				return err
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		consecutive = 0
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		// A connection that raced past a concurrent Shutdown's ln.Close
		// may have registered after the drain nudge already swept the
		// map; mutex ordering guarantees the flag is visible here, so
		// nudge it ourselves and wg.Wait covers it like any other.
		if s.draining.Load() {
			c.SetReadDeadline(time.Now())
		}
		n := s.nconns.Add(1)
		if s.mConns != nil {
			s.mConns.Set(n)
		}
		s.wg.Add(1)
		go s.handle(c)
	}
}

// pending is one in-order slot in a connection's response pipeline.
// A nil fut means the status was decided at admission (shed/drain).
type pending struct {
	id     uint64
	status Status
	scan   bool
	fut    *batcher.Future
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	queue := make(chan pending, s.queueCap)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		s.writeLoop(c, queue)
	}()
	s.readLoop(c, queue)
	close(queue)
	wwg.Wait()
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	n := s.nconns.Add(-1)
	if s.mConns != nil {
		s.mConns.Set(n)
	}
}

// readLoop decodes request frames and submits them, pushing one
// pending slot per accepted request into queue (order = response
// order). It exits on any read or decode error; during a drain the
// deadline nudge from Shutdown surfaces here as a read error.
func (s *Server) readLoop(c net.Conn, queue chan<- pending) {
	br := bufio.NewReaderSize(c, 4*1024)
	var scratch []byte
	for {
		body, buf, err := ReadFrame(br, scratch, ReqBodyLen)
		if err != nil {
			return
		}
		scratch = buf
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		s.accepted.Add(1)
		if s.mAccepted != nil {
			s.mAccepted.Add(1)
		}
		queue <- s.admit(req)
	}
}

// admit runs admission control and submission for one request and
// returns its response slot. Order of checks: drain beats shed (a
// draining server refuses everything), shed consults the batcher's
// dispatch backlog — the congestion signal the flushLocked fix keeps
// live even when the processor stalls.
func (s *Server) admit(req Request) pending {
	if s.draining.Load() {
		s.drained.Add(1)
		if s.mDrained != nil {
			s.mDrained.Add(1)
		}
		return pending{id: req.ID, status: StatusDraining}
	}
	if _, backlog := s.cfg.Batcher.Load(); backlog > s.highWater {
		s.shed.Add(1)
		if s.mShed != nil {
			s.mShed.Add(1)
		}
		return pending{id: req.ID, status: StatusShed}
	}
	q := req.Q
	if q.Op == keys.OpScan && (q.Value == 0 || q.Value > s.maxScan) {
		q.Value = s.maxScan
	}
	fut, err := s.cfg.Batcher.Submit(q)
	if err != nil {
		// The batcher closed under us (external Close): same client
		// contract as a drain refusal.
		s.drained.Add(1)
		if s.mDrained != nil {
			s.mDrained.Add(1)
		}
		return pending{id: req.ID, status: StatusDraining}
	}
	return pending{id: req.ID, status: StatusOK, scan: q.Op == keys.OpScan, fut: fut}
}

// writeLoop resolves each pending slot in order and writes its
// response frame, flushing whenever the pipeline goes idle. Every slot
// taken from queue is encoded and written exactly once; a write error
// stops the loop but keeps consuming slots so the reader never blocks
// on a dead writer.
func (s *Server) writeLoop(c net.Conn, queue <-chan pending) {
	bw := bufio.NewWriterSize(c, 4*1024)
	var frame []byte
	broken := false
	for p := range queue {
		resp := Response{ID: p.id, Status: p.status}
		if p.fut != nil {
			res, ok := p.fut.Get()
			resp.Recorded = ok
			resp.Found = res.Found
			resp.Value = res.Value
			if p.scan {
				resp.Rows, _ = p.fut.Rows()
			}
		}
		if broken {
			continue
		}
		frame = AppendResponse(frame[:0], resp)
		if _, err := bw.Write(frame); err != nil {
			broken = true
			continue
		}
		s.responses.Add(1)
		if s.mResponses != nil {
			s.mResponses.Add(1)
		}
		if len(queue) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}

// Shutdown gracefully drains the server: stop accepting connections,
// refuse new requests with StatusDraining, keep flushing the batcher
// so every already-submitted future resolves, write a response for
// every accepted request, then close all connections. It returns nil
// once every connection goroutine has exited, or ctx.Err() if ctx
// expires first (connections are then force-closed). Shutdown is
// idempotent and safe to call concurrently with Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Nudge readers parked in a blocking read: the deadline error ends
	// their read loop, which closes the pipeline queue, which lets the
	// writer finish answering and close the connection.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Keep flushing: a partial batch submitted just before the drain
	// flag was set would otherwise wait out the batcher's MaxDelay (or
	// forever, if MaxDelay is long) while its writer blocks on the
	// future.
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-tick.C:
			s.cfg.Batcher.Flush()
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			// Writers may still be parked on unresolved futures; keep
			// flushing so they resolve and the goroutines exit.
			for {
				select {
				case <-done:
					return ctx.Err()
				case <-tick.C:
					s.cfg.Batcher.Flush()
				}
			}
		}
	}
}
