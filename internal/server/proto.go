// Package server is the standalone network front end of the engine: a
// TCP server speaking a length-framed binary protocol (stdlib only)
// that feeds per-connection request pipelines into the online batcher
// (internal/batcher), with admission control shedding load when the
// batcher's dispatch backlog climbs past a high-water mark and a
// graceful drain that answers every accepted request before closing.
// This is the §VI-D online-processing regime behind a socket: the
// batcher trades throughput for response time, the server turns that
// into a system boundary. See DESIGN.md §12 for the wire format and
// the backpressure/drain state machines.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/keys"
)

// Wire format (all integers big-endian):
//
//	frame    := len:uint32 body
//	request  := id:uint64 op:uint8 rmw:uint8 key:uint64 value:uint64 key2:uint64
//	response := id:uint64 status:uint8 flags:uint8 value:uint64
//	            nrows:uint32 nrows*(key:uint64 value:uint64)
//
// len counts the body only. Request bodies are exactly ReqBodyLen
// bytes; response bodies are RespHeaderLen + 16*nrows. Every accepted
// frame re-encodes byte-identically (canonical form): decoders reject
// out-of-range op/rmw/status/flags bytes and any rmw byte on a non-RMW
// op, so corruption either fails decoding or yields a different valid
// frame — never an out-of-vocabulary query. The id is an opaque
// correlation token chosen by the client; responses may arrive in any
// order relative to other connections but in submission order within
// one connection.
const (
	// ReqBodyLen is the exact body length of a request frame.
	ReqBodyLen = 8 + 1 + 1 + 8 + 8 + 8
	// RespHeaderLen is the body length of a rowless response frame.
	RespHeaderLen = 8 + 1 + 1 + 8 + 4
	// RowLen is the encoded size of one scan row.
	RowLen = 16
	// MaxFrameLen caps any frame body this package will read (16 MiB —
	// a response carrying ~1M scan rows). A length prefix beyond the
	// cap is a protocol error, not an allocation.
	MaxFrameLen = 16 << 20
)

// Status is the outcome class of a response.
type Status uint8

// Response status codes. Only StatusOK carries a query result; the
// others are admission-control or protocol outcomes whose frames are
// canonical with zero value, zero flags, and no rows.
const (
	// StatusOK: the query executed; flags/value/rows hold its result.
	StatusOK Status = iota
	// StatusShed: admission control rejected the request because the
	// batcher's dispatch backlog was above the high-water mark. The
	// query did not execute; the client may retry.
	StatusShed
	// StatusDraining: the server is shutting down and no longer accepts
	// work. The query did not execute.
	StatusDraining
	// StatusBadRequest: the request decoded structurally but was
	// semantically unusable (reserved for future use; current decoders
	// reject malformed frames at the connection level).
	StatusBadRequest
)

// Valid reports whether s is a defined status code.
func (s Status) Valid() bool { return s <= StatusBadRequest }

// String names the status for logs and errors.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad-request"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Response flag bits. Found implies Recorded: a result cannot report a
// present key without having been recorded, so flag byte 2 is invalid
// and decoders reject it (canonical-form property).
const (
	// FlagRecorded: a point result was recorded for the query (searches,
	// scans, RMWs; never inserts/deletes).
	FlagRecorded = 1 << 0
	// FlagFound: the key (or at least one scanned row) was present.
	FlagFound = 1 << 1
)

// Request is one decoded client query frame.
type Request struct {
	// ID is the client's correlation token, echoed on the response.
	ID uint64
	// Q is the query. Only Op, RMW, Key, Value, and Key2 travel on the
	// wire; Idx and LeafAnswer are engine-internal and always zero
	// here.
	Q keys.Query
}

// Response is one decoded server reply frame.
type Response struct {
	// ID echoes the request's correlation token.
	ID uint64
	// Status classifies the outcome; only StatusOK carries a result.
	Status Status
	// Recorded reports whether a point result was recorded (FlagRecorded).
	Recorded bool
	// Found reports key presence (FlagFound; for scans: any rows).
	Found bool
	// Value is the point result: looked-up value, RMW pre-value, or
	// scan row count.
	Value keys.Value
	// Rows holds the scan rows in ascending key order (scans only).
	Rows []keys.KV
}

// AppendRequest appends the framed encoding of (id, q) to dst and
// returns the extended slice. Engine-internal query fields (Idx,
// LeafAnswer) are not encoded.
func AppendRequest(dst []byte, id uint64, q keys.Query) []byte {
	dst = binary.BigEndian.AppendUint32(dst, ReqBodyLen)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(q.Op), byte(q.RMW))
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.Key))
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.Value))
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.Key2))
	return dst
}

// DecodeRequest decodes a request frame body (the bytes after the
// length prefix). It enforces canonical form: exact length, a
// wire-valid op, and a zero rmw byte unless the op is OpRMW.
func DecodeRequest(body []byte) (Request, error) {
	if len(body) != ReqBodyLen {
		return Request{}, fmt.Errorf("server: request body %d bytes, want %d", len(body), ReqBodyLen)
	}
	var r Request
	r.ID = binary.BigEndian.Uint64(body[0:8])
	op := keys.Op(body[8])
	if !op.Valid() {
		return Request{}, fmt.Errorf("server: invalid op byte %d", body[8])
	}
	rmw := body[9]
	if op == keys.OpRMW {
		if rmw > uint8(keys.RMWSetIfAbsent) {
			return Request{}, fmt.Errorf("server: invalid rmw byte %d", rmw)
		}
	} else if rmw != 0 {
		return Request{}, fmt.Errorf("server: nonzero rmw byte %d on op %s", rmw, op)
	}
	r.Q = keys.Query{
		Op:    op,
		RMW:   keys.RMWKind(rmw),
		Key:   keys.Key(binary.BigEndian.Uint64(body[10:18])),
		Value: keys.Value(binary.BigEndian.Uint64(body[18:26])),
		Key2:  keys.Key(binary.BigEndian.Uint64(body[26:34])),
	}
	return r, nil
}

// AppendResponse appends the framed encoding of resp to dst and
// returns the extended slice.
func AppendResponse(dst []byte, resp Response) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(RespHeaderLen+RowLen*len(resp.Rows)))
	dst = binary.BigEndian.AppendUint64(dst, resp.ID)
	var flags byte
	if resp.Recorded {
		flags |= FlagRecorded
	}
	if resp.Found {
		flags |= FlagFound
	}
	dst = append(dst, byte(resp.Status), flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(resp.Value))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Rows)))
	for _, kv := range resp.Rows {
		dst = binary.BigEndian.AppendUint64(dst, uint64(kv.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(kv.Value))
	}
	return dst
}

// DecodeResponse decodes a response frame body. Canonical form is
// enforced: a defined status and flag bits, Found only with Recorded,
// a row payload sized exactly to nrows, and rows or flags only on
// StatusOK frames.
func DecodeResponse(body []byte) (Response, error) {
	if len(body) < RespHeaderLen {
		return Response{}, fmt.Errorf("server: response body %d bytes, want >= %d", len(body), RespHeaderLen)
	}
	var r Response
	r.ID = binary.BigEndian.Uint64(body[0:8])
	r.Status = Status(body[8])
	if !r.Status.Valid() {
		return Response{}, fmt.Errorf("server: invalid status byte %d", body[8])
	}
	flags := body[9]
	if flags&^(FlagRecorded|FlagFound) != 0 {
		return Response{}, fmt.Errorf("server: invalid flags byte %d", flags)
	}
	if flags&FlagFound != 0 && flags&FlagRecorded == 0 {
		return Response{}, fmt.Errorf("server: found without recorded (flags %d)", flags)
	}
	r.Recorded = flags&FlagRecorded != 0
	r.Found = flags&FlagFound != 0
	r.Value = keys.Value(binary.BigEndian.Uint64(body[10:18]))
	nrows := binary.BigEndian.Uint32(body[18:22])
	if want := RespHeaderLen + RowLen*int(nrows); len(body) != want {
		return Response{}, fmt.Errorf("server: response body %d bytes, want %d for %d rows", len(body), want, nrows)
	}
	if r.Status != StatusOK && (nrows != 0 || flags != 0 || r.Value != 0) {
		return Response{}, fmt.Errorf("server: non-ok status %s with result payload", r.Status)
	}
	if nrows > 0 {
		r.Rows = make([]keys.KV, nrows)
		off := RespHeaderLen
		for i := range r.Rows {
			r.Rows[i].Key = keys.Key(binary.BigEndian.Uint64(body[off : off+8]))
			r.Rows[i].Value = keys.Value(binary.BigEndian.Uint64(body[off+8 : off+16]))
			off += RowLen
		}
	}
	return r, nil
}

// ReadFrame reads one length-prefixed frame body from r into buf
// (grown as needed) and returns the body slice, which aliases buf's
// storage until the next call. maxBody bounds the accepted body length
// (use ReqBodyLen server-side, MaxFrameLen client-side) so a corrupt
// length prefix cannot trigger an oversized allocation.
func ReadFrame(r io.Reader, buf []byte, maxBody int) (body, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || int64(n) > int64(maxBody) {
		return nil, buf, fmt.Errorf("server: frame length %d outside (0, %d]", n, maxBody)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return body, buf, nil
}
