package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/keys"
)

// wireRequests covers all seven client-visible operations plus
// boundary field values.
func wireRequests() []Request {
	return []Request{
		{ID: 1, Q: keys.Search(42)},
		{ID: 2, Q: keys.Insert(7, 99)},
		{ID: 3, Q: keys.Insert(7, 100)}, // update = insert on existing key
		{ID: 4, Q: keys.Delete(7)},
		{ID: 5, Q: keys.Scan(10, 20, 3)},
		{ID: 6, Q: keys.AddDelta(8, 5)},
		{ID: 7, Q: keys.SetIfAbsent(9, 11)},
		{ID: ^uint64(0), Q: keys.Scan(0, ^keys.Key(0), ^keys.Value(0))},
		{ID: 0, Q: keys.Search(0)},
	}
}

func wireResponses() []Response {
	return []Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Recorded: true, Value: 99},
		{ID: 3, Status: StatusOK, Recorded: true, Found: true, Value: 7},
		{ID: 4, Status: StatusOK, Recorded: true, Found: true, Value: 2,
			Rows: []keys.KV{{Key: 10, Value: 1}, {Key: 11, Value: 2}}},
		{ID: 5, Status: StatusShed},
		{ID: 6, Status: StatusDraining},
		{ID: 7, Status: StatusBadRequest},
		{ID: ^uint64(0), Status: StatusOK, Recorded: true, Found: true, Value: ^keys.Value(0),
			Rows: []keys.KV{{Key: ^keys.Key(0), Value: ^keys.Value(0)}}},
	}
}

// TestRequestRoundTrip: encode → frame-read → decode reproduces every
// request exactly, and re-encoding the decode reproduces the bytes
// (canonical form).
func TestRequestRoundTrip(t *testing.T) {
	for _, want := range wireRequests() {
		frame := AppendRequest(nil, want.ID, want.Q)
		body, _, err := ReadFrame(bytes.NewReader(frame), nil, ReqBodyLen)
		if err != nil {
			t.Fatalf("%+v: ReadFrame: %v", want, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("%+v: DecodeRequest: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if re := AppendRequest(nil, got.ID, got.Q); !bytes.Equal(re, frame) {
			t.Fatalf("%+v: re-encode differs", want)
		}
	}
}

// TestResponseRoundTrip mirrors TestRequestRoundTrip for responses,
// including multi-row scan payloads.
func TestResponseRoundTrip(t *testing.T) {
	for _, want := range wireResponses() {
		frame := AppendResponse(nil, want)
		body, _, err := ReadFrame(bytes.NewReader(frame), nil, MaxFrameLen)
		if err != nil {
			t.Fatalf("%+v: ReadFrame: %v", want, err)
		}
		got, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("%+v: DecodeResponse: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if re := AppendResponse(nil, got); !bytes.Equal(re, frame) {
			t.Fatalf("%+v: re-encode differs", want)
		}
	}
}

// corruptEveryByte xors every byte of every frame through every bit
// pattern delta and asserts the decoder either rejects the mutation or
// accepts a frame that re-encodes byte-identically (so corruption can
// never silently produce an out-of-vocabulary message). Mirrors the
// WAL/trace corrupt-every-byte suites.
func corruptEveryByte(t *testing.T, frame []byte, decode func(body []byte) ([]byte, error)) {
	t.Helper()
	for pos := range frame {
		for delta := 1; delta < 256; delta++ {
			mut := bytes.Clone(frame)
			mut[pos] ^= byte(delta)
			body, _, err := ReadFrame(bytes.NewReader(mut), nil, MaxFrameLen)
			if err != nil {
				continue // length prefix corruption caught at framing
			}
			re, err := decode(body)
			if err != nil {
				continue
			}
			if !bytes.Equal(re, mut) {
				t.Fatalf("byte %d ^= %#x: accepted non-canonical frame\n mut %x\n re  %x", pos, delta, mut, re)
			}
		}
	}
}

func TestRequestDecodeCorruptEveryByte(t *testing.T) {
	for _, r := range wireRequests() {
		corruptEveryByte(t, AppendRequest(nil, r.ID, r.Q), func(body []byte) ([]byte, error) {
			d, err := DecodeRequest(body)
			if err != nil {
				return nil, err
			}
			return AppendRequest(nil, d.ID, d.Q), nil
		})
	}
}

func TestResponseDecodeCorruptEveryByte(t *testing.T) {
	for _, r := range wireResponses() {
		corruptEveryByte(t, AppendResponse(nil, r), func(body []byte) ([]byte, error) {
			d, err := DecodeResponse(body)
			if err != nil {
				return nil, err
			}
			return AppendResponse(nil, d), nil
		})
	}
}

// TestTruncatedFrames: every proper prefix of a valid frame must fail
// at the framing or decode layer, never be accepted.
func TestTruncatedFrames(t *testing.T) {
	frames := [][]byte{
		AppendRequest(nil, 3, keys.Scan(1, 9, 0)),
		AppendResponse(nil, Response{ID: 3, Status: StatusOK, Recorded: true, Found: true, Value: 2,
			Rows: []keys.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}}}),
	}
	for _, frame := range frames {
		for cut := 0; cut < len(frame); cut++ {
			body, _, err := ReadFrame(bytes.NewReader(frame[:cut]), nil, MaxFrameLen)
			if err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) read whole body %x", cut, len(frame), body)
			}
			if cut > 4 && err != io.ErrUnexpectedEOF {
				t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
			}
		}
	}
}

// TestReadFrameRejectsOversizedAndZeroLength: a corrupt length prefix
// is a protocol error before any allocation happens.
func TestReadFrameRejectsOversizedAndZeroLength(t *testing.T) {
	for _, n := range []uint32{0, ReqBodyLen + 1, 1 << 30, ^uint32(0)} {
		hdr := binary.BigEndian.AppendUint32(nil, n)
		_, _, err := ReadFrame(bytes.NewReader(append(hdr, make([]byte, 64)...)), nil, ReqBodyLen)
		if err == nil {
			t.Fatalf("length %d accepted with cap %d", n, ReqBodyLen)
		}
		if !strings.Contains(err.Error(), "frame length") {
			t.Fatalf("length %d: wrong rejection: %v", n, err)
		}
	}
}

// TestDecodeRequestRejectsBadOpAndRMW pins the vocabulary checks: op
// bytes past OpRMW, rmw bytes past RMWSetIfAbsent, and any nonzero rmw
// byte on a non-RMW op are all rejected.
func TestDecodeRequestRejectsBadOpAndRMW(t *testing.T) {
	base := AppendRequest(nil, 1, keys.Search(5))[4:]
	bad := bytes.Clone(base)
	bad[8] = byte(keys.OpRMW) + 1
	if _, err := DecodeRequest(bad); err == nil || !strings.Contains(err.Error(), "invalid op") {
		t.Fatalf("bad op: %v", err)
	}
	bad = bytes.Clone(base)
	bad[9] = 1 // rmw byte on a search
	if _, err := DecodeRequest(bad); err == nil || !strings.Contains(err.Error(), "rmw") {
		t.Fatalf("rmw on search: %v", err)
	}
	rmw := AppendRequest(nil, 1, keys.AddDelta(5, 1))[4:]
	bad = bytes.Clone(rmw)
	bad[9] = byte(keys.RMWSetIfAbsent) + 1
	if _, err := DecodeRequest(bad); err == nil || !strings.Contains(err.Error(), "invalid rmw") {
		t.Fatalf("bad rmw kind: %v", err)
	}
}

// TestDecodeResponseRejectsIllegalShapes pins the canonical-form
// checks that byte-level corruption alone cannot reach.
func TestDecodeResponseRejectsIllegalShapes(t *testing.T) {
	// Found without Recorded.
	frame := AppendResponse(nil, Response{ID: 1, Status: StatusOK, Recorded: true, Found: true})
	frame[4+9] = FlagFound
	if _, err := DecodeResponse(frame[4:]); err == nil || !strings.Contains(err.Error(), "found without recorded") {
		t.Fatalf("found-without-recorded: %v", err)
	}
	// Row payload on a shed response.
	shed := Response{ID: 2, Status: StatusShed}
	frame = AppendResponse(nil, shed)
	frame[4+8+1+1+8+3] = 1 // nrows = 1 with no payload: length mismatch
	if _, err := DecodeResponse(frame[4:]); err == nil {
		t.Fatal("nrows/length mismatch accepted")
	}
	withRows := AppendResponse(nil, Response{ID: 2, Status: StatusOK,
		Rows: []keys.KV{{Key: 1, Value: 1}}})
	withRows[4+8] = byte(StatusShed)
	if _, err := DecodeResponse(withRows[4:]); err == nil || !strings.Contains(err.Error(), "non-ok") {
		t.Fatalf("rows on shed: %v", err)
	}
}

// TestReadFrameReusesBuffer: the scratch buffer is reused when large
// enough and grown when not.
func TestReadFrameReusesBuffer(t *testing.T) {
	frame := AppendRequest(nil, 9, keys.Search(1))
	buf := make([]byte, 64)
	body, newBuf, err := ReadFrame(bytes.NewReader(frame), buf, ReqBodyLen)
	if err != nil {
		t.Fatal(err)
	}
	if &newBuf[0] != &buf[0] || &body[0] != &buf[0] {
		t.Fatal("large scratch buffer was not reused")
	}
	body, newBuf, err = ReadFrame(bytes.NewReader(frame), nil, ReqBodyLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != ReqBodyLen || cap(newBuf) < ReqBodyLen {
		t.Fatalf("grown buffer wrong: len(body)=%d cap=%d", len(body), cap(newBuf))
	}
}
