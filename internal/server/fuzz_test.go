package server

import (
	"bytes"
	"testing"

	"repro/internal/keys"
)

// FuzzFrameDecode throws arbitrary bodies at both decoders and checks
// the canonical-form invariant: anything accepted must re-encode
// byte-identically (modulo the length prefix, which the fuzzer does
// not supply). Decoders must never panic on arbitrary input.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendRequest(nil, 1, keys.Search(5))[4:])
	f.Add(AppendRequest(nil, 2, keys.Scan(1, 9, 3))[4:])
	f.Add(AppendRequest(nil, 3, keys.SetIfAbsent(7, 7))[4:])
	f.Add(AppendResponse(nil, Response{ID: 4, Status: StatusOK, Recorded: true, Found: true, Value: 2,
		Rows: []keys.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}}})[4:])
	f.Add(AppendResponse(nil, Response{ID: 5, Status: StatusShed})[4:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		if req, err := DecodeRequest(body); err == nil {
			if re := AppendRequest(nil, req.ID, req.Q); !bytes.Equal(re[4:], body) {
				t.Fatalf("request re-encode differs:\n in %x\n re %x", body, re[4:])
			}
		}
		if resp, err := DecodeResponse(body); err == nil {
			if re := AppendResponse(nil, resp); !bytes.Equal(re[4:], body) {
				t.Fatalf("response re-encode differs:\n in %x\n re %x", body, re[4:])
			}
		}
	})
}
