// Package client is the Go client for the qtransserver wire protocol
// (internal/server): it pipelines requests over one TCP connection,
// matching the server's in-order response stream back to futures. One
// Client is one connection; open many Clients for connection-level
// concurrency (the serve harness experiment opens tens of thousands).
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/keys"
	"repro/internal/server"
)

// Future is one outstanding request's pending response.
type Future struct {
	done chan struct{}
	resp server.Response
	err  error
}

// Wait blocks until the response arrives (or the connection fails)
// and returns it.
func (f *Future) Wait() (server.Response, error) {
	<-f.done
	return f.resp, f.err
}

// Client is one pipelined protocol connection. Do/Call/Flush/Close
// are safe for concurrent use; responses resolve in submission order
// (the server's per-connection ordering guarantee).
type Client struct {
	conn net.Conn

	wmu    sync.Mutex // serializes encode+enqueue, keeping FIFO = wire order
	bw     *bufio.Writer
	nextID uint64
	werr   error
	closed bool

	inflight chan *Future
	readDone chan struct{}
}

// maxInflight bounds the pipeline depth of one connection; a Do past
// this many unanswered requests blocks until responses catch up.
const maxInflight = 1024

// Dial connects to a qtransserver at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// New wraps an established connection in a Client and starts its
// response reader. The Client owns conn from here on.
func New(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 4*1024),
		inflight: make(chan *Future, maxInflight),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReaderSize(c.conn, 4*1024)
	var scratch []byte
	wantID := uint64(0)
	for f := range c.inflight {
		if f == nil {
			return // Close sentinel: no more requests will arrive
		}
		body, buf, err := server.ReadFrame(br, scratch, server.MaxFrameLen)
		if err == nil {
			scratch = buf
			f.resp, f.err = server.DecodeResponse(body)
			if f.err == nil && f.resp.ID != wantID {
				f.err = fmt.Errorf("client: response id %d, want %d (pipeline desync)", f.resp.ID, wantID)
			}
		} else {
			f.err = err
		}
		wantID++
		failed := f.err != nil
		close(f.done)
		if failed {
			c.failRemaining(f.err)
			return
		}
	}
}

// failRemaining resolves every queued future with err after a
// connection-level failure, then keeps draining so writers never
// block on a dead pipeline.
func (c *Client) failRemaining(err error) {
	for f := range c.inflight {
		if f == nil {
			return
		}
		f.err = err
		close(f.done)
	}
}

// Do pipelines one query and returns its Future without flushing;
// call Flush (or Call) to push buffered frames to the server. IDs are
// assigned per-connection in submission order.
func (c *Client) Do(q keys.Query) (*Future, error) {
	f := &Future{done: make(chan struct{})}
	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	frame := server.AppendRequest(nil, id, q)
	if _, err := c.bw.Write(frame); err != nil {
		c.werr = err
		c.wmu.Unlock()
		return nil, err
	}
	// Enqueue under wmu so FIFO order always equals wire order. A full
	// pipeline must flush before blocking: the requests that would make
	// room may still sit in our own write buffer.
	select {
	case c.inflight <- f:
	default:
		if err := c.bw.Flush(); err != nil {
			c.werr = err
			c.wmu.Unlock()
			return nil, err
		}
		c.inflight <- f
	}
	c.wmu.Unlock()
	return f, nil
}

// Flush pushes all buffered request frames to the server.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	return nil
}

// Call submits one query, flushes, and waits for its response.
func (c *Client) Call(q keys.Query) (server.Response, error) {
	f, err := c.Do(q)
	if err != nil {
		return server.Response{}, err
	}
	if err := c.Flush(); err != nil {
		return server.Response{}, err
	}
	return f.Wait()
}

// Close flushes, waits for every outstanding response, and closes the
// connection. Futures created after Close fail; Close is idempotent.
func (c *Client) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		<-c.readDone
		return nil
	}
	c.closed = true
	if c.werr == nil {
		c.werr = fmt.Errorf("client: closed")
		c.bw.Flush()
	}
	c.wmu.Unlock()
	// The sentinel is ordered after every enqueued future, so the read
	// loop resolves them all before exiting.
	c.inflight <- nil
	<-c.readDone
	return c.conn.Close()
}
