package server_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/server"
	"repro/internal/server/client"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          palm.Config{Order: 16, Workers: 2, LoadBalance: true},
		CacheCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// startServer brings up a Server on a loopback listener and returns
// it with its address and a shutdown func (also run at cleanup).
func startServer(t testing.TB, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
		})
	}
	t.Cleanup(shutdown)
	return s, ln.Addr().String(), shutdown
}

// TestAllOpsEndToEnd runs every wire operation through a real engine
// behind the server and checks the results a client decodes.
func TestAllOpsEndToEnd(t *testing.T) {
	b := batcher.New(newEngine(t), batcher.Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	defer b.Close()
	_, addr, _ := startServer(t, server.Config{Batcher: b})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	call := func(q keys.Query) server.Response {
		t.Helper()
		resp, err := c.Call(q)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("%+v: status %s", q, resp.Status)
		}
		return resp
	}

	for k := keys.Key(10); k < 20; k++ {
		call(keys.Insert(k, keys.Value(k*100)))
	}
	if r := call(keys.Search(12)); !r.Recorded || !r.Found || r.Value != 1200 {
		t.Fatalf("search hit: %+v", r)
	}
	if r := call(keys.Search(999)); !r.Recorded || r.Found {
		t.Fatalf("search miss: %+v", r)
	}
	call(keys.Insert(12, 7)) // update
	if r := call(keys.Search(12)); r.Value != 7 {
		t.Fatalf("update not visible: %+v", r)
	}
	call(keys.Delete(13))
	if r := call(keys.Search(13)); r.Found {
		t.Fatalf("delete not visible: %+v", r)
	}
	r := call(keys.Scan(10, 15, 0))
	if !r.Found || r.Value != 4 || len(r.Rows) != 4 {
		t.Fatalf("scan [10,15): %+v", r)
	}
	want := []keys.KV{{Key: 10, Value: 1000}, {Key: 11, Value: 1100}, {Key: 12, Value: 7}, {Key: 14, Value: 1400}}
	for i, kv := range want {
		if r.Rows[i] != kv {
			t.Fatalf("scan row %d = %+v, want %+v", i, r.Rows[i], kv)
		}
	}
	if r := call(keys.Scan(10, 20, 2)); r.Value != 2 || len(r.Rows) != 2 {
		t.Fatalf("limited scan: %+v", r)
	}
	if r := call(keys.AddDelta(500, 3)); !r.Recorded || r.Found {
		t.Fatalf("AddDelta absent pre-state: %+v", r)
	}
	if r := call(keys.AddDelta(500, 4)); !r.Found || r.Value != 3 {
		t.Fatalf("AddDelta pre-value: %+v", r)
	}
	if r := call(keys.SetIfAbsent(500, 99)); !r.Found || r.Value != 7 {
		t.Fatalf("SetIfAbsent on present key: %+v", r)
	}
	if r := call(keys.Search(500)); r.Value != 7 {
		t.Fatalf("SetIfAbsent overwrote: %+v", r)
	}
}

// TestPipelining pushes a window of requests before any flush and
// checks every response resolves, in submission order, with the right
// values.
func TestPipelining(t *testing.T) {
	b := batcher.New(newEngine(t), batcher.Config{MaxBatch: 128, MaxDelay: time.Millisecond})
	defer b.Close()
	_, addr, _ := startServer(t, server.Config{Batcher: b})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2000
	futs := make([]*client.Future, 0, 2*n)
	for i := 0; i < n; i++ {
		f, err := c.Do(keys.Insert(keys.Key(i), keys.Value(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i := 0; i < n; i++ {
		f, err := c.Do(keys.Search(keys.Key(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		resp, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("future %d: status %s", i, resp.Status)
		}
		if i >= n {
			k := i - n
			if !resp.Found || resp.Value != keys.Value(k) {
				t.Fatalf("search %d: %+v", k, resp)
			}
		}
	}
}

// gatedProc stalls ProcessBatch until released, building dispatch
// backlog on demand.
type gatedProc struct {
	gate chan struct{}
}

func (p *gatedProc) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	<-p.gate
	for i := range qs {
		if qs[i].Op == keys.OpSearch {
			rs.Set(qs[i].Idx, keys.Value(qs[i].Key), true)
		}
	}
}

// TestAdmissionControlSheds stalls the processor until the dispatch
// backlog exceeds HighWater, then proves new requests are answered
// StatusShed (not executed, not dropped) and that execution resumes
// once the backlog clears.
func TestAdmissionControlSheds(t *testing.T) {
	proc := &gatedProc{gate: make(chan struct{})}
	b := batcher.New(proc, batcher.Config{MaxBatch: 1, MaxDelay: time.Hour})
	defer b.Close()
	s, addr, _ := startServer(t, server.Config{Batcher: b, HighWater: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Build backlog to HighWater+1: MaxBatch 1 turns each submit into
	// one dispatched batch the stalled processor cannot retire. (A 4th
	// request would itself be shed, so 3 is the reachable maximum.)
	stalled := make([]*client.Future, 0, 3)
	for i := 0; i < 3; i++ {
		f, err := c.Do(keys.Search(keys.Key(i)))
		if err != nil {
			t.Fatal(err)
		}
		stalled = append(stalled, f)
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		// Wait for the server to have submitted it (backlog visible).
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, backlog := b.Load(); backlog == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("backlog never reached %d", i+1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Probe on a second connection: responses are in-order per
	// connection, so on c the shed reply would queue behind the three
	// stalled futures.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Call(keys.Search(99))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusShed {
		t.Fatalf("over high water: status %s, want shed", resp.Status)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}
	close(proc.gate) // processor recovers
	for i, f := range stalled {
		r, err := f.Wait()
		if err != nil || r.Status != server.StatusOK || r.Value != keys.Value(i) {
			t.Fatalf("stalled future %d after recovery: %+v, %v", i, r, err)
		}
	}
	if resp, err := c.Call(keys.Search(7)); err != nil || resp.Status != server.StatusOK {
		t.Fatalf("post-recovery call: %+v, %v", resp, err)
	}
}

// TestDrainAnswersEveryAcceptedRequest shuts the server down in the
// middle of sustained multi-connection load and asserts the core
// drain invariant: a response was written for every accepted request,
// and every response the clients got back was OK or Draining — never
// a dropped frame.
func TestDrainAnswersEveryAcceptedRequest(t *testing.T) {
	b := batcher.New(newEngine(t), batcher.Config{MaxBatch: 256, MaxDelay: time.Millisecond})
	defer b.Close()
	s, addr, shutdown := startServer(t, server.Config{Batcher: b})

	const nclients = 8
	var gotResponses atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < nclients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			var futs []*client.Future
			for i := 0; ; i++ {
				select {
				case <-stop:
					goto drainFuts
				default:
				}
				f, err := c.Do(keys.Insert(keys.Key(w*1_000_000+i), keys.Value(i)))
				if err != nil {
					break // connection tore down mid-drain: futures still resolve
				}
				futs = append(futs, f)
				if i%10 == 0 {
					if err := c.Flush(); err != nil {
						break
					}
				}
			}
		drainFuts:
			c.Flush()
			for _, f := range futs {
				resp, err := f.Wait()
				if err != nil {
					continue // never reached the server: not accepted
				}
				gotResponses.Add(1)
				if resp.Status != server.StatusOK && resp.Status != server.StatusDraining {
					t.Errorf("client %d: unexpected status %s", w, resp.Status)
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let load build
	shutdown()
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Accepted == 0 {
		t.Fatal("no requests accepted during the load window")
	}
	if st.Responses != st.Accepted {
		t.Fatalf("drain dropped requests: accepted %d, responses %d", st.Accepted, st.Responses)
	}
	if st.Conns != 0 {
		t.Fatalf("connections still open after drain: %d", st.Conns)
	}
	// Every response the server wrote that the clients' futures were
	// still waiting on must have arrived (clients that tore down early
	// are allowed to miss some, but not the other way round).
	if got := gotResponses.Load(); got > st.Responses {
		t.Fatalf("clients decoded %d responses, server wrote %d", got, st.Responses)
	}
}

// TestServeRejectsAfterListenerClose: Serve returns nil (not an
// error) when Shutdown closes the listener.
func TestShutdownIdempotent(t *testing.T) {
	b := batcher.New(newEngine(t), batcher.Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer b.Close()
	s, _, shutdown := startServer(t, server.Config{Batcher: b})
	shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestNewRequiresBatcher pins the only construction-time validation.
func TestNewRequiresBatcher(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("New accepted a nil Batcher")
	}
}

// TestServerConcurrencyHammer is the -race gate for the whole stack:
// many connections issuing mixed ops concurrently with a mid-flight
// Shutdown racing them.
func TestServerConcurrencyHammer(t *testing.T) {
	b := batcher.New(newEngine(t), batcher.Config{MaxBatch: 128, MaxDelay: time.Millisecond})
	defer b.Close()
	s, addr, shutdown := startServer(t, server.Config{Batcher: b})

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				return // shutdown may win the race before dial
			}
			defer c.Close()
			for i := 0; i < 300; i++ {
				var q keys.Query
				switch i % 4 {
				case 0:
					q = keys.Insert(keys.Key(w*1000+i), keys.Value(i))
				case 1:
					q = keys.Search(keys.Key(w*1000 + i - 1))
				case 2:
					q = keys.Scan(keys.Key(w*1000), keys.Key(w*1000+i), 8)
				default:
					q = keys.AddDelta(keys.Key(w), 1)
				}
				if _, err := c.Call(q); err != nil {
					var nerr net.Error
					if errors.As(err, &nerr) || errors.Is(err, net.ErrClosed) {
						return
					}
					return // drain EOFs arrive as plain io errors too
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	shutdown()
	wg.Wait()
	st := s.Stats()
	if st.Responses != st.Accepted {
		t.Fatalf("accepted %d != responses %d", st.Accepted, st.Responses)
	}
}
