package faultfs

import (
	"errors"
	"io"
	"testing"
)

func write(t *testing.T, fs *FS, name, data string, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
}

func TestDurableVsVolatile(t *testing.T) {
	fs := New()
	write(t, fs, "d/a", "synced", true)
	f, _ := fs.Create("d/b")
	f.Write([]byte("never-synced"))
	f.Close()

	// Crash with a seed whose first Intn(13) draw we don't control —
	// but "d/a" must always survive intact and "d/b" must come back as
	// some prefix of what was written.
	fs.Crash(42)
	got, ok := fs.Content("d/a")
	if !ok || string(got) != "synced" {
		t.Fatalf("durable file lost: %q %v", got, ok)
	}
	b, ok := fs.Content("d/b")
	if !ok {
		t.Fatal("volatile file node vanished")
	}
	if len(b) > len("never-synced") || string(b) != "never-synced"[:len(b)] {
		t.Fatalf("volatile survivor %q is not a prefix", b)
	}
}

func TestCutAfterShortWrites(t *testing.T) {
	fs := New()
	f, _ := fs.Create("x")
	fs.CutAfter(4)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if !fs.Tripped() {
		t.Fatal("cut did not trip")
	}
	// Every subsequent operation fails until Crash.
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut sync: %v", err)
	}
	if _, err := fs.Create("y"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut create: %v", err)
	}
	if err := fs.Rename("x", "w"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut rename: %v", err)
	}
	fs.Crash(0)
	// Disarmed and usable again; the short-written prefix may survive.
	write(t, fs, "x2", "ok", true)
	got, _ := fs.Content("x2")
	if string(got) != "ok" {
		t.Fatalf("post-crash write: %q", got)
	}
	x, _ := fs.Content("x")
	if len(x) > 4 || string(x) != "abcd"[:len(x)] {
		t.Fatalf("short-written survivor %q", x)
	}
}

func TestBudgetCountsAcrossFiles(t *testing.T) {
	fs := New()
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	fs.CutAfter(6)
	if _, err := a.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	n, err := b.Write([]byte("5678")) // crosses at 2 remaining
	if n != 2 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestOpenSnapshotsContent(t *testing.T) {
	fs := New()
	write(t, fs, "f", "hello", false)
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// Writes after open are invisible to this handle.
	w, _ := fs.Create("g")
	w.Write([]byte("x"))
	got, _ := io.ReadAll(r)
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	r.Close()
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestRenameRemoveTruncateList(t *testing.T) {
	fs := New()
	write(t, fs, "d/one", "aaaa", true)
	write(t, fs, "d/two", "bb", false)
	write(t, fs, "other/x", "c", true)
	names, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("List(d) = %v", names)
	}
	if err := fs.Rename("d/one", "d/uno"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Content("d/one"); ok {
		t.Fatal("old name still present after rename")
	}
	if got, _ := fs.Content("d/uno"); string(got) != "aaaa" {
		t.Fatalf("renamed content %q", got)
	}
	// Truncate across the durable/volatile boundary.
	if err := fs.Truncate("d/two", 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Content("d/two"); string(got) != "b" {
		t.Fatalf("truncated content %q", got)
	}
	if err := fs.Truncate("d/two", 5); err == nil {
		t.Fatal("truncate past end succeeded")
	}
	if err := fs.Remove("d/uno"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("d/uno"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestStats(t *testing.T) {
	fs := New()
	write(t, fs, "a", "x", true)
	write(t, fs, "b", "y", true)
	w, s := fs.Stats()
	if w != 2 || s != 2 {
		t.Fatalf("stats = %d writes %d syncs", w, s)
	}
}
