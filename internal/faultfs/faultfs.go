// Package faultfs is the fault-injection filesystem behind the crash
// recovery proof (DESIGN.md §7): an in-memory wal.FS whose writes can
// fail, short-write, and power-cut at the Nth byte, and which models
// the volatile page cache — bytes written but not fsynced may or may
// not survive a crash, decided per file when the crash happens.
//
// Lifecycle in a test:
//
//	fs := faultfs.New()
//	fs.CutAfter(n)          // arm: the write crossing byte n is short-
//	                        // written and every operation after fails
//	... run the engine; at some point writes start failing ...
//	fs.Crash(seed)          // power cut: each file keeps its durable
//	                        // (synced) bytes plus a seed-chosen prefix
//	                        // of its unsynced tail; faults are disarmed
//	... recover from the same fs and check the survivor state ...
package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/wal"
)

// ErrPowerCut is returned by every operation once the byte budget is
// exhausted — the moment of the simulated power failure.
var ErrPowerCut = errors.New("faultfs: power cut")

// FS is an in-memory filesystem with fault injection. It implements
// wal.FS. Safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	files   map[string]*node
	budget  int64 // data bytes until the cut; < 0 = unlimited
	armed   bool
	tripped bool

	// stats
	writes int
	syncs  int
}

// node is one file: synced (durable) content plus the unsynced tail
// still sitting in the "page cache".
type node struct {
	durable  []byte
	volatile []byte
}

// New returns an empty, unarmed FS.
func New() *FS {
	return &FS{files: make(map[string]*node), budget: -1}
}

// CutAfter arms the power cut: after n more data bytes have been
// written, the write in progress is short-written and every subsequent
// operation fails with ErrPowerCut.
func (f *FS) CutAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.armed = true
	f.tripped = false
}

// Tripped reports whether the power cut has fired.
func (f *FS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// Stats reports how many writes and syncs the FS has served.
func (f *FS) Stats() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

// Crash simulates the machine going down and coming back: for every
// file, the synced content survives and a seed-chosen prefix of the
// unsynced tail may survive with it (the kernel flushes dirty pages in
// arbitrary order — any per-file prefix split is a real outcome).
// Afterwards the FS is fully usable again (faults disarmed).
func (f *FS) Crash(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(f.files))
	for name := range f.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := f.files[name]
		if len(n.volatile) > 0 {
			keep := rng.Intn(len(n.volatile) + 1)
			n.durable = append(n.durable, n.volatile[:keep]...)
		}
		n.volatile = nil
	}
	f.budget = -1
	f.armed = false
	f.tripped = false
}

// SyncAll makes every file's pending writes durable (a convenience for
// tests that want a clean baseline before arming faults).
func (f *FS) SyncAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.files {
		n.durable = append(n.durable, n.volatile...)
		n.volatile = nil
	}
}

func (f *FS) checkLocked() error {
	if f.tripped {
		return ErrPowerCut
	}
	return nil
}

func clean(name string) string { return filepath.Clean(name) }

// Create truncates/creates name for writing.
func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return nil, err
	}
	name = clean(name)
	n := &node{}
	f.files[name] = n
	return &file{fs: f, name: name, n: n, writable: true}, nil
}

// Open opens name for reading; the reader sees the file's current
// content (durable + pending) at open time.
func (f *FS) Open(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = clean(name)
	n, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: file does not exist", name)
	}
	snap := make([]byte, 0, len(n.durable)+len(n.volatile))
	snap = append(snap, n.durable...)
	snap = append(snap, n.volatile...)
	return &file{fs: f, name: name, r: bytes.NewReader(snap)}, nil
}

// Rename replaces newname with oldname (metadata updates are modeled as
// immediately durable).
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	oldname, newname = clean(oldname), clean(newname)
	n, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: file does not exist", oldname)
	}
	f.files[newname] = n
	delete(f.files, oldname)
	return nil
}

// Remove deletes name.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	name = clean(name)
	if _, ok := f.files[name]; !ok {
		return fmt.Errorf("faultfs: remove %s: file does not exist", name)
	}
	delete(f.files, name)
	return nil
}

// Truncate shortens name to size bytes.
func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	name = clean(name)
	n, ok := f.files[name]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: file does not exist", name)
	}
	total := len(n.durable) + len(n.volatile)
	if size < 0 || size > int64(total) {
		return fmt.Errorf("faultfs: truncate %s to %d (size %d)", name, size, total)
	}
	if size <= int64(len(n.durable)) {
		n.durable = n.durable[:size]
		n.volatile = nil
	} else {
		n.volatile = n.volatile[:size-int64(len(n.durable))]
	}
	return nil
}

// MkdirAll is a no-op (the FS is flat; List filters by directory).
func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.checkLocked()
}

// List returns the file names directly inside dir, sorted.
func (f *FS) List(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = clean(dir)
	var names []string
	for name := range f.files {
		d, base := filepath.Split(name)
		if clean(d) == dir && !strings.Contains(base, "/") {
			names = append(names, base)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Content returns name's current visible content (tests).
func (f *FS) Content(name string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.files[clean(name)]
	if !ok {
		return nil, false
	}
	out := make([]byte, 0, len(n.durable)+len(n.volatile))
	out = append(out, n.durable...)
	return append(out, n.volatile...), true
}

// file is one open handle.
type file struct {
	fs       *FS
	name     string
	n        *node
	r        *bytes.Reader
	writable bool
	closed   bool
}

func (h *file) Read(p []byte) (int, error) {
	if h.r == nil {
		return 0, fmt.Errorf("faultfs: %s not open for reading", h.name)
	}
	return h.r.Read(p)
}

func (h *file) Write(p []byte) (int, error) {
	if !h.writable {
		return 0, fmt.Errorf("faultfs: %s not open for writing", h.name)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkLocked(); err != nil {
		return 0, err
	}
	h.fs.writes++
	if h.fs.armed && h.fs.budget >= 0 && int64(len(p)) > h.fs.budget {
		// The write crossing the cut is short-written; the cut fires.
		keep := int(h.fs.budget)
		h.n.volatile = append(h.n.volatile, p[:keep]...)
		h.fs.budget = 0
		h.fs.tripped = true
		return keep, ErrPowerCut
	}
	h.n.volatile = append(h.n.volatile, p...)
	if h.fs.armed {
		h.fs.budget -= int64(len(p))
	}
	return len(p), nil
}

func (h *file) Sync() error {
	if !h.writable {
		return nil
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkLocked(); err != nil {
		return err
	}
	h.fs.syncs++
	h.n.durable = append(h.n.durable, h.n.volatile...)
	h.n.volatile = nil
	return nil
}

func (h *file) Close() error {
	h.closed = true
	return nil
}

var _ wal.FS = (*FS)(nil)
var _ io.Reader = (*file)(nil)
