package lockbtree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/oracle"
)

func TestNewClampsOrder(t *testing.T) {
	if tr := New(0); tr.Order() != DefaultOrder {
		t.Fatalf("Order = %d, want default", tr.Order())
	}
	if tr := New(2); tr.Order() != 3 {
		t.Fatalf("Order = %d, want clamp to 3", tr.Order())
	}
}

func TestSerialInsertSearchDelete(t *testing.T) {
	tr := New(4)
	const n = 2000
	for i := 0; i < n; i++ {
		if !tr.Insert(keys.Key(i), keys.Value(i*2)) {
			t.Fatalf("Insert(%d) reported update", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Search(keys.Key(i))
		if !ok || v != keys.Value(i*2) {
			t.Fatalf("Search(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Insert(5, 99) {
		t.Fatal("re-insert must update")
	}
	if v, _ := tr.Search(5); v != 99 {
		t.Fatal("update lost")
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(keys.Key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	ks, _ := tr.Dump()
	if len(ks) != n/2 {
		t.Fatalf("Dump len = %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatal("dump not ascending")
		}
	}
}

func TestSerialAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New(5)
	o := oracle.New()
	for i := 0; i < 20000; i++ {
		k := keys.Key(r.Intn(1500))
		switch r.Intn(4) {
		case 0, 1:
			v := keys.Value(r.Uint64())
			tr.Insert(k, v)
			o.Apply(keys.Insert(k, v), nil)
		case 2:
			tr.Delete(k)
			o.Apply(keys.Delete(k), nil)
		default:
			gv, gok := tr.Search(k)
			wv, wok := o.Get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Search(%d) = %d,%v; want %d,%v", i, k, gv, gok, wv, wok)
			}
		}
	}
	gk, gv := tr.Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("sizes %d vs %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// TestConcurrentDisjointKeys: goroutines operating on disjoint key
// ranges must behave as if serial (run with -race to exercise the
// latch protocol).
func TestConcurrentDisjointKeys(t *testing.T) {
	tr := New(8)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := keys.Key(w * perW)
			for i := 0; i < perW; i++ {
				tr.Insert(base+keys.Key(i), keys.Value(w))
			}
			for i := 0; i < perW; i += 3 {
				tr.Delete(base + keys.Key(i))
			}
			for i := 0; i < perW; i++ {
				v, ok := tr.Search(base + keys.Key(i))
				if i%3 == 0 {
					if ok {
						panic("deleted key found")
					}
				} else if !ok || v != keys.Value(w) {
					panic("missing or wrong value")
				}
			}
		}(w)
	}
	wg.Wait()
	want := workers * (perW - (perW+2)/3)
	if tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
}

// TestConcurrentContendedKeys hammers a small key range from many
// goroutines; afterwards every key's value must be one of the written
// values and the tree must be internally consistent.
func TestConcurrentContendedKeys(t *testing.T) {
	tr := New(4)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := keys.Key(r.Intn(50))
				switch r.Intn(3) {
				case 0:
					tr.Insert(k, keys.Value(k)*1000+keys.Value(w))
				case 1:
					tr.Delete(k)
				default:
					if v, ok := tr.Search(k); ok {
						if v/1000 != keys.Value(k) {
							panic("torn value")
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ks, vs := tr.Dump()
	for i := range ks {
		if vs[i]/1000 != keys.Value(ks[i]) {
			t.Fatalf("key %d has foreign value %d", ks[i], vs[i])
		}
		if i > 0 && ks[i-1] >= ks[i] {
			t.Fatal("dump not ascending")
		}
	}
}

func TestApplySemantics(t *testing.T) {
	tr := New(8)
	qs := keys.Number([]keys.Query{
		keys.Insert(1, 10), keys.Search(1), keys.Delete(1), keys.Search(1),
	})
	rs := keys.NewResultSet(len(qs))
	for _, q := range qs {
		tr.Apply(q, rs)
	}
	if r, _ := rs.Get(1); !r.Found || r.Value != 10 {
		t.Fatalf("search = %+v", r)
	}
	if r, _ := rs.Get(3); r.Found {
		t.Fatalf("search after delete = %+v", r)
	}
}

func BenchmarkLockTreeConcurrentMixed(b *testing.B) {
	tr := New(DefaultOrder)
	for i := 0; i < 1<<17; i++ {
		tr.Insert(keys.Key(i), keys.Value(i))
	}
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			k := keys.Key(r.Intn(1 << 17))
			switch r.Intn(4) {
			case 0:
				tr.Insert(k, keys.Value(k))
			case 1:
				tr.Delete(k)
			default:
				tr.Search(k)
			}
		}
	})
}
