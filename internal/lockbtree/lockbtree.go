// Package lockbtree implements a latch-based concurrent B+ tree using
// classic lock coupling ("latch crabbing"). It is the asynchronous,
// lock-per-node baseline that Section II-B of the paper contrasts with
// latch-free BSP processing: threads descend the tree holding node
// latches, releasing an ancestor's latch once the child is known to be
// "safe" (cannot split under the pending insert).
//
// Searches take shared latches; inserts take exclusive latches. Deletes
// remove the key from its leaf without structural rebalancing, matching
// the relaxed deletion policy of the paper's open-source PALM baseline
// (see DESIGN.md §4.2); empty leaves are tolerated and skipped by
// searches, so the user-visible semantics are exactly those of §II-A.
package lockbtree

import (
	"sort"
	"sync"

	"repro/internal/keys"
)

// DefaultOrder matches btree.DefaultOrder.
const DefaultOrder = 64

type node struct {
	mu       sync.RWMutex
	keys     []keys.Key
	vals     []keys.Value // leaves only
	children []*node      // internal only
	next     *node        // leaf chain
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a concurrent B+ tree safe for use by multiple goroutines.
type Tree struct {
	rootMu sync.RWMutex // guards the root pointer itself
	root   *node
	order  int
	size   int64
	sizeMu sync.Mutex
}

// New creates an empty tree. order <= 0 selects DefaultOrder; orders
// below 3 are clamped to 3.
func New(order int) *Tree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 3 {
		order = 3
	}
	return &Tree{root: &node{}, order: order}
}

// Order returns the tree's order.
func (t *Tree) Order() int { return t.order }

// Len returns the number of stored pairs.
func (t *Tree) Len() int {
	t.sizeMu.Lock()
	defer t.sizeMu.Unlock()
	return int(t.size)
}

func (t *Tree) addSize(d int64) {
	t.sizeMu.Lock()
	t.size += d
	t.sizeMu.Unlock()
}

func searchKeys(ks []keys.Key, k keys.Key) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

func childIndex(n *node, k keys.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

// Search returns the value stored under k, using shared-latch crabbing:
// at each level the child's read latch is acquired before the parent's
// is released.
func (t *Tree) Search(k keys.Key) (keys.Value, bool) {
	t.rootMu.RLock()
	n := t.root
	n.mu.RLock()
	t.rootMu.RUnlock()
	for !n.leaf() {
		c := n.children[childIndex(n, k)]
		c.mu.RLock()
		n.mu.RUnlock()
		n = c
	}
	defer n.mu.RUnlock()
	i := searchKeys(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores v under k (insert-or-update), reporting whether a new
// entry was created. Exclusive-latch crabbing with safe-node release:
// ancestors' latches are dropped as soon as the current node cannot
// split (strictly fewer than the maximum number of keys).
func (t *Tree) Insert(k keys.Key, v keys.Value) bool {
	t.rootMu.Lock()
	n := t.root
	n.mu.Lock()

	// held is the stack of latched ancestors (possibly including the
	// rootMu, represented by rootLocked).
	rootLocked := true
	var held []*node
	release := func() {
		for _, h := range held {
			h.mu.Unlock()
		}
		held = held[:0]
		if rootLocked {
			t.rootMu.Unlock()
			rootLocked = false
		}
	}

	safe := func(m *node) bool {
		if m.leaf() {
			return len(m.keys) < t.order-1
		}
		return len(m.children) < t.order
	}

	if safe(n) {
		release()
	}
	for !n.leaf() {
		c := n.children[childIndex(n, k)]
		c.mu.Lock()
		held = append(held, n)
		n = c
		if safe(n) {
			release()
		}
	}

	i := searchKeys(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		n.vals[i] = v
		release()
		n.mu.Unlock()
		return false
	}
	n.keys = append(n.keys, 0)
	n.vals = append(n.vals, 0)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = k
	n.vals[i] = v
	t.addSize(1)

	if len(n.keys) <= t.order-1 {
		release()
		n.mu.Unlock()
		return true
	}

	// Split upward through the held ancestors. Because we only kept
	// latches on unsafe ancestors, every node on the held stack may
	// split, and the stack top is the leaf's parent.
	sep, right := splitLeaf(n)
	n.mu.Unlock()
	for len(held) > 0 {
		p := held[len(held)-1]
		held = held[:len(held)-1]
		insertChild(p, sep, right)
		if len(p.children) <= t.order {
			p.mu.Unlock()
			for _, h := range held {
				h.mu.Unlock()
			}
			if rootLocked {
				t.rootMu.Unlock()
			}
			return true
		}
		sep, right = splitInternal(p)
		p.mu.Unlock()
	}
	// Root split: rootMu is still held exclusively.
	old := t.root
	t.root = &node{
		keys:     []keys.Key{sep},
		children: []*node{old, right},
	}
	t.rootMu.Unlock()
	return true
}

func splitLeaf(n *node) (keys.Key, *node) {
	mid := len(n.keys) / 2
	right := &node{
		keys: append([]keys.Key(nil), n.keys[mid:]...),
		vals: append([]keys.Value(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	return right.keys[0], right
}

func splitInternal(n *node) (keys.Key, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]keys.Key(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

func insertChild(p *node, sep keys.Key, right *node) {
	i := searchKeys(p.keys, sep)
	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

// Delete removes k if present, reporting whether an entry was removed.
// The key is removed from its leaf under an exclusive latch; no
// structural rebalancing is performed (relaxed policy, DESIGN.md §4.2).
func (t *Tree) Delete(k keys.Key) bool {
	t.rootMu.RLock()
	n := t.root
	if n.leaf() {
		n.mu.Lock()
		t.rootMu.RUnlock()
	} else {
		n.mu.RLock()
		t.rootMu.RUnlock()
		for {
			c := n.children[childIndex(n, k)]
			if c.leaf() {
				c.mu.Lock()
				n.mu.RUnlock()
				n = c
				break
			}
			c.mu.RLock()
			n.mu.RUnlock()
			n = c
		}
	}
	defer n.mu.Unlock()
	i := searchKeys(n.keys, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.addSize(-1)
	return true
}

// Apply evaluates one query with §II-A semantics.
func (t *Tree) Apply(q keys.Query, rs *keys.ResultSet) {
	switch q.Op {
	case keys.OpSearch:
		v, ok := t.Search(q.Key)
		if rs != nil {
			rs.Set(q.Idx, v, ok)
		}
	case keys.OpInsert:
		t.Insert(q.Key, q.Value)
	case keys.OpDelete:
		t.Delete(q.Key)
	}
}

// Dump returns all pairs in ascending key order. Callers must ensure no
// concurrent mutation.
func (t *Tree) Dump() (ks []keys.Key, vs []keys.Value) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		ks = append(ks, n.keys...)
		vs = append(vs, n.vals...)
	}
	return ks, vs
}
