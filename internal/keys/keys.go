// Package keys defines the shared intermediate representation for B+ tree
// query processing: keys, values, query operations, query sequences, and
// per-query results.
//
// Every other package in this repository (the B+ tree substrate, the PALM
// batch processor, the QTrans query-sequence optimizer, the workload
// generators and the experiment harness) speaks this vocabulary, mirroring
// the query semantics of Section II-A of the paper:
//
//	I(key, v): insert key with value v, or update the value if key exists.
//	S(key):    return the value of key, or null if absent.
//	D(key):    remove key if present.
//
// Only S returns a result; I and D mutate the tree.
package keys

import (
	"fmt"
	"sort"
)

// Key is a B+ tree key. The paper indexes 64-bit integer keys (geolocation
// cell ids, YCSB record ids); uint64 covers all evaluated datasets.
type Key uint64

// Value is the payload associated with a key.
type Value uint64

// Op is the kind of a B+ tree query.
type Op uint8

// The three basic query types of Section II-A.
const (
	// OpSearch is S(key): a read-only lookup ("use" in QUD terms).
	OpSearch Op = iota
	// OpInsert is I(key, v): insert-or-update ("define" in QUD terms).
	OpInsert
	// OpDelete is D(key): remove-if-present ("define" in QUD terms).
	OpDelete
)

// String implements fmt.Stringer using the paper's notation.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "S"
	case OpInsert:
		return "I"
	case OpDelete:
		return "D"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsDefining reports whether the operation defines B+ tree state
// (insert/delete) as opposed to using it (search). This is the
// define/use classification driving the QUD-chain analysis of §IV-B.
func (o Op) IsDefining() bool { return o == OpInsert || o == OpDelete }

// Query is one element of a query sequence.
//
// Idx records the query's position in the original (pre-transformation)
// sequence so that values inferred by QTrans can be routed back to the
// issuer even after elimination and reordering.
type Query struct {
	Key   Key
	Value Value // meaningful only for OpInsert
	Idx   int32 // position in the original batch
	Op    Op
}

// String renders the query in the paper's notation, e.g. "I(7,42)@3".
func (q Query) String() string {
	switch q.Op {
	case OpInsert:
		return fmt.Sprintf("I(%d,%d)@%d", q.Key, q.Value, q.Idx)
	case OpDelete:
		return fmt.Sprintf("D(%d)@%d", q.Key, q.Idx)
	default:
		return fmt.Sprintf("S(%d)@%d", q.Key, q.Idx)
	}
}

// Search constructs a search query.
func Search(k Key) Query { return Query{Op: OpSearch, Key: k} }

// Insert constructs an insert/update query.
func Insert(k Key, v Value) Query { return Query{Op: OpInsert, Key: k, Value: v} }

// Delete constructs a delete query.
func Delete(k Key) Query { return Query{Op: OpDelete, Key: k} }

// Number assigns Idx = position to every query in qs, in place, and
// returns qs for chaining. Call it once on a freshly assembled batch
// before handing it to a processor.
func Number(qs []Query) []Query {
	for i := range qs {
		qs[i].Idx = int32(i)
	}
	return qs
}

// Result is the outcome of one search query. Insert and delete queries
// produce no Result (their effect is observable only through the tree).
type Result struct {
	Value Value
	Found bool
}

// ResultSet collects search results for a batch, indexed by Query.Idx.
// Slots belonging to non-search queries stay zero and are ignored.
type ResultSet struct {
	res   []Result
	valid []bool
}

// NewResultSet returns a ResultSet with capacity for a batch of n queries.
func NewResultSet(n int) *ResultSet {
	return &ResultSet{res: make([]Result, n), valid: make([]bool, n)}
}

// Reset resizes the set for a batch of n queries and clears all slots.
func (rs *ResultSet) Reset(n int) {
	if cap(rs.res) < n {
		rs.res = make([]Result, n)
		rs.valid = make([]bool, n)
		return
	}
	rs.res = rs.res[:n]
	rs.valid = rs.valid[:n]
	for i := range rs.res {
		rs.res[i] = Result{}
		rs.valid[i] = false
	}
}

// Len returns the batch size the set was prepared for.
func (rs *ResultSet) Len() int { return len(rs.res) }

// Set records the result for the search query with original index idx.
// Concurrent calls are safe as long as every idx is written by exactly
// one goroutine, which the BSP shuffles guarantee.
func (rs *ResultSet) Set(idx int32, v Value, found bool) {
	rs.res[idx] = Result{Value: v, Found: found}
	rs.valid[idx] = true
}

// Get returns the result recorded for original index idx. ok is false if
// no result was recorded (e.g. the query was not a search).
func (rs *ResultSet) Get(idx int32) (r Result, ok bool) {
	if int(idx) >= len(rs.res) || !rs.valid[idx] {
		return Result{}, false
	}
	return rs.res[idx], true
}

// Answered returns how many slots hold a recorded result.
func (rs *ResultSet) Answered() int {
	n := 0
	for _, v := range rs.valid {
		if v {
			n++
		}
	}
	return n
}

// SortByKey stably sorts the sequence by key, preserving the original
// order among equal keys (the pre-sorting step of §IV-E that one-pass
// QSAT relies on). Stability is essential: QSAT's correctness depends on
// the relative order of same-key queries.
func SortByKey(qs []Query) {
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Key < qs[j].Key })
}

// IsSortedByKey reports whether qs is non-decreasing in key and, among
// equal keys, non-decreasing in original index (stable order).
func IsSortedByKey(qs []Query) bool {
	for i := 1; i < len(qs); i++ {
		if qs[i].Key < qs[i-1].Key {
			return false
		}
		if qs[i].Key == qs[i-1].Key && qs[i].Idx < qs[i-1].Idx {
			return false
		}
	}
	return true
}

// KeyRuns calls fn for every maximal run of equal keys in a key-sorted
// sequence. fn receives the half-open range [lo, hi) of the run.
func KeyRuns(qs []Query, fn func(lo, hi int)) {
	for lo := 0; lo < len(qs); {
		hi := lo + 1
		for hi < len(qs) && qs[hi].Key == qs[lo].Key {
			hi++
		}
		fn(lo, hi)
		lo = hi
	}
}

// CountOps tallies the number of searches, inserts, and deletes in qs.
func CountOps(qs []Query) (searches, inserts, deletes int) {
	for i := range qs {
		switch qs[i].Op {
		case OpSearch:
			searches++
		case OpInsert:
			inserts++
		case OpDelete:
			deletes++
		}
	}
	return
}
