// Package keys defines the shared intermediate representation for B+ tree
// query processing: keys, values, query operations, query sequences, and
// per-query results.
//
// Every other package in this repository (the B+ tree substrate, the PALM
// batch processor, the QTrans query-sequence optimizer, the workload
// generators and the experiment harness) speaks this vocabulary, mirroring
// the query semantics of Section II-A of the paper:
//
//	I(key, v): insert key with value v, or update the value if key exists.
//	S(key):    return the value of key, or null if absent.
//	D(key):    remove key if present.
//
// Only S returns a result; I and D mutate the tree.
package keys

import (
	"fmt"
	"sort"
)

// Key is a B+ tree key. The paper indexes 64-bit integer keys (geolocation
// cell ids, YCSB record ids); uint64 covers all evaluated datasets.
type Key uint64

// Value is the payload associated with a key.
type Value uint64

// Op is the kind of a B+ tree query.
type Op uint8

// The three basic query types of Section II-A, plus the two richer
// query types layered on by the QSAT range/RMW extension: a half-open
// range scan and an atomic read-modify-write.
const (
	// OpSearch is S(key): a read-only lookup ("use" in QUD terms).
	OpSearch Op = iota
	// OpInsert is I(key, v): insert-or-update ("define" in QUD terms).
	OpInsert
	// OpDelete is D(key): remove-if-present ("define" in QUD terms).
	OpDelete
	// OpScan is R[lo, hi): return all present (key, value) pairs with
	// lo <= key < hi in ascending key order, optionally truncated to
	// the first `limit` rows. A scan is a pure "use" over every key in
	// its range, so it fences reordering of point writes that fall
	// inside the range.
	OpScan
	// OpRMW is an atomic read-transform-write on one key. It is both a
	// "use" (the result reports the pre-state) and a "define" (the
	// post-state is written), so it anchors QUD chains on both sides.
	OpRMW
)

// RMWKind selects the transform applied by an OpRMW query.
type RMWKind uint8

const (
	// RMWAdd sets key = old + delta, treating an absent key as 0. The
	// result reports (old value, whether the key existed before). The
	// key is always present afterwards.
	RMWAdd RMWKind = iota
	// RMWSetIfAbsent inserts the operand only when the key is absent.
	// The result reports (old value, whether the key existed before);
	// an existing value is left untouched.
	RMWSetIfAbsent
)

// String implements fmt.Stringer using the paper's notation.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "S"
	case OpInsert:
		return "I"
	case OpDelete:
		return "D"
	case OpScan:
		return "R"
	case OpRMW:
		return "M"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ValidOps is the single source of truth for the set of wire-visible
// operations. Decoders (trace files, WAL replay) validate op bytes
// against this table instead of hand-listing constants, so adding an
// op here is the only change they need.
var ValidOps = [...]Op{OpSearch, OpInsert, OpDelete, OpScan, OpRMW}

var validOpTable = func() [256]bool {
	var t [256]bool
	for _, o := range ValidOps {
		t[o] = true
	}
	return t
}()

// Valid reports whether o is one of ValidOps.
func (o Op) Valid() bool { return validOpTable[o] }

// IsDefining reports whether the operation defines B+ tree state
// (insert/delete/RMW) as opposed to only using it (search/scan). This
// is the define/use classification driving the QUD-chain analysis of
// §IV-B; note OpRMW is *also* a use — see Op comment.
func (o Op) IsDefining() bool { return o == OpInsert || o == OpDelete || o == OpRMW }

// Query is one element of a query sequence.
//
// Idx records the query's position in the original (pre-transformation)
// sequence so that values inferred by QTrans can be routed back to the
// issuer even after elimination and reordering.
type Query struct {
	Key   Key
	Value Value // insert value; RMW operand (delta / set value); scan row limit (0 = unlimited)
	Key2  Key   // scan exclusive upper bound (meaningful only for OpScan)
	Idx   int32 // position in the original batch
	Op    Op
	RMW   RMWKind // transform kind (meaningful only for OpRMW)
	// LeafAnswer marks a surviving search that QSAT could not answer
	// from the pre-batch tree state because a surviving RMW on the same
	// key precedes it in batch order: Stage 2 must answer it at the
	// leaf, after applying that RMW, instead of Stage 1.
	LeafAnswer bool
}

// String renders the query in the paper's notation, e.g. "I(7,42)@3".
func (q Query) String() string {
	switch q.Op {
	case OpInsert:
		return fmt.Sprintf("I(%d,%d)@%d", q.Key, q.Value, q.Idx)
	case OpDelete:
		return fmt.Sprintf("D(%d)@%d", q.Key, q.Idx)
	case OpScan:
		if q.Value != 0 {
			return fmt.Sprintf("R[%d,%d)#%d@%d", q.Key, q.Key2, q.Value, q.Idx)
		}
		return fmt.Sprintf("R[%d,%d)@%d", q.Key, q.Key2, q.Idx)
	case OpRMW:
		if q.RMW == RMWSetIfAbsent {
			return fmt.Sprintf("M?(%d,%d)@%d", q.Key, q.Value, q.Idx)
		}
		return fmt.Sprintf("M+(%d,%d)@%d", q.Key, q.Value, q.Idx)
	default:
		return fmt.Sprintf("S(%d)@%d", q.Key, q.Idx)
	}
}

// Search constructs a search query.
func Search(k Key) Query { return Query{Op: OpSearch, Key: k} }

// Insert constructs an insert/update query.
func Insert(k Key, v Value) Query { return Query{Op: OpInsert, Key: k, Value: v} }

// Delete constructs a delete query.
func Delete(k Key) Query { return Query{Op: OpDelete, Key: k} }

// Scan constructs a range scan over [lo, hi) returning at most limit
// rows (limit 0 = unlimited).
func Scan(lo, hi Key, limit Value) Query {
	return Query{Op: OpScan, Key: lo, Key2: hi, Value: limit}
}

// AddDelta constructs an RMW that atomically sets key = old + delta
// (absent keys read as 0) and reports the old state.
func AddDelta(k Key, delta Value) Query {
	return Query{Op: OpRMW, RMW: RMWAdd, Key: k, Value: delta}
}

// SetIfAbsent constructs an RMW that atomically inserts v only when k
// is absent and reports the old state.
func SetIfAbsent(k Key, v Value) Query {
	return Query{Op: OpRMW, RMW: RMWSetIfAbsent, Key: k, Value: v}
}

// Number assigns Idx = position to every query in qs, in place, and
// returns qs for chaining. Call it once on a freshly assembled batch
// before handing it to a processor.
func Number(qs []Query) []Query {
	for i := range qs {
		qs[i].Idx = int32(i)
	}
	return qs
}

// Result is the outcome of one search, scan, or RMW query. Insert and
// delete queries produce no Result (their effect is observable only
// through the tree).
//
//   - OpSearch: Value/Found report the looked-up state.
//   - OpRMW: Value/Found report the key's state *before* the transform.
//   - OpScan: Value is the row count and Found is rowcount > 0; the
//     rows themselves live in the ResultSet's scan storage.
type Result struct {
	Value Value
	Found bool
}

// KV is one row of a range-scan result.
type KV struct {
	Key   Key
	Value Value
}

// ResultSet collects search results for a batch, indexed by Query.Idx.
// Slots belonging to non-search queries stay zero and are ignored.
// Scan rows are held in a lazily allocated side table so that
// scan-free batches pay nothing for the feature.
type ResultSet struct {
	res   []Result
	valid []bool
	scans [][]KV
}

// NewResultSet returns a ResultSet with capacity for a batch of n queries.
func NewResultSet(n int) *ResultSet {
	return &ResultSet{res: make([]Result, n), valid: make([]bool, n)}
}

// Reset resizes the set for a batch of n queries and clears all slots.
func (rs *ResultSet) Reset(n int) {
	if rs.scans != nil {
		for i := range rs.scans {
			rs.scans[i] = nil
		}
		rs.scans = nil
	}
	if cap(rs.res) < n {
		rs.res = make([]Result, n)
		rs.valid = make([]bool, n)
		return
	}
	rs.res = rs.res[:n]
	rs.valid = rs.valid[:n]
	for i := range rs.res {
		rs.res[i] = Result{}
		rs.valid[i] = false
	}
}

// Len returns the batch size the set was prepared for.
func (rs *ResultSet) Len() int { return len(rs.res) }

// Set records the result for the search query with original index idx.
// Concurrent calls are safe as long as every idx is written by exactly
// one goroutine, which the BSP shuffles guarantee.
func (rs *ResultSet) Set(idx int32, v Value, found bool) {
	rs.res[idx] = Result{Value: v, Found: found}
	rs.valid[idx] = true
}

// Get returns the result recorded for original index idx. ok is false if
// no result was recorded (e.g. the query was not a search).
func (rs *ResultSet) Get(idx int32) (r Result, ok bool) {
	if int(idx) >= len(rs.res) || !rs.valid[idx] {
		return Result{}, false
	}
	return rs.res[idx], true
}

// EnsureScans allocates the scan side table for the current batch
// size. Call it once, from a single goroutine, before any parallel
// scan evaluation: SetScan does not allocate the table itself, so
// concurrent SetScan calls on distinct indexes stay race-free.
func (rs *ResultSet) EnsureScans() {
	if rs.scans == nil || len(rs.scans) != len(rs.res) {
		rs.scans = make([][]KV, len(rs.res))
	}
}

// SetScan records the completed row set for the scan with original
// index idx and marks the slot answered: the point Result becomes
// (rowcount, rowcount > 0). The table must have been sized by
// EnsureScans first.
func (rs *ResultSet) SetScan(idx int32, rows []KV) {
	rs.scans[idx] = rows
	rs.res[idx] = Result{Value: Value(len(rows)), Found: len(rows) > 0}
	rs.valid[idx] = true
}

// AppendScan appends rows to the scan result being assembled at idx
// (used by the shard merger to concatenate per-shard sub-scans in key
// order) without marking the slot answered; finish with FinishScan.
func (rs *ResultSet) AppendScan(idx int32, rows []KV) {
	rs.scans[idx] = append(rs.scans[idx], rows...)
}

// FinishScan seals a scan assembled via AppendScan: truncates to limit
// (0 = unlimited) and records the point Result.
func (rs *ResultSet) FinishScan(idx int32, limit Value) {
	rows := rs.scans[idx]
	if limit > 0 && Value(len(rows)) > limit {
		rows = rows[:limit]
		rs.scans[idx] = rows
	}
	rs.res[idx] = Result{Value: Value(len(rows)), Found: len(rows) > 0}
	rs.valid[idx] = true
}

// ScanRows returns the rows recorded for the scan with original index
// idx. ok is false if the slot was never answered.
func (rs *ResultSet) ScanRows(idx int32) (rows []KV, ok bool) {
	if int(idx) >= len(rs.res) || !rs.valid[idx] || rs.scans == nil {
		return nil, false
	}
	return rs.scans[idx], true
}

// Answered returns how many slots hold a recorded result.
func (rs *ResultSet) Answered() int {
	n := 0
	for _, v := range rs.valid {
		if v {
			n++
		}
	}
	return n
}

// SortByKey stably sorts the sequence by key, preserving the original
// order among equal keys (the pre-sorting step of §IV-E that one-pass
// QSAT relies on). Stability is essential: QSAT's correctness depends on
// the relative order of same-key queries.
func SortByKey(qs []Query) {
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Key < qs[j].Key })
}

// IsSortedByKey reports whether qs is non-decreasing in key and, among
// equal keys, non-decreasing in original index (stable order).
func IsSortedByKey(qs []Query) bool {
	for i := 1; i < len(qs); i++ {
		if qs[i].Key < qs[i-1].Key {
			return false
		}
		if qs[i].Key == qs[i-1].Key && qs[i].Idx < qs[i-1].Idx {
			return false
		}
	}
	return true
}

// KeyRuns calls fn for every maximal run of equal keys in a key-sorted
// sequence. fn receives the half-open range [lo, hi) of the run.
func KeyRuns(qs []Query, fn func(lo, hi int)) {
	for lo := 0; lo < len(qs); {
		hi := lo + 1
		for hi < len(qs) && qs[hi].Key == qs[lo].Key {
			hi++
		}
		fn(lo, hi)
		lo = hi
	}
}

// CountOps tallies the number of searches, inserts, and deletes in qs.
// Scans and RMWs are not included; use CountOpsFull when a batch may
// mix all five ops.
func CountOps(qs []Query) (searches, inserts, deletes int) {
	for i := range qs {
		switch qs[i].Op {
		case OpSearch:
			searches++
		case OpInsert:
			inserts++
		case OpDelete:
			deletes++
		}
	}
	return
}

// CountOpsFull tallies all five operation kinds in qs.
func CountOpsFull(qs []Query) (searches, inserts, deletes, scans, rmws int) {
	for i := range qs {
		switch qs[i].Op {
		case OpSearch:
			searches++
		case OpInsert:
			inserts++
		case OpDelete:
			deletes++
		case OpScan:
			scans++
		case OpRMW:
			rmws++
		}
	}
	return
}
