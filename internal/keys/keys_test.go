package keys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{OpSearch, "S"},
		{OpInsert, "I"},
		{OpDelete, "D"},
		{Op(9), "Op(9)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestOpIsDefining(t *testing.T) {
	if OpSearch.IsDefining() {
		t.Error("search must not be a defining op")
	}
	if !OpInsert.IsDefining() {
		t.Error("insert must be a defining op")
	}
	if !OpDelete.IsDefining() {
		t.Error("delete must be a defining op")
	}
}

func TestQueryString(t *testing.T) {
	cases := []struct {
		q    Query
		want string
	}{
		{Query{Op: OpInsert, Key: 7, Value: 42, Idx: 3}, "I(7,42)@3"},
		{Query{Op: OpDelete, Key: 9, Idx: 0}, "D(9)@0"},
		{Query{Op: OpSearch, Key: 1, Idx: 8}, "S(1)@8"},
	}
	for _, c := range cases {
		if got := c.q.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestConstructors(t *testing.T) {
	if q := Search(5); q.Op != OpSearch || q.Key != 5 {
		t.Errorf("Search(5) = %v", q)
	}
	if q := Insert(5, 6); q.Op != OpInsert || q.Key != 5 || q.Value != 6 {
		t.Errorf("Insert(5,6) = %v", q)
	}
	if q := Delete(5); q.Op != OpDelete || q.Key != 5 {
		t.Errorf("Delete(5) = %v", q)
	}
}

func TestNumber(t *testing.T) {
	qs := []Query{Search(3), Insert(1, 2), Delete(9)}
	Number(qs)
	for i, q := range qs {
		if q.Idx != int32(i) {
			t.Errorf("qs[%d].Idx = %d, want %d", i, q.Idx, i)
		}
	}
}

func TestResultSetBasic(t *testing.T) {
	rs := NewResultSet(4)
	if rs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rs.Len())
	}
	rs.Set(2, 99, true)
	rs.Set(3, 0, false)
	if r, ok := rs.Get(2); !ok || r.Value != 99 || !r.Found {
		t.Errorf("Get(2) = %v, %v", r, ok)
	}
	if r, ok := rs.Get(3); !ok || r.Found {
		t.Errorf("Get(3) = %v, %v; want recorded not-found", r, ok)
	}
	if _, ok := rs.Get(0); ok {
		t.Error("Get(0) should not be recorded")
	}
	if got := rs.Answered(); got != 2 {
		t.Errorf("Answered = %d, want 2", got)
	}
}

func TestResultSetReset(t *testing.T) {
	rs := NewResultSet(4)
	rs.Set(1, 7, true)
	rs.Reset(2)
	if rs.Len() != 2 {
		t.Fatalf("Len after Reset = %d, want 2", rs.Len())
	}
	if _, ok := rs.Get(1); ok {
		t.Error("Reset must clear recorded results")
	}
	rs.Reset(8) // grow beyond capacity
	if rs.Len() != 8 {
		t.Fatalf("Len after grow = %d, want 8", rs.Len())
	}
	if rs.Answered() != 0 {
		t.Error("grown set must be empty")
	}
}

func TestResultSetGetOutOfRange(t *testing.T) {
	rs := NewResultSet(1)
	if _, ok := rs.Get(5); ok {
		t.Error("out-of-range Get must report !ok")
	}
}

func TestSortByKeyStable(t *testing.T) {
	qs := Number([]Query{
		Insert(5, 1), Search(3), Insert(5, 2), Delete(3), Search(5), Insert(1, 9),
	})
	SortByKey(qs)
	if !IsSortedByKey(qs) {
		t.Fatalf("not sorted: %v", qs)
	}
	// Same-key queries must preserve original order.
	want := []int32{5, 1, 3, 0, 2, 4} // keys: 1,3,3,5,5,5
	for i, w := range want {
		if qs[i].Idx != w {
			t.Fatalf("qs[%d].Idx = %d, want %d (%v)", i, qs[i].Idx, w, qs)
		}
	}
}

func TestIsSortedByKeyDetectsViolations(t *testing.T) {
	if !IsSortedByKey(nil) {
		t.Error("empty sequence is sorted")
	}
	bad := []Query{{Key: 2}, {Key: 1}}
	if IsSortedByKey(bad) {
		t.Error("descending keys must not be sorted")
	}
	unstable := []Query{{Key: 2, Idx: 5}, {Key: 2, Idx: 1}}
	if IsSortedByKey(unstable) {
		t.Error("same-key descending Idx must not count as stable-sorted")
	}
}

func TestKeyRuns(t *testing.T) {
	qs := []Query{{Key: 1}, {Key: 1}, {Key: 2}, {Key: 5}, {Key: 5}, {Key: 5}}
	var runs [][2]int
	KeyRuns(qs, func(lo, hi int) { runs = append(runs, [2]int{lo, hi}) })
	want := [][2]int{{0, 2}, {2, 3}, {3, 6}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
}

func TestKeyRunsEmpty(t *testing.T) {
	called := false
	KeyRuns(nil, func(lo, hi int) { called = true })
	if called {
		t.Error("KeyRuns on empty slice must not call fn")
	}
}

func TestCountOps(t *testing.T) {
	qs := []Query{Search(1), Search(2), Insert(3, 0), Delete(4), Delete(5), Delete(6)}
	s, i, d := CountOps(qs)
	if s != 2 || i != 1 || d != 3 {
		t.Errorf("CountOps = %d,%d,%d; want 2,1,3", s, i, d)
	}
}

// Property: SortByKey always yields a stable key-sorted permutation.
func TestSortByKeyProperty(t *testing.T) {
	f := func(rawKeys []uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := make([]Query, len(rawKeys))
		for i, k := range rawKeys {
			qs[i] = Query{Key: Key(k % 64), Op: Op(r.Intn(3)), Value: Value(r.Uint64())}
		}
		Number(qs)
		orig := make([]Query, len(qs))
		copy(orig, qs)
		SortByKey(qs)
		if !IsSortedByKey(qs) {
			return false
		}
		// Permutation check: every original query appears exactly once.
		seen := make(map[int32]Query, len(orig))
		for _, q := range qs {
			if _, dup := seen[q.Idx]; dup {
				return false
			}
			seen[q.Idx] = q
		}
		for _, q := range orig {
			if got, ok := seen[q.Idx]; !ok || got != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
