package core

// Ablation benchmarks for the design choices called out in DESIGN.md
// §5: one-pass vs two-round QSAT, cache capacity and policy sweeps,
// and pre-sorted vs unsorted batches.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bsp"
	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/workload"
)

// ablationBatch builds a skewed batch for the QSAT ablations.
func ablationBatch(n int) []keys.Query {
	r := rand.New(rand.NewSource(99))
	gen := workload.NewZipfian(1<<16, 0.99)
	return workload.Batch(gen, r, n, 0.5)
}

// BenchmarkAblationOnePassQSAT measures the production one-pass QSAT
// (Algorithm 2) on a sorted batch.
func BenchmarkAblationOnePassQSAT(b *testing.B) {
	base := ablationBatch(1 << 16)
	keys.SortByKey(base)
	var router Router
	rs := keys.NewResultSet(len(base))
	e := NewEmitter(&router, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Reset(len(base))
		rs.Reset(len(base))
		e.Reset()
		QSATSequence(base, e)
	}
	b.ReportMetric(float64(len(e.Out)), "remaining")
}

// BenchmarkAblationTwoRoundQSAT measures the reference two-round QSAT
// on the same batch — the cost of not fusing the rounds (§IV-E).
func BenchmarkAblationTwoRoundQSAT(b *testing.B) {
	base := ablationBatch(1 << 16)
	b.ResetTimer()
	var out []TransformedOp
	for i := 0; i < b.N; i++ {
		out = TwoRoundQSAT(base)
	}
	b.ReportMetric(float64(len(out)), "ops")
}

// BenchmarkAblationCacheCapacity sweeps the top-K cache size (K) on a
// skewed workload: too small thrashes (eviction flushes), large enough
// absorbs the hot set.
func BenchmarkAblationCacheCapacity(b *testing.B) {
	for _, k := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			benchEngine(b, EngineConfig{
				Mode:          IntraInter,
				Palm:          palm.Config{Workers: 1, LoadBalance: true},
				CacheCapacity: k,
			})
		})
	}
}

// BenchmarkAblationCachePolicy compares LRU, FIFO, and CLOCK
// replacement at a fixed capacity.
func BenchmarkAblationCachePolicy(b *testing.B) {
	for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.CLOCK} {
		b.Run(pol.String(), func(b *testing.B) {
			benchEngine(b, EngineConfig{
				Mode:          IntraInter,
				Palm:          palm.Config{Workers: 1, LoadBalance: true},
				CacheCapacity: 1 << 12,
				CachePolicy:   pol,
			})
		})
	}
}

// benchEngine streams skewed batches through an engine configuration.
func benchEngine(b *testing.B, cfg EngineConfig) {
	b.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	r := rand.New(rand.NewSource(7))
	gen := workload.NewZipfian(1<<18, 0.99)
	const batchSize = 1 << 14
	rs := keys.NewResultSet(batchSize)
	batch := make([]keys.Query, batchSize)
	// Warm the tree and cache.
	for i := 0; i < 4; i++ {
		workload.FillBatch(gen, r, batch, 0.5)
		rs.Reset(batchSize)
		eng.ProcessBatch(batch, rs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.FillBatch(gen, r, batch, 0.5)
		rs.Reset(batchSize)
		b.StartTimer()
		eng.ProcessBatch(batch, rs)
	}
	b.StopTimer()
	st := eng.Stats()
	if st.CacheHits+st.CacheMisses > 0 {
		b.ReportMetric(100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), "hit%")
	}
}

// BenchmarkAblationPreSorted compares PALM on pre-sorted vs unsorted
// batches, isolating the pre-sorting cost QTrans piggybacks on (§IV-E).
func BenchmarkAblationPreSorted(b *testing.B) {
	for _, pre := range []bool{false, true} {
		name := "unsorted"
		if pre {
			name = "presorted"
		}
		b.Run(name, func(b *testing.B) {
			pool := bsp.NewPool(1)
			defer pool.Close()
			proc, err := palm.New(palm.Config{Workers: 1, LoadBalance: true, PreSorted: pre}, pool)
			if err != nil {
				b.Fatal(err)
			}
			defer proc.Close()
			r := rand.New(rand.NewSource(3))
			gen := workload.NewUniform(1 << 18)
			const batchSize = 1 << 14
			rs := keys.NewResultSet(batchSize)
			batch := make([]keys.Query, batchSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				workload.FillBatch(gen, r, batch, 0.5)
				if pre {
					keys.SortByKey(batch)
				}
				rs.Reset(batchSize)
				b.StartTimer()
				proc.ProcessBatch(batch, rs)
			}
		})
	}
}

// BenchmarkAblationSortAlgorithm compares the default radix sort
// against the comparison merge sort through the full engine (org mode,
// where the batch sort is the dominant transform-side cost).
func BenchmarkAblationSortAlgorithm(b *testing.B) {
	for _, cmp := range []bool{false, true} {
		name := "radix"
		if cmp {
			name = "merge"
		}
		b.Run(name, func(b *testing.B) {
			benchEngine(b, EngineConfig{
				Mode:        Original,
				Palm:        palm.Config{Workers: 1, LoadBalance: true},
				CompareSort: cmp,
			})
		})
	}
}

// BenchmarkAblationRouterReset isolates the per-batch Router clearing
// cost, the only O(batch) fixed overhead QTrans adds.
func BenchmarkAblationRouterReset(b *testing.B) {
	var router Router
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Reset(1 << 20)
	}
}
