package core

import (
	"sort"

	"repro/internal/bsp"
	"repro/internal/keys"
	"repro/internal/stats"
)

// Transformer performs the parallel intra-batch QTrans of §V-A over a
// BSP pool:
//
//	Phase I:  the batch is partitioned into one contiguous mini-batch
//	          per worker; each worker stably sorts its mini-batch by key
//	          and runs sequential one-pass QSAT over it.
//	Phase II: the surviving queries are shuffled (merged) by key, the
//	          key space is split across workers along run boundaries
//	          with prefix-sum load balancing, and each worker runs QSAT
//	          again over every per-key sequence it owns.
//
// After Phase II at most one defining query and at most one
// representative search remain per distinct key. Inferred answers have
// already been written to the batch's ResultSet; representative
// searches that survive carry Router chains to broadcast once the tree
// answers them.
//
// A Transformer is reusable across batches but not concurrently.
type Transformer struct {
	pool *bsp.Pool
	// Router is exposed so the integration layer (Engine) can resolve
	// cache-served representatives and broadcast surviving ones.
	Router Router
	// CompareSort selects comparison sorting for the Phase-I
	// mini-batch sorts and the Phase-II shuffle instead of the default
	// radix sort (ablation).
	CompareSort bool

	emitters []*Emitter
	radix    []bsp.RadixScratch
	merged   []keys.Query
	out      []keys.Query
	reps     []int32
	inferred int

	// Epoch-plan scratch (TransformEpochs): per-epoch survivor copies
	// must all stay alive until the whole batch is applied, so they are
	// copied out of the reused t.out into planBuf.
	planBuf []keys.Query
	plans   [][]keys.Query
}

// NewTransformer creates a Transformer running on pool.
func NewTransformer(pool *bsp.Pool) *Transformer {
	t := &Transformer{pool: pool}
	t.emitters = make([]*Emitter, pool.N())
	t.radix = make([]bsp.RadixScratch, pool.N())
	return t
}

// Inferred reports how many search answers the last Transform produced
// by inference (without tree evaluation).
func (t *Transformer) Inferred() int { return t.inferred }

// Reps returns the surviving representative searches of the last
// Transform; after tree evaluation the caller must Broadcast each.
func (t *Transformer) Reps() []int32 { return t.reps }

// Transform runs both phases on the batch, writing inferred answers
// into rs and returning the reduced, stably key-sorted query sequence
// that still requires tree evaluation. The input slice is reordered in
// place (it becomes the Phase-I sort scratch). st may be nil.
func (t *Transformer) Transform(qs []keys.Query, rs *keys.ResultSet, st *stats.Batch) []keys.Query {
	t.Router.Reset(len(qs))
	t.reps = t.reps[:0]
	t.inferred = 0
	return t.transform(qs, rs, st)
}

// transform is Transform without the Router/reps reset, so epoch-wise
// callers (TransformEpochs) can run it repeatedly over sub-batches
// whose Idx sets are disjoint slices of one original batch. inferred
// and reps accumulate across calls.
func (t *Transformer) transform(qs []keys.Query, rs *keys.ResultSet, st *stats.Batch) []keys.Query {
	if len(qs) == 0 {
		return nil
	}
	startInferred := t.inferred

	var sw stats.Stopwatch
	if st != nil {
		sw = st.Timer(stats.StageQSAT1)
	}

	// Phase I: per-mini-batch sort + QSAT.
	nw := t.pool.N()
	n := len(qs)
	t.pool.Run(func(tid int) {
		lo, hi := bsp.SplitRange(tid, nw, n)
		mb := qs[lo:hi]
		if t.CompareSort {
			sortStable(mb)
		} else {
			t.radix[tid].RadixSortRun(mb)
		}
		e := t.emitters[tid]
		if e == nil {
			e = NewEmitter(&t.Router, rs)
			t.emitters[tid] = e
		} else {
			e.rs = rs
		}
		e.CollectReps = false
		e.Reset()
		QSATSequence(mb, e)
	})
	if st != nil {
		sw.Stop()
		sw = st.Timer(stats.StageQSAT2)
	}

	// Phase II: shuffle by key. The per-worker outputs are each sorted
	// by (key, original index); concatenating and re-sorting merges
	// them stably. Cross-mini-batch per-key order is preserved because
	// mini-batches are contiguous original ranges, so original indices
	// increase with mini-batch number.
	t.merged = t.merged[:0]
	for _, e := range t.emitters {
		if e != nil {
			t.merged = append(t.merged, e.Out...)
			t.inferred += e.Inferred
		}
	}
	if t.CompareSort {
		t.pool.SortQueries(t.merged)
	} else {
		t.pool.RadixSortQueries(t.merged)
	}

	// Split the merged sequence across workers along key-run
	// boundaries (a key's queries must stay on one worker, §V-A).
	bounds := runAlignedBounds(t.merged, nw)
	t.pool.Run(func(tid int) {
		lo, hi := bounds[tid], bounds[tid+1]
		e := t.emitters[tid]
		e.CollectReps = true
		e.Reset()
		QSATSequence(t.merged[lo:hi], e)
	})

	t.out = t.out[:0]
	for _, e := range t.emitters {
		t.out = append(t.out, e.Out...)
		t.reps = append(t.reps, e.Reps...)
		t.inferred += e.Inferred
	}
	if st != nil {
		sw.Stop()
		st.InferredReturns += t.inferred - startInferred
	}
	return t.out
}

// TransformSim runs the simulation-based elimination of §IV-E (the
// SimIntra mode): the unsorted batch is absorbed into a scratch hash
// map, then only the (much smaller) reduced stream is sorted. Like
// Transform it writes inferred answers into rs, records surviving
// representatives for Broadcast, and returns the reduced, stably
// key-sorted sequence. st may be nil.
func (t *Transformer) TransformSim(qs []keys.Query, rs *keys.ResultSet, st *stats.Batch) []keys.Query {
	t.Router.Reset(len(qs))
	t.reps = t.reps[:0]
	t.inferred = 0
	return t.transformSim(qs, rs, st)
}

// transformSim is TransformSim without the Router/reps reset (see
// transform).
func (t *Transformer) transformSim(qs []keys.Query, rs *keys.ResultSet, st *stats.Batch) []keys.Query {
	if len(qs) == 0 {
		return nil
	}

	var sw stats.Stopwatch
	if st != nil {
		sw = st.Timer(stats.StageQSAT1)
	}
	remaining, reps, inferred := SimQSAT(qs, &t.Router, rs)
	t.inferred += inferred
	t.reps = append(t.reps, reps...)
	if st != nil {
		sw.Stop()
		sw = st.Timer(stats.StageQSAT2)
	}

	if t.CompareSort {
		t.pool.SortQueries(remaining)
	} else {
		t.pool.RadixSortQueries(remaining)
	}
	if st != nil {
		sw.Stop()
		st.InferredReturns += inferred
	}
	return remaining
}

// TransformEpochs runs the transformer over each epoch of a scan/RMW
// batch in order, against one shared Router sized for the whole batch
// (epoch Idx sets are disjoint, so chains never collide). The returned
// per-epoch survivor plans are copies that all stay valid until the
// next TransformEpochs/Transform call — the engine commits their
// concatenation to the WAL once, then applies them interleaved with
// the batch's scan groups. Accumulated reps are broadcast once at end
// of batch via Broadcast. sim selects the SimQSAT path (SimIntra).
func (t *Transformer) TransformEpochs(epochs [][]keys.Query, totalN int, rs *keys.ResultSet, st *stats.Batch, sim bool) [][]keys.Query {
	t.Router.Reset(totalN)
	t.reps = t.reps[:0]
	t.inferred = 0
	t.planBuf = t.planBuf[:0]
	t.plans = t.plans[:0]

	ends := make([]int, 0, len(epochs))
	for _, ep := range epochs {
		var out []keys.Query
		if sim {
			out = t.transformSim(ep, rs, st)
		} else {
			out = t.transform(ep, rs, st)
		}
		t.planBuf = append(t.planBuf, out...)
		ends = append(ends, len(t.planBuf))
	}
	lo := 0
	for _, hi := range ends {
		t.plans = append(t.plans, t.planBuf[lo:hi:hi])
		lo = hi
	}
	return t.plans
}

// Broadcast fans each surviving representative's evaluated result out
// to its chain. Call after the reduced batch has been evaluated.
func (t *Transformer) Broadcast(rs *keys.ResultSet) {
	for _, rep := range t.reps {
		t.Router.Broadcast(rs, rep)
	}
}

// sortStable stably key-sorts a mini-batch. Sorting by (Key, Idx) with
// an unstable sort is equivalent because original indices are unique.
func sortStable(qs []keys.Query) {
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].Key != qs[j].Key {
			return qs[i].Key < qs[j].Key
		}
		return qs[i].Idx < qs[j].Idx
	})
}

// runAlignedBounds returns nw+1 boundaries splitting qs into nw chunks
// of near-equal length whose edges never split a same-key run.
func runAlignedBounds(qs []keys.Query, nw int) []int {
	bounds := make([]int, nw+1)
	n := len(qs)
	for t := 1; t < nw; t++ {
		b := t * n / nw
		// Advance past the current run.
		for b > 0 && b < n && qs[b].Key == qs[b-1].Key {
			b++
		}
		if b < bounds[t-1] {
			b = bounds[t-1]
		}
		bounds[t] = b
	}
	bounds[nw] = n
	return bounds
}
