package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keys"
)

// The reference two-round QSAT on the paper's running example (Fig. 7):
// nine queries collapse to four inferred returns and three defining
// queries.
func ExampleTwoRoundQSAT() {
	qs := keys.Number([]keys.Query{
		keys.Insert(1, 1), // I(key1, v1)
		keys.Search(1),    // S(key1)
		keys.Insert(2, 2), // I(key2, v2)
		keys.Search(1),    // S(key1)
		keys.Insert(3, 3), // I(key3, v3)
		keys.Insert(2, 4), // I(key2, v4)
		keys.Delete(3),    // D(key3)
		keys.Search(3),    // S(key3)
		keys.Search(2),    // S(key2)
	})
	for _, op := range core.TwoRoundQSAT(qs) {
		fmt.Println(op)
	}
	// Output:
	// ret 1
	// ret 1
	// ret null
	// ret 4
	// I(1,1)@0
	// I(2,4)@5
	// D(3)@6
}

// The forward define-use analysis exposes QUD chains: each search's
// defining query.
func ExampleAnalyze() {
	qs := keys.Number([]keys.Query{
		keys.Insert(7, 1),
		keys.Search(7),
		keys.Delete(7),
		keys.Search(7),
	})
	a := core.Analyze(qs)
	for i, d := range a.QUD {
		if qs[i].Op == keys.OpSearch && d >= 0 {
			fmt.Printf("q%d <- q%d\n", i+1, d+1)
		}
	}
	// Output:
	// q2 <- q1
	// q4 <- q3
}

// One-pass QSAT (Algorithm 2) over a same-key run: backward sweep,
// inferred answers, surviving q_o.
func ExampleQSATRun() {
	run := keys.Number([]keys.Query{
		keys.Search(9),    // leading: survives as representative
		keys.Insert(9, 5), // overwritten
		keys.Search(9),    // inferred: 5
		keys.Insert(9, 6), // q_o: survives
	})
	var router core.Router
	router.Reset(len(run))
	rs := keys.NewResultSet(len(run))
	e := core.NewEmitter(&router, rs)
	core.QSATRun(run, e)
	for _, q := range e.Out {
		fmt.Println("evaluate", q)
	}
	r, _ := rs.Get(2)
	fmt.Println("inferred:", r.Value, r.Found)
	// Output:
	// evaluate S(9)@0
	// evaluate I(9,6)@3
	// inferred: 5 true
}

// The §IV-D extension: composed queries resolve through multi-hop QUD
// chains like compiler constant propagation.
func ExampleXResolve() {
	qs := []core.XQuery{
		{Op: core.XInsert, Key: 3, Value: 7},
		{Op: core.XInsertFrom, Key: 2, SrcKey: 3}, // I(2, S(3))
		{Op: core.XInsertFrom, Key: 1, SrcKey: 2}, // I(1, S(2))
	}
	for _, q := range core.XResolve(qs) {
		fmt.Println(q)
	}
	// Output:
	// I(3,7)
	// I(2,7)
	// I(1,7)
}
