// Package core implements QTrans, the paper's contribution: a
// compiler-inspired query sequence analysis and transformation (QSAT)
// framework that eliminates redundant and unnecessary B+ tree queries
// from a batch before evaluation (Sections IV and V of the paper).
//
// The package provides three layers:
//
//   - The reference two-round QSAT of §IV-B/§IV-C: define-use analysis
//     producing QUD chains, mark-sweep useless-query elimination
//     (Algorithm 1), and query inference & reordering (qud.go).
//   - The production one-pass QSAT of §IV-E (Algorithm 2), a single
//     backward sweep over each same-key run of a pre-sorted batch
//     (onepass.go).
//   - The parallel two-phase intra-batch transformer of §V-A and the
//     Engine that integrates QTrans (plus the optional inter-batch
//     top-K cache of §V-B) into the PALM processor (parallel.go,
//     engine.go).
package core

import "repro/internal/keys"

// Router routes inferred and evaluated search answers back to the
// original batch positions. QSAT collapses many search queries of the
// same key into one representative; the Router remembers, per
// representative, the chain of other original query indices that must
// receive the same answer.
//
// Chains are stored as a linked list threaded through two flat arrays
// (next/tail) indexed by original query index, so building and merging
// chains is O(1) and the only per-batch cost is clearing the arrays.
type Router struct {
	next []int32
	tail []int32
}

// Reset prepares the router for a batch of n queries.
func (r *Router) Reset(n int) {
	if cap(r.next) < n {
		r.next = make([]int32, n)
		r.tail = make([]int32, n)
	}
	r.next = r.next[:n]
	r.tail = r.tail[:n]
	for i := range r.next {
		r.next[i] = -1
		r.tail[i] = int32(i)
	}
}

// Append links other (and other's whole chain) onto rep's chain.
func (r *Router) Append(rep, other int32) {
	r.next[r.tail[rep]] = other
	r.tail[rep] = r.tail[other]
}

// Resolve delivers an answer to rep and every index chained to it,
// returning how many results were written.
func (r *Router) Resolve(rs *keys.ResultSet, rep int32, v keys.Value, found bool) int {
	n := 0
	for i := rep; i >= 0; i = r.next[i] {
		rs.Set(i, v, found)
		n++
	}
	return n
}

// Broadcast copies rep's already-recorded result to the rest of its
// chain. Used after tree evaluation answers a surviving representative
// search.
func (r *Router) Broadcast(rs *keys.ResultSet, rep int32) int {
	res, ok := rs.Get(rep)
	if !ok {
		// The representative was never answered (can only happen if the
		// caller skipped evaluation); deliver not-found to the chain so
		// no query is silently dropped.
		res = keys.Result{}
	}
	n := 0
	for i := r.next[rep]; i >= 0; i = r.next[i] {
		rs.Set(i, res.Value, res.Found)
		n++
	}
	return n
}

// ChainLen returns the number of indices chained behind rep (excluding
// rep itself). Intended for tests and stats.
func (r *Router) ChainLen(rep int32) int {
	n := 0
	for i := r.next[rep]; i >= 0; i = r.next[i] {
		n++
	}
	return n
}
