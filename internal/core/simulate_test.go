package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
	"repro/internal/palm"
)

func TestSimQSATPaperExample(t *testing.T) {
	qs := paperExample()
	var router Router
	router.Reset(len(qs))
	rs := keys.NewResultSet(len(qs))
	out, reps, inferred := SimQSAT(qs, &router, rs)
	if inferred != 4 {
		t.Fatalf("inferred = %d, want 4", inferred)
	}
	if len(out) != 3 {
		t.Fatalf("out = %v, want 3 defines", out)
	}
	if len(reps) != 0 {
		t.Fatalf("reps = %v, want none", reps)
	}
	checks := []struct {
		idx   int32
		found bool
		v     keys.Value
	}{{1, true, 1}, {3, true, 1}, {7, false, 0}, {8, true, 4}}
	for _, c := range checks {
		res, ok := rs.Get(c.idx)
		if !ok || res.Found != c.found || (c.found && res.Value != c.v) {
			t.Errorf("idx %d: %+v, %v", c.idx, res, ok)
		}
	}
}

func TestSimQSATUnsortedInput(t *testing.T) {
	// SimQSAT's selling point: no pre-sort needed. Same sequence,
	// scrambled key order, same per-key semantics.
	qs := keys.Number([]keys.Query{
		keys.Search(9),
		keys.Insert(1, 5),
		keys.Search(1),
		keys.Insert(9, 7),
		keys.Search(9),
	})
	var router Router
	router.Reset(len(qs))
	rs := keys.NewResultSet(len(qs))
	out, reps, inferred := SimQSAT(qs, &router, rs)
	if inferred != 2 {
		t.Fatalf("inferred = %d, want 2 (searches after defines)", inferred)
	}
	// Key 9's leading search survives; both defines survive.
	if len(out) != 3 || len(reps) != 1 || reps[0] != 0 {
		t.Fatalf("out=%v reps=%v", out, reps)
	}
	if r, _ := rs.Get(2); !r.Found || r.Value != 5 {
		t.Fatalf("S(1) = %+v", r)
	}
	if r, _ := rs.Get(4); !r.Found || r.Value != 7 {
		t.Fatalf("S(9) = %+v", r)
	}
}

// TestSimQSATMatchesOnePass: the simulation-based and symbolic QSAT
// must produce equivalent reduced semantics for any sequence.
func TestSimQSATMatchesOnePass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := randomSequence(r, 30+r.Intn(200), 1+r.Intn(10))

		// Simulation path.
		var simRouter Router
		simRouter.Reset(len(qs))
		simRS := keys.NewResultSet(len(qs))
		simOut, _, _ := SimQSAT(qs, &simRouter, simRS)

		// Symbolic path.
		rs := keys.NewResultSet(len(qs))
		e, _ := runQSATSeq(qs, rs)

		// Same surviving defines (order-insensitive compare).
		simDefs := map[string]int{}
		for _, q := range simOut {
			if q.Op.IsDefining() {
				simDefs[q.String()]++
			}
		}
		symDefs := map[string]int{}
		for _, q := range e.Out {
			if q.Op.IsDefining() {
				symDefs[q.String()]++
			}
		}
		if len(simDefs) != len(symDefs) {
			return false
		}
		for k, v := range symDefs {
			if simDefs[k] != v {
				return false
			}
		}
		// Same inferred answers.
		for i := int32(0); i < int32(len(qs)); i++ {
			a, aok := simRS.Get(i)
			b, bok := rs.Get(i)
			if aok != bok || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSimIntraDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	batches := skewedBatches(r, 5, 3000, 20, 2000, 0.5)
	engineDifferential(t, EngineConfig{
		Mode: SimIntra,
		Palm: palm.Config{Order: 8, Workers: 4, LoadBalance: true},
	}, batches)
}

func BenchmarkAblationSimQSAT(b *testing.B) {
	base := ablationBatch(1 << 16)
	var router Router
	rs := keys.NewResultSet(len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Reset(len(base))
		rs.Reset(len(base))
		SimQSAT(base, &router, rs)
	}
}
