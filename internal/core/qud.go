package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/keys"
)

// This file contains the reference (two-round) QSAT of §IV-B and §IV-C:
// a forward define-use analysis building query-level use-define (QUD)
// chains, the mark-sweep useless-query elimination of Algorithm 1, and
// the query inference & reordering round. It is the executable
// specification that the production one-pass QSAT (onepass.go) is
// property-tested against, and it powers the running-example demo
// (Fig. 7).

// Analysis is the result of the forward define-use analysis over a
// query sequence (Fig. 7-(a)/(b)).
type Analysis struct {
	// Queries is the analyzed sequence (positions are sequence indices,
	// not Query.Idx).
	Queries []keys.Query
	// QUD[i] is the sequence position of the defining query reaching
	// query i with the same key, or -1 (the QUD chain of §IV-B).
	// Defined for every query; for search queries it links use→def, for
	// defining queries it links to the previous definition they
	// overwrite.
	QUD []int
	// Reaching[i] is the set e after processing query i: for each key,
	// the position of the defining query that reaches past query i.
	// Stored sparsely for the demo output.
	Reaching []map[keys.Key]int
}

// Analyze performs the forward define-use analysis of §IV-B over the
// sequence in its given (arrival) order.
func Analyze(qs []keys.Query) *Analysis {
	a := &Analysis{
		Queries:  qs,
		QUD:      make([]int, len(qs)),
		Reaching: make([]map[keys.Key]int, len(qs)),
	}
	cur := make(map[keys.Key]int)
	for i, q := range qs {
		if q.Op == keys.OpScan {
			// A scan uses a key *range*; it has no single reaching
			// definition. Its fencing is handled by MarkSweep and
			// sweepOverwritten directly against cur.
			a.QUD[i] = -1
		} else if d, ok := cur[q.Key]; ok {
			a.QUD[i] = d
		} else {
			a.QUD[i] = -1
		}
		if q.Op.IsDefining() {
			// OpRMW lands here too: it is a define (and, unlike
			// insert/delete, also a use — its own QUD link above).
			cur[q.Key] = i
		}
		snap := make(map[keys.Key]int, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		a.Reaching[i] = snap
	}
	return a
}

// MarkSweep is Algorithm 1: useless-query elimination, extended to the
// scan/RMW algebra. It marks every search useful along with its
// QUD-chained defining query; marks every scan useful along with every
// define whose effect reaches into the scanned range (a scan is a use
// of *all* keys in [lo, hi), so in-range defines fence elimination);
// marks every RMW useful (its result is observable) along with its
// reaching define (the RMW's input); and additionally keeps the last
// defining query of every key (which determines the final key-value
// state of the tree, per the round-1 goal stated in §IV-C). It returns
// the positions of useful queries in order.
func (a *Analysis) MarkSweep() []int {
	useful := make([]bool, len(a.Queries))
	last := make(map[keys.Key]int)
	for i, q := range a.Queries {
		switch q.Op {
		case keys.OpSearch:
			useful[i] = true
			if d := a.QUD[i]; d >= 0 {
				useful[d] = true
			}
		case keys.OpScan:
			useful[i] = true
			if i > 0 {
				for k, d := range a.Reaching[i-1] {
					if k >= q.Key && k < q.Key2 {
						useful[d] = true
					}
				}
			}
		case keys.OpRMW:
			useful[i] = true
			if d := a.QUD[i]; d >= 0 {
				useful[d] = true
			}
			last[q.Key] = i
		default:
			last[q.Key] = i
		}
	}
	for _, i := range last {
		useful[i] = true
	}
	out := make([]int, 0, len(a.Queries))
	for i := range a.Queries {
		if useful[i] {
			out = append(out, i)
		}
	}
	return out
}

// TransformedOp is one element of the round-2 output: either a query to
// evaluate or an inferred return.
type TransformedOp struct {
	// Return reports whether this op is an inferred return (true) or a
	// remaining query (false).
	Return bool
	// Query is the remaining query when !Return; when Return, Query is
	// the search whose answer was inferred.
	Query keys.Query
	// Value/Found are the inferred answer when Return.
	Value keys.Value
	Found bool
}

// String renders the op in the notation of Fig. 7-(d).
func (op TransformedOp) String() string {
	if op.Return {
		if op.Found {
			return fmt.Sprintf("ret %d", op.Value)
		}
		return "ret null"
	}
	return op.Query.String()
}

// TwoRoundQSAT runs the full reference transformation: Round 1
// (MarkSweep) followed by Round 2 (query inference & reordering,
// §IV-C). Inferred returns are moved to the front of the output, as the
// paper's reordering does, since they depend on no remaining query.
func TwoRoundQSAT(qs []keys.Query) []TransformedOp {
	a := Analyze(qs)
	kept := a.MarkSweep()

	keptSet := make([]bool, len(qs))
	for _, i := range kept {
		keptSet[i] = true
	}

	var returns, remaining []TransformedOp
	for _, i := range kept {
		q := qs[i]
		if q.Op != keys.OpSearch {
			remaining = append(remaining, TransformedOp{Query: q})
			continue
		}
		d := a.QUD[i]
		// Round 1 may have eliminated the defining query d (it was
		// overwritten but still reached this search — impossible:
		// overwriting requires no intervening search, so d reaching a
		// search means d was marked useful). Guard anyway. An RMW
		// reaching definition writes a value derived from tree state,
		// so nothing can be inferred from it: keep the search.
		if d >= 0 && keptSet[d] && qs[d].Op != keys.OpRMW {
			def := qs[d]
			op := TransformedOp{Return: true, Query: q}
			if def.Op == keys.OpInsert {
				op.Value, op.Found = def.Value, true
			}
			returns = append(returns, op)
		} else {
			remaining = append(remaining, TransformedOp{Query: q})
		}
	}

	// Round-1 rescan: defining queries kept only because a search used
	// them may now be dead if a later defining query overwrites them
	// and the intervening searches were all answered by inference. The
	// paper notes this cascading ("as existing opportunities are
	// exploited, more opportunities might be uncovered", §III-C);
	// iterate to a fixed point.
	remaining = sweepOverwritten(remaining)

	return append(returns, remaining...)
}

// sweepOverwritten removes defining queries that are overwritten by a
// later defining query on the same key with no intervening remaining
// use, iterating to a fixed point. Uses fence kills: a search protects
// its key's pending define, a scan protects every pending define whose
// key lies in its range, and an RMW protects its own key's pending
// define (its input) while itself never becoming killable — RMW
// results are observable, so an RMW is never swept.
func sweepOverwritten(ops []TransformedOp) []TransformedOp {
	for {
		changed := false
		lastDef := make(map[keys.Key]int) // key -> position of previous define
		dead := make([]bool, len(ops))
		for i, op := range ops {
			q := op.Query
			switch q.Op {
			case keys.OpSearch:
				delete(lastDef, q.Key)
				continue
			case keys.OpScan:
				for k := range lastDef {
					if k >= q.Key && k < q.Key2 {
						delete(lastDef, k)
					}
				}
				continue
			case keys.OpRMW:
				delete(lastDef, q.Key)
				continue
			}
			if d, ok := lastDef[q.Key]; ok {
				dead[d] = true
				changed = true
			}
			lastDef[q.Key] = i
		}
		if !changed {
			return ops
		}
		out := ops[:0]
		for i, op := range ops {
			if !dead[i] {
				out = append(out, op)
			}
		}
		ops = out
	}
}

// EvaluateReference evaluates a query sequence serially and returns,
// for each result-bearing query (by sequence position), its point
// result, plus the row sets of any scans. Used to check transformed
// outputs against untransformed semantics in tests and the demo.
func EvaluateReference(qs []keys.Query, store map[keys.Key]keys.Value) (map[int]keys.Result, map[int][]keys.KV) {
	res := make(map[int]keys.Result)
	var scans map[int][]keys.KV
	for i, q := range qs {
		switch q.Op {
		case keys.OpSearch:
			v, ok := store[q.Key]
			res[i] = keys.Result{Value: v, Found: ok}
		case keys.OpInsert:
			store[q.Key] = q.Value
		case keys.OpDelete:
			delete(store, q.Key)
		case keys.OpScan:
			var rows []keys.KV
			for k, v := range store {
				if k >= q.Key && k < q.Key2 {
					rows = append(rows, keys.KV{Key: k, Value: v})
				}
			}
			sort.Slice(rows, func(a, b int) bool { return rows[a].Key < rows[b].Key })
			if q.Value > 0 && keys.Value(len(rows)) > q.Value {
				rows = rows[:q.Value]
			}
			if scans == nil {
				scans = make(map[int][]keys.KV)
			}
			scans[i] = rows
			res[i] = keys.Result{Value: keys.Value(len(rows)), Found: len(rows) > 0}
		case keys.OpRMW:
			old, found := store[q.Key]
			switch q.RMW {
			case keys.RMWAdd:
				store[q.Key] = old + q.Value
			case keys.RMWSetIfAbsent:
				if !found {
					store[q.Key] = q.Value
				}
			}
			res[i] = keys.Result{Value: old, Found: found}
		}
	}
	return res, scans
}

// FormatAnalysis renders the analysis like Fig. 7-(a): each query with
// its reaching definition set.
func FormatAnalysis(a *Analysis) string {
	var sb strings.Builder
	for i, q := range a.Queries {
		fmt.Fprintf(&sb, "%2d  %-14s e = {", i+1, q.String())
		first := true
		// Render in sequence order for determinism.
		for j := range a.Queries {
			for _, pos := range a.Reaching[i] {
				if pos == j {
					if !first {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "q%d", j+1)
					first = false
				}
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
