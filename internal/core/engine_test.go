package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/btree"
	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/oracle"
	"repro/internal/palm"
)

// engineDifferential runs the same batches through an Engine and the
// oracle, comparing every search result and the final store. For
// IntraInter engines the cache is flushed before the final comparison.
func engineDifferential(t *testing.T, cfg EngineConfig, batches [][]keys.Query) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	o := oracle.New()

	for bi, batch := range batches {
		keys.Number(batch)
		want := keys.NewResultSet(len(batch))
		o.ApplyAll(batch, want)

		got := keys.NewResultSet(len(batch))
		eng.ProcessBatch(batch, got)

		for i := int32(0); i < int32(len(batch)); i++ {
			w, wok := want.Get(i)
			g, gok := got.Get(i)
			if wok != gok || w != g {
				t.Fatalf("mode=%v batch %d idx %d: got %+v (%v), want %+v (%v)",
					cfg.Mode, bi, i, g, gok, w, wok)
			}
		}
		if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatalf("mode=%v batch %d: %v", cfg.Mode, bi, err)
		}
	}

	eng.Flush()
	gk, gv := eng.Processor().Tree().Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("mode=%v: final sizes %d vs %d", cfg.Mode, len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mode=%v: final mismatch at %d: (%d,%d) vs (%d,%d)",
				cfg.Mode, i, gk[i], gv[i], wk[i], wv[i])
		}
	}
}

func skewedBatches(r *rand.Rand, nBatches, size, hotKeys, coldKeys int, updateRatio float64) [][]keys.Query {
	out := make([][]keys.Query, nBatches)
	for b := range out {
		batch := make([]keys.Query, size)
		for i := range batch {
			var k keys.Key
			if r.Intn(10) < 8 {
				k = keys.Key(r.Intn(hotKeys))
			} else {
				k = keys.Key(hotKeys + r.Intn(coldKeys))
			}
			if r.Float64() < updateRatio {
				if r.Intn(2) == 0 {
					batch[i] = keys.Insert(k, keys.Value(r.Intn(1_000_000)))
				} else {
					batch[i] = keys.Delete(k)
				}
			} else {
				batch[i] = keys.Search(k)
			}
		}
		out[b] = batch
	}
	return out
}

func TestEngineOriginalDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	batches := skewedBatches(r, 5, 3000, 20, 2000, 0.5)
	engineDifferential(t, EngineConfig{
		Mode: Original,
		Palm: palm.Config{Order: 8, Workers: 4, LoadBalance: true},
	}, batches)
}

func TestEngineIntraDifferential(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		r := rand.New(rand.NewSource(int64(workers)))
		batches := skewedBatches(r, 5, 3000, 20, 2000, 0.5)
		engineDifferential(t, EngineConfig{
			Mode: Intra,
			Palm: palm.Config{Order: 8, Workers: workers, LoadBalance: true},
		}, batches)
	}
}

func TestEngineIntraInterDifferential(t *testing.T) {
	for _, capacity := range []int{1, 4, 64, 4096} {
		r := rand.New(rand.NewSource(int64(capacity)))
		batches := skewedBatches(r, 6, 3000, 20, 2000, 0.5)
		engineDifferential(t, EngineConfig{
			Mode:          IntraInter,
			Palm:          palm.Config{Order: 8, Workers: 4, LoadBalance: true},
			CacheCapacity: capacity,
		}, batches)
	}
}

func TestEngineIntraInterPolicies(t *testing.T) {
	for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.CLOCK} {
		r := rand.New(rand.NewSource(int64(pol) + 100))
		batches := skewedBatches(r, 4, 2000, 10, 500, 0.6)
		engineDifferential(t, EngineConfig{
			Mode:          IntraInter,
			Palm:          palm.Config{Order: 8, Workers: 4, LoadBalance: true},
			CacheCapacity: 8,
			CachePolicy:   pol,
		}, batches)
	}
}

func TestEngineCompareSortDifferential(t *testing.T) {
	// The comparison-sort ablation path must be exactly as correct as
	// the default radix path, in every mode.
	for _, mode := range []Mode{Original, Intra, IntraInter, SimIntra} {
		r := rand.New(rand.NewSource(int64(mode) + 77))
		batches := skewedBatches(r, 3, 2500, 15, 1500, 0.5)
		engineDifferential(t, EngineConfig{
			Mode:          mode,
			Palm:          palm.Config{Order: 8, Workers: 4, LoadBalance: true},
			CacheCapacity: 64,
			CompareSort:   true,
		}, batches)
	}
}

func TestEngineSearchOnlyBatches(t *testing.T) {
	// U-0 workload: the QTrans fast path answers everything in Stage 1.
	r := rand.New(rand.NewSource(7))
	seed := make([]keys.Query, 2000)
	for i := range seed {
		seed[i] = keys.Insert(keys.Key(i), keys.Value(i*5))
	}
	searches := make([]keys.Query, 3000)
	for i := range searches {
		searches[i] = keys.Search(keys.Key(r.Intn(4000)))
	}
	engineDifferential(t, EngineConfig{
		Mode: Intra,
		Palm: palm.Config{Order: 16, Workers: 4, LoadBalance: true},
	}, [][]keys.Query{seed, searches})
}

func TestEngineDeleteHeavyBatches(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	seed := make([]keys.Query, 3000)
	for i := range seed {
		seed[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	batches := [][]keys.Query{seed}
	for b := 0; b < 3; b++ {
		batch := make([]keys.Query, 3000)
		for i := range batch {
			k := keys.Key(r.Intn(3000))
			switch r.Intn(10) {
			case 0, 1:
				batch[i] = keys.Search(k)
			case 2:
				batch[i] = keys.Insert(k, keys.Value(r.Intn(100)))
			default:
				batch[i] = keys.Delete(k)
			}
		}
		batches = append(batches, batch)
	}
	engineDifferential(t, EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 4, Workers: 4, LoadBalance: true},
		CacheCapacity: 32,
	}, batches)
}

func TestEngineStatsReduction(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode: Intra,
		Palm: palm.Config{Order: 8, Workers: 2, LoadBalance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// 1000 queries on 10 keys: massive redundancy, so the reduction
	// ratio must be high and inferred answers plentiful.
	r := rand.New(rand.NewSource(3))
	batch := make([]keys.Query, 1000)
	for i := range batch {
		k := keys.Key(r.Intn(10))
		if r.Intn(2) == 0 {
			batch[i] = keys.Search(k)
		} else {
			batch[i] = keys.Insert(k, keys.Value(i))
		}
	}
	keys.Number(batch)
	rs := keys.NewResultSet(len(batch))
	eng.ProcessBatch(batch, rs)
	st := eng.Stats()
	if st.RemainingQueries > 20 { // <= 2 per key
		t.Fatalf("remaining = %d, want <= 20", st.RemainingQueries)
	}
	if st.ReductionRatio() < 0.9 {
		t.Fatalf("reduction = %f, want > 0.9", st.ReductionRatio())
	}
	if st.InferredReturns == 0 {
		t.Fatal("no inferred returns recorded")
	}
}

func TestEngineCacheStats(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		CacheCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Two batches over the same two keys: the second batch must hit.
	b1 := keys.Number([]keys.Query{keys.Insert(1, 1), keys.Insert(2, 2)})
	eng.ProcessBatch(b1, keys.NewResultSet(len(b1)))
	b2 := keys.Number([]keys.Query{keys.Search(1), keys.Search(2)})
	rs := keys.NewResultSet(len(b2))
	eng.ProcessBatch(b2, rs)
	if eng.Stats().CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2", eng.Stats().CacheHits)
	}
	for i, want := range []keys.Value{1, 2} {
		res, ok := rs.Get(int32(i))
		if !ok || !res.Found || res.Value != want {
			t.Fatalf("search %d: %+v, %v", i, res, ok)
		}
	}
	// Tree has not seen the cached keys yet (write-back).
	if eng.Processor().Tree().Len() != 0 {
		t.Fatalf("tree Len = %d before Flush, want 0", eng.Processor().Tree().Len())
	}
	eng.Flush()
	if eng.Processor().Tree().Len() != 2 {
		t.Fatalf("tree Len = %d after Flush, want 2", eng.Processor().Tree().Len())
	}
}

func TestEngineEvictionFlushOrdering(t *testing.T) {
	// Capacity-1 cache: inserting key A then key B evicts A's dirty
	// entry; a later search of A in the same batch must still see A's
	// value (the flushed-this-batch path).
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 1, LoadBalance: true},
		CacheCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	b1 := keys.Number([]keys.Query{keys.Insert(1, 11)})
	eng.ProcessBatch(b1, keys.NewResultSet(len(b1)))
	// Key 2's insert evicts key 1 (processed in key order: key 1's
	// search comes first while 1 is still resident... so use key 0 to
	// force the eviction before the search).
	b2 := keys.Number([]keys.Query{keys.Insert(0, 22), keys.Search(1)})
	rs := keys.NewResultSet(len(b2))
	eng.ProcessBatch(b2, rs)
	res, ok := rs.Get(1)
	if !ok || !res.Found || res.Value != 11 {
		t.Fatalf("search after eviction: %+v, %v; want 11", res, ok)
	}
	eng.Flush()
	for k, want := range map[keys.Key]keys.Value{0: 22, 1: 11} {
		v, found := eng.Processor().Tree().Search(k)
		if !found || v != want {
			t.Fatalf("tree[%d] = %d,%v; want %d", k, v, found, want)
		}
	}
}

func TestEngineTrainPrePopulates(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		CacheCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	seed := keys.Number([]keys.Query{keys.Insert(1, 11), keys.Insert(2, 22)})
	eng.ProcessBatch(seed, keys.NewResultSet(len(seed)))
	eng.Flush() // make the tree authoritative

	// Train on one already-resident key and one absent key.
	eng.Train([]keys.Key{1, 99})

	b := keys.Number([]keys.Query{keys.Search(1), keys.Search(99)})
	rs := keys.NewResultSet(len(b))
	eng.ProcessBatch(b, rs)
	if eng.Stats().CacheHits < 2 {
		t.Fatalf("trained keys missed: hits=%d", eng.Stats().CacheHits)
	}
	if r, _ := rs.Get(0); !r.Found || r.Value != 11 {
		t.Fatalf("search trained key = %+v", r)
	}
	if r, _ := rs.Get(1); r.Found {
		t.Fatalf("search trained-absent key = %+v", r)
	}
	// Idempotent: training resident keys is a no-op.
	eng.Train([]keys.Key{1, 99})

	// A non-caching engine ignores Train.
	eng2, _ := NewEngine(EngineConfig{Mode: Intra, Palm: palm.Config{Order: 8, Workers: 1}})
	defer eng2.Close()
	eng2.Train([]keys.Key{1})
}

func TestEngineTrainEvictionFlushesDirty(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 1, LoadBalance: true},
		CacheCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// The insert is absorbed into the capacity-1 cache (dirty).
	b := keys.Number([]keys.Query{keys.Insert(5, 55)})
	eng.ProcessBatch(b, keys.NewResultSet(len(b)))
	if eng.Processor().Tree().Len() != 0 {
		t.Fatal("insert should be cache-resident, not in tree")
	}
	// Training another key evicts the dirty entry, which must be
	// flushed to the tree immediately.
	eng.Train([]keys.Key{7})
	if v, ok := eng.Processor().Tree().Search(5); !ok || v != 55 {
		t.Fatalf("evicted dirty entry not flushed: %d,%v", v, ok)
	}
}

func TestEngineModeString(t *testing.T) {
	if Original.String() != "org" || Intra.String() != "intra" || IntraInter.String() != "inter" {
		t.Fatal("mode names changed; figure output depends on them")
	}
	if Mode(99).String() != "mode?" {
		t.Fatal("unknown mode formatting")
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	eng, _ := NewEngine(EngineConfig{Mode: Intra, Palm: palm.Config{Order: 8, Workers: 2}})
	defer eng.Close()
	eng.ProcessBatch(nil, keys.NewResultSet(0))
	if eng.Stats().BatchSize != 0 {
		t.Fatal("empty batch stats")
	}
}

// Property: all three modes agree with the oracle on arbitrary batch
// streams.
func TestEngineModesProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		mode := Mode(int(modeRaw) % 4)
		r := rand.New(rand.NewSource(seed))
		cfg := EngineConfig{
			Mode:          mode,
			Palm:          palm.Config{Order: 3 + r.Intn(10), Workers: 1 + r.Intn(5), LoadBalance: true},
			CacheCapacity: 1 + r.Intn(64),
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		defer eng.Close()
		o := oracle.New()
		for b := 0; b < 3; b++ {
			n := 100 + r.Intn(1200)
			batch := make([]keys.Query, n)
			for i := range batch {
				k := keys.Key(r.Intn(150))
				switch r.Intn(3) {
				case 0:
					batch[i] = keys.Search(k)
				case 1:
					batch[i] = keys.Insert(k, keys.Value(r.Uint32()))
				default:
					batch[i] = keys.Delete(k)
				}
			}
			keys.Number(batch)
			want := keys.NewResultSet(n)
			o.ApplyAll(batch, want)
			got := keys.NewResultSet(n)
			eng.ProcessBatch(batch, got)
			for i := int32(0); i < int32(n); i++ {
				w, wok := want.Get(i)
				g, gok := got.Get(i)
				if wok != gok || w != g {
					return false
				}
			}
		}
		eng.Flush()
		gk, gv := eng.Processor().Tree().Dump()
		wk, wv := o.Dump()
		if len(gk) != len(wk) {
			return false
		}
		for i := range gk {
			if gk[i] != wk[i] || gv[i] != wv[i] {
				return false
			}
		}
		return eng.Processor().Tree().Validate(btree.RelaxedFill) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
