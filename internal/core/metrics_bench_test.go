package core

import (
	"fmt"
	"testing"

	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/palm"
)

// steadyState builds an engine preloaded with n keys plus a reusable
// search-only batch over them: repeated ProcessBatch calls neither grow
// the tree nor dirty the cache, so per-batch work is pure measurement.
func steadyState(tb testing.TB, mode Mode, reg *metrics.Registry, n int) (*Engine, []keys.Query, *keys.ResultSet) {
	tb.Helper()
	eng, err := NewEngine(EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{Order: 64, Workers: 2},
		CacheCapacity: 256,
		Metrics:       reg,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(eng.Close)

	load := make([]keys.Query, n)
	for i := range load {
		load[i] = keys.Insert(keys.Key(i*7), keys.Value(i))
	}
	keys.Number(load)
	rs := keys.NewResultSet(n)
	eng.ProcessBatch(load, rs)

	qs := make([]keys.Query, n)
	for i := range qs {
		qs[i] = keys.Search(keys.Key(i * 7))
	}
	keys.Number(qs)
	return eng, qs, rs
}

// TestMetricsOffZeroAllocsPerBatch is the alloc half of the
// zero-overhead contract: with EngineConfig.Metrics nil, the public
// ProcessBatch must allocate exactly as much as the raw internal batch
// path — the nil gate adds 0 allocs/batch. (The raw path itself
// allocates a handful of stage closures per pool.Run; that baseline
// predates instrumentation and is measured, not assumed.) Checked for
// both the plain PALM path and the fully-optimized one.
func TestMetricsOffZeroAllocsPerBatch(t *testing.T) {
	for _, m := range []struct {
		name string
		mode Mode
	}{{"org", Original}, {"inter", IntraInter}} {
		t.Run(m.name, func(t *testing.T) {
			eng, qs, rs := steadyState(t, m.mode, nil, 512)
			// Warm any lazily-grown internal buffers out of the
			// measurement.
			for i := 0; i < 3; i++ {
				rs.Reset(len(qs))
				eng.ProcessBatch(qs, rs)
			}
			raw := testing.AllocsPerRun(20, func() {
				rs.Reset(len(qs))
				eng.processBatch(qs, rs)
			})
			wrapped := testing.AllocsPerRun(20, func() {
				rs.Reset(len(qs))
				eng.ProcessBatch(qs, rs)
			})
			if wrapped != raw {
				t.Errorf("metrics-off ProcessBatch allocates %.1f/batch, raw path %.1f — gate adds %.1f, want 0",
					wrapped, raw, wrapped-raw)
			}
		})
	}
}

// BenchmarkMetricsOverhead measures the cost Options.Metrics adds per
// batch, for the plain PALM path (org) and the fully-optimized one
// (inter). Compare off vs on within a mode:
//
//	go test -run=XXX -bench=BenchmarkMetricsOverhead -benchmem ./internal/core
func BenchmarkMetricsOverhead(b *testing.B) {
	const n = 4096
	for _, m := range []struct {
		name string
		mode Mode
	}{{"org", Original}, {"inter", IntraInter}} {
		for _, metered := range []bool{false, true} {
			var reg *metrics.Registry
			state := "off"
			if metered {
				reg = metrics.New()
				state = "on"
			}
			b.Run(fmt.Sprintf("%s/metrics=%s", m.name, state), func(b *testing.B) {
				eng, qs, rs := steadyState(b, m.mode, reg, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs.Reset(len(qs))
					eng.ProcessBatch(qs, rs)
				}
			})
		}
	}
}
