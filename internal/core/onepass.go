package core

import "repro/internal/keys"

// Emitter receives the output of one-pass QSAT: the reduced query list
// plus bookkeeping for inferred and deferred search answers.
type Emitter struct {
	// Out accumulates the queries that still need evaluation: at most
	// one representative search and one defining query per key.
	Out []keys.Query
	// Reps accumulates surviving representative searches whose chains
	// must be broadcast after evaluation. Only filled when CollectReps.
	Reps []int32
	// CollectReps enables Reps collection (final QSAT pass only; the
	// mini-batch pass's representatives may still be resolved later).
	CollectReps bool
	// Inferred counts answers produced without tree evaluation.
	Inferred int

	router  *Router
	rs      *keys.ResultSet
	pending []int32 // scratch reused across runs
}

// NewEmitter returns an emitter writing answers through router into rs.
func NewEmitter(router *Router, rs *keys.ResultSet) *Emitter {
	return &Emitter{router: router, rs: rs}
}

// Reset clears the emitter's accumulated output for a new batch.
func (e *Emitter) Reset() {
	e.Out = e.Out[:0]
	e.Reps = e.Reps[:0]
	e.Inferred = 0
}

// resolve delivers the answer implied by defining query d to the search
// at original index idx (and its chain): an insert defines (value,
// found); a delete defines (absent).
func (e *Emitter) resolve(idx int32, d keys.Query) {
	if d.Op == keys.OpInsert {
		e.Inferred += e.router.Resolve(e.rs, idx, d.Value, true)
	} else {
		e.Inferred += e.router.Resolve(e.rs, idx, 0, false)
	}
}

// resolveVal delivers an explicit (value, found) answer to the search
// at original index idx (and its chain).
func (e *Emitter) resolveVal(idx int32, v keys.Value, found bool) {
	e.Inferred += e.router.Resolve(e.rs, idx, v, found)
}

// QSATRun applies one-pass QSAT to one maximal same-key run of a
// stably key-sorted sequence. Runs without read-modify-write queries
// take the backward sweep of Algorithm 2 (qsatRunPoint); runs
// containing RMW take the forward state simulation (qsatRunRMW), which
// generalizes the same algebra to use+define queries. Scans never
// appear in runs: the epoch planner strips them before transformation.
func QSATRun(run []keys.Query, e *Emitter) {
	for i := range run {
		if run[i].Op == keys.OpRMW {
			qsatRunRMW(run, e)
			return
		}
	}
	qsatRunPoint(run, e)
}

// qsatRunPoint is the one-pass QSAT of Algorithm 2, applied to one
// maximal same-key run of point queries. It traverses the run
// backwards:
//
//   - a search query is held pending;
//   - a defining query answers all pending searches by inference
//     (INFER_AND_RETURN) — an insert supplies its value, a delete
//     supplies "absent" — and the last defining query of the run (the
//     first one met walking backwards) survives as q_o;
//   - searches still pending after the sweep precede every defining
//     query; they are collapsed into one representative search
//     (SEARCH_AND_RETURN) whose eventual tree answer is broadcast to
//     the rest via the Router.
//
// The run's surviving queries are appended to e.Out in (key, original
// index) order: representative search first, then q_o.
//
// QSATRun (and therefore qsatRunPoint) is used identically by QTrans's
// Phase-I (mini-batch) and Phase-II (per-key) passes: in Phase II the
// "searches" are Phase-I representatives carrying chains, which
// Resolve and Append handle transparently.
func qsatRunPoint(run []keys.Query, e *Emitter) {
	var qo keys.Query
	haveQo := false
	// pending collects the original indices of searches not yet
	// answered, in backward-walk (reverse) order.
	pending := e.pending[:0]
	defer func() { e.pending = pending[:0] }()

	for i := len(run) - 1; i >= 0; i-- {
		q := run[i]
		if q.Op == keys.OpSearch {
			pending = append(pending, q.Idx)
			continue
		}
		// Defining query: answer pending searches by inference.
		for _, idx := range pending {
			e.resolve(idx, q)
		}
		pending = pending[:0]
		if !haveQo {
			qo = q
			haveQo = true
		}
	}

	if len(pending) > 0 {
		// Leading searches: no defining query precedes them in the
		// batch. Collapse onto the earliest (pending is in reverse
		// order, so the last element is the earliest search).
		rep := pending[len(pending)-1]
		for i := len(pending) - 2; i >= 0; i-- {
			e.router.Append(rep, pending[i])
		}
		e.Out = append(e.Out, keys.Query{Op: keys.OpSearch, Key: run[0].Key, Idx: rep})
		if e.CollectReps {
			e.Reps = append(e.Reps, rep)
		}
	}
	if haveQo {
		e.Out = append(e.Out, qo)
	}
}

// runState tracks what the forward RMW simulation knows about the
// run's key at the current point in batch order.
type runState uint8

const (
	// stUnknown: nothing in the run has touched the key yet — reads
	// see the pre-batch tree state.
	stUnknown runState = iota
	// stPresent: the key is present with a known value.
	stPresent
	// stAbsent: the key is known to be absent.
	stAbsent
	// stPresentUnknownVal: the key is present but its value depends on
	// the pre-batch tree state (a surviving RMW wrote old+delta or
	// set-if-absent over unknown state). Both RMW kinds leave the key
	// present, which is what makes this state sound.
	stPresentUnknownVal
)

// qsatRunRMW generalizes QSAT to same-key runs containing RMW queries
// via a forward state simulation (RMW is both use and define, so the
// backward sweep's "last define wins" shortcut no longer applies):
//
//   - leading searches (state unknown) collapse onto one representative
//     answered from the pre-batch tree in Stage 1, exactly as in
//     Algorithm 2 — the representative precedes every surviving
//     define/RMW in original order, so emitting it first keeps the
//     output in batch order;
//   - once the state is known (after an insert or delete), searches and
//     RMWs resolve by inference and RMW effects fold into the state;
//   - an RMW over unknown state survives (its result needs the tree)
//     and moves the state to stPresentUnknownVal; subsequent searches
//     survive tagged LeafAnswer so Stage 2 answers them at the leaf
//     after applying that RMW;
//   - at run end, a known final state with at least one define emits
//     one synthesized final define (the only tree write the run needs).
//
// Emission is in ascending original-index order: representative <
// survivors < synthesized define (once the state becomes known it
// stays known, so every survivor precedes the last define).
func qsatRunRMW(run []keys.Query, e *Emitter) {
	st := stUnknown
	var val keys.Value
	pending := e.pending[:0]
	defer func() { e.pending = pending[:0] }()
	var lastDefIdx int32
	defined := false

	// flushPending collapses the leading searches onto the earliest as
	// representative; called before the first define/RMW is emitted or
	// folded, and once more at run end for all-search runs.
	flushPending := func() {
		if len(pending) == 0 {
			return
		}
		rep := pending[0]
		for _, other := range pending[1:] {
			e.router.Append(rep, other)
		}
		e.Out = append(e.Out, keys.Query{Op: keys.OpSearch, Key: run[0].Key, Idx: rep})
		if e.CollectReps {
			e.Reps = append(e.Reps, rep)
		}
		pending = pending[:0]
	}

	for i := range run {
		q := run[i]
		switch q.Op {
		case keys.OpSearch:
			switch st {
			case stUnknown:
				pending = append(pending, q.Idx)
			case stPresent:
				e.resolveVal(q.Idx, val, true)
			case stAbsent:
				e.resolveVal(q.Idx, 0, false)
			case stPresentUnknownVal:
				q.LeafAnswer = true
				e.Out = append(e.Out, q)
				if e.CollectReps {
					e.Reps = append(e.Reps, q.Idx)
				}
			}
		case keys.OpInsert:
			flushPending()
			st, val = stPresent, q.Value
			lastDefIdx, defined = q.Idx, true
		case keys.OpDelete:
			flushPending()
			st, val = stAbsent, 0
			lastDefIdx, defined = q.Idx, true
		case keys.OpRMW:
			flushPending()
			switch st {
			case stPresent:
				e.resolveVal(q.Idx, val, true)
				if q.RMW == keys.RMWAdd {
					val += q.Value
				}
				lastDefIdx, defined = q.Idx, true
			case stAbsent:
				e.resolveVal(q.Idx, 0, false)
				val = q.Value // old+delta with old=0, or set-if-absent
				st = stPresent
				lastDefIdx, defined = q.Idx, true
			default: // unknown pre-batch state: the RMW survives
				q.LeafAnswer = false
				e.Out = append(e.Out, q)
				st = stPresentUnknownVal
			}
		}
	}
	flushPending()

	if defined && st == stPresent {
		e.Out = append(e.Out, keys.Query{Op: keys.OpInsert, Key: run[0].Key, Value: val, Idx: lastDefIdx})
	} else if defined && st == stAbsent {
		e.Out = append(e.Out, keys.Query{Op: keys.OpDelete, Key: run[0].Key, Idx: lastDefIdx})
	}
}

// QSATSequence applies one-pass QSAT to an entire stably key-sorted
// sequence, returning the reduced sequence via e.Out. This is the
// sequential QSAT used on each mini-batch in Phase I (and usable
// standalone).
func QSATSequence(qs []keys.Query, e *Emitter) {
	keys.KeyRuns(qs, func(lo, hi int) {
		QSATRun(qs[lo:hi], e)
	})
}
