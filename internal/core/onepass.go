package core

import "repro/internal/keys"

// Emitter receives the output of one-pass QSAT: the reduced query list
// plus bookkeeping for inferred and deferred search answers.
type Emitter struct {
	// Out accumulates the queries that still need evaluation: at most
	// one representative search and one defining query per key.
	Out []keys.Query
	// Reps accumulates surviving representative searches whose chains
	// must be broadcast after evaluation. Only filled when CollectReps.
	Reps []int32
	// CollectReps enables Reps collection (final QSAT pass only; the
	// mini-batch pass's representatives may still be resolved later).
	CollectReps bool
	// Inferred counts answers produced without tree evaluation.
	Inferred int

	router  *Router
	rs      *keys.ResultSet
	pending []int32 // scratch reused across runs
}

// NewEmitter returns an emitter writing answers through router into rs.
func NewEmitter(router *Router, rs *keys.ResultSet) *Emitter {
	return &Emitter{router: router, rs: rs}
}

// Reset clears the emitter's accumulated output for a new batch.
func (e *Emitter) Reset() {
	e.Out = e.Out[:0]
	e.Reps = e.Reps[:0]
	e.Inferred = 0
}

// resolve delivers the answer implied by defining query d to the search
// at original index idx (and its chain): an insert defines (value,
// found); a delete defines (absent).
func (e *Emitter) resolve(idx int32, d keys.Query) {
	if d.Op == keys.OpInsert {
		e.Inferred += e.router.Resolve(e.rs, idx, d.Value, true)
	} else {
		e.Inferred += e.router.Resolve(e.rs, idx, 0, false)
	}
}

// QSATRun is the one-pass QSAT of Algorithm 2, applied to one maximal
// same-key run of a stably key-sorted sequence. It traverses the run
// backwards:
//
//   - a search query is held pending;
//   - a defining query answers all pending searches by inference
//     (INFER_AND_RETURN) — an insert supplies its value, a delete
//     supplies "absent" — and the last defining query of the run (the
//     first one met walking backwards) survives as q_o;
//   - searches still pending after the sweep precede every defining
//     query; they are collapsed into one representative search
//     (SEARCH_AND_RETURN) whose eventual tree answer is broadcast to
//     the rest via the Router.
//
// The run's surviving queries are appended to e.Out in (key, original
// index) order: representative search first, then q_o.
//
// QSATRun is used identically by QTrans's Phase-I (mini-batch) and
// Phase-II (per-key) passes: in Phase II the "searches" are Phase-I
// representatives carrying chains, which Resolve and Append handle
// transparently.
func QSATRun(run []keys.Query, e *Emitter) {
	var qo keys.Query
	haveQo := false
	// pending collects the original indices of searches not yet
	// answered, in backward-walk (reverse) order.
	pending := e.pending[:0]
	defer func() { e.pending = pending[:0] }()

	for i := len(run) - 1; i >= 0; i-- {
		q := run[i]
		if q.Op == keys.OpSearch {
			pending = append(pending, q.Idx)
			continue
		}
		// Defining query: answer pending searches by inference.
		for _, idx := range pending {
			e.resolve(idx, q)
		}
		pending = pending[:0]
		if !haveQo {
			qo = q
			haveQo = true
		}
	}

	if len(pending) > 0 {
		// Leading searches: no defining query precedes them in the
		// batch. Collapse onto the earliest (pending is in reverse
		// order, so the last element is the earliest search).
		rep := pending[len(pending)-1]
		for i := len(pending) - 2; i >= 0; i-- {
			e.router.Append(rep, pending[i])
		}
		e.Out = append(e.Out, keys.Query{Op: keys.OpSearch, Key: run[0].Key, Idx: rep})
		if e.CollectReps {
			e.Reps = append(e.Reps, rep)
		}
	}
	if haveQo {
		e.Out = append(e.Out, qo)
	}
}

// QSATSequence applies one-pass QSAT to an entire stably key-sorted
// sequence, returning the reduced sequence via e.Out. This is the
// sequential QSAT used on each mini-batch in Phase I (and usable
// standalone).
func QSATSequence(qs []keys.Query, e *Emitter) {
	keys.KeyRuns(qs, func(lo, hi int) {
		QSATRun(qs[lo:hi], e)
	})
}
