package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

// paperExample is the running example of Fig. 5/7 (keys 1..3 stand in
// for key1..key3, values 1..4 for v1..v4).
func paperExample() []keys.Query {
	return keys.Number([]keys.Query{
		keys.Insert(1, 1), // 1: I(key1, v1)
		keys.Search(1),    // 2: S(key1)
		keys.Insert(2, 2), // 3: I(key2, v2)
		keys.Search(1),    // 4: S(key1)
		keys.Insert(3, 3), // 5: I(key3, v3)
		keys.Insert(2, 4), // 6: I(key2, v4)
		keys.Delete(3),    // 7: D(key3)
		keys.Search(3),    // 8: S(key3)
		keys.Search(2),    // 9: S(key2)
	})
}

func TestPaperRunningExampleAnalysis(t *testing.T) {
	a := Analyze(paperExample())
	// QUD chains of Fig. 7-(b): q2->q1, q4->q1, q8->q7, q9->q6
	// (0-based: 1->0, 3->0, 7->6, 8->5).
	wantQUD := map[int]int{1: 0, 3: 0, 7: 6, 8: 5}
	for i, d := range a.QUD {
		if want, ok := wantQUD[i]; ok {
			if d != want {
				t.Errorf("QUD[%d] = %d, want %d", i, d, want)
			}
		}
	}
	// Reaching set after q7 (index 6) must be {q1, q6, q7} = {0, 5, 6}.
	e := a.Reaching[6]
	if len(e) != 3 || e[1] != 0 || e[2] != 5 || e[3] != 6 {
		t.Errorf("reaching set after q7 = %v, want {1:0 2:5 3:6}", e)
	}
}

func TestPaperRunningExampleMarkSweep(t *testing.T) {
	a := Analyze(paperExample())
	kept := a.MarkSweep()
	// Round 1 (Fig. 7-(c)): q3 (idx 2) and q5 (idx 4) eliminated,
	// 7 queries left.
	if len(kept) != 7 {
		t.Fatalf("kept %d queries, want 7 (%v)", len(kept), kept)
	}
	for _, i := range kept {
		if i == 2 || i == 4 {
			t.Fatalf("query %d should have been eliminated", i+1)
		}
	}
}

func TestPaperRunningExampleTwoRound(t *testing.T) {
	ops := TwoRoundQSAT(paperExample())
	var returns, remaining []TransformedOp
	for _, op := range ops {
		if op.Return {
			returns = append(returns, op)
		} else {
			remaining = append(remaining, op)
		}
	}
	// Fig. 7-(d): 4 inferred returns (v1, v1, null, v4) and 3 remaining
	// defining queries I(k1,v1), I(k2,v4), D(k3) (the cache-write
	// transformation of I(k1,v1) is the Engine's job, not QSAT's).
	if len(returns) != 4 {
		t.Fatalf("returns = %v, want 4", returns)
	}
	wantReturns := []struct {
		found bool
		v     keys.Value
	}{{true, 1}, {true, 1}, {false, 0}, {true, 4}}
	for i, w := range wantReturns {
		if returns[i].Found != w.found || (w.found && returns[i].Value != w.v) {
			t.Errorf("return %d = %+v, want found=%v v=%d", i, returns[i], w.found, w.v)
		}
	}
	if len(remaining) != 3 {
		t.Fatalf("remaining = %v, want 3", remaining)
	}
	wantRemaining := []keys.Query{keys.Insert(1, 1), keys.Insert(2, 4), keys.Delete(3)}
	for i, w := range wantRemaining {
		got := remaining[i].Query
		if got.Op != w.Op || got.Key != w.Key || (w.Op == keys.OpInsert && got.Value != w.Value) {
			t.Errorf("remaining %d = %v, want %v", i, got, w)
		}
	}
	// Reordering: all returns precede all remaining queries.
	seenRemaining := false
	for _, op := range ops {
		if !op.Return {
			seenRemaining = true
		} else if seenRemaining {
			t.Fatal("inferred return ordered after a remaining query")
		}
	}
}

func TestMarkSweepKeepsUnusedFinalDefine(t *testing.T) {
	// A lone insert has no using search but determines final tree
	// state; Algorithm 1's goal statement requires keeping it.
	qs := keys.Number([]keys.Query{keys.Insert(5, 9)})
	a := Analyze(qs)
	kept := a.MarkSweep()
	if len(kept) != 1 || kept[0] != 0 {
		t.Fatalf("kept = %v, want [0]", kept)
	}
}

func TestMarkSweepDropsOverwrittenDefine(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Insert(5, 1),
		keys.Insert(5, 2),
		keys.Delete(5),
	})
	a := Analyze(qs)
	kept := a.MarkSweep()
	if len(kept) != 1 || kept[0] != 2 {
		t.Fatalf("kept = %v, want only the final delete", kept)
	}
}

func TestTwoRoundCascadingElimination(t *testing.T) {
	// §III-C: removing a search can expose a new overwriting
	// opportunity. I(k,1) is used by S(k); once S(k) is inferred away,
	// I(k,1) is overwritten by I(k,2) and must die in the rescan.
	qs := keys.Number([]keys.Query{
		keys.Insert(7, 1),
		keys.Search(7),
		keys.Insert(7, 2),
	})
	ops := TwoRoundQSAT(qs)
	var remaining []keys.Query
	returns := 0
	for _, op := range ops {
		if op.Return {
			returns++
			if !op.Found || op.Value != 1 {
				t.Errorf("inferred %+v, want (1, true)", op)
			}
		} else {
			remaining = append(remaining, op.Query)
		}
	}
	if returns != 1 {
		t.Fatalf("returns = %d, want 1", returns)
	}
	if len(remaining) != 1 || remaining[0].Op != keys.OpInsert || remaining[0].Value != 2 {
		t.Fatalf("remaining = %v, want [I(7,2)]", remaining)
	}
}

// randomSequence builds a random query sequence over a small key space
// to maximize redundancy opportunities.
func randomSequence(r *rand.Rand, n, keyspace int) []keys.Query {
	qs := make([]keys.Query, n)
	for i := range qs {
		k := keys.Key(r.Intn(keyspace))
		switch r.Intn(3) {
		case 0:
			qs[i] = keys.Search(k)
		case 1:
			qs[i] = keys.Insert(k, keys.Value(r.Intn(1000)))
		default:
			qs[i] = keys.Delete(k)
		}
	}
	return keys.Number(qs)
}

// TestTwoRoundEquivalence: evaluating the transformed output against
// any initial store yields exactly the serial results and final state.
func TestTwoRoundEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := randomSequence(r, 50+r.Intn(200), 1+r.Intn(10))

		// Serial reference with a random initial store.
		store := map[keys.Key]keys.Value{}
		for i := 0; i < r.Intn(10); i++ {
			store[keys.Key(r.Intn(10))] = keys.Value(r.Intn(100))
		}
		refStore := map[keys.Key]keys.Value{}
		for k, v := range store {
			refStore[k] = v
		}
		wantRes, _ := EvaluateReference(qs, refStore)

		// Transformed evaluation: inferred returns are taken as-is;
		// remaining queries evaluate against the same initial store.
		ops := TwoRoundQSAT(qs)
		gotRes := make(map[int]keys.Result)
		for _, op := range ops {
			if op.Return {
				gotRes[int(op.Query.Idx)] = keys.Result{Value: op.Value, Found: op.Found}
				continue
			}
			q := op.Query
			switch q.Op {
			case keys.OpSearch:
				v, ok := store[q.Key]
				gotRes[int(q.Idx)] = keys.Result{Value: v, Found: ok}
			case keys.OpInsert:
				store[q.Key] = q.Value
			case keys.OpDelete:
				delete(store, q.Key)
			}
		}

		for i, w := range wantRes {
			g, ok := gotRes[i]
			if !ok || g.Found != w.Found || (w.Found && g.Value != w.Value) {
				return false
			}
		}
		if len(store) != len(refStore) {
			return false
		}
		for k, v := range refStore {
			if store[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatAnalysisMentionsEveryQuery(t *testing.T) {
	out := FormatAnalysis(Analyze(paperExample()))
	if out == "" {
		t.Fatal("empty analysis formatting")
	}
	for _, want := range []string{"I(1,1)@0", "S(2)@8", "q1", "q7"} {
		if !contains(out, want) {
			t.Errorf("formatted analysis missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestTransformedOpString(t *testing.T) {
	cases := []struct {
		op   TransformedOp
		want string
	}{
		{TransformedOp{Return: true, Found: true, Value: 7}, "ret 7"},
		{TransformedOp{Return: true}, "ret null"},
		{TransformedOp{Query: keys.Insert(1, 2)}, "I(1,2)@0"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
