package core

import (
	"time"

	"repro/internal/btree"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// engineMetrics caches the metric handles the engine records into after
// each batch. All handles are resolved once at engine construction, so
// the per-batch path does map-free atomic updates only. A nil
// *engineMetrics (metrics off) keeps ProcessBatch byte-identical to the
// uninstrumented build: the single nil check is the only overhead.
type engineMetrics struct {
	reg *metrics.Registry

	batchWall *metrics.Histogram
	stageNS   []*metrics.Histogram // indexed by stats.Stage

	batches     *metrics.Counter
	queries     *metrics.Counter
	remaining   *metrics.Counter
	inferred    *metrics.Counter
	fenceHits   *metrics.Counter
	splits      *metrics.Counter
	gapClaims   *metrics.Counter
	shifted     *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	cacheFlush  *metrics.Counter
	cacheEvict  *metrics.Counter
	scanQueries *metrics.Counter
	scanRows    *metrics.Counter
	scanKills   *metrics.Counter

	// leafOcc records per-leaf fill (entries * 1000 / capacity) when
	// RecordLayout is called; it is not touched on the batch path.
	leafOcc *metrics.Histogram
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	m := &engineMetrics{
		reg:         reg,
		batchWall:   reg.Histogram("batch_wall_ns"),
		batches:     reg.Counter("batches_total"),
		queries:     reg.Counter("queries_total"),
		remaining:   reg.Counter("queries_remaining_total"),
		inferred:    reg.Counter("inferred_returns_total"),
		fenceHits:   reg.Counter("fence_hits_total"),
		splits:      reg.Counter("splits_total"),
		gapClaims:   reg.Counter("gap_claims_total"),
		shifted:     reg.Counter("shifted_slots_total"),
		cacheHits:   reg.Counter("cache_hits_total"),
		cacheMisses: reg.Counter("cache_misses_total"),
		cacheFlush:  reg.Counter("cache_flushes_total"),
		cacheEvict:  reg.Counter("cache_evictions_total"),
		scanQueries: reg.Counter("scan_queries_total"),
		scanRows:    reg.Counter("scan_rows_total"),
		scanKills:   reg.Counter("scan_kills_total"),
		leafOcc:     reg.Histogram("leaf_occupancy_permille"),
	}
	for _, s := range stats.Stages() {
		m.stageNS = append(m.stageNS, reg.Histogram("stage_"+s.String()+"_ns"))
	}
	return m
}

// recordBatch folds one processed batch's stats block plus its measured
// wall time into the registry. The stage histograms record only stages
// that ran (Elapsed > 0), so e.g. org-mode runs show no qsat rows.
func (m *engineMetrics) recordBatch(st *stats.Batch, wall time.Duration) {
	m.batchWall.Observe(wall)
	m.batches.Add(1)
	m.queries.Add(int64(st.BatchSize))
	m.remaining.Add(int64(st.RemainingQueries))
	m.inferred.Add(int64(st.InferredReturns))
	m.fenceHits.Add(int64(st.FenceHits))
	m.splits.Add(int64(st.Splits))
	m.gapClaims.Add(int64(st.GapClaims))
	m.shifted.Add(int64(st.ShiftedSlots))
	m.cacheHits.Add(int64(st.CacheHits))
	m.cacheMisses.Add(int64(st.CacheMisses))
	m.cacheFlush.Add(int64(st.CacheFlushes))
	m.cacheEvict.Add(int64(st.CacheEvictions))
	m.scanQueries.Add(int64(st.ScanQueries))
	m.scanRows.Add(int64(st.ScanRows))
	m.scanKills.Add(int64(st.ScanKills))
	for _, s := range stats.Stages() {
		if d := st.Elapsed[s]; d > 0 {
			m.stageNS[s].Observe(d)
		}
	}
}

// recordLayout walks the tree's leaf chain and records each leaf's fill
// as entries*1000/capacity. The walk is O(#leaves), so it runs on
// demand (Engine.RecordLayoutMetrics), never on the batch path.
func (m *engineMetrics) recordLayout(t *btree.Tree) {
	t.VisitLeaves(func(entries, capacity int) {
		if capacity > 0 {
			m.leafOcc.Record(int64(entries) * 1000 / int64(capacity))
		}
	})
}
