package core

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/oracle"
	"repro/internal/palm"
)

func TestNewEngineWithTree(t *testing.T) {
	const n = 10000
	ks := make([]keys.Key, n)
	vs := make([]keys.Value, n)
	for i := range ks {
		ks[i] = keys.Key(i * 3)
		vs[i] = keys.Value(i)
	}
	tree, err := btree.BulkLoad(32, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineWithTree(EngineConfig{
		Mode: Intra,
		Palm: palm.Config{Order: 32, Workers: 3, LoadBalance: true},
	}, tree)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	batch := keys.Number([]keys.Query{
		keys.Search(300), // present (100th pair)
		keys.Search(301), // absent
		keys.Insert(301, 9),
		keys.Search(301), // inferred 9
	})
	rs := keys.NewResultSet(len(batch))
	eng.ProcessBatch(batch, rs)
	if r, _ := rs.Get(0); !r.Found || r.Value != 100 {
		t.Fatalf("Search(300) = %+v", r)
	}
	if r, _ := rs.Get(1); r.Found {
		t.Fatalf("Search(301) = %+v", r)
	}
	if r, _ := rs.Get(3); !r.Found || r.Value != 9 {
		t.Fatalf("inferred Search(301) = %+v", r)
	}
	if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatal(err)
	}
}

func TestNewEngineWithTreeNil(t *testing.T) {
	if _, err := NewEngineWithTree(EngineConfig{Palm: palm.Config{Workers: 1}}, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestNewEngineRejectsBadOrder(t *testing.T) {
	if _, err := NewEngine(EngineConfig{Palm: palm.Config{Order: 2, Workers: 1}}); err == nil {
		t.Fatal("order 2 accepted")
	}
}

// TestEngineLongRunChurn runs many batches over a small keyspace with
// the cache enabled, cross-checking the oracle at every batch; this
// soaks the eviction/readmission/flush machinery far longer than the
// unit tests.
func TestEngineLongRunChurn(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 3, LoadBalance: true},
		CacheCapacity: 16, // tiny: constant churn
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	o := oracle.New()
	r := rand.New(rand.NewSource(99))
	for b := 0; b < 40; b++ {
		n := 300 + r.Intn(500)
		batch := make([]keys.Query, n)
		for i := range batch {
			k := keys.Key(r.Intn(64))
			switch r.Intn(3) {
			case 0:
				batch[i] = keys.Search(k)
			case 1:
				batch[i] = keys.Insert(k, keys.Value(r.Uint32()))
			default:
				batch[i] = keys.Delete(k)
			}
		}
		keys.Number(batch)
		want := keys.NewResultSet(n)
		o.ApplyAll(batch, want)
		got := keys.NewResultSet(n)
		eng.ProcessBatch(batch, got)
		for i := int32(0); i < int32(n); i++ {
			w, wok := want.Get(i)
			g, gok := got.Get(i)
			if wok != gok || w != g {
				t.Fatalf("batch %d idx %d: %+v(%v) vs %+v(%v)", b, i, g, gok, w, wok)
			}
		}
	}
	eng.Flush()
	gk, gv := eng.Processor().Tree().Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("final sizes %d vs %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("final mismatch at %d", i)
		}
	}
}

// TestEngineInterleavedModesShareNothing: separate engines must not
// interfere through package state (a regression guard for scratch
// reuse bugs).
func TestEngineInterleavedModesShareNothing(t *testing.T) {
	mk := func(mode Mode) *Engine {
		eng, err := NewEngine(EngineConfig{
			Mode:          mode,
			Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
			CacheCapacity: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	engines := []*Engine{mk(Original), mk(Intra), mk(IntraInter), mk(SimIntra)}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	r := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		for _, eng := range engines {
			batch := make([]keys.Query, 200)
			for i := range batch {
				batch[i] = keys.Insert(keys.Key(r.Intn(100)), keys.Value(round))
			}
			keys.Number(batch)
			eng.ProcessBatch(batch, keys.NewResultSet(len(batch)))
		}
	}
	for _, eng := range engines {
		eng.Flush()
		if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatalf("mode %v: %v", eng.Mode(), err)
		}
	}
}
