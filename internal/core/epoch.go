package core

import (
	"sort"

	"repro/internal/keys"
)

// This file plans the execution of batches containing range scans.
//
// QSAT's point-query algebra reorders freely within a batch because
// per-key order is preserved. A scan breaks that freedom only for the
// keys inside its range: point writes there must not move across the
// scan. The planner therefore splits the batch into an alternating
// sequence of point epochs and scan groups
//
//	E0  S0  E1  S1  ...  En  Sn
//
// processed in order: transform+apply E0, evaluate the S0 scans
// against the tree, apply E1, and so on. The split rule is:
//
//   - a point search always joins the current epoch (searches commute
//     with scans — scans are pure reads);
//   - a scan joins the current scan group and activates its range;
//   - a point write (insert/delete/RMW) whose key falls inside any
//     active range of the current group closes the epoch: it becomes
//     the first query of the next epoch, so it is applied only after
//     the fenced scans ran. Writes outside every active range stay in
//     the current epoch (sound: the scans cannot observe them).
//
// RMW-only batches (no scans) need no splitting and flow through as a
// single epoch.

// batchPlan is the planned execution of one scan-bearing batch.
type batchPlan struct {
	// epochs[i] holds point queries, in batch order, with original Idx
	// values. epochs has len(scans)+1 entries when the batch ends in
	// point ops, or len(scans) when it ends in scans; for uniformity
	// the planner always emits len(scans)+1 epochs (possibly empty).
	epochs [][]keys.Query
	// scans[i] is the scan group evaluated between epochs[i] and
	// epochs[i+1], in batch order.
	scans [][]keys.Query
}

// hasScanOrRMW reports whether the batch needs the scan/RMW path at
// all (used to keep the point-only hot path byte-for-byte untouched).
func hasScanOrRMW(qs []keys.Query) (scan, rmw bool) {
	for i := range qs {
		switch qs[i].Op {
		case keys.OpScan:
			scan = true
		case keys.OpRMW:
			rmw = true
		}
		if scan && rmw {
			return
		}
	}
	return
}

// planEpochs splits a scan-bearing batch per the rule above. The
// returned plan's slices are freshly built each call (scan batches pay
// for their planning; point-only batches never reach here).
func planEpochs(qs []keys.Query) batchPlan {
	var p batchPlan
	curE := make([]keys.Query, 0, len(qs))
	var curS []keys.Query

	flush := func() {
		p.epochs = append(p.epochs, curE)
		p.scans = append(p.scans, curS)
		curE = make([]keys.Query, 0, len(qs))
		curS = nil
	}

	inActiveRange := func(k keys.Key) bool {
		for i := range curS {
			if k >= curS[i].Key && k < curS[i].Key2 {
				return true
			}
		}
		return false
	}

	for _, q := range qs {
		switch q.Op {
		case keys.OpScan:
			curS = append(curS, q)
		case keys.OpSearch:
			curE = append(curE, q)
		default: // insert, delete, RMW
			if len(curS) > 0 && inActiveRange(q.Key) {
				flush()
			}
			curE = append(curE, q)
		}
	}
	// Final epoch (possibly with a trailing scan group, possibly empty).
	p.epochs = append(p.epochs, curE)
	p.scans = append(p.scans, curS)
	return p
}

// scanTask is one scan to evaluate against the tree, or to derive from
// a covering scan in the same group.
type scanTask struct {
	q keys.Query
	// coveredBy is the index (into the group's task list) of the
	// unlimited scan whose rows cover this one, or -1 to evaluate
	// against the tree directly.
	coveredBy int
}

// planScanGroup applies the covering-scan kill inside one scan group.
// All scans in a group observe the same tree state, so any scan whose
// range is contained in another *unlimited* scan of the group can
// derive its rows by filtering the cover's rows — the tree is walked
// once per maximal range. Returns the tasks (in input order, with
// coveredBy links) plus how many scans were killed. Callers evaluate
// every uncovered task first, then derive the covered ones, so link
// direction never matters.
func planScanGroup(scans []keys.Query) ([]scanTask, int) {
	tasks := make([]scanTask, len(scans))
	for i, q := range scans {
		tasks[i] = scanTask{q: q, coveredBy: -1}
	}
	if len(tasks) > 1 {
		// Sweep in (lo asc, hi desc) order tracking the widest
		// unlimited cover seen so far.
		order := make([]int, len(tasks))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			qa, qb := tasks[order[a]].q, tasks[order[b]].q
			if qa.Key != qb.Key {
				return qa.Key < qb.Key
			}
			return qa.Key2 > qb.Key2
		})
		cover := -1 // task index of current best cover
		for _, ti := range order {
			q := tasks[ti].q
			if cover >= 0 && q.Key2 <= tasks[cover].q.Key2 {
				tasks[ti].coveredBy = cover
				continue
			}
			// Not covered. An unlimited scan reaching further right
			// becomes the new best cover (its lo bounds every later lo
			// in the sweep); a limited one cannot cover others, and the
			// previous cover may still serve narrower later ranges.
			if q.Value == 0 {
				cover = ti
			}
		}
	}
	killed := 0
	for i := range tasks {
		if tasks[i].coveredBy >= 0 {
			killed++
		}
	}
	return tasks, killed
}

// filterCoverRows derives a covered scan's rows from its cover's rows:
// restrict to [lo, hi), then truncate to limit (0 = unlimited). The
// cover's rows are ascending in key, so the result is a sub-slice.
func filterCoverRows(cover []keys.KV, lo, hi keys.Key, limit keys.Value) []keys.KV {
	a := sort.Search(len(cover), func(i int) bool { return cover[i].Key >= lo })
	b := sort.Search(len(cover), func(i int) bool { return cover[i].Key >= hi })
	rows := cover[a:b]
	if limit > 0 && keys.Value(len(rows)) > limit {
		rows = rows[:limit]
	}
	return rows
}
