package core

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// mixedBatch builds one batch drawing from all five operations over a
// small key space, so in-batch key collisions (and therefore scan
// fences, RMW chains, and covering scans) are common.
func mixedBatch(r *rand.Rand, size, keySpace int) []keys.Query {
	qs := make([]keys.Query, size)
	for i := range qs {
		k := keys.Key(r.Intn(keySpace))
		switch r.Intn(8) {
		case 0, 1:
			qs[i] = keys.Insert(k, keys.Value(r.Intn(1_000_000)))
		case 2:
			qs[i] = keys.Delete(k)
		case 3:
			span := keys.Key(1 + r.Intn(keySpace/2))
			qs[i] = keys.Scan(k, k+span, keys.Value(r.Intn(4))) // limit 0..3
		case 4:
			qs[i] = keys.AddDelta(k, keys.Value(1+r.Intn(100)))
		case 5:
			qs[i] = keys.SetIfAbsent(k, keys.Value(r.Intn(1_000_000)))
		default:
			qs[i] = keys.Search(k)
		}
	}
	return keys.Number(qs)
}

// compareBatch checks every point result and every scan row set of got
// against want (the oracle's ResultSet for the same batch).
func compareBatch(t *testing.T, tag string, batch []keys.Query, want, got *keys.ResultSet) {
	t.Helper()
	for i := range batch {
		idx := batch[i].Idx
		w, wok := want.Get(idx)
		g, gok := got.Get(idx)
		if wok != gok || w != g {
			t.Fatalf("%s: query %d (%v): got %+v (%v), want %+v (%v)",
				tag, i, batch[i].Op, g, gok, w, wok)
		}
		if batch[i].Op != keys.OpScan {
			continue
		}
		wr, _ := want.ScanRows(idx)
		gr, ok := got.ScanRows(idx)
		if !ok && len(wr) > 0 {
			t.Fatalf("%s: scan %d: no rows recorded, want %v", tag, i, wr)
		}
		if len(wr) != len(gr) {
			t.Fatalf("%s: scan %d [%d,%d) limit %d: %d rows, want %d\n got %v\nwant %v",
				tag, i, batch[i].Key, batch[i].Key2, batch[i].Value, len(gr), len(wr), gr, wr)
		}
		for j := range wr {
			if wr[j] != gr[j] {
				t.Fatalf("%s: scan %d row %d = %+v, want %+v", tag, i, j, gr[j], wr[j])
			}
		}
	}
}

// scanRMWDifferential streams mixed batches through an engine and the
// oracle, comparing all results per batch and the store at the end.
func scanRMWDifferential(t *testing.T, cfg EngineConfig, batches [][]keys.Query) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	o := oracle.New()

	for bi, batch := range batches {
		want := keys.NewResultSet(len(batch))
		o.ApplyAll(batch, want)
		got := keys.NewResultSet(len(batch))
		eng.ProcessBatch(batch, got)
		compareBatch(t, cfg.Mode.String()+" batch "+itoa(bi), batch, want, got)
		if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
			t.Fatalf("mode=%v batch %d: %v", cfg.Mode, bi, err)
		}
	}

	eng.Flush()
	gk, gv := eng.Processor().Tree().Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("mode=%v: final sizes %d vs %d", cfg.Mode, len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mode=%v: final store mismatch at %d: (%d,%d) vs (%d,%d)",
				cfg.Mode, i, gk[i], gv[i], wk[i], wv[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestEngineScanRMWDifferential is the main differential arm for the
// extended query set: every engine mode, gapped and dense layouts,
// against the oracle on batches mixing all five operations.
func TestEngineScanRMWDifferential(t *testing.T) {
	for _, mode := range []Mode{Original, Intra, IntraInter, SimIntra} {
		for _, dense := range []bool{false, true} {
			name := mode.String()
			if dense {
				name += "/dense"
			} else {
				name += "/gapped"
			}
			t.Run(name, func(t *testing.T) {
				r := rand.New(rand.NewSource(7*int64(mode) + 100*int64(b2i(dense))))
				batches := make([][]keys.Query, 12)
				for b := range batches {
					batches[b] = mixedBatch(r, 200, 64)
				}
				cfg := EngineConfig{Mode: mode}
				cfg.Palm.Workers = 3
				cfg.Palm.NoGappedLayout = dense
				scanRMWDifferential(t, cfg, batches)
			})
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestEngineScanRMWKernelAblations repeats the differential with each
// sorted-batch tree kernel disabled — the scan walk and the RMW leaf
// application must be identical under every applier.
func TestEngineScanRMWKernelAblations(t *testing.T) {
	combos := []struct {
		name             string
		noPR, noBL, noMA bool
	}{
		{"no-pathreuse", true, false, false},
		{"no-branchless", false, true, false},
		{"no-mergeapply", false, false, true},
		{"all-off", true, true, true},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			batches := make([][]keys.Query, 8)
			for b := range batches {
				batches[b] = mixedBatch(r, 150, 48)
			}
			cfg := EngineConfig{Mode: IntraInter}
			cfg.Palm.Workers = 2
			cfg.Palm.NoPathReuse = c.noPR
			cfg.Palm.NoBranchlessSearch = c.noBL
			cfg.Palm.NoMergeApply = c.noMA
			scanRMWDifferential(t, cfg, batches)
		})
	}
}

// TestEngineScanRMWSmallBatches is the random-5-op-batch property of
// the QSAT extension: for many independent tiny batches — where every
// interleaving of scan fences, RMW folds, and covering kills is likely
// hit eventually — the transformed execution must equal the serial
// oracle.
func TestEngineScanRMWSmallBatches(t *testing.T) {
	for _, mode := range []Mode{Original, Intra, IntraInter, SimIntra} {
		t.Run(mode.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(mode) + 1))
			batches := make([][]keys.Query, 400)
			for b := range batches {
				batches[b] = mixedBatch(r, 5, 8)
			}
			cfg := EngineConfig{Mode: mode}
			cfg.Palm.Workers = 2
			scanRMWDifferential(t, cfg, batches)
		})
	}
}

// TestEngineScanRMWPipeline drives mixed batches through the two-stage
// pipeline: extended batches take the drain-and-fence path inside the
// tree stage, and results must still match the oracle in stream order.
func TestEngineScanRMWPipeline(t *testing.T) {
	for _, mode := range []Mode{Original, IntraInter} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := EngineConfig{Mode: mode, Pipeline: true, CacheCapacity: 128}
			cfg.Palm.Workers = 2
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			o := oracle.New()

			r := rand.New(rand.NewSource(99))
			const nBatches = 16
			jobs := make([]*Job, nBatches)
			wants := make([]*keys.ResultSet, nBatches)
			for b := range jobs {
				var qs []keys.Query
				if b%3 == 2 {
					// Interleave point-only batches: the pipeline must
					// switch between the fast path and the extended path.
					qs = mixedPointBatch(r, 100, 64)
				} else {
					qs = mixedBatch(r, 100, 64)
				}
				jobs[b] = &Job{Qs: qs, Tag: b}
				wants[b] = keys.NewResultSet(len(qs))
				o.ApplyAll(qs, wants[b])
			}

			in := make(chan *Job)
			go func() {
				for _, j := range jobs {
					in <- j
				}
				close(in)
			}()
			done := 0
			eng.ProcessStream(in, func(j *Job) {
				b := j.Tag.(int)
				compareBatch(t, "pipeline batch "+itoa(b), j.Qs, wants[b], j.RS)
				done++
			})
			if done != nBatches {
				t.Fatalf("completed %d batches, want %d", done, nBatches)
			}
		})
	}
}

func mixedPointBatch(r *rand.Rand, size, keySpace int) []keys.Query {
	qs := make([]keys.Query, size)
	for i := range qs {
		k := keys.Key(r.Intn(keySpace))
		switch r.Intn(4) {
		case 0:
			qs[i] = keys.Insert(k, keys.Value(r.Intn(1000)))
		case 1:
			qs[i] = keys.Delete(k)
		default:
			qs[i] = keys.Search(k)
		}
	}
	return keys.Number(qs)
}

// TestPlanEpochsStructure pins the epoch split rule on hand-built
// batches.
func TestPlanEpochsStructure(t *testing.T) {
	idxs := func(qs []keys.Query) []int32 {
		out := make([]int32, len(qs))
		for i, q := range qs {
			out[i] = q.Idx
		}
		return out
	}
	eq := func(got []int32, want ...int32) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	t.Run("write-in-range-fences", func(t *testing.T) {
		qs := keys.Number([]keys.Query{
			keys.Insert(5, 1),   // 0: epoch 0
			keys.Scan(0, 10, 0), // 1: group 0
			keys.Search(5),      // 2: epoch 0 (searches commute)
			keys.Insert(5, 2),   // 3: in range -> opens epoch 1
			keys.Scan(0, 10, 0), // 4: group 1
			keys.Delete(5),      // 5: in range -> opens epoch 2
		})
		p := planEpochs(qs)
		if len(p.epochs) != 3 || len(p.scans) != 3 {
			t.Fatalf("epochs=%d scans=%d, want 3/3", len(p.epochs), len(p.scans))
		}
		if !eq(idxs(p.epochs[0]), 0, 2) || !eq(idxs(p.scans[0]), 1) {
			t.Fatalf("E0=%v S0=%v", idxs(p.epochs[0]), idxs(p.scans[0]))
		}
		if !eq(idxs(p.epochs[1]), 3) || !eq(idxs(p.scans[1]), 4) {
			t.Fatalf("E1=%v S1=%v", idxs(p.epochs[1]), idxs(p.scans[1]))
		}
		if !eq(idxs(p.epochs[2]), 5) || len(p.scans[2]) != 0 {
			t.Fatalf("E2=%v S2=%v", idxs(p.epochs[2]), idxs(p.scans[2]))
		}
	})

	t.Run("write-outside-range-stays", func(t *testing.T) {
		qs := keys.Number([]keys.Query{
			keys.Scan(0, 10, 0),  // 0
			keys.Insert(50, 1),   // 1: outside every active range
			keys.AddDelta(99, 1), // 2: outside
			keys.Insert(3, 1),    // 3: inside -> fences
		})
		p := planEpochs(qs)
		if len(p.epochs) != 2 {
			t.Fatalf("epochs=%d, want 2", len(p.epochs))
		}
		if !eq(idxs(p.epochs[0]), 1, 2) || !eq(idxs(p.epochs[1]), 3) {
			t.Fatalf("E0=%v E1=%v", idxs(p.epochs[0]), idxs(p.epochs[1]))
		}
	})

	t.Run("rmw-only-single-epoch", func(t *testing.T) {
		qs := keys.Number([]keys.Query{
			keys.AddDelta(1, 1), keys.SetIfAbsent(2, 2), keys.AddDelta(1, 1),
		})
		if scan, rmw := hasScanOrRMW(qs); scan || !rmw {
			t.Fatalf("hasScanOrRMW = %v,%v", scan, rmw)
		}
		// The engine routes RMW-only batches around planEpochs entirely;
		// planEpochs itself must still produce one epoch for them.
		p := planEpochs(qs)
		if len(p.epochs) != 1 || len(p.epochs[0]) != 3 || len(p.scans[0]) != 0 {
			t.Fatalf("plan = %d epochs, E0 len %d", len(p.epochs), len(p.epochs[0]))
		}
	})
}

// TestScanNeverReorderedPastOverlappingWrite is the fencing property:
// in any plan, for every scan S and every write W whose key lies in
// S's range, W is planned before S's group iff W precedes S in the
// batch, and after it otherwise.
func TestScanNeverReorderedPastOverlappingWrite(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for iter := 0; iter < 300; iter++ {
		qs := mixedBatch(r, 40, 32)
		p := planEpochs(qs)

		// epochOf[idx] = epoch number a point query landed in;
		// groupOf[idx] = group number a scan landed in.
		epochOf := map[int32]int{}
		groupOf := map[int32]int{}
		for e, ep := range p.epochs {
			for _, q := range ep {
				epochOf[q.Idx] = e
			}
		}
		for g, grp := range p.scans {
			for _, q := range grp {
				groupOf[q.Idx] = g
			}
		}
		if len(epochOf)+len(groupOf) != len(qs) {
			t.Fatalf("iter %d: plan lost queries: %d+%d of %d", iter, len(epochOf), len(groupOf), len(qs))
		}

		for _, s := range qs {
			if s.Op != keys.OpScan {
				continue
			}
			g := groupOf[s.Idx]
			for _, w := range qs {
				if w.Op == keys.OpSearch || w.Op == keys.OpScan {
					continue
				}
				if w.Key < s.Key || w.Key >= s.Key2 {
					continue
				}
				e := epochOf[w.Idx]
				// Group g runs after epoch g and before epoch g+1.
				if w.Idx < s.Idx && e > g {
					t.Fatalf("iter %d: write idx %d (key %d) planned in epoch %d, after scan idx %d [%d,%d) in group %d",
						iter, w.Idx, w.Key, e, s.Idx, s.Key, s.Key2, g)
				}
				if w.Idx > s.Idx && e <= g {
					t.Fatalf("iter %d: write idx %d (key %d) planned in epoch %d, before scan idx %d [%d,%d) in group %d",
						iter, w.Idx, w.Key, e, s.Idx, s.Key, s.Key2, g)
				}
			}
		}
	}
}

// TestCoveringKillNeverDropsKeys is the covering-scan property: for
// random scan groups over a random store, deriving a covered scan's
// rows from its cover must yield exactly the rows a direct evaluation
// would — no key lost to the kill, limits still honored.
func TestCoveringKillNeverDropsKeys(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 500; iter++ {
		o := oracle.New()
		for i := 0; i < 40; i++ {
			k := keys.Key(r.Intn(64))
			o.Apply(keys.Insert(k, keys.Value(k*3+1)), nil)
		}

		group := make([]keys.Query, 1+r.Intn(6))
		for i := range group {
			lo := keys.Key(r.Intn(64))
			hi := lo + keys.Key(r.Intn(32))
			group[i] = keys.Scan(lo, hi, keys.Value(r.Intn(3)))
			group[i].Idx = int32(i)
		}

		tasks, killed := planScanGroup(group)
		nCovered := 0
		for ti := range tasks {
			tk := &tasks[ti]
			direct := o.Scan(tk.q.Key, tk.q.Key2, tk.q.Value)
			var got []keys.KV
			if tk.coveredBy < 0 {
				got = direct
			} else {
				nCovered++
				cover := tasks[tk.coveredBy]
				if cover.coveredBy >= 0 {
					t.Fatalf("iter %d: cover %d is itself covered", iter, tk.coveredBy)
				}
				if cover.q.Value != 0 {
					t.Fatalf("iter %d: limited scan %d used as cover", iter, tk.coveredBy)
				}
				if cover.q.Key > tk.q.Key || cover.q.Key2 < tk.q.Key2 {
					t.Fatalf("iter %d: cover [%d,%d) does not contain [%d,%d)",
						iter, cover.q.Key, cover.q.Key2, tk.q.Key, tk.q.Key2)
				}
				coverRows := o.Scan(cover.q.Key, cover.q.Key2, 0)
				got = filterCoverRows(coverRows, tk.q.Key, tk.q.Key2, tk.q.Value)
			}
			if len(got) != len(direct) {
				t.Fatalf("iter %d scan %d [%d,%d) limit %d: derived %v, want %v",
					iter, ti, tk.q.Key, tk.q.Key2, tk.q.Value, got, direct)
			}
			for j := range direct {
				if got[j] != direct[j] {
					t.Fatalf("iter %d scan %d row %d: %+v, want %+v", iter, ti, j, got[j], direct[j])
				}
			}
		}
		if nCovered != killed {
			t.Fatalf("iter %d: killed=%d but %d tasks covered", iter, killed, nCovered)
		}
	}
}

// TestEngineScanStats checks the scan counters: a batch with two
// identical unlimited scans and one sub-range scan kills two of the
// three tree walks and reports the summed row count.
func TestEngineScanStats(t *testing.T) {
	cfg := EngineConfig{Mode: IntraInter}
	cfg.Palm.Workers = 2
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	fill := make([]keys.Query, 10)
	for i := range fill {
		fill[i] = keys.Insert(keys.Key(i*2), keys.Value(i))
	}
	rs := keys.NewResultSet(len(fill))
	eng.ProcessBatch(keys.Number(fill), rs)

	qs := keys.Number([]keys.Query{
		keys.Scan(0, 20, 0), // walks the tree: all 10 keys
		keys.Scan(0, 20, 0), // identical: derived from the first
		keys.Scan(4, 8, 0),  // contained: derived too (keys 4, 6)
	})
	rs.Reset(len(qs))
	eng.ProcessBatch(qs, rs)
	st := eng.Stats()
	if st.ScanQueries != 3 {
		t.Fatalf("ScanQueries = %d, want 3", st.ScanQueries)
	}
	if st.ScanKills != 2 {
		t.Fatalf("ScanKills = %d, want 2", st.ScanKills)
	}
	if st.ScanRows != 10+10+2 {
		t.Fatalf("ScanRows = %d, want 22", st.ScanRows)
	}
	for i, want := range []int{10, 10, 2} {
		rows, ok := rs.ScanRows(int32(i))
		if !ok || len(rows) != want {
			t.Fatalf("scan %d: %d rows (%v), want %d", i, len(rows), ok, want)
		}
	}
}

// TestEngineCacheDrainedBeforeScan pins the inter-batch cache rule: a
// value buffered in the top-K cache must be visible to a scan in a
// later batch (the extended path drains the cache before touching the
// tree).
func TestEngineCacheDrainedBeforeScan(t *testing.T) {
	cfg := EngineConfig{Mode: IntraInter, CacheCapacity: 64}
	cfg.Palm.Workers = 2
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Batch 1: hot-key writes that stay buffered in the cache.
	b1 := keys.Number([]keys.Query{
		keys.Insert(5, 50), keys.Search(5), keys.Insert(5, 51), keys.Search(5),
	})
	rs := keys.NewResultSet(len(b1))
	eng.ProcessBatch(b1, rs)

	// Batch 2: the scan must see the cached write.
	b2 := keys.Number([]keys.Query{keys.Scan(0, 10, 0)})
	rs.Reset(len(b2))
	eng.ProcessBatch(b2, rs)
	rows, ok := rs.ScanRows(0)
	if !ok || len(rows) != 1 || rows[0] != (keys.KV{Key: 5, Value: 51}) {
		t.Fatalf("scan rows = %v (%v), want [{5 51}]", rows, ok)
	}

	// Batch 3: point queries still work after the drain.
	b3 := keys.Number([]keys.Query{keys.Search(5)})
	rs.Reset(len(b3))
	eng.ProcessBatch(b3, rs)
	if r, _ := rs.Get(0); !r.Found || r.Value != 51 {
		t.Fatalf("post-drain search = %+v", r)
	}
}

// FuzzRangeRMWEquivalence is the extended-query differential fuzzer:
// arbitrary bytes decode into a batch mixing all five operations, which
// must produce oracle-identical results and final stores under every
// engine mode and both node layouts.
func FuzzRangeRMWEquivalence(f *testing.F) {
	f.Add([]byte{3, 0, 16, 1, 5, 7, 3, 0, 16})          // scan, insert, identical scan
	f.Add([]byte{4, 2, 9, 4, 2, 9, 0, 2, 0})            // RMW chain then search
	f.Add([]byte{1, 4, 8, 3, 2, 40, 2, 4, 0, 3, 2, 40}) // write, scan, delete fence, rescan
	f.Add([]byte("covering-scans-and-rmw-fences"))

	f.Fuzz(func(t *testing.T, data []byte) {
		qs := decodeMixedQueries(data)
		if len(qs) == 0 {
			return
		}
		for _, mode := range []Mode{Original, IntraInter, SimIntra} {
			for _, dense := range []bool{false, true} {
				o := oracle.New()
				want := keys.NewResultSet(len(qs))
				o.ApplyAll(qs, want)

				cfg := EngineConfig{Mode: mode}
				cfg.Palm.Workers = 2
				cfg.Palm.NoGappedLayout = dense
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := keys.NewResultSet(len(qs))
				eng.ProcessBatch(qs, got)
				compareBatch(t, mode.String(), qs, want, got)

				eng.Flush()
				gk, gv := eng.Processor().Tree().Dump()
				wk, wv := o.Dump()
				if len(gk) != len(wk) {
					t.Fatalf("mode=%v dense=%v: final sizes %d vs %d", mode, dense, len(gk), len(wk))
				}
				for i := range gk {
					if gk[i] != wk[i] || gv[i] != wv[i] {
						t.Fatalf("mode=%v dense=%v: final mismatch at %d", mode, dense, i)
					}
				}
				eng.Close()
			}
		}
	})
}

// decodeMixedQueries turns fuzz bytes into a query sequence over a
// small key space, three bytes per query: op selector, key, and an
// auxiliary byte (scan width + limit, RMW delta, insert value).
func decodeMixedQueries(data []byte) []keys.Query {
	var qs []keys.Query
	for i := 0; i+2 < len(data); i += 3 {
		k := keys.Key(data[i+1] % 24)
		aux := data[i+2]
		switch data[i] % 6 {
		case 0:
			qs = append(qs, keys.Search(k))
		case 1:
			qs = append(qs, keys.Insert(k, keys.Value(aux)))
		case 2:
			qs = append(qs, keys.Delete(k))
		case 3:
			hi := k + keys.Key(aux%32)
			qs = append(qs, keys.Scan(k, hi, keys.Value(aux>>5))) // limit 0..7
		case 4:
			qs = append(qs, keys.AddDelta(k, keys.Value(aux)))
		default:
			qs = append(qs, keys.SetIfAbsent(k, keys.Value(aux)))
		}
	}
	return keys.Number(qs)
}
