package core

import (
	"sync"

	"repro/internal/keys"
)

// Committer is the durability hook (DESIGN.md §7): when set, every
// batch's post-QSAT surviving queries are handed to CommitBatch *before*
// any of the batch's effects reach tree or cache (append-then-apply).
// The intra-batch transform is independent of tree and cache state, so
// the surviving queries alone determine the batch's state effect —
// replaying them into a recovered engine reproduces it exactly.
//
// A non-nil error from CommitBatch poisons the engine: the failing batch
// and every later one are dropped without being applied (state never
// runs ahead of the log), and CommitErr reports the failure.
type Committer interface {
	CommitBatch(qs []keys.Query) error
}

// CommitterFunc adapts a function to the Committer interface.
type CommitterFunc func(qs []keys.Query) error

// CommitBatch calls f.
func (f CommitterFunc) CommitBatch(qs []keys.Query) error { return f(qs) }

// SetCommitter installs (or, with nil, removes) the durability hook.
// Must not be called while batches are in flight.
func (e *Engine) SetCommitter(c Committer) { e.committer = c }

// SetGate installs the scheduling gate: each batch application holds
// gate.RLock for its full tree/cache effect, so a writer (snapshot)
// acquiring gate.Lock observes the engine exactly at a batch boundary.
// Must not be called while batches are in flight.
func (e *Engine) SetGate(gate *sync.RWMutex) { e.gate = gate }

// CommitErr reports the sticky commit failure, if any. Once set, every
// subsequent batch is dropped unapplied. Safe from any goroutine —
// with pipelined streams the commit runs on the tree-stage goroutine
// while dispatchers poll CommitErr.
func (e *Engine) CommitErr() error {
	if err, ok := e.commitErr.Load().(error); ok {
		return err
	}
	return nil
}

// commit runs the durability hook for one batch's surviving queries.
// It reports whether the batch may be applied. Only one commit runs at
// a time (batches are serial, and a pipelined stream commits on the
// single tree-stage goroutine), so load-then-store does not race with
// another writer.
func (e *Engine) commit(qs []keys.Query) bool {
	if e.CommitErr() != nil {
		return false
	}
	if e.committer == nil {
		return true
	}
	if err := e.committer.CommitBatch(qs); err != nil {
		e.commitErr.Store(err)
		return false
	}
	return true
}
