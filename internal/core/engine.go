package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/btree"
	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/palm"
	"repro/internal/stats"
)

// Mode selects how much of QTrans the Engine applies, matching the
// configurations compared in Fig. 14.
type Mode int

// Engine modes.
const (
	// Original runs the unmodified PALM pipeline (the paper's "org").
	Original Mode = iota
	// Intra adds the parallel intra-batch QTrans of §V-A ("intra").
	Intra
	// IntraInter additionally enables the inter-batch top-K cache of
	// §V-B ("inter").
	IntraInter
	// SimIntra replaces the symbolic QSAT with the simulation-based
	// elimination the paper discusses as an "alternative solution" in
	// §IV-E: the batch is absorbed, unsorted, into a scratch hash map,
	// so the pre-sort cost disappears from the transform at the price
	// of evaluating every query against the simulation structure. On
	// hosts where sorting dominates (few cores, cache-resident trees)
	// this variant can out-run the sort-based QSAT; see the ablation
	// experiments.
	SimIntra
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Original:
		return "org"
	case Intra:
		return "intra"
	case IntraInter:
		return "inter"
	case SimIntra:
		return "sim"
	default:
		return "mode?"
	}
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Mode selects Original, Intra, or IntraInter.
	Mode Mode
	// Palm configures the underlying batch processor.
	Palm palm.Config
	// CacheCapacity is the top-K cache size (K); used only in
	// IntraInter mode. <= 0 disables the cache even in IntraInter.
	CacheCapacity int
	// CachePolicy selects the replacement policy (default LRU).
	CachePolicy cache.Policy
	// CompareSort selects comparison sorting everywhere instead of the
	// default radix sort (ablation; see palm.Config.CompareSort).
	CompareSort bool
	// Pipeline enables two-stage pipelined stream execution: while the
	// tree stages of batch N run on the engine's pool, the sort + QSAT
	// transform of batch N+1 runs concurrently on a second pool. Only
	// ProcessStream consults this; ProcessBatch is always serial. See
	// pipeline.go for the handoff rule that keeps semantics identical.
	Pipeline bool
	// Metrics, when non-nil, receives per-batch timings and counters
	// (batch wall, per-stage wall, query/cache/fence counters). Nil
	// keeps the batch path identical to the uninstrumented build.
	Metrics *metrics.Registry
}

// Engine is the integrated query processing system: PALM with QTrans,
// the full system evaluated in §VI. Batches submitted to ProcessBatch
// are evaluated with semantics identical to serial in-order evaluation.
type Engine struct {
	cfg  EngineConfig
	pool *bsp.Pool
	proc *palm.Processor
	tf   *Transformer
	topK *cache.TopK

	// flushed maps keys evicted from the cache during the current
	// batch's cache pass to their flushed state, so later queries on
	// those keys in the same pass still see the correct pre-batch
	// value (see the ordering discussion in DESIGN.md §4.3).
	flushed map[keys.Key]flushState

	flushQ []keys.Query
	mergeQ []keys.Query

	// Scratch for the scan/RMW batch path (see processScanRMW).
	extQ  []keys.Query
	scanQ []keys.Query

	st  *stats.Batch
	met *engineMetrics // nil when metrics are off

	// Pipelined stream execution state (nil until the first pipelined
	// ProcessStream call; see pipeline.go).
	tfPool *bsp.Pool
	slots  []*pipeSlot

	// Durability hooks (nil/zero when durability is off; see commit.go).
	// commitErr is written by whichever goroutine runs the batch's
	// commit (the pipeline's tree stage, in streamed execution) and read
	// by CommitErr from dispatcher goroutines, hence the atomic slot.
	committer Committer
	commitErr atomic.Value // error; sticky once set
	gate      *sync.RWMutex
}

type flushState struct {
	value   keys.Value
	deleted bool
}

// NewEngine builds an Engine. The Engine owns its pool and processor;
// release them with Close.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return newEngine(cfg, nil)
}

// NewEngineWithTree builds an Engine over an existing tree (e.g. one
// restored from a snapshot or bulk-loaded).
func NewEngineWithTree(cfg EngineConfig, tree *btree.Tree) (*Engine, error) {
	if tree == nil {
		return nil, fmt.Errorf("core: NewEngineWithTree with nil tree")
	}
	return newEngine(cfg, tree)
}

func newEngine(cfg EngineConfig, tree *btree.Tree) (*Engine, error) {
	cfg.Palm.CompareSort = cfg.CompareSort
	pool := bsp.NewPool(cfg.Palm.Workers)
	var proc *palm.Processor
	if tree != nil {
		proc = palm.NewWithTree(cfg.Palm, tree, pool)
	} else {
		var err error
		proc, err = palm.New(cfg.Palm, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
	}
	e := &Engine{
		cfg:  cfg,
		pool: pool,
		proc: proc,
		tf:   NewTransformer(pool),
		st:   stats.NewBatch(pool.N()),
	}
	e.tf.CompareSort = cfg.CompareSort
	e.met = newEngineMetrics(cfg.Metrics)
	if cfg.Mode == IntraInter && cfg.CacheCapacity > 0 {
		e.topK = cache.New(cfg.CacheCapacity, cfg.CachePolicy)
		e.flushed = make(map[keys.Key]flushState)
	}
	return e, nil
}

// Close releases the Engine's resources.
func (e *Engine) Close() {
	e.pool.Close()
	if e.tfPool != nil {
		e.tfPool.Close()
	}
}

// Stats returns the combined per-stage statistics of the most recently
// processed batch.
func (e *Engine) Stats() *stats.Batch { return e.st }

// Pool returns the engine's BSP pool.
func (e *Engine) Pool() *bsp.Pool { return e.pool }

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// ProcessBatch evaluates one batch, writing search results into rs
// (which must have been Reset to len(qs)). qs is reordered in place.
//
// With a Committer installed, the batch's surviving queries are logged
// before any effect reaches tree or cache; a commit failure drops the
// batch (rs contents are then unspecified) and poisons the engine — see
// CommitErr.
func (e *Engine) ProcessBatch(qs []keys.Query, rs *keys.ResultSet) {
	if e.met == nil {
		e.processBatch(qs, rs)
		return
	}
	start := e.met.reg.Now()
	e.processBatch(qs, rs)
	e.met.recordBatch(e.st, e.met.reg.Since(start))
}

func (e *Engine) processBatch(qs []keys.Query, rs *keys.ResultSet) {
	e.st.Reset()
	e.st.BatchSize = len(qs)
	if len(qs) == 0 {
		return
	}

	if e.gate != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}

	// Batches carrying range scans or read-modify-writes take the
	// epoch-planned path; pure point batches stay on the hot path below,
	// byte-for-byte as before.
	if scan, rmw := hasScanOrRMW(qs); scan || rmw {
		e.processScanRMW(qs, rs, scan)
		return
	}

	if e.cfg.Mode == Original {
		// Original mode has no QSAT: the whole (pre-sort) batch is its
		// own surviving set.
		if !e.commit(qs) {
			return
		}
		e.proc.ProcessBatch(qs, rs)
		e.mergeProcStats(e.st)
		e.st.RemainingQueries = len(qs)
		return
	}

	var remaining []keys.Query
	if e.cfg.Mode == SimIntra {
		remaining = e.tf.TransformSim(qs, rs, e.st)
	} else {
		remaining = e.tf.Transform(qs, rs, e.st)
	}

	// Commit point: after QSAT, before the cache pass mutates anything.
	if !e.commit(remaining) {
		return
	}

	if e.topK != nil {
		sw := e.st.Timer(stats.StageCache)
		remaining = e.cachePass(remaining, rs, &e.tf.Router, e.st)
		sw.Stop()
	}

	e.st.RemainingQueries = len(remaining)
	e.proc.ProcessTransformed(remaining, rs)
	e.tf.Broadcast(rs)
	e.mergeProcStats(e.st)
}

// processScanRMW evaluates a batch containing range scans and/or
// read-modify-writes. The batch is split into alternating point epochs
// and scan groups (epoch.go); each epoch is QSAT-transformed against
// one shared Router (so cross-epoch representative chains still
// broadcast once), all surviving point queries are logged as ONE
// commit record before any effect reaches the tree (whole-batch crash
// atomicity), and then epochs and scan groups execute in order.
//
// The top-K cache is drained first and the cache pass is skipped for
// the whole batch: scans and RMWs read the tree directly, so clean
// residents would go stale the moment an epoch mutates the tree
// underneath them. Scan/RMW batches therefore pay full tree price —
// the intended trade, since the cache's contract is point-only.
func (e *Engine) processScanRMW(qs []keys.Query, rs *keys.ResultSet, hasScan bool) {
	e.drainCache()

	var plan batchPlan
	if hasScan {
		plan = planEpochs(qs)
	} else {
		// RMW-only batches need no fencing: one epoch, no scan groups.
		plan = batchPlan{epochs: [][]keys.Query{qs}, scans: [][]keys.Query{nil}}
	}

	var plans [][]keys.Query
	if e.cfg.Mode != Original {
		plans = e.tf.TransformEpochs(plan.epochs, len(qs), rs, e.st, e.cfg.Mode == SimIntra)
	}
	if !e.commitPlan(plan, plans) {
		return
	}
	e.executePlan(plan, plans, rs)
	if e.cfg.Mode != Original {
		e.tf.Broadcast(rs)
	}
}

// drainCache empties the top-K cache, applying its dirty state to the
// tree. Flushes carry Idx -1 and are not logged — they re-apply state
// from previously committed batches (same reasoning as Engine.Flush).
func (e *Engine) drainCache() {
	if e.topK == nil {
		return
	}
	fl := e.topK.Drain()
	if len(fl) == 0 {
		return
	}
	sort.Slice(fl, func(i, j int) bool { return fl[i].Key < fl[j].Key })
	e.proc.ProcessTransformed(fl, keys.NewResultSet(0))
}

// commitPlan logs the batch's surviving point queries — every epoch's,
// concatenated in epoch order — as one commit record before any effect.
// Per-epoch commits would break the whole-batch-prefix property the
// crash-recovery tests check. Scans are pure reads and are never
// logged. plans is nil in Original mode (epochs commit untransformed).
func (e *Engine) commitPlan(plan batchPlan, plans [][]keys.Query) bool {
	if e.committer == nil {
		return true
	}
	src := plans
	if src == nil {
		src = plan.epochs
	}
	e.extQ = e.extQ[:0]
	for _, p := range src {
		e.extQ = append(e.extQ, p...)
	}
	return e.commit(e.extQ)
}

// executePlan runs the planned epochs and scan groups in order against
// the tree. plans (per-epoch QSAT survivors) is nil in Original mode,
// where the raw epochs are processed via the full PALM pipeline.
func (e *Engine) executePlan(plan batchPlan, plans [][]keys.Query, rs *keys.ResultSet) {
	remaining := 0
	for i := range plan.epochs {
		ep := plan.epochs[i]
		if plans != nil {
			ep = plans[i]
		}
		if len(ep) > 0 {
			remaining += len(ep)
			if plans != nil {
				e.proc.ProcessTransformed(ep, rs)
			} else {
				e.proc.ProcessBatch(ep, rs)
			}
			e.mergeProcStats(e.st)
		}
		remaining += e.evalScanGroup(plan.scans[i], rs)
	}
	e.st.RemainingQueries = remaining
}

// evalScanGroup evaluates one scan group against the quiescent tree.
// Covered scans (the covering-scan kill, epoch.go) derive their rows
// by clipping the covering scan's rows; the rest walk the tree in one
// batched EvalScans pass. Returns the number of tree-evaluated scans.
func (e *Engine) evalScanGroup(scans []keys.Query, rs *keys.ResultSet) int {
	if len(scans) == 0 {
		return 0
	}
	e.st.ScanQueries += len(scans)
	tasks, killed := planScanGroup(scans)
	e.st.ScanKills += killed

	direct := e.scanQ[:0]
	for i := range tasks {
		if tasks[i].coveredBy < 0 {
			direct = append(direct, tasks[i].q)
		}
	}
	e.scanQ = direct

	rs.EnsureScans()
	e.proc.EvalScans(direct, rs)
	e.mergeProcStats(e.st)

	for i := range tasks {
		t := &tasks[i]
		if t.coveredBy < 0 {
			continue
		}
		cover, _ := rs.ScanRows(tasks[t.coveredBy].q.Idx)
		rs.SetScan(t.q.Idx, filterCoverRows(cover, t.q.Key, t.q.Key2, t.q.Value))
	}
	for i := range tasks {
		if rows, ok := rs.ScanRows(tasks[i].q.Idx); ok {
			e.st.ScanRows += len(rows)
		}
	}
	return len(direct)
}

// mergeProcStats folds the processor's stage timings, leaf-op counters
// and Stage-1 fence hits into st.
func (e *Engine) mergeProcStats(st *stats.Batch) {
	ps := e.proc.Stats()
	for _, s := range stats.Stages() {
		st.Elapsed[s] += ps.Elapsed[s]
	}
	for i, v := range ps.LeafOps {
		st.LeafOps[i] += v
	}
	st.FenceHits += ps.FenceHits
	st.Splits += ps.Splits
	st.GapClaims += ps.GapClaims
	st.ShiftedSlots += ps.ShiftedSlots
}

// cachePass runs the inter-batch top-K cache over the QTrans-reduced
// batch (§V-B): per distinct key the reduced batch holds at most one
// representative search followed by at most one defining query.
// Resident keys are served entirely from the cache; defining queries on
// non-resident keys are admitted (write-back), with evicted dirty
// entries re-emitted as flush queries that are merged, in key order and
// ahead of same-key survivors, into the returned sequence.
//
// rt is the Router that transformed this batch (the engine's own in
// serial execution, a pipeline slot's in pipelined execution) and st
// receives the inferred-return counters.
func (e *Engine) cachePass(remaining []keys.Query, rs *keys.ResultSet, rt *Router, st *stats.Batch) []keys.Query {
	e.flushQ = e.flushQ[:0]
	for k := range e.flushed {
		delete(e.flushed, k)
	}

	out := remaining[:0]
	h1, m1, ev1 := e.topK.Stats()

	keys.KeyRuns(remaining, func(lo, hi int) {
		k := remaining[lo].Key
		entry, resident := e.topK.Lookup(k)
		if resident {
			// The reduced run is [search?, define?]: the snapshot taken
			// by Lookup is valid for the search (which precedes any
			// define), and defines update the resident entry in place.
			for i := lo; i < hi; i++ {
				q := remaining[i]
				switch q.Op {
				case keys.OpSearch:
					if entry.Tombstone {
						st.InferredReturns += rt.Resolve(rs, q.Idx, 0, false)
					} else {
						st.InferredReturns += rt.Resolve(rs, q.Idx, entry.Value, true)
					}
				case keys.OpInsert:
					e.topK.WriteInsert(q.Key, q.Value)
				case keys.OpDelete:
					e.topK.WriteDelete(q.Key)
				}
			}
			return
		}

		for i := lo; i < hi; i++ {
			q := remaining[i]
			switch q.Op {
			case keys.OpSearch:
				// If this key was flushed earlier in this very pass,
				// its pre-batch state is known without a tree visit.
				if fs, ok := e.flushed[k]; ok {
					if fs.deleted {
						st.InferredReturns += rt.Resolve(rs, q.Idx, 0, false)
					} else {
						st.InferredReturns += rt.Resolve(rs, q.Idx, fs.value, true)
					}
					// The representative stays in the transformer's
					// broadcast list; re-broadcasting the recorded
					// result after evaluation is a harmless no-op.
					continue
				}
				out = append(out, q)
			case keys.OpInsert:
				flush, evicted := e.topK.WriteInsert(q.Key, q.Value)
				if evicted {
					e.recordFlush(flush)
				}
			case keys.OpDelete:
				flush, evicted := e.topK.WriteDelete(q.Key)
				if evicted {
					e.recordFlush(flush)
				}
			}
		}
	})

	h2, m2, ev2 := e.topK.Stats()
	st.CacheHits += int(h2 - h1)
	st.CacheMisses += int(m2 - m1)
	st.CacheEvictions += int(ev2 - ev1)
	st.CacheFlushes += len(e.flushQ)

	if len(e.flushQ) == 0 {
		return out
	}

	// Merge flush queries (key-sorted, Idx = -1 so they order before
	// same-key survivors) into the reduced sequence. The sort must be
	// stable: a key evicted, readmitted by its own defining query, and
	// evicted again within one pass emits two flushes whose emission
	// order decides the key's final tree state.
	sort.SliceStable(e.flushQ, func(i, j int) bool { return e.flushQ[i].Key < e.flushQ[j].Key })
	e.mergeQ = e.mergeQ[:0]
	i, j := 0, 0
	for i < len(out) && j < len(e.flushQ) {
		if out[i].Key < e.flushQ[j].Key || (out[i].Key == e.flushQ[j].Key && out[i].Idx <= e.flushQ[j].Idx) {
			e.mergeQ = append(e.mergeQ, out[i])
			i++
		} else {
			e.mergeQ = append(e.mergeQ, e.flushQ[j])
			j++
		}
	}
	e.mergeQ = append(e.mergeQ, out[i:]...)
	e.mergeQ = append(e.mergeQ, e.flushQ[j:]...)
	return e.mergeQ
}

// recordFlush stores an eviction flush query and remembers the flushed
// state for same-pass lookups.
func (e *Engine) recordFlush(q keys.Query) {
	e.flushQ = append(e.flushQ, q)
	if q.Op == keys.OpDelete {
		e.flushed[q.Key] = flushState{deleted: true}
	} else {
		e.flushed[q.Key] = flushState{value: q.Value}
	}
}

// Train pre-populates the top-K cache with the given keys (§V-B: "the
// entries in the top-K cache can be pre-populated with training
// data"). Each key's current tree state is admitted as a clean entry —
// a value for present keys, a clean tombstone for absent ones — so no
// flush is owed for them. Dirty entries evicted to make room are
// written back to the tree immediately. No-op outside IntraInter mode.
func (e *Engine) Train(hot []keys.Key) {
	if e.topK == nil {
		return
	}
	var flushes []keys.Query
	for _, k := range hot {
		if e.topK.Contains(k) {
			continue
		}
		// The tree is authoritative for non-resident keys.
		v, found := e.proc.Tree().Search(k)
		var fl keys.Query
		var evicted bool
		if found {
			fl, evicted = e.topK.Admit(k, v)
		} else {
			fl, evicted = e.topK.AdmitAbsent(k)
		}
		if evicted {
			flushes = append(flushes, fl)
		}
	}
	if len(flushes) > 0 {
		sort.SliceStable(flushes, func(i, j int) bool { return flushes[i].Key < flushes[j].Key })
		e.proc.ProcessTransformed(flushes, keys.NewResultSet(0))
	}
}

// WarmPairs admits the given key/value pairs into the top-K cache as
// clean entries. The shard migration path calls it on the receiving
// engine after moving a hot key range between shards: the donor's
// cache entries for those keys are necessarily dropped (they would go
// stale), and without re-admission the moved range — by construction
// the hottest keys in the system — serves only misses until the next
// write to each key, since read misses never admit. The caller
// guarantees the values match the receiver's tree (they were just bulk
// inserted), so the entries are clean and owe no flush. Dirty entries
// evicted to make room are written back immediately, as in Train.
// No-op outside IntraInter mode.
func (e *Engine) WarmPairs(ks []keys.Key, vs []keys.Value) {
	if e.topK == nil {
		return
	}
	// Admitting more pairs than the cache holds would just cycle the
	// ring; keep the tail (the keys nearest the moved boundary).
	if c := e.topK.Capacity(); len(ks) > c {
		ks, vs = ks[len(ks)-c:], vs[len(vs)-c:]
	}
	var flushes []keys.Query
	for i, k := range ks {
		if e.topK.Contains(k) {
			continue
		}
		if fl, evicted := e.topK.Admit(k, vs[i]); evicted {
			flushes = append(flushes, fl)
		}
	}
	if len(flushes) > 0 {
		sort.SliceStable(flushes, func(i, j int) bool { return flushes[i].Key < flushes[j].Key })
		e.proc.ProcessTransformed(flushes, keys.NewResultSet(0))
	}
}

// Flush writes every dirty cache entry back to the tree so the tree
// alone reflects all processed queries. Call at end of run (or before
// inspecting the tree directly) in IntraInter mode.
func (e *Engine) Flush() {
	if e.topK == nil {
		return
	}
	fl := e.topK.FlushAll()
	if len(fl) == 0 {
		return
	}
	sort.Slice(fl, func(i, j int) bool { return fl[i].Key < fl[j].Key })
	e.proc.ProcessTransformed(fl, keys.NewResultSet(0))
}

// DrainCacheRange flushes and drops every cached entry with
// lo <= key < hi, leaving the tree authoritative for that key range
// while the rest of the cache stays warm. The shard migration path
// calls it on donor and receiver before moving a key slice between
// engines: a resident entry for a moved key would otherwise serve
// stale state if the key ever routed back. Flushes carry Idx -1 and
// are not logged, same reasoning as Flush.
func (e *Engine) DrainCacheRange(lo, hi keys.Key) {
	if e.topK == nil {
		return
	}
	fl := e.topK.DrainRange(lo, hi)
	if len(fl) == 0 {
		return
	}
	sort.Slice(fl, func(i, j int) bool { return fl[i].Key < fl[j].Key })
	e.proc.ProcessTransformed(fl, keys.NewResultSet(0))
}

// Processor exposes the underlying PALM processor (e.g. for tree
// access and validation in tests).
func (e *Engine) Processor() *palm.Processor { return e.proc }

// RecordLayoutMetrics samples the tree's current leaf-occupancy
// distribution into the metrics registry ("leaf_occupancy_permille").
// The walk is O(#leaves), so call it at run boundaries, not per batch.
// A no-op when metrics are off. Not safe concurrently with batches.
func (e *Engine) RecordLayoutMetrics() {
	if e.met == nil {
		return
	}
	e.met.recordLayout(e.proc.Tree())
}
