package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/keys"
)

func TestRouterChains(t *testing.T) {
	var r Router
	r.Reset(6)
	r.Append(0, 2)
	r.Append(0, 4)
	if got := r.ChainLen(0); got != 2 {
		t.Fatalf("ChainLen = %d, want 2", got)
	}
	rs := keys.NewResultSet(6)
	if n := r.Resolve(rs, 0, 77, true); n != 3 {
		t.Fatalf("Resolve wrote %d, want 3", n)
	}
	for _, idx := range []int32{0, 2, 4} {
		res, ok := rs.Get(idx)
		if !ok || !res.Found || res.Value != 77 {
			t.Fatalf("idx %d: %+v, %v", idx, res, ok)
		}
	}
	if _, ok := rs.Get(1); ok {
		t.Fatal("unchained index must not be written")
	}
}

func TestRouterAppendMergesChains(t *testing.T) {
	var r Router
	r.Reset(6)
	r.Append(0, 1) // chain 0: 0->1
	r.Append(2, 3) // chain 2: 2->3
	r.Append(0, 2) // merge: 0->1->2->3
	if got := r.ChainLen(0); got != 3 {
		t.Fatalf("merged ChainLen = %d, want 3", got)
	}
	rs := keys.NewResultSet(6)
	if n := r.Resolve(rs, 0, 5, true); n != 4 {
		t.Fatalf("Resolve wrote %d, want 4", n)
	}
}

func TestRouterBroadcast(t *testing.T) {
	var r Router
	r.Reset(4)
	r.Append(1, 3)
	rs := keys.NewResultSet(4)
	rs.Set(1, 42, true)
	if n := r.Broadcast(rs, 1); n != 1 {
		t.Fatalf("Broadcast wrote %d, want 1", n)
	}
	res, ok := rs.Get(3)
	if !ok || res.Value != 42 || !res.Found {
		t.Fatalf("chained result %+v, %v", res, ok)
	}
}

func TestRouterBroadcastUnanswered(t *testing.T) {
	var r Router
	r.Reset(2)
	r.Append(0, 1)
	rs := keys.NewResultSet(2)
	r.Broadcast(rs, 0) // rep never answered: chain gets not-found
	res, ok := rs.Get(1)
	if !ok || res.Found {
		t.Fatalf("chained result %+v, %v; want recorded not-found", res, ok)
	}
}

// runQSATSeq is a helper running sequential one-pass QSAT on a
// key-sorted copy of qs.
func runQSATSeq(qs []keys.Query, rs *keys.ResultSet) (*Emitter, *Router) {
	sorted := append([]keys.Query(nil), qs...)
	keys.SortByKey(sorted)
	router := &Router{}
	router.Reset(len(qs))
	e := NewEmitter(router, rs)
	e.CollectReps = true
	QSATSequence(sorted, e)
	return e, router
}

func TestQSATRunPaperExample(t *testing.T) {
	qs := paperExample()
	rs := keys.NewResultSet(len(qs))
	e, _ := runQSATSeq(qs, rs)

	// 3 remaining defining queries, 4 inferred returns, no surviving
	// searches (every search had an in-batch define).
	if len(e.Out) != 3 {
		t.Fatalf("Out = %v, want 3 queries", e.Out)
	}
	if e.Inferred != 4 {
		t.Fatalf("Inferred = %d, want 4", e.Inferred)
	}
	if len(e.Reps) != 0 {
		t.Fatalf("Reps = %v, want none", e.Reps)
	}
	checks := []struct {
		idx   int32
		found bool
		v     keys.Value
	}{{1, true, 1}, {3, true, 1}, {7, false, 0}, {8, true, 4}}
	for _, c := range checks {
		res, ok := rs.Get(c.idx)
		if !ok || res.Found != c.found || (c.found && res.Value != c.v) {
			t.Errorf("idx %d: %+v ok=%v, want found=%v v=%d", c.idx, res, ok, c.found, c.v)
		}
	}
	wantOut := []keys.Query{keys.Insert(1, 1), keys.Insert(2, 4), keys.Delete(3)}
	for i, w := range wantOut {
		g := e.Out[i]
		if g.Op != w.Op || g.Key != w.Key || (w.Op == keys.OpInsert && g.Value != w.Value) {
			t.Errorf("Out[%d] = %v, want %v", i, g, w)
		}
	}
}

func TestQSATRunLeadingSearches(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Search(9), keys.Search(9), keys.Search(9), keys.Insert(9, 5),
	})
	rs := keys.NewResultSet(len(qs))
	e, router := runQSATSeq(qs, rs)
	// All three searches precede the define: one representative
	// survives with a chain of two; the insert survives as q_o.
	if len(e.Out) != 2 {
		t.Fatalf("Out = %v, want [S, I]", e.Out)
	}
	if e.Out[0].Op != keys.OpSearch || e.Out[0].Idx != 0 {
		t.Fatalf("representative = %v, want S@0", e.Out[0])
	}
	if e.Out[1].Op != keys.OpInsert {
		t.Fatalf("q_o = %v, want insert", e.Out[1])
	}
	if len(e.Reps) != 1 || e.Reps[0] != 0 {
		t.Fatalf("Reps = %v, want [0]", e.Reps)
	}
	if got := router.ChainLen(0); got != 2 {
		t.Fatalf("chain length = %d, want 2", got)
	}
	// Broadcast delivers the representative's answer to 1 and 2.
	rs.Set(0, 123, true)
	router.Broadcast(rs, 0)
	for _, idx := range []int32{1, 2} {
		res, ok := rs.Get(idx)
		if !ok || res.Value != 123 {
			t.Fatalf("idx %d: %+v", idx, res)
		}
	}
}

func TestQSATRunSearchOnly(t *testing.T) {
	qs := keys.Number([]keys.Query{keys.Search(4), keys.Search(4)})
	rs := keys.NewResultSet(len(qs))
	e, _ := runQSATSeq(qs, rs)
	if len(e.Out) != 1 || e.Out[0].Op != keys.OpSearch {
		t.Fatalf("Out = %v, want single representative search", e.Out)
	}
	if e.Inferred != 0 {
		t.Fatalf("Inferred = %d, want 0", e.Inferred)
	}
}

func TestQSATRunDefinesOnly(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Insert(4, 1), keys.Delete(4), keys.Insert(4, 2),
	})
	rs := keys.NewResultSet(len(qs))
	e, _ := runQSATSeq(qs, rs)
	if len(e.Out) != 1 {
		t.Fatalf("Out = %v, want only q_o", e.Out)
	}
	if e.Out[0].Op != keys.OpInsert || e.Out[0].Value != 2 {
		t.Fatalf("q_o = %v, want I(4,2)", e.Out[0])
	}
}

func TestQSATRunInterleaved(t *testing.T) {
	// S I S S D S I S — checks inference picks the right define.
	qs := keys.Number([]keys.Query{
		keys.Search(1),    // 0: leading → rep
		keys.Insert(1, 7), // 1
		keys.Search(1),    // 2: infer 7
		keys.Search(1),    // 3: infer 7
		keys.Delete(1),    // 4
		keys.Search(1),    // 5: infer null
		keys.Insert(1, 9), // 6: q_o
		keys.Search(1),    // 7: infer 9
	})
	rs := keys.NewResultSet(len(qs))
	e, _ := runQSATSeq(qs, rs)
	if len(e.Out) != 2 {
		t.Fatalf("Out = %v", e.Out)
	}
	if e.Out[0].Idx != 0 || e.Out[1].Value != 9 {
		t.Fatalf("Out = %v, want [S@0, I(1,9)]", e.Out)
	}
	checks := []struct {
		idx   int32
		found bool
		v     keys.Value
	}{{2, true, 7}, {3, true, 7}, {5, false, 0}, {7, true, 9}}
	for _, c := range checks {
		res, ok := rs.Get(c.idx)
		if !ok || res.Found != c.found || (c.found && res.Value != c.v) {
			t.Errorf("idx %d: %+v ok=%v", c.idx, res, ok)
		}
	}
}

// TestOnePassMatchesTwoRound: the one-pass QSAT and the reference
// two-round QSAT agree on inferred answers and on the multiset of
// remaining defining queries for any sequence.
func TestOnePassMatchesTwoRound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := randomSequence(r, 30+r.Intn(150), 1+r.Intn(8))

		rs := keys.NewResultSet(len(qs))
		e, _ := runQSATSeq(qs, rs)

		ops := TwoRoundQSAT(qs)
		wantInferred := map[int32]keys.Result{}
		wantRemaining := map[string]int{}
		for _, op := range ops {
			if op.Return {
				wantInferred[op.Query.Idx] = keys.Result{Value: op.Value, Found: op.Found}
			} else if op.Query.Op.IsDefining() {
				wantRemaining[op.Query.String()]++
			}
		}

		gotRemaining := map[string]int{}
		for _, q := range e.Out {
			if q.Op.IsDefining() {
				gotRemaining[q.String()]++
			}
		}
		if len(gotRemaining) != len(wantRemaining) {
			return false
		}
		for k, v := range wantRemaining {
			if gotRemaining[k] != v {
				return false
			}
		}
		for idx, w := range wantInferred {
			g, ok := rs.Get(idx)
			if !ok || g.Found != w.Found || (w.Found && g.Value != w.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTransformerSerialEquivalence: parallel two-phase QTrans followed
// by serial evaluation of the reduced batch plus broadcasts equals
// serial evaluation of the original batch, for any store and batch.
func TestTransformerSerialEquivalence(t *testing.T) {
	pool := bsp.NewPool(4)
	defer pool.Close()
	tf := NewTransformer(pool)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := randomSequence(r, 100+r.Intn(800), 1+r.Intn(12))

		store := map[keys.Key]keys.Value{}
		for i := 0; i < r.Intn(8); i++ {
			store[keys.Key(r.Intn(12))] = keys.Value(r.Intn(100))
		}
		ref := map[keys.Key]keys.Value{}
		for k, v := range store {
			ref[k] = v
		}
		wantRes, _ := EvaluateReference(qs, ref)

		rs := keys.NewResultSet(len(qs))
		work := append([]keys.Query(nil), qs...)
		remaining := tf.Transform(work, rs, nil)

		// Evaluate the reduced batch serially against the store.
		for _, q := range remaining {
			switch q.Op {
			case keys.OpSearch:
				v, ok := store[q.Key]
				rs.Set(q.Idx, v, ok)
			case keys.OpInsert:
				store[q.Key] = q.Value
			case keys.OpDelete:
				delete(store, q.Key)
			}
		}
		tf.Broadcast(rs)

		for i, w := range wantRes {
			g, ok := rs.Get(int32(i))
			if !ok || g.Found != w.Found || (w.Found && g.Value != w.Value) {
				return false
			}
		}
		if len(store) != len(ref) {
			return false
		}
		for k, v := range ref {
			if store[k] != v {
				return false
			}
		}
		// Reduction invariant: at most one define and one search per key.
		perKey := map[keys.Key][2]int{}
		for _, q := range remaining {
			c := perKey[q.Key]
			if q.Op == keys.OpSearch {
				c[0]++
			} else {
				c[1]++
			}
			perKey[q.Key] = c
			if c[0] > 1 || c[1] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformerEmptyBatch(t *testing.T) {
	pool := bsp.NewPool(2)
	defer pool.Close()
	tf := NewTransformer(pool)
	out := tf.Transform(nil, keys.NewResultSet(0), nil)
	if len(out) != 0 {
		t.Fatalf("Transform(nil) = %v", out)
	}
}

func TestRunAlignedBounds(t *testing.T) {
	qs := []keys.Query{
		{Key: 1}, {Key: 1}, {Key: 1}, {Key: 1}, {Key: 2}, {Key: 3}, {Key: 3}, {Key: 4},
	}
	bounds := runAlignedBounds(qs, 3)
	if bounds[0] != 0 || bounds[len(bounds)-1] != len(qs) {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := 1; i < len(bounds)-1; i++ {
		b := bounds[i]
		if b > 0 && b < len(qs) && qs[b].Key == qs[b-1].Key {
			t.Fatalf("bound %d splits a run: %v", b, bounds)
		}
		if b < bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
}

func BenchmarkTransform1M(b *testing.B) {
	pool := bsp.NewPool(0)
	defer pool.Close()
	tf := NewTransformer(pool)
	r := rand.New(rand.NewSource(1))
	const n = 1 << 20
	base := make([]keys.Query, n)
	for i := range base {
		// Zipf-ish skew via squaring.
		k := keys.Key(r.Intn(1<<10) * r.Intn(1<<10))
		switch r.Intn(4) {
		case 0:
			base[i] = keys.Insert(k, keys.Value(i))
		case 1:
			base[i] = keys.Delete(k)
		default:
			base[i] = keys.Search(k)
		}
	}
	keys.Number(base)
	work := make([]keys.Query, n)
	rs := keys.NewResultSet(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		rs.Reset(n)
		tf.Transform(work, rs, nil)
	}
	b.SetBytes(n)
}
