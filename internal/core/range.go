package core

import "repro/internal/keys"

// Range primitives for the tier store (DESIGN.md §14). These operate
// on the tree directly at a batch boundary: the tier engine wrapper
// calls them between batches while holding the scheduling gate
// exclusively, so they take no locks themselves and bypass the
// transformer, cache, and committer. Callers must drain the cache for
// the affected range first (DrainCacheRange) so the tree alone is
// authoritative for it.

// StoredLen returns the number of pairs stored in the tree. Dirty
// cache entries that have not been flushed are not counted; the cache
// is bounded, so the tier budget check tolerates the slack.
func (e *Engine) StoredLen() int { return e.proc.Tree().Len() }

// RangeDump returns the stored pairs with lo <= key <= hi in ascending
// order, at most max of them (max <= 0 means unlimited). more reports
// that the range holds further pairs beyond the returned ones.
func (e *Engine) RangeDump(lo, hi keys.Key, max int) (ks []keys.Key, vs []keys.Value, more bool) {
	t := e.proc.Tree()
	for it := t.Seek(lo); it.Valid(); it.Next() {
		k, v := it.Pair()
		if k > hi {
			break
		}
		if max > 0 && len(ks) == max {
			return ks, vs, true
		}
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs, false
}

// DeleteRange removes every stored pair with lo <= key <= hi,
// returning how many were removed.
func (e *Engine) DeleteRange(lo, hi keys.Key) int {
	t := e.proc.Tree()
	var doomed []keys.Key
	for it := t.Seek(lo); it.Valid(); it.Next() {
		k, _ := it.Pair()
		if k > hi {
			break
		}
		doomed = append(doomed, k)
	}
	for _, k := range doomed {
		t.Delete(k)
	}
	return len(doomed)
}

// InsertPairs stores the given pairs directly into the tree (the
// promotion path). Unlike WarmPairs it does not touch the cache.
func (e *Engine) InsertPairs(ks []keys.Key, vs []keys.Value) {
	t := e.proc.Tree()
	for i := range ks {
		t.Insert(ks[i], vs[i])
	}
}
