package core

import (
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/stats"
)

// TestMergeProcStatsFoldsAllFields is the regression gate for
// mergeProcStats: every field the PALM processor reports — all stage
// timings, per-worker leaf ops, and the Stage-1 fence-hit counter —
// must fold into the engine's batch stats, additively on top of what
// is already there.
func TestMergeProcStatsFoldsAllFields(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Mode: Original, Palm: palm.Config{Order: 16, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cases := []struct {
		name string
		prep func(ps *stats.Batch)
		want func(t *testing.T, st *stats.Batch)
	}{
		{
			"stage timings",
			func(ps *stats.Batch) {
				for i, s := range stats.Stages() {
					ps.Elapsed[s] = time.Duration(i+1) * time.Millisecond
				}
			},
			func(t *testing.T, st *stats.Batch) {
				for i, s := range stats.Stages() {
					if want := time.Duration(i+1) * time.Millisecond; st.Elapsed[s] != want {
						t.Errorf("Elapsed[%s] = %v, want %v", s, st.Elapsed[s], want)
					}
				}
			},
		},
		{
			"leaf ops per worker",
			func(ps *stats.Batch) {
				for i := range ps.LeafOps {
					ps.LeafOps[i] = int64(100 + i)
				}
			},
			func(t *testing.T, st *stats.Batch) {
				for i := range st.LeafOps {
					if want := int64(100 + i); st.LeafOps[i] != want {
						t.Errorf("LeafOps[%d] = %d, want %d", i, st.LeafOps[i], want)
					}
				}
			},
		},
		{
			"fence hits",
			func(ps *stats.Batch) { ps.FenceHits = 42 },
			func(t *testing.T, st *stats.Batch) {
				if st.FenceHits != 42 {
					t.Errorf("FenceHits = %d, want 42", st.FenceHits)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := eng.proc.Stats()
			ps.Reset()
			tc.prep(ps)
			st := stats.NewBatch(eng.pool.N())
			eng.mergeProcStats(st)
			tc.want(t, st)
		})
	}

	// Additivity: merging twice on top of existing totals accumulates.
	ps := eng.proc.Stats()
	ps.Reset()
	ps.FenceHits = 5
	ps.Elapsed[stats.StageFind] = time.Millisecond
	ps.LeafOps[0] = 3
	st := stats.NewBatch(eng.pool.N())
	eng.mergeProcStats(st)
	eng.mergeProcStats(st)
	if st.FenceHits != 10 || st.Elapsed[stats.StageFind] != 2*time.Millisecond || st.LeafOps[0] != 6 {
		t.Fatalf("merge not additive: fence=%d find=%v leaf0=%d",
			st.FenceHits, st.Elapsed[stats.StageFind], st.LeafOps[0])
	}
}

// TestCachePassCountsEvictions checks the eviction delta captured from
// the top-K cache reaches the batch stats: a cache of capacity 1 under
// inserts to distinct keys must evict on every admission after the
// first.
func TestCachePassCountsEvictions(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 16, Workers: 2},
		CacheCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Distinct keys, one insert each: every batch admits its key into
	// the capacity-1 cache, evicting the previous dirty entry.
	rs := keys.NewResultSet(1)
	var total int
	for k := keys.Key(1); k <= 4; k++ {
		qs := keys.Number([]keys.Query{keys.Insert(k, keys.Value(k))})
		rs.Reset(len(qs))
		eng.ProcessBatch(qs, rs)
		total += eng.Stats().CacheEvictions
	}
	if total != 3 {
		t.Fatalf("CacheEvictions total = %d, want 3 (capacity-1 cache, 4 distinct keys)", total)
	}
}
