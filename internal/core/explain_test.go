package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestExplainPaperExample(t *testing.T) {
	r := Explain(paperExample())
	// Fig. 7: 9 queries, 3 distinct keys; q3 and q5 are overwritten
	// (❷), and all 4 searches are answered by inference (❸) — none
	// are leading, so no pure redundancy (❶) in this example.
	if r.Total != 9 || r.DistinctKeys != 3 {
		t.Fatalf("report = %+v", r)
	}
	if r.Overwriting != 2 {
		t.Fatalf("Overwriting = %d, want 2", r.Overwriting)
	}
	if r.Inference != 4 {
		t.Fatalf("Inference = %d, want 4", r.Inference)
	}
	if r.Redundancy != 0 {
		t.Fatalf("Redundancy = %d, want 0", r.Redundancy)
	}
	if r.Surviving != 3 {
		t.Fatalf("Surviving = %d, want 3 (Fig. 7-d)", r.Surviving)
	}
	if r.Eliminated() != 6 {
		t.Fatalf("Eliminated = %d", r.Eliminated())
	}
}

func TestExplainRedundantSearches(t *testing.T) {
	qs := keys.Number([]keys.Query{
		keys.Search(1), keys.Search(1), keys.Search(1), // ❶: 2 collapse
		keys.Insert(1, 5), // survives
		keys.Search(1),    // ❸
	})
	r := Explain(qs)
	if r.Redundancy != 2 || r.Inference != 1 || r.Overwriting != 0 || r.Surviving != 2 {
		t.Fatalf("report = %+v", r)
	}
}

func TestExplainEmpty(t *testing.T) {
	r := Explain(nil)
	if r.Total != 0 || r.ReductionRatio() != 0 || r.Eliminated() != 0 {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestExplainString(t *testing.T) {
	s := Explain(paperExample()).String()
	for _, want := range []string{"9 queries", "3 distinct", "6 eliminated", "66.7%", "3 survive"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: Explain's surviving count equals the one-pass QSAT's
// actual surviving query count, and Total = Surviving + Eliminated.
func TestExplainMatchesQSAT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qs := randomSequence(r, 20+r.Intn(300), 1+r.Intn(12))
		rep := Explain(qs)
		if rep.Total != rep.Surviving+rep.Eliminated() {
			return false
		}
		rs := keys.NewResultSet(len(qs))
		e, _ := runQSATSeq(qs, rs)
		return rep.Surviving == len(e.Out) && rep.Inference+rep.Redundancy == e.Inferred+routerChains(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// routerChains totals the chain lengths behind surviving
// representatives (the collapsed redundant searches).
func routerChains(e *Emitter) int {
	n := 0
	for _, rep := range e.Reps {
		n += e.router.ChainLen(rep)
	}
	return n
}
