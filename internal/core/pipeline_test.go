package core

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/oracle"
	"repro/internal/palm"
)

// streamDifferential drives batches through ProcessStream and checks
// every emitted result against the oracle (applied in emission order,
// which ProcessStream guarantees equals submission order), then the
// final store and tree shape. The originals are carried on the job Tag
// because the transform reorders Qs in place and the oracle needs
// submission order.
func streamDifferential(t *testing.T, cfg EngineConfig, batches [][]keys.Query) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	o := oracle.New()

	in := make(chan *Job)
	go func() {
		for _, b := range batches {
			keys.Number(b)
			in <- &Job{Qs: append([]keys.Query(nil), b...), Tag: b}
		}
		close(in)
	}()

	emitted := 0
	eng.ProcessStream(in, func(j *Job) {
		orig := j.Tag.([]keys.Query)
		want := keys.NewResultSet(len(orig))
		o.ApplyAll(orig, want)
		for i := int32(0); i < int32(len(orig)); i++ {
			w, wok := want.Get(i)
			g, gok := j.RS.Get(i)
			if wok != gok || w != g {
				t.Fatalf("mode=%v pipeline=%v batch %d idx %d: got %+v (%v), want %+v (%v)",
					cfg.Mode, cfg.Pipeline, emitted, i, g, gok, w, wok)
			}
		}
		emitted++
	})
	if emitted != len(batches) {
		t.Fatalf("emitted %d of %d batches", emitted, len(batches))
	}

	eng.Flush()
	if err := eng.Processor().Tree().Validate(btree.RelaxedFill); err != nil {
		t.Fatalf("mode=%v pipeline=%v: %v", cfg.Mode, cfg.Pipeline, err)
	}
	gk, gv := eng.Processor().Tree().Dump()
	wk, wv := o.Dump()
	if len(gk) != len(wk) {
		t.Fatalf("mode=%v pipeline=%v: final sizes %d vs %d", cfg.Mode, cfg.Pipeline, len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("mode=%v pipeline=%v: final mismatch at %d: (%d,%d) vs (%d,%d)",
				cfg.Mode, cfg.Pipeline, i, gk[i], gv[i], wk[i], wv[i])
		}
	}
}

// TestPipelineDifferential proves the handoff rule: pipelined streaming
// is byte-identical to serial execution (both are checked against the
// oracle) for every mode, with and without the inter-batch cache.
func TestPipelineDifferential(t *testing.T) {
	for _, mode := range []Mode{Original, Intra, IntraInter, SimIntra} {
		for _, capacity := range []int{0, 64} {
			if capacity > 0 && mode != IntraInter {
				continue
			}
			for _, pipelined := range []bool{false, true} {
				r := rand.New(rand.NewSource(int64(mode)<<8 + int64(capacity) + 7))
				batches := skewedBatches(r, 20, 300, 12, 400, 0.5)
				streamDifferential(t, EngineConfig{
					Mode:          mode,
					Palm:          palm.Config{Order: 8, Workers: 4, LoadBalance: true},
					CacheCapacity: capacity,
					Pipeline:      pipelined,
				}, batches)
			}
		}
	}
}

// TestPipelineCompareSortDifferential covers the comparison-sort
// ablation path under pipelining (it exercises the transform pool's
// merge sort in stage A).
func TestPipelineCompareSortDifferential(t *testing.T) {
	for _, mode := range []Mode{Original, IntraInter} {
		r := rand.New(rand.NewSource(int64(mode) + 31))
		batches := skewedBatches(r, 10, 400, 10, 300, 0.5)
		streamDifferential(t, EngineConfig{
			Mode:          mode,
			Palm:          palm.Config{Order: 8, Workers: 3, LoadBalance: true},
			CacheCapacity: 32,
			CompareSort:   true,
			Pipeline:      true,
		}, batches)
	}
}

// TestPipelineCallerResultSets: jobs with caller-supplied ResultSets
// keep their results after the stream completes (no lending).
func TestPipelineCallerResultSets(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:     Intra,
		Palm:     palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const nJobs = 6
	jobs := make([]*Job, nJobs)
	in := make(chan *Job)
	go func() {
		for i := range jobs {
			qs := keys.Number([]keys.Query{
				keys.Insert(keys.Key(i), keys.Value(100+i)),
				keys.Search(keys.Key(i)),
			})
			jobs[i] = &Job{Qs: qs, RS: keys.NewResultSet(len(qs))}
			in <- jobs[i]
		}
		close(in)
	}()
	eng.ProcessStream(in, func(*Job) {})

	for i, j := range jobs {
		if j.RS == nil {
			t.Fatalf("job %d: caller RS was dropped", i)
		}
		res, ok := j.RS.Get(1)
		if !ok || !res.Found || res.Value != keys.Value(100+i) {
			t.Fatalf("job %d: search = %+v, %v; want %d", i, res, ok, 100+i)
		}
	}
}

// TestPipelineEmptyAndTinyBatches: zero-length and single-query batches
// flow through both stages without upsetting the slot recycling.
func TestPipelineEmptyAndTinyBatches(t *testing.T) {
	for _, mode := range []Mode{Original, IntraInter} {
		batches := [][]keys.Query{
			{},
			{keys.Insert(1, 10)},
			{},
			{keys.Search(1)},
			{keys.Delete(1)},
			{keys.Search(1)},
		}
		streamDifferential(t, EngineConfig{
			Mode:          mode,
			Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
			CacheCapacity: 4,
			Pipeline:      true,
		}, batches)
	}
}

// TestPipelineStreamSerialFallback: ProcessStream without the Pipeline
// flag must also match the oracle (it routes through ProcessBatch).
func TestPipelineStreamSerialFallback(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	batches := skewedBatches(r, 8, 500, 10, 200, 0.4)
	streamDifferential(t, EngineConfig{
		Mode:          IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		CacheCapacity: 16,
	}, batches)
}

// TestPipelineInterleavedWithProcessBatch: a stream can be followed by
// direct ProcessBatch calls and another stream on the same engine.
func TestPipelineInterleavedWithProcessBatch(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Mode:     Intra,
		Palm:     palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	runStream := func(lo, hi int) {
		in := make(chan *Job)
		go func() {
			for k := lo; k < hi; k++ {
				in <- &Job{Qs: keys.Number([]keys.Query{keys.Insert(keys.Key(k), keys.Value(k))})}
			}
			close(in)
		}()
		eng.ProcessStream(in, func(*Job) {})
	}

	runStream(0, 50)
	b := keys.Number([]keys.Query{keys.Insert(100, 100)})
	eng.ProcessBatch(b, keys.NewResultSet(len(b)))
	runStream(50, 100)

	if n := eng.Processor().Tree().Len(); n != 101 {
		t.Fatalf("tree Len = %d, want 101", n)
	}
}
